module omnireduce

go 1.23
