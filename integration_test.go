package omnireduce

// Integration tests exercising the public cross-process API over real
// sockets on loopback: the same code paths cmd/worker and cmd/aggregator
// run across hosts.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPublicTCPJob(t *testing.T) {
	const workers = 2
	opts := Options{Workers: workers, Streams: 2, StallTimeout: 30 * time.Second}
	// Every endpoint binds ":0" and the real ports are exchanged after
	// binding, so parallel test runs never collide on fixed ports.
	agg, err := NewTCPAggregator(workers, map[int]string{workers: "127.0.0.1:0"}, opts)
	if err != nil {
		t.Fatalf("aggregator: %v", err)
	}
	addrs := map[int]string{workers: agg.Addr()}
	aggDone := make(chan error, 1)
	go func() { aggDone <- agg.Run() }()
	defer func() {
		agg.Close()
		select {
		case err := <-aggDone:
			if err != nil {
				t.Errorf("aggregator run: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("aggregator did not stop")
		}
	}()

	ws := make([]*Worker, workers)
	for i := 0; i < workers; i++ {
		w, err := NewTCPWorker(i, addrs, opts)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		defer w.Close()
		ws[i] = w
	}

	rng := rand.New(rand.NewSource(2))
	const n = 30_000
	inputs := make([][]float32, workers)
	want := make([]float32, n)
	for w := range inputs {
		inputs[w] = make([]float32, n)
		for i := range inputs[w] {
			if rng.Float64() < 0.2 {
				v := float32(rng.NormFloat64())
				inputs[w][i] = v
				want[i] += v
			}
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ws[i].AllReduce(inputs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for w := range inputs {
		for i := range want {
			d := float64(inputs[w][i]) - float64(want[i])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("worker %d elem %d: %v vs %v", w, i, inputs[w][i], want[i])
			}
		}
	}
}

func TestPublicUDPJob(t *testing.T) {
	const workers = 2
	opts := Options{
		Workers:           workers,
		Streams:           2,
		BlockSize:         64,
		RetransmitTimeout: 20 * time.Millisecond,
		StallTimeout:      30 * time.Second,
	}
	// The aggregator binds ":0" first; each worker also binds ":0" knowing
	// only the aggregator's real address, and the aggregator learns the
	// worker addresses through RegisterPeer. No fixed ports, no retry loop.
	agg, err := NewUDPAggregator(workers, map[int]string{workers: "127.0.0.1:0"}, opts)
	if err != nil {
		t.Fatalf("aggregator: %v", err)
	}
	go agg.Run()
	defer agg.Close()

	ws := make([]*Worker, workers)
	for i := 0; i < workers; i++ {
		addrs := map[int]string{i: "127.0.0.1:0", workers: agg.Addr()}
		w, err := NewUDPWorker(i, addrs, opts)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		defer w.Close()
		if err := agg.RegisterPeer(i, w.Addr()); err != nil {
			t.Fatalf("register worker %d: %v", i, err)
		}
		ws[i] = w
	}

	rng := rand.New(rand.NewSource(3))
	const n = 20_000
	inputs := make([][]float32, workers)
	want := make([]float32, n)
	for w := range inputs {
		inputs[w] = make([]float32, n)
		for i := range inputs[w] {
			if rng.Float64() < 0.05 {
				v := float32(rng.NormFloat64())
				inputs[w][i] = v
				want[i] += v
			}
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ws[i].AllReduce(inputs[i])
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("UDP job timed out")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for w := range inputs {
		for i := range want {
			d := float64(inputs[w][i]) - float64(want[i])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("worker %d elem %d: %v vs %v", w, i, inputs[w][i], want[i])
			}
		}
	}
}

func TestPublicHierarchical(t *testing.T) {
	c, err := NewLocalCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	locals := [][][]float32{
		{{1, 2}, {10, 20}},
		{{100, 200}, {1000, 2000}},
	}
	runAll(t, 2, func(w int) error { return c.Worker(w).HierarchicalAllReduce(locals[w]) })
	for node := range locals {
		for dev := range locals[node] {
			if locals[node][dev][0] != 1111 || locals[node][dev][1] != 2222 {
				t.Fatalf("node %d dev %d: %v", node, dev, locals[node][dev])
			}
		}
	}
}

func TestPublicAsyncBuckets(t *testing.T) {
	// Gradient-bucket pipelining: several AllReduce operations in flight
	// per worker, as a DDP integration would issue them.
	c, err := NewLocalCluster(Options{Workers: 3, Streams: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const nBuckets = 5
	rng := rand.New(rand.NewSource(4))
	buckets := make([][][]float32, nBuckets)
	wants := make([][]float32, nBuckets)
	for b := range buckets {
		n := 1_000 + 333*b
		buckets[b] = make([][]float32, 3)
		wants[b] = make([]float32, n)
		for w := range buckets[b] {
			buckets[b][w] = make([]float32, n)
			for i := range buckets[b][w] {
				if rng.Float64() < 0.3 {
					v := float32(rng.NormFloat64())
					buckets[b][w][i] = v
					wants[b][i] += v
				}
			}
		}
	}
	runAll(t, 3, func(w int) error {
		pendings := make([]*Pending, nBuckets)
		for b := range buckets {
			p, err := c.Worker(w).AllReduceAsync(buckets[b][w])
			if err != nil {
				return err
			}
			pendings[b] = p
		}
		for _, p := range pendings {
			if err := p.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	for b := range buckets {
		for w := range buckets[b] {
			for i := range wants[b] {
				d := float64(buckets[b][w][i]) - float64(wants[b][i])
				if d > 1e-4 || d < -1e-4 {
					t.Fatalf("bucket %d worker %d elem %d: %v vs %v", b, w, i, buckets[b][w][i], wants[b][i])
				}
			}
		}
	}
}

// TestCLIGracefulDrain sends SIGTERM to a real cmd/aggregator process
// mid-collective and verifies the rolling-restart contract: the
// in-flight operation runs to completion and yields the correct sum, a
// job open attempted during the drain is refused with the typed
// ErrAggregatorDraining (not a timeout), and the process exits cleanly
// once quiescent.
func TestCLIGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := dir + "/aggregator"
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/aggregator").CombinedOutput(); err != nil {
		t.Fatalf("build aggregator: %v\n%s", err, out)
	}

	const workers = 2
	nodes := "0=127.0.0.1:47821,1=127.0.0.1:47822,2=127.0.0.1:47823"
	agg := exec.Command(bin, "-id", "2", "-workers", "2", "-nodes", nodes, "-drain-timeout", "60s")
	aggOut := &strings.Builder{}
	var aggMu sync.Mutex
	agg.Stdout = lockedWriter{&aggMu, aggOut}
	agg.Stderr = lockedWriter{&aggMu, aggOut}
	if err := agg.Start(); err != nil {
		t.Fatal(err)
	}
	aggLog := func() string { aggMu.Lock(); defer aggMu.Unlock(); return aggOut.String() }
	var exitErr error
	exited := make(chan struct{})
	go func() { exitErr = agg.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited:
		default:
			agg.Process.Kill()
			<-exited
		}
	}()
	bindDeadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.Dial("tcp", "127.0.0.1:47823")
		if err == nil {
			c.Close()
			break
		}
		if time.Now().After(bindDeadline) {
			t.Fatalf("aggregator never bound: %v\nagg: %s", err, aggLog())
		}
		time.Sleep(10 * time.Millisecond)
	}

	opts := Options{Workers: workers, Streams: 2, StallTimeout: 30 * time.Second}
	addrs := map[int]string{0: "127.0.0.1:47821", 1: "127.0.0.1:47822", 2: "127.0.0.1:47823"}
	ws := make([]*Worker, workers)
	for i := 0; i < workers; i++ {
		w, err := NewTCPWorker(i, addrs, opts)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		defer w.Close()
		ws[i] = w
	}

	// Worker 0 starts a collective alone; with worker 1 lagging, the
	// operation is admitted and held in flight when the signal lands.
	const n = 50_000
	inputs := make([][]float32, workers)
	want := make([]float32, n)
	rng := rand.New(rand.NewSource(9))
	for w := range inputs {
		inputs[w] = make([]float32, n)
		for i := range inputs[w] {
			v := float32(rng.NormFloat64())
			inputs[w][i] = v
			want[i] += v
		}
	}
	p0, err := ws[0].AllReduceAsync(inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let worker 0's packets admit the op
	if err := agg.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	drainDeadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(aggLog(), "draining") {
		if time.Now().After(drainDeadline) {
			t.Fatalf("aggregator never reported draining\nagg: %s", aggLog())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// New admissions are refused typed while the in-flight op is live.
	if _, err := ws[1].OpenJob("prod", "latecomer"); !errors.Is(err, ErrAggregatorDraining) {
		t.Fatalf("OpenJob during drain: got %v, want ErrAggregatorDraining", err)
	}

	// The held collective still completes: worker 1 joins, both finish.
	if err := ws[1].AllReduce(inputs[1]); err != nil {
		t.Fatalf("worker 1 in-flight collective: %v", err)
	}
	if err := p0.Wait(); err != nil {
		t.Fatalf("worker 0 in-flight collective: %v", err)
	}
	for w := range inputs {
		for i := range want {
			d := float64(inputs[w][i]) - float64(want[i])
			if d > 1e-3 || d < -1e-3 {
				t.Fatalf("worker %d elem %d: %v vs %v", w, i, inputs[w][i], want[i])
			}
		}
	}

	select {
	case <-exited:
		if exitErr != nil {
			t.Fatalf("aggregator exit: %v\nagg: %s", exitErr, aggLog())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("aggregator did not exit after drain\nagg: %s", aggLog())
	}
	if !strings.Contains(aggLog(), "drained cleanly") {
		t.Fatalf("aggregator log missing clean-drain report:\n%s", aggLog())
	}
}

// lockedWriter serializes subprocess output capture against concurrent
// reads from the test goroutine.
type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

// TestCLIBinaries builds the actual cmd/aggregator and cmd/worker
// binaries and runs a 2-worker TCP job through them, validating the CLI
// plumbing end to end.
func TestCLIBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	build := func(name string) string {
		bin := dir + "/" + name
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		return bin
	}
	aggBin := build("aggregator")
	workerBin := build("worker")

	nodes := "0=127.0.0.1:47811,1=127.0.0.1:47812,2=127.0.0.1:47813"
	agg := exec.Command(aggBin, "-id", "2", "-workers", "2", "-nodes", nodes)
	aggOut := &strings.Builder{}
	agg.Stdout, agg.Stderr = aggOut, aggOut
	if err := agg.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		agg.Process.Signal(os.Interrupt)
		agg.Wait()
	}()
	// Wait for the aggregator to bind by polling its listener rather than
	// sleeping a fixed interval: bounded, and fails with a clear message.
	bindDeadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.Dial("tcp", "127.0.0.1:47813")
		if err == nil {
			c.Close()
			break
		}
		if time.Now().After(bindDeadline) {
			t.Fatalf("aggregator never bound: %v\nagg: %s", err, aggOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	run := func(id int, out *strings.Builder) *exec.Cmd {
		c := exec.Command(workerBin,
			"-id", fmt.Sprint(id), "-workers", "2", "-nodes", nodes,
			"-size", "200000", "-sparsity", "0.9", "-iters", "3", "-warmup", "1")
		c.Stdout, c.Stderr = out, out
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	var o0, o1 strings.Builder
	w0 := run(0, &o0)
	w1 := run(1, &o1)
	waitErr := make(chan error, 2)
	go func() { waitErr <- w0.Wait() }()
	go func() { waitErr <- w1.Wait() }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-waitErr:
			if err != nil {
				t.Fatalf("worker failed: %v\nworker0: %s\nworker1: %s\nagg: %s",
					err, o0.String(), o1.String(), aggOut.String())
			}
		case <-time.After(90 * time.Second):
			t.Fatalf("workers timed out\nworker0: %s\nworker1: %s", o0.String(), o1.String())
		}
	}
	if !strings.Contains(o0.String(), "goodput") {
		t.Fatalf("worker 0 output missing report: %s", o0.String())
	}
}
