package omnireduce

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, each regenerating the corresponding rows via the
// internal/exp runners, plus wall-clock benchmarks of the real library on
// the in-process fabric. Run everything with:
//
//	go test -bench=. -benchmem
//
// Individual figures: go test -bench=BenchmarkFig04
// The regenerated tables are printed once per benchmark (use -v).

import (
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/core"
	"omnireduce/internal/exp"
	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/transport"
)

// benchOpts uses a coarser scale than the CLI default so the full bench
// suite stays fast; cmd/omnibench regenerates at higher fidelity.
func benchOpts() exp.Options { return exp.Options{Scale: 64, Seed: 42} }

var printTables = os.Getenv("OMNIBENCH_PRINT") != ""

func runFigure(b *testing.B, f func(exp.Options) *metrics.Table) {
	b.Helper()
	var t *metrics.Table
	for i := 0; i < b.N; i++ {
		t = f(benchOpts())
	}
	if t != nil && printTables {
		t.Render(os.Stdout)
	}
	if t == nil || t.Rows() == 0 {
		b.Fatal("empty table")
	}
}

func BenchmarkTable1(b *testing.B) { runFigure(b, exp.Table1) }
func BenchmarkTable2(b *testing.B) { runFigure(b, exp.Table2) }
func BenchmarkFig01(b *testing.B)  { runFigure(b, exp.Fig1) }
func BenchmarkFig04(b *testing.B)  { runFigure(b, exp.Fig4) }
func BenchmarkFig05(b *testing.B)  { runFigure(b, exp.Fig5) }
func BenchmarkFig06(b *testing.B)  { runFigure(b, exp.Fig6) }
func BenchmarkFig07(b *testing.B)  { runFigure(b, exp.Fig7) }
func BenchmarkFig08(b *testing.B)  { runFigure(b, exp.Fig8) }
func BenchmarkFig09(b *testing.B)  { runFigure(b, exp.Fig9) }
func BenchmarkFig10(b *testing.B)  { runFigure(b, exp.Fig10) }
func BenchmarkFig11(b *testing.B)  { runFigure(b, exp.Fig11) }
func BenchmarkFig12(b *testing.B)  { runFigure(b, exp.Fig12) }
func BenchmarkFig13(b *testing.B)  { runFigure(b, exp.Fig13) }
func BenchmarkFig14(b *testing.B)  { runFigure(b, exp.Fig14) }
func BenchmarkFig15(b *testing.B)  { runFigure(b, exp.Fig15) }
func BenchmarkFig16(b *testing.B)  { runFigure(b, exp.Fig16) }
func BenchmarkFig17(b *testing.B)  { runFigure(b, exp.Fig17) }
func BenchmarkFig18(b *testing.B)  { runFigure(b, exp.Fig18) }
func BenchmarkFig20(b *testing.B)  { runFigure(b, exp.Fig20) }
func BenchmarkFig21(b *testing.B)  { runFigure(b, exp.Fig21) }

func BenchmarkAblationStreams(b *testing.B)     { runFigure(b, exp.AblationStreams) }
func BenchmarkAblationFusionWidth(b *testing.B) { runFigure(b, exp.AblationFusionWidth) }
func BenchmarkAblationAggregators(b *testing.B) { runFigure(b, exp.AblationAggregators) }
func BenchmarkAblationColocation(b *testing.B)  { runFigure(b, exp.AblationColocation) }

func BenchmarkPerfModel(b *testing.B) {
	var t *metrics.Table
	for i := 0; i < b.N; i++ {
		t = exp.PerfModelTable()
	}
	if printTables {
		t.Render(os.Stdout)
	}
}

// Wall-clock benchmarks of the real library on the in-process fabric:
// AllReduce throughput as sparsity and worker count vary.

func benchCluster(b *testing.B, workers int) *LocalCluster {
	b.Helper()
	// Pin GC off for the lifetime of the cluster: the datapath pools
	// (protocol machines, transport buffers, op states) are
	// sync.Pool-backed, and a GC pass mid-run evicts them, flipping
	// allocs/op between a warm-pool and a cold-pool mode from run to run
	// (observed 210 vs 329 on workers=4 — the benchjson alloc gate flaked
	// on that spread). With collection disabled the benchmark measures
	// steady-state allocation behavior, which is what the gate pins.
	prev := debug.SetGCPercent(-1)
	b.Cleanup(func() { debug.SetGCPercent(prev) })
	c, err := NewLocalCluster(Options{Workers: workers, Streams: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

func benchInputs(workers, n int, sparsity float64, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, workers)
	for w := range out {
		out[w] = make([]float32, n)
		for i := range out[w] {
			if rng.Float64() >= sparsity {
				out[w][i] = float32(rng.NormFloat64())
			}
		}
	}
	return out
}

func BenchmarkAllReduceLive(b *testing.B) {
	for _, workers := range []int{2, 4, 8} {
		for _, s := range []float64{0, 0.9, 0.99} {
			name := fmt.Sprintf("workers=%d/sparsity=%v", workers, s)
			b.Run(name, func(b *testing.B) {
				c := benchCluster(b, workers)
				const n = 1 << 20
				inputs := benchInputs(workers, n, s, 7)
				round := func() {
					var wg sync.WaitGroup
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							if err := c.Worker(w).AllReduce(inputs[w]); err != nil {
								b.Error(err)
							}
						}(w)
					}
					wg.Wait()
				}
				// One untimed round populates the pooled machine/buffer/
				// op-state free lists so the gated allocs/op figure is the
				// warm steady state, not first-contact pool fills.
				round()
				b.SetBytes(int64(4 * n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					round()
				}
			})
		}
	}
}

func BenchmarkAllReduceSparseLive(b *testing.B) {
	c := benchCluster(b, 4)
	rng := rand.New(rand.NewSource(3))
	ins := make([]*SparseTensor, 4)
	for w := range ins {
		dense := make([]float32, 1<<18)
		for i := range dense {
			if rng.Float64() < 0.01 {
				dense[i] = float32(rng.NormFloat64())
			}
		}
		ins[w] = FromDense(dense)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if _, err := c.Worker(w).AllReduceSparse(ins[w]); err != nil {
					b.Error(err)
				}
			}(w)
		}
		wg.Wait()
	}
}

// BenchmarkMultiJobLive measures the multi-tenant service's multiplexing
// cost: the same total gradient volume pushed through one aggregator as
// a single job ("jobs=1", the plain single-job API) versus four
// concurrent jobs across two tenants ("jobs=4_tenants=2", each job
// carrying a quarter of the volume in its own tensor-ID namespace).
// bytes/sec is total reduced volume either way, so the delta between the
// sub-benchmarks is the price of namespace demultiplexing, admission
// checks, and scheduler interleaving (cmd/benchjson records both in
// BENCH_datapath.json).
func BenchmarkMultiJobLive(b *testing.B) {
	const workers = 2
	const n = 1 << 20
	b.Run("jobs=1", func(b *testing.B) {
		c := benchCluster(b, workers)
		inputs := benchInputs(workers, n, 0, 19)
		b.SetBytes(int64(4 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					if err := c.Worker(w).AllReduce(inputs[w]); err != nil {
						b.Error(err)
					}
				}(w)
			}
			wg.Wait()
		}
	})
	b.Run("jobs=4_tenants=2", func(b *testing.B) {
		c := benchCluster(b, workers)
		names := [][2]string{
			{"prod", "ranker"}, {"prod", "embedder"},
			{"research", "ablation-a"}, {"research", "ablation-b"},
		}
		jobs := make([][]*Job, len(names)) // [job][worker]
		for ji, nm := range names {
			jobs[ji] = make([]*Job, workers)
			for w := 0; w < workers; w++ {
				j, err := c.Worker(w).OpenJob(nm[0], nm[1])
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { j.Close() })
				jobs[ji][w] = j
			}
		}
		per := n / len(names)
		inputs := make([][][]float32, len(names))
		for ji := range inputs {
			inputs[ji] = benchInputs(workers, per, 0, int64(23+ji))
		}
		b.SetBytes(int64(4 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for ji := range jobs {
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(ji, w int) {
						defer wg.Done()
						if err := jobs[ji][w].AllReduce(inputs[ji][w]); err != nil {
							b.Error(err)
						}
					}(ji, w)
				}
			}
			wg.Wait()
		}
	})
}

// BenchmarkTracerOverhead runs the identical AllReduce workload twice:
// "off" with no tracer installed (the one-atomic-load disabled path) and
// "flight" with a live flight recorder capturing every slot event.
// cmd/benchjson pairs the two results in make bench and fails the tier if
// the enabled path costs more than its 5% budget.
func BenchmarkTracerOverhead(b *testing.B) {
	run := func(b *testing.B) {
		const workers = 2
		c := benchCluster(b, workers)
		const n = 1 << 18
		inputs := benchInputs(workers, n, 0, 13)
		b.SetBytes(int64(4 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					if err := c.Worker(w).AllReduce(inputs[w]); err != nil {
						b.Error(err)
					}
				}(w)
			}
			wg.Wait()
		}
	}
	b.Run("off", func(b *testing.B) {
		prev := obs.SetTracer(nil)
		defer obs.SetTracer(prev)
		run(b)
	})
	b.Run("flight", func(b *testing.B) {
		prev := obs.SetTracer(obs.NewFlightRecorder(-1, obs.DefaultFlightEvents))
		defer obs.SetTracer(prev)
		run(b)
	})
}

// BenchmarkAllReduceUDPLive measures the real protocol over loopback UDP
// sockets in both transport flavors: "batched" moves datagrams through
// recvmmsg/sendmmsg (when the platform supports it) and "scalar" forces
// the portable one-datagram-per-syscall path on the same sockets. The
// delta between the two sub-benchmarks isolates the syscall-batching win;
// allocs/op on either isolates the persistent-pump zero-allocation win
// (cmd/benchjson records both in BENCH_datapath.json).
func BenchmarkAllReduceUDPLive(b *testing.B) {
	run := func(b *testing.B, batched bool) {
		if batched && !transport.BatchingSupported() {
			b.Skip("batched datagram I/O unsupported on this platform/build")
		}
		const workers = 2
		cfg := core.Config{
			Workers:           workers,
			Aggregators:       []int{workers},
			Streams:           4,
			BlockSize:         256,
			Reliable:          false,
			RetransmitTimeout: 20 * time.Millisecond,
		}
		aggUDP, err := transport.NewUDP(workers, map[int]string{workers: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		aggUDP.SetBatching(batched)
		agg, err := core.NewAggregator(aggUDP, cfg)
		if err != nil {
			b.Fatal(err)
		}
		go agg.Run()
		b.Cleanup(func() { aggUDP.Close() })
		ws := make([]*core.Worker, workers)
		for i := 0; i < workers; i++ {
			wUDP, err := transport.NewUDP(i, map[int]string{
				i:       "127.0.0.1:0",
				workers: aggUDP.Addr(),
			})
			if err != nil {
				b.Fatal(err)
			}
			wUDP.SetBatching(batched)
			if err := aggUDP.RegisterPeer(i, wUDP.Addr()); err != nil {
				b.Fatal(err)
			}
			w, err := core.NewWorker(wUDP, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { w.Close() })
			ws[i] = w
		}
		const n = 1 << 18
		inputs := benchInputs(workers, n, 0.9, 17)
		b.SetBytes(int64(4 * n))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					if err := ws[w].AllReduce(inputs[w]); err != nil {
						b.Error(err)
					}
				}(w)
			}
			wg.Wait()
		}
	}
	b.Run("batched", func(b *testing.B) { run(b, true) })
	b.Run("scalar", func(b *testing.B) { run(b, false) })
}

// BenchmarkAllReduceTCPLive measures the real protocol over loopback TCP
// sockets (the cross-process reliable fabric).
func BenchmarkAllReduceTCPLive(b *testing.B) {
	const workers = 2
	opts := Options{Workers: workers, Streams: 4}
	addrs := map[int]string{}
	agg, err := NewTCPAggregator(workers, map[int]string{workers: "127.0.0.1:0"}, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { agg.Close() })
	go agg.Run()
	// The aggregator bound an ephemeral port; rebuild the address book.
	addrs[workers] = agg.Addr()
	ws := make([]*Worker, workers)
	for i := 0; i < workers; i++ {
		w, err := NewTCPWorker(i, map[int]string{i: "127.0.0.1:0", workers: addrs[workers]}, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { w.Close() })
		ws[i] = w
	}
	const n = 1 << 18
	inputs := benchInputs(workers, n, 0.9, 11)
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if err := ws[w].AllReduce(inputs[w]); err != nil {
					b.Error(err)
				}
			}(w)
		}
		wg.Wait()
	}
}

// failoverScenario runs one live chaos-kill handoff and returns its two
// latencies: detect (kill -> every worker has adopted the takeover view,
// i.e. traffic is flowing to the standby) and handoff (kill -> every
// in-flight collective completed). The kill fires only once the standby
// holds a checkpoint from the doomed primary, matching how an
// orchestrator would gate activation (Aggregator.CheckpointsFrom).
func failoverScenario(b *testing.B) (detect, handoff time.Duration) {
	b.Helper()
	const (
		W       = 2
		aggA    = 2
		aggB    = 3
		standby = 4
	)
	view1 := protocol.View{Epoch: 1, Workers: []int{0, 1}, Aggregators: []int{aggA, aggB}}
	cfg := core.Config{
		Workers:            W,
		Aggregators:        []int{aggA, aggB},
		Reliable:           false,
		DeterministicOrder: true,
		BlockSize:          32,
		FusionWidth:        4,
		Streams:            2,
		RetransmitTimeout:  2 * time.Millisecond,
		View:               &view1,
	}
	nw := transport.NewNetwork(W, 4096)
	conns := map[int]transport.Conn{}
	var aggWG sync.WaitGroup
	startAgg := func(id int, c core.Config) *core.Aggregator {
		conn := nw.AddNode(id)
		conns[id] = conn
		a, err := core.NewAggregator(conn, c)
		if err != nil {
			b.Fatal(err)
		}
		aggWG.Add(1)
		go func() {
			defer aggWG.Done()
			if err := a.Run(); err != nil {
				b.Error(err)
			}
		}()
		return a
	}
	primCfg := cfg
	primCfg.CheckpointPeers = []int{standby}
	startAgg(aggA, primCfg)
	startAgg(aggB, primCfg)
	sbCfg := cfg
	sbCfg.Standby = true
	sb := startAgg(standby, sbCfg)

	workers := make([]*core.Worker, W)
	inputs := benchInputs(W, 1<<16, 0, 31)
	for w := range workers {
		wk, err := core.NewWorker(nw.Conn(w), cfg)
		if err != nil {
			b.Fatal(err)
		}
		workers[w] = wk
	}
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := workers[w].AllReduce(inputs[w]); err != nil {
				b.Error(err)
			}
		}(w)
	}

	for sb.CheckpointsFrom(aggB) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	adoptions := obs.Default.Counter("worker_view_changes")
	adoptedBefore := adoptions.Load()
	t0 := time.Now()
	conns[aggB].Close() // kill
	if err := sb.Activate(protocol.View{Epoch: 2, Workers: []int{0, 1}, Aggregators: []int{aggA, standby}}); err != nil {
		b.Fatal(err)
	}
	for adoptions.Load()-adoptedBefore < W {
		time.Sleep(100 * time.Microsecond)
	}
	detect = time.Since(t0)
	wg.Wait()
	handoff = time.Since(t0)

	for _, wk := range workers {
		wk.Close()
	}
	for id, c := range conns {
		if id != aggB {
			c.Close()
		}
	}
	aggWG.Wait()
	return detect, handoff
}

// BenchmarkFailoverHandoff records the elastic-membership latencies in
// BENCH_datapath.json: "detect" is kill -> all workers bound to the
// takeover view, "handoff" is kill -> all mid-flight collectives
// completed (view adoption + rebind + replay + fast-forward resync).
// ns/op is the latency itself (ReportMetric overrides the loop timing).
func BenchmarkFailoverHandoff(b *testing.B) {
	b.Run("detect", func(b *testing.B) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			d, _ := failoverScenario(b)
			total += d
		}
		b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "ns/op")
	})
	b.Run("handoff", func(b *testing.B) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			_, h := failoverScenario(b)
			total += h
		}
		b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "ns/op")
	})
}
