package omnireduce

import (
	"context"

	"omnireduce/internal/core"
)

// Multi-tenant collective service. One aggregator fleet can serve many
// jobs from many tenants concurrently: each job runs in its own
// tensor-ID namespace (derived deterministically from the tenant and job
// names, so SPMD workers agree without coordination), admission control
// enforces per-tenant quotas with typed errors, and a per-tenant
// deficit-round-robin scheduler keeps an aggressive tenant from starving
// quiet ones on shared merge shards. The single-job API above is
// untouched — it is the implicit "default" tenant's "default" job.

// TenantQuota limits and weights one tenant on an aggregator. Zero
// fields mean unlimited (and weight 1).
type TenantQuota struct {
	// Weight is the tenant's deficit-round-robin share of aggregator
	// merge bandwidth relative to other tenants (default 1).
	Weight int
	// MaxJobs caps the tenant's concurrently open jobs; exceeding it
	// fails OpenJob with ErrTenantQuota.
	MaxJobs int
	// MaxInFlightOps caps the tenant's concurrently running collectives
	// across all its jobs; exceeding it fails the collective with
	// ErrTenantQuota.
	MaxInFlightOps int
}

// Typed admission errors, for errors.Is on OpenJob and collective
// failures.
var (
	// ErrTenantQuota reports a per-tenant limit (MaxJobs or
	// MaxInFlightOps) was exceeded on an aggregator.
	ErrTenantQuota = core.ErrTenantQuota
	// ErrAggregatorDraining reports an aggregator is draining for a
	// rolling restart and admits nothing new; retry against a
	// replacement.
	ErrAggregatorDraining = core.ErrAggregatorDraining
	// ErrTidCollision reports two distinct jobs collided on one tensor-ID
	// namespace — including the legacy hazard of two independent
	// single-job clusters sharing an aggregator.
	ErrTidCollision = core.ErrTidCollision
	// ErrAdmissionRejected is the generic admission refusal.
	ErrAdmissionRejected = core.ErrAdmissionRejected
)

// Job is an open (tenant, job) session on a worker connection. Its
// collectives are protocol-identical to the single-job API's but carry
// the job's own tensor-ID namespace, so any number of jobs can share one
// aggregator fleet without interference. Like workers, jobs are SPMD:
// every member opens the same job and issues the same operations in the
// same order.
type Job struct{ j *core.Job }

// OpenJob registers a (tenant, job) session with every aggregator and
// returns its handle. Quota violations, namespace collisions, and
// draining aggregators surface here as typed errors. The worker's own
// rank and worker count carry over as the job's.
func (w *Worker) OpenJob(tenantName, jobName string) (*Job, error) {
	j, err := w.w.OpenJob(tenantName, jobName)
	if err != nil {
		return nil, err
	}
	return &Job{j: j}, nil
}

// OpenJobAs is OpenJob for a job shaped differently from the fabric:
// this connection acts as job-relative worker wid of workers total.
func (w *Worker) OpenJobAs(tenantName, jobName string, wid, workers int) (*Job, error) {
	j, err := w.w.OpenJobAs(tenantName, jobName, wid, workers)
	if err != nil {
		return nil, err
	}
	return &Job{j: j}, nil
}

// Tenant returns the session's tenant name.
func (j *Job) Tenant() string { return j.j.Key().Tenant }

// Name returns the session's job name.
func (j *Job) Name() string { return j.j.Key().Job }

// Namespace returns the job's tensor-ID namespace (useful for filtering
// traces with cmd/tracetool -ns).
func (j *Job) Namespace() uint32 { return j.j.Namespace() }

// AllReduce sums data element-wise across the job's workers in place.
func (j *Job) AllReduce(data []float32) error { return j.j.AllReduce(data) }

// AllReduceAsync starts an AllReduce on the job and returns a handle;
// see Worker.AllReduceAsync for the overlap contract.
func (j *Job) AllReduceAsync(data []float32) (*Pending, error) {
	p, err := j.j.AllReduceAsync(data)
	if err != nil {
		return nil, err
	}
	return &Pending{p: p}, nil
}

// AllReduceSparse sums COO sparse tensors across the job's workers.
func (j *Job) AllReduceSparse(in *SparseTensor) (*SparseTensor, error) {
	out, err := j.j.AllReduceSparse(in.coo())
	if err != nil {
		return nil, err
	}
	return &SparseTensor{Dim: out.Dim, Keys: out.Keys, Values: out.Values}, nil
}

// Close ends the session on every aggregator. In-flight collectives are
// unaffected; new ones fail.
func (j *Job) Close() error { return j.j.Close() }

// Drain gracefully quiesces the aggregator: new jobs and collectives are
// refused with ErrAggregatorDraining while in-flight rounds run to
// completion. It returns once the aggregator is quiescent or with ctx's
// error. Call before Close for a rolling restart that loses no work.
func (a *Aggregator) Drain(ctx context.Context) error { return a.agg.Drain(ctx) }
