// Package omnireduce is an efficient sparse collective communication
// library: a Go implementation of OmniReduce (Fei et al., SIGCOMM 2021).
//
// OmniReduce is a streaming aggregation system that accelerates AllReduce
// on sparse data by transmitting only non-zero blocks. Input tensors are
// split into fixed-size blocks; one or more aggregator nodes coordinate
// the workers through a self-clocked "next non-zero block" protocol, so
// zero blocks never cross the network and bandwidth use stays optimal
// even for dense inputs.
//
// # Quick start
//
// The simplest deployment is in-process (one goroutine per participant):
//
//	cluster, _ := omnireduce.NewLocalCluster(omnireduce.Options{Workers: 4})
//	defer cluster.Close()
//	// On each worker goroutine w:
//	grad := ...                       // []float32, sparse or dense
//	_ = cluster.Worker(w).AllReduce(grad) // grad now holds the global sum
//
// Cross-process deployments use the same Worker/Aggregator APIs over the
// TCP or UDP transports; see cmd/aggregator and cmd/worker.
//
// Collectives are SPMD: every worker must call the same operations in the
// same order with equal-length tensors.
package omnireduce

import (
	"fmt"
	"sync"
	"time"

	"omnireduce/internal/core"
	"omnireduce/internal/protocol"
	"omnireduce/internal/tenant"
	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
)

// Options configures a deployment. The zero value of every field selects
// the paper's defaults.
type Options struct {
	// Workers is the number of worker processes (required).
	Workers int
	// Aggregators is the number of aggregator shards (default 1).
	Aggregators int
	// BlockSize is the elements per block (default 256).
	BlockSize int
	// FusionWidth is the number of blocks fused per packet (default 8).
	FusionWidth int
	// Streams is the number of parallel aggregation streams (default 4).
	Streams int
	// DeterministicOrder enforces bit-reproducible reduction order (§7).
	DeterministicOrder bool
	// SwitchMode emulates a programmable-switch aggregator: fixed-point
	// accumulation at the given scale (e.g. 1<<16). Zero disables.
	SwitchMode float64
	// HalfPrecision transmits blocks as IEEE 754 binary16, halving
	// communication volume at mixed-precision accuracy.
	HalfPrecision bool
	// RetransmitTimeout tunes loss recovery on unreliable transports.
	RetransmitTimeout time.Duration
	// MaxRetries bounds per-packet retransmissions on unreliable
	// transports; zero retries forever.
	MaxRetries int
	// StallTimeout arms a per-collective stall watchdog: an operation
	// receiving no results for this long fails with a postmortem capture
	// instead of hanging silently. Zero disables the watchdog.
	StallTimeout time.Duration
	// PostmortemDir is where stall postmortems are written (default: the
	// process working directory).
	PostmortemDir string
	// Tenants sets per-tenant quotas and scheduling weights for
	// multi-tenant aggregators (see Worker.OpenJob). Tenants absent from
	// the map get DefaultQuota; a nil map leaves every tenant unlimited
	// with weight 1.
	Tenants map[string]TenantQuota
	// DefaultQuota applies to tenants not listed in Tenants.
	DefaultQuota TenantQuota
	// ViewEpoch > 0 enables dynamic membership: the node starts under an
	// epoch-numbered group view (workers 0..Workers-1, aggregators in
	// shard order), workers bind their connections to the epoch, and
	// aggregators refuse stale-epoch traffic with typed refusals. Zero
	// keeps the legacy static membership.
	ViewEpoch uint32
	// CheckpointPeers lists standby aggregator node IDs this aggregator
	// streams slot-state checkpoints to (aggregator-only; requires a
	// framed reliable transport between primary and standby — frames can
	// exceed a UDP datagram).
	CheckpointPeers []int
	// Standby starts an aggregator passive: it stores checkpoints and
	// refuses data until Aggregator.Activate (or an in-band view
	// announcement) promotes it. Aggregator-only; requires ViewEpoch > 0.
	Standby bool
}

func (o Options) coreConfig(reliable bool, aggIDs []int) core.Config {
	var tcfg *tenant.Config
	if len(o.Tenants) > 0 || o.DefaultQuota != (TenantQuota{}) {
		tc := tenant.Config{
			Tenants: make(map[string]tenant.Quota, len(o.Tenants)),
			Default: tenant.Quota(o.DefaultQuota),
		}
		for name, q := range o.Tenants {
			tc.Tenants[name] = tenant.Quota(q)
		}
		tcfg = &tc
	}
	var view *protocol.View
	if o.ViewEpoch > 0 {
		v := protocol.View{Epoch: o.ViewEpoch, Aggregators: append([]int(nil), aggIDs...)}
		for w := 0; w < o.Workers; w++ {
			v.Workers = append(v.Workers, w)
		}
		view = &v
	}
	return core.Config{
		Tenancy: tcfg,
		Workers:            o.Workers,
		Aggregators:        aggIDs,
		BlockSize:          o.BlockSize,
		FusionWidth:        o.FusionWidth,
		Streams:            o.Streams,
		Reliable:           reliable,
		DeterministicOrder: o.DeterministicOrder,
		QuantizeScale:      o.SwitchMode,
		HalfPrecision:      o.HalfPrecision,
		RetransmitTimeout:  o.RetransmitTimeout,
		MaxRetries:         o.MaxRetries,
		StallTimeout:       o.StallTimeout,
		PostmortemDir:      o.PostmortemDir,
		View:               view,
		CheckpointPeers:    append([]int(nil), o.CheckpointPeers...),
		Standby:            o.Standby,
	}
}

// Worker is a participant handle. It wraps the core protocol worker with
// the public tensor types.
type Worker struct {
	w *core.Worker
}

// AllReduce sums data element-wise across all workers in place.
func (w *Worker) AllReduce(data []float32) error { return w.w.AllReduce(data) }

// Broadcast distributes root's data to every worker in place.
func (w *Worker) Broadcast(data []float32, root int) error { return w.w.Broadcast(data, root) }

// AllGather concatenates each worker's segment into out (length
// len(segment) * Workers) on every worker.
func (w *Worker) AllGather(segment, out []float32) error { return w.w.AllGather(segment, out) }

// HierarchicalAllReduce sums every device tensor across all devices of
// all workers (the §5 multi-GPU two-layer scheme): devices on this node
// are reduced in process, one inter-node AllReduce runs on the combined
// gradient, and the result is broadcast back to every device tensor.
func (w *Worker) HierarchicalAllReduce(locals [][]float32) error {
	return w.w.HierarchicalAllReduce(locals)
}

// AllReduceSparse sums COO sparse tensors across workers and returns the
// global sum in COO form (Algorithm 3's key-value block format).
func (w *Worker) AllReduceSparse(in *SparseTensor) (*SparseTensor, error) {
	out, err := w.w.AllReduceSparse(in.coo())
	if err != nil {
		return nil, err
	}
	return &SparseTensor{Dim: out.Dim, Keys: out.Keys, Values: out.Values}, nil
}

// AllReduceAsync starts an AllReduce and returns a handle; data must not
// be touched until Wait returns, at which point it holds the global sum.
// Several operations may be in flight at once (gradient-bucket
// pipelining), started in the same order on every worker.
func (w *Worker) AllReduceAsync(data []float32) (*Pending, error) {
	p, err := w.w.AllReduceAsync(data)
	if err != nil {
		return nil, err
	}
	return &Pending{p: p}, nil
}

// Pending is an in-flight asynchronous collective.
type Pending struct{ p *core.Pending }

// Wait blocks until the collective completes and returns its error.
func (p *Pending) Wait() error { return p.p.Wait() }

// Stats returns the worker's cumulative traffic counters.
func (w *Worker) Stats() Stats {
	s := w.w.Stats.Snapshot()
	return Stats{
		BlocksSent:   s.BlocksSent,
		PacketsSent:  s.PacketsSent,
		BytesSent:    s.BytesSent,
		Retransmits:  s.Retransmits,
		Backoffs:     s.Backoffs,
		AcksSent:     s.AcksSent,
		ResultsRecvd: s.ResultsRecvd,
		StaleResults: s.StaleResults,
	}
}

// Stats mirrors the protocol counters. Retransmits counts timer-driven
// re-sends only (PacketsSent counts every transmission including those);
// Backoffs counts retransmission-timeout increases under sustained loss;
// StaleResults counts received result packets discarded as duplicates or
// stale versions.
type Stats struct {
	BlocksSent   int64
	PacketsSent  int64
	BytesSent    int64
	Retransmits  int64
	Backoffs     int64
	AcksSent     int64
	ResultsRecvd int64
	StaleResults int64
}

// PumpStats reports the worker receive pump's routing decisions:
// messages delivered to live collectives, stale results dropped after
// their operation finished, messages dropped because a collective's
// queue overflowed (repaired by retransmission on unreliable
// transports), and undecodable packets.
type PumpStats struct {
	Delivered     int64
	StaleDrops    int64
	OverflowDrops int64
	BadPackets    int64
}

// PumpStats returns the worker's receive-pump counters.
func (w *Worker) PumpStats() PumpStats {
	p := w.w.PumpSnapshot()
	return PumpStats{
		Delivered:     p.Delivered,
		StaleDrops:    p.StaleDrops,
		OverflowDrops: p.OverflowDrops,
		BadPackets:    p.BadPackets,
	}
}

// SparseTensor is a coordinate-list sparse tensor: Keys strictly
// ascending, Values aligned with Keys, Dim the dense length.
type SparseTensor struct {
	Dim    int
	Keys   []int32
	Values []float32
}

func (s *SparseTensor) coo() *tensor.COO {
	return &tensor.COO{Dim: s.Dim, Keys: s.Keys, Values: s.Values}
}

// Dense materializes the sparse tensor.
func (s *SparseTensor) Dense() []float32 { return s.coo().ToDense().Data }

// FromDense extracts the non-zero elements of v.
func FromDense(v []float32) *SparseTensor {
	c := tensor.FromDense(tensor.FromSlice(v))
	return &SparseTensor{Dim: c.Dim, Keys: c.Keys, Values: c.Values}
}

// LocalCluster is an in-process deployment: Workers worker endpoints plus
// aggregator goroutines over a channel fabric, ideal for testing,
// experimentation, and single-machine multi-goroutine training.
type LocalCluster struct {
	workers  []*Worker
	conns    []transport.Conn
	aggConns []transport.Conn
	wg       sync.WaitGroup
	errMu    sync.Mutex
	aggErr   error
}

// NewLocalCluster starts an in-process cluster.
func NewLocalCluster(o Options) (*LocalCluster, error) {
	if o.Workers <= 0 {
		return nil, fmt.Errorf("omnireduce: Workers must be positive")
	}
	aggs := o.Aggregators
	if aggs <= 0 {
		aggs = 1
	}
	aggIDs := make([]int, aggs)
	for i := range aggIDs {
		aggIDs[i] = o.Workers + i
	}
	cfg := o.coreConfig(true, aggIDs)
	nw := transport.NewNetwork(o.Workers, 4096)
	lc := &LocalCluster{}
	for _, id := range aggIDs {
		conn := nw.AddNode(id)
		agg, err := core.NewAggregator(conn, cfg)
		if err != nil {
			return nil, err
		}
		lc.aggConns = append(lc.aggConns, conn)
		lc.wg.Add(1)
		go func() {
			defer lc.wg.Done()
			if err := agg.Run(); err != nil {
				lc.errMu.Lock()
				if lc.aggErr == nil {
					lc.aggErr = err
				}
				lc.errMu.Unlock()
			}
		}()
	}
	for i := 0; i < o.Workers; i++ {
		conn := nw.Conn(i)
		w, err := core.NewWorker(conn, cfg)
		if err != nil {
			return nil, err
		}
		lc.conns = append(lc.conns, conn)
		lc.workers = append(lc.workers, &Worker{w: w})
	}
	return lc, nil
}

// Worker returns worker w's handle. Each handle must be driven by a
// single goroutine.
func (lc *LocalCluster) Worker(w int) *Worker { return lc.workers[w] }

// Size returns the number of workers.
func (lc *LocalCluster) Size() int { return len(lc.workers) }

// Close shuts down the cluster and reports any aggregator failure.
func (lc *LocalCluster) Close() error {
	// Close workers (not just their conns) so each releases its pooled
	// per-connection op state back to the pools the leak audit reconciles.
	for _, w := range lc.workers {
		w.Close()
	}
	for _, c := range lc.conns {
		c.Close()
	}
	for _, c := range lc.aggConns {
		c.Close()
	}
	lc.wg.Wait()
	lc.errMu.Lock()
	defer lc.errMu.Unlock()
	return lc.aggErr
}

// NewTCPWorker joins a cross-process job as worker id over TCP (the
// reliable fabric; Algorithm 1 without timers). addrs maps every node ID
// — workers 0..Workers-1 and aggregators Workers..Workers+Aggregators-1 —
// to a host:port.
func NewTCPWorker(id int, addrs map[int]string, o Options) (*Worker, error) {
	tr, err := transport.NewTCP(id, addrs)
	if err != nil {
		return nil, err
	}
	w, err := core.NewWorker(tr, o.coreConfig(true, aggIDsFrom(o)))
	if err != nil {
		tr.Close()
		return nil, err
	}
	return &Worker{w: w}, nil
}

// NewUDPWorker joins over UDP (the unreliable fabric; Algorithm 2 loss
// recovery active).
func NewUDPWorker(id int, addrs map[int]string, o Options) (*Worker, error) {
	tr, err := transport.NewUDP(id, addrs)
	if err != nil {
		return nil, err
	}
	w, err := core.NewWorker(tr, o.coreConfig(false, aggIDsFrom(o)))
	if err != nil {
		tr.Close()
		return nil, err
	}
	return &Worker{w: w}, nil
}

// Aggregator is a standalone aggregator node for cross-process jobs.
type Aggregator struct {
	agg  *core.Aggregator
	conn transport.Conn
}

// NewTCPAggregator starts aggregator node id (>= Workers) over TCP.
func NewTCPAggregator(id int, addrs map[int]string, o Options) (*Aggregator, error) {
	tr, err := transport.NewTCP(id, addrs)
	if err != nil {
		return nil, err
	}
	agg, err := core.NewAggregator(tr, o.coreConfig(true, aggIDsFrom(o)))
	if err != nil {
		tr.Close()
		return nil, err
	}
	return &Aggregator{agg: agg, conn: tr}, nil
}

// NewUDPAggregator starts aggregator node id over UDP.
func NewUDPAggregator(id int, addrs map[int]string, o Options) (*Aggregator, error) {
	tr, err := transport.NewUDP(id, addrs)
	if err != nil {
		return nil, err
	}
	agg, err := core.NewAggregator(tr, o.coreConfig(false, aggIDsFrom(o)))
	if err != nil {
		tr.Close()
		return nil, err
	}
	return &Aggregator{agg: agg, conn: tr}, nil
}

// Run serves until Close (or a protocol error).
func (a *Aggregator) Run() error { return a.agg.Run() }

// Addr returns the aggregator's bound listen address (useful with ":0").
// Empty for transports without a listener address.
func (a *Aggregator) Addr() string {
	type addresser interface{ Addr() string }
	if ad, ok := a.conn.(addresser); ok {
		return ad.Addr()
	}
	return ""
}

// Close shuts the aggregator's endpoint; a concurrent Run returns nil.
func (a *Aggregator) Close() error { return a.conn.Close() }

// Activate installs view epoch with the given membership on this
// aggregator and announces it to every member: the failover takeover
// step, promoting a standby (which restores the dead primary's streamed
// checkpoints lazily) or re-shaping an active aggregator's view. The
// epoch must be newer than the node's current one.
func (a *Aggregator) Activate(epoch uint32, workers, aggregators []int) error {
	return a.agg.Activate(protocol.View{
		Epoch:       epoch,
		Workers:     append([]int(nil), workers...),
		Aggregators: append([]int(nil), aggregators...),
	})
}

// Standby reports whether the aggregator is still a passive standby (not
// yet activated into a view that lists it).
func (a *Aggregator) Standby() bool { return a.agg.Standby() }

// CheckpointsFrom reports how many checkpoint frames from primary node
// `from` this aggregator holds — orchestrators gate failover on the
// standby provably having state to take over from.
func (a *Aggregator) CheckpointsFrom(from int) int { return a.agg.CheckpointsFrom(from) }

func aggIDsFrom(o Options) []int {
	aggs := o.Aggregators
	if aggs <= 0 {
		aggs = 1
	}
	ids := make([]int, aggs)
	for i := range ids {
		ids[i] = o.Workers + i
	}
	return ids
}

// Close releases the worker's transport endpoint.
func (w *Worker) Close() error { return w.w.Close() }

// RegisterPeer adds (or replaces) a peer's transport address — the
// re-dial path when a view change introduces a standby aggregator the
// original address book never listed. Wildcard hosts are canonicalized
// exactly as constructor addresses are. No-op on transports that route
// by node ID.
func (w *Worker) RegisterPeer(id int, addr string) error { return w.w.RegisterPeer(id, addr) }

// Addr returns the worker's bound transport address (useful with ":0",
// where the real port is only known after binding). Empty for transports
// without a listener address.
func (w *Worker) Addr() string { return w.w.LocalAddr() }

// RegisterPeer adds or updates a peer address binding on transports that
// support late registration (UDP), for ":0"-style setups where addresses
// are exchanged after binding.
func (a *Aggregator) RegisterPeer(id int, addr string) error {
	type registrar interface{ RegisterPeer(int, string) error }
	if r, ok := a.conn.(registrar); ok {
		return r.RegisterPeer(id, addr)
	}
	return fmt.Errorf("omnireduce: transport does not support late peer registration")
}
