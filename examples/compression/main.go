// Compression: BERT-style dense gradients sparsified with Block Top-k.
//
// Large transformer gradients are mostly dense (Table 1: BERT is only
// ~9% sparse), so OmniReduce alone cannot skip much. §4 of the paper adds
// block-based gradient sparsification: select the top-k blocks by l2 norm,
// feed the sparsified gradient to OmniReduce, and correct the bias with
// error feedback. This example compares training with and without 10%
// Block Top-k compression, both aggregated through OmniReduce.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"
	"sync"

	"omnireduce"
	"omnireduce/internal/compress"
	"omnireduce/internal/ddl"
)

type omniReducer struct{ cluster *omnireduce.LocalCluster }

func (r *omniReducer) Reduce(grads [][]float32) error {
	var wg sync.WaitGroup
	errs := make([]error, len(grads))
	for w := range grads {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = r.cluster.Worker(w).AllReduce(grads[w])
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func main() {
	const workers = 4

	// A mostly-dense task: wide dense feature block, small embedding.
	task := ddl.NewTask(4_096, 500, 16, 3)
	nb := (task.Dim() + 255) / 256
	k := nb / 10 // keep 10% of blocks

	run := func(name string, comp func(int) compress.Compressor) *ddl.TrainResult {
		cluster, err := omnireduce.NewLocalCluster(omnireduce.Options{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		res, err := task.Train(ddl.TrainConfig{
			Workers:       workers,
			Batch:         32,
			Iterations:    200,
			LR:            0.3,
			Seed:          5,
			Reducer:       &omniReducer{cluster: cluster},
			NewCompressor: comp,
			ErrorFeedback: comp != nil,
			LossEvery:     40,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := cluster.Worker(0).Stats()
		fmt.Printf("%-22s final loss %.3f  accuracy %.1f%%  blocks sent %d\n",
			name, res.Losses[len(res.Losses)-1], res.Accuracy*100, st.BlocksSent)
		return res
	}

	fmt.Printf("model: %d parameters (%d blocks of 256); Block Top-k keeps %d blocks\n\n",
		task.Dim(), nb, k)
	base := run("no compression", nil)
	comp := run("block top-k 10% + EF", func(int) compress.Compressor {
		return &compress.BlockTopK{BS: 256, K: k}
	})

	fmt.Printf("\naccuracy delta: %+.1f points at ~10%% of the communication\n",
		(comp.Accuracy-base.Accuracy)*100)
}
