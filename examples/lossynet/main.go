// Lossynet: OmniReduce over real UDP sockets with injected packet loss.
//
// The paper's DPDK data path runs over unreliable datagrams; Algorithm 2
// (Appendix A) recovers from loss with versioned slots, acks, and worker
// retransmission timers. This example runs a 3-worker AllReduce over
// loopback UDP with 2% of all messages dropped, and shows the reduction
// still completes exactly.
//
//	go run ./examples/lossynet
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"omnireduce/internal/core"
	"omnireduce/internal/transport"
)

func main() {
	const (
		workers  = 3
		elements = 200_000
		lossRate = 0.02
	)
	cfg := core.Config{
		Workers:           workers,
		Aggregators:       []int{workers},
		Reliable:          false, // Algorithm 2 active
		RetransmitTimeout: 20 * time.Millisecond,
		BlockSize:         128,
		FusionWidth:       8,
		Streams:           4,
	}

	// Bind every node on an ephemeral UDP port, then exchange addresses.
	eps := make([]*transport.UDP, workers+1)
	for i := range eps {
		u, err := transport.NewUDP(i, map[int]string{i: "127.0.0.1:0"})
		if err != nil {
			log.Fatal(err)
		}
		defer u.Close()
		eps[i] = u
	}
	for i, u := range eps {
		for j, v := range eps {
			if i != j {
				if err := u.RegisterPeer(j, v.Addr()); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Wrap every endpoint in a deterministic loss injector.
	lossy := make([]*transport.Lossy, workers+1)
	for i, u := range eps {
		lossy[i] = transport.NewLossy(u, lossRate, 0, int64(i)+100)
	}

	agg, err := core.NewAggregator(lossy[workers], cfg)
	if err != nil {
		log.Fatal(err)
	}
	go agg.Run()

	// Random sparse inputs and the reference sum.
	rng := rand.New(rand.NewSource(9))
	inputs := make([][]float32, workers)
	expected := make([]float32, elements)
	for w := range inputs {
		inputs[w] = make([]float32, elements)
		for i := range inputs[w] {
			if rng.Float64() < 0.05 {
				v := float32(rng.NormFloat64())
				inputs[w][i] = v
				expected[i] += v
			}
		}
	}

	ws := make([]*core.Worker, workers)
	for i := range ws {
		w, err := core.NewWorker(lossy[i], cfg)
		if err != nil {
			log.Fatal(err)
		}
		ws[i] = w
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ws[i].AllReduce(inputs[i]); err != nil {
				log.Fatalf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var maxErr float64
	for w := range inputs {
		for i := range expected {
			d := float64(inputs[w][i]) - float64(expected[i])
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	var dropped, retrans int64
	for i := range lossy {
		d, _ := lossy[i].Stats()
		dropped += int64(d)
	}
	for _, w := range ws {
		retrans += w.Stats.Retransmits
	}
	fmt.Printf("UDP AllReduce over %d workers, %d elements, %.0f%% message loss\n",
		workers, elements, lossRate*100)
	fmt.Printf("completed in %v; max |error| = %.2g\n", elapsed.Round(time.Millisecond), maxErr)
	fmt.Printf("messages dropped by injector: %d; worker retransmissions: %d\n", dropped, retrans)
}
