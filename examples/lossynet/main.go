// Lossynet: OmniReduce under injected network chaos.
//
// The paper's DPDK data path runs over unreliable datagrams; Algorithm 2
// (Appendix A) recovers from loss with versioned slots, acks, and worker
// retransmission timers. This example exercises that recovery two ways:
//
//  1. Over real loopback UDP sockets, with a multi-phase chaos schedule
//     (uniform + Gilbert–Elliott burst loss, duplication, reordering,
//     delay) injected by transport.ChaosFabric — showing the reduction
//     completes exactly despite every failure mode at once.
//
//  2. As a seeded deterministic replay: the same scenario run twice over
//     the in-process fabric makes identical injection decisions, so a
//     failing chaos run can be replayed exactly from its seed.
//
//     go run ./examples/lossynet
//
// With -dump-dir the UDP chaos run also records every slot event into a
// flight recorder and writes the dump (tagged with the workload's exact
// expected look-ahead skip ratio) for cmd/tracetool to merge and check —
// the `make timeline` tier. In that mode the inputs are block-sparse with
// an exact per-worker zero-block count, so the measured skip ratio is
// deterministic.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"omnireduce/internal/core"
	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/transport"
)

func main() {
	dumpDir := flag.String("dump-dir", "", "write a flight-recorder dump here (block-sparse workload, skips the replay demo)")
	density := flag.Float64("density", 0.25, "fraction of non-zero blocks with -dump-dir")
	flag.Parse()
	udpChaos(*dumpDir, *density)
	if *dumpDir == "" {
		seededReplay()
	}
}

// chaosScenario is the shared injection schedule: an opening storm of loss
// and duplication, a reordering phase, a delay phase with background loss,
// then light residual loss for the remainder.
func chaosScenario(seed int64) transport.Scenario {
	return transport.Scenario{
		Seed:   seed,
		Window: 100,
		Phases: []transport.Phase{
			{Packets: 50, Drop: 0.04, Dup: 0.04,
				Burst: &transport.Burst{PEnter: 0.02, PExit: 0.3, DropBad: 0.8}},
			{Packets: 40, Reorder: 0.2, ReorderSpan: 2},
			{Packets: 40, Drop: 0.02, Delay: 2 * time.Millisecond, DelayP: 0.3},
			{Drop: 0.01},
		},
	}
}

// udpChaos runs a 3-worker AllReduce over real UDP sockets routed through
// the chaos fabric. With dumpDir set it records the run's slot events and
// writes the flight dump for the timeline tier.
func udpChaos(dumpDir string, density float64) {
	const (
		workers  = 3
		elements = 200_000
	)
	cfg := core.Config{
		Workers:           workers,
		Aggregators:       []int{workers},
		Reliable:          false, // Algorithm 2 active
		RetransmitTimeout: 20 * time.Millisecond,
		BlockSize:         128,
		FusionWidth:       8,
		Streams:           4,
	}
	var fr *obs.FlightRecorder
	if dumpDir != "" {
		// Smaller blocks keep the bootstrap correction (first-of-column
		// blocks are always transmitted) under the tier's 1% tolerance.
		cfg.BlockSize = 64
		fr = obs.NewFlightRecorder(-1, 1<<15)
		prev := obs.SetTracer(fr)
		defer obs.SetTracer(prev)
	}

	// Bind every node on an ephemeral UDP port, then exchange addresses.
	eps := make([]*transport.UDP, workers+1)
	for i := range eps {
		u, err := transport.NewUDP(i, map[int]string{i: "127.0.0.1:0"})
		if err != nil {
			log.Fatal(err)
		}
		defer u.Close()
		eps[i] = u
	}
	for i, u := range eps {
		for j, v := range eps {
			if i != j {
				if err := u.RegisterPeer(j, v.Addr()); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Route every endpoint through one seeded chaos fabric.
	fabric := transport.NewChaosFabric(chaosScenario(2021))
	conns := make([]transport.Conn, workers+1)
	for i, u := range eps {
		conns[i] = fabric.Wrap(u)
	}

	agg, err := core.NewAggregator(conns[workers], cfg)
	if err != nil {
		log.Fatal(err)
	}
	go agg.Run()

	// Random sparse inputs and the reference sum. The default run is
	// element-sparse; dump mode is block-sparse with an exact zero-block
	// count so the skip ratio is a deterministic function of density.
	rng := rand.New(rand.NewSource(9))
	inputs := make([][]float32, workers)
	expected := make([]float32, elements)
	for w := range inputs {
		inputs[w] = make([]float32, elements)
		if dumpDir != "" {
			fillBlockSparse(rng, inputs[w], cfg.BlockSize, density)
		} else {
			for i := range inputs[w] {
				if rng.Float64() < 0.05 {
					inputs[w][i] = float32(rng.NormFloat64())
				}
			}
		}
		for i, v := range inputs[w] {
			expected[i] += v
		}
	}
	expSkip := expectedSkipRatio(inputs, cfg)

	ws := make([]*core.Worker, workers)
	for i := range ws {
		w, err := core.NewWorker(conns[i], cfg)
		if err != nil {
			log.Fatal(err)
		}
		ws[i] = w
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ws[i].AllReduce(inputs[i]); err != nil {
				log.Fatalf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var maxErr float64
	for w := range inputs {
		for i := range expected {
			d := float64(inputs[w][i]) - float64(expected[i])
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	ev := fabric.Counts()
	fmt.Printf("UDP AllReduce over %d workers, %d elements, chaos schedule active\n",
		workers, elements)
	fmt.Printf("completed in %v; max |error| = %.2g\n", elapsed.Round(time.Millisecond), maxErr)
	fmt.Printf("injected: %d dropped (%d burst), %d duplicated, %d reordered, %d delayed\n",
		ev.Dropped, ev.BurstDrops, ev.Duplicated, ev.Reordered, ev.Delayed)

	// Per-event recovery metrics, merged across all participants.
	recovery := ws[0].Stats.RecoveryCounters()
	for _, w := range ws[1:] {
		recovery.Merge(w.Stats.RecoveryCounters())
	}
	recovery.Table("loss recovery (workers)").Render(os.Stdout)

	// Receive-pump routing and pool balance: under chaos the pump may
	// drop overflow and stale traffic, but never a pooled buffer.
	pump := metrics.NewCounters()
	for _, w := range ws {
		pump.Merge(w.PumpSnapshot().Counters())
	}
	pump.Table("receive pump (workers)").Render(os.Stdout)
	obs.PoolTable().Render(os.Stdout)

	if dumpDir != "" {
		d := fr.Dump()
		d.Tags = map[string]string{
			"run":                 "lossynet-udp-chaos",
			"workers":             strconv.Itoa(workers),
			"block_density":       fmt.Sprintf("%.4f", density),
			"expected_skip_ratio": fmt.Sprintf("%.6f", expSkip),
		}
		path := filepath.Join(dumpDir, "flight.json")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flight dump: %s (%d records, expected skip ratio %.4f)\n",
			path, len(d.Records), expSkip)
	}
}

// fillBlockSparse zeroes an exact count of blocks — round((1-density)*nb),
// chosen by a seeded shuffle — and fills the rest with random values, so
// the workload's skip ratio is deterministic rather than sampled.
func fillBlockSparse(rng *rand.Rand, data []float32, bs int, density float64) {
	nb := (len(data) + bs - 1) / bs
	perm := rng.Perm(nb)
	zeros := int(float64(nb)*(1-density) + 0.5)
	zero := make(map[int]bool, zeros)
	for _, b := range perm[:zeros] {
		zero[b] = true
	}
	for b := 0; b < nb; b++ {
		if zero[b] {
			continue
		}
		end := (b + 1) * bs
		if end > len(data) {
			end = len(data)
		}
		for i := b * bs; i < end; i++ {
			// Offset from zero so a non-zero block can never be all zeros.
			data[i] = float32(rng.NormFloat64()) + 3
		}
	}
}

// expectedSkipRatio computes the exact look-ahead skip ratio the protocol
// machines will produce for these inputs: every zero block is skipped
// once per worker except the bootstrap blocks (the first of each fused
// column in each stream shard), which are always transmitted.
func expectedSkipRatio(inputs [][]float32, cfg core.Config) float64 {
	bs := cfg.BlockSize
	var skipped, total int64
	for _, in := range inputs {
		nb := (len(in) + bs - 1) / bs
		zero := make([]bool, nb)
		for b := range zero {
			zero[b] = true
			end := (b + 1) * bs
			if end > len(in) {
				end = len(in)
			}
			for i := b * bs; i < end; i++ {
				if in[i] != 0 {
					zero[b] = false
					break
				}
			}
			if zero[b] {
				skipped++
			}
		}
		total += int64(nb)
		eff := protocol.EffectiveStreams(cfg.Streams, nb)
		for s := 0; s < eff; s++ {
			lo, hi := protocol.Shard(s, eff, nb)
			cols := cfg.FusionWidth
			if hi-lo < cols {
				cols = hi - lo
			}
			for c := 0; c < cols; c++ {
				if f := protocol.FirstInColumn(lo, hi, c, cols); f >= 0 && zero[f] {
					skipped-- // zero bootstrap block: transmitted, not skipped
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(skipped) / float64(total)
}

// seededReplay demonstrates deterministic replay: the same scenario over
// the in-process fabric twice, byte-identical results and identical
// injection decisions within the scenario window.
func seededReplay() {
	const workers = 3
	cfg := core.Config{
		Workers:            workers,
		Reliable:           false,
		DeterministicOrder: true,
		BlockSize:          32,
		FusionWidth:        4,
		Streams:            2,
		RetransmitTimeout:  3 * time.Millisecond,
	}
	rng := rand.New(rand.NewSource(17))
	inputs := make([][]float32, workers)
	for w := range inputs {
		inputs[w] = make([]float32, 32*512)
		for i := range inputs[w] {
			inputs[w][i] = float32(rng.NormFloat64())
		}
	}
	sc := chaosScenario(2021)

	first, err := core.RunChaosScenario(cfg, sc, inputs, 0)
	if err != nil {
		log.Fatal(err)
	}
	replay, err := core.RunChaosScenario(cfg, sc, inputs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nseeded replay (seed %d): exact=%v/%v, window events %d/%d, identical=%v\n",
		sc.Seed, first.Exact, replay.Exact,
		first.WindowEvents, replay.WindowEvents,
		first.WindowEvents == replay.WindowEvents)
	first.RecoveryCounters().Table("recovery events (run 1)").Render(os.Stdout)
	first.ObsReport().Render(os.Stdout)
}
