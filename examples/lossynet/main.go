// Lossynet: OmniReduce under injected network chaos.
//
// The paper's DPDK data path runs over unreliable datagrams; Algorithm 2
// (Appendix A) recovers from loss with versioned slots, acks, and worker
// retransmission timers. This example exercises that recovery two ways:
//
//  1. Over real loopback UDP sockets, with a multi-phase chaos schedule
//     (uniform + Gilbert–Elliott burst loss, duplication, reordering,
//     delay) injected by transport.ChaosFabric — showing the reduction
//     completes exactly despite every failure mode at once.
//
//  2. As a seeded deterministic replay: the same scenario run twice over
//     the in-process fabric makes identical injection decisions, so a
//     failing chaos run can be replayed exactly from its seed.
//
//     go run ./examples/lossynet
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"omnireduce/internal/core"
	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
	"omnireduce/internal/transport"
)

func main() {
	udpChaos()
	seededReplay()
}

// chaosScenario is the shared injection schedule: an opening storm of loss
// and duplication, a reordering phase, a delay phase with background loss,
// then light residual loss for the remainder.
func chaosScenario(seed int64) transport.Scenario {
	return transport.Scenario{
		Seed:   seed,
		Window: 100,
		Phases: []transport.Phase{
			{Packets: 50, Drop: 0.04, Dup: 0.04,
				Burst: &transport.Burst{PEnter: 0.02, PExit: 0.3, DropBad: 0.8}},
			{Packets: 40, Reorder: 0.2, ReorderSpan: 2},
			{Packets: 40, Drop: 0.02, Delay: 2 * time.Millisecond, DelayP: 0.3},
			{Drop: 0.01},
		},
	}
}

// udpChaos runs a 3-worker AllReduce over real UDP sockets routed through
// the chaos fabric.
func udpChaos() {
	const (
		workers  = 3
		elements = 200_000
	)
	cfg := core.Config{
		Workers:           workers,
		Aggregators:       []int{workers},
		Reliable:          false, // Algorithm 2 active
		RetransmitTimeout: 20 * time.Millisecond,
		BlockSize:         128,
		FusionWidth:       8,
		Streams:           4,
	}

	// Bind every node on an ephemeral UDP port, then exchange addresses.
	eps := make([]*transport.UDP, workers+1)
	for i := range eps {
		u, err := transport.NewUDP(i, map[int]string{i: "127.0.0.1:0"})
		if err != nil {
			log.Fatal(err)
		}
		defer u.Close()
		eps[i] = u
	}
	for i, u := range eps {
		for j, v := range eps {
			if i != j {
				if err := u.RegisterPeer(j, v.Addr()); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Route every endpoint through one seeded chaos fabric.
	fabric := transport.NewChaosFabric(chaosScenario(2021))
	conns := make([]transport.Conn, workers+1)
	for i, u := range eps {
		conns[i] = fabric.Wrap(u)
	}

	agg, err := core.NewAggregator(conns[workers], cfg)
	if err != nil {
		log.Fatal(err)
	}
	go agg.Run()

	// Random sparse inputs and the reference sum.
	rng := rand.New(rand.NewSource(9))
	inputs := make([][]float32, workers)
	expected := make([]float32, elements)
	for w := range inputs {
		inputs[w] = make([]float32, elements)
		for i := range inputs[w] {
			if rng.Float64() < 0.05 {
				v := float32(rng.NormFloat64())
				inputs[w][i] = v
				expected[i] += v
			}
		}
	}

	ws := make([]*core.Worker, workers)
	for i := range ws {
		w, err := core.NewWorker(conns[i], cfg)
		if err != nil {
			log.Fatal(err)
		}
		ws[i] = w
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ws[i].AllReduce(inputs[i]); err != nil {
				log.Fatalf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var maxErr float64
	for w := range inputs {
		for i := range expected {
			d := float64(inputs[w][i]) - float64(expected[i])
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	ev := fabric.Counts()
	fmt.Printf("UDP AllReduce over %d workers, %d elements, chaos schedule active\n",
		workers, elements)
	fmt.Printf("completed in %v; max |error| = %.2g\n", elapsed.Round(time.Millisecond), maxErr)
	fmt.Printf("injected: %d dropped (%d burst), %d duplicated, %d reordered, %d delayed\n",
		ev.Dropped, ev.BurstDrops, ev.Duplicated, ev.Reordered, ev.Delayed)

	// Per-event recovery metrics, merged across all participants.
	recovery := ws[0].Stats.RecoveryCounters()
	for _, w := range ws[1:] {
		recovery.Merge(w.Stats.RecoveryCounters())
	}
	recovery.Table("loss recovery (workers)").Render(os.Stdout)

	// Receive-pump routing and pool balance: under chaos the pump may
	// drop overflow and stale traffic, but never a pooled buffer.
	pump := metrics.NewCounters()
	for _, w := range ws {
		pump.Merge(w.PumpSnapshot().Counters())
	}
	pump.Table("receive pump (workers)").Render(os.Stdout)
	obs.PoolTable().Render(os.Stdout)
}

// seededReplay demonstrates deterministic replay: the same scenario over
// the in-process fabric twice, byte-identical results and identical
// injection decisions within the scenario window.
func seededReplay() {
	const workers = 3
	cfg := core.Config{
		Workers:            workers,
		Reliable:           false,
		DeterministicOrder: true,
		BlockSize:          32,
		FusionWidth:        4,
		Streams:            2,
		RetransmitTimeout:  3 * time.Millisecond,
	}
	rng := rand.New(rand.NewSource(17))
	inputs := make([][]float32, workers)
	for w := range inputs {
		inputs[w] = make([]float32, 32*512)
		for i := range inputs[w] {
			inputs[w][i] = float32(rng.NormFloat64())
		}
	}
	sc := chaosScenario(2021)

	first, err := core.RunChaosScenario(cfg, sc, inputs, 0)
	if err != nil {
		log.Fatal(err)
	}
	replay, err := core.RunChaosScenario(cfg, sc, inputs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nseeded replay (seed %d): exact=%v/%v, window events %d/%d, identical=%v\n",
		sc.Seed, first.Exact, replay.Exact,
		first.WindowEvents, replay.WindowEvents,
		first.WindowEvents == replay.WindowEvents)
	first.RecoveryCounters().Table("recovery events (run 1)").Render(os.Stdout)
	first.ObsReport().Render(os.Stdout)
}
