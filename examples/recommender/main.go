// Recommender: DeepLight/NCF-style embedding-gradient aggregation.
//
// Recommendation models keep most of their weights in huge embedding
// tables; each mini-batch touches only a few rows, so the gradient is
// extremely sparse and block-structured (Table 1 of the paper: DeepLight
// gradients are 99.73% sparse). This example trains a real logistic model
// with an embedding table across four workers, aggregating gradients with
// OmniReduce, and reports how little data actually moved.
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"sync"

	"omnireduce"
	"omnireduce/internal/ddl"
)

// omniReducer adapts an OmniReduce cluster to the trainer's Reducer
// interface, splitting each gradient into buckets and keeping them all in
// flight at once with AllReduceAsync — the DDP bucket-pipelining pattern
// the paper's PyTorch integration uses.
type omniReducer struct {
	cluster *omnireduce.LocalCluster
	buckets int
}

func (r *omniReducer) Reduce(grads [][]float32) error {
	var wg sync.WaitGroup
	errs := make([]error, len(grads))
	for w := range grads {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := len(grads[w])
			pendings := make([]*omnireduce.Pending, 0, r.buckets)
			for b := 0; b < r.buckets; b++ {
				lo := b * n / r.buckets
				hi := (b + 1) * n / r.buckets
				p, err := r.cluster.Worker(w).AllReduceAsync(grads[w][lo:hi])
				if err != nil {
					errs[w] = err
					return
				}
				pendings = append(pendings, p)
			}
			for _, p := range pendings {
				if err := p.Wait(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func main() {
	const workers = 4

	cluster, err := omnireduce.NewLocalCluster(omnireduce.Options{
		Workers: workers,
		Streams: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A click-through-rate-style task: 64 dense features plus a 20k-row
	// embedding table of width 16 (327k parameters total). Each example
	// activates a handful of rows, so gradients are sparse.
	task := ddl.NewTask(64, 20_000, 16, 7)
	fmt.Printf("training CTR model: %d parameters (%d embedding rows x %d)\n",
		task.Dim(), 20_000, 16)

	res, err := task.Train(ddl.TrainConfig{
		Workers:    workers,
		Batch:      32,
		Iterations: 150,
		LR:         0.5,
		Seed:       11,
		Reducer:    &omniReducer{cluster: cluster, buckets: 4},
		LossEvery:  30,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("loss trajectory:", formatLosses(res.Losses))
	fmt.Printf("final held-out accuracy: %.1f%%\n", res.Accuracy*100)
	fmt.Printf("observed gradient sparsity on the wire: %.2f%% zeros "+
		"(%.2f%% of 256-blocks non-zero)\n",
		res.GradStats.MeanSparsity*100, res.GradStats.MeanBlockDensity*100)
	st := cluster.Worker(0).Stats()
	fmt.Printf("worker 0 traffic: %d packets, %d non-zero data blocks\n",
		st.PacketsSent, st.BlocksSent)
}

func formatLosses(ls []float64) string {
	out := ""
	for i, l := range ls {
		if i > 0 {
			out += " -> "
		}
		out += fmt.Sprintf("%.3f", l)
	}
	return out
}
