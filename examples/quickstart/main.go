// Quickstart: a minimal in-process OmniReduce deployment.
//
// Four workers each hold a sparse gradient; AllReduce sums them so every
// worker ends with the identical global gradient, transmitting only the
// non-zero blocks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"omnireduce"
)

func main() {
	const (
		workers  = 4
		elements = 1 << 20 // 4 MB of float32 gradient per worker
		sparsity = 0.95
	)

	cluster, err := omnireduce.NewLocalCluster(omnireduce.Options{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Build per-worker sparse gradients and the expected global sum.
	gradients := make([][]float32, workers)
	expected := make([]float32, elements)
	rng := rand.New(rand.NewSource(1))
	for w := range gradients {
		gradients[w] = make([]float32, elements)
		for i := range gradients[w] {
			if rng.Float64() >= sparsity {
				v := float32(rng.NormFloat64())
				gradients[w][i] = v
				expected[i] += v
			}
		}
	}

	// Every worker calls AllReduce collectively (one goroutine each).
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := cluster.Worker(w).AllReduce(gradients[w]); err != nil {
				log.Fatalf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	// Verify: all workers hold the global sum.
	var maxErr float64
	for w := 0; w < workers; w++ {
		for i := range expected {
			d := float64(gradients[w][i]) - float64(expected[i])
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	st := cluster.Worker(0).Stats()
	fmt.Printf("AllReduce over %d workers, %d elements at %.0f%% sparsity\n",
		workers, elements, sparsity*100)
	fmt.Printf("max |error| vs reference sum: %.2g\n", maxErr)
	fmt.Printf("worker 0 sent %d data blocks in %d packets (zero blocks skipped)\n",
		st.BlocksSent, st.PacketsSent)
}
