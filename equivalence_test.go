package omnireduce

// Property-based equivalence tests: on the same inputs, OmniReduce's
// sparse AllReduce must agree with the plain dense float32 sum and with
// every comparison collective the paper evaluates against (§6.1) — ring
// AllReduce, a parameter server, and SparCML's split-allgather — across
// randomized sparsity, block sizes, and worker counts, and across the
// channel, TCP, and lossy-UDP transports.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/collective"
	"omnireduce/internal/core"
	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
)

// randWorkload builds per-worker inputs at the given density and their
// dense float32 reference sum (accumulated in input order).
func randWorkload(n, workers int, density float64, seed int64) (inputs [][]float32, want []float32) {
	rng := rand.New(rand.NewSource(seed))
	inputs = make([][]float32, workers)
	want = make([]float32, n)
	for w := range inputs {
		inputs[w] = make([]float32, n)
		for i := range inputs[w] {
			if rng.Float64() < density {
				v := float32(rng.NormFloat64())
				inputs[w][i] = v
				want[i] += v
			}
		}
	}
	return inputs, want
}

func maxAbsDiff(got, want []float32) float64 {
	var m float64
	for i := range want {
		d := math.Abs(float64(got[i]) - float64(want[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// runConcurrent runs fn on n goroutines and returns the first error.
func runConcurrent(n int, fn func(r int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(r)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// omniSum runs OmniReduce over an in-process cluster and returns each
// worker's result.
func omniSum(o Options, inputs [][]float32) ([][]float32, error) {
	c, err := NewLocalCluster(o)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	out := make([][]float32, len(inputs))
	for w := range inputs {
		out[w] = append([]float32(nil), inputs[w]...)
	}
	if err := runConcurrent(len(inputs), func(w int) error {
		return c.Worker(w).AllReduce(out[w])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// comms builds a fresh channel fabric with one Comm per rank.
func comms(n int) ([]*collective.Comm, error) {
	nw := transport.NewNetwork(n, 4096)
	cs := make([]*collective.Comm, n)
	for r := 0; r < n; r++ {
		c, err := collective.NewComm(nw.Conn(r), n)
		if err != nil {
			return nil, err
		}
		cs[r] = c
	}
	return cs, nil
}

func ringSum(inputs [][]float32) ([][]float32, error) {
	n := len(inputs)
	cs, err := comms(n)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range cs {
			c.Close()
		}
	}()
	out := make([][]float32, n)
	for r := range inputs {
		out[r] = append([]float32(nil), inputs[r]...)
	}
	if err := runConcurrent(n, func(r int) error {
		return cs[r].RingAllReduce(out[r])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func psSum(inputs [][]float32) ([][]float32, error) {
	n := len(inputs)
	nw := transport.NewNetwork(n, 4096)
	serverIDs := []int{n}
	for _, id := range serverIDs {
		conn := nw.AddNode(id)
		srv := collective.NewPSServer(conn, n)
		go srv.Run()
		defer conn.Close()
	}
	clients := make([]*collective.PSClient, n)
	for r := 0; r < n; r++ {
		c, err := collective.NewComm(nw.Conn(r), n)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		clients[r] = collective.NewPSClient(c, serverIDs)
	}
	out := make([][]float32, n)
	for r := range inputs {
		out[r] = append([]float32(nil), inputs[r]...)
	}
	if err := runConcurrent(n, func(r int) error {
		return clients[r].ReduceDense(out[r])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func sparcmlSum(inputs [][]float32) ([][]float32, error) {
	n := len(inputs)
	cs, err := comms(n)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range cs {
			c.Close()
		}
	}()
	out := make([][]float32, n)
	if err := runConcurrent(n, func(r int) error {
		coo := tensor.FromDense(tensor.FromSlice(inputs[r]))
		res, err := cs[r].SSARSplitAllgather(coo)
		if err != nil {
			return err
		}
		out[r] = res.ToDense().Data
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// TestEquivalenceProperty is the property sweep: random trials over worker
// count, tensor length, block size, fusion width, stream count, and
// sparsity; every algorithm must land on the dense sum.
func TestEquivalenceProperty(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 4
	}
	const tol = 1e-3
	rng := rand.New(rand.NewSource(20210817))
	blockSizes := []int{16, 32, 64, 128, 256}
	densities := []float64{0.01, 0.1, 0.5, 1.0}
	for trial := 0; trial < trials; trial++ {
		workers := 2 + rng.Intn(3)
		n := 1_000 + rng.Intn(30_000)
		o := Options{
			Workers:     workers,
			BlockSize:   blockSizes[rng.Intn(len(blockSizes))],
			FusionWidth: 1 << rng.Intn(4),
			Streams:     1 + rng.Intn(4),
			Aggregators: 1 + rng.Intn(2),
		}
		density := densities[rng.Intn(len(densities))]
		seed := rng.Int63()
		name := fmt.Sprintf("w%d_n%d_bs%d_f%d_s%d_d%g",
			workers, n, o.BlockSize, o.FusionWidth, o.Streams, density)
		t.Run(name, func(t *testing.T) {
			inputs, want := randWorkload(n, workers, density, seed)

			algos := []struct {
				name string
				run  func() ([][]float32, error)
			}{
				{"omnireduce", func() ([][]float32, error) { return omniSum(o, inputs) }},
				{"ring", func() ([][]float32, error) { return ringSum(inputs) }},
				{"paramserver", func() ([][]float32, error) { return psSum(inputs) }},
				{"sparcml", func() ([][]float32, error) { return sparcmlSum(inputs) }},
			}
			for _, a := range algos {
				out, err := a.run()
				if err != nil {
					t.Fatalf("%s: %v", a.name, err)
				}
				for r := range out {
					if d := maxAbsDiff(out[r], want); d > tol {
						t.Fatalf("%s rank %d drifted %g from dense sum", a.name, r, d)
					}
				}
			}
		})
	}
}

// TestEquivalenceAcrossTransports runs the same workload through the
// channel fabric, real TCP sockets, and lossy UDP (chaos drop + dup), and
// demands the same result from all three.
func TestEquivalenceAcrossTransports(t *testing.T) {
	const workers, n = 2, 8_000
	o := Options{Workers: workers, Streams: 2, BlockSize: 64}
	inputs, want := randWorkload(n, workers, 0.2, 51)
	const tol = 1e-3

	check := func(name string, out [][]float32) {
		t.Helper()
		for r := range out {
			if d := maxAbsDiff(out[r], want); d > tol {
				t.Fatalf("%s rank %d drifted %g from dense sum", name, r, d)
			}
		}
	}

	// Channel fabric.
	out, err := omniSum(o, inputs)
	if err != nil {
		t.Fatal(err)
	}
	check("channel", out)

	// TCP loopback through the public cross-process API.
	t.Run("tcp", func(t *testing.T) {
		agg, err := NewTCPAggregator(workers, map[int]string{workers: "127.0.0.1:0"}, o)
		if err != nil {
			t.Fatalf("aggregator: %v", err)
		}
		addrs := map[int]string{workers: agg.Addr()}
		go agg.Run()
		defer agg.Close()
		ws := make([]*Worker, workers)
		for i := range ws {
			w, err := NewTCPWorker(i, addrs, o)
			if err != nil {
				t.Fatalf("worker %d: %v", i, err)
			}
			defer w.Close()
			ws[i] = w
		}
		out := make([][]float32, workers)
		for r := range inputs {
			out[r] = append([]float32(nil), inputs[r]...)
		}
		if err := runConcurrent(workers, func(r int) error {
			return ws[r].AllReduce(out[r])
		}); err != nil {
			t.Fatal(err)
		}
		check("tcp", out)
	})

	// Lossy UDP: real sockets with the chaos fabric dropping and
	// duplicating on top, so Algorithm 2's recovery is on the path.
	t.Run("udp-lossy", func(t *testing.T) {
		cfg := core.Config{
			Workers:           workers,
			Aggregators:       []int{workers},
			Streams:           2,
			BlockSize:         64,
			Reliable:          false,
			RetransmitTimeout: 20 * time.Millisecond,
		}
		fabric := transport.NewChaosFabric(transport.Scenario{
			Seed:   61,
			Phases: []transport.Phase{{Drop: 0.03, Dup: 0.02}},
		})
		aggConn, err := transport.NewUDP(workers, map[int]string{workers: "127.0.0.1:0"})
		if err != nil {
			t.Fatalf("udp aggregator: %v", err)
		}
		agg, err := core.NewAggregator(fabric.Wrap(aggConn), cfg)
		if err != nil {
			t.Fatal(err)
		}
		go agg.Run()
		defer aggConn.Close()
		cws := make([]*core.Worker, workers)
		for i := range cws {
			c, err := transport.NewUDP(i, map[int]string{
				i:       "127.0.0.1:0",
				workers: aggConn.Addr(),
			})
			if err != nil {
				t.Fatalf("udp worker %d: %v", i, err)
			}
			if err := aggConn.RegisterPeer(i, c.Addr()); err != nil {
				t.Fatalf("register worker %d: %v", i, err)
			}
			w, err := core.NewWorker(fabric.Wrap(c), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			cws[i] = w
		}
		out := make([][]float32, workers)
		for r := range inputs {
			out[r] = append([]float32(nil), inputs[r]...)
		}
		done := make(chan error, 1)
		go func() {
			done <- runConcurrent(workers, func(r int) error {
				return cws[r].AllReduce(out[r])
			})
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("lossy UDP job timed out")
		}
		if fabric.Counts().Total() == 0 {
			t.Fatal("chaos fabric injected nothing over UDP")
		}
		check("udp-lossy", out)
	})
}
