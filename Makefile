# Development targets. `make tier1` is the gate every change must keep
# green; `make race` is the heavier concurrency tier CI runs on top, and
# `make drift` guards live-cluster/simulator protocol equivalence.

GO ?= go

.PHONY: all tier1 vet race short-race fuzz chaos bench drift obs timeline tenants failover clean

all: tier1

# Tier 1: the baseline build-and-test gate.
tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: vet, the observability/leak-audit suite, the timeline
# pipeline, the multi-tenant tier, the elastic-membership failover tier,
# then the full test suite under the race detector.
race: vet obs timeline tenants failover
	$(GO) test -race ./...

# Failover tier: elastic membership and aggregator handoff. The protocol
# view/epoch machine traces, the checkpoint snapshot round-trip, the
# live chaos-kill end-to-end (an aggregator dies mid-collective, a
# standby is activated, results stay bit-exact), the sparse
# multi-aggregator routing regression, the drain/watchdog suppression
# regression, and the sim-vs-live failover drift test — all under the
# race detector.
failover:
	$(GO) test -race -run 'TestView|TestFailoverPumpHandoff|TestCheckpoint' ./internal/protocol/ ./internal/wire/
	$(GO) test -race -run 'TestCheckpointGobRoundTrip|TestFailoverLiveChaosKill|TestSparseLiveMultiAggregator|TestDrainSuppressesPostmortem' -v ./internal/core/
	$(GO) test -race -run 'TestFailoverDriftLiveVsSim' -v ./internal/netsim/simproto/

# Multi-tenant tier: the job registry and DRR scheduler suites, the
# fairness/isolation/drain end-to-end tests (multiplexed jobs must be
# bit-identical to solo runs, quotas must reject typed, drain must finish
# in-flight rounds with balanced buffer pools), and the 30-second
# starvation soak that bounds a quiet tenant's p95 latency while a noisy
# tenant floods the aggregator.
tenants:
	$(GO) test -race ./internal/tenant/
	$(GO) test -race -run 'TestControl' ./internal/wire/
	$(GO) test -race -run 'TestMultiJob|TestJobsDoNotDisturb|TestMaxJobsQuotaTyped|TestMaxInFlightOpsQuotaTyped|TestTidCollisionRejected|TestNamespaceSquattingRejected|TestAggregatorDrain|TestJobReopenAfterClose|TestSparseJobCollective' ./internal/core/
	OMNIREDUCE_SOAK=1 $(GO) test -race -run 'TestStarvationSoak' -v -timeout 10m ./internal/core/

# Observability tier: the obs package plus the race-enabled leak-audit and
# receive-pump suites — every pooled GetBuf must be matched by a PutBuf
# across teardown, overflow must not stall the pump, and the disabled
# trace path must stay allocation-free.
obs:
	$(GO) test -race ./internal/obs/
	$(GO) test -race -run 'TestEndOpDrainsQueuedMessages|TestRecvPumpOverflowDoesNotStallOtherOps|TestReliableOverflowFailsOp|TestBadPacketsCountedAndRecycled|TestChaos' ./internal/core/
	$(GO) test -race -run 'TestNetworkCloseReclaimsQueuedBuffers|TestNetworkSendAfterPeerClose|TestNetworkConcurrentSendClose|TestTCPCloseDrainsRecvQueue|TestPoolBalanceCounts' ./internal/transport/
	$(GO) run ./cmd/obsreport -o ""

# Timeline tier: the chaos example with flight-recorder dumps enabled,
# merged and rendered by tracetool, gated on its health checks — positive
# slot occupancy, every round completed, and the measured look-ahead skip
# ratio within 1% of the generated workload's exact expectation.
timeline:
	@dir=$$(mktemp -d) && \
	( $(GO) run ./examples/lossynet -dump-dir $$dir && \
	  $(GO) run ./cmd/tracetool -check -o $$dir/timeline.json $$dir/flight.json ); \
	rc=$$?; rm -rf $$dir; exit $$rc

# Quick race pass: skips the long-running scenarios (-short), for local
# iteration.
short-race: vet
	$(GO) test -race -short ./...

# Chaos suite only: the seeded fault-injection end-to-end tests.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/core/ ./internal/transport/

# Continuous fuzzing of the wire decoders (FUZZTIME to override).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodePacket -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeSparsePacket -fuzztime $(FUZZTIME) ./internal/wire/

# Bench tier: the wall-clock datapath benchmarks with allocation stats,
# recorded to BENCH_datapath.json (baseline preserved across reruns) so
# the perf trajectory is tracked across PRs. Repeated runs (-count=3 on
# the live collectives and wire microbenches) record the best observed
# value per metric, which filters scheduler and GC noise on shared
# boxes. benchjson also gates the pinned benchmark families against the
# previous recording: >10% growth in allocs/op or >35% loss in MB/s
# (throughput is the noisier metric) fails the tier.
bench:
	( $(GO) test -run '^$$' -bench '^(BenchmarkAllReduceLive|BenchmarkAllReduceTCPLive|BenchmarkMultiJobLive)$$' -benchmem -benchtime 5x -count=3 . ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkAllReduceUDPLive$$' -benchmem -benchtime 10x . ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkFailoverHandoff$$' -benchtime 5x . ; \
	  for i in 1 2 3 4 5 6 7; do \
	    $(GO) test -run '^$$' -bench '^BenchmarkTracerOverhead$$' -benchmem -benchtime 30x . ; \
	  done ; \
	  $(GO) test -run '^$$' -bench '^(BenchmarkPacketEncode|BenchmarkPacketDecode|BenchmarkPacketDecodeInto)$$' -benchmem -count=3 ./internal/wire/ ; \
	  $(GO) test -run '^$$' -bench '^(BenchmarkComputeBitmap|BenchmarkDenseAdd)$$' -benchmem ./internal/tensor/ ) \
	| $(GO) run ./cmd/benchjson -o BENCH_datapath.json \
	    -gate 'BenchmarkAllReduceLive,BenchmarkPacketEncode,BenchmarkPacketDecode' \
	    -gate-pct 10 -gate-mbs-pct 35
	$(GO) run ./cmd/obsreport -o OBS_datapath.json
	# Portable-flavor sanity run (scalar syscalls even on Linux); not
	# recorded to BENCH_datapath.json because the "scalar" sub-benchmark
	# above already carries the runtime-toggled scalar numbers.
	$(GO) test -tags portable_net -run '^$$' -bench '^BenchmarkAllReduceUDPLive$$' -benchmem -benchtime 2x .

# Full benchmark sweep (paper figures + wall clock), single iteration.
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Drift tier: the substrate-equivalence test (live channel cluster vs the
# discrete-event simulator must produce identical per-worker packet,
# block, and byte counts and bit-identical results), the batched-vs-scalar
# UDP equivalence test under both build flavors (fast-path recvmmsg/
# sendmmsg and the portable_net scalar build must report identical Stats
# and bit-identical results), plus vet. Together: live-batched ≡
# live-scalar ≡ sim.
drift:
	$(GO) vet ./...
	$(GO) test -run 'TestSubstrateEquivalence' -v ./internal/netsim/simproto/
	$(GO) test -run 'TestBatchedScalarEquivalence' -v ./internal/core/
	$(GO) test -tags portable_net -run 'TestBatchedScalarEquivalence' -v ./internal/core/

clean:
	$(GO) clean -testcache
