# Development targets. `make tier1` is the gate every change must keep
# green; `make race` is the heavier concurrency tier CI runs on top, and
# `make drift` guards live-cluster/simulator protocol equivalence.

GO ?= go

.PHONY: all tier1 vet race short-race fuzz chaos bench drift obs clean

all: tier1

# Tier 1: the baseline build-and-test gate.
tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: vet, the observability/leak-audit suite, then the full test
# suite under the race detector.
race: vet obs
	$(GO) test -race ./...

# Observability tier: the obs package plus the race-enabled leak-audit and
# receive-pump suites — every pooled GetBuf must be matched by a PutBuf
# across teardown, overflow must not stall the pump, and the disabled
# trace path must stay allocation-free.
obs:
	$(GO) test -race ./internal/obs/
	$(GO) test -race -run 'TestEndOpDrainsQueuedMessages|TestRecvPumpOverflowDoesNotStallOtherOps|TestReliableOverflowFailsOp|TestBadPacketsCountedAndRecycled|TestChaos' ./internal/core/
	$(GO) test -race -run 'TestNetworkCloseReclaimsQueuedBuffers|TestNetworkSendAfterPeerClose|TestNetworkConcurrentSendClose|TestTCPCloseDrainsRecvQueue|TestPoolBalanceCounts' ./internal/transport/
	$(GO) run ./cmd/obsreport -o ""

# Quick race pass: skips the long-running scenarios (-short), for local
# iteration.
short-race: vet
	$(GO) test -race -short ./...

# Chaos suite only: the seeded fault-injection end-to-end tests.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/core/ ./internal/transport/

# Continuous fuzzing of the wire decoders (FUZZTIME to override).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodePacket -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeSparsePacket -fuzztime $(FUZZTIME) ./internal/wire/

# Bench tier: the wall-clock datapath benchmarks with allocation stats,
# recorded to BENCH_datapath.json (baseline preserved across reruns) so
# the perf trajectory is tracked across PRs.
bench:
	( $(GO) test -run '^$$' -bench '^(BenchmarkAllReduceLive|BenchmarkAllReduceTCPLive)$$' -benchmem -benchtime 2x . ; \
	  $(GO) test -run '^$$' -bench '^(BenchmarkPacketEncode|BenchmarkPacketDecode|BenchmarkPacketDecodeInto)$$' -benchmem ./internal/wire/ ; \
	  $(GO) test -run '^$$' -bench '^(BenchmarkComputeBitmap|BenchmarkDenseAdd)$$' -benchmem ./internal/tensor/ ) \
	| $(GO) run ./cmd/benchjson -o BENCH_datapath.json
	$(GO) run ./cmd/obsreport -o OBS_datapath.json

# Full benchmark sweep (paper figures + wall clock), single iteration.
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Drift tier: the substrate-equivalence test (live channel cluster vs the
# discrete-event simulator must produce identical per-worker packet,
# block, and byte counts and bit-identical results), plus vet.
drift:
	$(GO) vet ./...
	$(GO) test -run 'TestSubstrateEquivalence' -v ./internal/netsim/simproto/

clean:
	$(GO) clean -testcache
