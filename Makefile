# Development targets. `make tier1` is the gate every change must keep
# green; `make race` is the heavier concurrency tier CI runs on top.

GO ?= go

.PHONY: all tier1 vet race short-race fuzz chaos bench clean

all: tier1

# Tier 1: the baseline build-and-test gate.
tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: vet plus the full suite under the race detector.
race: vet
	$(GO) test -race ./...

# Quick race pass: skips the long-running scenarios (-short), for local
# iteration.
short-race: vet
	$(GO) test -race -short ./...

# Chaos suite only: the seeded fault-injection end-to-end tests.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/core/ ./internal/transport/

# Continuous fuzzing of the wire decoders (FUZZTIME to override).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodePacket -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeSparsePacket -fuzztime $(FUZZTIME) ./internal/wire/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean -testcache
