//go:build linux && arm64 && !portable_net

package transport

import "syscall"

const (
	sysRecvmmsg = syscall.SYS_RECVMMSG
	sysSendmmsg = syscall.SYS_SENDMMSG
)
