package transport

// Registry counters and trace events for the batched UDP datapath, the
// observability the batching tentpole is gated on: batch-size histograms
// show how many datagrams each syscall actually moved (the amortization
// factor), short/partial counters show how often the kernel returned or
// accepted less than a full batch, and the EvTxBatch/EvRxBatch trace
// events let the flight recorder and obsreport attribute batching
// effectiveness per run.

import (
	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
)

var (
	obsTxBatches       = obs.Default.Counter("udp_tx_batches")
	obsTxBatchDgrams   = obs.Default.Counter("udp_tx_batch_dgrams")
	obsTxBatchSize     = obs.Default.Histogram("udp_tx_batch_size")
	obsTxPartialWrites = obs.Default.Counter("udp_tx_partial_writes")

	obsRxBatches     = obs.Default.Counter("udp_rx_batches")
	obsRxBatchDgrams = obs.Default.Counter("udp_rx_batch_dgrams")
	obsRxBatchSize   = obs.Default.Histogram("udp_rx_batch_size")
	obsRxShortBatches = obs.Default.Counter("udp_rx_short_batches")
)

func obsEmitTxBatch(n int64) { obs.Emit(obs.EvTxBatch, 0, n) }
func obsEmitRxBatch(n int64) { obs.Emit(obs.EvRxBatch, 0, n) }

// BatchingSupported reports whether this build contains the batched
// (recvmmsg/sendmmsg) UDP fast path. False off Linux and under the
// portable_net build tag.
func BatchingSupported() bool { return batchIOAvailable }

// BatchCounters exports the batched-datapath tallies. The headline
// effectiveness number is dgrams/batches on each direction — how many
// syscalls the batching actually saved; short rx batches are normal
// (the socket simply had less queued), partial tx writes mean the kernel
// applied backpressure mid-batch.
func BatchCounters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("udp_tx_batches", obsTxBatches.Load())
	c.Add("udp_tx_batch_dgrams", obsTxBatchDgrams.Load())
	c.Add("udp_tx_partial_writes", obsTxPartialWrites.Load())
	c.Add("udp_rx_batches", obsRxBatches.Load())
	c.Add("udp_rx_batch_dgrams", obsRxBatchDgrams.Load())
	c.Add("udp_rx_short_batches", obsRxShortBatches.Load())
	return c
}
