package transport

import "sync"

// WedgedConn is a Conn that black-holes the datapath: Send succeeds and
// discards, Recv blocks until Close. It simulates the silent failure
// modes a heartbeat-free protocol cannot distinguish from slowness — a
// dead aggregator behind a healthy link, a switch eating one multicast
// group — and exists so the stall watchdog has something deterministic
// to detect in tests.
type WedgedConn struct {
	id int

	mu     sync.Mutex
	closed chan struct{}
	isDown bool
	sent   map[int]int64
}

// NewWedgedConn returns a wedged endpoint with the given node ID.
func NewWedgedConn(id int) *WedgedConn {
	return &WedgedConn{id: id, closed: make(chan struct{}), sent: make(map[int]int64)}
}

// Send implements Conn: it accepts and discards every message.
func (c *WedgedConn) Send(to int, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.isDown {
		return ErrClosed
	}
	c.sent[to]++
	return nil
}

// Recv implements Conn: it blocks until Close, then returns ErrClosed.
// No message is ever delivered.
func (c *WedgedConn) Recv() (Message, error) {
	<-c.closed
	return Message{}, ErrClosed
}

// LocalID implements Conn.
func (c *WedgedConn) LocalID() int { return c.id }

// Close implements Conn.
func (c *WedgedConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.isDown {
		c.isDown = true
		close(c.closed)
	}
	return nil
}

// Sent returns how many messages were swallowed for destination to.
func (c *WedgedConn) Sent(to int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent[to]
}
