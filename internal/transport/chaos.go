package transport

import (
	"sync"
	"time"
)

// Chaos fabric: a seeded, scriptable datagram-pathology injector.
//
// Lossy (above) injects uniform loss/duplication per endpoint. Chaos
// generalizes it into a fabric-wide wrapper that composes every pathology
// the paper's DPDK/UDP loss-recovery evaluation (§6, Appendix D) and real
// datacenter networks exhibit:
//
//   - uniform random loss,
//   - bursty loss following the Gilbert–Elliott two-state Markov model,
//   - duplication,
//   - bounded reordering (messages held back for a fixed span),
//   - per-link delay, and
//   - one-way partitions (blackholing a directed link).
//
// All decisions derive from a single Scenario seed through a stateless
// splitmix64 hash of (seed, src, dst, per-link sequence number), so the
// decision taken for the k-th message on a given directed link is a pure
// function of the scenario — independent of goroutine scheduling and of
// what other links do. Re-running a scenario replays identical injection
// decisions, which is what makes failures reproducible.
//
// Schedules are expressed in per-link packet counts, not wall-clock time:
// each directed link advances through the scenario's phases after sending
// Phase.Packets messages. Counting packets instead of seconds keeps phase
// transitions deterministic under retransmission-timer noise.

// Burst is a Gilbert–Elliott two-state loss model: a link flips between a
// good and a bad state with the given per-packet transition probabilities
// and drops packets with a state-dependent probability.
type Burst struct {
	// PEnter is P(good -> bad) evaluated once per packet.
	PEnter float64
	// PExit is P(bad -> good) evaluated once per packet.
	PExit float64
	// DropGood is the drop probability in the good state (usually 0).
	DropGood float64
	// DropBad is the drop probability in the bad state (usually near 1).
	DropBad float64
}

// Partition blackholes a directed link. From/To of -1 are wildcards, so
// Partition{From: 2, To: -1} silences everything node 2 sends while still
// delivering traffic to it — the paper's one-way failure case.
type Partition struct {
	From, To int
}

func (p Partition) matches(from, to int) bool {
	return (p.From == -1 || p.From == from) && (p.To == -1 || p.To == to)
}

// Phase is one step of a chaos schedule. Zero-valued fields inject
// nothing, so Phase{Packets: 100} is a clean phase.
type Phase struct {
	// Packets is the number of messages each directed link spends in this
	// phase before advancing to the next one; 0 means "until the end of
	// the run" (only meaningful for the final phase).
	Packets int
	// Drop is the uniform per-message loss probability.
	Drop float64
	// Burst, when non-nil, adds Gilbert–Elliott bursty loss on top of the
	// uniform loss.
	Burst *Burst
	// Dup is the probability a delivered message is sent twice.
	Dup float64
	// Reorder is the probability a message is held back and released only
	// after ReorderSpan subsequent messages on the same link, swapping its
	// position in the stream.
	Reorder float64
	// ReorderSpan bounds how many later messages overtake a held one
	// (default 1: adjacent swap, like Lossy.SetReorder).
	ReorderSpan int
	// Delay is the maximum extra latency added to a delayed message; the
	// actual delay is a deterministic fraction of it.
	Delay time.Duration
	// DelayP is the probability a message is delayed.
	DelayP float64
	// Partitions lists the directed links blackholed during this phase.
	Partitions []Partition
}

// Scenario is a seeded chaos script: the same Scenario always produces the
// same per-link injection decisions.
type Scenario struct {
	// Seed drives every injection decision.
	Seed int64
	// Window is the per-link packet count over which injection events are
	// tallied into WindowEvents. As long as every link sends at least
	// Window messages (true for any run that completes more rounds than
	// Window), the tally is exactly reproducible across runs; 0 counts
	// every event, which is reproducible only if total traffic is.
	Window int
	// Phases is the per-link schedule; a link past the final phase (or an
	// empty schedule) experiences no injection.
	Phases []Phase
}

// phaseAt returns the phase governing a link's seq-th packet, or nil after
// the schedule is exhausted.
func (sc *Scenario) phaseAt(seq int) *Phase {
	start := 0
	for i := range sc.Phases {
		p := &sc.Phases[i]
		if p.Packets <= 0 || seq < start+p.Packets {
			return p
		}
		start += p.Packets
	}
	return nil
}

// EventCounts tallies the injections a fabric performed.
type EventCounts struct {
	Sent        int64 // messages offered to the fabric
	Dropped     int64 // uniform-loss drops
	BurstDrops  int64 // Gilbert–Elliott drops
	Duplicated  int64
	Reordered   int64 // messages held and released out of order
	Delayed     int64
	Partitioned int64 // messages blackholed by a partition
}

// Total returns the number of injection events (Sent excluded).
func (e EventCounts) Total() int64 {
	return e.Dropped + e.BurstDrops + e.Duplicated + e.Reordered + e.Delayed + e.Partitioned
}

// ChaosFabric owns the shared per-link state of one chaos scenario. Wrap
// every participant's Conn with Wrap; the fabric keys its state by the
// directed (src, dst) pair, so a scenario describes the whole network.
type ChaosFabric struct {
	sc Scenario

	mu           sync.Mutex
	links        map[linkKey]*linkState
	counts       EventCounts
	windowEvents int64
}

type linkKey struct{ from, to int }

type linkState struct {
	seq  int  // messages offered on this link so far
	bad  bool // Gilbert–Elliott state
	held []heldEntry
}

type heldEntry struct {
	to     int
	data   []byte
	dueSeq int // release once the link's seq reaches this value
}

// NewChaosFabric creates the shared injector for a scenario.
func NewChaosFabric(sc Scenario) *ChaosFabric {
	return &ChaosFabric{sc: sc, links: make(map[linkKey]*linkState)}
}

// Scenario returns the fabric's script.
func (f *ChaosFabric) Scenario() Scenario { return f.sc }

// Counts returns a snapshot of the injection tallies.
func (f *ChaosFabric) Counts() EventCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// WindowEvents returns the number of injection events that occurred within
// the first Scenario.Window packets of each link — the deterministic
// replay fingerprint of a run.
func (f *ChaosFabric) WindowEvents() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.windowEvents
}

// Wrap returns a Conn that routes inner's outgoing traffic through the
// fabric. Recv, LocalID, and Close pass through.
func (f *ChaosFabric) Wrap(inner Conn) *ChaosConn {
	return &ChaosConn{f: f, inner: inner}
}

// splitmix64 is the stateless mixing function behind every decision.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Per-decision salts, so independent decisions on the same packet draw
// independent uniforms.
const (
	saltDrop uint64 = iota + 1
	saltDup
	saltReorder
	saltDelayP
	saltDelayD
	saltGEFlip
	saltGEDrop
)

// roll returns a deterministic uniform in [0, 1) for one decision on one
// packet of one link.
func (f *ChaosFabric) roll(from, to, seq int, salt uint64) float64 {
	h := splitmix64(uint64(f.sc.Seed))
	h = splitmix64(h ^ uint64(uint32(from)))
	h = splitmix64(h ^ uint64(uint32(to))<<32)
	h = splitmix64(h ^ uint64(uint32(seq)))
	h = splitmix64(h ^ salt)
	return float64(h>>11) / (1 << 53)
}

// decision is the plan computed for one message under the fabric lock and
// executed outside it.
type decision struct {
	send     bool
	dup      bool
	delay    time.Duration
	releases []heldEntry
	hold     bool
}

// decide advances the link state for one message and computes its fate.
func (f *ChaosFabric) decide(from, to int, data []byte) decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := linkKey{from, to}
	ls := f.links[key]
	if ls == nil {
		ls = &linkState{}
		f.links[key] = ls
	}
	seq := ls.seq
	ls.seq++
	f.counts.Sent++
	inWindow := f.sc.Window == 0 || seq < f.sc.Window
	event := func(counter *int64) {
		*counter++
		if inWindow {
			f.windowEvents++
		}
	}

	var d decision
	// Due held messages are released regardless of the current message's
	// fate, preserving the bounded-reorder guarantee.
	rest := ls.held[:0]
	for _, h := range ls.held {
		if h.dueSeq <= ls.seq {
			d.releases = append(d.releases, h)
		} else {
			rest = append(rest, h)
		}
	}
	ls.held = rest

	ph := f.sc.phaseAt(seq)
	if ph == nil {
		d.send = true
		return d
	}
	for _, part := range ph.Partitions {
		if part.matches(from, to) {
			event(&f.counts.Partitioned)
			return d
		}
	}
	if ph.Burst != nil {
		// Advance the Gilbert–Elliott chain, then apply the state's drop
		// probability. The chain is per-link and per-packet, so its state
		// at seq k is a deterministic fold over rolls 0..k.
		flip := f.roll(from, to, seq, saltGEFlip)
		if ls.bad {
			if flip < ph.Burst.PExit {
				ls.bad = false
			}
		} else if flip < ph.Burst.PEnter {
			ls.bad = true
		}
		dropP := ph.Burst.DropGood
		if ls.bad {
			dropP = ph.Burst.DropBad
		}
		if dropP > 0 && f.roll(from, to, seq, saltGEDrop) < dropP {
			event(&f.counts.BurstDrops)
			return d
		}
	}
	if ph.Drop > 0 && f.roll(from, to, seq, saltDrop) < ph.Drop {
		event(&f.counts.Dropped)
		return d
	}
	if ph.Reorder > 0 && f.roll(from, to, seq, saltReorder) < ph.Reorder {
		span := ph.ReorderSpan
		if span <= 0 {
			span = 1
		}
		buf := make([]byte, len(data))
		copy(buf, data)
		ls.held = append(ls.held, heldEntry{to: to, data: buf, dueSeq: ls.seq + span})
		event(&f.counts.Reordered)
		d.hold = true
		return d
	}
	d.send = true
	if ph.Dup > 0 && f.roll(from, to, seq, saltDup) < ph.Dup {
		event(&f.counts.Duplicated)
		d.dup = true
	}
	if ph.Delay > 0 && ph.DelayP > 0 && f.roll(from, to, seq, saltDelayP) < ph.DelayP {
		frac := f.roll(from, to, seq, saltDelayD)
		d.delay = time.Duration(frac * float64(ph.Delay))
		if d.delay <= 0 {
			d.delay = time.Nanosecond
		}
		event(&f.counts.Delayed)
	}
	return d
}

// ChaosConn routes one endpoint's sends through its fabric.
type ChaosConn struct {
	f     *ChaosFabric
	inner Conn
}

// Send applies the scenario to one outgoing message.
func (c *ChaosConn) Send(to int, data []byte) error {
	d := c.f.decide(c.inner.LocalID(), to, data)
	var err error
	if d.send {
		if d.delay > 0 {
			// A delayed message leaves the caller's buffer ownership, so
			// copy; delivery errors after close are unreportable and
			// intentionally dropped, like a packet dying in flight.
			buf := make([]byte, len(data))
			copy(buf, data)
			dup := d.dup
			time.AfterFunc(d.delay, func() {
				_ = c.inner.Send(to, buf)
				if dup {
					_ = c.inner.Send(to, buf)
				}
			})
		} else {
			err = c.inner.Send(to, data)
			if err == nil && d.dup {
				err = c.inner.Send(to, data)
			}
		}
	}
	for _, h := range d.releases {
		if e := c.inner.Send(h.to, h.data); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// SendBatch applies the scenario to a whole burst of outgoing messages,
// forwarding the survivors in one batched operation when the inner
// transport supports it. Per-message fates are identical to Send's —
// decide() advances the same per-link state in the same order — so a
// chaos-wrapped batched UDP path injects exactly what the scalar path
// would; only the syscall count differs. Delayed messages leave the
// batch (they need a timer and a private copy), matching Send.
func (c *ChaosConn) SendBatch(msgs []Outgoing) error {
	from := c.inner.LocalID()
	out := make([]Outgoing, 0, len(msgs))
	for _, m := range msgs {
		d := c.f.decide(from, m.To, m.Data)
		if d.send {
			if d.delay > 0 {
				buf := make([]byte, len(m.Data))
				copy(buf, m.Data)
				to, dup := m.To, d.dup
				time.AfterFunc(d.delay, func() {
					_ = c.inner.Send(to, buf)
					if dup {
						_ = c.inner.Send(to, buf)
					}
				})
			} else {
				out = append(out, m)
				if d.dup {
					out = append(out, m)
				}
			}
		}
		for _, h := range d.releases {
			out = append(out, Outgoing{To: h.to, Data: h.data})
		}
	}
	return SendAll(c.inner, out)
}

// Flush releases every message the fabric still holds for reordering on
// this endpoint's links. Rarely needed: held messages self-release as
// retransmissions generate new traffic on the link.
func (c *ChaosConn) Flush() error {
	from := c.inner.LocalID()
	c.f.mu.Lock()
	var rel []heldEntry
	for k, ls := range c.f.links {
		if k.from != from {
			continue
		}
		rel = append(rel, ls.held...)
		ls.held = nil
	}
	c.f.mu.Unlock()
	var err error
	for _, h := range rel {
		if e := c.inner.Send(h.to, h.data); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Recv forwards to the inner connection.
func (c *ChaosConn) Recv() (Message, error) { return c.inner.Recv() }

// LocalID forwards to the inner connection.
func (c *ChaosConn) LocalID() int { return c.inner.LocalID() }

// Close forwards to the inner connection.
func (c *ChaosConn) Close() error { return c.inner.Close() }
