package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestNetworkDelivery(t *testing.T) {
	nw := NewNetwork(3, 16)
	a, b := nw.Conn(0), nw.Conn(1)
	if err := a.Send(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || string(m.Data) != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestNetworkSendCopies(t *testing.T) {
	nw := NewNetwork(2, 4)
	a, b := nw.Conn(0), nw.Conn(1)
	buf := []byte("abc")
	if err := a.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	m, _ := b.Recv()
	if string(m.Data) != "abc" {
		t.Fatalf("Send did not copy: %q", m.Data)
	}
}

func TestNetworkUnknownPeer(t *testing.T) {
	nw := NewNetwork(1, 4)
	if err := nw.Conn(0).Send(9, nil); err == nil {
		t.Fatal("expected error for unknown peer")
	}
}

func TestNetworkOrderingPerSender(t *testing.T) {
	nw := NewNetwork(2, 128)
	a, b := nw.Conn(0), nw.Conn(1)
	for i := 0; i < 100; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Data[0] != byte(i) {
			t.Fatalf("out of order: got %d want %d", m.Data[0], i)
		}
	}
}

func TestNetworkCloseUnblocksRecv(t *testing.T) {
	nw := NewNetwork(1, 4)
	c := nw.Conn(0)
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Recv returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestNetworkAddNode(t *testing.T) {
	nw := NewNetwork(1, 4)
	agg := nw.AddNode(100)
	if err := nw.Conn(0).Send(100, []byte("x")); err != nil {
		t.Fatal(err)
	}
	m, err := agg.Recv()
	if err != nil || string(m.Data) != "x" {
		t.Fatalf("m=%v err=%v", m, err)
	}
}

func TestLossyDropsDeterministically(t *testing.T) {
	nw := NewNetwork(2, 4096)
	l := NewLossy(nw.Conn(0), 0.5, 0, 42)
	const total = 2000
	for i := 0; i < total; i++ {
		if err := l.Send(1, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	dropped, _ := l.Stats()
	if dropped < total/2-100 || dropped > total/2+100 {
		t.Fatalf("dropped %d of %d at p=0.5", dropped, total)
	}
	// Deterministic across runs with the same seed.
	nw2 := NewNetwork(2, 4096)
	l2 := NewLossy(nw2.Conn(0), 0.5, 0, 42)
	for i := 0; i < total; i++ {
		l2.Send(1, []byte{1})
	}
	d2, _ := l2.Stats()
	if d2 != dropped {
		t.Fatalf("non-deterministic loss: %d vs %d", d2, dropped)
	}
}

func TestLossyDuplicates(t *testing.T) {
	nw := NewNetwork(2, 8192)
	l := NewLossy(nw.Conn(0), 0, 1.0, 1)
	for i := 0; i < 10; i++ {
		if err := l.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_, dups := l.Stats()
	if dups != 10 {
		t.Fatalf("dups = %d, want 10", dups)
	}
	b := nw.Conn(1)
	count := 0
	for i := 0; i < 20; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 20 {
		t.Fatalf("received %d, want 20", count)
	}
}

func TestTCPTransport(t *testing.T) {
	// Bind two endpoints on ephemeral ports, then cross-register.
	t0, err := NewTCP(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := NewTCP(1, map[int]string{1: "127.0.0.1:0", 0: t0.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	if err := t0.RegisterPeer(1, t1.Addr()); err != nil {
		t.Fatal(err)
	}

	if err := t0.Send(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	m, err := t1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || string(m.Data) != "ping" {
		t.Fatalf("got %+v", m)
	}
	if err := t1.Send(0, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	m, err = t0.Recv()
	if err != nil || string(m.Data) != "pong" || m.From != 1 {
		t.Fatalf("m=%+v err=%v", m, err)
	}
}

func TestTCPManyMessages(t *testing.T) {
	t0, err := NewTCP(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := NewTCP(1, map[int]string{1: "127.0.0.1:0", 0: t0.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()

	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := t1.Send(0, []byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := t0.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("m%d", i); string(m.Data) != want {
			t.Fatalf("got %q want %q", m.Data, want)
		}
	}
	wg.Wait()
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	t0, err := NewTCP(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := t0.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	t0.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Recv err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestUDPTransport(t *testing.T) {
	u0, err := NewUDP(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer u0.Close()
	u1, err := NewUDP(1, map[int]string{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer u1.Close()
	if err := u0.RegisterPeer(1, u1.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := u1.RegisterPeer(0, u0.Addr()); err != nil {
		t.Fatal(err)
	}

	if err := u0.Send(1, []byte("dgram")); err != nil {
		t.Fatal(err)
	}
	m, err := u1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || string(m.Data) != "dgram" {
		t.Fatalf("got %+v", m)
	}
}

// TestUDPWildcardHostBook covers the CLI's ":port" address-book form: a
// peer entry with no host can only mean "this machine" and must work on
// both the scalar and batched send paths, with correct sender
// attribution (the datagram arrives from 127.0.0.1, not the wildcard).
func TestUDPWildcardHostBook(t *testing.T) {
	for _, batched := range []bool{false, true} {
		name := "scalar"
		if batched {
			if !BatchingSupported() {
				continue
			}
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			u0, err := NewUDP(0, map[int]string{0: "127.0.0.1:0"})
			if err != nil {
				t.Fatal(err)
			}
			defer u0.Close()
			u1, err := NewUDP(1, map[int]string{1: "127.0.0.1:0"})
			if err != nil {
				t.Fatal(err)
			}
			defer u1.Close()
			u0.SetBatching(batched)
			u1.SetBatching(batched)
			port := func(u *UDP) string {
				_, p, err := net.SplitHostPort(u.Addr())
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			// Register each peer under the wildcard-host form.
			if err := u0.RegisterPeer(1, ":"+port(u1)); err != nil {
				t.Fatal(err)
			}
			if err := u1.RegisterPeer(0, ":"+port(u0)); err != nil {
				t.Fatal(err)
			}
			if err := u0.SendBatch([]Outgoing{{To: 1, Data: []byte("a")}, {To: 1, Data: []byte("b")}}); err != nil {
				t.Fatal(err)
			}
			if err := u0.Send(1, []byte("c")); err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"a", "b", "c"} {
				m, err := u1.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if m.From != 0 || string(m.Data) != want {
					t.Fatalf("got From=%d Data=%q, want From=0 Data=%q", m.From, m.Data, want)
				}
				PutBuf(m.Data)
			}
		})
	}
}

func TestUDPOversizeDatagram(t *testing.T) {
	u0, err := NewUDP(0, map[int]string{0: "127.0.0.1:0", 1: "127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	defer u0.Close()
	if err := u0.Send(1, make([]byte, MaxDatagram+1)); err == nil {
		t.Fatal("expected error for oversize datagram")
	}
}

func TestUDPCloseUnblocksRecv(t *testing.T) {
	u0, err := NewUDP(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := u0.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	u0.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Recv err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestLossyReorder(t *testing.T) {
	nw := NewNetwork(2, 64)
	l := NewLossy(nw.Conn(0), 0, 0, 7).SetReorder(1.0) // hold every other message
	for i := byte(0); i < 4; i++ {
		if err := l.Send(1, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	b := nw.Conn(1)
	var got []byte
	for i := 0; i < 4; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m.Data[0])
	}
	// With p=1: msg0 held; msg1 sent then releases msg0; msg2 held;
	// msg3 sent then releases msg2 -> order 1,0,3,2.
	want := []byte{1, 0, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Reordered() != 2 {
		t.Fatalf("Reordered = %d, want 2", l.Reordered())
	}
}

func TestLossyFlushEmpty(t *testing.T) {
	nw := NewNetwork(1, 4)
	l := NewLossy(nw.Conn(0), 0, 0, 1)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPUnknownSender(t *testing.T) {
	u0, err := NewUDP(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer u0.Close()
	// A stranger socket sends a datagram; it must be attributed id -1.
	stranger, err := NewUDP(9, map[int]string{9: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	if err := stranger.RegisterPeer(0, u0.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := stranger.Send(0, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	m, err := u0.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != -1 {
		t.Fatalf("unknown sender attributed id %d", m.From)
	}
}
