//go:build linux && amd64 && !portable_net

package transport

import "syscall"

// sendmmsg is absent from the stdlib's frozen amd64 syscall table;
// recvmmsg is present. Numbers are ABI-stable.
const (
	sysRecvmmsg = syscall.SYS_RECVMMSG
	sysSendmmsg = 307
)
