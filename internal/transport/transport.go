// Package transport abstracts the message fabrics OmniReduce runs over.
//
// The paper implements two data paths: DPDK/UDP (unreliable datagrams,
// recovered by Algorithm 2) and RDMA RoCE in Reliable Connected mode
// (at-most-once, in-order, reliable messages). This package provides the
// Go equivalents:
//
//   - an in-process channel transport (reliable and ordered, the default
//     RC stand-in and the fabric used by tests and examples),
//   - a TCP message transport (reliable and ordered across processes),
//   - a UDP datagram transport (unreliable, exercising loss recovery), and
//   - a deterministic loss/duplication injector that wraps any transport.
//
// All transports move opaque []byte messages between small-integer node
// IDs; the wire package defines what is inside the messages.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Message is one received datagram or message.
type Message struct {
	From int
	Data []byte
}

// Conn is one node's endpoint in a message fabric. Implementations must
// allow concurrent Send calls; Recv is typically called from one receive
// loop but implementations must tolerate concurrent callers.
//
// Ownership: Send takes ownership of nothing — it copies data as needed
// before returning, so the caller may immediately reuse the buffer. Recv
// returns a buffer owned by the caller; callers that are done with it may
// recycle it with PutBuf (transports draw receive buffers from GetBuf).
type Conn interface {
	// Send delivers data to node `to` (best effort for datagram fabrics).
	Send(to int, data []byte) error
	// Recv blocks until a message arrives or the connection closes.
	Recv() (Message, error)
	// LocalID returns this endpoint's node ID.
	LocalID() int
	// Close releases the endpoint; pending and future Recv calls return
	// ErrClosed.
	Close() error
}

// ErrClosed is returned by Recv and Send after Close.
var ErrClosed = errors.New("transport: connection closed")

// Outgoing is one queued outbound message for batched transmission.
// Ownership follows Send: the transport copies (or transmits) the data
// before SendBatch returns, so the caller may immediately reuse every
// buffer, including an arena shared by several entries.
type Outgoing struct {
	To   int
	Data []byte
}

// BatchSender is implemented by transports that can hand several
// messages to the kernel (or fabric) in one operation — the UDP
// transport's sendmmsg fast path. Messages are transmitted in slice
// order; an error may leave a prefix of the batch sent (datagram
// semantics: the unsent tail is indistinguishable from in-flight loss).
type BatchSender interface {
	SendBatch(msgs []Outgoing) error
}

// SendAll transmits msgs over conn in order, in one batched operation
// when the transport supports it and one Send per message otherwise.
// The two paths are semantically identical — same order, same best-effort
// delivery — so callers batch unconditionally and the fabric decides how
// many syscalls that costs.
func SendAll(conn Conn, msgs []Outgoing) error {
	if len(msgs) == 0 {
		return nil
	}
	if bs, ok := conn.(BatchSender); ok {
		return bs.SendBatch(msgs)
	}
	for _, m := range msgs {
		if err := conn.Send(m.To, m.Data); err != nil {
			return err
		}
	}
	return nil
}

// ErrUnknownPeer is returned by Send for an unregistered destination.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// Network is an in-process fabric connecting a fixed set of nodes through
// buffered channels. Delivery is reliable and per-sender ordered, matching
// RDMA RC semantics. The zero value is not usable; call NewNetwork.
type Network struct {
	mu    sync.Mutex
	boxes map[int]*box
	cap   int
}

// box is one node's inbox. closed/inflight implement the drain-on-close
// protocol: once a node's endpoint closes, its inbox is marked closed,
// new sends are dropped (the receiver is gone — datagram semantics at
// teardown), and every queued message's pooled buffer is returned, so a
// quiesced network holds no buffers. inflight counts senders that are
// past the closed check but have not finished enqueueing, letting the
// drain loop wait them out instead of racing them.
type box struct {
	ch       chan Message
	closed   atomic.Bool
	inflight atomic.Int64
}

// NewNetwork creates a fabric with nodes 0..n-1, each with a receive queue
// of queueCap messages (Send blocks when the destination queue is full,
// providing natural backpressure).
func NewNetwork(n, queueCap int) *Network {
	nw := &Network{boxes: make(map[int]*box, n), cap: queueCap}
	for i := 0; i < n; i++ {
		nw.boxes[i] = &box{ch: make(chan Message, queueCap)}
	}
	return nw
}

// AddNode registers an additional node ID (e.g. aggregators numbered after
// the workers) and returns its Conn.
func (nw *Network) AddNode(id int) Conn {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, ok := nw.boxes[id]; !ok {
		nw.boxes[id] = &box{ch: make(chan Message, nw.cap)}
	}
	return &chanConn{nw: nw, id: id}
}

// Conn returns node id's endpoint. The node must exist.
func (nw *Network) Conn(id int) Conn {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, ok := nw.boxes[id]; !ok {
		panic(fmt.Sprintf("transport: unknown node %d", id))
	}
	return &chanConn{nw: nw, id: id}
}

func (nw *Network) box(id int) *box {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.boxes[id]
}

// closeBox marks node id's inbox closed and drains it, recycling every
// queued buffer. It waits out senders already committed to enqueueing
// (inflight), so when it returns no pooled buffer remains in the box and
// none can arrive later.
func (nw *Network) closeBox(id int) {
	b := nw.box(id)
	if b == nil || b.closed.Swap(true) {
		return
	}
	for {
		select {
		case m := <-b.ch:
			PutBuf(m.Data)
			continue
		default:
		}
		if b.inflight.Load() == 0 && len(b.ch) == 0 {
			return
		}
		runtime.Gosched()
	}
}

type chanConn struct {
	nw     *Network
	id     int
	mu     sync.Mutex
	closed chan struct{} // lazily created
}

func (c *chanConn) closedCh() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed == nil {
		c.closed = make(chan struct{})
	}
	return c.closed
}

func (c *chanConn) Send(to int, data []byte) error {
	b := c.nw.box(to)
	if b == nil {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, to)
	}
	buf := GetBuf(len(data))
	copy(buf, data)
	// Commit to the enqueue (inflight) before checking closed: the drain
	// loop in closeBox waits for inflight to reach zero, so a send that
	// slips past a concurrent close is either dropped here or drained
	// there — never stranded with its buffer.
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	if b.closed.Load() {
		// The receiver is gone. Per-message best effort at teardown:
		// recycle and report success, like a datagram dying in flight.
		PutBuf(buf)
		return nil
	}
	select {
	case b.ch <- Message{From: c.id, Data: buf}:
		return nil
	case <-c.closedCh():
		PutBuf(buf)
		return ErrClosed
	}
}

func (c *chanConn) Recv() (Message, error) {
	b := c.nw.box(c.id)
	select {
	case m := <-b.ch:
		return m, nil
	case <-c.closedCh():
		// Drain any message that raced with close.
		select {
		case m := <-b.ch:
			return m, nil
		default:
		}
		return Message{}, ErrClosed
	}
}

func (c *chanConn) LocalID() int { return c.id }

func (c *chanConn) Close() error {
	ch := c.closedCh()
	c.mu.Lock()
	select {
	case <-ch:
		c.mu.Unlock()
		return nil
	default:
		close(ch)
	}
	c.mu.Unlock()
	// Drain this node's inbox so no pooled buffer is stranded in a queue
	// nobody will read. Sends targeting this node from now on are dropped.
	c.nw.closeBox(c.id)
	return nil
}

// Lossy wraps a Conn and drops, duplicates, or reorders outgoing messages
// with the given probabilities, using a seeded deterministic source. It
// emulates the paper's packet-loss experiments (Appendix D), where loss is
// injected "assuming uniform probability at a given loss rate".
type Lossy struct {
	inner     Conn
	mu        sync.Mutex
	rng       *rand.Rand
	dropP     float64
	dupP      float64
	reorderP  float64
	held      *heldMsg
	dropped   int
	dups      int
	reordered int
}

type heldMsg struct {
	to   int
	data []byte
}

// NewLossy wraps inner. dropP and dupP are per-message probabilities.
// Reordering is off by default; enable with SetReorder.
func NewLossy(inner Conn, dropP, dupP float64, seed int64) *Lossy {
	return &Lossy{inner: inner, rng: rand.New(rand.NewSource(seed)), dropP: dropP, dupP: dupP}
}

// SetReorder makes each surviving message be held back with probability p
// and released after the next message to the same fabric, swapping their
// order. Returns l for chaining.
func (l *Lossy) SetReorder(p float64) *Lossy {
	l.mu.Lock()
	l.reorderP = p
	l.mu.Unlock()
	return l
}

// Send drops the message with probability dropP, otherwise forwards it
// (possibly after the next message, when reordering is enabled) and
// possibly forwards a duplicate.
func (l *Lossy) Send(to int, data []byte) error {
	l.mu.Lock()
	drop := l.rng.Float64() < l.dropP
	dup := !drop && l.rng.Float64() < l.dupP
	hold := !drop && l.held == nil && l.rng.Float64() < l.reorderP
	if drop {
		l.dropped++
	}
	if dup {
		l.dups++
	}
	var release *heldMsg
	if !drop && !hold && l.held != nil {
		release = l.held
		l.held = nil
		l.reordered++
	}
	if hold {
		buf := make([]byte, len(data))
		copy(buf, data)
		l.held = &heldMsg{to: to, data: buf}
	}
	l.mu.Unlock()
	if drop {
		return nil
	}
	if !hold {
		if err := l.inner.Send(to, data); err != nil {
			return err
		}
		if dup {
			if err := l.inner.Send(to, data); err != nil {
				return err
			}
		}
	}
	if release != nil {
		return l.inner.Send(release.to, release.data)
	}
	return nil
}

// Flush releases any held (reorder-delayed) message immediately.
func (l *Lossy) Flush() error {
	l.mu.Lock()
	release := l.held
	l.held = nil
	l.mu.Unlock()
	if release != nil {
		return l.inner.Send(release.to, release.data)
	}
	return nil
}

// Recv forwards to the inner connection.
func (l *Lossy) Recv() (Message, error) { return l.inner.Recv() }

// LocalID forwards to the inner connection.
func (l *Lossy) LocalID() int { return l.inner.LocalID() }

// Close forwards to the inner connection.
func (l *Lossy) Close() error { return l.inner.Close() }

// Stats reports how many messages were dropped and duplicated.
func (l *Lossy) Stats() (dropped, duplicated int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped, l.dups
}

// Reordered reports how many message pairs were swapped.
func (l *Lossy) Reordered() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reordered
}
