package transport

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
)

// UDP is an unreliable datagram transport, the stand-in for the paper's
// DPDK/UDP data path. Messages may be dropped, duplicated, or reordered by
// the network; OmniReduce's Algorithm 2 recovers from all three. Peers are
// identified by a static id->address book.
//
// On Linux the transport batches datagram I/O: Recv drains the socket up
// to 32 datagrams per recvmmsg syscall into pooled buffers, and SendBatch
// hands whole emit bursts to sendmmsg, so the per-packet syscall cost of
// the scalar path is amortized ~an order of magnitude. The portable path
// (non-Linux, or the portable_net build tag, or SetBatching(false)) is
// byte-identical on the wire: same datagrams, same order, one syscall
// each. See udpbatch_linux.go / udpbatch_fallback.go.
type UDP struct {
	id     int
	pc     *net.UDPConn
	peers  map[int]*net.UDPAddr
	byAddr map[string]int
	byAP   map[netip.AddrPort]int // batch-path sender attribution
	mu     sync.Mutex
	closed bool

	// Batched receive state: rxMu serializes batch reads and guards the
	// pending queue of already-received messages; the batcher's ring
	// buffers are released exactly once (rxDone) by whichever of Close or
	// a failing Recv gets there first.
	b         *udpBatcher
	rxMu      sync.Mutex
	rxPending []Message
	rxHead    int
	rxDone    bool
}

var _ Conn = (*UDP)(nil)
var _ BatchSender = (*UDP)(nil)

// MaxDatagram is the largest datagram the transport sends or receives.
// It comfortably covers a fused packet of 64 x 256 float32 blocks on a
// loopback interface (jumbo frames / local sockets).
const MaxDatagram = 128 << 10

// udpSocketBuf is the kernel socket buffer size requested for both
// directions. Batched bursts of up to 32 jumbo datagrams need headroom on
// loopback, where the socket buffer is the only "network" there is.
const udpSocketBuf = 8 << 20

// NewUDP binds addrs[id] and resolves all peer addresses.
func NewUDP(id int, addrs map[int]string) (*UDP, error) {
	local, err := net.ResolveUDPAddr("udp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addrs[id], err)
	}
	pc, err := net.ListenUDP("udp", local)
	if err != nil {
		return nil, fmt.Errorf("transport: bind %s: %w", addrs[id], err)
	}
	// Best effort: a bigger socket buffer absorbs batched bursts; the
	// protocol recovers from any loss either way.
	_ = pc.SetReadBuffer(udpSocketBuf)
	_ = pc.SetWriteBuffer(udpSocketBuf)
	u := &UDP{
		id:     id,
		pc:     pc,
		peers:  make(map[int]*net.UDPAddr),
		byAddr: make(map[string]int),
		byAP:   make(map[netip.AddrPort]int),
	}
	if batchIOAvailable {
		u.b = newUDPBatcher(u)
	}
	for pid, a := range addrs {
		if pid == id {
			// Record our actual bound address (supports ":0").
			u.byAddr[pc.LocalAddr().String()] = id
			continue
		}
		ra, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			pc.Close()
			return nil, fmt.Errorf("transport: resolve peer %d (%s): %w", pid, a, err)
		}
		u.registerResolved(pid, ra)
	}
	return u, nil
}

// registerResolved records one peer binding under u.mu-compatible state.
func (u *UDP) registerResolved(id int, ra *net.UDPAddr) {
	// A wildcard or empty host in a peer's book entry (":7410") can only
	// mean "this machine" — the kernel delivers datagrams sent to the
	// unspecified address locally. Canonicalize (shared helper, see
	// addr.go) so the batch path has a marshalable sockaddr and sender
	// attribution matches the source address datagrams actually arrive
	// with.
	ra = canonicalUDPAddr(ra)
	u.peers[id] = ra
	u.byAddr[ra.String()] = id
	if ap := ra.AddrPort(); ap.IsValid() {
		u.byAP[netip.AddrPortFrom(ap.Addr().Unmap().WithZone(""), ap.Port())] = id
		// The kernel reports senders on a dual-stack socket as
		// v4-mapped; Unmap on both sides canonicalizes.
	}
}

// RegisterPeer adds or updates a peer binding (used with ":0" setups where
// addresses are exchanged after binding).
func (u *UDP) RegisterPeer(id int, addr string) error {
	ra, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.registerResolved(id, ra)
	return nil
}

// SetBatching enables or disables the batched fast path at runtime; a
// no-op on builds without it. Call before any traffic flows (it takes
// the receive lock, so a Recv already blocked in a batch read would hold
// it off); returns u for chaining. The scalar and batched paths are
// wire-identical, so this is a test/diagnostic knob (the equivalence
// tier runs the same workload both ways), not a correctness one.
func (u *UDP) SetBatching(on bool) *UDP {
	u.rxMu.Lock()
	defer u.rxMu.Unlock()
	u.mu.Lock()
	defer u.mu.Unlock()
	if !on {
		if u.b != nil {
			u.b.release()
		}
		u.b = nil
	} else if u.b == nil && batchIOAvailable {
		u.b = newUDPBatcher(u)
	}
	return u
}

// Batching reports whether the batched fast path is active.
func (u *UDP) Batching() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.b != nil
}

// Addr returns the bound local address.
func (u *UDP) Addr() string { return u.pc.LocalAddr().String() }

// Send transmits one datagram, best effort.
func (u *UDP) Send(to int, data []byte) error {
	u.mu.Lock()
	ra, ok := u.peers[to]
	closed := u.closed
	u.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, to)
	}
	if len(data) > MaxDatagram {
		return fmt.Errorf("transport: datagram too large (%d > %d)", len(data), MaxDatagram)
	}
	_, err := u.pc.WriteToUDP(data, ra)
	return err
}

// errUnknownPeerBatch adapts the unknown-peer error for the batch path.
func errUnknownPeerBatch(to int) error {
	return fmt.Errorf("%w: %d", ErrUnknownPeer, to)
}

// SendBatch transmits msgs in order: one sendmmsg per 32 datagrams on the
// fast path, a loop of scalar Sends otherwise. Like Send, ownership of
// every Data buffer stays with the caller and is released the moment
// SendBatch returns.
func (u *UDP) SendBatch(msgs []Outgoing) error {
	// The batcher pointer is read under u.mu, never rxMu: a Recv blocked
	// inside a batch read holds rxMu for the duration, and sends must not
	// wait on receives.
	u.mu.Lock()
	b := u.b
	u.mu.Unlock()
	if b == nil {
		for _, m := range msgs {
			if err := u.Send(m.To, m.Data); err != nil {
				return err
			}
		}
		return nil
	}
	u.mu.Lock()
	closed := u.closed
	u.mu.Unlock()
	if closed {
		return ErrClosed
	}
	for _, m := range msgs {
		if len(m.Data) > MaxDatagram {
			return fmt.Errorf("transport: datagram too large (%d > %d)", len(m.Data), MaxDatagram)
		}
	}
	return b.sendBatch(msgs, u.resolvePeer)
}

// resolvePeer marshals peer id's address into sa for the batch sender.
func (u *UDP) resolvePeer(id int, sa *rawSockaddr) bool {
	u.mu.Lock()
	ra, ok := u.peers[id]
	u.mu.Unlock()
	if !ok {
		return false
	}
	ap := ra.AddrPort()
	if !ap.IsValid() {
		return false
	}
	return sa.fill(ap)
}

// lookupSender attributes a batch-received datagram's source address.
func (u *UDP) lookupSender(ap netip.AddrPort) int {
	u.mu.Lock()
	id, ok := u.byAP[netip.AddrPortFrom(ap.Addr().Unmap().WithZone(""), ap.Port())]
	if !ok {
		// Fall back to the scalar path's string book (covers addresses
		// registered before netip plumbing existed, e.g. zone-carrying
		// v6 literals).
		id, ok = u.byAddr[net.UDPAddrFromAddrPort(ap).String()]
	}
	u.mu.Unlock()
	if !ok {
		return -1
	}
	return id
}

// Recv blocks for the next datagram. Datagrams from unknown senders are
// attributed id -1. The returned buffer comes from the transport buffer
// pool; recycle it with PutBuf when done.
//
// On the batched path one recvmmsg refills an internal queue with up to
// 32 datagrams; subsequent Recv calls drain the queue without touching
// the kernel.
func (u *UDP) Recv() (Message, error) {
	u.rxMu.Lock()
	if u.b == nil {
		u.rxMu.Unlock()
		return u.recvScalar()
	}
	for u.rxHead >= len(u.rxPending) {
		if u.rxDone {
			u.rxMu.Unlock()
			return Message{}, ErrClosed
		}
		u.rxPending = u.rxPending[:0]
		u.rxHead = 0
		if err := u.b.fill(&u.rxPending, u.lookupSender); err != nil {
			u.mu.Lock()
			closed := u.closed
			u.mu.Unlock()
			if closed {
				// Terminal: release the ring here rather than waiting
				// for Close's drain (either side may get there first).
				u.drainLocked()
				u.rxMu.Unlock()
				return Message{}, ErrClosed
			}
			// Transient receive error: the ring stays armed for the next
			// Recv, matching the scalar path's per-call error semantics.
			u.rxMu.Unlock()
			return Message{}, err
		}
	}
	m := u.rxPending[u.rxHead]
	u.rxPending[u.rxHead] = Message{}
	u.rxHead++
	u.rxMu.Unlock()
	return m, nil
}

// recvScalar is the portable one-datagram-per-syscall receive path.
func (u *UDP) recvScalar() (Message, error) {
	buf := GetBuf(MaxDatagram)
	n, from, err := u.pc.ReadFromUDP(buf)
	if err != nil {
		PutBuf(buf)
		u.mu.Lock()
		closed := u.closed
		u.mu.Unlock()
		if closed {
			return Message{}, ErrClosed
		}
		return Message{}, err
	}
	u.mu.Lock()
	id, ok := u.byAddr[from.String()]
	u.mu.Unlock()
	if !ok {
		id = -1
	}
	return Message{From: id, Data: buf[:n]}, nil
}

// drainLocked releases every pooled buffer the batched receive path still
// holds: the batcher's ring and any received-but-undelivered pending
// messages. Idempotent; caller holds rxMu. After it runs the quiesced
// transport owns no pool buffers, which is what the leak audit asserts.
func (u *UDP) drainLocked() {
	if u.rxDone {
		return
	}
	u.rxDone = true
	if u.b != nil {
		u.b.release()
	}
	for _, m := range u.rxPending[u.rxHead:] {
		PutBuf(m.Data)
	}
	u.rxPending = nil
	u.rxHead = 0
}

// LocalID returns the node ID.
func (u *UDP) LocalID() int { return u.id }

// Close shuts the socket; blocked Recv calls return ErrClosed. Pooled
// buffers parked in the batched receive ring or pending queue are
// returned to the pool — closing the socket first unblocks any in-flight
// batch read, so acquiring rxMu here waits out the reader rather than
// deadlocking on it.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	err := u.pc.Close()
	u.rxMu.Lock()
	u.drainLocked()
	u.rxMu.Unlock()
	return err
}
