package transport

import (
	"fmt"
	"net"
	"sync"
)

// UDP is an unreliable datagram transport, the stand-in for the paper's
// DPDK/UDP data path. Messages may be dropped, duplicated, or reordered by
// the network; OmniReduce's Algorithm 2 recovers from all three. Peers are
// identified by a static id->address book.
type UDP struct {
	id     int
	pc     *net.UDPConn
	peers  map[int]*net.UDPAddr
	byAddr map[string]int
	mu     sync.Mutex
	closed bool
}

var _ Conn = (*UDP)(nil)

// MaxDatagram is the largest datagram the transport sends or receives.
// It comfortably covers a fused packet of 64 x 256 float32 blocks on a
// loopback interface (jumbo frames / local sockets).
const MaxDatagram = 128 << 10

// NewUDP binds addrs[id] and resolves all peer addresses.
func NewUDP(id int, addrs map[int]string) (*UDP, error) {
	local, err := net.ResolveUDPAddr("udp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addrs[id], err)
	}
	pc, err := net.ListenUDP("udp", local)
	if err != nil {
		return nil, fmt.Errorf("transport: bind %s: %w", addrs[id], err)
	}
	u := &UDP{id: id, pc: pc, peers: make(map[int]*net.UDPAddr), byAddr: make(map[string]int)}
	for pid, a := range addrs {
		if pid == id {
			// Record our actual bound address (supports ":0").
			u.byAddr[pc.LocalAddr().String()] = id
			continue
		}
		ra, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			pc.Close()
			return nil, fmt.Errorf("transport: resolve peer %d (%s): %w", pid, a, err)
		}
		u.peers[pid] = ra
		u.byAddr[ra.String()] = pid
	}
	return u, nil
}

// RegisterPeer adds or updates a peer binding (used with ":0" setups where
// addresses are exchanged after binding).
func (u *UDP) RegisterPeer(id int, addr string) error {
	ra, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.peers[id] = ra
	u.byAddr[ra.String()] = id
	return nil
}

// Addr returns the bound local address.
func (u *UDP) Addr() string { return u.pc.LocalAddr().String() }

// Send transmits one datagram, best effort.
func (u *UDP) Send(to int, data []byte) error {
	u.mu.Lock()
	ra, ok := u.peers[to]
	closed := u.closed
	u.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, to)
	}
	if len(data) > MaxDatagram {
		return fmt.Errorf("transport: datagram too large (%d > %d)", len(data), MaxDatagram)
	}
	_, err := u.pc.WriteToUDP(data, ra)
	return err
}

// Recv blocks for the next datagram. Datagrams from unknown senders are
// attributed id -1. The returned buffer comes from the transport buffer
// pool; recycle it with PutBuf when done.
func (u *UDP) Recv() (Message, error) {
	buf := GetBuf(MaxDatagram)
	n, from, err := u.pc.ReadFromUDP(buf)
	if err != nil {
		PutBuf(buf)
		u.mu.Lock()
		closed := u.closed
		u.mu.Unlock()
		if closed {
			return Message{}, ErrClosed
		}
		return Message{}, err
	}
	u.mu.Lock()
	id, ok := u.byAddr[from.String()]
	u.mu.Unlock()
	if !ok {
		id = -1
	}
	return Message{From: id, Data: buf[:n]}, nil
}

// LocalID returns the node ID.
func (u *UDP) LocalID() int { return u.id }

// Close shuts the socket; blocked Recv calls return ErrClosed.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	return u.pc.Close()
}
