package transport

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
)

// Size-classed receive-buffer pool. Every transport allocates one buffer
// per inbound message (a UDP datagram, a TCP frame, a channel-fabric
// copy); without reuse that is the dominant steady-state allocation of
// the whole datapath — the paper's DPDK/RDMA implementation preallocates
// and recycles its packet buffers for exactly this reason (§5).
//
// Buffers are handed to consumers inside Message.Data, which the Conn
// contract says the consumer owns. Release is therefore cooperative:
// consumers that are done with a message call PutBuf to recycle it;
// consumers that don't bother simply leave the buffer to the garbage
// collector. Nothing breaks either way — pooling only changes whether the
// next GetBuf hits the pool or the allocator.
//
// Balance accounting: GetBuf and PutBuf additionally keep cumulative
// get/put tallies (PoolBalance), registered with the internal/obs
// pool-leak audit. In a quiesced system — every connection closed, every
// operation finished — gets must equal puts; a standing imbalance means
// some consumer dropped a buffer on the floor (per-packet allocation is
// back) and is exactly the class of receive-path leak the audit exists to
// catch. The tallies assume PutBuf is only called with buffers that came
// from GetBuf, which is the package-wide convention.

// minBufClass/maxBufClass bound the pooled capacity classes (powers of
// two). Smaller buffers are cheaper to allocate than to pool; larger ones
// (oversize TCP frames) are rare enough to leave to the allocator.
const (
	minBufClassBits = 10 // 1 KiB
	maxBufClassBits = 17 // 128 KiB, covers MaxDatagram
	numBufClasses   = maxBufClassBits - minBufClassBits + 1
)

// The class pools store *[]byte rather than []byte: boxing a slice into
// an interface{} copies its three-word header to the heap, which would
// make every PutBuf allocate — the exact per-packet churn the pool
// exists to remove. The header objects themselves recycle through
// bufHdrPool, so a warmed Get/Put cycle allocates nothing.
var (
	bufPools   [numBufClasses]sync.Pool
	bufHdrPool = sync.Pool{New: func() any { return new([]byte) }}
)

var (
	bufPoolHits   atomic.Int64
	bufPoolMisses atomic.Int64
	bufPoolGets   atomic.Int64
	bufPoolPuts   atomic.Int64
)

func init() {
	obs.RegisterPool("transport_buf", PoolBalance)
}

// bufClass returns the pool index whose capacity (1<<(minBufClassBits+i))
// holds n bytes, or -1 when n is outside the pooled range.
func bufClass(n int) int {
	if n <= 0 || n > 1<<maxBufClassBits {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n); n==1 -> 0
	if b < minBufClassBits {
		b = minBufClassBits
	}
	return b - minBufClassBits
}

// GetBuf returns a buffer with len n, recycled when a pooled buffer of a
// suitable class is available. The caller owns the buffer until it passes
// it on (e.g. inside a Message) or returns it with PutBuf.
func GetBuf(n int) []byte {
	bufPoolGets.Add(1)
	obs.Emit(obs.EvPoolGet, 0, int64(n))
	c := bufClass(n)
	if c < 0 {
		bufPoolMisses.Add(1)
		return make([]byte, n)
	}
	if v := bufPools[c].Get(); v != nil {
		bufPoolHits.Add(1)
		h := v.(*[]byte)
		b := *h
		*h = nil
		bufHdrPool.Put(h)
		return b[:n]
	}
	bufPoolMisses.Add(1)
	return make([]byte, n, 1<<(minBufClassBits+c))
}

// PutBuf recycles a buffer previously obtained from GetBuf (directly or
// via a received Message). Buffers whose capacity is not an exact pool
// class — anything not allocated by GetBuf — are silently dropped to the
// garbage collector, so releasing a foreign buffer is always safe. The
// caller must not touch the buffer afterwards.
func PutBuf(b []byte) {
	if b == nil {
		return // releasing no buffer is a no-op, not a balance event
	}
	bufPoolPuts.Add(1)
	obs.Emit(obs.EvPoolPut, 0, int64(len(b)))
	c := cap(b)
	if c == 0 {
		return
	}
	i := bits.TrailingZeros(uint(c))
	if 1<<i != c || i < minBufClassBits || i > maxBufClassBits {
		return // not one of ours
	}
	h := bufHdrPool.Get().(*[]byte)
	*h = b[:c]
	bufPools[i-minBufClassBits].Put(h)
}

// PoolBalance reports the cumulative GetBuf and PutBuf counts. In a
// quiesced system gets == puts; the difference is the number of buffers
// currently owned by consumers (or leaked).
func PoolBalance() (gets, puts int64) {
	return bufPoolGets.Load(), bufPoolPuts.Load()
}

// PoolCounters exports the buffer pool's tallies as metrics counters.
// The steady-state health checks are a hit rate approaching 1 (misses
// after warm-up mean per-packet allocation is back) and gets - puts
// approaching the number of messages legitimately in flight (a standing
// surplus is a leak).
func PoolCounters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("buf_pool_hits", bufPoolHits.Load())
	c.Add("buf_pool_misses", bufPoolMisses.Load())
	c.Add("buf_pool_gets", bufPoolGets.Load())
	c.Add("buf_pool_puts", bufPoolPuts.Load())
	return c
}
