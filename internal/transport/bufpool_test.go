package transport

import "testing"

func TestBufClass(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, -1},
		{1, 0},
		{1 << 10, 0},
		{1<<10 + 1, 1},
		{1 << 11, 1},
		{MaxDatagram, maxBufClassBits - minBufClassBits},
		{MaxDatagram + 1, -1},
		{1 << 20, -1},
	}
	for _, c := range cases {
		if got := bufClass(c.n); got != c.class {
			t.Errorf("bufClass(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetPutBufRoundTrip(t *testing.T) {
	for _, n := range []int{1, 100, 1 << 10, 1<<10 + 1, 4096, MaxDatagram} {
		b := GetBuf(n)
		if len(b) != n {
			t.Fatalf("GetBuf(%d): len %d", n, len(b))
		}
		if c := cap(b); c&(c-1) != 0 || c < 1<<minBufClassBits {
			t.Fatalf("GetBuf(%d): cap %d is not a pool class", n, c)
		}
		PutBuf(b)
		// A same-class request should be able to reuse it (sync.Pool gives
		// no hard guarantee, so don't assert identity — just that the
		// round-trip is safe and lengths come back right).
		b2 := GetBuf(n)
		if len(b2) != n {
			t.Fatalf("reuse GetBuf(%d): len %d", n, len(b2))
		}
		PutBuf(b2)
	}
}

func TestPutBufForeignBuffers(t *testing.T) {
	// Buffers not allocated by GetBuf must be silently dropped, never
	// pooled: odd capacities, tiny buffers, oversize buffers, nil.
	PutBuf(nil)
	PutBuf(make([]byte, 0))
	PutBuf(make([]byte, 100))   // cap 100: not a power of two
	PutBuf(make([]byte, 512))   // power of two but below min class
	PutBuf(make([]byte, 1<<20)) // power of two but above max class
	b := GetBuf(1 << 10)
	PutBuf(b[:10]) // shortened view of a pooled buffer is fine
	got := GetBuf(1 << 10)
	if len(got) != 1<<10 {
		t.Fatalf("after PutBuf of shortened view: len %d, want %d", len(got), 1<<10)
	}
}

func TestPoolCounters(t *testing.T) {
	before := PoolCounters()
	b := GetBuf(2048)
	PutBuf(b)
	GetBuf(2048)
	after := PoolCounters()
	dh := after.Get("buf_pool_hits") - before.Get("buf_pool_hits")
	dm := after.Get("buf_pool_misses") - before.Get("buf_pool_misses")
	if dh+dm != 2 {
		t.Fatalf("hits+misses delta = %d, want 2 (hits %d misses %d)", dh+dm, dh, dm)
	}
}
