package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP is a reliable message transport over a full mesh of TCP
// connections, the cross-process stand-in for the paper's RDMA RC mode.
// Messages are length-prefixed (uint32) frames; each node dials every
// peer once and announces its ID in an 8-byte hello frame.
type TCP struct {
	id       int
	addrs    map[int]string
	ln       net.Listener
	recvCh   chan Message
	mu       sync.Mutex
	outbound map[int]*tcpPeer
	inbound  map[net.Conn]struct{}
	closed   chan struct{}
	wg       sync.WaitGroup
}

var _ Conn = (*TCP)(nil)

type tcpPeer struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

// MaxFrame bounds accepted message sizes to catch stream corruption.
const MaxFrame = 64 << 20

// NewTCP creates a TCP endpoint for node id listening on addrs[id]. It
// returns once the listener is active; connections to peers are
// established lazily on first Send and by inbound dials.
func NewTCP(id int, addrs map[int]string) (*TCP, error) {
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
	}
	t := &TCP{
		id:       id,
		ln:       ln,
		recvCh:   make(chan Message, 1024),
		outbound: make(map[int]*tcpPeer),
		inbound:  make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
	t.addrs = make(map[int]string, len(addrs))
	for id, a := range addrs {
		t.addrs[id] = a
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.inbound[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c, -1)
	}
}

// readLoop reads frames from one connection. For accepted connections
// (from < 0) the first 8 bytes are the peer's hello announcing its ID,
// and the connection is adopted as the reply path to that peer if no
// outbound connection exists yet — a server (e.g. an aggregator) can then
// answer workers it has no dial address for. For dialed connections the
// peer ID is already known and no hello is expected.
func (t *TCP) readLoop(c net.Conn, from int) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.inbound, c)
		t.mu.Unlock()
	}()
	r := bufio.NewReaderSize(c, 1<<16)
	if from < 0 {
		var hello [8]byte
		if _, err := io.ReadFull(r, hello[:]); err != nil {
			return
		}
		from = int(binary.LittleEndian.Uint64(hello[:]))
		t.mu.Lock()
		if _, ok := t.outbound[from]; !ok {
			t.outbound[from] = &tcpPeer{w: bufio.NewWriterSize(c, 1<<16), c: c}
		}
		t.mu.Unlock()
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > MaxFrame {
			return
		}
		buf := GetBuf(int(n))
		if _, err := io.ReadFull(r, buf); err != nil {
			PutBuf(buf)
			return
		}
		select {
		case t.recvCh <- Message{From: from, Data: buf}:
		case <-t.closed:
			PutBuf(buf)
			return
		}
	}
}

// Send frames and writes data to the peer, dialing on first use.
func (t *TCP) Send(to int, data []byte) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := p.w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := p.w.Write(data); err != nil {
		return err
	}
	return p.w.Flush()
}

func (t *TCP) peer(to int) (*tcpPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.outbound[to]; ok {
		return p, nil
	}
	addr, ok := t.addrs[to]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, to)
	}
	var c net.Conn
	var err error
	// Peers may come up in any order; retry briefly.
	for i := 0; i < 50; i++ {
		c, err = net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %d (%s): %w", to, addr, err)
	}
	var hello [8]byte
	binary.LittleEndian.PutUint64(hello[:], uint64(t.id))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return nil, err
	}
	p := &tcpPeer{w: bufio.NewWriterSize(c, 1<<16), c: c}
	t.outbound[to] = p
	// Read replies arriving on this dialed connection (the remote end may
	// answer here rather than dialing back).
	t.inbound[c] = struct{}{}
	t.wg.Add(1)
	go t.readLoop(c, to)
	return p, nil
}

// RegisterPeer adds or updates a peer's dial address (used with ":0"
// setups where addresses are exchanged after binding).
func (t *TCP) RegisterPeer(id int, addr string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[id] = addr
	return nil
}

// Recv returns the next inbound message.
func (t *TCP) Recv() (Message, error) {
	select {
	case m := <-t.recvCh:
		return m, nil
	case <-t.closed:
		select {
		case m := <-t.recvCh:
			return m, nil
		default:
		}
		return Message{}, ErrClosed
	}
}

// LocalID returns the node ID.
func (t *TCP) LocalID() int { return t.id }

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Close shuts the listener and all peer connections.
func (t *TCP) Close() error {
	t.mu.Lock()
	select {
	case <-t.closed:
		t.mu.Unlock()
		return nil
	default:
		close(t.closed)
	}
	err := t.ln.Close()
	for _, p := range t.outbound {
		p.c.Close()
	}
	for c := range t.inbound {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}
