package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPOptions tunes connection establishment. The zero value picks the
// defaults noted on each field, which reproduce the historical behavior
// (2 s dial timeout, 50 attempts spaced 100 ms apart).
type TCPOptions struct {
	// DialTimeout bounds each individual dial attempt. Default 2s.
	DialTimeout time.Duration
	// DialAttempts is the number of dial attempts before Send fails
	// (peers may come up in any order, so first contact retries).
	// Default 50; values < 1 are treated as 1.
	DialAttempts int
	// DialBackoff is the wait after the first failed attempt. Default
	// 100ms.
	DialBackoff time.Duration
	// DialBackoffMax caps the exponentially growing wait between
	// attempts. Default: equal to DialBackoff, i.e. fixed spacing.
	DialBackoffMax time.Duration
	// DialContext cancels in-progress dials and retry waits (for
	// example on process shutdown). Default context.Background().
	DialContext context.Context
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.DialAttempts < 1 {
		if o.DialAttempts == 0 {
			o.DialAttempts = 50
		} else {
			o.DialAttempts = 1
		}
	}
	if o.DialBackoff <= 0 {
		o.DialBackoff = 100 * time.Millisecond
	}
	if o.DialBackoffMax <= 0 {
		o.DialBackoffMax = o.DialBackoff
	}
	if o.DialContext == nil {
		o.DialContext = context.Background()
	}
	return o
}

// TCP is a reliable message transport over a full mesh of TCP
// connections, the cross-process stand-in for the paper's RDMA RC mode.
// Messages are length-prefixed (uint32) frames; each node dials every
// peer once and announces its ID in an 8-byte hello frame.
type TCP struct {
	id       int
	opts     TCPOptions
	addrs    map[int]string
	ln       net.Listener
	recvCh   chan Message
	mu       sync.Mutex
	outbound map[int]*tcpPeer
	dialing  map[int]chan struct{} // in-progress dials, keyed by peer
	inbound  map[net.Conn]struct{}
	closed   chan struct{}
	wg       sync.WaitGroup
}

var _ Conn = (*TCP)(nil)

type tcpPeer struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

// MaxFrame bounds accepted message sizes to catch stream corruption.
const MaxFrame = 64 << 20

// NewTCP creates a TCP endpoint for node id listening on addrs[id] with
// default dial options. It returns once the listener is active;
// connections to peers are established lazily on first Send and by
// inbound dials.
func NewTCP(id int, addrs map[int]string) (*TCP, error) {
	return NewTCPWithOptions(id, addrs, TCPOptions{})
}

// NewTCPWithOptions is NewTCP with explicit connection-establishment
// tuning (dial timeout, retry count, backoff, cancellation).
func NewTCPWithOptions(id int, addrs map[int]string, opts TCPOptions) (*TCP, error) {
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
	}
	t := &TCP{
		id:       id,
		opts:     opts.withDefaults(),
		ln:       ln,
		recvCh:   make(chan Message, 1024),
		outbound: make(map[int]*tcpPeer),
		dialing:  make(map[int]chan struct{}),
		inbound:  make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
	t.addrs = make(map[int]string, len(addrs))
	for id, a := range addrs {
		t.addrs[id] = a
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.inbound[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c, -1)
	}
}

// readLoop reads frames from one connection. For accepted connections
// (from < 0) the first 8 bytes are the peer's hello announcing its ID,
// and the connection is adopted as the reply path to that peer if no
// outbound connection exists yet — a server (e.g. an aggregator) can then
// answer workers it has no dial address for. For dialed connections the
// peer ID is already known and no hello is expected.
func (t *TCP) readLoop(c net.Conn, from int) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.inbound, c)
		t.mu.Unlock()
	}()
	r := bufio.NewReaderSize(c, 1<<16)
	if from < 0 {
		var hello [8]byte
		if _, err := io.ReadFull(r, hello[:]); err != nil {
			return
		}
		from = int(binary.LittleEndian.Uint64(hello[:]))
		t.mu.Lock()
		if _, ok := t.outbound[from]; !ok {
			t.outbound[from] = &tcpPeer{w: bufio.NewWriterSize(c, 1<<16), c: c}
		}
		t.mu.Unlock()
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > MaxFrame {
			return
		}
		buf := GetBuf(int(n))
		if _, err := io.ReadFull(r, buf); err != nil {
			PutBuf(buf)
			return
		}
		select {
		case t.recvCh <- Message{From: from, Data: buf}:
		case <-t.closed:
			PutBuf(buf)
			return
		}
	}
}

// Send frames and writes data to the peer, dialing on first use.
func (t *TCP) Send(to int, data []byte) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := p.w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := p.w.Write(data); err != nil {
		return err
	}
	return p.w.Flush()
}

func (t *TCP) peer(to int) (*tcpPeer, error) {
	for {
		t.mu.Lock()
		if p, ok := t.outbound[to]; ok {
			t.mu.Unlock()
			return p, nil
		}
		addr, ok := t.addrs[to]
		if !ok {
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, to)
		}
		if wait, busy := t.dialing[to]; busy {
			// Another goroutine is dialing this peer; wait for it rather
			// than racing a second connection (and rather than holding
			// t.mu across the dial, which would stall sends to every
			// other peer for the full retry window).
			t.mu.Unlock()
			select {
			case <-wait:
			case <-t.closed:
				return nil, ErrClosed
			}
			continue
		}
		wait := make(chan struct{})
		t.dialing[to] = wait
		t.mu.Unlock()

		p, err := t.dialPeer(to, addr)

		t.mu.Lock()
		delete(t.dialing, to)
		close(wait)
		if err != nil {
			t.mu.Unlock()
			return nil, err
		}
		if existing, ok := t.outbound[to]; ok {
			// An inbound hello installed a reply path while we dialed;
			// prefer it and discard our connection.
			t.mu.Unlock()
			p.c.Close()
			return existing, nil
		}
		select {
		case <-t.closed:
			t.mu.Unlock()
			p.c.Close()
			return nil, ErrClosed
		default:
		}
		t.outbound[to] = p
		// Read replies arriving on this dialed connection (the remote end
		// may answer here rather than dialing back).
		t.inbound[p.c] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(p.c, to)
		return p, nil
	}
}

// dialPeer establishes and greets one outbound connection, retrying per
// the transport's TCPOptions. It runs without t.mu held.
func (t *TCP) dialPeer(to int, addr string) (*tcpPeer, error) {
	c, err := t.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %d (%s): %w", to, addr, err)
	}
	var hello [8]byte
	binary.LittleEndian.PutUint64(hello[:], uint64(t.id))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return nil, err
	}
	return &tcpPeer{w: bufio.NewWriterSize(c, 1<<16), c: c}, nil
}

// dial attempts addr up to DialAttempts times with exponential backoff
// between attempts (capped at DialBackoffMax), respecting DialContext
// cancellation and transport shutdown. Peers may come up in any order,
// so first contact commonly needs a few retries.
func (t *TCP) dial(addr string) (net.Conn, error) {
	o := t.opts
	d := net.Dialer{Timeout: o.DialTimeout}
	backoff := o.DialBackoff
	var lastErr error
	for i := 0; i < o.DialAttempts; i++ {
		if i > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-o.DialContext.Done():
				timer.Stop()
				return nil, o.DialContext.Err()
			case <-t.closed:
				timer.Stop()
				return nil, ErrClosed
			}
			backoff *= 2
			if backoff > o.DialBackoffMax {
				backoff = o.DialBackoffMax
			}
		}
		c, err := d.DialContext(o.DialContext, "tcp", addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if o.DialContext.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// RegisterPeer adds or updates a peer's dial address (used with ":0"
// setups where addresses are exchanged after binding, and on the re-dial
// path after a view change). The address is canonicalized like UDP book
// entries — a wildcard host registered after a rebind must not dial (and
// attribute) differently than one registered at construction.
func (t *TCP) RegisterPeer(id int, addr string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[id] = CanonicalAddr(addr)
	return nil
}

// Recv returns the next inbound message.
func (t *TCP) Recv() (Message, error) {
	select {
	case m := <-t.recvCh:
		return m, nil
	case <-t.closed:
		select {
		case m := <-t.recvCh:
			return m, nil
		default:
		}
		return Message{}, ErrClosed
	}
}

// LocalID returns the node ID.
func (t *TCP) LocalID() int { return t.id }

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Close shuts the listener and all peer connections, then recycles any
// received-but-unconsumed message buffers so a closed endpoint holds no
// pooled memory.
func (t *TCP) Close() error {
	t.mu.Lock()
	select {
	case <-t.closed:
		t.mu.Unlock()
		return nil
	default:
		close(t.closed)
	}
	err := t.ln.Close()
	for _, p := range t.outbound {
		p.c.Close()
	}
	for c := range t.inbound {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	// All read loops have exited; nothing else writes recvCh. Drain what
	// no Recv caller will ever collect.
	for {
		select {
		case m := <-t.recvCh:
			PutBuf(m.Data)
		default:
			return err
		}
	}
}
