package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/obs"
)

// TestNetworkCloseReclaimsQueuedBuffers verifies the drain-on-close
// protocol: messages sitting undelivered in a node's inbox must be
// returned to the buffer pool when the node's endpoint closes, so a
// quiesced network has a balanced get/put tally.
func TestNetworkCloseReclaimsQueuedBuffers(t *testing.T) {
	audit := obs.StartLeakAudit()
	nw := NewNetwork(2, 64)
	a, b := nw.Conn(0), nw.Conn(1)
	for i := 0; i < 10; i++ {
		if err := a.Send(1, []byte{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	// Node 1 never calls Recv; its inbox holds 10 pooled buffers.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if leaks := audit.Settle(2 * time.Second); len(leaks) != 0 {
		t.Fatalf("buffers leaked after close: %v", obs.LeaksErr(leaks))
	}
}

// TestNetworkSendAfterPeerClose checks that sending to a closed peer is
// a silent best-effort drop (datagram semantics at teardown) that does
// not leak the copied buffer.
func TestNetworkSendAfterPeerClose(t *testing.T) {
	audit := obs.StartLeakAudit()
	nw := NewNetwork(2, 4)
	a, b := nw.Conn(0), nw.Conn(1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ { // more than queue cap: must not block either
		if err := a.Send(1, []byte{9}); err != nil {
			t.Fatalf("send to closed peer: %v", err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if leaks := audit.Settle(2 * time.Second); len(leaks) != 0 {
		t.Fatalf("buffers leaked: %v", obs.LeaksErr(leaks))
	}
}

// TestNetworkConcurrentSendClose races many senders against the
// receiver's Close. Whatever interleaving occurs, every pooled buffer
// must come back: delivered ones via the receiver's PutBuf, undelivered
// ones via the close-time drain.
func TestNetworkConcurrentSendClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		audit := obs.StartLeakAudit()
		nw := NewNetwork(4, 8)
		recv := nw.Conn(3)
		var wg sync.WaitGroup
		for s := 0; s < 3; s++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c := nw.Conn(id)
				for i := 0; i < 50; i++ {
					_ = c.Send(3, []byte{byte(i)})
				}
				_ = c.Close()
			}(s)
		}
		// Consume a few, then vanish mid-stream.
		for i := 0; i < 5; i++ {
			m, err := recv.Recv()
			if err != nil {
				break
			}
			PutBuf(m.Data)
		}
		if err := recv.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		// A Recv racing Close may have drained one last message whose
		// buffer it owns; none remain un-accounted after Close returns.
		if leaks := audit.Settle(2 * time.Second); len(leaks) != 0 {
			t.Fatalf("round %d leaked: %v", round, obs.LeaksErr(leaks))
		}
	}
}

// deadAddr returns a loopback address guaranteed to refuse connections:
// a port that was just bound and released.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestTCPDialOptionsFastFail verifies that dial attempts, timeout, and
// backoff are configurable: a two-attempt dial to a dead address fails
// in well under the historical 50×100ms window.
func TestTCPDialOptionsFastFail(t *testing.T) {
	tr, err := NewTCPWithOptions(0, map[int]string{0: "127.0.0.1:0"}, TCPOptions{
		DialTimeout:  200 * time.Millisecond,
		DialAttempts: 2,
		DialBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.RegisterPeer(1, deadAddr(t)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := tr.Send(1, []byte("x")); err == nil {
		t.Fatal("send to unreachable peer succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("fast-fail dial took %v", d)
	}
}

// TestTCPDialContextCancel verifies that cancelling DialContext aborts
// an in-progress dial retry loop promptly.
func TestTCPDialContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr, err := NewTCPWithOptions(0, map[int]string{0: "127.0.0.1:0"}, TCPOptions{
		DialTimeout:  5 * time.Second,
		DialAttempts: 50,
		DialBackoff:  50 * time.Millisecond,
		DialContext:  ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Refused dials fail instantly, so the retry loop spends its time in
	// backoff waits; cancellation must interrupt those too.
	if err := tr.RegisterPeer(1, deadAddr(t)); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- tr.Send(1, []byte("x")) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("cancelled dial reported success")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled dial did not return")
	}
}

// TestTCPDialBackoffExponential checks the retry spacing grows and is
// capped: 4 attempts at 10ms base with a 20ms cap wait 10+20+20 = 50ms
// between attempts, well below a fixed 100ms spacing.
func TestTCPDialBackoffExponential(t *testing.T) {
	tr, err := NewTCPWithOptions(0, map[int]string{0: "127.0.0.1:0"}, TCPOptions{
		DialTimeout:    50 * time.Millisecond,
		DialAttempts:   4,
		DialBackoff:    10 * time.Millisecond,
		DialBackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Refused dials fail fast, so elapsed time is dominated by the
	// backoff waits.
	if err := tr.RegisterPeer(1, deadAddr(t)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := tr.Send(1, []byte("x")); err == nil {
		t.Fatal("send to dead address succeeded")
	}
	if d := time.Since(start); d > 1500*time.Millisecond {
		t.Fatalf("4 capped-backoff attempts took %v", d)
	}
}

// TestTCPCloseDrainsRecvQueue leaves messages unconsumed in the TCP
// receive queue and verifies Close returns their buffers to the pool.
func TestTCPCloseDrainsRecvQueue(t *testing.T) {
	audit := obs.StartLeakAudit()
	a, err := NewTCP(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(1, map[int]string{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterPeer(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := a.Send(1, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Receive one to prove delivery, leave the rest queued.
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	PutBuf(m.Data)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if leaks := audit.Settle(2 * time.Second); len(leaks) != 0 {
		t.Fatalf("TCP close leaked buffers: %v", obs.LeaksErr(leaks))
	}
}

// TestPoolBalanceCounts pins the PoolBalance contract: every GetBuf and
// PutBuf call is tallied, including out-of-class sizes.
func TestPoolBalanceCounts(t *testing.T) {
	g0, p0 := PoolBalance()
	b1 := GetBuf(100)
	b2 := GetBuf(1 << 20) // oversize: unpooled but still counted
	PutBuf(b1)
	PutBuf(b2)
	g1, p1 := PoolBalance()
	if g1-g0 != 2 || p1-p0 != 2 {
		t.Fatalf("balance deltas: gets %d puts %d", g1-g0, p1-p0)
	}
	if !errors.Is(obs.LeaksErr([]obs.PoolBalance{{Name: "x", Gets: 2, Puts: 1}}), obs.ErrPoolLeak) {
		t.Fatal("LeaksErr must wrap ErrPoolLeak")
	}
}
