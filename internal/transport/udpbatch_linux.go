//go:build linux && (amd64 || arm64) && !portable_net

package transport

// Linux fast path for the UDP transport: recvmmsg/sendmmsg batch many
// datagrams per syscall, collapsing the dominant per-packet cost of the
// live datapath (the encode/decode kernels already run at memory speed;
// what remains is one kernel crossing per packet). The build-tag split
// mirrors the classic zerocopy_linux.go/zerocopy_other.go pattern: this
// file provides the real batcher, udpbatch_fallback.go provides the stub,
// and `-tags portable_net` forces the fallback on Linux so the scalar
// path stays exercised.
//
// The syscalls are issued through the net.UDPConn's syscall.RawConn, so
// they integrate with the runtime poller: MSG_DONTWAIT plus RawConn
// Read/Write readiness waiting gives blocking semantics without tying up
// an OS thread, and closing the conn unblocks a pending batch read with
// the poller's error, exactly like the scalar ReadFromUDP path.
//
// Everything here uses only the stdlib syscall package (no x/net
// dependency): mmsghdr is laid out by hand for 64-bit Linux, which is why
// the build tag also names the architectures.

import (
	"net/netip"
	"sync"
	"syscall"
	"unsafe"
)

// batchIOAvailable reports whether this build includes the batched UDP
// fast path. The portable fallback sets it false.
const batchIOAvailable = true

// udpMaxBatch is the number of datagrams moved per recvmmsg/sendmmsg
// call. 32 amortizes the syscall ~30x while keeping the receive ring's
// pooled-buffer footprint (32 * 128 KiB) modest.
const udpMaxBatch = 32

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// kernel-filled datagram length and 4 bytes of tail padding.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

func recvmmsg(fd uintptr, hs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&hs[0])), uintptr(len(hs)), uintptr(flags), 0, 0)
	return int(n), errno
}

func sendmmsg(fd uintptr, hs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&hs[0])), uintptr(len(hs)), uintptr(flags), 0, 0)
	return int(n), errno
}

// rawSockaddr is one peer's pre-marshalled kernel sockaddr. Inet6 storage
// is large enough for Inet4 as well; nameLen tells the kernel which one
// it is.
type rawSockaddr struct {
	storage syscall.RawSockaddrInet6
	nameLen uint32
}

// fill marshals ap into r. Returns false for an address family the fast
// path does not speak (never happens for resolved UDP peers).
func (r *rawSockaddr) fill(ap netip.AddrPort) bool {
	addr := ap.Addr().Unmap()
	port := ap.Port()
	if addr.Is4() {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&r.storage))
		*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		sa.Port = htons(port)
		sa.Addr = addr.As4()
		r.nameLen = syscall.SizeofSockaddrInet4
		return true
	}
	if addr.Is6() {
		r.storage = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		r.storage.Port = htons(port)
		r.storage.Addr = addr.As16()
		r.nameLen = syscall.SizeofSockaddrInet6
		return true
	}
	return false
}

// addrPortOf parses a kernel-filled sockaddr back into a netip.AddrPort.
func addrPortOf(storage *syscall.RawSockaddrInet6, nameLen uint32) (netip.AddrPort, bool) {
	switch storage.Family {
	case syscall.AF_INET:
		if nameLen < syscall.SizeofSockaddrInet4 {
			return netip.AddrPort{}, false
		}
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(storage))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), ntohs(sa.Port)), true
	case syscall.AF_INET6:
		if nameLen < syscall.SizeofSockaddrInet6 {
			return netip.AddrPort{}, false
		}
		return netip.AddrPortFrom(netip.AddrFrom16(storage.Addr).Unmap(), ntohs(storage.Port)), true
	}
	return netip.AddrPort{}, false
}

// htons/ntohs: sockaddr ports are big-endian in place.
func htons(p uint16) uint16 { return p<<8 | p>>8 }
func ntohs(p uint16) uint16 { return p<<8 | p>>8 }

// udpBatcher owns the batched-I/O state of one UDP socket: a receive
// ring of pooled buffers with their iovecs, name storage, and mmsghdrs,
// and a transmit scratch of mmsghdrs/iovecs/sockaddrs, all allocated
// once per connection and reused for every batch. Receive-side access is
// serialized by UDP.rxMu; transmit-side by txMu (Send and SendBatch may
// race per the Conn contract).
type udpBatcher struct {
	raw syscall.RawConn

	// Receive ring. bufs[i] is a pooled MaxDatagram buffer that a filled
	// slot hands off inside a Message and replaces with a fresh GetBuf;
	// released back to the pool on close via release().
	rxBufs  [udpMaxBatch][]byte
	rxIovs  [udpMaxBatch]syscall.Iovec
	rxNames [udpMaxBatch]syscall.RawSockaddrInet6
	rxHdrs  [udpMaxBatch]mmsghdr
	rxLive  bool // ring buffers currently allocated

	txMu    sync.Mutex
	txIovs  [udpMaxBatch]syscall.Iovec
	txAddrs [udpMaxBatch]rawSockaddr
	txHdrs  [udpMaxBatch]mmsghdr
}

// newUDPBatcher returns the batcher for u's socket, or nil when the
// socket's raw fd is unavailable.
func newUDPBatcher(u *UDP) *udpBatcher {
	raw, err := u.pc.SyscallConn()
	if err != nil {
		return nil
	}
	return &udpBatcher{raw: raw}
}

// fill blocks until at least one datagram arrives, reads up to
// udpMaxBatch in one recvmmsg, and appends the resulting Messages
// (attributed through lookup) to *pending. Caller holds UDP.rxMu.
func (b *udpBatcher) fill(pending *[]Message, lookup func(netip.AddrPort) int) error {
	if !b.rxLive {
		for i := range b.rxBufs {
			b.rxBufs[i] = GetBuf(MaxDatagram)
		}
		b.rxLive = true
	}
	var got int
	ioErr := b.raw.Read(func(fd uintptr) bool {
		for {
			// Re-arm every slot: recvmmsg overwrites namelen and the
			// kernel must see full-capacity iovecs each call.
			for i := range b.rxHdrs {
				b.rxIovs[i] = syscall.Iovec{Base: &b.rxBufs[i][0]}
				b.rxIovs[i].SetLen(MaxDatagram)
				b.rxHdrs[i] = mmsghdr{hdr: syscall.Msghdr{
					Name:    (*byte)(unsafe.Pointer(&b.rxNames[i])),
					Namelen: uint32(unsafe.Sizeof(b.rxNames[i])),
					Iov:     &b.rxIovs[i],
					Iovlen:  1,
				}}
			}
			n, errno := recvmmsg(fd, b.rxHdrs[:], syscall.MSG_DONTWAIT)
			switch errno {
			case 0:
				got = n
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // wait for readability and retry
			default:
				got = -1
				return true
			}
		}
	})
	if ioErr != nil {
		return ioErr
	}
	if got < 0 {
		// recvmmsg failed outright; surface it like a failed ReadFromUDP.
		return syscall.EIO
	}
	obsRxBatches.Inc()
	obsRxBatchDgrams.Add(int64(got))
	obsRxBatchSize.Observe(int64(got))
	if got < udpMaxBatch {
		obsRxShortBatches.Inc()
	}
	obsEmitRxBatch(int64(got))
	for i := 0; i < got; i++ {
		from := -1
		if ap, ok := addrPortOf(&b.rxNames[i], b.rxHdrs[i].hdr.Namelen); ok {
			from = lookup(ap)
		}
		*pending = append(*pending, Message{From: from, Data: b.rxBufs[i][:b.rxHdrs[i].n]})
		b.rxBufs[i] = GetBuf(MaxDatagram)
	}
	return nil
}

// release returns the receive ring's pooled buffers. Idempotent; caller
// holds UDP.rxMu.
func (b *udpBatcher) release() {
	if !b.rxLive {
		return
	}
	for i := range b.rxBufs {
		PutBuf(b.rxBufs[i])
		b.rxBufs[i] = nil
	}
	b.rxLive = false
}

// sendBatch transmits msgs (already resolved to kernel sockaddrs by
// resolve) in chunks of udpMaxBatch. Partial sendmmsg returns — the
// kernel accepted only a prefix — resume from the first unsent message,
// which is the short-batch edge case the chaos soak hammers.
func (b *udpBatcher) sendBatch(msgs []Outgoing, resolve func(int, *rawSockaddr) bool) error {
	b.txMu.Lock()
	defer b.txMu.Unlock()
	for len(msgs) > 0 {
		chunk := msgs
		if len(chunk) > udpMaxBatch {
			chunk = chunk[:udpMaxBatch]
		}
		msgs = msgs[len(chunk):]
		n := 0
		for _, m := range chunk {
			if !resolve(m.To, &b.txAddrs[n]) {
				// Unknown peer mid-batch: flush what precedes it so
				// ordering holds, then report like the scalar path.
				if n > 0 {
					if err := b.flush(b.txHdrs[:n]); err != nil {
						return err
					}
				}
				return errUnknownPeerBatch(m.To)
			}
			b.txIovs[n] = syscall.Iovec{Base: &m.Data[0]}
			b.txIovs[n].SetLen(len(m.Data))
			b.txHdrs[n] = mmsghdr{hdr: syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&b.txAddrs[n].storage)),
				Namelen: b.txAddrs[n].nameLen,
				Iov:     &b.txIovs[n],
				Iovlen:  1,
			}}
			n++
		}
		if err := b.flush(b.txHdrs[:n]); err != nil {
			return err
		}
	}
	return nil
}

// flush drives one mmsghdr chunk fully into the kernel, retrying after
// partial acceptance and waiting for writability on EAGAIN.
func (b *udpBatcher) flush(hdrs []mmsghdr) error {
	sent := 0
	var errno syscall.Errno
	ioErr := b.raw.Write(func(fd uintptr) bool {
		for sent < len(hdrs) {
			n, e := sendmmsg(fd, hdrs[sent:], syscall.MSG_DONTWAIT)
			switch e {
			case 0:
				if n < len(hdrs)-sent {
					obsTxPartialWrites.Inc()
				}
				sent += n
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // wait for writability and resume
			default:
				errno = e
				return true
			}
		}
		return true
	})
	if ioErr != nil {
		return ioErr
	}
	if errno != 0 {
		return errno
	}
	obsTxBatches.Inc()
	obsTxBatchDgrams.Add(int64(len(hdrs)))
	obsTxBatchSize.Observe(int64(len(hdrs)))
	obsEmitTxBatch(int64(len(hdrs)))
	return nil
}
