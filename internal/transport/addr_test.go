package transport

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestCanonicalAddr(t *testing.T) {
	cases := []struct{ in, want string }{
		{"0.0.0.0:9000", "127.0.0.1:9000"},
		{":9000", "127.0.0.1:9000"},
		{"[::]:9000", "[::1]:9000"},
		{"127.0.0.1:9000", "127.0.0.1:9000"},
		{"10.1.2.3:7410", "10.1.2.3:7410"},
		{"example.com:80", "example.com:80"},
		{"not-an-addr", "not-an-addr"}, // malformed: returned unchanged
	}
	for _, tc := range cases {
		if got := CanonicalAddr(tc.in); got != tc.want {
			t.Errorf("CanonicalAddr(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestUDPWildcardRegistrationParity is the regression test for wildcard
// canonicalization applying on only one registration path: a peer
// registered post-construction (the worker re-dial path after a view
// change) with a wildcard host must behave exactly like one listed in the
// constructor's address book — datagrams route AND the sender attributes
// correctly on the return path.
func TestUDPWildcardRegistrationParity(t *testing.T) {
	a, err := NewUDP(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDP(1, map[int]string{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	_, aPort, _ := net.SplitHostPort(a.Addr())
	_, bPort, _ := net.SplitHostPort(b.Addr())
	// a's book entry for b: constructor-style canonical address. b's book
	// entry for a: wildcard host via the RegisterPeer re-dial path.
	if err := a.RegisterPeer(1, "127.0.0.1:"+bPort); err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterPeer(0, "0.0.0.0:"+aPort); err != nil {
		t.Fatal(err)
	}

	// b -> a through the wildcard-registered binding.
	if err := b.Send(0, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, a)
	if m.From != 1 || string(m.Data) != "ping" {
		t.Fatalf("a got from=%d data=%q", m.From, m.Data)
	}
	PutBuf(m.Data)
	// a -> b: b must attribute a's source address to id 0, which only
	// works if the wildcard entry canonicalized to the loopback address
	// the datagram actually arrives from.
	if err := a.Send(1, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	m = recvOne(t, b)
	if m.From != 0 || string(m.Data) != "pong" {
		t.Fatalf("b got from=%d data=%q (wildcard registration attributed differently)", m.From, m.Data)
	}
	PutBuf(m.Data)
}

// TestTCPWildcardRegistrationParity: same property on the TCP re-dial
// path. Before RegisterPeer canonicalized, a wildcard-host address
// registered after a rebind dialed the unspecified address — unlike the
// same string passed at construction.
func TestTCPWildcardRegistrationParity(t *testing.T) {
	a, err := NewTCP(0, map[int]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	_, aPort, _ := net.SplitHostPort(a.Addr())
	b, err := NewTCP(1, map[int]string{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := b.RegisterPeer(0, ":"+aPort); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.addrs[0], "127.0.0.1:") {
		t.Fatalf("RegisterPeer stored %q, want canonicalized loopback", b.addrs[0])
	}
	if err := b.Send(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, a)
	if m.From != 1 || string(m.Data) != "hello" {
		t.Fatalf("a got from=%d data=%q", m.From, m.Data)
	}
	PutBuf(m.Data)
}

// recvOne receives with a deadline so a routing bug fails the test
// instead of hanging it.
func recvOne(t *testing.T, c Conn) Message {
	t.Helper()
	type res struct {
		m   Message
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := c.Recv()
		ch <- res{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.m
	case <-time.After(5 * time.Second):
		t.Fatal("recv timed out")
	}
	return Message{}
}
