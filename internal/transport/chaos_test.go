package transport

import (
	"fmt"
	"testing"
	"time"
)

// collect drains n messages from a conn, failing the test on timeout.
func collect(t *testing.T, c Conn, n int, timeout time.Duration) []Message {
	t.Helper()
	out := make([]Message, 0, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(out) < n {
			m, err := c.Recv()
			if err != nil {
				return
			}
			out = append(out, m)
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("collected %d of %d messages", len(out), n)
	}
	return out
}

// driveScenario pushes `packets` one-byte messages through a fresh fabric
// on the 0->1 link and returns the fabric.
func driveScenario(t *testing.T, sc Scenario, packets int) *ChaosFabric {
	t.Helper()
	nw := NewNetwork(2, packets*2+16)
	f := NewChaosFabric(sc)
	c := f.Wrap(nw.Conn(0))
	for i := 0; i < packets; i++ {
		if err := c.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestChaosDeterministicDecisions(t *testing.T) {
	sc := Scenario{
		Seed:   42,
		Window: 400,
		Phases: []Phase{
			{Packets: 100, Drop: 0.1, Dup: 0.05},
			{Packets: 100, Burst: &Burst{PEnter: 0.05, PExit: 0.3, DropBad: 0.9}},
			{Packets: 100, Reorder: 0.2, ReorderSpan: 3},
			{Drop: 0.02, Delay: time.Millisecond, DelayP: 0.3},
		},
	}
	a := driveScenario(t, sc, 400)
	b := driveScenario(t, sc, 400)
	ca, cb := a.Counts(), b.Counts()
	if ca != cb {
		t.Fatalf("same seed, different injections:\n%+v\n%+v", ca, cb)
	}
	if ca.Total() == 0 {
		t.Fatal("scenario injected nothing")
	}
	if a.WindowEvents() != b.WindowEvents() || a.WindowEvents() == 0 {
		t.Fatalf("window events differ: %d vs %d", a.WindowEvents(), b.WindowEvents())
	}
	// A different seed must (overwhelmingly) choose different packets even
	// if aggregate rates are similar: compare full decision fingerprints by
	// re-running the drop decision stream directly.
	sc2 := sc
	sc2.Seed = 43
	c := driveScenario(t, sc2, 400)
	if a.Counts() == c.Counts() && a.WindowEvents() == c.WindowEvents() {
		t.Log("note: different seed coincided on all counters (unlikely but legal)")
	}
}

func TestChaosPhaseScheduleAdvancesPerLink(t *testing.T) {
	// Phase 1 drops everything, phase 2 is clean: exactly the first 10
	// messages on each link vanish.
	sc := Scenario{Seed: 7, Phases: []Phase{{Packets: 10, Drop: 1.0}, {}}}
	nw := NewNetwork(3, 256)
	f := NewChaosFabric(sc)
	c0 := f.Wrap(nw.Conn(0))
	for i := 0; i < 30; i++ {
		if err := c0.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A second link is still in its own phase 1.
	for i := 0; i < 5; i++ {
		if err := c0.Send(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, nw.Conn(1), 20, 2*time.Second)
	for i, m := range got {
		if int(m.Data[0]) != i+10 {
			t.Fatalf("message %d: got payload %d, want %d", i, m.Data[0], i+10)
		}
	}
	if n := f.Counts().Dropped; n != 15 {
		t.Fatalf("dropped %d, want 15 (10 on 0->1, 5 on 0->2)", n)
	}
}

func TestChaosBurstLossIsBursty(t *testing.T) {
	// With rare entry, fast exit, and certain drop in the bad state, drops
	// must cluster into runs rather than spread uniformly.
	sc := Scenario{Seed: 11, Phases: []Phase{
		{Burst: &Burst{PEnter: 0.02, PExit: 0.25, DropBad: 1.0}},
	}}
	const n = 4000
	nw := NewNetwork(2, n+16)
	f := NewChaosFabric(sc)
	c := f.Wrap(nw.Conn(0))
	for i := 0; i < n; i++ {
		if err := c.Send(1, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	drops := f.Counts().BurstDrops
	if drops == 0 {
		t.Fatal("no burst drops")
	}
	// Expected loss rate = stationary P(bad) = PEnter/(PEnter+PExit) ~ 7.4%.
	rate := float64(drops) / n
	if rate < 0.02 || rate > 0.20 {
		t.Fatalf("burst loss rate %.3f outside plausible band", rate)
	}
	// Burstiness: count maximal runs of consecutive dropped seqs. Uniform
	// loss at the same rate would give ~n*rate runs of mean length ~1; the
	// GE model must produce significantly fewer, longer runs.
	got := collect(t, nw.Conn(1), n-int(drops), 5*time.Second)
	delivered := make([]bool, n)
	for _, m := range got {
		delivered[int(m.Data[0])|int(m.Data[1])<<8] = true
	}
	runs := 0
	inRun := false
	for i := 0; i < n; i++ {
		if !delivered[i] && !inRun {
			runs++
			inRun = true
		} else if delivered[i] {
			inRun = false
		}
	}
	meanRun := float64(drops) / float64(runs)
	if meanRun < 2.0 {
		t.Fatalf("mean drop-run length %.2f; expected bursty (>= 2)", meanRun)
	}
}

func TestChaosReorderBounded(t *testing.T) {
	const n, span = 200, 4
	sc := Scenario{Seed: 3, Phases: []Phase{{Reorder: 0.3, ReorderSpan: span}}}
	nw := NewNetwork(2, n+16)
	f := NewChaosFabric(sc)
	c := f.Wrap(nw.Conn(0))
	for i := 0; i < n; i++ {
		if err := c.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if f.Counts().Reordered == 0 {
		t.Fatal("no reordering")
	}
	got := collect(t, nw.Conn(1), n, 2*time.Second)
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	seen := make([]bool, n)
	for pos, m := range got {
		id := int(m.Data[0])
		seen[id] = true
		// Bounded displacement: a message may not arrive more than span+1
		// positions away from its send order in either direction.
		if d := pos - id; d > span+1 || d < -(span+1) {
			t.Fatalf("message %d displaced by %d (> span %d)", id, d, span)
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("message %d lost by reordering", i)
		}
	}
}

func TestChaosOneWayPartition(t *testing.T) {
	sc := Scenario{Seed: 5, Phases: []Phase{
		{Packets: 8, Partitions: []Partition{{From: 0, To: -1}}},
		{},
	}}
	nw := NewNetwork(2, 256)
	f := NewChaosFabric(sc)
	c0 := f.Wrap(nw.Conn(0))
	c1 := f.Wrap(nw.Conn(1))
	// Node 0's first 8 sends are blackholed; node 1 is unaffected.
	for i := 0; i < 10; i++ {
		if err := c0.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := c1.Send(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	fromZero := collect(t, nw.Conn(1), 2, 2*time.Second)
	if fromZero[0].Data[0] != 8 || fromZero[1].Data[0] != 9 {
		t.Fatalf("partition leaked: got payloads %d,%d", fromZero[0].Data[0], fromZero[1].Data[0])
	}
	fromOne := collect(t, nw.Conn(0), 10, 2*time.Second)
	if len(fromOne) != 10 {
		t.Fatalf("reverse direction affected: %d messages", len(fromOne))
	}
	if p := f.Counts().Partitioned; p != 8 {
		t.Fatalf("partitioned = %d, want 8", p)
	}
}

func TestChaosDelayDelivers(t *testing.T) {
	sc := Scenario{Seed: 9, Phases: []Phase{{Delay: 5 * time.Millisecond, DelayP: 1.0}}}
	nw := NewNetwork(2, 64)
	f := NewChaosFabric(sc)
	c := f.Wrap(nw.Conn(0))
	start := time.Now()
	for i := 0; i < 16; i++ {
		if err := c.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, nw.Conn(1), 16, 2*time.Second)
	if len(got) != 16 {
		t.Fatalf("delivered %d", len(got))
	}
	if time.Since(start) == 0 {
		t.Fatal("impossible")
	}
	if d := f.Counts().Delayed; d != 16 {
		t.Fatalf("delayed = %d, want 16", d)
	}
}

func TestChaosCleanScheduleIsTransparent(t *testing.T) {
	// An empty schedule forwards everything in order.
	nw := NewNetwork(2, 64)
	f := NewChaosFabric(Scenario{Seed: 1})
	c := f.Wrap(nw.Conn(0))
	for i := 0; i < 32; i++ {
		if err := c.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, nw.Conn(1), 32, 2*time.Second)
	for i, m := range got {
		if int(m.Data[0]) != i {
			t.Fatalf("out of order at %d", i)
		}
	}
	if tot := f.Counts().Total(); tot != 0 {
		t.Fatalf("clean fabric injected %d events", tot)
	}
	if f.Counts().Sent != 32 {
		t.Fatalf("sent = %d", f.Counts().Sent)
	}
}

func TestChaosWindowEventsExcludeTail(t *testing.T) {
	// Only events within the first Window packets per link count toward the
	// replay fingerprint.
	sc := Scenario{Seed: 21, Window: 50, Phases: []Phase{{Drop: 1.0}}}
	f := driveScenario(t, sc, 200)
	if w := f.WindowEvents(); w != 50 {
		t.Fatalf("window events = %d, want 50", w)
	}
	if d := f.Counts().Dropped; d != 200 {
		t.Fatalf("dropped = %d, want 200", d)
	}
}

func TestChaosRollUniformity(t *testing.T) {
	// Sanity: the stateless hash behind decisions is roughly uniform and
	// decorrelated across salts and sequence numbers.
	f := NewChaosFabric(Scenario{Seed: 1234})
	var sum float64
	buckets := make([]int, 10)
	const n = 20000
	for i := 0; i < n; i++ {
		u := f.roll(0, 1, i, saltDrop)
		if u < 0 || u >= 1 {
			t.Fatalf("roll out of range: %v", u)
		}
		sum += u
		buckets[int(u*10)]++
	}
	if mean := sum / n; mean < 0.47 || mean > 0.53 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
	for b, c := range buckets {
		if c < n/10-n/25 || c > n/10+n/25 {
			t.Fatalf("bucket %d count %d far from uniform", b, c)
		}
	}
	// Distinct salts must not mirror each other.
	same := 0
	for i := 0; i < 1000; i++ {
		a := f.roll(0, 1, i, saltDrop) < 0.5
		b := f.roll(0, 1, i, saltDup) < 0.5
		if a == b {
			same++
		}
	}
	if same < 400 || same > 600 {
		t.Fatalf("salt correlation: %d/1000 agreements", same)
	}
}

func ExampleChaosFabric() {
	sc := Scenario{
		Seed:   1,
		Window: 100,
		Phases: []Phase{
			{Packets: 50, Drop: 0.2},                    // lossy warm-up
			{Packets: 50, Reorder: 0.5, ReorderSpan: 2}, // reorder storm
			{}, // clean tail
		},
	}
	nw := NewNetwork(2, 1024)
	f := NewChaosFabric(sc)
	c := f.Wrap(nw.Conn(0))
	for i := 0; i < 200; i++ {
		_ = c.Send(1, []byte{byte(i)})
	}
	_ = c.Flush()
	replay := NewChaosFabric(sc) // same seed: same decisions
	c2 := replay.Wrap(nw.Conn(0))
	for i := 0; i < 200; i++ {
		_ = c2.Send(1, []byte{byte(i)})
	}
	_ = c2.Flush()
	fmt.Println(f.WindowEvents() == replay.WindowEvents())
	// Output: true
}
