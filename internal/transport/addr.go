package transport

import "net"

// Address canonicalization shared by every peer-registration path (UDP
// book entries, TCP dial addresses, and the re-dial a worker performs
// after a membership view change). A wildcard or empty host in a peer's
// address (":7410", "0.0.0.0:7410", "[::]:7410") can only mean "this
// machine"; canonicalizing it to the matching loopback in ONE place
// keeps sender attribution consistent — the address a peer is registered
// under matches the source address its traffic actually arrives with,
// whether the registration happened at construction or on a rebind.

// PeerRegistrar is the optional transport capability of updating a
// peer's address after construction (":0" setups, and worker re-dial
// after failover promotes a standby). UDP and TCP implement it; the
// in-process channel network routes by node ID and needs no re-dial.
type PeerRegistrar interface {
	RegisterPeer(id int, addr string) error
}

// canonicalUDPAddr returns ra with a wildcard or empty host rewritten to
// the matching loopback (preserving port and zone); other addresses pass
// through unchanged.
func canonicalUDPAddr(ra *net.UDPAddr) *net.UDPAddr {
	if len(ra.IP) == 0 || ra.IP.IsUnspecified() {
		if len(ra.IP) == 0 || ra.IP.To4() != nil {
			return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: ra.Port}
		}
		return &net.UDPAddr{IP: net.IPv6loopback, Port: ra.Port, Zone: ra.Zone}
	}
	return ra
}

// CanonicalAddr rewrites a wildcard or empty host to the matching
// loopback, preserving the port. Malformed addresses are returned
// unchanged (the subsequent dial/resolve reports the real error).
func CanonicalAddr(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" {
		return net.JoinHostPort("127.0.0.1", port)
	}
	ip := net.ParseIP(host)
	if ip == nil || !ip.IsUnspecified() {
		return addr
	}
	if ip.To4() != nil {
		return net.JoinHostPort("127.0.0.1", port)
	}
	return net.JoinHostPort("::1", port)
}
