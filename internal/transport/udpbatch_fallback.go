//go:build !linux || (!amd64 && !arm64) || portable_net

package transport

// Portable fallback for the batched UDP datapath: no batcher is ever
// constructed, so the UDP transport runs the byte-identical scalar
// ReadFromUDP/WriteToUDP path on every Recv/Send, and SendBatch degrades
// to a loop of Sends. Selected automatically off Linux and forced on
// Linux with `-tags portable_net`, which is how the Makefile keeps the
// scalar path from rotting behind the fast one.

import "net/netip"

// batchIOAvailable reports whether this build includes the batched UDP
// fast path.
const batchIOAvailable = false

type udpBatcher struct{}

func newUDPBatcher(*UDP) *udpBatcher { return nil }

func (*udpBatcher) fill(*[]Message, func(netip.AddrPort) int) error { return ErrClosed }

func (*udpBatcher) release() {}

func (*udpBatcher) sendBatch([]Outgoing, func(int, *rawSockaddr) bool) error { return ErrClosed }

// rawSockaddr is unused on the portable path; it exists so the shared
// resolve plumbing in udp.go compiles identically under both flavors.
type rawSockaddr struct{ _ [0]byte }

func (*rawSockaddr) fill(netip.AddrPort) bool { return false }
