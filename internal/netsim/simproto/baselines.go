package simproto

import (
	"math"

	"omnireduce/internal/netsim"
)

// This file models the comparison systems of §6.1 on the simulator. The
// sparse methods operate on element-level density D (they ship key-value
// pairs, 8 bytes per non-zero element); OmniReduce operates on block
// occupancy (see omni.go). Union densities after reduction follow either
// the i.i.d. model (1-(1-D)^N, matching the microbenchmarks' random
// tensors) or a caller-supplied union factor for profile-driven runs.

// ringMsg tags ring-step messages.
type ringMsg struct{ step int }

// SimRingAllReduce models the NCCL/Gloo default: reduce-scatter plus
// allgather, 2(N-1) steps of S/N bytes. Returns completion seconds.
func SimRingAllReduce(c Cluster, tensorBytes float64) float64 {
	N := c.Workers
	if N == 1 {
		return 0
	}
	n := netsim.NewNet(c.Latency, 0, c.Seed)
	nodes := make([]*netsim.Node, N)
	for w := 0; w < N; w++ {
		nodes[w] = n.AddNode(w, c.WorkerBW, c.WorkerBW)
		nodes[w].CPUPerMsg = c.CPUPerMsg
	}
	chunk := tensorBytes / float64(N)
	steps := 2 * (N - 1)
	finished := 0
	var finishedAt float64
	for w := 0; w < N; w++ {
		w := w
		right := (w + 1) % N
		nodes[w].Handler = func(m netsim.Message) {
			s := m.Payload.(ringMsg).step
			if s+1 < steps {
				nodes[w].Send(right, chunk, ringMsg{step: s + 1})
			}
			if s == steps-1 {
				finished++
				if finished == N {
					finishedAt = n.Sim.Now()
				}
			}
		}
	}
	for w := 0; w < N; w++ {
		nodes[w].Send((w+1)%N, chunk, ringMsg{step: 0})
	}
	n.Sim.Run()
	return finishedAt
}

// SimAGsparseAllReduce models PyTorch's AllGather-based sparse AllReduce:
// an N-1 step ring allgather of each rank's 2*D*S bytes of key-value
// pairs, followed by a local reduction (charged at ReduceBW bytes/sec,
// which the paper's microbenchmarks exclude by setting it to 0 = free).
func SimAGsparseAllReduce(c Cluster, tensorBytes, density, reduceBW float64) float64 {
	N := c.Workers
	kv := 2 * density * tensorBytes
	if N == 1 {
		return 0
	}
	n := netsim.NewNet(c.Latency, 0, c.Seed)
	nodes := make([]*netsim.Node, N)
	for w := 0; w < N; w++ {
		nodes[w] = n.AddNode(w, c.WorkerBW, c.WorkerBW)
		nodes[w].CPUPerMsg = c.CPUPerMsg
	}
	steps := N - 1
	finished := 0
	var finishedAt float64
	for w := 0; w < N; w++ {
		w := w
		right := (w + 1) % N
		nodes[w].Handler = func(m netsim.Message) {
			s := m.Payload.(ringMsg).step
			if s+1 < steps {
				nodes[w].Send(right, kv, ringMsg{step: s + 1})
			}
			if s == steps-1 {
				finished++
				if finished == N {
					finishedAt = n.Sim.Now()
				}
			}
		}
	}
	for w := 0; w < N; w++ {
		nodes[w].Send((w+1)%N, kv, ringMsg{step: 0})
	}
	n.Sim.Run()
	if reduceBW > 0 {
		// Local reduction over N gathered lists, serial after the gather.
		finishedAt += float64(N) * kv / reduceBW
	}
	return finishedAt
}

// iidUnionDensity is the union non-zero density of N i.i.d. random
// tensors with element density d.
func iidUnionDensity(d float64, n int) float64 {
	return 1 - math.Pow(1-d, float64(n))
}

type splitMsg struct {
	phase int // 1 = scatter to owner, 2 = allgather step
	step  int
}

// SimSparCMLSplitAllgather models SSAR_Split_allgather (dynamic=false) and
// DSAR_Split_allgather (dynamic=true). unionDensity is the element density
// of the reduced result (i.i.d.: iidUnionDensity(D, N)).
func SimSparCMLSplitAllgather(c Cluster, tensorBytes, density, unionDensity float64, dynamic bool) float64 {
	N := c.Workers
	if N == 1 {
		return 0
	}
	n := netsim.NewNet(c.Latency, 0, c.Seed)
	nodes := make([]*netsim.Node, N)
	for w := 0; w < N; w++ {
		nodes[w] = n.AddNode(w, c.WorkerBW, c.WorkerBW)
		nodes[w].CPUPerMsg = c.CPUPerMsg
	}
	sliceKV := 2 * density * tensorBytes / float64(N)
	// Reduced partition representation.
	partDense := tensorBytes / float64(N)
	partKV := 2 * unionDensity * tensorBytes / float64(N)
	part := partKV
	if dynamic && partKV > partDense/2 {
		part = partDense // DSAR's sparse-to-dense switch at rho
	}

	steps := N - 1
	recvP1 := make([]int, N)
	finished := 0
	var finishedAt float64
	for w := 0; w < N; w++ {
		w := w
		right := (w + 1) % N
		nodes[w].Handler = func(m netsim.Message) {
			msg := m.Payload.(splitMsg)
			switch msg.phase {
			case 1:
				recvP1[w]++
				if recvP1[w] == N-1 {
					// Partition reduced; start the allgather ring.
					nodes[w].Send(right, part, splitMsg{phase: 2, step: 0})
				}
			case 2:
				if msg.step+1 < steps {
					nodes[w].Send(right, part, splitMsg{phase: 2, step: msg.step + 1})
				}
				if msg.step == steps-1 {
					finished++
					if finished == N {
						finishedAt = n.Sim.Now()
					}
				}
			}
		}
	}
	// Phase 1: scatter slices to owners.
	for w := 0; w < N; w++ {
		for p := 0; p < N; p++ {
			if p != w {
				nodes[w].Send(p, sliceKV, splitMsg{phase: 1})
			}
		}
	}
	n.Sim.Run()
	return finishedAt
}

type psMsg struct{ push bool }

// SimParameterServer models a sharded PS reduction (Parallax's sparse
// path): each worker pushes its key-value slices to `servers` PS shards;
// each shard replies to every worker with the reduced union slice.
func SimParameterServer(c Cluster, tensorBytes, density, unionDensity float64, servers int) float64 {
	N := c.Workers
	n := netsim.NewNet(c.Latency, 0, c.Seed)
	nodes := make([]*netsim.Node, N)
	for w := 0; w < N; w++ {
		nodes[w] = n.AddNode(w, c.WorkerBW, c.WorkerBW)
		nodes[w].CPUPerMsg = c.CPUPerMsg
	}
	srv := make([]*netsim.Node, servers)
	pushes := make([]int, servers)
	for s := 0; s < servers; s++ {
		srv[s] = n.AddNode(N+s, c.AggBW, c.AggBW)
		srv[s].CPUPerMsg = c.CPUPerMsg
	}
	pushKV := 2 * density * tensorBytes / float64(servers)
	pullKV := 2 * unionDensity * tensorBytes / float64(servers)

	replies := make([]int, N)
	finished := 0
	var finishedAt float64
	for s := 0; s < servers; s++ {
		s := s
		srv[s].Handler = func(m netsim.Message) {
			pushes[s]++
			if pushes[s] == N {
				for w := 0; w < N; w++ {
					srv[s].Send(w, pullKV, psMsg{})
				}
			}
		}
	}
	for w := 0; w < N; w++ {
		w := w
		nodes[w].Handler = func(m netsim.Message) {
			replies[w]++
			if replies[w] == servers {
				finished++
				if finished == N {
					finishedAt = n.Sim.Now()
				}
			}
		}
	}
	for w := 0; w < N; w++ {
		for s := 0; s < servers; s++ {
			nodes[w].Send(N+s, pushKV, psMsg{push: true})
		}
	}
	n.Sim.Run()
	return finishedAt
}

// SimParallax models Parallax's oracle hybrid (§6.1.2): the better of the
// PS sparse path and dense ring AllReduce, mimicking its runtime profiler
// with an ideal choice, exactly as the paper's methodology does.
func SimParallax(c Cluster, tensorBytes, density, unionDensity float64, servers int) float64 {
	ps := SimParameterServer(c, tensorBytes, density, unionDensity, servers)
	ring := SimRingAllReduce(c, tensorBytes)
	return math.Min(ps, ring)
}

// ConvertTime models the dense<->sparse format conversion cost excluded
// from the microbenchmarks but measured in Fig 8: a linear scan at
// convertBW bytes per second.
func ConvertTime(bytes, convertBW float64) float64 {
	if convertBW <= 0 {
		return 0
	}
	return bytes / convertBW
}

// DefaultConvertBW is the host-side tensor format conversion throughput
// used by Fig 8 (bytes/second).
const DefaultConvertBW = 5e9

// Scaled returns a cluster that simulates 1/scale of the traffic volume
// in the same virtual time: bandwidths are divided and per-message CPU
// multiplied by scale, so bandwidth- and CPU-bound terms are preserved
// while the event count shrinks by ~scale. Latency terms are unchanged
// (they are amortized by pipelining in all modeled protocols).
func (c Cluster) Scaled(scale int) Cluster {
	if scale <= 1 {
		return c
	}
	f := float64(scale)
	c.WorkerBW /= f
	c.AggBW /= f
	if c.CopyBW > 0 {
		c.CopyBW /= f
	}
	c.CPUPerMsg *= f
	return c
}
