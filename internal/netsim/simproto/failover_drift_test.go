package simproto_test

import (
	"sync"
	"testing"
	"time"

	"omnireduce/internal/core"
	"omnireduce/internal/netsim/simproto"
	"omnireduce/internal/protocol"
	"omnireduce/internal/transport"
)

// Failover drift tier: killing an aggregator mid-collective and failing
// the position over to a standby must not move a single result bit, on
// either substrate. The simulator performs the handoff with the exact
// Checkpoint/Restore snapshot the live driver streams to standbys, the
// live cluster performs it with real checkpoint frames, a real kill, and
// in-band view adoption — and both must land on the same bit-exact
// deterministic dense sum as an undisturbed run.

// refDenseSum is the worker-ordered reference sum DeterministicOrder
// contracts to reproduce exactly.
func refDenseSum(inputs [][]float32) []float32 {
	out := make([]float32, len(inputs[0]))
	for _, in := range inputs {
		for i, v := range in {
			out[i] += v
		}
	}
	return out
}

func assertBitIdentical(t *testing.T, name string, results [][]float32, want []float32) {
	t.Helper()
	for w, res := range results {
		if len(res) != len(want) {
			t.Fatalf("%s: worker %d result length %d != %d", name, w, len(res), len(want))
		}
		for i, v := range res {
			if v != want[i] {
				t.Fatalf("%s: worker %d elem %d: %g != %g (failover moved a bit)", name, w, i, v, want[i])
			}
		}
	}
}

// liveFailoverRun executes the live chaos-kill scenario: three workers,
// two checkpointing primaries, one standby; the stream-1 primary is
// killed once the standby holds one of its checkpoints, the standby is
// activated into epoch 2, and the workers adopt the view in-band.
func liveFailoverRun(t *testing.T, inputs [][]float32, bs int) [][]float32 {
	t.Helper()
	const (
		aggA    = 3
		aggB    = 4
		standby = 5
	)
	W := len(inputs)
	view1 := protocol.View{Epoch: 1, Workers: []int{0, 1, 2}, Aggregators: []int{aggA, aggB}}
	cfg := core.Config{
		Workers:            W,
		Aggregators:        []int{aggA, aggB},
		Reliable:           false,
		DeterministicOrder: true,
		BlockSize:          bs,
		FusionWidth:        4,
		Streams:            2,
		RetransmitTimeout:  3 * time.Millisecond,
		View:               &view1,
	}

	nw := transport.NewNetwork(W, 4096)
	var aggWG sync.WaitGroup
	conns := map[int]transport.Conn{}
	startAgg := func(id int, c core.Config) *core.Aggregator {
		conn := nw.AddNode(id)
		conns[id] = conn
		a, err := core.NewAggregator(conn, c)
		if err != nil {
			t.Fatal(err)
		}
		aggWG.Add(1)
		go func() {
			defer aggWG.Done()
			if err := a.Run(); err != nil {
				t.Errorf("aggregator %d: %v", id, err)
			}
		}()
		return a
	}
	primCfg := cfg
	primCfg.CheckpointPeers = []int{standby}
	aggFirst := startAgg(aggA, primCfg)
	startAgg(aggB, primCfg)
	sbCfg := cfg
	sbCfg.Standby = true
	sb := startAgg(standby, sbCfg)
	_ = aggFirst

	work := make([][]float32, W)
	workers := make([]*core.Worker, W)
	for w := range inputs {
		work[w] = append([]float32(nil), inputs[w]...)
		wk, err := core.NewWorker(nw.Conn(w), cfg)
		if err != nil {
			t.Fatal(err)
		}
		workers[w] = wk
	}
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := workers[w].AllReduce(work[w]); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}

	deadline := time.Now().Add(10 * time.Second)
	for sb.CheckpointsFrom(aggB) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("standby never received a checkpoint from the doomed primary")
		}
		time.Sleep(time.Millisecond)
	}
	conns[aggB].Close() // kill: datagrams to the dead node silently vanish
	if err := sb.Activate(protocol.View{Epoch: 2, Workers: []int{0, 1, 2}, Aggregators: []int{aggA, standby}}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("live collectives never completed after failover")
	}
	for _, wk := range workers {
		wk.Close()
	}
	for id, c := range conns {
		if id != aggB {
			c.Close()
		}
	}
	aggWG.Wait()
	if sb.Stats.RoundsCompleted == 0 {
		t.Fatal("live standby completed no rounds: the kill happened after the collective finished")
	}
	return work
}

func TestFailoverDriftLiveVsSim(t *testing.T) {
	const W, blocks, bs = 3, 64, 16
	inputs := blockSparseInputs(W, blocks, bs, 0.3, 4242)
	want := refDenseSum(inputs)

	pcfg := protocol.Config{
		BlockSize:          bs,
		FusionWidth:        4,
		Streams:            2,
		DeterministicOrder: true,
		// Mirror the simulator's pinned fixed-cadence retransmission (see
		// OmniOpts.protoConfig): virtual-time RTTs are microseconds.
		RetransmitTimeout: time.Millisecond,
		RetransmitBackoff: 1,
		RetransmitJitter:  -1,
	}
	opts := simproto.OmniOpts{FusionWidth: 4, Streams: 2, Lossy: true}
	cl := simproto.Testbed10G(W, 2)

	// Baseline: undisturbed lossy-mode run.
	base := simproto.SimOmniReduceTensors(cl, inputs, pcfg, opts)
	if base.Time <= 0 {
		t.Fatalf("baseline sim did not complete: time %g", base.Time)
	}
	assertBitIdentical(t, "sim-baseline", base.Results, want)

	// Failover at several points of the collective: early (bootstrap
	// rounds in flight) and late (most rounds already archived).
	for _, frac := range []float64{0.2, 0.5} {
		fopts := opts
		fopts.FailoverAt = base.Time * frac
		fopts.FailAggIndex = 1
		run := simproto.SimOmniReduceTensors(cl, inputs, pcfg, fopts)
		if run.Time <= 0 {
			t.Fatalf("failover sim (frac %.1f) did not complete: time %g", frac, run.Time)
		}
		if run.Time <= fopts.FailoverAt {
			t.Fatalf("failover sim (frac %.1f) finished at %g before the kill at %g: not a mid-collective kill",
				frac, run.Time, fopts.FailoverAt)
		}
		assertBitIdentical(t, "sim-failover", run.Results, want)
		// The failed position's stats come from the machine that finished
		// serving it: the promoted standby.
		if run.AggStats[1].RoundsCompleted == 0 {
			t.Fatalf("failover sim (frac %.1f): standby completed no rounds", frac)
		}
	}

	// The live cluster under a real mid-collective kill must land on the
	// same bits.
	live := liveFailoverRun(t, inputs, bs)
	assertBitIdentical(t, "live-failover", live, want)
}
