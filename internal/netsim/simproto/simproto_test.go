package simproto

import (
	"math"
	"math/rand"
	"testing"

	"omnireduce/internal/netsim"
	"omnireduce/internal/sparsity"
)

// tb is a clean 8-worker cluster with no CPU or copy modeling, for
// comparing against the closed-form §3.4 expressions.
func cleanCluster(workers int, bwGbps float64) Cluster {
	return Cluster{
		Workers: workers, Aggregators: workers,
		WorkerBW: netsim.Gbps(bwGbps), AggBW: netsim.Gbps(bwGbps),
		Latency: 5e-6,
	}
}

func TestRingMatchesFormula(t *testing.T) {
	for _, N := range []int{2, 4, 8} {
		c := cleanCluster(N, 10)
		S := 100e6
		got := SimRingAllReduce(c, S)
		want := 2 * float64(N-1) * (c.Latency + S*8/(float64(N)*c.WorkerBW))
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("N=%d: ring sim %v vs formula %v", N, got, want)
		}
	}
}

func TestRingSingleWorker(t *testing.T) {
	if got := SimRingAllReduce(cleanCluster(1, 10), 1e6); got != 0 {
		t.Fatalf("single worker ring = %v", got)
	}
}

func TestAGsparseMatchesFormula(t *testing.T) {
	for _, N := range []int{2, 4, 8} {
		for _, D := range []float64{0.01, 0.2} {
			c := cleanCluster(N, 10)
			S := 100e6
			got := SimAGsparseAllReduce(c, S, D, 0)
			want := float64(N-1) * (c.Latency + 2*D*S*8/c.WorkerBW)
			if math.Abs(got-want)/want > 0.02 {
				t.Errorf("N=%d D=%v: AGsparse sim %v vs formula %v", N, D, got, want)
			}
		}
	}
}

func TestOmniDenseMatchesFormula(t *testing.T) {
	// Dense data, dedicated aggregators with aggregate bandwidth N*B:
	// §3.4 gives T ≈ α + S/B (plus metadata overhead).
	N := 8
	c := cleanCluster(N, 10)
	S := 100e6
	rng := rand.New(rand.NewSource(1))
	spec := UniformSpec(int(S/1024), N, 1024, 1.0, sparsity.OverlapRandom, rng)
	got := SimOmniReduce(c, spec, OmniOpts{})
	want := c.Latency + S*8/c.WorkerBW
	if got < want || got > want*1.25 {
		t.Errorf("omni dense: sim %v vs model %v", got, want)
	}
}

func TestOmniSparsitySpeedsUp(t *testing.T) {
	N := 8
	c := cleanCluster(N, 10)
	S := 50e6
	rng := rand.New(rand.NewSource(2))
	var prev float64 = math.Inf(1)
	for _, s := range []float64{0, 0.6, 0.9, 0.99} {
		spec := UniformSpec(int(S/1024), N, 1024, 1-s, sparsity.OverlapAll, rng)
		got := SimOmniReduce(c, spec, OmniOpts{})
		if got >= prev {
			t.Errorf("sparsity %v did not speed up: %v >= %v", s, got, prev)
		}
		prev = got
	}
}

func TestOmniOverlapEffect(t *testing.T) {
	// §6.4.2: at mid sparsity, all-overlap is significantly faster than
	// no overlap (union volume is N times smaller).
	N := 8
	c := cleanCluster(N, 10)
	blocks := 40_000
	rng := rand.New(rand.NewSource(3))
	all := SimOmniReduce(c, UniformSpec(blocks, N, 1024, 0.1, sparsity.OverlapAll, rng), OmniOpts{})
	none := SimOmniReduce(c, UniformSpec(blocks, N, 1024, 0.1, sparsity.OverlapNone, rng), OmniOpts{})
	if all >= none {
		t.Errorf("all-overlap %v not faster than none-overlap %v", all, none)
	}
}

func TestOmniBeatsRingWhenSparse(t *testing.T) {
	N := 8
	c := Testbed10G(N, N)
	S := 100e6
	rng := rand.New(rand.NewSource(4))
	ring := SimRingAllReduce(c, S)
	spec := UniformSpec(int(S/1024), N, 1024, 0.01, sparsity.OverlapRandom, rng)
	omni := SimOmniReduce(c, spec, OmniOpts{})
	if omni >= ring/3 {
		t.Errorf("at 99%% sparsity omni %v should be >3x faster than ring %v", omni, ring)
	}
}

func TestOmniScalesBetterThanRing(t *testing.T) {
	// Dense input: ring time grows with N, omni stays ~constant (Fig 4).
	S := 50e6
	rng := rand.New(rand.NewSource(5))
	ring2 := SimRingAllReduce(cleanCluster(2, 10), S)
	ring8 := SimRingAllReduce(cleanCluster(8, 10), S)
	if ring8 <= ring2 {
		t.Errorf("ring should slow down with workers: %v vs %v", ring8, ring2)
	}
	spec2 := UniformSpec(int(S/1024), 2, 1024, 1, sparsity.OverlapRandom, rng)
	spec8 := UniformSpec(int(S/1024), 8, 1024, 1, sparsity.OverlapRandom, rng)
	omni2 := SimOmniReduce(cleanCluster(2, 10), spec2, OmniOpts{})
	omni8 := SimOmniReduce(cleanCluster(8, 10), spec8, OmniOpts{})
	if math.Abs(omni8-omni2)/omni2 > 0.15 {
		t.Errorf("omni dense time should be ~constant in N: %v vs %v", omni2, omni8)
	}
}

func TestSparCMLDynamicSwitch(t *testing.T) {
	// At high density, DSAR's dense switch beats SSAR's sparse phase 2.
	c := cleanCluster(8, 10)
	S := 100e6
	D := 0.4
	du := iidUnionDensity(D, 8)
	ssar := SimSparCMLSplitAllgather(c, S, D, du, false)
	dsar := SimSparCMLSplitAllgather(c, S, D, du, true)
	if dsar >= ssar {
		t.Errorf("DSAR %v should beat SSAR %v at density %v", dsar, ssar, D)
	}
	// At very low density both keep sparse form and match.
	D = 0.001
	du = iidUnionDensity(D, 8)
	ssar = SimSparCMLSplitAllgather(c, S, D, du, false)
	dsar = SimSparCMLSplitAllgather(c, S, D, du, true)
	if math.Abs(ssar-dsar)/ssar > 0.01 {
		t.Errorf("SSAR %v and DSAR %v should match at low density", ssar, dsar)
	}
}

func TestParallaxOracle(t *testing.T) {
	c := cleanCluster(8, 10)
	S := 100e6
	// Dense data: Parallax must fall back to ring.
	ring := SimRingAllReduce(c, S)
	par := SimParallax(c, S, 1.0, 1.0, 8)
	if par > ring {
		t.Errorf("Parallax %v worse than its ring arm %v", par, ring)
	}
	// Extremely sparse: PS must win.
	ps := SimParameterServer(c, S, 0.001, iidUnionDensity(0.001, 8), 8)
	par = SimParallax(c, S, 0.001, iidUnionDensity(0.001, 8), 8)
	if math.Abs(par-ps) > 1e-9 && par > ring {
		t.Errorf("Parallax did not pick the PS arm: %v vs %v", par, ps)
	}
}

func TestOmniColocated(t *testing.T) {
	// Colocated mode must work and be no faster than dedicated for dense
	// data (it halves effective bandwidth, §3.4).
	N := 4
	S := 20e6
	rng := rand.New(rand.NewSource(6))
	ded := cleanCluster(N, 10)
	col := ded
	col.Colocated = true
	spec := UniformSpec(int(S/1024), N, 1024, 1.0, sparsity.OverlapRandom, rng)
	tDed := SimOmniReduce(ded, spec, OmniOpts{})
	tCol := SimOmniReduce(col, spec, OmniOpts{})
	if tCol < tDed {
		t.Errorf("colocated %v faster than dedicated %v on dense data", tCol, tDed)
	}
}

func TestOmniLossyConvergesAndCosts(t *testing.T) {
	N := 4
	c := cleanCluster(N, 10)
	c.Loss = 0.01
	rng := rand.New(rand.NewSource(7))
	spec := UniformSpec(5_000, N, 1024, 0.2, sparsity.OverlapRandom, rng)
	lossy := SimOmniReduce(c, spec, OmniOpts{Lossy: true, RetransmitTimeout: 500e-6})
	c.Loss = 0
	clean := SimOmniReduce(c, spec, OmniOpts{Lossy: true, RetransmitTimeout: 500e-6})
	if lossy <= clean {
		t.Errorf("loss should cost time: %v vs %v", lossy, clean)
	}
	if lossy > clean*3 {
		t.Errorf("1%% loss should not triple the time: %v vs %v", lossy, clean)
	}
}

func TestSwitchMLDense(t *testing.T) {
	// SwitchML* should be close to omni on dense data (same pipeline).
	N := 8
	c := cleanCluster(N, 10)
	S := 50e6
	rng := rand.New(rand.NewSource(8))
	sw := SimSwitchML(c, S, OmniOpts{})
	spec := UniformSpec(int(S/1024), N, 1024, 1.0, sparsity.OverlapRandom, rng)
	omni := SimOmniReduce(c, spec, OmniOpts{})
	if math.Abs(sw-omni)/omni > 0.05 {
		t.Errorf("switchml %v vs omni dense %v", sw, omni)
	}
	// And insensitive to sparsity (it sends everything).
	spec2 := UniformSpec(int(S/1024), N, 1024, 0.01, sparsity.OverlapRandom, rng)
	omniSparse := SimOmniReduce(c, spec2, OmniOpts{})
	if omniSparse >= sw {
		t.Errorf("omni at 99%% sparsity %v should beat switchml %v", omniSparse, sw)
	}
}

func TestCopyBottleneckAt100G(t *testing.T) {
	// §6.1.1: at 100 Gbps the staging copy caps RDMA gains at high
	// sparsity; GDR removes the cap.
	N := 8
	S := 100e6
	rng := rand.New(rand.NewSource(9))
	spec := UniformSpec(int(S/1024), N, 1024, 0.01, sparsity.OverlapRandom, rng)
	rdma := SimOmniReduce(Testbed100G(N, N), spec, OmniOpts{})
	gdr := SimOmniReduce(Testbed100GGDR(N, N), spec, OmniOpts{})
	if gdr >= rdma {
		t.Errorf("GDR %v should beat staged RDMA %v at 99%% sparsity", gdr, rdma)
	}
	// The RDMA time must be at least the copy time of the full tensor.
	copyTime := spec.TotalBytes() * 8 / netsim.Gbps(128)
	if rdma < copyTime {
		t.Errorf("RDMA time %v below copy bound %v", rdma, copyTime)
	}
}

func TestScaledClusterPreservesBandwidthTime(t *testing.T) {
	N := 4
	S := 100e6
	full := SimRingAllReduce(cleanCluster(N, 10), S)
	scaled := SimRingAllReduce(cleanCluster(N, 10).Scaled(100), S/100)
	if math.Abs(full-scaled)/full > 0.02 {
		t.Errorf("scaled sim %v vs full %v", scaled, full)
	}
}

func TestProfileSpecStats(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := sparsity.DeepLight
	spec := ProfileSpec(p, 8, 256, 1000, rng)
	// Per-worker non-zero fraction should match the profile's block
	// density at bs=256.
	wantDensity := 1 - p.BlockSparsity(256)
	got := spec.PerWorkerNonZeroBytes() / spec.TotalBytes()
	if math.Abs(got-wantDensity)/wantDensity > 0.25 {
		t.Errorf("profile spec density %v vs model %v", got, wantDensity)
	}
	// Union expansion should match the Table 2-derived union factor.
	uf := spec.UnionBytes() / spec.PerWorkerNonZeroBytes()
	want := p.UnionFactor(8)
	if math.Abs(uf-want)/want > 0.25 {
		t.Errorf("union factor %v vs %v", uf, want)
	}
}

func TestUniformSpecOverlapModes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	blocks := 10_000
	all := UniformSpec(blocks, 4, 1024, 0.1, sparsity.OverlapAll, rng)
	if u, p := all.UnionBytes(), all.PerWorkerNonZeroBytes(); math.Abs(u-p) > 1 {
		t.Errorf("all-overlap union %v != per-worker %v", u, p)
	}
	none := UniformSpec(blocks, 4, 1024, 0.1, sparsity.OverlapNone, rng)
	if u, p := none.UnionBytes(), none.PerWorkerNonZeroBytes(); math.Abs(u-4*p) > 1 {
		t.Errorf("none-overlap union %v != 4x per-worker %v", u, p)
	}
}

func TestConvertTime(t *testing.T) {
	if ConvertTime(100, 0) != 0 {
		t.Fatal("zero rate should be free")
	}
	if got := ConvertTime(10e9, 5e9); math.Abs(got-2) > 1e-9 {
		t.Fatalf("convert time = %v", got)
	}
}
