package simproto_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/core"
	"omnireduce/internal/netsim/simproto"
	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/transport"
)

// Substrate-equivalence drift test: the live channel cluster and the
// discrete-event simulator drive the same protocol machines, so for
// identical inputs and configuration they must produce identical
// per-worker packet/block/byte counts, identical aggregator round counts,
// and bit-identical results. Any divergence means one substrate's driver
// drifted from the shared protocol engine.

// blockSparseInputs builds per-worker inputs where each block is zero with
// probability sparsity, deterministically from seed.
func blockSparseInputs(workers, blocks, bs int, sparsity float64, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, workers)
	for w := range out {
		d := make([]float32, blocks*bs)
		for b := 0; b < blocks; b++ {
			if rng.Float64() < sparsity {
				continue
			}
			for i := 0; i < bs; i++ {
				d[b*bs+i] = float32(rng.NormFloat64())
			}
		}
		out[w] = d
	}
	return out
}

// liveRun executes one AllReduce per worker over the in-process channel
// transport and returns the reduced tensors plus both sides' counters.
func liveRun(t *testing.T, cfg core.Config, inputs [][]float32) ([][]float32, []protocol.WorkerStats, []core.AggStats) {
	t.Helper()
	nw := transport.NewNetwork(cfg.Workers, 4096)
	var aggs []*core.Aggregator
	var aggWG sync.WaitGroup
	var conns []transport.Conn
	for _, id := range cfg.Aggregators {
		conn := nw.AddNode(id)
		conns = append(conns, conn)
		a, err := core.NewAggregator(conn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		aggs = append(aggs, a)
		aggWG.Add(1)
		go func(a *core.Aggregator) {
			defer aggWG.Done()
			if err := a.Run(); err != nil {
				t.Errorf("aggregator: %v", err)
			}
		}(a)
	}
	work := make([][]float32, len(inputs))
	workers := make([]*core.Worker, len(inputs))
	for w := range inputs {
		work[w] = append([]float32(nil), inputs[w]...)
		conn := nw.Conn(w)
		conns = append(conns, conn)
		wk, err := core.NewWorker(conn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		workers[w] = wk
	}
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := workers[w].AllReduce(work[w]); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	var ws []protocol.WorkerStats
	for _, wk := range workers {
		s := wk.Stats.Snapshot()
		ws = append(ws, protocol.WorkerStats{
			BlocksSent:    s.BlocksSent,
			BlocksSkipped: s.BlocksSkipped,
			PacketsSent:   s.PacketsSent,
			BytesSent:     s.BytesSent,
			Retransmits:   s.Retransmits,
			AcksSent:      s.AcksSent,
			ResultsRecvd:  s.ResultsRecvd,
			StaleResults:  s.StaleResults,
			Backoffs:      s.Backoffs,
		})
	}
	// Worker.Close releases the persistent per-op driver states (decode
	// states return to their pool), which the grid's leak audit checks.
	for _, wk := range workers {
		wk.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	aggWG.Wait()
	var as []core.AggStats
	for _, a := range aggs {
		as = append(as, a.Stats)
	}
	return work, ws, as
}

// slotEventKey identifies one machine-emitted event occurrence modulo
// time: the multiset of these must be identical between substrates.
type slotEventKey struct {
	ev    obs.Event
	node  int32
	tid   uint32
	slot  uint16
	round uint8
	arg   int64
}

// machineMultiset reduces a flight recorder's contents to the multiset of
// machine-emitted slot events (obs.MachineEvents kinds only — driver
// events like EvPacketSent legitimately differ between substrates).
func machineMultiset(fr *obs.FlightRecorder) map[slotEventKey]int {
	machine := map[obs.Event]bool{}
	for _, ev := range obs.MachineEvents {
		machine[ev] = true
	}
	m := map[slotEventKey]int{}
	for _, r := range fr.Records() {
		if !machine[r.Ev] {
			continue
		}
		m[slotEventKey{r.Ev, r.Node, r.Tid, r.Slot, r.Round, r.Arg}]++
	}
	return m
}

// diffEventMultisets returns human-readable lines for every key whose
// multiplicity differs between the live and sim multisets.
func diffEventMultisets(live, sim map[slotEventKey]int) []string {
	var out []string
	for k, n := range live {
		if sim[k] != n {
			out = append(out, fmt.Sprintf("%v node=%d tid=%d slot=%d round=%d arg=%d: live %d sim %d",
				k.ev, k.node, k.tid, k.slot, k.round, k.arg, n, sim[k]))
		}
	}
	for k, n := range sim {
		if _, ok := live[k]; !ok {
			out = append(out, fmt.Sprintf("%v node=%d tid=%d slot=%d round=%d arg=%d: live 0 sim %d",
				k.ev, k.node, k.tid, k.slot, k.round, k.arg, n))
		}
	}
	sort.Strings(out)
	return out
}

func TestSubstrateEquivalence(t *testing.T) {
	// Run the whole grid with tracing enabled and a pool-leak audit
	// bracketing it: observability must be a pure observer — substrate
	// equivalence has to hold bit for bit with a tracer installed, the
	// live side must emit trace events, and teardown must return every
	// pooled buffer.
	tracer := obs.NewCountingTracer()
	prev := obs.SetTracer(tracer)
	defer obs.SetTracer(prev)
	audit := obs.StartLeakAudit()

	const blocks, bs = 48, 16
	grid := []struct {
		workers  int
		aggs     int
		sparsity float64
		fusion   int
		streams  int
	}{
		{workers: 2, aggs: 1, sparsity: 0, fusion: 1, streams: 1},
		{workers: 2, aggs: 1, sparsity: 0.5, fusion: 4, streams: 2},
		{workers: 3, aggs: 1, sparsity: 0.9, fusion: 4, streams: 2},
		{workers: 3, aggs: 2, sparsity: 0.5, fusion: 8, streams: 4},
		{workers: 4, aggs: 1, sparsity: 0.7, fusion: 2, streams: 3},
	}
	for i, g := range grid {
		name := fmt.Sprintf("w%d_a%d_s%.0f%%_f%d", g.workers, g.aggs, g.sparsity*100, g.fusion)
		t.Run(name, func(t *testing.T) {
			inputs := blockSparseInputs(g.workers, blocks, bs, g.sparsity, int64(1000+i))

			// Live cluster: dedicated aggregator nodes after the workers,
			// matching the simulator's non-colocated layout.
			var aggIDs []int
			for a := 0; a < g.aggs; a++ {
				aggIDs = append(aggIDs, g.workers+a)
			}
			cfg := core.Config{
				Workers:            g.workers,
				Aggregators:        aggIDs,
				BlockSize:          bs,
				FusionWidth:        g.fusion,
				Streams:            g.streams,
				Reliable:           true,
				DeterministicOrder: true,
				// Shard the live aggregators: equivalence must hold between
				// the simulator's single machine and the live driver's
				// per-slot shard machines (their stats sum field for field).
				AggShards: 4,
			}
			// Record each substrate's machine-emitted slot events with its
			// own flight recorder (the counting tracer keeps accumulating
			// underneath): the machines are the single shared protocol
			// implementation, so the two streams must be identical as
			// (event, node, tid, slot, round) multisets.
			liveFR := obs.NewFlightRecorder(-1, 8192)
			obs.SetTracer(obs.MultiTracer{tracer, liveFR})
			liveRes, liveWS, liveAS := liveRun(t, cfg, inputs)

			simFR := obs.NewFlightRecorder(-1, 8192)
			obs.SetTracer(obs.MultiTracer{tracer, simFR})
			cl := simproto.Testbed10G(g.workers, g.aggs)
			sim := simproto.SimOmniReduceTensors(cl, inputs, protocol.Config{
				BlockSize:          bs,
				FusionWidth:        g.fusion,
				Streams:            g.streams,
				Reliable:           true,
				DeterministicOrder: true,
			}, simproto.OmniOpts{FusionWidth: g.fusion, Streams: g.streams})
			obs.SetTracer(tracer)

			liveMS := machineMultiset(liveFR)
			if len(liveMS) == 0 {
				t.Error("live run recorded no machine-emitted slot events")
			}
			if d := diffEventMultisets(liveMS, machineMultiset(simFR)); len(d) > 0 {
				t.Errorf("machine event multisets drifted (%d keys):", len(d))
				for i, line := range d {
					if i >= 10 {
						t.Errorf("  ... and %d more", len(d)-10)
						break
					}
					t.Errorf("  %s", line)
				}
			}

			if sim.Time <= 0 {
				t.Fatalf("sim did not complete: time %g", sim.Time)
			}
			for w := 0; w < g.workers; w++ {
				if sim.WorkerStats[w] != liveWS[w] {
					t.Errorf("worker %d counters drifted:\n sim  %+v\n live %+v",
						w, sim.WorkerStats[w], liveWS[w])
				}
				for e := range liveRes[w] {
					if sim.Results[w][e] != liveRes[w][e] {
						t.Fatalf("worker %d elem %d: sim %v != live %v",
							w, e, sim.Results[w][e], liveRes[w][e])
					}
				}
			}
			if len(sim.AggStats) != len(liveAS) {
				t.Fatalf("aggregator count: sim %d live %d", len(sim.AggStats), len(liveAS))
			}
			for a := range liveAS {
				if sim.AggStats[a] != protocol.AggStats(liveAS[a]) {
					t.Errorf("aggregator %d counters drifted:\n sim  %+v\n live %+v",
						a, sim.AggStats[a], liveAS[a])
				}
			}
		})
	}

	for _, ev := range []obs.Event{obs.EvOpBegin, obs.EvOpEnd, obs.EvPacketSent, obs.EvPacketRecvd, obs.EvPoolGet, obs.EvPoolPut} {
		if tracer.Count(ev) == 0 {
			t.Errorf("live runs emitted no %s trace events", ev)
		}
	}
	if leaks := audit.Settle(2 * time.Second); len(leaks) != 0 {
		t.Errorf("drift grid leaked pooled buffers: %v", obs.LeaksErr(leaks))
	}
}
