package simproto

import (
	"fmt"
	"time"

	"omnireduce/internal/netsim"
	"omnireduce/internal/protocol"
	"omnireduce/internal/tensor"
	"omnireduce/internal/wire"
)

// This file is the virtual-time driver of the OmniReduce protocol: it runs
// the same protocol.WorkerMachine / protocol.AggregatorMachine state
// machines that internal/core drives over real transports, but feeds them
// from the netsim discrete-event loop. Messages are delivered as decoded
// packets and charged to the simulated fabric at their exact wire-encoded
// size (Emit.Size, computed by internal/wire). There is no
// simulator-private round schedule or packet-size formula: whatever the
// machines emit is what the fabric carries.
//
// Because the machines emit reusable packet shells (see the protocol.Emit
// ownership contract: consume before the next call into the machine) and
// simulated delivery happens at a future virtual time, the router
// deep-copies every emitted packet into a pooled shell at send time; the
// receiving handler recycles the shell once the machine consumed it
// (machines copy what they keep during HandlePacket). The fabric never
// duplicates a message, so each shell has exactly one consumer.

// SimStreams is the simulator's default pipeline depth. It intentionally
// overrides protocol.Defaults().Streams (4, the live default sized for
// in-process transports): the paper's implementation keeps 256 outstanding
// packets per worker (§5), and with 8 fused blocks per packet, 32 streams
// give a comparable pipeline depth against the simulated 10/100 Gbps
// fabrics. Pass OmniOpts.Streams explicitly to reconcile the substrates
// (the substrate-equivalence drift test does).
const SimStreams = 32

// OmniOpts parameterizes the simulated OmniReduce protocol.
type OmniOpts struct {
	FusionWidth int // blocks fused per packet (§3.2); default protocol.Defaults
	Streams     int // parallel slot streams (§3.1.1); default SimStreams
	ForceDense  bool
	// Lossy enables the Algorithm 2 machinery: per-round acks from every
	// worker, retransmission timers, result replay.
	Lossy bool
	// RetransmitTimeout is the worker loss-detection timer in simulated
	// seconds; default 1ms (virtual-time RTTs are microseconds, so the
	// live 20ms default would be absurdly conservative here).
	RetransmitTimeout float64
	// SwitchAgg models the P4 switch aggregator of Fig 18: negligible
	// per-packet processing at the aggregator.
	SwitchAgg bool
	// NoCopy skips the staging-copy model regardless of cluster CopyBW.
	NoCopy bool
	// FailoverAt, when > 0, kills the aggregator serving position
	// FailAggIndex (in aggregatorIDs order) at that simulated time and
	// fails the position over to a standby node: the dead machine's state
	// moves via Checkpoint/Restore — the same snapshot the live driver
	// streams to standbys — and every worker machine rebinds (Rebind),
	// replaying its unacknowledged rounds at the new aggregator. Requires
	// Lossy (reliable mode has no replay machinery) and dedicated
	// aggregator nodes (a colocated aggregator cannot die alone).
	FailoverAt   float64
	FailAggIndex int
	// StandbyID is the simulated node ID hosting the standby; 0 picks the
	// next free ID after the dedicated aggregators.
	StandbyID int
}

// simPkt is one in-flight simulated packet: a deep copy of an emitted
// machine shell (header, nexts, and block payloads carved from data),
// pooled per run and recycled by the receiving handler.
type simPkt struct {
	p    wire.Packet
	data []float32
}

func (o OmniOpts) withDefaults() OmniOpts {
	d := protocol.Defaults()
	if o.FusionWidth == 0 {
		o.FusionWidth = d.FusionWidth
	}
	if o.Streams == 0 {
		o.Streams = SimStreams // documented override of d.Streams
	}
	if o.RetransmitTimeout == 0 {
		o.RetransmitTimeout = 1e-3
	}
	return o
}

// aggregatorIDs returns the simulated aggregator node IDs: the worker
// nodes themselves when colocated, dedicated nodes numbered after the
// workers otherwise.
func aggregatorIDs(c Cluster) []int {
	n := c.Workers
	if c.Colocated {
		ids := make([]int, n)
		for w := range ids {
			ids[w] = w
		}
		return ids
	}
	m := c.Aggregators
	if m < 1 {
		m = 1
	}
	ids := make([]int, m)
	for a := range ids {
		ids[a] = n + a
	}
	return ids
}

// protoConfig assembles the machine configuration for a simulated run.
// The simulator pins the retransmission timer to a fixed cadence
// (backoff 1, no jitter): the live default's adaptive backoff defends
// against real congestion collapse, but the fabric model drops packets
// i.i.d., so backing off only inflates Algorithm 2's detection latency
// and distorts the loss-recovery figures it exists to measure.
func (o OmniOpts) protoConfig(c Cluster, blockElems int) protocol.Config {
	return protocol.Config{
		Workers:           c.Workers,
		Aggregators:       aggregatorIDs(c),
		BlockSize:         blockElems,
		FusionWidth:       o.FusionWidth,
		Streams:           o.Streams,
		Reliable:          !o.Lossy,
		ForceDense:        o.ForceDense,
		RetransmitTimeout: time.Duration(o.RetransmitTimeout * float64(time.Second)),
		RetransmitBackoff: 1,
		RetransmitJitter:  -1, // negative = disabled (0 would mean "default")
	}.WithDefaults()
}

// specView is the simulator's TensorView over a block-occupancy spec: it
// reports the spec's bitmap and hands out a shared zero-filled payload, so
// the machines run the real schedule without real data.
type specView struct {
	blocks int
	bm     *tensor.Bitmap
	zeros  []float32
}

func (v *specView) NumBlocks() int          { return v.blocks }
func (v *specView) NonZero(b int) bool      { return v.bm.Get(b) }
func (v *specView) Block(b int) []float32   { return v.zeros }
func (v *specView) SetBlock(int, []float32) {}

// OmniRun is the full outcome of one simulated collective: completion
// time plus the protocol machines' own traffic counters, for
// substrate-equivalence checks against the live implementation.
type OmniRun struct {
	Time        float64
	WorkerStats []protocol.WorkerStats
	// AggStats is indexed in aggregatorIDs order; on failover runs a
	// position reports the machine that finished serving it (the standby,
	// for the failed position — the dead machine's counters die with it).
	AggStats []protocol.AggStats
	// Results holds each worker's reduced tensor for tensor-backed runs
	// (SimOmniReduceTensors); nil for spec-driven runs.
	Results [][]float32
}

// SimOmniReduce runs the block-aggregation protocol on the simulator and
// returns the completion time in seconds (when every worker has the final
// result and, if modeled, the staging copy has drained).
func SimOmniReduce(c Cluster, spec *BlockSpec, opts OmniOpts) float64 {
	opts = opts.withDefaults()
	bs := int(spec.BlockBytes / 4)
	if bs < 1 {
		bs = 1
	}
	zeros := make([]float32, bs)
	views := make([]protocol.TensorView, c.Workers)
	for w := range views {
		bm := spec.PerWorker[w]
		views[w] = &specView{blocks: spec.Blocks, bm: bm, zeros: zeros}
	}
	return runOmni(c, views, opts.protoConfig(c, bs), opts, spec.TotalBytes()).Time
}

// SimOmniReduceTensors runs the protocol machines over real per-worker
// tensors in virtual time: the same data path as the live cluster, on the
// simulated fabric. Topology comes from c (which must agree with
// len(inputs)); protocol parameters from cfg (zero fields filled from
// protocol.Defaults; aggregator IDs from the cluster layout). The inputs
// are not modified; Results holds the reduced tensors.
func SimOmniReduceTensors(c Cluster, inputs [][]float32, cfg protocol.Config, opts OmniOpts) *OmniRun {
	opts = opts.withDefaults()
	c.Workers = len(inputs)
	cfg.Workers = len(inputs)
	cfg.Aggregators = aggregatorIDs(c)
	cfg.Reliable = !opts.Lossy
	cfg = cfg.WithDefaults()
	views := make([]protocol.TensorView, len(inputs))
	results := make([][]float32, len(inputs))
	var copyBytes float64
	for w := range inputs {
		d := append([]float32(nil), inputs[w]...)
		results[w] = d
		views[w] = protocol.NewDenseView(d, cfg.BlockSize, cfg.ForceDense)
		copyBytes = float64(4 * len(d))
	}
	run := runOmni(c, views, cfg, opts, copyBytes)
	run.Results = results
	return run
}

// runOmni is the shared discrete-event driver: it wires worker and
// aggregator machines onto netsim nodes, routes their emits as simulated
// messages, and arms virtual-time retransmission timers from the worker
// machines' deadline requests.
func runOmni(c Cluster, views []protocol.TensorView, cfg protocol.Config, opts OmniOpts, copyBytes float64) *OmniRun {
	n := netsim.NewNet(c.Latency, c.Loss, c.Seed)
	N := c.Workers
	nsPerSec := float64(time.Second)

	workers := make([]*netsim.Node, N)
	for w := 0; w < N; w++ {
		workers[w] = n.AddNode(w, c.WorkerBW, c.WorkerBW)
		workers[w].CPUPerMsg = c.CPUPerMsg
		if !opts.NoCopy {
			workers[w].CopyBW = c.CopyBW
		}
	}
	aggIDs := cfg.Aggregators
	if !c.Colocated {
		for _, id := range aggIDs {
			nd := n.AddNode(id, c.AggBW, c.AggBW)
			nd.CPUPerMsg = c.CPUPerMsg
			if opts.SwitchAgg {
				nd.CPUPerMsg = 50e-9
			}
		}
	}

	wm := make([]*protocol.WorkerMachine, N)
	for w := 0; w < N; w++ {
		wm[w] = protocol.NewWorkerMachine(cfg, w, 1)
	}
	am := make(map[int]*protocol.AggregatorMachine, len(aggIDs))
	for _, id := range aggIDs {
		am[id] = protocol.NewAggregatorMachine(cfg, id)
	}

	now := func() time.Duration { return time.Duration(n.Sim.Now() * nsPerSec) }

	// One emit buffer for the whole run: handlers run one machine call at
	// a time and route (consume) its emits before returning, so the buffer
	// is free again before the next event fires.
	eb := &protocol.EmitBuf{}

	// Pooled in-flight packet copies (see the file comment). Dropped
	// messages simply never return their shell — bounded garbage on lossy
	// runs, zero on reliable ones.
	var pktFree []*simPkt
	clone := func(src *wire.Packet) *simPkt {
		var sp *simPkt
		if k := len(pktFree); k > 0 {
			sp = pktFree[k-1]
			pktFree[k-1] = nil
			pktFree = pktFree[:k-1]
		} else {
			sp = &simPkt{}
		}
		nexts := sp.p.Nexts[:0]
		blocks := sp.p.Blocks[:0]
		data := sp.data[:0]
		sp.p = *src
		sp.p.Nexts = append(nexts, src.Nexts...)
		for _, b := range src.Blocks {
			start := len(data)
			data = append(data, b.Data...)
			blocks = append(blocks, wire.Block{Index: b.Index, Data: data[start:len(data):len(data)]})
		}
		sp.p.Blocks = blocks
		sp.data = data
		return sp
	}
	recycle := func(sp *simPkt) { pktFree = append(pktFree, sp) }

	route := func(src int, emits []protocol.Emit) {
		nd := n.Node(src)
		for i := range emits {
			nd.Send(emits[i].Dst, float64(emits[i].Size), clone(emits[i].Packet))
		}
	}

	done := 0
	finishedAt := 0.0
	workerDone := make([]bool, N)
	checkDone := func(w int) {
		if !workerDone[w] && wm[w].Done() {
			workerDone[w] = true
			done++
			if done == N {
				finishedAt = n.Sim.Now()
			}
		}
	}

	// Retransmission timers (unreliable mode): each worker machine
	// publishes its earliest deadline; we keep at most one useful pending
	// wakeup per worker. Spurious wakeups are harmless — HandleTimeout
	// re-checks every stream's deadline.
	armed := make([]float64, N) // earliest pending wakeup; 0 = none
	var arm func(w int)
	arm = func(w int) {
		d, ok := wm[w].NextTimeout()
		if !ok {
			return
		}
		t := float64(d) / nsPerSec
		if armed[w] != 0 && armed[w] >= n.Sim.Now() && armed[w] <= t {
			return // an earlier-or-equal wakeup is already pending
		}
		armed[w] = t
		n.Sim.At(t, func() {
			if armed[w] == t {
				armed[w] = 0
			}
			// This wakeup was armed for the machine-clock deadline d; the
			// float64 seconds<->Duration round trip can land the virtual
			// clock a nanosecond short of it, which would make the machine
			// judge the deadline not yet due and the driver re-arm at the
			// same frozen instant forever. Clamp the clock up to d.
			tm := now()
			if tm < d {
				tm = d
			}
			eb.Reset()
			if err := wm[w].HandleTimeout(tm, eb); err != nil {
				panic(fmt.Sprintf("simproto: worker %d: %v", w, err))
			}
			route(w, eb.Emits())
			arm(w)
		})
	}

	runAgg := func(nodeID int, p *wire.Packet) {
		m := am[nodeID]
		if m == nil {
			return // dead (failed-over) or not-yet-activated node: drop
		}
		eb.Reset()
		if err := m.HandlePacket(protocol.Msg{Dense: p}, eb); err != nil {
			panic(fmt.Sprintf("simproto: aggregator %d: %v", nodeID, err))
		}
		route(nodeID, eb.Emits())
	}

	for w := 0; w < N; w++ {
		w := w
		workers[w].Handler = func(m netsim.Message) {
			sp := m.Payload.(*simPkt)
			p := &sp.p
			if p.Type == wire.TypeData {
				runAgg(w, p) // colocated aggregator shard
				recycle(sp)
				return
			}
			eb.Reset()
			if err := wm[w].HandlePacket(p, now(), eb); err != nil {
				panic(fmt.Sprintf("simproto: worker %d: %v", w, err))
			}
			route(w, eb.Emits())
			recycle(sp)
			checkDone(w)
			arm(w)
		}
	}
	if !c.Colocated {
		for _, id := range aggIDs {
			id := id
			n.Node(id).Handler = func(m netsim.Message) {
				sp := m.Payload.(*simPkt)
				runAgg(id, &sp.p)
				recycle(sp)
			}
		}
	}

	// servedBy maps aggregator positions to the node currently serving
	// them; failover swaps the failed position to the standby.
	servedBy := append([]int(nil), aggIDs...)
	if opts.FailoverAt > 0 {
		if c.Colocated {
			panic("simproto: failover requires dedicated aggregator nodes")
		}
		if !opts.Lossy {
			panic("simproto: failover requires Lossy mode (reliable mode has no replay machinery)")
		}
		if opts.FailAggIndex < 0 || opts.FailAggIndex >= len(aggIDs) {
			panic(fmt.Sprintf("simproto: FailAggIndex %d out of range (%d aggregators)", opts.FailAggIndex, len(aggIDs)))
		}
		standby := opts.StandbyID
		if standby == 0 {
			standby = N + len(aggIDs)
		}
		nd := n.AddNode(standby, c.AggBW, c.AggBW)
		nd.CPUPerMsg = c.CPUPerMsg
		if opts.SwitchAgg {
			nd.CPUPerMsg = 50e-9
		}
		nd.Handler = func(m netsim.Message) {
			sp := m.Payload.(*simPkt)
			runAgg(standby, &sp.p)
			recycle(sp)
		}
		n.Sim.At(opts.FailoverAt, func() {
			// Kill: the dead node drops everything still in flight to it,
			// exactly like the live chaos harness cutting the process.
			dead := servedBy[opts.FailAggIndex]
			n.Node(dead).Handler = func(m netsim.Message) { recycle(m.Payload.(*simPkt)) }
			// Handoff: the standby machine restores the snapshot the live
			// driver would have streamed it (output-commit makes the live
			// standby at least this current; fast-forward covers the rest).
			sm := protocol.NewAggregatorMachine(cfg, standby)
			if err := sm.Restore(am[dead].Checkpoint()); err != nil {
				panic(fmt.Sprintf("simproto: failover restore: %v", err))
			}
			am[standby] = sm
			delete(am, dead)
			servedBy[opts.FailAggIndex] = standby
			// Rebind: every worker re-resolves AggregatorFor against the
			// new list and replays its unacknowledged rounds.
			for w := 0; w < N; w++ {
				eb.Reset()
				wm[w].Rebind(servedBy, now(), eb)
				route(w, eb.Emits())
				arm(w)
			}
		})
	}

	// Launch: staging copy plus bootstrap packets for every stream.
	copyFinished := 0.0
	for w := 0; w < N; w++ {
		workers[w].Copy(copyBytes, func() {
			if t := n.Sim.Now(); t > copyFinished {
				copyFinished = t
			}
		})
		eb.Reset()
		wm[w].Start(views[w], 0, eb)
		route(w, eb.Emits())
		checkDone(w)
		arm(w)
	}

	n.Sim.Run()
	if copyFinished > finishedAt {
		finishedAt = copyFinished
	}

	run := &OmniRun{Time: finishedAt, WorkerStats: make([]protocol.WorkerStats, N)}
	for w := 0; w < N; w++ {
		run.WorkerStats[w] = wm[w].Stats()
	}
	for _, id := range servedBy {
		run.AggStats = append(run.AggStats, am[id].Stats())
	}
	return run
}

// SimSwitchML models the SwitchML-style dense streaming aggregation
// (§6.1.1's SwitchML* server-based baseline): the same slot pipeline with
// zero-block elision disabled.
func SimSwitchML(c Cluster, tensorBytes float64, opts OmniOpts) float64 {
	opts.ForceDense = true
	blockBytes := 1024.0
	blocks := int(tensorBytes / blockBytes)
	if blocks < 1 {
		blocks = 1
	}
	spec := &BlockSpec{Blocks: blocks, BlockBytes: blockBytes,
		PerWorker: make([]*tensor.Bitmap, c.Workers)}
	for w := range spec.PerWorker {
		spec.PerWorker[w] = tensor.NewBitmap(blocks)
	}
	return SimOmniReduce(c, spec, opts)
}
