package simproto

import (
	"omnireduce/internal/netsim"
	"omnireduce/internal/tensor"
)

// OmniOpts parameterizes the simulated OmniReduce protocol.
type OmniOpts struct {
	FusionWidth int // blocks fused per packet (§3.2); default 8
	Streams     int // parallel slot streams (§3.1.1); default 8
	ForceDense  bool
	// Lossy enables the Algorithm 2 model: per-round acks from every
	// worker, retransmission timers, result replay.
	Lossy             bool
	RetransmitTimeout float64
	// SwitchAgg models the P4 switch aggregator of Fig 18: negligible
	// per-packet processing at the aggregator.
	SwitchAgg bool
	// NoCopy skips the staging-copy model regardless of cluster CopyBW.
	NoCopy bool
}

func (o OmniOpts) withDefaults() OmniOpts {
	if o.FusionWidth == 0 {
		o.FusionWidth = 8
	}
	if o.Streams == 0 {
		// The paper keeps 256 outstanding packets per worker (§5); with 8
		// fused blocks per packet, 32 streams give a comparable pipeline
		// depth.
		o.Streams = 32
	}
	if o.RetransmitTimeout == 0 {
		o.RetransmitTimeout = 1e-3
	}
	return o
}

// packetMeta is the per-packet metadata overhead in bytes: header plus one
// next-offset per fused column (§3.2).
func packetMeta(cols int) float64 { return 24 + 4*float64(cols) }

// omniRound is one precomputed aggregation round of one stream.
type omniRound struct {
	// blocksByWorker[w] = number of blocks worker w contributes.
	blocksByWorker []int
	contributors   int
	resultBlocks   int
}

// buildRounds derives the per-stream round schedule from the block
// occupancy, mirroring internal/core's column layout: stream s owns a
// contiguous shard, columns are block-index residues, rounds advance every
// column through the union non-zero sequence in lockstep.
func buildRounds(spec *BlockSpec, workers, streams, width int, dense bool) [][]omniRound {
	nb := spec.Blocks
	if streams > nb {
		streams = nb
	}
	if streams < 1 {
		streams = 1
	}
	union := tensor.NewBitmap(nb)
	if dense {
		for b := 0; b < nb; b++ {
			union.Set(b)
		}
	} else {
		for _, bm := range spec.PerWorker {
			union.Or(bm)
		}
	}
	owns := func(w, b int) bool {
		if dense {
			return true
		}
		return spec.PerWorker[w].Get(b)
	}

	all := make([][]omniRound, streams)
	for s := 0; s < streams; s++ {
		lo := s * nb / streams
		hi := (s + 1) * nb / streams
		cols := width
		if hi-lo < cols {
			cols = hi - lo
		}
		if cols == 0 {
			continue
		}
		// Per-column sequences of union non-zero blocks after the first.
		first := make([]int, cols)
		seqs := make([][]int, cols)
		for c := 0; c < cols; c++ {
			first[c] = -1
			for b := lo; b < hi; b++ {
				if b%cols != c {
					continue
				}
				if first[c] == -1 {
					first[c] = b
					continue
				}
				if union.Get(b) {
					seqs[c] = append(seqs[c], b)
				}
			}
		}
		// Round 0: bootstrap, every worker sends the first block of every
		// column unconditionally.
		rounds := []omniRound{{
			blocksByWorker: uniformContribution(workers, cols),
			contributors:   workers,
			resultBlocks:   cols,
		}}
		maxLen := 0
		for _, q := range seqs {
			if len(q) > maxLen {
				maxLen = len(q)
			}
		}
		for r := 0; r < maxLen; r++ {
			rd := omniRound{blocksByWorker: make([]int, workers)}
			for c := 0; c < cols; c++ {
				if r >= len(seqs[c]) {
					continue
				}
				b := seqs[c][r]
				rd.resultBlocks++
				for w := 0; w < workers; w++ {
					if owns(w, b) {
						rd.blocksByWorker[w]++
					}
				}
			}
			for _, k := range rd.blocksByWorker {
				if k > 0 {
					rd.contributors++
				}
			}
			if rd.resultBlocks > 0 {
				rounds = append(rounds, rd)
			}
		}
		all[s] = rounds
	}
	return all
}

func uniformContribution(workers, k int) []int {
	out := make([]int, workers)
	for w := range out {
		out[w] = k
	}
	return out
}

type omniMsg struct {
	stream int
	round  int
	worker int // -1 for results
	resend bool
}

// SimOmniReduce runs the block-aggregation protocol on the simulator and
// returns the completion time in seconds (when every worker has the final
// result and, if modeled, the staging copy has drained).
func SimOmniReduce(c Cluster, spec *BlockSpec, opts OmniOpts) float64 {
	opts = opts.withDefaults()
	n := netsim.NewNet(c.Latency, c.Loss, c.Seed)
	N := c.Workers

	workers := make([]*netsim.Node, N)
	for w := 0; w < N; w++ {
		workers[w] = n.AddNode(w, c.WorkerBW, c.WorkerBW)
		workers[w].CPUPerMsg = c.CPUPerMsg
		if !opts.NoCopy {
			workers[w].CopyBW = c.CopyBW
		}
	}
	M := c.Aggregators
	if M < 1 {
		M = 1
	}
	aggNode := func(s int) int {
		if c.Colocated {
			return s % N
		}
		return N + s%M
	}
	if !c.Colocated {
		for a := 0; a < M; a++ {
			nd := n.AddNode(N+a, c.AggBW, c.AggBW)
			nd.CPUPerMsg = c.CPUPerMsg
			if opts.SwitchAgg {
				nd.CPUPerMsg = 50e-9
			}
		}
	}

	rounds := buildRounds(spec, N, opts.Streams, opts.FusionWidth, opts.ForceDense)

	// Aggregator per-stream state.
	type aggState struct {
		round   int
		pending int
		seen    []bool
	}
	aggSt := make([]*aggState, len(rounds))
	// Worker per-stream state.
	type wState struct {
		resultRound int // last result round received
	}
	wSt := make([][]*wState, N)
	for w := range wSt {
		wSt[w] = make([]*wState, len(rounds))
		for s := range wSt[w] {
			wSt[w][s] = &wState{resultRound: -1}
		}
	}

	activeStreams := 0
	done := 0
	var finishedAt float64

	cols := func(s int) int {
		if len(rounds[s]) == 0 {
			return 0
		}
		return rounds[s][0].resultBlocks
	}

	workerPacketBytes := func(s, r, w int) float64 {
		return float64(rounds[s][r].blocksByWorker[w])*spec.BlockBytes + packetMeta(cols(s))
	}
	resultBytes := func(s, r int) float64 {
		return float64(rounds[s][r].resultBlocks)*spec.BlockBytes + packetMeta(cols(s))
	}

	var sendWorkerPacket func(w, s, r int)
	var handleAgg func(nodeID int, m netsim.Message)
	var handleWorker func(w int, m netsim.Message)

	// mustSend reports whether worker w transmits in round r of stream s:
	// contributors always; in lossy mode, everyone (acks).
	mustSend := func(s, r, w int) bool {
		return opts.Lossy || rounds[s][r].blocksByWorker[w] > 0
	}

	sendWorkerPacket = func(w, s, r int) {
		bytes := workerPacketBytes(s, r, w)
		if !mustSend(s, r, w) {
			return
		}
		if rounds[s][r].blocksByWorker[w] == 0 {
			bytes = packetMeta(cols(s)) // empty ack
		}
		workers[w].Send(aggNode(s), bytes, omniMsg{stream: s, round: r, worker: w})
		if opts.Lossy {
			// Retransmission timer: if the result for this round has not
			// arrived by the deadline, resend.
			var arm func()
			arm = func() {
				n.Sim.After(opts.RetransmitTimeout, func() {
					st := wSt[w][s]
					if st.resultRound >= r || done >= activeStreams*N {
						return
					}
					workers[w].Send(aggNode(s), bytes, omniMsg{stream: s, round: r, worker: w, resend: true})
					arm()
				})
			}
			arm()
		}
	}

	expected := func(s, r int) int {
		if opts.Lossy {
			return N
		}
		return rounds[s][r].contributors
	}

	multicastResult := func(s, r int) {
		nd := n.Node(aggNode(s))
		for w := 0; w < N; w++ {
			nd.Send(w, resultBytes(s, r), omniMsg{stream: s, round: r, worker: -1})
		}
	}

	handleAgg = func(nodeID int, m netsim.Message) {
		msg := m.Payload.(omniMsg)
		st := aggSt[msg.stream]
		switch {
		case msg.round < st.round:
			// Stale retransmission of a completed round: replay result.
			if opts.Lossy {
				n.Node(nodeID).Send(msg.worker, resultBytes(msg.stream, msg.round), omniMsg{stream: msg.stream, round: msg.round, worker: -1})
			}
		case msg.round == st.round:
			if st.seen[msg.worker] {
				return // duplicate within the round
			}
			st.seen[msg.worker] = true
			st.pending--
			if st.pending == 0 {
				multicastResult(msg.stream, st.round)
				st.round++
				if st.round < len(rounds[msg.stream]) {
					st.pending = expected(msg.stream, st.round)
					for i := range st.seen {
						st.seen[i] = false
					}
				}
			}
		default:
			// A future-round packet cannot arrive before the result that
			// clocks it was multicast; panic to catch model bugs.
			panic("simproto: packet for future round")
		}
	}

	handleWorker = func(w int, m netsim.Message) {
		msg := m.Payload.(omniMsg)
		st := wSt[w][msg.stream]
		if msg.worker != -1 || msg.round <= st.resultRound {
			return // duplicate result
		}
		if msg.round != st.resultRound+1 {
			// Results are per-sender ordered on a reliable fabric; with
			// loss the replay path keeps rounds consecutive.
			panic("simproto: result round gap")
		}
		st.resultRound = msg.round
		next := msg.round + 1
		if next < len(rounds[msg.stream]) {
			sendWorkerPacket(w, msg.stream, next)
		} else {
			done++
			if done == activeStreams*N {
				finishedAt = n.Sim.Now()
			}
		}
	}

	// Wire up handlers. Aggregator nodes may be worker nodes (colocated):
	// dispatch on the payload's worker field.
	for w := 0; w < N; w++ {
		w := w
		workers[w].Handler = func(m netsim.Message) {
			msg := m.Payload.(omniMsg)
			if msg.worker >= 0 {
				handleAgg(w, m) // colocated aggregator shard
			} else {
				handleWorker(w, m)
			}
		}
	}
	if !c.Colocated {
		for a := 0; a < M; a++ {
			id := N + a
			n.Node(id).Handler = func(m netsim.Message) { handleAgg(id, m) }
		}
	}

	// Launch: staging copy plus bootstrap packets for every stream.
	copyDone := 0
	copyFinished := 0.0
	for s := range rounds {
		if len(rounds[s]) == 0 {
			continue
		}
		activeStreams++
		aggSt[s] = &aggState{pending: expected(s, 0), seen: make([]bool, N)}
	}
	for w := 0; w < N; w++ {
		w := w
		workers[w].Copy(spec.TotalBytes(), func() {
			copyDone++
			if t := n.Sim.Now(); t > copyFinished {
				copyFinished = t
			}
		})
		for s := range rounds {
			if len(rounds[s]) == 0 {
				continue
			}
			sendWorkerPacket(w, s, 0)
		}
	}

	n.Sim.Run()
	if copyFinished > finishedAt {
		finishedAt = copyFinished
	}
	return finishedAt
}

// SimSwitchML models the SwitchML-style dense streaming aggregation
// (§6.1.1's SwitchML* server-based baseline): the same slot pipeline with
// zero-block elision disabled.
func SimSwitchML(c Cluster, tensorBytes float64, opts OmniOpts) float64 {
	opts.ForceDense = true
	blockBytes := 1024.0
	blocks := int(tensorBytes / blockBytes)
	if blocks < 1 {
		blocks = 1
	}
	spec := &BlockSpec{Blocks: blocks, BlockBytes: blockBytes,
		PerWorker: make([]*tensor.Bitmap, c.Workers)}
	for w := range spec.PerWorker {
		spec.PerWorker[w] = tensor.NewBitmap(blocks)
	}
	return SimOmniReduce(c, spec, opts)
}
