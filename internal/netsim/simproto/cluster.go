// Package simproto models every compared collective (ring, AGsparse,
// SparCML SSAR/DSAR, parameter server, SwitchML-style streaming, and
// OmniReduce in dedicated / colocated / switch modes) on the netsim
// discrete-event simulator, at 10 and 100 Gbps scale. These models
// regenerate the paper's evaluation figures; the real implementations in
// internal/core and internal/collective define the protocol semantics the
// models follow.
package simproto

import (
	"math/rand"

	"omnireduce/internal/netsim"
	"omnireduce/internal/sparsity"
	"omnireduce/internal/tensor"
)

// Cluster describes a simulated testbed (§6 "Testbeds").
type Cluster struct {
	Workers     int
	Aggregators int     // aggregator node count (dedicated mode)
	WorkerBW    float64 // bits/s, full duplex per NIC
	AggBW       float64
	Latency     float64 // one-way seconds
	Loss        float64 // message drop probability
	CPUPerMsg   float64 // per-message processing cost at every node
	CopyBW      float64 // worker staging-copy (PCIe) bandwidth; 0 = GDR
	Colocated   bool    // aggregator shards run on the worker nodes
	Seed        int64
}

// Testbed10G models the paper's 10 Gbps testbed: P100 workers without
// GDR (PCIe staging copy at ~100 Gbps), DPDK-style per-packet CPU cost.
func Testbed10G(workers, aggs int) Cluster {
	return Cluster{
		Workers: workers, Aggregators: aggs,
		WorkerBW: netsim.Gbps(10), AggBW: netsim.Gbps(10),
		Latency:   10e-6,
		CPUPerMsg: 1.5e-6,
		CopyBW:    netsim.Gbps(100),
	}
}

// Testbed100G models the 100 Gbps testbed with RDMA: the staging copy
// (~128 Gbps PCIe gen3) is close to line rate and becomes the bottleneck
// at high sparsity, exactly as §6.1.1 reports.
func Testbed100G(workers, aggs int) Cluster {
	return Cluster{
		Workers: workers, Aggregators: aggs,
		WorkerBW: netsim.Gbps(100), AggBW: netsim.Gbps(100),
		Latency:   5e-6,
		CPUPerMsg: 1.0e-6,
		CopyBW:    netsim.Gbps(128),
	}
}

// Testbed100GGDR is the 100 Gbps testbed with GPU-direct RDMA: no staging
// copy.
func Testbed100GGDR(workers, aggs int) Cluster {
	c := Testbed100G(workers, aggs)
	c.CopyBW = 0
	return c
}

// BlockSpec is the abstract multi-worker tensor: which blocks are non-zero
// at which workers, without materializing element data.
type BlockSpec struct {
	Blocks     int
	BlockBytes float64
	PerWorker  []*tensor.Bitmap
}

// TotalBytes is the dense tensor size.
func (s *BlockSpec) TotalBytes() float64 { return float64(s.Blocks) * s.BlockBytes }

// PerWorkerNonZeroBytes returns the average per-worker non-zero volume.
func (s *BlockSpec) PerWorkerNonZeroBytes() float64 {
	var total int
	for _, bm := range s.PerWorker {
		total += bm.Count()
	}
	return float64(total) / float64(len(s.PerWorker)) * s.BlockBytes
}

// UnionBytes returns the volume of blocks non-zero at >= 1 worker.
func (s *BlockSpec) UnionBytes() float64 {
	u := tensor.NewBitmap(s.Blocks)
	for _, bm := range s.PerWorker {
		u.Or(bm)
	}
	return float64(u.Count()) * s.BlockBytes
}

// UniformSpec draws per-worker block occupancy with the given block
// density and overlap mode, the microbenchmarks' "randomly generated
// tensors" (§6.1).
func UniformSpec(blocks, workers int, blockBytes, density float64, overlap sparsity.Overlap, rng *rand.Rand) *BlockSpec {
	spec := &BlockSpec{Blocks: blocks, BlockBytes: blockBytes, PerWorker: make([]*tensor.Bitmap, workers)}
	nz := int(density*float64(blocks) + 0.5)
	switch overlap {
	case sparsity.OverlapAll:
		shared := rng.Perm(blocks)[:nz]
		for w := range spec.PerWorker {
			bm := tensor.NewBitmap(blocks)
			for _, b := range shared {
				bm.Set(b)
			}
			spec.PerWorker[w] = bm
		}
	case sparsity.OverlapNone:
		perm := rng.Perm(blocks)
		idx := 0
		for w := range spec.PerWorker {
			bm := tensor.NewBitmap(blocks)
			for k := 0; k < nz && idx < len(perm); k++ {
				bm.Set(perm[idx])
				idx++
			}
			spec.PerWorker[w] = bm
		}
	default: // OverlapRandom
		for w := range spec.PerWorker {
			bm := tensor.NewBitmap(blocks)
			for _, b := range rng.Perm(blocks)[:nz] {
				bm.Set(b)
			}
			spec.PerWorker[w] = bm
		}
	}
	return spec
}

// ProfileSpec samples block occupancy following a DNN workload profile:
// per-worker block density from the profile's structural model at this
// block size, and inter-worker overlap from its Table 2 distribution. The
// profile's multi-gigabyte gradient is scaled down by `scale` to keep the
// simulation tractable; byte volumes reported by the simulation are then
// multiplied back by the caller (see ScaledIterTime).
func ProfileSpec(p *sparsity.Profile, workers, blockSizeElems, scale int, rng *rand.Rand) *BlockSpec {
	blockBytes := float64(blockSizeElems * 4)
	blocks := int(p.TotalBytes() / int64(scale) / int64(blockSizeElems*4))
	if blocks < 1 {
		blocks = 1
	}
	spec := &BlockSpec{Blocks: blocks, BlockBytes: blockBytes, PerWorker: make([]*tensor.Bitmap, workers)}
	for w := range spec.PerWorker {
		spec.PerWorker[w] = tensor.NewBitmap(blocks)
	}
	density := 1 - p.BlockSparsity(blockSizeElems)
	// Class weights over union blocks (f_k / k).
	var weights [8]float64
	var wSum, meanK float64
	for k := 1; k <= 8; k++ {
		weights[k-1] = p.OverlapVolumeFrac[k-1] / float64(k)
		wSum += weights[k-1]
	}
	if wSum == 0 {
		weights[7] = 1
		wSum = 1
	}
	for k := 1; k <= 8; k++ {
		meanK += float64(k) * weights[k-1] / wSum
	}
	union := int(density*float64(blocks)*float64(workers)/meanK + 0.5)
	if union > blocks {
		union = blocks
	}
	for _, b := range rng.Perm(blocks)[:union] {
		x := rng.Float64() * wSum
		k := 8
		for c := 1; c <= 8; c++ {
			x -= weights[c-1]
			if x <= 0 {
				k = c
				break
			}
		}
		if k > workers {
			k = workers
		}
		for _, w := range rng.Perm(workers)[:k] {
			spec.PerWorker[w].Set(b)
		}
	}
	return spec
}
