// Package netsim is a deterministic discrete-event network simulator used
// to regenerate the paper's evaluation figures at 10/100 Gbps scale in
// milliseconds of real time.
//
// The model is store-and-forward at message granularity: a message
// serializes on the sender's egress NIC (bytes*8/egress bandwidth), incurs
// the one-way latency α, queues FIFO on the receiver's ingress NIC
// (serializing at ingress bandwidth — this is what creates incast pressure
// on an aggregator), optionally queues on the receiver's CPU (a fixed
// per-message processing cost, standing in for DPDK packet handling), and
// is then delivered to the receiving node's handler. Virtual time is a
// float64 in seconds; all randomness (loss) is seeded.
//
// Nodes can also model a host staging copy (the GPU-to-host PCIe transfer
// of Appendix B, absent under GPU-direct RDMA) via the Copy method, which
// serializes on a per-node copy engine.
package netsim

import (
	"container/heap"
	"math/rand"
)

// Sim is the event loop. The zero value is ready to use.
type Sim struct {
	now    float64
	seq    int64
	events eventHeap
}

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Run processes events until none remain, returning the final time.
func (s *Sim) Run() float64 {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.t
		e.fn()
	}
	return s.now
}

// Message is a simulated network message.
type Message struct {
	From, To int
	Bytes    float64
	Payload  interface{}
}

// Node is a simulated host with full-duplex NIC and optional CPU and copy
// engines.
type Node struct {
	ID        int
	EgressBW  float64 // bits per second
	IngressBW float64
	CPUPerMsg float64 // seconds of processing per received message
	CopyBW    float64 // staging copy bandwidth (bytes/sec *8 -> use bits), 0 = instant
	Handler   func(m Message)

	net         *Net
	egressBusy  float64
	ingressBusy float64
	cpuBusy     float64
	copyBusy    float64

	// Traffic accounting.
	BytesSent, BytesRecvd float64
	MsgsSent, MsgsRecvd   int64
}

// Net is a collection of nodes with uniform one-way latency and an
// optional uniform loss rate. Beyond uniform loss, a Net can model the
// chaos-fabric failure patterns in virtual time: Gilbert–Elliott burst
// loss, per-message latency jitter, and one-way partitions.
type Net struct {
	Sim     *Sim
	Latency float64 // one-way seconds
	Loss    float64 // per-message drop probability
	rng     *rand.Rand
	nodes   map[int]*Node

	// Burst-loss (Gilbert–Elliott) parameters; active when pEnter > 0.
	// Each directed link carries its own good/bad channel state.
	gePEnter, gePExit     float64
	geDropGood, geDropBad float64
	geBad                 map[[2]int]bool

	// One-way partitions (blackholes); -1 matches any node.
	partitions map[[2]int]bool

	// Jitter is the maximum extra one-way latency, uniformly drawn per
	// message.
	jitter float64

	// Drop accounting.
	Dropped     int64 // uniform-loss drops
	BurstDrops  int64 // Gilbert–Elliott drops
	Partitioned int64 // partition blackholes
}

// NewNet creates a network on a fresh simulator.
func NewNet(latency, loss float64, seed int64) *Net {
	return &Net{
		Sim:        &Sim{},
		Latency:    latency,
		Loss:       loss,
		rng:        rand.New(rand.NewSource(seed)),
		nodes:      make(map[int]*Node),
		geBad:      make(map[[2]int]bool),
		partitions: make(map[[2]int]bool),
	}
}

// SetBurstLoss enables Gilbert–Elliott burst loss on every link: each
// message advances the link's two-state channel (good->bad with pEnter,
// bad->good with pExit) and is dropped with dropGood or dropBad according
// to the state, so losses cluster in runs as on real congested fabrics.
func (n *Net) SetBurstLoss(pEnter, pExit, dropGood, dropBad float64) {
	n.gePEnter, n.gePExit = pEnter, pExit
	n.geDropGood, n.geDropBad = dropGood, dropBad
}

// SetJitter adds a uniform [0, j) seconds to each message's one-way
// latency, perturbing arrival order without loss.
func (n *Net) SetJitter(j float64) { n.jitter = j }

// PartitionLink blackholes messages from `from` to `to` (one-way). Either
// side may be -1 to match every node; traffic in the reverse direction is
// unaffected.
func (n *Net) PartitionLink(from, to int) { n.partitions[[2]int{from, to}] = true }

// HealLink removes a partition installed by PartitionLink with the same
// arguments.
func (n *Net) HealLink(from, to int) { delete(n.partitions, [2]int{from, to}) }

func (n *Net) partitioned(from, to int) bool {
	if len(n.partitions) == 0 {
		return false
	}
	for _, k := range [...][2]int{{from, to}, {-1, to}, {from, -1}, {-1, -1}} {
		if n.partitions[k] {
			return true
		}
	}
	return false
}

// dropInFlight applies partition, burst, and uniform loss for one message
// on the directed link (from, to), in that order.
func (n *Net) dropInFlight(from, to int) bool {
	if n.partitioned(from, to) {
		n.Partitioned++
		return true
	}
	if n.gePEnter > 0 {
		k := [2]int{from, to}
		bad := n.geBad[k]
		if bad {
			if n.rng.Float64() < n.gePExit {
				bad = false
			}
		} else if n.rng.Float64() < n.gePEnter {
			bad = true
		}
		n.geBad[k] = bad
		p := n.geDropGood
		if bad {
			p = n.geDropBad
		}
		if p > 0 && n.rng.Float64() < p {
			n.BurstDrops++
			return true
		}
	}
	if n.Loss > 0 && n.rng.Float64() < n.Loss {
		n.Dropped++
		return true
	}
	return false
}

// oneWayLatency returns the base latency plus any jitter draw.
func (n *Net) oneWayLatency() float64 {
	if n.jitter > 0 {
		return n.Latency + n.rng.Float64()*n.jitter
	}
	return n.Latency
}

// AddNode registers a node with the given NIC bandwidths (bits/second).
func (n *Net) AddNode(id int, egressBW, ingressBW float64) *Node {
	nd := &Node{ID: id, EgressBW: egressBW, IngressBW: ingressBW, net: n}
	n.nodes[id] = nd
	return nd
}

// Node returns a registered node.
func (n *Net) Node(id int) *Node { return n.nodes[id] }

// Send models the full path of one message from nd to the destination.
func (nd *Node) Send(to int, bytes float64, payload interface{}) {
	sim := nd.net.Sim
	dst := nd.net.nodes[to]
	if dst == nil {
		panic("netsim: send to unknown node")
	}
	nd.BytesSent += bytes
	nd.MsgsSent++
	if to == nd.ID {
		// Loopback: colocated components on the same host bypass the NIC
		// (and cannot lose messages); only the CPU cost applies.
		m := Message{From: nd.ID, To: to, Bytes: bytes, Payload: payload}
		deliver := sim.Now()
		if nd.CPUPerMsg > 0 {
			if nd.cpuBusy > deliver {
				deliver = nd.cpuBusy
			}
			deliver += nd.CPUPerMsg
			nd.cpuBusy = deliver
		}
		nd.MsgsRecvd++
		sim.At(deliver, func() {
			if nd.Handler != nil {
				nd.Handler(m)
			}
		})
		return
	}
	// Egress serialization.
	start := sim.Now()
	if nd.egressBusy > start {
		start = nd.egressBusy
	}
	txEnd := start + bytes*8/nd.EgressBW
	nd.egressBusy = txEnd

	if nd.net.dropInFlight(nd.ID, to) {
		return // dropped in flight
	}
	// The first bit arrives latency after transmission starts; the
	// receiver cannot finish before the sender does (txEnd + latency).
	lat := nd.net.oneWayLatency()
	firstBit := start + lat
	minEnd := txEnd + lat
	m := Message{From: nd.ID, To: to, Bytes: bytes, Payload: payload}
	sim.At(firstBit, func() { dst.receive(m, minEnd) })
}

// receive models ingress contention: the receiving NIC is a FIFO server
// at IngressBW, but a single flow pays serialization only once — its
// receive cannot complete before minEnd (the sender-side completion), and
// completes later only if the ingress link is busy with other flows.
func (nd *Node) receive(m Message, minEnd float64) {
	sim := nd.net.Sim
	start := sim.Now()
	if nd.ingressBusy > start {
		start = nd.ingressBusy
	}
	rxEnd := start + m.Bytes*8/nd.IngressBW
	if rxEnd < minEnd {
		rxEnd = minEnd
	}
	nd.ingressBusy = rxEnd
	// CPU processing.
	deliver := rxEnd
	if nd.CPUPerMsg > 0 {
		if nd.cpuBusy > deliver {
			deliver = nd.cpuBusy
		}
		deliver += nd.CPUPerMsg
		nd.cpuBusy = deliver
	}
	nd.BytesRecvd += m.Bytes
	nd.MsgsRecvd++
	sim.At(deliver, func() {
		if nd.Handler != nil {
			nd.Handler(m)
		}
	})
}

// Copy models a host staging copy (e.g. GPU->host over PCIe) of the given
// bytes, invoking fn when it completes. With CopyBW == 0 the copy is
// instantaneous (the GDR case).
func (nd *Node) Copy(bytes float64, fn func()) {
	sim := nd.net.Sim
	if nd.CopyBW == 0 {
		sim.After(0, fn)
		return
	}
	start := sim.Now()
	if nd.copyBusy > start {
		start = nd.copyBusy
	}
	end := start + bytes*8/nd.CopyBW
	nd.copyBusy = end
	sim.At(end, fn)
}

// Gbps converts gigabits/second to the simulator's bits/second unit.
func Gbps(g float64) float64 { return g * 1e9 }
