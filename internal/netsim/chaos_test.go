package netsim

import "testing"

// Tests for the simulator's failure models: Gilbert–Elliott burst loss,
// one-way partitions, and latency jitter, mirroring the live chaos fabric
// in internal/transport but running in virtual time.

func chaosPair(latency float64, seed int64) (*Net, *Node, *Node, *int) {
	n := NewNet(latency, 0, seed)
	a := n.AddNode(0, Gbps(10), Gbps(10))
	b := n.AddNode(1, Gbps(10), Gbps(10))
	got := new(int)
	b.Handler = func(Message) { *got++ }
	a.Handler = func(Message) {}
	return n, a, b, got
}

func TestBurstLossClusters(t *testing.T) {
	n, a, _, got := chaosPair(1e-6, 42)
	n.SetBurstLoss(0.02, 0.25, 0, 0.95)
	const msgs = 20_000
	// Track drop runs by sending one message per event and reading the
	// counter delta.
	runs, cur := []int{}, 0
	for i := 0; i < msgs; i++ {
		before := n.BurstDrops
		a.Send(1, 100, nil)
		n.Sim.Run()
		if n.BurstDrops > before {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if *got == msgs {
		t.Fatal("burst loss dropped nothing")
	}
	rate := float64(n.BurstDrops) / msgs
	// Stationary bad-state probability 0.02/(0.02+0.25) ~ 0.074, times
	// DropBad 0.95 ~ 7% expected loss.
	if rate < 0.02 || rate > 0.2 {
		t.Fatalf("burst loss rate %v outside plausible band", rate)
	}
	var sum int
	for _, r := range runs {
		sum += r
	}
	if len(runs) == 0 || float64(sum)/float64(len(runs)) < 1.5 {
		t.Fatalf("losses did not cluster: %d runs, mean length %v",
			len(runs), float64(sum)/float64(len(runs)))
	}
}

func TestOneWayPartition(t *testing.T) {
	n, a, b, got := chaosPair(1e-6, 1)
	backGot := 0
	a.Handler = func(Message) { backGot++ }
	n.PartitionLink(0, 1)
	for i := 0; i < 10; i++ {
		a.Send(1, 100, nil)
		b.Send(0, 100, nil)
	}
	n.Sim.Run()
	if *got != 0 {
		t.Fatalf("partitioned direction delivered %d messages", *got)
	}
	if backGot != 10 {
		t.Fatalf("reverse direction lost messages: %d/10", backGot)
	}
	if n.Partitioned != 10 {
		t.Fatalf("Partitioned = %d", n.Partitioned)
	}
	n.HealLink(0, 1)
	a.Send(1, 100, nil)
	n.Sim.Run()
	if *got != 1 {
		t.Fatal("healed link did not deliver")
	}
}

func TestPartitionWildcard(t *testing.T) {
	n := NewNet(1e-6, 0, 1)
	agg := n.AddNode(2, Gbps(10), Gbps(10))
	aggGot := 0
	agg.Handler = func(Message) { aggGot++ }
	w0 := n.AddNode(0, Gbps(10), Gbps(10))
	w1 := n.AddNode(1, Gbps(10), Gbps(10))
	n.PartitionLink(-1, 2) // every node -> aggregator
	w0.Send(2, 100, nil)
	w1.Send(2, 100, nil)
	n.Sim.Run()
	if aggGot != 0 {
		t.Fatalf("wildcard partition delivered %d", aggGot)
	}
}

func TestJitterPerturbsArrival(t *testing.T) {
	n, a, _, got := chaosPair(1e-3, 7)
	n.SetJitter(5e-3)
	var arrivals []float64
	nodeB := n.Node(1)
	nodeB.Handler = func(Message) { arrivals = append(arrivals, n.Sim.Now()) }
	for i := 0; i < 50; i++ {
		a.Send(1, 10, nil)
	}
	n.Sim.Run()
	_ = got
	if len(arrivals) != 50 {
		t.Fatalf("jitter lost messages: %d/50", len(arrivals))
	}
	// With 5ms jitter over 1ms base latency the spread must exceed the
	// serialization spacing of back-to-back tiny messages.
	min, max := arrivals[0], arrivals[0]
	for _, v := range arrivals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 1e-3 {
		t.Fatalf("arrival spread %v too small for 5ms jitter", max-min)
	}
}

func TestUniformLossStillCounts(t *testing.T) {
	n, a, _, got := chaosPair(1e-6, 11)
	n.Loss = 0.5
	for i := 0; i < 1_000; i++ {
		a.Send(1, 100, nil)
	}
	n.Sim.Run()
	if n.Dropped == 0 || *got == 0 {
		t.Fatalf("dropped %d delivered %d", n.Dropped, *got)
	}
	if int(n.Dropped)+*got != 1_000 {
		t.Fatalf("accounting mismatch: %d + %d != 1000", n.Dropped, *got)
	}
}
