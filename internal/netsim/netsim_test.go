package netsim

import (
	"math"
	"testing"
)

func TestSimOrdering(t *testing.T) {
	s := &Sim{}
	var order []int
	s.At(2, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(1, func() { order = append(order, 11) }) // same time: FIFO by seq
	end := s.Run()
	if end != 2 {
		t.Fatalf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 11 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestSimAfterAndNestedEvents(t *testing.T) {
	s := &Sim{}
	var times []float64
	s.At(1, func() {
		times = append(times, s.Now())
		s.After(0.5, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 1.5 {
		t.Fatalf("times = %v", times)
	}
}

func TestSimPastClamped(t *testing.T) {
	s := &Sim{}
	s.At(5, func() {
		s.At(1, func() {
			if s.Now() != 5 {
				t.Errorf("past event ran at %v", s.Now())
			}
		})
	})
	s.Run()
}

func TestSendSerializationAndLatency(t *testing.T) {
	// 1 MB at 8 Mbps = 1 second serialization + 0.1 latency (transmission
	// and reception overlap: a single flow pays serialization once).
	n := NewNet(0.1, 0, 1)
	a := n.AddNode(0, 8e6, 8e6)
	b := n.AddNode(1, 8e6, 8e6)
	var deliveredAt float64
	b.Handler = func(m Message) { deliveredAt = n.Sim.Now() }
	a.Send(1, 1e6, nil)
	n.Sim.Run()
	if math.Abs(deliveredAt-1.1) > 1e-9 {
		t.Fatalf("delivered at %v, want 1.1", deliveredAt)
	}
	if a.BytesSent != 1e6 || b.BytesRecvd != 1e6 || b.MsgsRecvd != 1 {
		t.Fatal("accounting wrong")
	}
}

func TestEgressQueueing(t *testing.T) {
	// Two back-to-back messages serialize on the sender's egress link.
	n := NewNet(0, 0, 1)
	a := n.AddNode(0, 8e6, 8e6)
	b := n.AddNode(1, 8e6, Gbps(100)) // fast ingress isolates egress effect
	var times []float64
	b.Handler = func(m Message) { times = append(times, n.Sim.Now()) }
	a.Send(1, 1e6, nil)
	a.Send(1, 1e6, nil)
	n.Sim.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if math.Abs(times[0]-1.0008) > 1e-3 || math.Abs(times[1]-2.0016) > 1e-2 {
		t.Fatalf("times = %v", times)
	}
}

func TestIngressIncast(t *testing.T) {
	// Two senders to one receiver: ingress serializes, so the second
	// message lands ~1s after the first despite parallel sends.
	n := NewNet(0, 0, 1)
	s1 := n.AddNode(0, 8e6, 8e6)
	s2 := n.AddNode(1, 8e6, 8e6)
	r := n.AddNode(2, 8e6, 8e6)
	var times []float64
	r.Handler = func(m Message) { times = append(times, n.Sim.Now()) }
	s1.Send(2, 1e6, nil)
	s2.Send(2, 1e6, nil)
	n.Sim.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if math.Abs(times[1]-times[0]-1.0) > 1e-6 {
		t.Fatalf("incast spacing = %v", times[1]-times[0])
	}
}

func TestCPUPerMessage(t *testing.T) {
	n := NewNet(0, 0, 1)
	a := n.AddNode(0, Gbps(10), Gbps(10))
	b := n.AddNode(1, Gbps(10), Gbps(10))
	b.CPUPerMsg = 0.01
	var times []float64
	b.Handler = func(m Message) { times = append(times, n.Sim.Now()) }
	for i := 0; i < 3; i++ {
		a.Send(1, 100, nil)
	}
	n.Sim.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d", len(times))
	}
	// CPU serializes at 10ms per message.
	if d := times[2] - times[0]; math.Abs(d-0.02) > 1e-3 {
		t.Fatalf("cpu spacing = %v", d)
	}
}

func TestLossDeterministic(t *testing.T) {
	run := func() int64 {
		n := NewNet(0, 0.5, 42)
		a := n.AddNode(0, Gbps(1), Gbps(1))
		b := n.AddNode(1, Gbps(1), Gbps(1))
		b.Handler = func(m Message) {}
		for i := 0; i < 1000; i++ {
			a.Send(1, 100, nil)
		}
		n.Sim.Run()
		return b.MsgsRecvd
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Fatalf("non-deterministic loss: %d vs %d", r1, r2)
	}
	if r1 < 400 || r1 > 600 {
		t.Fatalf("received %d of 1000 at 50%% loss", r1)
	}
}

func TestCopyEngine(t *testing.T) {
	n := NewNet(0, 0, 1)
	a := n.AddNode(0, Gbps(10), Gbps(10))
	a.CopyBW = 8e6 // 1 MB/s in bytes terms
	var doneAt []float64
	a.Copy(1e6, func() { doneAt = append(doneAt, n.Sim.Now()) })
	a.Copy(1e6, func() { doneAt = append(doneAt, n.Sim.Now()) })
	n.Sim.Run()
	if len(doneAt) != 2 || math.Abs(doneAt[0]-1) > 1e-9 || math.Abs(doneAt[1]-2) > 1e-9 {
		t.Fatalf("copy times = %v", doneAt)
	}
	// Instant copy when CopyBW == 0.
	b := n.AddNode(1, Gbps(10), Gbps(10))
	fired := false
	b.Copy(1e9, func() { fired = true })
	n.Sim.Run()
	if !fired {
		t.Fatal("instant copy did not fire")
	}
}

func TestGbps(t *testing.T) {
	if Gbps(10) != 1e10 {
		t.Fatal("Gbps wrong")
	}
}
