package exp

import "testing"

func TestAblationStreams(t *testing.T) {
	tb := AblationStreams(fastOpts())
	if tb.Rows() != 8 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// More streams must help (or at least not hurt) until saturation:
	// 32 streams beats 1 stream clearly.
	one := cell(t, tb, 0, 1)
	many := cell(t, tb, 5, 1)
	if many >= one {
		t.Errorf("32 streams (%v ms) should beat 1 stream (%v ms)", many, one)
	}
	// Past saturation the curve flattens: 128 vs 64 within 25%.
	s64, s128 := cell(t, tb, 6, 1), cell(t, tb, 7, 1)
	if d := s128/s64 - 1; d > 0.25 || d < -0.25 {
		t.Errorf("streams curve not saturating: 64->%v, 128->%v", s64, s128)
	}
}

func TestAblationFusionWidth(t *testing.T) {
	tb := AblationFusionWidth(fastOpts())
	if tb.Rows() != 6 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// Dense data: width 8 should beat width 1 (metadata/CPU amortized).
	w1 := cell(t, tb, 0, 1)
	w8 := cell(t, tb, 3, 1)
	if w8 >= w1 {
		t.Errorf("width 8 (%v) should beat width 1 (%v) on dense data", w8, w1)
	}
}

func TestAblationAggregators(t *testing.T) {
	tb := AblationAggregators(fastOpts())
	// Dense data: 8 shards much faster than 1 (aggregator NIC bottleneck).
	one := cell(t, tb, 0, 1)
	eight := cell(t, tb, 3, 1)
	if eight >= one/2 {
		t.Errorf("8 shards (%v) should be far faster than 1 (%v) on dense data", eight, one)
	}
}

func TestAblationColocation(t *testing.T) {
	tb := AblationColocation(fastOpts())
	// Dense: colocated ~2x dedicated. High sparsity: near parity (§6.1).
	d0, c0 := cell(t, tb, 0, 1), cell(t, tb, 0, 2)
	if c0 < d0*1.5 {
		t.Errorf("dense colocated %v should be ~2x dedicated %v", c0, d0)
	}
	dHi, cHi := cell(t, tb, 4, 1), cell(t, tb, 4, 2)
	if cHi > dHi*1.6 {
		t.Errorf("sparse colocated %v should approach dedicated %v", cHi, dHi)
	}
}

func TestLiveComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := LiveComparison(Options{Seed: 1})
	if tb.Rows() != 4 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// Blocks sent must not grow with sparsity (at 90% element sparsity
	// every 256-block is still non-zero, so equality is expected there),
	// and must clearly shrink by 99.9%.
	prev := cell(t, tb, 0, 4)
	for r := 1; r < 4; r++ {
		b := cell(t, tb, r, 4)
		if b > prev {
			t.Errorf("row %d: blocks %v grew from %v", r, b, prev)
		}
		prev = b
	}
	if dense, sparse := cell(t, tb, 0, 4), cell(t, tb, 3, 4); sparse > dense/2 {
		t.Errorf("99.9%% sparsity blocks %v not far below dense %v", sparse, dense)
	}
	// At 99.9% sparsity the live OmniReduce beats live ring.
	if omni, ring := cell(t, tb, 3, 1), cell(t, tb, 3, 2); omni >= ring {
		t.Errorf("live omni %v not faster than ring %v at 99.9%%", omni, ring)
	}
}
