package exp

import (
	"strconv"
	"strings"
	"testing"
)

// fast options keep the experiment suite quick under go test.
func fastOpts() Options { return Options{Scale: 64, Seed: 1} }

// parse reads a table cell back as a float.
func cell(t *testing.T, tb interface{ String() string }, row, col int) float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// lines[0] = title, [1] = header, [2] = separator, data from [3].
	fields := strings.Fields(lines[3+row])
	v, err := strconv.ParseFloat(fields[col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, fields[col], err)
	}
	return v
}

func TestFig4Shape(t *testing.T) {
	tb := Fig4(fastOpts())
	if tb.Rows() != 9 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// For every fabric/worker row: O,99% must beat NCCL, and O,0% must be
	// slower than O,99%.
	for r := 0; r < 9; r++ {
		nccl := cell(t, tb, r, 2)
		o0 := cell(t, tb, r, 3)
		o99 := cell(t, tb, r, 6)
		if o99 >= nccl {
			t.Errorf("row %d: O,99%%=%v not faster than NCCL=%v", r, o99, nccl)
		}
		if o99 >= o0 {
			t.Errorf("row %d: sparsity did not help (%v vs %v)", r, o99, o0)
		}
	}
	// 8-worker DPDK row: the paper reports ~6.3x at 99%; require > 3x.
	if su := cell(t, tb, 2, 2) / cell(t, tb, 2, 6); su < 3 {
		t.Errorf("10G 8-worker speedup at 99%% = %v, want > 3", su)
	}
}

func TestFig5Shape(t *testing.T) {
	tb := Fig5(fastOpts())
	if tb.Rows() != 9 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// At 99% sparsity (last row) GDR OmniReduce beats NCCL-RDMA by > 2x.
	last := tb.Rows() - 1
	gdr := cell(t, tb, last, 1)
	nccl := cell(t, tb, last, 4)
	if nccl/gdr < 2 {
		t.Errorf("GDR speedup at 99%% = %v", nccl/gdr)
	}
	// RDMA (copy-bound) is slower than GDR at 99% sparsity (§6.1.1).
	rdma := cell(t, tb, last, 3)
	if rdma < gdr {
		t.Errorf("RDMA %v should not beat GDR %v at high sparsity", rdma, gdr)
	}
}

func TestFig6Shape(t *testing.T) {
	tb := Fig6(fastOpts())
	// Paper: OmniReduce achieves at least 1.5x at any sparsity and up to
	// ~6.3x (DPDK); SparCML beneficial only above ~90%; AGsparse ~98%.
	for r := 0; r < tb.Rows(); r++ {
		sp := cell(t, tb, r, 0)
		omniDPDK := cell(t, tb, r, 3)
		if omniDPDK < 1.2 {
			t.Errorf("s=%v%%: Omni-DPDK speedup %v < 1.2", sp, omniDPDK)
		}
		ssar := cell(t, tb, r, 4)
		if sp < 60 && ssar > 1 {
			t.Errorf("s=%v%%: SSAR speedup %v should be < 1 at low sparsity", sp, ssar)
		}
		ag := cell(t, tb, r, 6)
		if sp < 90 && ag > 1 {
			t.Errorf("s=%v%%: AGsparse speedup %v should be < 1", sp, ag)
		}
	}
	// Crossover: SSAR beneficial at 99%.
	if ssar99 := cell(t, tb, tb.Rows()-1, 4); ssar99 < 1 {
		t.Errorf("SSAR at 99%% = %v, want > 1", ssar99)
	}
}

func TestFig7Shape(t *testing.T) {
	tb := Fig7(fastOpts())
	if tb.Rows() != 12 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// Dense rows: omni speedup grows with workers (rows 0..2 are s=0%).
	if !(cell(t, tb, 2, 2) > cell(t, tb, 0, 2)) {
		t.Errorf("omni dense speedup should grow with workers: %v vs %v",
			cell(t, tb, 2, 2), cell(t, tb, 0, 2))
	}
	// AGsparse scales poorly: speedup decreases with workers at s=96%.
	if !(cell(t, tb, 11, 6) < cell(t, tb, 9, 6)) {
		t.Errorf("AGsparse speedup should shrink with workers: %v vs %v",
			cell(t, tb, 11, 6), cell(t, tb, 9, 6))
	}
}

func TestFig8Shape(t *testing.T) {
	tb := Fig8(fastOpts())
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// OmniReduce (last row) has zero conversion cost and the lowest total.
	omniTotal := cell(t, tb, 4, 4)
	for r := 0; r < 4; r++ {
		if total := cell(t, tb, r, 4); total <= omniTotal {
			t.Errorf("row %d total %v <= omni %v", r, total, omniTotal)
		}
	}
	// AGsparse pays dense->sparse conversion.
	if cell(t, tb, 2, 1) <= 0 {
		t.Error("AGsparse conversion cost missing")
	}
}

func TestFig13Shape(t *testing.T) {
	tb := Fig13(fastOpts())
	// Omni must win at 99% sparsity and never lose catastrophically.
	last := tb.Rows() - 1
	if nccl, omni := cell(t, tb, last, 1), cell(t, tb, last, 2); omni >= nccl {
		t.Errorf("multi-GPU omni %v should beat NCCL %v at 99%%", omni, nccl)
	}
}

func TestFig15Shape(t *testing.T) {
	tb := Fig15(fastOpts())
	// Without Block Fusion, small blocks are much slower at low sparsity:
	// row bs=32, s=0% -> NBF much worse than BF.
	bf, nbf := cell(t, tb, 0, 2), cell(t, tb, 0, 3)
	if nbf < bf {
		t.Errorf("NBF %v should not beat BF %v at bs=32 dense", nbf, bf)
	}
}

func TestFig17Shape(t *testing.T) {
	tb := Fig17(fastOpts())
	// At s=90%, 8 workers (row 5): all-overlap < none-overlap.
	for r := 0; r < tb.Rows(); r++ {
		sp := cell(t, tb, r, 0)
		workers := cell(t, tb, r, 1)
		if sp == 90 && workers == 8 {
			if all, none := cell(t, tb, r, 4), cell(t, tb, r, 3); all >= none {
				t.Errorf("all-overlap %v should beat none %v", all, none)
			}
		}
	}
}

func TestFig18Shape(t *testing.T) {
	tb := Fig18(fastOpts())
	// The P4 aggregator with bs=256 tracks or beats the server aggregator.
	for r := 0; r < tb.Rows(); r++ {
		p4 := cell(t, tb, r, 2)
		srv := cell(t, tb, r, 3)
		if p4 < srv*0.8 {
			t.Errorf("row %d: P4(256) %v much worse than server %v", r, p4, srv)
		}
	}
}

func TestFig21Shape(t *testing.T) {
	tb := Fig21(fastOpts())
	if tb.Rows() != 3 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// At 1% loss, NCCL-TCP's slowdown is far larger than OmniReduce's.
	last := tb.Rows() - 1
	omni := cell(t, tb, last, 1)
	tcp := cell(t, tb, last, 5)
	if tcp < omni*5 {
		t.Errorf("TCP slowdown %v should dwarf omni's %v at 1%% loss", tcp, omni)
	}
}

func TestPerfModelTable(t *testing.T) {
	tb := PerfModelTable()
	if tb.Rows() != 16 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// N=8, D=0.01: SU vs ring = 175.
	if got := cell(t, tb, 11, 2); got != 175 {
		t.Errorf("SU = %v, want 175", got)
	}
}

func TestFig1Shape(t *testing.T) {
	tb := Fig1(fastOpts())
	if tb.Rows() != 6 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// Scaling factors decrease with workers for network-bound models
	// (row 0 = DeepLight).
	if !(cell(t, tb, 0, 1) > cell(t, tb, 0, 3)) {
		t.Errorf("DeepLight sf should fall with workers: %v vs %v",
			cell(t, tb, 0, 1), cell(t, tb, 0, 3))
	}
	// ResNet152 stays near 1 (row 5).
	if sf := cell(t, tb, 5, 3); sf < 0.8 {
		t.Errorf("ResNet152 sf@8 = %v, want ~0.95", sf)
	}
}

func TestFig9MatchesPaperShape(t *testing.T) {
	tb := Fig9(fastOpts())
	for r := 0; r < tb.Rows(); r++ {
		nccl := cell(t, tb, r, 1)
		omni := cell(t, tb, r, 2)
		paperNccl := cell(t, tb, r, 3)
		if omni < nccl {
			t.Errorf("row %d: omni sf %v below nccl sf %v", r, omni, nccl)
		}
		// NCCL sf reproduces the paper by calibration (within 15%).
		if d := nccl/paperNccl - 1; d > 0.15 || d < -0.15 {
			t.Errorf("row %d: NCCL sf %v vs paper %v", r, nccl, paperNccl)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tb := Fig10(fastOpts())
	if tb.Rows() != 12 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// 10G DeepLight (row 0): omni speedup must be large (paper: 8.2).
	if su := cell(t, tb, 0, 2); su < 3 {
		t.Errorf("DeepLight 10G speedup %v, want > 3", su)
	}
	// ResNet152 at 10G (row 5): ~1.
	if su := cell(t, tb, 5, 2); su < 0.9 || su > 1.5 {
		t.Errorf("ResNet152 10G speedup %v, want ~1", su)
	}
	// No workload slows down.
	for r := 0; r < tb.Rows(); r++ {
		if su := cell(t, tb, r, 2); su < 0.9 {
			t.Errorf("row %d: omni speedup %v < 0.9", r, su)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	tb := Fig14(fastOpts())
	if su := cell(t, tb, 0, 1); su < 1.3 {
		t.Errorf("DeepLight multi-GPU speedup %v, want > 1.3", su)
	}
	for r := 0; r < tb.Rows(); r++ {
		if su := cell(t, tb, r, 1); su < 0.9 {
			t.Errorf("row %d speedup %v < 0.9", r, su)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tb := Table1(fastOpts())
	if tb.Rows() != 6 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestTable2TracksPaperDistribution(t *testing.T) {
	tb := Table2(fastOpts())
	if tb.Rows() != 8 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// DeepLight "None" row ~59.5%, "All" row ~13.6% (paper Table 2).
	if got := cell(t, tb, 0, 1); got < 48 || got > 72 {
		t.Errorf("DeepLight none-overlap = %v%%, want ~59.5", got)
	}
	if got := cell(t, tb, 7, 1); got < 7 || got > 22 {
		t.Errorf("DeepLight all-overlap = %v%%, want ~13.6", got)
	}
}

func TestFig16Shape(t *testing.T) {
	tb := Fig16(fastOpts())
	if tb.Rows() != 36 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// DeepLight keeps high block sparsity at bs=256 (row 4), VGG19
	// collapses (rows 24..29; bs=256 is row 28).
	if got := cell(t, tb, 4, 2); got < 90 {
		t.Errorf("DeepLight block sparsity at 256 = %v%%", got)
	}
	if got := cell(t, tb, 28, 2); got > 10 {
		t.Errorf("VGG19 block sparsity at 256 = %v%%", got)
	}
}

func TestFig11Converges(t *testing.T) {
	tb := Fig11(fastOpts())
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	baseAcc := cell(t, tb, 0, 1)
	for r := 1; r < 5; r++ {
		acc := cell(t, tb, r, 1)
		if acc < baseAcc-12 {
			t.Errorf("row %d accuracy %v%% dropped too far from %v%%", r, acc, baseAcc)
		}
		if su := cell(t, tb, r, 2); su <= cell(t, tb, 0, 2) {
			t.Errorf("row %d: compression speedup %v not above uncompressed %v", r, su, cell(t, tb, 0, 2))
		}
	}
}

func TestFig12LossesDecrease(t *testing.T) {
	tb := Fig12(fastOpts())
	if tb.Rows() < 5 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	last := tb.Rows() - 1
	for col := 1; col <= 4; col++ {
		first := cell(t, tb, 0, col)
		final := cell(t, tb, last, col)
		if final >= first {
			t.Errorf("col %d: loss %v -> %v did not decrease", col, first, final)
		}
	}
}

func TestFig20BitmapCost(t *testing.T) {
	tb := Fig20(Options{Scale: 64, Seed: 2})
	if tb.Rows() != 9 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// All measured costs are positive and finite.
	for r := 0; r < tb.Rows(); r++ {
		if v := cell(t, tb, r, 1); v <= 0 {
			t.Errorf("row %d bitmap cost %v", r, v)
		}
	}
}
