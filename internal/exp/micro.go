// Package exp contains one runner per table and figure of the paper's
// evaluation (§6). Each runner regenerates the corresponding rows/series
// as a metrics.Table; the cmd/omnibench and cmd/trainsim binaries and the
// top-level benchmarks are thin wrappers over these functions.
//
// Simulated experiments use the virtual-time models in
// internal/netsim/simproto with traffic scaled down by Scale (bandwidth
// terms are preserved exactly; see Cluster.Scaled). Real-code experiments
// (Fig 20's bitmap cost, Table 2's overlap synthesis, Figs 11/12's
// training) run the actual implementation.
package exp

import (
	"math"
	"math/rand"

	"omnireduce/internal/metrics"
	"omnireduce/internal/netsim"
	"omnireduce/internal/netsim/simproto"
	"omnireduce/internal/perfmodel"
	"omnireduce/internal/sparsity"
)

// Options tunes experiment fidelity.
type Options struct {
	// Scale divides simulated traffic volume (default 16). Larger is
	// faster and slightly less faithful on latency terms.
	Scale int
	// Seed drives all synthetic data.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 16
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// The microbenchmarks' 100 MB tensor (§6.1).
const microTensorBytes = 100e6

// microBlockBytes is the paper's default 256-float32 block.
const microBlockBytes = 1024

// spec builds a scaled uniform block spec for the microbenchmarks, which
// generate sparsity at block granularity.
func microSpec(o Options, workers int, sparsity1 float64, ov sparsity.Overlap, rng *rand.Rand) *simproto.BlockSpec {
	blocks := int(microTensorBytes / float64(o.Scale) / microBlockBytes)
	return simproto.UniformSpec(blocks, workers, microBlockBytes, 1-sparsity1, ov, rng)
}

func scaledBytes(o Options) float64 { return microTensorBytes / float64(o.Scale) }

// Fabric presets (per-message CPU distinguishes the data paths).
func dpdk10G(o Options, workers int) simproto.Cluster {
	c := simproto.Testbed10G(workers, 8)
	c.Seed = o.Seed
	return c.Scaled(o.Scale)
}

func rdma100G(o Options, workers int) simproto.Cluster {
	c := simproto.Testbed100G(workers, 8)
	c.Seed = o.Seed
	return c.Scaled(o.Scale)
}

func gdr100G(o Options, workers int) simproto.Cluster {
	c := simproto.Testbed100GGDR(workers, 8)
	c.Seed = o.Seed
	return c.Scaled(o.Scale)
}

// nccl models the dense ring baseline on the matching fabric.
func ncclTime(c simproto.Cluster, bytes float64) float64 {
	return simproto.SimRingAllReduce(c, bytes)
}

// Fig4 regenerates Figure 4: AllReduce completion time on 100 MB tensors
// for 2/4/8 workers under DPDK (10 Gbps), RDMA and GDR (100 Gbps), for
// NCCL and OmniReduce at 0/60/90/99% sparsity, plus the line-rate optimal
// ring time.
func Fig4(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 4: AllReduce time on 100MB tensors (ms)",
		"fabric", "workers", "NCCL", "O,0%", "O,60%", "O,90%", "O,99%", "ring@line-rate")
	rng := rand.New(rand.NewSource(o.Seed))
	type fabric struct {
		name string
		mk   func(Options, int) simproto.Cluster
		bw   float64
	}
	fabrics := []fabric{
		{"DPDK-10G", dpdk10G, netsim.Gbps(10)},
		{"RDMA-100G", rdma100G, netsim.Gbps(100)},
		{"GDR-100G", gdr100G, netsim.Gbps(100)},
	}
	for _, f := range fabrics {
		for _, n := range []int{2, 4, 8} {
			c := f.mk(o, n)
			row := []interface{}{f.name, n, ncclTime(c, scaledBytes(o)) * 1e3}
			for _, s := range []float64{0, 0.60, 0.90, 0.99} {
				spec := microSpec(o, n, s, sparsity.OverlapRandom, rng)
				row = append(row, simproto.SimOmniReduce(c, spec, simproto.OmniOpts{})*1e3)
			}
			lineRate := 2 * float64(n-1) / float64(n) * microTensorBytes * 8 / f.bw
			row = append(row, lineRate*1e3)
			t.AddRow(row...)
		}
	}
	return t
}

// Fig5 regenerates Figure 5: OmniReduce vs dense AllReduce methods at
// 100 Gbps with 8 workers across sparsity levels.
func Fig5(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 5: vs dense methods at 100Gbps, 8 workers (ms)",
		"sparsity%", "Omni-GDR", "Omni-GDR(Co)", "Omni-RDMA", "NCCL-RDMA", "NCCL-TCP", "BytePS", "SwitchML*")
	rng := rand.New(rand.NewSource(o.Seed))
	const n = 8
	gdr := gdr100G(o, n)
	gdrCo := gdr
	gdrCo.Colocated = true
	rdma := rdma100G(o, n)
	tcp := rdma
	tcp.WorkerBW *= 0.6 // TCP efficiency at 100G without kernel bypass
	tcp.AggBW *= 0.6
	for _, s := range []float64{0, 0.20, 0.60, 0.80, 0.90, 0.92, 0.96, 0.98, 0.99} {
		spec := microSpec(o, n, s, sparsity.OverlapRandom, rng)
		sb := scaledBytes(o)
		t.AddRow(s*100,
			simproto.SimOmniReduce(gdr, spec, simproto.OmniOpts{})*1e3,
			simproto.SimOmniReduce(gdrCo, spec, simproto.OmniOpts{})*1e3,
			simproto.SimOmniReduce(rdma, spec, simproto.OmniOpts{})*1e3,
			ncclTime(rdma, sb)*1e3,
			ncclTime(tcp, sb)*1e3,
			simproto.SimParameterServer(rdma, sb, 1, 1, 8)*1e3, // BytePS: dense sharded PS
			simproto.SimSwitchML(rdma, sb, simproto.OmniOpts{})*1e3,
		)
	}
	return t
}

// Fig6 regenerates Figure 6: speedup over dense NCCL at 10 Gbps with 8
// workers for OmniReduce and the sparse AllReduce baselines.
func Fig6(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 6: speedup vs NCCL at 10Gbps, 8 workers",
		"sparsity%", "Omni-RDMA", "Omni-RDMA(Co)", "Omni-DPDK", "SSAR", "DSAR", "AGsparse-NCCL", "AGsparse-Gloo", "Parallax")
	rng := rand.New(rand.NewSource(o.Seed))
	const n = 8
	c := dpdk10G(o, n)
	rdma := c
	rdma.CPUPerMsg = c.CPUPerMsg / 3 // RDMA's lighter per-message cost
	rdmaCo := rdma
	rdmaCo.Colocated = true
	gloo := c
	gloo.WorkerBW *= 0.85
	base := ncclTime(c, scaledBytes(o))
	for _, s := range []float64{0, 0.20, 0.60, 0.80, 0.90, 0.92, 0.96, 0.98, 0.99} {
		d := 1 - s
		du := 1 - math.Pow(s, float64(n)) // i.i.d. block union density
		spec := microSpec(o, n, s, sparsity.OverlapRandom, rng)
		sb := scaledBytes(o)
		t.AddRow(s*100,
			base/simproto.SimOmniReduce(rdma, spec, simproto.OmniOpts{}),
			base/simproto.SimOmniReduce(rdmaCo, spec, simproto.OmniOpts{}),
			base/simproto.SimOmniReduce(c, spec, simproto.OmniOpts{}),
			base/simproto.SimSparCMLSplitAllgather(c, sb, d, du, false),
			base/simproto.SimSparCMLSplitAllgather(c, sb, d, du, true),
			base/simproto.SimAGsparseAllReduce(c, sb, d, 0),
			base/simproto.SimAGsparseAllReduce(gloo, sb, d, 0),
			base/simproto.SimParallax(c, sb, d, du, 8),
		)
	}
	return t
}

// Fig7 regenerates Figure 7: scalability of the sparse methods as workers
// and sparsity vary (speedup vs dense NCCL at the same worker count).
func Fig7(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 7: speedup vs workers and sparsity (10Gbps)",
		"sparsity%", "workers", "OmniReduce", "Parallax", "SSAR", "DSAR", "AGsparse-NCCL", "AGsparse-Gloo")
	rng := rand.New(rand.NewSource(o.Seed))
	for _, s := range []float64{0, 0.60, 0.80, 0.96} {
		for _, n := range []int{2, 4, 8} {
			c := dpdk10G(o, n)
			gloo := c
			gloo.WorkerBW *= 0.85
			base := ncclTime(c, scaledBytes(o))
			d := 1 - s
			du := 1 - math.Pow(s, float64(n))
			spec := microSpec(o, n, s, sparsity.OverlapRandom, rng)
			sb := scaledBytes(o)
			t.AddRow(s*100, n,
				base/simproto.SimOmniReduce(c, spec, simproto.OmniOpts{}),
				base/simproto.SimParallax(c, sb, d, du, 8),
				base/simproto.SimSparCMLSplitAllgather(c, sb, d, du, false),
				base/simproto.SimSparCMLSplitAllgather(c, sb, d, du, true),
				base/simproto.SimAGsparseAllReduce(c, sb, d, 0),
				base/simproto.SimAGsparseAllReduce(gloo, sb, d, 0),
			)
		}
	}
	return t
}

// Fig8 regenerates Figure 8: AllReduce execution breakdown including
// format conversion at 99% sparsity (10 Gbps, 8 workers).
func Fig8(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 8: breakdown with format conversion, s=99% (ms)",
		"method", "dense->sparse", "allreduce", "sparse->dense", "total")
	rng := rand.New(rand.NewSource(o.Seed))
	const n = 8
	const s = 0.99
	d := 1 - s
	du := 1 - math.Pow(s, float64(n))
	c := dpdk10G(o, n)
	sb := scaledBytes(o)
	spec := microSpec(o, n, s, sparsity.OverlapRandom, rng)
	conv := simproto.ConvertTime(microTensorBytes, simproto.DefaultConvertBW)
	convBack := simproto.ConvertTime(du*microTensorBytes, simproto.DefaultConvertBW)

	add := func(name string, d2s, ar, s2d float64) {
		t.AddRow(name, d2s*1e3, ar*1e3, s2d*1e3, (d2s+ar+s2d)*1e3)
	}
	add("Dense(NCCL)", 0, ncclTime(c, sb), 0)
	add("Parallax", conv, simproto.SimParallax(c, sb, d, du, 8), convBack)
	add("AGsparse(NCCL)", conv, simproto.SimAGsparseAllReduce(c, sb, d, 0), convBack)
	add("SSAR_Split_allgather", conv, simproto.SimSparCMLSplitAllgather(c, sb, d, du, false), convBack)
	add("OmniReduce", 0, simproto.SimOmniReduce(c, spec, simproto.OmniOpts{}), 0)
	return t
}

// Fig13 regenerates Figure 13: the multi-GPU microbenchmark (6 nodes of 8
// GPUs at 100 Gbps): NCCL vs OmniReduce with hierarchical aggregation.
func Fig13(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 13: multi-GPU AllReduce on 100MB (ms)",
		"sparsity%", "NCCL", "OmniReduce")
	rng := rand.New(rand.NewSource(o.Seed))
	const nodes = 6
	c := rdma100G(o, nodes)
	c.Aggregators = 6
	// Intra-node NVLink reduce/broadcast: 8 GPUs, ring at ~100 GB/s
	// effective (the first layer of §5's hierarchical aggregation).
	intra := 2 * (8.0 - 1) / 8.0 * microTensorBytes * 8 / 8e11
	for _, s := range []float64{0, 0.60, 0.90, 0.99} {
		spec := microSpec(o, nodes, s, sparsity.OverlapRandom, rng)
		nccl := intra + ncclTime(c, scaledBytes(o))
		omni := 2*intra + simproto.SimOmniReduce(c, spec, simproto.OmniOpts{})
		t.AddRow(s*100, nccl*1e3, omni*1e3)
	}
	return t
}

// Fig15 regenerates Figure 15: block size × sparsity with and without
// Block Fusion (10 Gbps, 8 workers, 100 MB).
func Fig15(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 15: block size and Block Fusion (ms)",
		"sparsity%", "bs", "BF", "NBF")
	rng := rand.New(rand.NewSource(o.Seed))
	const n = 8
	c := dpdk10G(o, n)
	for _, s := range []float64{0, 0.20, 0.60, 0.80, 0.90, 0.92, 0.96, 0.98, 0.99} {
		for _, bs := range []int{32, 64, 128, 256} {
			blockBytes := float64(bs * 4)
			blocks := int(microTensorBytes / float64(o.Scale) / blockBytes)
			spec := simproto.UniformSpec(blocks, n, blockBytes, 1-s, sparsity.OverlapRandom, rng)
			// Block Fusion packs blocks up to a ~4 KB payload; without it
			// each packet carries a single block.
			w := 4096 / bs / 4
			if w < 1 {
				w = 1
			}
			if w > 64 {
				w = 64
			}
			bf := simproto.SimOmniReduce(c, spec, simproto.OmniOpts{FusionWidth: w, Streams: 32})
			nbf := simproto.SimOmniReduce(c, spec, simproto.OmniOpts{FusionWidth: 1, Streams: 32 * w})
			t.AddRow(s*100, bs, bf*1e3, nbf*1e3)
		}
	}
	return t
}

// Fig17 regenerates Figure 17: the effect of non-zero block overlap
// (none / random / all) on OmniReduce time.
func Fig17(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 17: overlap effect (ms)",
		"sparsity%", "workers", "random", "none", "all")
	rng := rand.New(rand.NewSource(o.Seed))
	for _, s := range []float64{0, 0.90, 0.96, 0.99} {
		for _, n := range []int{2, 4, 8} {
			c := dpdk10G(o, n)
			row := []interface{}{s * 100, n}
			for _, ov := range []sparsity.Overlap{sparsity.OverlapRandom, sparsity.OverlapNone, sparsity.OverlapAll} {
				spec := microSpec(o, n, s, ov, rng)
				row = append(row, simproto.SimOmniReduce(c, spec, simproto.OmniOpts{})*1e3)
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Fig18 regenerates Figure 18: the in-network P4 aggregator (block sizes
// 34 and 256) against the server aggregator, as speedup over dense NCCL.
func Fig18(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 18: P4 switch aggregator vs server (speedup vs NCCL)",
		"sparsity%", "P4(34)", "P4(256)", "Server", "Dense(NCCL)")
	rng := rand.New(rand.NewSource(o.Seed))
	const n = 8
	c := dpdk10G(o, n)
	base := ncclTime(c, scaledBytes(o))
	for _, s := range []float64{0, 0.20, 0.60, 0.80, 0.90, 0.92, 0.96, 0.98, 0.99} {
		row := []interface{}{s * 100}
		// P4(34): the switch's 34-element slot limit forces one small
		// block per packet (SwitchML-style), hurting bandwidth efficiency
		// at low sparsity. P4(256): full-size blocks with the same fusion
		// as the server but negligible aggregator processing.
		{
			blockBytes := 34.0 * 4
			blocks := int(microTensorBytes / float64(o.Scale) / blockBytes)
			spec := simproto.UniformSpec(blocks, n, blockBytes, 1-s, sparsity.OverlapRandom, rng)
			p4 := simproto.SimOmniReduce(c, spec, simproto.OmniOpts{SwitchAgg: true, FusionWidth: 1, Streams: 256})
			row = append(row, base/p4)
		}
		{
			spec := microSpec(o, n, s, sparsity.OverlapRandom, rng)
			p4 := simproto.SimOmniReduce(c, spec, simproto.OmniOpts{SwitchAgg: true})
			row = append(row, base/p4)
		}
		spec := microSpec(o, n, s, sparsity.OverlapRandom, rng)
		row = append(row, base/simproto.SimOmniReduce(c, spec, simproto.OmniOpts{}), 1.0)
		t.AddRow(row...)
	}
	return t
}

// Fig21 regenerates Figure 21 (Appendix D): the extra AllReduce time due
// to packet loss and recovery, against TCP-based Gloo and NCCL whose
// congestion control collapses at high loss (Mathis model).
func Fig21(o Options) *metrics.Table {
	o = o.withDefaults()
	// Loss recovery is a per-packet mechanism, so this figure runs at a
	// finer traffic scale than the bandwidth-bound figures: the scale
	// factor inflates per-message CPU cost, and the retransmission
	// timeout must comfortably exceed a pipeline round's duration or the
	// simulation degenerates into spurious-retransmission livelock.
	if o.Scale > 8 {
		o.Scale = 8
	}
	t := metrics.NewTable("Fig 21: AllReduce slowdown under packet loss (ms vs lossless)",
		"loss%", "Omni(s=0%)", "Omni(s=90%)", "Omni(s=99%)", "Gloo", "NCCL-TCP")
	rng := rand.New(rand.NewSource(o.Seed))
	const n = 4
	opts := simproto.OmniOpts{Lossy: true, RetransmitTimeout: 10e-3}
	clean := dpdk10G(o, n)
	base := map[float64]float64{}
	for _, s := range []float64{0, 0.90, 0.99} {
		spec := microSpec(o, n, s, sparsity.OverlapRandom, rng)
		base[s] = simproto.SimOmniReduce(clean, spec, opts)
	}
	ncclBase := ncclTime(clean, scaledBytes(o))
	for _, loss := range []float64{0.0001, 0.001, 0.01} {
		c := clean
		c.Loss = loss
		row := []interface{}{loss * 100}
		for _, s := range []float64{0, 0.90, 0.99} {
			spec := microSpec(o, n, s, sparsity.OverlapRandom, rng)
			row = append(row, (simproto.SimOmniReduce(c, spec, opts)-base[s])*1e3)
		}
		// TCP throughput under random loss: Mathis et al. MSS/(RTT sqrt(2p/3)).
		rtt := 4 * clean.Latency * float64(o.Scale) // effective RTT incl. queueing
		if rtt < 100e-6 {
			rtt = 100e-6
		}
		tcpBW := 1460 * 8 / (rtt * math.Sqrt(2*loss/3))
		for _, eff := range []float64{0.85, 1.0} { // Gloo, NCCL-TCP
			b := clean
			lim := tcpBW * eff
			if lim < b.WorkerBW {
				b.WorkerBW = lim
				b.AggBW = lim
			}
			row = append(row, (ncclTime(b, scaledBytes(o))-ncclBase)*1e3)
		}
		t.AddRow(row...)
	}
	return t
}

// PerfModelTable regenerates the §3.4 analytic speedup table.
func PerfModelTable() *metrics.Table {
	t := metrics.NewTable("§3.4: analytic speedups of OmniReduce",
		"workers", "density", "SU vs ring", "SU vs AGsparse", "SU vs ring (colocated)")
	for _, n := range []int{2, 4, 8, 16} {
		for _, d := range []float64{1, 0.4, 0.1, 0.01} {
			t.AddRow(n, d,
				perfmodel.SpeedupVsRing(n, d),
				perfmodel.SpeedupVsAGsparse(n),
				perfmodel.ColocatedSpeedupVsRing(n, d))
		}
	}
	return t
}
