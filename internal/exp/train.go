package exp

import (
	"math/rand"
	"time"

	"omnireduce/internal/compress"
	"omnireduce/internal/ddl"
	"omnireduce/internal/metrics"
	"omnireduce/internal/netsim/simproto"
	"omnireduce/internal/sparsity"
	"omnireduce/internal/tensor"
)

// profileScale keeps profile-driven simulations tractable: a DeepLight
// gradient is 2.26 GB; at scale 1000 the simulated volume is ~2.3 MB with
// bandwidth terms preserved (Cluster.Scaled).
const profileScale = 1000

// commTimes computes per-iteration communication times for one workload
// under NCCL ring and OmniReduce on the given fabric.
func commTimes(o Options, p *sparsity.Profile, workers int, mk func(Options, int) simproto.Cluster) (nccl, omni float64) {
	c := mk(o, workers)
	// Re-scale for the profile's gradient size: mk applied o.Scale; undo
	// and apply profileScale instead.
	c = unscale(c, o.Scale).Scaled(profileScale)
	rng := rand.New(rand.NewSource(o.Seed + int64(len(p.Name))))
	bytes := float64(p.TotalBytes()) / profileScale
	nccl = simproto.SimRingAllReduce(c, bytes)
	spec := simproto.ProfileSpec(p, workers, 256, profileScale, rng)
	omni = simproto.SimOmniReduce(c, spec, simproto.OmniOpts{})
	return nccl, omni
}

func unscale(c simproto.Cluster, scale int) simproto.Cluster {
	f := float64(scale)
	c.WorkerBW *= f
	c.AggBW *= f
	if c.CopyBW > 0 {
		c.CopyBW *= f
	}
	c.CPUPerMsg /= f
	return c
}

// Fig1 regenerates Figure 1: the scaling factor of the six workloads
// under NCCL ring AllReduce at 10 Gbps as workers increase.
func Fig1(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 1: NCCL scaling factor at 10Gbps",
		"model", "sf@2", "sf@4", "sf@8")
	for _, p := range sparsity.Workloads {
		row := []interface{}{p.Name}
		for _, n := range []int{2, 4, 8} {
			nccl, _ := commTimes(o, p, n, dpdk10G)
			row = append(row, ddl.ScalingFactor(p, nccl))
		}
		t.AddRow(row...)
	}
	return t
}

// Table1 regenerates Table 1: workload characteristics and the modeled
// per-worker OmniReduce communication volume at block size 256.
func Table1(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Table 1: benchmark DNN workloads",
		"model", "dense", "embedding", "sparsity%", "paper-sparsity%", "omni-comm", "comm%", "paper-comm")
	for _, p := range sparsity.Workloads {
		comm := p.OmniCommBytes(256)
		t.AddRow(p.Name,
			metrics.FormatBytes(float64(p.DenseBytes)),
			metrics.FormatBytes(float64(p.EmbBytes)),
			p.ElementSparsity()*100,
			p.PaperSparsity*100,
			metrics.FormatBytes(float64(comm)),
			float64(comm)/float64(p.TotalBytes())*100,
			metrics.FormatBytes(float64(p.PaperOmniCommBytes)),
		)
	}
	return t
}

// Table2 regenerates Table 2: the breakdown of transmitted block volume
// by the number of workers sharing each non-zero block, measured on
// synthesized 8-worker gradients.
func Table2(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Table 2: communication by non-zero block overlap (8 workers, % of volume)",
		"overlap", "DeepLight", "LSTM", "NCF", "BERT", "VGG19", "ResNet152", "sBERT")
	models := []*sparsity.Profile{
		sparsity.DeepLight, sparsity.LSTM, sparsity.NCF,
		sparsity.BERT, sparsity.VGG19, sparsity.ResNet152, sparsity.SBERT,
	}
	fracs := make([][]float64, len(models))
	for i, p := range models {
		rng := rand.New(rand.NewSource(o.Seed + int64(i)))
		ws := p.SynthesizeWorkers(8, 1<<22, 256, rng)
		st := sparsity.ComputeGlobalBlockStats(ws, 256)
		fracs[i] = st.SentVolumeFractionByOverlap()
	}
	labels := []string{"None", "2", "3", "4", "5", "6", "7", "All"}
	for k := 0; k < 8; k++ {
		row := []interface{}{labels[k]}
		for i := range models {
			row = append(row, fracs[i][k]*100)
		}
		t.AddRow(row...)
	}
	return t
}

// Fig9 regenerates Figure 9: scaling factors of NCCL vs OmniReduce for
// the six workloads at 8 workers / 10 Gbps.
func Fig9(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 9: scaling factor at 8 workers, 10Gbps",
		"model", "NCCL", "OmniReduce", "paper-NCCL", "paper-Omni")
	paperN := map[string][2]float64{
		"DeepLight": {0.044, 0.362}, "LSTM": {0.121, 0.639}, "NCF": {0.175, 0.382},
		"BERT": {0.287, 0.362}, "VGG19": {0.497, 0.859}, "ResNet152": {0.948, 0.991},
	}
	for _, p := range sparsity.Workloads {
		nccl, omni := commTimes(o, p, 8, dpdk10G)
		pp := paperN[p.Name]
		t.AddRow(p.Name,
			ddl.ScalingFactor(p, nccl),
			ddl.ScalingFactor(p, omni),
			pp[0], pp[1])
	}
	return t
}

// Fig10 regenerates Figure 10: end-to-end training speedup over NCCL for
// OmniReduce, SwitchML*, and AGsparse with 1% compression, at 10 and
// 100 Gbps (8 workers).
func Fig10(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 10: training speedup vs NCCL (8 workers)",
		"net", "model", "OmniReduce", "SwitchML*", "AGsparse+1%", "paper-Omni")
	paper := map[string][2]float64{
		"DeepLight": {8.2, 2.9}, "LSTM": {5.3, 1.4}, "NCF": {2.2, 1.5},
		"BERT": {1.3, 1.0}, "VGG19": {1.7, 1.0}, "ResNet152": {1.0, 1.0},
	}
	type net struct {
		name string
		mk   func(Options, int) simproto.Cluster
		idx  int
	}
	for _, nt := range []net{{"10G", dpdk10G, 0}, {"100G", gdr100G, 1}} {
		for _, p := range sparsity.Workloads {
			nccl, omni := commTimes(o, p, 8, nt.mk)
			c := unscale(nt.mk(o, 8), o.Scale).Scaled(profileScale)
			bytes := float64(p.TotalBytes()) / profileScale
			sw := simproto.SimSwitchML(c, bytes, simproto.OmniOpts{})
			// AGsparse with 1% compression: conversion of the full dense
			// gradient dominates (§6.2.2); compression cost excluded.
			ag := simproto.ConvertTime(float64(p.TotalBytes()), simproto.DefaultConvertBW) +
				simproto.SimAGsparseAllReduce(c, bytes, 0.01, 0)
			t.AddRow(nt.name, p.Name,
				ddl.Speedup(p, nccl, omni),
				ddl.Speedup(p, nccl, sw),
				ddl.Speedup(p, nccl, ag),
				paper[p.Name][nt.idx])
		}
	}
	return t
}

// Fig14 regenerates Figure 14: multi-GPU (6 nodes x 8 GPUs, 100 Gbps)
// end-to-end training speedup of OmniReduce over NCCL.
func Fig14(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 14: multi-GPU training speedup vs NCCL (6x8 GPUs, 100Gbps)",
		"model", "speedup", "paper")
	paper := map[string]float64{
		"DeepLight": 2.6, "LSTM": 1.3, "NCF": 1.3, "BERT": 1.0, "VGG19": 1.1, "ResNet152": 1.0,
	}
	for _, p := range sparsity.Workloads {
		nccl, omni := commTimes(o, p, 6, rdma100G)
		intra := 2 * 7.0 / 8.0 * float64(p.TotalBytes()) * 8 / 8e11
		t.AddRow(p.Name,
			ddl.Speedup(p, nccl+intra, omni+2*intra),
			paper[p.Name])
	}
	return t
}

// Fig16 regenerates Figure 16: block sparsity and density-within-block as
// functions of block size, per workload. Block sparsity comes from the
// analytic structural model; within-block density is measured on a
// synthesized scaled gradient.
func Fig16(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 16: block sparsity / density within block vs block size (%)",
		"model", "bs", "block-sparsity", "density-within-block")
	for i, p := range sparsity.Workloads {
		rng := rand.New(rand.NewSource(o.Seed + int64(i)))
		g := p.SynthesizeGradient(2000, rng)
		for _, bs := range []int{1, 32, 64, 128, 256, 352} {
			t.AddRow(p.Name, bs,
				p.BlockSparsity(bs)*100,
				tensor.DensityWithinBlocks(g, bs)*100)
		}
	}
	return t
}

// Fig20 regenerates Figure 20: the bitmap computation cost as a function
// of block size, measured on the real (goroutine-sharded) implementation
// over a 100 MB float tensor, against the simulated NCCL+GDR AllReduce
// reference line.
func Fig20(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 20: bitmap calculation cost on 100MB (ms)",
		"block-size", "bitmap", "NCCL-GDR-reference")
	rng := rand.New(rand.NewSource(o.Seed))
	const elems = 25_000_000
	d := tensor.NewDense(elems)
	for i := range d.Data {
		if rng.Float64() < 0.3 {
			d.Data[i] = float32(rng.NormFloat64())
		}
	}
	ref := simproto.SimRingAllReduce(unscale(gdr100G(o, 8), o.Scale), 100e6)
	for _, bs := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		start := time.Now()
		reps := 3
		for r := 0; r < reps; r++ {
			tensor.ComputeBitmap(d, bs)
		}
		elapsed := time.Since(start).Seconds() / float64(reps)
		t.AddRow(bs, elapsed*1e3, ref*1e3)
	}
	return t
}

// Fig11 regenerates Figure 11: training quality (accuracy) and speedup
// for the four block-based compressors on a BERT-like workload. Speedups
// use the sBERT communication profile; accuracy comes from real SGD with
// error feedback on the synthetic task.
func Fig11(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 11: block compression accuracy and speedup",
		"method", "accuracy%", "speedup-vs-NCCL")
	task := ddl.NewTask(256, 2_000, 16, o.Seed)
	nb := (task.Dim() + 255) / 256
	k := nb / 100 // 1% compression, the paper's setting
	if k < 1 {
		k = 1
	}
	methods := []struct {
		name string
		mk   func(w int) compress.Compressor
		prof *sparsity.Profile
	}{
		{"No-Compression", nil, sparsity.BERT},
		{"Block-Random-k", func(w int) compress.Compressor {
			return &compress.BlockRandomK{BS: 256, K: k, Rng: rand.New(rand.NewSource(o.Seed + int64(w)))}
		}, sparsity.SBERT},
		{"Block-Threshold", func(w int) compress.Compressor {
			return &compress.BlockThreshold{BS: 256, Threshold: 0.1664}
		}, sparsity.SBERT},
		{"Block-Top-k-Ratio", nil, sparsity.SBERT}, // params wired below
		{"Block-Top-k", func(w int) compress.Compressor {
			return &compress.BlockTopK{BS: 256, K: k}
		}, sparsity.SBERT},
	}
	// Communication times: BERT profile for no compression, the sBERT
	// profile (1% block top-k, Table 2 last column) for compressed runs.
	ncclComm, _ := commTimes(o, sparsity.BERT, 8, dpdk10G)
	for _, m := range methods {
		var acc float64
		cfg := ddl.TrainConfig{
			Workers: 4, Batch: 16, Iterations: 250, LR: 0.5,
			Seed: o.Seed, ErrorFeedback: m.mk != nil,
			NewCompressor: m.mk,
		}
		if m.name == "Block-Top-k-Ratio" {
			// The update-ratio variant needs parameter access; the
			// synthetic trainer approximates it with Block Top-k over
			// gradients normalized by a unit parameter scale, which for a
			// zero-initialized model coincides with Block Top-k.
			cfg.NewCompressor = func(w int) compress.Compressor {
				return &compress.BlockTopK{BS: 256, K: k}
			}
			cfg.ErrorFeedback = true
		}
		res, err := task.Train(cfg)
		if err != nil {
			acc = 0
		} else {
			acc = res.Accuracy
		}
		_, omniComm := commTimes(o, m.prof, 8, dpdk10G)
		su := ddl.Speedup(sparsity.BERT, ncclComm, omniComm)
		if m.name == "No-Compression" {
			su = ddl.Speedup(sparsity.BERT, ncclComm, omniComm)
		}
		t.AddRow(m.name, acc*100, su)
	}
	return t
}

// Fig12 regenerates Figure 12: training loss trajectories under the block
// compressors (real EF-SGD on the synthetic task).
func Fig12(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Fig 12: training loss under block compression",
		"iteration", "None", "Block-RandomK", "Block-TopK", "Block-Threshold")
	task := ddl.NewTask(256, 2_000, 16, o.Seed)
	nb := (task.Dim() + 255) / 256
	k := nb / 10
	if k < 1 {
		k = 1
	}
	run := func(mk func(int) compress.Compressor) []float64 {
		res, err := task.Train(ddl.TrainConfig{
			Workers: 4, Batch: 16, Iterations: 300, LR: 0.5,
			Seed: o.Seed, NewCompressor: mk, ErrorFeedback: mk != nil,
			LossEvery: 25,
		})
		if err != nil {
			return nil
		}
		return res.Losses
	}
	none := run(nil)
	randk := run(func(w int) compress.Compressor {
		return &compress.BlockRandomK{BS: 256, K: k, Rng: rand.New(rand.NewSource(o.Seed + int64(w)*31))}
	})
	topk := run(func(int) compress.Compressor { return &compress.BlockTopK{BS: 256, K: k} })
	thr := run(func(int) compress.Compressor { return &compress.BlockThreshold{BS: 256, Threshold: 0.05} })
	for i := range none {
		t.AddRow(i*25, none[i], at(randk, i), at(topk, i), at(thr, i))
	}
	return t
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}
