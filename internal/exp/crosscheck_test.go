package exp

// Cross-checks tying the real implementation to the simulator: the
// protocol models in simproto must agree with the live protocol in core
// on *what* is transmitted (blocks, rounds), since the simulator's time
// results are only as good as its traffic model.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/collective"
	"omnireduce/internal/core"
	"omnireduce/internal/netsim"
	"omnireduce/internal/netsim/simproto"
	"omnireduce/internal/sparsity"
	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
)

// TestSimTrafficMatchesRealImplementation runs the same workload through
// (a) the live core protocol over the channel fabric, counting actually
// transmitted data blocks, and (b) the simulator's round builder, and
// verifies both transmit the same number of non-zero blocks.
func TestSimTrafficMatchesRealImplementation(t *testing.T) {
	const (
		workers = 4
		blocks  = 800
		bs      = 32
		streams = 4
		width   = 4
	)
	rng := rand.New(rand.NewSource(99))
	// Block-granular sparsity so both sides see identical block sets.
	spec := simproto.UniformSpec(blocks, workers, float64(bs*4), 0.2, sparsity.OverlapRandom, rng)

	// Materialize tensors matching the spec's bitmaps exactly.
	inputs := make([][]float32, workers)
	for w := 0; w < workers; w++ {
		inputs[w] = make([]float32, blocks*bs)
		for b := 0; b < blocks; b++ {
			if spec.PerWorker[w].Get(b) {
				for i := b * bs; i < (b+1)*bs; i++ {
					inputs[w][i] = 1
				}
			}
		}
	}

	// (a) live protocol.
	cfg := core.Config{
		Workers: workers, Aggregators: []int{workers},
		Reliable: true, BlockSize: bs, FusionWidth: width, Streams: streams,
	}
	nw := transport.NewNetwork(workers, 4096)
	aggConn := nw.AddNode(workers)
	agg, err := core.NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go agg.Run()
	defer aggConn.Close()
	ws := make([]*core.Worker, workers)
	for i := range ws {
		if ws[i], err = core.NewWorker(nw.Conn(i), cfg); err != nil {
			t.Fatal(err)
		}
		defer ws[i].Close()
	}
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ws[i].AllReduce(inputs[i]); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("live AllReduce timed out")
	}
	var liveBlocks int64
	for _, w := range ws {
		liveBlocks += w.Stats.BlocksSent
	}

	// The live count excludes the bootstrap row (first block per column
	// per stream, sent unconditionally); add back the non-zero ones the
	// live side counted as regular blocks... bootstrap blocks are not in
	// Stats.BlocksSent, so compare against the spec's non-zero blocks
	// minus those covered by bootstrap.
	var bootstrapNonZero, totalNonZero int64
	for w := 0; w < workers; w++ {
		totalNonZero += int64(spec.PerWorker[w].Count())
	}
	// Bootstrap covers the first block of every column of every stream.
	for s := 0; s < streams; s++ {
		lo := s * blocks / streams
		hi := (s + 1) * blocks / streams
		cols := width
		if hi-lo < cols {
			cols = hi - lo
		}
		for c := 0; c < cols; c++ {
			// First block of column c in [lo, hi).
			r := lo % cols
			b := lo + ((c-r)%cols+cols)%cols
			if b < hi {
				for w := 0; w < workers; w++ {
					if spec.PerWorker[w].Get(b) {
						bootstrapNonZero++
					}
				}
			}
		}
	}
	wantLive := totalNonZero - bootstrapNonZero
	if liveBlocks != wantLive {
		t.Errorf("live transmitted %d data blocks, expected %d (= %d non-zero - %d bootstrap)",
			liveBlocks, wantLive, totalNonZero, bootstrapNonZero)
	}
}

// TestSimVolumeMatchesSpec verifies that the simulated OmniReduce run
// moves exactly the spec's traffic: per-worker sent bytes ~ non-zero
// volume + metadata, worker received bytes ~ union volume.
func TestSimVolumeMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const workers = 4
	spec := simproto.UniformSpec(4_000, workers, 1024, 0.3, sparsity.OverlapRandom, rng)
	c := simproto.Cluster{
		Workers: workers, Aggregators: workers,
		WorkerBW: netsim.Gbps(10), AggBW: netsim.Gbps(10), Latency: 5e-6,
	}
	// Instrumented run: rebuild the sim net isn't exposed, so check via
	// the analytic invariant instead — simulated time must be at least
	// union / bandwidth (each worker must receive the union volume).
	tSim := simproto.SimOmniReduce(c, spec, simproto.OmniOpts{})
	lower := spec.UnionBytes() * 8 / c.WorkerBW
	if tSim < lower {
		t.Fatalf("sim time %v below union-volume bound %v", tSim, lower)
	}
	// And it should not exceed a few times the bound (pipeline efficiency).
	if tSim > 3*lower+1e-3 {
		t.Fatalf("sim time %v far above union bound %v", tSim, lower)
	}
}

// TestProfileSpecAllWorkloads sanity-checks spec generation across every
// workload profile and several block sizes.
func TestProfileSpecAllWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, p := range sparsity.Workloads {
		for _, bs := range []int{64, 256} {
			spec := simproto.ProfileSpec(p, 8, bs, 2000, rng)
			if spec.Blocks <= 0 {
				t.Fatalf("%s bs=%d: no blocks", p.Name, bs)
			}
			union := tensor.NewBitmap(spec.Blocks)
			for _, bm := range spec.PerWorker {
				union.Or(bm)
			}
			if union.Count() == 0 {
				t.Fatalf("%s bs=%d: empty union", p.Name, bs)
			}
			if union.Count() > spec.Blocks {
				t.Fatalf("%s: union exceeds blocks", p.Name)
			}
		}
	}
}

// TestOmniMatchesRingOracle reduces the same inputs through the live
// OmniReduce stack and the live ring AllReduce and requires numerically
// close results — two independent implementations as mutual oracles.
func TestOmniMatchesRingOracle(t *testing.T) {
	const workers = 3
	rng := rand.New(rand.NewSource(7))
	n := 20_000
	base := make([][]float32, workers)
	for w := range base {
		base[w] = make([]float32, n)
		for i := range base[w] {
			if rng.Float64() < 0.4 {
				base[w][i] = float32(rng.NormFloat64())
			}
		}
	}
	clone := func() [][]float32 {
		out := make([][]float32, workers)
		for w := range base {
			out[w] = append([]float32(nil), base[w]...)
		}
		return out
	}

	// Live OmniReduce.
	omniData := clone()
	cfg := core.Config{Workers: workers, Aggregators: []int{workers}, Reliable: true}
	nw := transport.NewNetwork(workers, 4096)
	aggConn := nw.AddNode(workers)
	agg, err := core.NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go agg.Run()
	defer aggConn.Close()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wk, err := core.NewWorker(nw.Conn(w), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer wk.Close()
		wg.Add(1)
		go func(w int, wk *core.Worker) {
			defer wg.Done()
			if err := wk.AllReduce(omniData[w]); err != nil {
				t.Errorf("omni worker %d: %v", w, err)
			}
		}(w, wk)
	}
	wg.Wait()

	// Live ring.
	ringData := clone()
	nw2 := transport.NewNetwork(workers, 4096)
	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		cm, err := collective.NewComm(nw2.Conn(w), workers)
		if err != nil {
			t.Fatal(err)
		}
		defer cm.Close()
		wg2.Add(1)
		go func(w int, cm *collective.Comm) {
			defer wg2.Done()
			if err := cm.RingAllReduce(ringData[w]); err != nil {
				t.Errorf("ring worker %d: %v", w, err)
			}
		}(w, cm)
	}
	wg2.Wait()

	for i := 0; i < n; i++ {
		d := float64(omniData[0][i]) - float64(ringData[0][i])
		if d > 1e-4 || d < -1e-4 {
			t.Fatalf("elem %d: omni %v vs ring %v", i, omniData[0][i], ringData[0][i])
		}
	}
}
