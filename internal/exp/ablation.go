package exp

import (
	"math/rand"

	"omnireduce/internal/metrics"
	"omnireduce/internal/netsim/simproto"
	"omnireduce/internal/sparsity"
)

// Ablations for the design choices DESIGN.md calls out, beyond the
// paper's own block-size study (Fig 15): the slot-pool depth (§3.1.1's
// pipeline) and the fusion width (§3.2), plus aggregator fan-out
// (sharding) and the colocation trade-off (§3.4).

// AblationStreams sweeps the number of parallel aggregation streams: too
// few streams cannot cover the round-trip pipeline and leave bandwidth
// idle; beyond the bandwidth-delay product more streams stop helping.
func AblationStreams(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Ablation: slot-pool depth (streams), 8 workers, s=90%, 10Gbps (ms)",
		"streams", "time")
	rng := rand.New(rand.NewSource(o.Seed))
	c := dpdk10G(o, 8)
	spec := microSpec(o, 8, 0.90, sparsity.OverlapRandom, rng)
	for _, streams := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		t.AddRow(streams, simproto.SimOmniReduce(c, spec, simproto.OmniOpts{Streams: streams})*1e3)
	}
	return t
}

// AblationFusionWidth sweeps the number of blocks fused per packet at a
// fixed 256-element block: wider fusion amortizes per-packet metadata and
// CPU, at the cost of coarser aggregation units.
func AblationFusionWidth(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Ablation: fusion width, 8 workers, 10Gbps (ms)",
		"width", "s=0%", "s=90%", "s=99%")
	rng := rand.New(rand.NewSource(o.Seed))
	c := dpdk10G(o, 8)
	specs := map[float64]*simproto.BlockSpec{}
	for _, s := range []float64{0, 0.90, 0.99} {
		specs[s] = microSpec(o, 8, s, sparsity.OverlapRandom, rng)
	}
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		row := []interface{}{w}
		for _, s := range []float64{0, 0.90, 0.99} {
			row = append(row, simproto.SimOmniReduce(c, specs[s], simproto.OmniOpts{FusionWidth: w})*1e3)
		}
		t.AddRow(row...)
	}
	return t
}

// AblationAggregators sweeps the aggregator node count: §3.4 assumes the
// aggregate aggregator bandwidth matches the combined worker bandwidth
// (M = N); fewer shards bottleneck dense traffic.
func AblationAggregators(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Ablation: aggregator shards, 8 workers, 10Gbps (ms)",
		"aggregators", "s=0%", "s=90%")
	rng := rand.New(rand.NewSource(o.Seed))
	specs := map[float64]*simproto.BlockSpec{
		0:    microSpec(o, 8, 0, sparsity.OverlapRandom, rng),
		0.90: microSpec(o, 8, 0.90, sparsity.OverlapRandom, rng),
	}
	for _, m := range []int{1, 2, 4, 8} {
		c := dpdk10G(o, 8)
		c.Aggregators = m
		t.AddRow(m,
			simproto.SimOmniReduce(c, specs[0], simproto.OmniOpts{})*1e3,
			simproto.SimOmniReduce(c, specs[0.90], simproto.OmniOpts{})*1e3)
	}
	return t
}

// AblationColocation compares dedicated vs colocated aggregators across
// sparsity (§3.4's "benefit diminishes by a factor of 2" analysis and
// §6.1's observation that colocation matches dedicated mode above ~80%
// sparsity).
func AblationColocation(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Ablation: dedicated vs colocated aggregation, 8 workers, 10Gbps (ms)",
		"sparsity%", "dedicated", "colocated")
	rng := rand.New(rand.NewSource(o.Seed))
	ded := dpdk10G(o, 8)
	col := ded
	col.Colocated = true
	for _, s := range []float64{0, 0.60, 0.80, 0.90, 0.99} {
		spec := microSpec(o, 8, s, sparsity.OverlapRandom, rng)
		t.AddRow(s*100,
			simproto.SimOmniReduce(ded, spec, simproto.OmniOpts{})*1e3,
			simproto.SimOmniReduce(col, spec, simproto.OmniOpts{})*1e3)
	}
	return t
}
