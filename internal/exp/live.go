package exp

import (
	"math/rand"
	"sync"
	"time"

	"omnireduce/internal/collective"
	"omnireduce/internal/core"
	"omnireduce/internal/metrics"
	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
)

// FromDenseSlice extracts the non-zero elements of v as a COO tensor.
func FromDenseSlice(v []float32) *tensor.COO {
	return tensor.FromDense(tensor.FromSlice(v))
}

// LiveComparison measures the *real* implementations — OmniReduce workers
// plus aggregator, ring AllReduce, and AGsparse — wall-clock on the
// in-process fabric as sparsity varies. Unlike the simulated figures this
// reflects actual CPU/protocol costs (encode/decode, bitmap scans,
// goroutine scheduling) rather than modeled network time, so absolute
// ordering differs from Fig 6 (the channel fabric has memory bandwidth,
// not NIC bandwidth). The invariants that must hold: OmniReduce's
// transmitted block count tracks sparsity, and at very high sparsity it
// beats dense ring even on CPU cost alone.
func LiveComparison(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("Live (wall-clock, in-process): AllReduce time (ms)",
		"sparsity%", "omnireduce", "ring", "agsparse", "omni-blocks-sent")
	const (
		workers = 4
		elems   = 1 << 20
		iters   = 3
	)
	for _, s := range []float64{0, 0.90, 0.99, 0.999} {
		inputs := liveInputs(workers, elems, s, o.Seed)

		omniT, blocks := liveOmni(workers, inputs, iters)
		ringT := liveRing(workers, inputs, iters)
		agT := liveAGsparse(workers, inputs, iters)
		t.AddRow(s*100, omniT*1e3, ringT*1e3, agT*1e3, blocks)
	}
	return t
}

func liveInputs(workers, elems int, sparsity float64, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, workers)
	for w := range out {
		out[w] = make([]float32, elems)
		for i := range out[w] {
			if rng.Float64() >= sparsity {
				out[w][i] = float32(rng.NormFloat64())
			}
		}
	}
	return out
}

func cloneAll(in [][]float32) [][]float32 {
	out := make([][]float32, len(in))
	for i := range in {
		out[i] = append([]float32(nil), in[i]...)
	}
	return out
}

func liveOmni(workers int, inputs [][]float32, iters int) (sec float64, blocksSent int64) {
	cfg := core.Config{
		Workers: workers, Aggregators: []int{workers},
		Reliable: true, Streams: 8,
	}
	nw := transport.NewNetwork(workers, 4096)
	aggConn := nw.AddNode(workers)
	agg, err := core.NewAggregator(aggConn, cfg)
	if err != nil {
		panic(err)
	}
	go agg.Run()
	defer aggConn.Close()
	ws := make([]*core.Worker, workers)
	for i := range ws {
		if ws[i], err = core.NewWorker(nw.Conn(i), cfg); err != nil {
			panic(err)
		}
		defer ws[i].Close()
	}
	start := time.Now()
	for it := 0; it < iters; it++ {
		data := cloneAll(inputs)
		var wg sync.WaitGroup
		for i := range ws {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := ws[i].AllReduce(data[i]); err != nil {
					panic(err)
				}
			}(i)
		}
		wg.Wait()
	}
	for _, w := range ws {
		blocksSent += w.Stats.BlocksSent
	}
	return time.Since(start).Seconds() / float64(iters), blocksSent / int64(iters)
}

func liveRing(workers int, inputs [][]float32, iters int) float64 {
	nw := transport.NewNetwork(workers, 4096)
	cs := make([]*collective.Comm, workers)
	for i := range cs {
		c, err := collective.NewComm(nw.Conn(i), workers)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		cs[i] = c
	}
	start := time.Now()
	for it := 0; it < iters; it++ {
		data := cloneAll(inputs)
		var wg sync.WaitGroup
		for i := range cs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := cs[i].RingAllReduce(data[i]); err != nil {
					panic(err)
				}
			}(i)
		}
		wg.Wait()
	}
	return time.Since(start).Seconds() / float64(iters)
}

func liveAGsparse(workers int, inputs [][]float32, iters int) float64 {
	nw := transport.NewNetwork(workers, 4096)
	cs := make([]*collective.Comm, workers)
	for i := range cs {
		c, err := collective.NewComm(nw.Conn(i), workers)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		cs[i] = c
	}
	start := time.Now()
	for it := 0; it < iters; it++ {
		var wg sync.WaitGroup
		for i := range cs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// AGsparse includes the dense->sparse conversion, as in
				// Fig 8's accounting.
				in := FromDenseSlice(inputs[i])
				if _, err := cs[i].AGsparseAllReduce(in); err != nil {
					panic(err)
				}
			}(i)
		}
		wg.Wait()
	}
	return time.Since(start).Seconds() / float64(iters)
}
