package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseNodes(t *testing.T) {
	m, err := ParseNodes("0=10.0.0.1:7000, 1=10.0.0.2:7000,2=:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[0] != "10.0.0.1:7000" || m[2] != ":7002" {
		t.Fatalf("parsed %v", m)
	}
}

func TestParseNodesErrors(t *testing.T) {
	cases := []string{
		"",
		"  ",
		"0:missing-equals",
		"x=host:1",
		"0=a:1,0=b:2", // duplicate
	}
	for _, c := range cases {
		if _, err := ParseNodes(c); err == nil {
			t.Errorf("ParseNodes(%q) accepted", c)
		}
	}
}

func TestParseQuotaFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quotas.json")
	policy := `{
		"default": {"weight": 1},
		"tenants": {
			"prod":     {"weight": 3, "max_jobs": 8, "max_inflight_ops": 64},
			"research": {"weight": 1, "max_jobs": 2}
		}
	}`
	if err := os.WriteFile(path, []byte(policy), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseQuotaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Default.Weight != 1 {
		t.Fatalf("default quota: %+v", cfg.Default)
	}
	prod := cfg.Tenants["prod"]
	if prod.Weight != 3 || prod.MaxJobs != 8 || prod.MaxInFlightOps != 64 {
		t.Fatalf("prod quota: %+v", prod)
	}
	if r := cfg.Tenants["research"]; r.MaxJobs != 2 || r.MaxInFlightOps != 0 {
		t.Fatalf("research quota: %+v", r)
	}
}

func TestParseQuotaFileErrors(t *testing.T) {
	if _, err := ParseQuotaFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"tenants": {"": {"weight": 1}}}`), 0o644)
	if _, err := ParseQuotaFile(bad); err == nil {
		t.Error("empty tenant name accepted")
	}
	notJSON := filepath.Join(t.TempDir(), "notjson.json")
	os.WriteFile(notJSON, []byte(`weight = 1`), 0o644)
	if _, err := ParseQuotaFile(notJSON); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestParseNodesTrailingComma(t *testing.T) {
	m, err := ParseNodes("0=a:1,")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 {
		t.Fatalf("parsed %v", m)
	}
}
