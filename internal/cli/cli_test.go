package cli

import "testing"

func TestParseNodes(t *testing.T) {
	m, err := ParseNodes("0=10.0.0.1:7000, 1=10.0.0.2:7000,2=:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[0] != "10.0.0.1:7000" || m[2] != ":7002" {
		t.Fatalf("parsed %v", m)
	}
}

func TestParseNodesErrors(t *testing.T) {
	cases := []string{
		"",
		"  ",
		"0:missing-equals",
		"x=host:1",
		"0=a:1,0=b:2", // duplicate
	}
	for _, c := range cases {
		if _, err := ParseNodes(c); err == nil {
			t.Errorf("ParseNodes(%q) accepted", c)
		}
	}
}

func TestParseNodesTrailingComma(t *testing.T) {
	m, err := ParseNodes("0=a:1,")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 {
		t.Fatalf("parsed %v", m)
	}
}
