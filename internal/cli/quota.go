package cli

import (
	"encoding/json"
	"fmt"
	"os"

	"omnireduce/internal/tenant"
)

// QuotaFile is the on-disk tenancy policy for cmd/aggregator's
// -quota-file flag:
//
//	{
//	  "default": {"weight": 1},
//	  "tenants": {
//	    "prod":     {"weight": 4, "max_jobs": 8, "max_inflight_ops": 64},
//	    "research": {"weight": 1, "max_jobs": 2, "max_inflight_ops": 8}
//	  }
//	}
//
// Absent fields mean unlimited (weight 1); an absent tenant gets the
// default quota.
type QuotaFile struct {
	Default QuotaEntry            `json:"default"`
	Tenants map[string]QuotaEntry `json:"tenants"`
}

// QuotaEntry is one tenant's limits in the quota file.
type QuotaEntry struct {
	Weight         int `json:"weight"`
	MaxJobs        int `json:"max_jobs"`
	MaxInFlightOps int `json:"max_inflight_ops"`
}

func (e QuotaEntry) quota() tenant.Quota {
	return tenant.Quota{Weight: e.Weight, MaxJobs: e.MaxJobs, MaxInFlightOps: e.MaxInFlightOps}
}

// ParseQuotaFile reads a JSON tenancy policy into a tenant.Config.
func ParseQuotaFile(path string) (*tenant.Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("quota file: %w", err)
	}
	var qf QuotaFile
	if err := json.Unmarshal(raw, &qf); err != nil {
		return nil, fmt.Errorf("quota file %s: %w", path, err)
	}
	cfg := &tenant.Config{Default: qf.Default.quota()}
	if len(qf.Tenants) > 0 {
		cfg.Tenants = make(map[string]tenant.Quota, len(qf.Tenants))
		for name, e := range qf.Tenants {
			if name == "" {
				return nil, fmt.Errorf("quota file %s: empty tenant name", path)
			}
			cfg.Tenants[name] = e.quota()
		}
	}
	return cfg, nil
}
