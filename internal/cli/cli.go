// Package cli holds small helpers shared by the command-line binaries.
package cli

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseIDList parses a comma-separated list of node IDs ("5,6"); empty
// input returns nil.
func ParseIDList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad node id %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseNodes parses a comma-separated "id=host:port" address book.
func ParseNodes(s string) (map[int]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty -nodes address book")
	}
	out := make(map[int]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad node entry %q (want id=host:port)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("bad node id in %q: %w", part, err)
		}
		if _, dup := out[n]; dup {
			return nil, fmt.Errorf("duplicate node id %d", n)
		}
		out[n] = strings.TrimSpace(addr)
	}
	return out, nil
}
