// Package ddl models data-parallel distributed training at iteration
// granularity (scaling factors and end-to-end speedups, Figs 1, 9, 10,
// 14) and provides a real SGD trainer with gradient compression and error
// feedback for the convergence experiments (Figs 11, 12).
package ddl

import (
	"math"
	"math/rand"

	"omnireduce/internal/compress"
	"omnireduce/internal/sparsity"
)

// IterTime returns the per-iteration wall time for a workload with
// computation time p.TComp when gradient communication takes tComm:
// communication overlaps with up to OverlapGamma*TComp of the backward
// pass, and the remainder is exposed (the calibrated model documented in
// EXPERIMENTS.md).
func IterTime(p *sparsity.Profile, tComm float64) float64 {
	exposed := tComm - p.OverlapGamma*p.TComp
	if exposed < 0 {
		exposed = 0
	}
	return p.TComp + exposed
}

// ScalingFactor is the paper's sf = T_N / (N * T) metric with
// weak scaling: per-worker throughput with communication divided by
// single-GPU throughput, which reduces to TComp / IterTime.
func ScalingFactor(p *sparsity.Profile, tComm float64) float64 {
	return p.TComp / IterTime(p, tComm)
}

// Speedup of method A over method B for a workload, by iteration time.
func Speedup(p *sparsity.Profile, tCommBase, tCommNew float64) float64 {
	return IterTime(p, tCommBase) / IterTime(p, tCommNew)
}

// Task is a synthetic binary-classification task with an embedding-style
// sparse feature block plus a dense feature block, mirroring the mixed
// dense/embedding gradients of Table 1's models. The ground truth is a
// random weight vector; labels are Bernoulli with logistic link.
type Task struct {
	DenseDim int // dense features per example
	EmbRows  int // embedding dictionary size
	EmbDim   int // embedding vector width
	Truth    []float32
	rng      *rand.Rand
}

// Dim is the total parameter dimension.
func (t *Task) Dim() int { return t.DenseDim + t.EmbRows*t.EmbDim }

// NewTask builds a task with a fixed random ground truth.
func NewTask(denseDim, embRows, embDim int, seed int64) *Task {
	rng := rand.New(rand.NewSource(seed))
	t := &Task{DenseDim: denseDim, EmbRows: embRows, EmbDim: embDim, rng: rng}
	t.Truth = make([]float32, t.Dim())
	for i := range t.Truth {
		t.Truth[i] = float32(rng.NormFloat64())
	}
	return t
}

// Example is one training example: dense features plus a few active
// embedding rows (the sparse categorical features).
type Example struct {
	Dense []float32
	Rows  []int
	Label float32
}

// Sample draws a batch of examples using rng (per-worker streams use
// distinct seeds).
func (t *Task) Sample(batch int, rng *rand.Rand) []Example {
	out := make([]Example, batch)
	for i := range out {
		ex := Example{Dense: make([]float32, t.DenseDim)}
		for j := range ex.Dense {
			ex.Dense[j] = float32(rng.NormFloat64())
		}
		// A handful of active embedding rows per example, power-law-ish:
		// low row indices are hot (shared across workers), the tail cold.
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			var r int
			if rng.Float64() < 0.5 {
				r = rng.Intn(1 + t.EmbRows/20) // hot head
			} else {
				r = rng.Intn(t.EmbRows)
			}
			ex.Rows = append(ex.Rows, r)
		}
		// Logit under the ground truth.
		z := t.logit(t.Truth, ex)
		p := 1 / (1 + math.Exp(-z))
		if rng.Float64() < p {
			ex.Label = 1
		}
		out[i] = ex
	}
	return out
}

func (t *Task) logit(w []float32, ex Example) float64 {
	var z float64
	for j, x := range ex.Dense {
		z += float64(w[j]) * float64(x)
	}
	for _, r := range ex.Rows {
		base := t.DenseDim + r*t.EmbDim
		for d := 0; d < t.EmbDim; d++ {
			// Embedding features enter with weight 1 on each active row
			// dimension (a simple sum-pooling featurizer).
			z += float64(w[base+d]) * embFeature(d)
		}
	}
	return z
}

// embFeature is the fixed per-dimension activation of an active row.
func embFeature(d int) float64 { return 1 / math.Sqrt(float64(d+1)) }

// Gradient computes the mini-batch logistic-loss gradient into grad
// (zeroed first) and returns the mean loss. Only the embedding rows
// touched by the batch receive non-zero gradient, reproducing the paper's
// embedding-gradient sparsity.
func (t *Task) Gradient(w []float32, batch []Example, grad []float32) float64 {
	clear(grad)
	var loss float64
	inv := 1 / float64(len(batch))
	for _, ex := range batch {
		z := t.logit(w, ex)
		p := 1 / (1 + math.Exp(-z))
		y := float64(ex.Label)
		loss += -(y*math.Log(p+1e-12) + (1-y)*math.Log(1-p+1e-12))
		g := (p - y) * inv
		for j, x := range ex.Dense {
			grad[j] += float32(g * float64(x))
		}
		for _, r := range ex.Rows {
			base := t.DenseDim + r*t.EmbDim
			for d := 0; d < t.EmbDim; d++ {
				grad[base+d] += float32(g * embFeature(d))
			}
		}
	}
	return loss * inv
}

// Accuracy evaluates classification accuracy of w on fresh samples.
func (t *Task) Accuracy(w []float32, samples int, rng *rand.Rand) float64 {
	batch := t.Sample(samples, rng)
	correct := 0
	for _, ex := range batch {
		z := t.logit(w, ex)
		pred := float32(0)
		if z > 0 {
			pred = 1
		}
		if pred == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(samples)
}

// Reducer aggregates per-worker gradients; the training loop is agnostic
// to whether aggregation happens in-process or over OmniReduce.
type Reducer interface {
	// Reduce sums grads element-wise across workers, storing the global
	// average-ready sum back into every grads[w].
	Reduce(grads [][]float32) error
}

// LocalReducer sums in process (the fast path for convergence studies).
type LocalReducer struct{}

// Reduce implements Reducer.
func (LocalReducer) Reduce(grads [][]float32) error {
	sum := make([]float32, len(grads[0]))
	for _, g := range grads {
		for i, v := range g {
			sum[i] += v
		}
	}
	for _, g := range grads {
		copy(g, sum)
	}
	return nil
}

// TrainConfig drives Train.
type TrainConfig struct {
	Workers    int
	Batch      int // per-worker batch size
	Iterations int
	LR         float32
	Seed       int64
	// Compressor factory: one instance per worker (error feedback is
	// stateful and local). nil = no compression.
	NewCompressor func(worker int) compress.Compressor
	// ErrorFeedback wraps each worker's compressor with EF memory.
	ErrorFeedback bool
	Reducer       Reducer
	// LossEvery records the training loss every k iterations (default 10).
	LossEvery int
}

// TrainResult holds a training run's trajectory.
type TrainResult struct {
	Losses    []float64 // mean worker loss, every LossEvery iterations
	Accuracy  float64   // final held-out accuracy
	GradStats GradStats
}

// GradStats aggregates gradient sparsity observed during training.
type GradStats struct {
	MeanSparsity     float64 // element sparsity after compression
	MeanBlockDensity float64 // fraction of non-zero 256-blocks after compression
	Samples          int
}

// Train runs synchronous data-parallel SGD on the task.
func (t *Task) Train(cfg TrainConfig) (*TrainResult, error) {
	if cfg.LossEvery == 0 {
		cfg.LossEvery = 10
	}
	if cfg.Reducer == nil {
		cfg.Reducer = LocalReducer{}
	}
	dim := t.Dim()
	w := make([]float32, dim) // shared initial model (zeros)
	workersRng := make([]*rand.Rand, cfg.Workers)
	comps := make([]compress.Compressor, cfg.Workers)
	for i := range workersRng {
		workersRng[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*7907))
		if cfg.NewCompressor != nil {
			c := cfg.NewCompressor(i)
			if cfg.ErrorFeedback {
				c = compress.NewErrorFeedback(c)
			}
			comps[i] = c
		}
	}
	grads := make([][]float32, cfg.Workers)
	for i := range grads {
		grads[i] = make([]float32, dim)
	}
	res := &TrainResult{}
	models := make([][]float32, cfg.Workers)
	for i := range models {
		models[i] = append([]float32(nil), w...)
	}

	for it := 0; it < cfg.Iterations; it++ {
		var lossSum float64
		for wk := 0; wk < cfg.Workers; wk++ {
			batch := t.Sample(cfg.Batch, workersRng[wk])
			lossSum += t.Gradient(models[wk], batch, grads[wk])
			if comps[wk] != nil {
				comps[wk].Compress(grads[wk], grads[wk])
			}
		}
		if it%cfg.LossEvery == 0 {
			res.Losses = append(res.Losses, lossSum/float64(cfg.Workers))
		}
		// Record sparsity of what would go on the wire.
		if it%25 == 0 {
			s, bd := wireSparsity(grads[0])
			res.GradStats.MeanSparsity += s
			res.GradStats.MeanBlockDensity += bd
			res.GradStats.Samples++
		}
		if err := cfg.Reducer.Reduce(grads); err != nil {
			return nil, err
		}
		scale := cfg.LR / float32(cfg.Workers)
		for wk := 0; wk < cfg.Workers; wk++ {
			for i, g := range grads[wk] {
				models[wk][i] -= scale * g
			}
		}
	}
	if res.GradStats.Samples > 0 {
		res.GradStats.MeanSparsity /= float64(res.GradStats.Samples)
		res.GradStats.MeanBlockDensity /= float64(res.GradStats.Samples)
	}
	evalRng := rand.New(rand.NewSource(cfg.Seed + 999331))
	res.Accuracy = t.Accuracy(models[0], 4000, evalRng)
	return res, nil
}

func wireSparsity(g []float32) (elemSparsity, blockDensity float64) {
	nz := 0
	const bs = 256
	nb := (len(g) + bs - 1) / bs
	nzBlocks := 0
	for b := 0; b < nb; b++ {
		lo := b * bs
		hi := lo + bs
		if hi > len(g) {
			hi = len(g)
		}
		blockNZ := false
		for _, v := range g[lo:hi] {
			if v != 0 {
				nz++
				blockNZ = true
			}
		}
		if blockNZ {
			nzBlocks++
		}
	}
	return 1 - float64(nz)/float64(len(g)), float64(nzBlocks) / float64(nb)
}
