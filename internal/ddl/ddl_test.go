package ddl

import (
	"math"
	"math/rand"
	"testing"

	"omnireduce/internal/compress"
	"omnireduce/internal/sparsity"
)

func TestIterTimeModel(t *testing.T) {
	p := &sparsity.Profile{TComp: 1.0, OverlapGamma: 0.5}
	// Fully hidden communication.
	if got := IterTime(p, 0.3); got != 1.0 {
		t.Fatalf("hidden comm: %v", got)
	}
	// Partially exposed.
	if got := IterTime(p, 0.8); math.Abs(got-1.3) > 1e-12 {
		t.Fatalf("exposed comm: %v", got)
	}
	if sf := ScalingFactor(p, 0.8); math.Abs(sf-1.0/1.3) > 1e-12 {
		t.Fatalf("sf: %v", sf)
	}
	if su := Speedup(p, 0.8, 0.3); math.Abs(su-1.3) > 1e-12 {
		t.Fatalf("speedup: %v", su)
	}
}

func TestScalingFactorReproducesFig9NCCL(t *testing.T) {
	// The profile calibration must reproduce the paper's Figure 9 NCCL
	// scaling factors at 8 workers / 10 Gbps given the ring formula.
	want := map[string]float64{
		"DeepLight": 0.044, "LSTM": 0.121, "NCF": 0.175,
		"BERT": 0.287, "VGG19": 0.497, "ResNet152": 0.948,
	}
	const B = 10e9
	for _, p := range sparsity.Workloads {
		tRing := 2.0 * 7 / 8 * float64(p.TotalBytes()) * 8 / B
		got := ScalingFactor(p, tRing)
		if math.Abs(got-want[p.Name])/want[p.Name] > 0.10 {
			t.Errorf("%s: sf %0.3f vs paper %0.3f", p.Name, got, want[p.Name])
		}
	}
}

func TestTaskGradientSparsity(t *testing.T) {
	task := NewTask(64, 2000, 16, 1)
	rng := rand.New(rand.NewSource(2))
	w := make([]float32, task.Dim())
	g := make([]float32, task.Dim())
	batch := task.Sample(32, rng)
	task.Gradient(w, batch, g)
	// Dense part fully non-zero, embedding part sparse.
	nzDense := 0
	for _, v := range g[:64] {
		if v != 0 {
			nzDense++
		}
	}
	if nzDense < 60 {
		t.Fatalf("dense gradient too sparse: %d/64", nzDense)
	}
	nzEmb := 0
	for _, v := range g[64:] {
		if v != 0 {
			nzEmb++
		}
	}
	frac := float64(nzEmb) / float64(len(g)-64)
	if frac > 0.20 {
		t.Fatalf("embedding gradient not sparse: %v", frac)
	}
	if nzEmb == 0 {
		t.Fatal("embedding gradient empty")
	}
}

func TestTrainingConverges(t *testing.T) {
	task := NewTask(32, 500, 8, 3)
	res, err := task.Train(TrainConfig{
		Workers: 4, Batch: 16, Iterations: 300, LR: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	if last >= first*0.8 {
		t.Fatalf("loss did not drop: %v -> %v", first, last)
	}
	if res.Accuracy < 0.65 {
		t.Fatalf("accuracy %v too low", res.Accuracy)
	}
}

func TestTrainingWithBlockCompressionConverges(t *testing.T) {
	// Fig 12's claim: block compressors with error feedback preserve
	// convergence. Compare final losses against no compression.
	task := NewTask(32, 500, 8, 4)
	base, err := task.Train(TrainConfig{Workers: 2, Batch: 16, Iterations: 300, LR: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	makeCfg := func(newC func(int) compress.Compressor) TrainConfig {
		return TrainConfig{
			Workers: 2, Batch: 16, Iterations: 300, LR: 0.5, Seed: 11,
			NewCompressor: newC, ErrorFeedback: true,
		}
	}
	nb := (task.Dim() + 255) / 256
	k := nb / 10 // 10% of blocks
	cases := map[string]func(int) compress.Compressor{
		"block-topk": func(int) compress.Compressor { return &compress.BlockTopK{BS: 256, K: k} },
		"block-randk": func(w int) compress.Compressor {
			return &compress.BlockRandomK{BS: 256, K: k, Rng: rand.New(rand.NewSource(int64(w) + 100))}
		},
		"block-threshold": func(int) compress.Compressor { return &compress.BlockThreshold{BS: 256, Threshold: 0.05} },
	}
	baseLast := base.Losses[len(base.Losses)-1]
	for name, f := range cases {
		res, err := task.Train(makeCfg(f))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		last := res.Losses[len(res.Losses)-1]
		if last > baseLast*1.6+0.1 {
			t.Errorf("%s: final loss %v vs uncompressed %v", name, last, baseLast)
		}
		first := res.Losses[0]
		if last >= first {
			t.Errorf("%s: loss did not decrease (%v -> %v)", name, first, last)
		}
	}
}

func TestCompressionIncreasesBlockSparsity(t *testing.T) {
	task := NewTask(512, 200, 16, 5)
	nb := (task.Dim() + 255) / 256
	res, err := task.Train(TrainConfig{
		Workers: 2, Batch: 16, Iterations: 60, LR: 0.3, Seed: 13,
		NewCompressor: func(int) compress.Compressor {
			return &compress.BlockTopK{BS: 256, K: nb / 20}
		},
		ErrorFeedback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GradStats.MeanBlockDensity > 0.1 {
		t.Fatalf("block density %v too high for 5%% top-k", res.GradStats.MeanBlockDensity)
	}
}

func TestLocalReducer(t *testing.T) {
	g := [][]float32{{1, 2}, {10, 20}, {100, 200}}
	if err := (LocalReducer{}).Reduce(g); err != nil {
		t.Fatal(err)
	}
	for w := range g {
		if g[w][0] != 111 || g[w][1] != 222 {
			t.Fatalf("worker %d: %v", w, g[w])
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	task := NewTask(16, 100, 4, 6)
	cfg := TrainConfig{Workers: 2, Batch: 8, Iterations: 50, LR: 0.2, Seed: 17}
	a, err := task.Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := task.Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatal("training not deterministic")
		}
	}
	if a.Accuracy != b.Accuracy {
		t.Fatal("accuracy not deterministic")
	}
}

func TestBucketPipelineIterTime(t *testing.T) {
	p := &sparsity.Profile{TComp: 1.0, DenseBytes: 100 << 20} // 4 buckets
	// Zero communication: iteration time is pure compute.
	if got := BucketPipelineIterTime(p, 0, 0.6); got != 1.0 {
		t.Fatalf("free comm: %v", got)
	}
	// Communication far larger than compute: iteration approaches
	// first-bucket production + total comm.
	got := BucketPipelineIterTime(p, 10, 0.6)
	first := 0.4 + 0.6/4 // forward + first bucket's share of backward
	if math.Abs(got-(first+10)) > 1e-9 {
		t.Fatalf("comm-bound: %v, want %v", got, first+10)
	}
	// Comm roughly equal to backward: almost fully hidden.
	hidden := BucketPipelineIterTime(p, 0.5, 0.6)
	if hidden > 1.3 {
		t.Fatalf("overlap not effective: %v", hidden)
	}
	// Monotone in comm volume.
	if BucketPipelineIterTime(p, 0.5, 0.6) > BucketPipelineIterTime(p, 1.0, 0.6) {
		t.Fatal("not monotone in comm")
	}
	// Scaling factor consistency.
	if sf := PipelineScalingFactor(p, 10, 0.6); math.Abs(sf-1.0/got) > 1e-12 {
		t.Fatalf("sf = %v", sf)
	}
}

func TestBucketPipelineVsGammaModel(t *testing.T) {
	// For the real workloads, the mechanistic pipeline model should give
	// scaling factors in the same ballpark as the calibrated gamma model
	// for NCCL at 10 Gbps (within ~2x either way) — it is an ablation of
	// the modeling choice, not a recalibration.
	const B = 10e9
	for _, p := range sparsity.Workloads {
		tRing := 2.0 * 7 / 8 * float64(p.TotalBytes()) * 8 / B
		gamma := ScalingFactor(p, tRing)
		pipe := PipelineScalingFactor(p, tRing, 0.6)
		if pipe > gamma*2.5 || pipe < gamma/2.5 {
			t.Errorf("%s: pipeline sf %v vs gamma sf %v", p.Name, pipe, gamma)
		}
	}
}
