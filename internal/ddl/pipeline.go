package ddl

import "omnireduce/internal/sparsity"

// BucketPipelineIterTime is a mechanistic alternative to the calibrated
// IterTime overlap model: the backward pass emits the gradient in B
// fusion buckets (PyTorch DDP's 25 MB buckets), each becoming eligible
// for communication when produced; bucket communications serialize on the
// NIC and overlap the remaining backward computation. The iteration ends
// when both compute and the last bucket's communication finish.
//
// backwardFrac is the fraction of TComp spent in the backward pass
// (buckets are produced uniformly across it); commTotal is the
// communication time for the full gradient under the chosen collective
// (buckets are assumed to divide it evenly).
func BucketPipelineIterTime(p *sparsity.Profile, commTotal, backwardFrac float64) float64 {
	buckets := p.Buckets()
	if buckets < 1 {
		buckets = 1
	}
	backward := p.TComp * backwardFrac
	forward := p.TComp - backward
	perBucket := commTotal / float64(buckets)
	// Bucket i (1-based) is produced at forward + backward*i/B from the
	// start of the iteration; its communication starts at
	// max(production, previous bucket's comm end) and lasts perBucket.
	var commEnd float64
	for i := 1; i <= buckets; i++ {
		ready := forward + backward*float64(i)/float64(buckets)
		if ready > commEnd {
			commEnd = ready
		}
		commEnd += perBucket
	}
	// The next iteration starts once both compute and the last reduction
	// complete.
	if commEnd < p.TComp {
		return p.TComp
	}
	return commEnd
}

// PipelineScalingFactor is ScalingFactor under the bucket-pipeline model.
func PipelineScalingFactor(p *sparsity.Profile, commTotal, backwardFrac float64) float64 {
	return p.TComp / BucketPipelineIterTime(p, commTotal, backwardFrac)
}
