package tensor

import "testing"

// The block-merge kernel is the aggregator's per-packet inner loop; it
// must never allocate.

func TestAddBlockZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	d := NewDense(1 << 12)
	src := make([]float32, 256)
	for i := range src {
		src[i] = float32(i)
	}
	allocs := testing.AllocsPerRun(100, func() {
		d.AddBlock(512, src)
	})
	if allocs != 0 {
		t.Fatalf("AddBlock: %v allocs/op, want 0", allocs)
	}
}

func TestAddF32Unrolled(t *testing.T) {
	// Exercise every remainder-length path of the 4-way unroll.
	for n := 0; n <= 17; n++ {
		dst := make([]float32, n)
		src := make([]float32, n)
		want := make([]float32, n)
		for i := 0; i < n; i++ {
			dst[i] = float32(i)
			src[i] = float32(10 * i)
			want[i] = float32(i) + float32(10*i)
		}
		AddF32(dst, src)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d elem %d: got %v want %v", n, i, dst[i], want[i])
			}
		}
	}
	// dst longer than src: only the src prefix is touched.
	dst := []float32{1, 1, 1, 1, 1, 1}
	AddF32(dst, []float32{1, 2, 3})
	if dst[0] != 2 || dst[1] != 3 || dst[2] != 4 || dst[3] != 1 {
		t.Fatalf("prefix add wrong: %v", dst)
	}
}
