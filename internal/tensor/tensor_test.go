package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(10)
	if d.Len() != 10 {
		t.Fatalf("Len = %d, want 10", d.Len())
	}
	if d.NonZeroCount() != 0 {
		t.Fatalf("fresh tensor has %d non-zeros", d.NonZeroCount())
	}
	d.Data[3] = 1.5
	d.Data[7] = -2
	if got := d.NonZeroCount(); got != 2 {
		t.Fatalf("NonZeroCount = %d, want 2", got)
	}
	if got := d.Sparsity(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Sparsity = %v, want 0.8", got)
	}
	c := d.Clone()
	if !c.Equal(d) {
		t.Fatal("clone not equal")
	}
	c.Data[0] = 9
	if d.Data[0] == 9 {
		t.Fatal("clone aliases original")
	}
	d.Zero()
	if d.NonZeroCount() != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestDenseAdd(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3})
	b := FromSlice([]float32{10, 20, 30})
	a.Add(b)
	want := []float32{11, 22, 33}
	for i, v := range want {
		if a.Data[i] != v {
			t.Fatalf("Add[%d] = %v, want %v", i, a.Data[i], v)
		}
	}
}

func TestDenseAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewDense(3).Add(NewDense(4))
}

func TestBlockViews(t *testing.T) {
	d := NewDense(10)
	for i := range d.Data {
		d.Data[i] = float32(i)
	}
	if nb := d.NumBlocks(4); nb != 3 {
		t.Fatalf("NumBlocks(4) = %d, want 3", nb)
	}
	if got := d.Block(0, 4); len(got) != 4 || got[0] != 0 {
		t.Fatalf("Block(0) = %v", got)
	}
	// Tail block is short.
	if got := d.Block(2, 4); len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Fatalf("tail Block = %v", got)
	}
	d.AddBlock(4, []float32{1, 1, 1, 1})
	if d.Data[4] != 5 || d.Data[7] != 8 {
		t.Fatalf("AddBlock wrong: %v", d.Data)
	}
	d.SetBlock(0, []float32{-1, -2})
	if d.Data[0] != -1 || d.Data[1] != -2 || d.Data[2] != 2 {
		t.Fatalf("SetBlock wrong: %v", d.Data)
	}
}

func TestScaleAndNorms(t *testing.T) {
	d := FromSlice([]float32{3, 4})
	if got := d.Norm2(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	d.Scale(2)
	if d.Data[0] != 6 || d.Data[1] != 8 {
		t.Fatalf("Scale wrong: %v", d.Data)
	}
	d2 := FromSlice([]float32{0, 0, 3, 4, 0, 0})
	if got := d2.BlockNorm2(1, 2); math.Abs(got-5) > 1e-9 {
		t.Fatalf("BlockNorm2 = %v, want 5", got)
	}
	if got := d2.Sum(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("Sum = %v, want 7", got)
	}
}

func TestApproxEqual(t *testing.T) {
	a := FromSlice([]float32{1, 2})
	b := FromSlice([]float32{1.0000001, 2})
	if !a.ApproxEqual(b, 1e-5) {
		t.Fatal("should be approx equal")
	}
	if a.ApproxEqual(b, 1e-9) {
		t.Fatal("should not be approx equal at tight tol")
	}
	if a.ApproxEqual(NewDense(3), 1) {
		t.Fatal("length mismatch should be unequal")
	}
}

func TestCOORoundTrip(t *testing.T) {
	d := NewDense(100)
	d.Data[5] = 1
	d.Data[42] = -3
	d.Data[99] = 0.5
	s := FromDense(d)
	if s.Len() != 3 {
		t.Fatalf("COO len = %d, want 3", s.Len())
	}
	if s.NNZBytes() != 24 {
		t.Fatalf("NNZBytes = %d, want 24", s.NNZBytes())
	}
	back := s.ToDense()
	if !back.Equal(d) {
		t.Fatal("COO round trip mismatch")
	}
}

func TestCOOAppendOrdering(t *testing.T) {
	s := NewCOO(10)
	s.Append(1, 1)
	s.Append(5, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order key")
		}
	}()
	s.Append(3, 3)
}

func TestCOOAdd(t *testing.T) {
	a := NewCOO(10)
	a.Append(1, 1)
	a.Append(3, 2)
	b := NewCOO(10)
	b.Append(2, 5)
	b.Append(3, 7)
	b.Append(9, 1)
	sum := a.AddCOO(b)
	wantK := []int32{1, 2, 3, 9}
	wantV := []float32{1, 5, 9, 1}
	if len(sum.Keys) != len(wantK) {
		t.Fatalf("merged keys = %v", sum.Keys)
	}
	for i := range wantK {
		if sum.Keys[i] != wantK[i] || sum.Values[i] != wantV[i] {
			t.Fatalf("merge[%d] = (%d,%v), want (%d,%v)", i, sum.Keys[i], sum.Values[i], wantK[i], wantV[i])
		}
	}
}

func TestCOONormalize(t *testing.T) {
	s := &COO{Dim: 10, Keys: []int32{5, 1, 5, 0}, Values: []float32{1, 2, 3, 4}}
	s.Normalize()
	wantK := []int32{0, 1, 5}
	wantV := []float32{4, 2, 4}
	for i := range wantK {
		if s.Keys[i] != wantK[i] || s.Values[i] != wantV[i] {
			t.Fatalf("normalize[%d] = (%d,%v)", i, s.Keys[i], s.Values[i])
		}
	}
}

// Property: COO merge equals dense addition.
func TestCOOAddMatchesDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(200)
		a, b := NewDense(dim), NewDense(dim)
		for i := 0; i < dim; i++ {
			if r.Float64() < 0.3 {
				a.Data[i] = float32(r.NormFloat64())
			}
			if r.Float64() < 0.3 {
				b.Data[i] = float32(r.NormFloat64())
			}
		}
		merged := FromDense(a).AddCOO(FromDense(b)).ToDense()
		want := a.Clone()
		want.Add(b)
		// Merged may retain explicit zeros when values cancel; compare densely.
		return merged.Equal(want)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCOOClone(t *testing.T) {
	s := NewCOO(10)
	s.Append(1, 2)
	c := s.Clone()
	c.Values[0] = 9
	if s.Values[0] != 2 {
		t.Fatal("Clone aliases values")
	}
	if c.Dim != 10 || c.Keys[0] != 1 {
		t.Fatalf("clone wrong: %+v", c)
	}
}
