// Package tensor provides the dense and sparse tensor representations used
// throughout the OmniReduce implementation, along with block-level views,
// non-zero bitmap computation, format conversion, and sparsity statistics.
//
// A tensor here is a flat vector of float32 values (the paper's collectives
// operate on flattened gradients; multi-dimensional shape is irrelevant to
// communication). Dense tensors store every element contiguously; sparse
// tensors use the COO format (parallel key and value lists, keys strictly
// increasing).
package tensor

import (
	"fmt"
	"math"
)

// Dense is a dense float32 tensor: a contiguous vector of values.
type Dense struct {
	Data []float32
}

// NewDense returns a zero-filled dense tensor with n elements.
func NewDense(n int) *Dense {
	return &Dense{Data: make([]float32, n)}
}

// FromSlice wraps an existing slice as a dense tensor without copying.
func FromSlice(v []float32) *Dense {
	return &Dense{Data: v}
}

// Len reports the number of elements.
func (t *Dense) Len() int { return len(t.Data) }

// Clone returns a deep copy of t.
func (t *Dense) Clone() *Dense {
	c := make([]float32, len(t.Data))
	copy(c, t.Data)
	return &Dense{Data: c}
}

// Zero resets every element to zero.
func (t *Dense) Zero() {
	clear(t.Data)
}

// Add accumulates other into t element-wise. It panics if lengths differ.
func (t *Dense) Add(other *Dense) {
	if len(other.Data) != len(t.Data) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d != %d", len(other.Data), len(t.Data)))
	}
	addF32(t.Data, other.Data)
}

// Scale multiplies every element by f.
func (t *Dense) Scale(f float32) {
	for i := range t.Data {
		t.Data[i] *= f
	}
}

// addF32 is the hot loop for block accumulation: the per-element merge
// cost every aggregator pays for every received block (the cost S2
// Reducer targets). 4-way unrolled — four independent adds per iteration
// with one bounds check, which the compiler schedules much better than
// the rolled loop.
func addF32(dst, src []float32) {
	dst = dst[:len(src)]
	for len(src) >= 4 {
		d, s := dst[:4], src[:4]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
		dst = dst[4:]
		src = src[4:]
	}
	for i, v := range src {
		dst[i] += v
	}
}

// AddF32 accumulates src into dst element-wise (dst[i] += src[i] over
// len(src) elements; dst must be at least as long). It is the exported
// form of the unrolled merge kernel, shared with the protocol
// accumulators so every layer pays the same optimized per-element cost.
func AddF32(dst, src []float32) {
	addF32(dst, src)
}

// AddBlock accumulates src into t starting at element offset off. Panics if
// the block does not fit.
func (t *Dense) AddBlock(off int, src []float32) {
	addF32(t.Data[off:off+len(src)], src)
}

// SetBlock overwrites the elements starting at off with src.
func (t *Dense) SetBlock(off int, src []float32) {
	copy(t.Data[off:off+len(src)], src)
}

// Block returns the slice of values for block index b under block size bs.
// The final block may be shorter than bs if the length is not a multiple.
func (t *Dense) Block(b, bs int) []float32 {
	lo := b * bs
	hi := lo + bs
	if hi > len(t.Data) {
		hi = len(t.Data)
	}
	return t.Data[lo:hi]
}

// NumBlocks reports how many blocks of size bs cover the tensor.
func (t *Dense) NumBlocks(bs int) int {
	return (len(t.Data) + bs - 1) / bs
}

// Equal reports whether two dense tensors have identical length and values.
func (t *Dense) Equal(other *Dense) bool {
	if len(t.Data) != len(other.Data) {
		return false
	}
	for i, v := range t.Data {
		if v != other.Data[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports element-wise equality within absolute tolerance tol.
func (t *Dense) ApproxEqual(other *Dense, tol float64) bool {
	if len(t.Data) != len(other.Data) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(float64(v)-float64(other.Data[i])) > tol {
			return false
		}
	}
	return true
}

// NonZeroCount returns the number of non-zero elements.
func (t *Dense) NonZeroCount() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of zero elements in [0,1].
func (t *Dense) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return 1 - float64(t.NonZeroCount())/float64(len(t.Data))
}

// Norm2 returns the Euclidean (l2) norm of the tensor.
func (t *Dense) Norm2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// BlockNorm2 returns the l2 norm of block b under block size bs.
func (t *Dense) BlockNorm2(b, bs int) float64 {
	var s float64
	for _, v := range t.Block(b, bs) {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements (float64 accumulator).
func (t *Dense) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}
