package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	m := NewBitmap(130)
	if m.NumBlocks() != 130 {
		t.Fatalf("NumBlocks = %d", m.NumBlocks())
	}
	m.Set(0)
	m.Set(64)
	m.Set(129)
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	if !m.Get(64) || m.Get(63) {
		t.Fatal("Get wrong")
	}
	m.Clear(64)
	if m.Get(64) {
		t.Fatal("Clear failed")
	}
	if got := m.BlockSparsity(); got != 1-2.0/130 {
		t.Fatalf("BlockSparsity = %v", got)
	}
}

func TestBitmapNextSet(t *testing.T) {
	m := NewBitmap(200)
	m.Set(5)
	m.Set(70)
	m.Set(199)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 70}, {70, 70}, {71, 199}, {199, 199}, {-3, 5},
	}
	for _, c := range cases {
		if got := m.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := m.NextSet(200); got != -1 {
		t.Errorf("NextSet(200) = %d, want -1", got)
	}
	empty := NewBitmap(100)
	if got := empty.NextSet(0); got != -1 {
		t.Errorf("empty NextSet = %d, want -1", got)
	}
}

func TestBitmapOrClone(t *testing.T) {
	a := NewBitmap(100)
	b := NewBitmap(100)
	a.Set(1)
	b.Set(2)
	a.Or(b)
	if !a.Get(1) || !a.Get(2) {
		t.Fatal("Or wrong")
	}
	c := a.Clone()
	c.Set(50)
	if a.Get(50) {
		t.Fatal("Clone aliases")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	a.Or(NewBitmap(99))
}

func TestComputeBitmap(t *testing.T) {
	d := NewDense(1000)
	d.Data[0] = 1    // block 0
	d.Data[255] = 1  // block 0 (bs=256)
	d.Data[600] = -1 // block 2
	m := ComputeBitmap(d, 256)
	if m.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", m.NumBlocks())
	}
	want := []bool{true, false, true, false}
	for b, w := range want {
		if m.Get(b) != w {
			t.Errorf("block %d = %v, want %v", b, m.Get(b), w)
		}
	}
}

// Property: the parallel bitmap matches the serial bitmap for random tensors
// and block sizes, including tails that are not multiples of bs.
func TestComputeBitmapParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5000)
		bs := 1 + r.Intn(300)
		d := NewDense(n)
		for i := range d.Data {
			if r.Float64() < 0.05 {
				d.Data[i] = 1
			}
		}
		p := ComputeBitmap(d, bs)
		s := ComputeBitmapSerial(d, bs)
		if p.NumBlocks() != s.NumBlocks() {
			return false
		}
		for b := 0; b < p.NumBlocks(); b++ {
			if p.Get(b) != s.Get(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDensityWithinBlocks(t *testing.T) {
	d := NewDense(8)
	// Block size 4: block 0 has 2/4 non-zero, block 1 all zero.
	d.Data[0], d.Data[1] = 1, 1
	if got := DensityWithinBlocks(d, 4); got != 0.5 {
		t.Fatalf("density = %v, want 0.5", got)
	}
	if got := DensityWithinBlocks(NewDense(8), 4); got != 0 {
		t.Fatalf("all-zero density = %v, want 0", got)
	}
}

func TestBitmapSparsityRelation(t *testing.T) {
	// With block size 1, block sparsity equals element sparsity.
	r := rand.New(rand.NewSource(7))
	d := NewDense(4096)
	for i := range d.Data {
		if r.Float64() < 0.25 {
			d.Data[i] = float32(r.NormFloat64())
		}
	}
	m := ComputeBitmap(d, 1)
	if got, want := m.BlockSparsity(), d.Sparsity(); got != want {
		t.Fatalf("bs=1 block sparsity %v != element sparsity %v", got, want)
	}
	// Larger blocks can only be denser (block sparsity monotonically
	// non-increasing in block size for nested block structures of power 2).
	prev := 1.0
	for _, bs := range []int{1, 2, 4, 8, 16, 32} {
		s := ComputeBitmap(d, bs).BlockSparsity()
		if s > prev+1e-12 {
			t.Fatalf("block sparsity increased with block size: bs=%d s=%v prev=%v", bs, s, prev)
		}
		prev = s
	}
}
