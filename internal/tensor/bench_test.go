package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks grounding Fig 20 (bitmap computation cost vs block size) on
// the real implementation.

func benchTensor(n int, density float64, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(n)
	for i := range d.Data {
		if rng.Float64() < density {
			d.Data[i] = float32(rng.NormFloat64())
		}
	}
	return d
}

func BenchmarkComputeBitmap(b *testing.B) {
	d := benchTensor(1<<22, 0.3, 1) // 16 MB
	for _, bs := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("bs=%d", bs), func(b *testing.B) {
			b.SetBytes(int64(4 * d.Len()))
			for i := 0; i < b.N; i++ {
				ComputeBitmap(d, bs)
			}
		})
	}
}

func BenchmarkComputeBitmapSerial(b *testing.B) {
	d := benchTensor(1<<22, 0.3, 1)
	b.SetBytes(int64(4 * d.Len()))
	for i := 0; i < b.N; i++ {
		ComputeBitmapSerial(d, 256)
	}
}

func BenchmarkDenseAdd(b *testing.B) {
	x := benchTensor(1<<20, 1, 2)
	y := benchTensor(1<<20, 1, 3)
	b.SetBytes(int64(4 * x.Len()))
	for i := 0; i < b.N; i++ {
		x.Add(y)
	}
}

func BenchmarkFromDense(b *testing.B) {
	d := benchTensor(1<<20, 0.05, 4)
	b.SetBytes(int64(4 * d.Len()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FromDense(d)
	}
}

func BenchmarkCOOAdd(b *testing.B) {
	x := FromDense(benchTensor(1<<20, 0.02, 5))
	y := FromDense(benchTensor(1<<20, 0.02, 6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.AddCOO(y)
	}
}
