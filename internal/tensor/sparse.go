package tensor

import (
	"fmt"
	"sort"
)

// COO is a sparse tensor in coordinate-list format: Keys holds the indices
// of non-zero elements in strictly increasing order and Values holds the
// corresponding values. Dim is the logical length of the dense equivalent.
type COO struct {
	Dim    int
	Keys   []int32
	Values []float32
}

// NewCOO returns an empty sparse tensor of logical dimension dim.
func NewCOO(dim int) *COO {
	return &COO{Dim: dim}
}

// Len reports the number of stored (non-zero) entries.
func (s *COO) Len() int { return len(s.Keys) }

// NNZBytes returns the wire size of the sparse representation assuming
// 4-byte keys and 4-byte values, as in the paper's cost model (c_i = c_v = 4).
func (s *COO) NNZBytes() int { return 8 * len(s.Keys) }

// Append adds a (key, value) entry. Keys must be appended in strictly
// increasing order; Append panics otherwise to catch construction bugs.
func (s *COO) Append(key int32, value float32) {
	if n := len(s.Keys); n > 0 && s.Keys[n-1] >= key {
		panic(fmt.Sprintf("tensor: COO keys must be strictly increasing, got %d after %d", key, s.Keys[n-1]))
	}
	s.Keys = append(s.Keys, key)
	s.Values = append(s.Values, value)
}

// Clone returns a deep copy of s.
func (s *COO) Clone() *COO {
	c := &COO{
		Dim:    s.Dim,
		Keys:   make([]int32, len(s.Keys)),
		Values: make([]float32, len(s.Values)),
	}
	copy(c.Keys, s.Keys)
	copy(c.Values, s.Values)
	return c
}

// ToDense materializes the dense representation. This is the "sparse to
// dense" conversion whose cost Figure 8 of the paper charges to AGsparse
// and SparCML.
func (s *COO) ToDense() *Dense {
	d := NewDense(s.Dim)
	for i, k := range s.Keys {
		d.Data[k] = s.Values[i]
	}
	return d
}

// FromDense extracts the non-zero elements of d into a new COO tensor.
// This is the "dense to sparse" conversion of Figure 8.
func FromDense(d *Dense) *COO {
	s := NewCOO(d.Len())
	for i, v := range d.Data {
		if v != 0 {
			s.Keys = append(s.Keys, int32(i))
			s.Values = append(s.Values, v)
		}
	}
	return s
}

// AddCOO merges other into s, summing values at equal keys. Both inputs
// must have sorted keys; the result remains sorted. The merged result may
// be denser than either input (the SparCML m > rho switch condition).
func (s *COO) AddCOO(other *COO) *COO {
	out := &COO{Dim: s.Dim}
	out.Keys = make([]int32, 0, len(s.Keys)+len(other.Keys))
	out.Values = make([]float32, 0, len(s.Values)+len(other.Values))
	i, j := 0, 0
	for i < len(s.Keys) && j < len(other.Keys) {
		switch {
		case s.Keys[i] < other.Keys[j]:
			out.Keys = append(out.Keys, s.Keys[i])
			out.Values = append(out.Values, s.Values[i])
			i++
		case s.Keys[i] > other.Keys[j]:
			out.Keys = append(out.Keys, other.Keys[j])
			out.Values = append(out.Values, other.Values[j])
			j++
		default:
			out.Keys = append(out.Keys, s.Keys[i])
			out.Values = append(out.Values, s.Values[i]+other.Values[j])
			i++
			j++
		}
	}
	out.Keys = append(out.Keys, s.Keys[i:]...)
	out.Values = append(out.Values, s.Values[i:]...)
	out.Keys = append(out.Keys, other.Keys[j:]...)
	out.Values = append(out.Values, other.Values[j:]...)
	return out
}

// Normalize sorts entries by key and coalesces duplicate keys by summing.
// Useful after bulk construction from unsorted input.
func (s *COO) Normalize() {
	if len(s.Keys) == 0 {
		return
	}
	type kv struct {
		k int32
		v float32
	}
	pairs := make([]kv, len(s.Keys))
	for i := range s.Keys {
		pairs[i] = kv{s.Keys[i], s.Values[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	s.Keys = s.Keys[:0]
	s.Values = s.Values[:0]
	for _, p := range pairs {
		if n := len(s.Keys); n > 0 && s.Keys[n-1] == p.k {
			s.Values[n-1] += p.v
		} else {
			s.Keys = append(s.Keys, p.k)
			s.Values = append(s.Values, p.v)
		}
	}
}
