package tensor

import (
	"math/bits"
	"runtime"
	"sync"
)

// Bitmap records which blocks of a tensor contain at least one non-zero
// element: bit b is set iff block b is non-zero. It is the Go counterpart
// of the paper's GPU bitmap kernel (Appendix B.1): one bit per block,
// computed with a parallel scan.
type Bitmap struct {
	bits      []uint64
	numBlocks int
}

// NewBitmap returns an all-zero bitmap for numBlocks blocks.
func NewBitmap(numBlocks int) *Bitmap {
	return &Bitmap{
		bits:      make([]uint64, (numBlocks+63)/64),
		numBlocks: numBlocks,
	}
}

// NumBlocks reports the number of blocks the bitmap covers.
func (m *Bitmap) NumBlocks() int { return m.numBlocks }

// Set marks block b non-zero.
func (m *Bitmap) Set(b int) { m.bits[b>>6] |= 1 << (uint(b) & 63) }

// Clear marks block b zero.
func (m *Bitmap) Clear(b int) { m.bits[b>>6] &^= 1 << (uint(b) & 63) }

// Get reports whether block b is marked non-zero.
func (m *Bitmap) Get(b int) bool { return m.bits[b>>6]&(1<<(uint(b)&63)) != 0 }

// Count returns the number of non-zero blocks.
func (m *Bitmap) Count() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// BlockSparsity returns the fraction of all-zero blocks in [0,1].
func (m *Bitmap) BlockSparsity() float64 {
	if m.numBlocks == 0 {
		return 0
	}
	return 1 - float64(m.Count())/float64(m.numBlocks)
}

// NextSet returns the index of the first set bit at or after from, or -1 if
// none. This is the worker's "next non-zero block" lookup in Algorithm 1.
func (m *Bitmap) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= m.numBlocks {
		return -1
	}
	wi := from >> 6
	w := m.bits[wi] &^ ((1 << (uint(from) & 63)) - 1)
	for {
		if w != 0 {
			b := wi<<6 + bits.TrailingZeros64(w)
			if b >= m.numBlocks {
				return -1
			}
			return b
		}
		wi++
		if wi >= len(m.bits) {
			return -1
		}
		w = m.bits[wi]
	}
}

// Or merges other into m (block-wise union). Panics if sizes differ.
func (m *Bitmap) Or(other *Bitmap) {
	if other.numBlocks != m.numBlocks {
		panic("tensor: bitmap size mismatch")
	}
	for i, w := range other.bits {
		m.bits[i] |= w
	}
}

// Clone returns a deep copy.
func (m *Bitmap) Clone() *Bitmap {
	c := NewBitmap(m.numBlocks)
	copy(c.bits, m.bits)
	return c
}

// ComputeBitmap scans the dense tensor t with block size bs and returns the
// non-zero-block bitmap. The scan is sharded across GOMAXPROCS goroutines
// (the stand-in for the paper's CUDA kernel); shard boundaries are aligned
// to multiples of 64 blocks so shards never write the same word.
func ComputeBitmap(t *Dense, bs int) *Bitmap {
	nb := t.NumBlocks(bs)
	m := NewBitmap(nb)
	workers := runtime.GOMAXPROCS(0)
	// Each shard handles a contiguous range of bitmap words.
	wordsPerShard := (len(m.bits) + workers - 1) / workers
	if wordsPerShard == 0 {
		wordsPerShard = 1
	}
	var wg sync.WaitGroup
	for w0 := 0; w0 < len(m.bits); w0 += wordsPerShard {
		w1 := w0 + wordsPerShard
		if w1 > len(m.bits) {
			w1 = len(m.bits)
		}
		wg.Add(1)
		go func(w0, w1 int) {
			defer wg.Done()
			firstBlock := w0 << 6
			lastBlock := w1 << 6
			if lastBlock > nb {
				lastBlock = nb
			}
			for b := firstBlock; b < lastBlock; b++ {
				if !isZeroBlock(t.Block(b, bs)) {
					m.bits[b>>6] |= 1 << (uint(b) & 63)
				}
			}
		}(w0, w1)
	}
	wg.Wait()
	return m
}

// ComputeBitmapSerial is the single-goroutine variant, used by the bitmap
// cost benchmark (Fig 20) to expose the raw per-element scan cost.
func ComputeBitmapSerial(t *Dense, bs int) *Bitmap {
	nb := t.NumBlocks(bs)
	m := NewBitmap(nb)
	for b := 0; b < nb; b++ {
		if !isZeroBlock(t.Block(b, bs)) {
			m.Set(b)
		}
	}
	return m
}

func isZeroBlock(v []float32) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// DensityWithinBlocks returns the average fraction of non-zero elements
// within the non-zero blocks of t (Fig 16, right panel). Returns 0 when the
// tensor has no non-zero block.
func DensityWithinBlocks(t *Dense, bs int) float64 {
	nb := t.NumBlocks(bs)
	var nzBlocks int
	var density float64
	for b := 0; b < nb; b++ {
		blk := t.Block(b, bs)
		nz := 0
		for _, v := range blk {
			if v != 0 {
				nz++
			}
		}
		if nz > 0 {
			nzBlocks++
			density += float64(nz) / float64(len(blk))
		}
	}
	if nzBlocks == 0 {
		return 0
	}
	return density / float64(nzBlocks)
}
