package protocol

import (
	"fmt"
	"math/rand"
	"time"

	"omnireduce/internal/obs"
	"omnireduce/internal/wire"
)

// WorkerStats counts one machine's protocol traffic. The driver is
// responsible for publishing these (internal/core mirrors them into its
// atomic Stats; the simulator reads them directly after the run).
type WorkerStats struct {
	BlocksSent    int64 // non-bootstrap data blocks transmitted
	BlocksSkipped int64 // zero blocks passed over by the next-non-zero look-ahead
	PacketsSent   int64
	BytesSent     int64 // encoded packet bytes, including retransmissions
	Retransmits   int64 // timer-driven resends, distinct from PacketsSent
	AcksSent      int64 // empty payload packets (unreliable mode)
	ResultsRecvd  int64
	StaleResults  int64 // duplicate or out-of-round results filtered out
	Backoffs      int64 // retransmissions sent at a backed-off (>base) timeout
}

// wStream is the per-stream worker state for one AllReduce. The struct
// (and its next-offset scratch and packet shells) is retained across
// collectives by the owning machine, so the steady state re-sends through
// warmed arrays instead of remaking them.
type wStream struct {
	idx      int
	lo, hi   int // global block range (shard)
	cols     int
	next     []int // per-column next unsent non-zero global block (-1 none)
	ver      uint8 // round number mod 256 of the last sent packet
	done     bool
	last     *wire.Packet // last transmitted packet, for retransmission
	lastSize int
	sentAt   time.Duration
	retries  int           // retransmissions of the current packet
	timeout  time.Duration // current loss-detection timer (backs off)

	// shells are the stream's two reusable outbound packets, flipped each
	// send: the shell emitted for round r is only rebuilt at round r+2, by
	// which time the driver has long consumed it (the Emit contract says
	// consume before the next machine call, and round r+2 is two calls
	// later). `last` always points at the newest shell, so retransmission
	// replays it untouched.
	shells [2]wire.Packet
	flip   int
}

// shell flips to the stream's other packet shell and returns it truncated,
// with Nexts resized to the stream's column count.
func (st *wStream) shell() *wire.Packet {
	st.flip ^= 1
	p := &st.shells[st.flip]
	if cap(p.Nexts) < st.cols {
		p.Nexts = make([]uint32, st.cols)
	}
	p.Nexts = p.Nexts[:st.cols]
	p.Blocks = p.Blocks[:0]
	return p
}

// WorkerMachine is the worker side of one collective operation: Algorithm
// 1's streaming (reliable mode) or Algorithm 2's versioned rounds with
// acks and retransmission policy (unreliable mode), over the §3.1.1 stream
// shards and §3.2 fused columns.
//
// The machine is purely event-driven: Start emits the bootstrap packets,
// HandlePacket consumes one aggregator result and emits the next round's
// packets, HandleTimeout retransmits overdue packets. All times are
// driver-supplied durations from an arbitrary fixed origin (the live
// driver uses time.Since(opStart); the simulator uses virtual time).
// Methods must not be called concurrently.
//
// Machines are reusable: GetWorkerMachine/Recycle cycle one machine (with
// its stream tables and packet shells) through consecutive collectives,
// and init re-arms it exactly like NewWorkerMachine.
type WorkerMachine struct {
	cfg     Config
	id      int
	tid     uint32
	view    TensorView
	streams []*wStream
	active  int
	started bool
	rng     *rand.Rand // retransmission jitter; nil in reliable mode
	stats   WorkerStats
}

// NewWorkerMachine creates the machine for worker workerID's participation
// in collective tensorID. The jitter source is seeded deterministically
// per (worker, tensor) so reruns of a job schedule identical
// retransmission patterns.
func NewWorkerMachine(cfg Config, workerID int, tensorID uint32) *WorkerMachine {
	m := &WorkerMachine{}
	m.init(cfg, workerID, tensorID)
	return m
}

// init re-arms the machine for a new collective, preserving warmed stream
// state (shards are recomputed by Start). It is NewWorkerMachine's body
// and the pool's reset hook.
func (m *WorkerMachine) init(cfg Config, workerID int, tensorID uint32) {
	cfg = cfg.WithDefaults()
	m.cfg = cfg
	m.id = workerID
	m.tid = tensorID
	m.view = nil
	m.active = 0
	m.started = false
	m.stats = WorkerStats{}
	if !cfg.Reliable {
		seed := int64(workerID)<<32 ^ int64(tensorID)
		if m.rng == nil {
			m.rng = rand.New(rand.NewSource(seed))
		} else {
			m.rng.Seed(seed)
		}
	}
}

// Stats returns a copy of the machine's traffic counters.
func (m *WorkerMachine) Stats() WorkerStats { return m.stats }

// Done reports whether every stream has received its final result.
func (m *WorkerMachine) Done() bool { return m.started && m.active == 0 }

func (m *WorkerMachine) dtype() uint8 {
	if m.cfg.HalfPrecision {
		return wire.DTypeF16
	}
	return wire.DTypeF32
}

func (m *WorkerMachine) nonZero(b int) bool {
	if m.cfg.ForceDense {
		return true
	}
	return m.view.NonZero(b)
}

// Start begins the collective over view, emitting one bootstrap packet per
// stream into eb: the first block of every column is sent unconditionally
// (Algorithm 1 line 5 generalized to fusion), with the per-column next
// non-zero offsets piggybacked.
func (m *WorkerMachine) Start(view TensorView, now time.Duration, eb *EmitBuf) {
	m.view = view
	m.started = true
	nb := view.NumBlocks()
	if nb == 0 {
		m.streams = m.streams[:0]
		return
	}
	eff := EffectiveStreams(m.cfg.Streams, nb)
	for cap(m.streams) < eff {
		m.streams = append(m.streams[:cap(m.streams)], nil)
	}
	m.streams = m.streams[:eff]
	for s := 0; s < eff; s++ {
		lo, hi := Shard(s, eff, nb)
		cols := m.cfg.FusionWidth
		if hi-lo < cols {
			cols = hi - lo
		}
		if cols == 0 {
			m.streams[s] = nil
			continue // empty shard (cannot happen after EffectiveStreams)
		}
		st := m.streams[s]
		if st == nil {
			st = &wStream{}
			m.streams[s] = st
		}
		st.idx, st.lo, st.hi, st.cols = s, lo, hi, cols
		st.next = st.next[:0]
		st.ver = 0
		st.done = false
		st.last = nil
		st.lastSize = 0
		st.sentAt = 0
		st.retries = 0
		st.timeout = 0
		m.active++

		p := st.shell()
		p.Type = wire.TypeData
		p.Version = 0
		p.DType = m.dtype()
		p.Slot = uint16(s)
		p.WID = uint16(m.id)
		p.TensorID = m.tid
		p.BlockSize = uint32(m.cfg.BlockSize)
		for c := 0; c < cols; c++ {
			first := FirstInColumn(lo, hi, c, cols)
			if first < 0 {
				st.next = append(st.next, -1)
				p.Nexts[c] = wire.Inf(c)
				continue
			}
			p.Blocks = append(p.Blocks, wire.Block{
				Index: uint32(first),
				Data:  view.Block(first),
			})
			st.next = append(st.next, m.advanceNext(st, c, first))
			p.Nexts[c] = NextOffsetWire(st.next[c], c)
		}
		m.send(st, p, now, eb)
	}
}

// HandlePacket consumes one aggregator result, appending the next round's
// packets (if any) to eb. Stale or duplicate results are filtered (counted
// in StaleResults) with no emits; protocol violations return an error.
func (m *WorkerMachine) HandlePacket(p *wire.Packet, now time.Duration, eb *EmitBuf) error {
	if p.Type != wire.TypeResult {
		return fmt.Errorf("protocol: worker %d: unexpected message type %d", m.id, p.Type)
	}
	if p.TensorID != m.tid {
		m.stats.StaleResults++
		return nil // stale result from a previous tensor
	}
	if int(p.Slot) >= len(m.streams) || m.streams[p.Slot] == nil {
		return fmt.Errorf("protocol: worker %d: result for unknown stream %d", m.id, p.Slot)
	}
	st := m.streams[p.Slot]
	if st.done {
		m.stats.StaleResults++
		return nil // duplicate final result
	}
	if !m.cfg.Reliable && p.Version != st.ver {
		m.stats.StaleResults++
		return nil // duplicate of an already-processed round
	}
	return m.processResult(st, p, now, eb)
}

// processResult applies a result to the local view and builds the next
// round: contribute every column whose requested next block equals our
// local next non-zero block.
func (m *WorkerMachine) processResult(st *wStream, p *wire.Packet, now time.Duration, eb *EmitBuf) error {
	m.stats.ResultsRecvd++
	for _, b := range p.Blocks {
		m.view.SetBlock(int(b.Index), b.Data)
	}
	if p.Done() {
		st.done = true
		st.last = nil
		m.active--
		return nil
	}

	resp := st.shell()
	resp.Type = wire.TypeData
	resp.Version = st.ver + 1 // round counter, wraps mod 256
	resp.DType = m.dtype()
	resp.Slot = p.Slot
	resp.WID = uint16(m.id)
	resp.TensorID = m.tid
	resp.BlockSize = uint32(m.cfg.BlockSize)
	st.ver = resp.Version
	contributes := false
	for c := 0; c < st.cols; c++ {
		req := p.Nexts[c]
		if wire.IsInf(req) {
			resp.Nexts[c] = wire.Inf(c)
			continue
		}
		if st.next[c] >= 0 && int(req) == st.next[c] {
			blk := st.next[c]
			resp.Blocks = append(resp.Blocks, wire.Block{
				Index: uint32(blk),
				Data:  m.view.Block(blk),
			})
			st.next[c] = m.advanceNext(st, c, blk)
			contributes = true
			m.stats.BlocksSent++
		} else if st.next[c] >= 0 && int(req) > st.next[c] {
			return fmt.Errorf("protocol: worker %d stream %d col %d: aggregator requested %d past local next %d",
				m.id, st.idx, c, req, st.next[c])
		}
		resp.Nexts[c] = NextOffsetWire(st.next[c], c)
	}
	if m.cfg.Reliable {
		if contributes {
			m.send(st, resp, now, eb)
			return nil
		}
		// Silent round: the aggregator advances without us (Algorithm 1's
		// "otherwise the worker awaits a further packet").
		st.last = nil
		return nil
	}
	// Unreliable mode: always respond, with an empty ack if we have no
	// block to contribute (Algorithm 2 lines 18-21).
	if !contributes {
		m.stats.AcksSent++
	}
	m.send(st, resp, now, eb)
	return nil
}

// HandleTimeout retransmits every stream whose loss-detection timer has
// expired at time now, backing the timer off exponentially with jitter.
// Retransmissions are appended to eb; it returns an error when a stream
// exhausts MaxRetries.
func (m *WorkerMachine) HandleTimeout(now time.Duration, eb *EmitBuf) error {
	if m.cfg.Reliable {
		return nil
	}
	for _, st := range m.streams {
		if st == nil || st.done || st.last == nil {
			continue
		}
		if now-st.sentAt < st.timeout {
			continue
		}
		if m.cfg.MaxRetries > 0 && st.retries >= m.cfg.MaxRetries {
			return fmt.Errorf("protocol: worker %d stream %d: no response after %d retransmissions",
				m.id, st.idx, st.retries)
		}
		st.retries++
		st.sentAt = now
		m.stats.PacketsSent++
		m.stats.Retransmits++
		m.stats.BytesSent += int64(st.lastSize)
		obs.EmitSlot(obs.EvRetransmit, int32(m.id), m.tid, uint16(st.idx), st.last.Version, int64(st.lastSize))
		eb.Append(Emit{Dst: m.cfg.AggregatorFor(st.idx), Packet: st.last, Size: st.lastSize, Retransmit: true})
		m.backoff(st)
	}
	return nil
}

// NextTimeout returns the earliest pending retransmission deadline, if
// any. Drivers arm their timer (or schedule a virtual-time event) for it;
// a wakeup earlier than every deadline is harmless (HandleTimeout
// re-checks). Reliable mode never requests timers.
func (m *WorkerMachine) NextTimeout() (time.Duration, bool) {
	if m.cfg.Reliable {
		return 0, false
	}
	var earliest time.Duration
	ok := false
	for _, st := range m.streams {
		if st == nil || st.done || st.last == nil {
			continue
		}
		d := st.sentAt + st.timeout
		if !ok || d < earliest {
			earliest, ok = d, true
		}
	}
	return earliest, ok
}

// backoff grows a stream's retransmission timeout exponentially with
// jitter, up to the configured ceiling, after a timer expiry. A fixed
// timer under sustained loss retransmits into the same congested or
// partitioned link at full rate; backing off (and jittering, so workers
// that lost the same multicast do not resynchronize) is the standard
// hardening the paper's fixed-timer description leaves out.
func (m *WorkerMachine) backoff(st *wStream) {
	next := time.Duration(float64(st.timeout) * m.cfg.RetransmitBackoff)
	if next > m.cfg.RetransmitCeiling {
		next = m.cfg.RetransmitCeiling
	}
	if j := m.cfg.RetransmitJitter; j > 0 && m.rng != nil {
		f := 1 + j*(2*m.rng.Float64()-1)
		next = time.Duration(float64(next) * f)
	}
	if next < m.cfg.RetransmitTimeout {
		next = m.cfg.RetransmitTimeout
	}
	if next > st.timeout {
		m.stats.Backoffs++
	}
	st.timeout = next
}

// advanceNext moves a column's next-non-zero pointer strictly past blk
// and accounts for the look-ahead: every zero block the scan passes over
// is skipped exactly once per worker, which is the paper's bandwidth
// saving and the quantity the timeline analyzer's skip ratio measures.
func (m *WorkerMachine) advanceNext(st *wStream, c, blk int) int {
	next := NextNonZeroInColumn(m.nonZero, blk, st.lo, st.hi, c, st.cols)
	var skipped int
	if next >= 0 {
		skipped = (next-blk)/st.cols - 1
	} else {
		skipped = (st.hi - 1 - blk) / st.cols
	}
	if skipped > 0 {
		m.stats.BlocksSkipped += int64(skipped)
		obs.EmitSlot(obs.EvLookaheadSkip, int32(m.id), m.tid, uint16(st.idx), st.ver, int64(skipped))
	}
	return next
}

// send records p as the stream's outstanding packet and appends its emit
// to eb.
func (m *WorkerMachine) send(st *wStream, p *wire.Packet, now time.Duration, eb *EmitBuf) {
	st.last = p
	st.lastSize = wire.EncodedPacketSize(p)
	st.sentAt = now
	st.retries = 0
	st.timeout = m.cfg.RetransmitTimeout // fresh packet: reset backoff
	m.stats.PacketsSent++
	m.stats.BytesSent += int64(st.lastSize)
	obs.EmitSlot(obs.EvSlotIssue, int32(m.id), m.tid, uint16(st.idx), p.Version, int64(len(p.Blocks)))
	eb.Append(Emit{Dst: m.cfg.AggregatorFor(st.idx), Packet: p, Size: st.lastSize})
}
