//go:build race

package protocol

const raceEnabled = true
