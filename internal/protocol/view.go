package protocol

import (
	"errors"
	"fmt"
	"time"

	"omnireduce/internal/obs"
)

// This file implements epoch-numbered group views: the membership layer
// that lets a running deployment survive aggregator loss (ROADMAP item 2,
// motivated by Flare's fault-tolerant aggregation trees and SparCML's
// changing participant sets). A View names the participant set of one
// epoch; the Membership machine rules on epoch validity and sequences
// view changes (failover promotions, planned joins). Like the protocol
// machines it is pure state — no clocks, goroutines, or I/O — so the live
// driver and the simulator share it verbatim and the view-epoch edge
// cases are testable without a transport.

// View is one epoch of group membership: the worker node IDs and the
// aggregator node IDs serving the streams, in stream round-robin order
// (stream s is served by Aggregators[s % len(Aggregators)], exactly
// Config.AggregatorFor). Epoch 0 is reserved for "no view configured" —
// the legacy static-membership mode in which epoch enforcement is off.
type View struct {
	Epoch       uint32
	Workers     []int
	Aggregators []int
}

// Clone returns a deep copy of the view.
func (v View) Clone() View {
	return View{
		Epoch:       v.Epoch,
		Workers:     append([]int(nil), v.Workers...),
		Aggregators: append([]int(nil), v.Aggregators...),
	}
}

// HasWorker reports whether node id is a member worker of this view.
func (v View) HasWorker(id int) bool {
	for _, w := range v.Workers {
		if w == id {
			return true
		}
	}
	return false
}

// HasAggregator reports whether node id serves streams in this view.
func (v View) HasAggregator(id int) bool {
	for _, a := range v.Aggregators {
		if a == id {
			return true
		}
	}
	return false
}

// Validate reports structural errors (an installable view needs a
// non-zero epoch and at least one aggregator).
func (v View) Validate() error {
	if v.Epoch == 0 {
		return fmt.Errorf("protocol: view epoch 0 is reserved for static membership")
	}
	if len(v.Aggregators) == 0 {
		return fmt.Errorf("protocol: view %d has no aggregators", v.Epoch)
	}
	return nil
}

// ErrStaleEpoch is the sentinel wrapped by every StaleEpochError:
// errors.Is(err, ErrStaleEpoch) identifies a typed stale-view refusal.
var ErrStaleEpoch = errors.New("protocol: stale view epoch")

// StaleEpochError is the typed refusal for traffic bound to an epoch the
// group has moved past. It is never a silent drop: the refusing side
// answers with its current view (anti-entropy — the refusal is also how a
// worker that missed the view announcement learns the new membership).
type StaleEpochError struct {
	// Got is the sender's bound epoch; Current is the refusing side's.
	Got, Current uint32
	// TensorID is the refused operation, when the refusal answers a data
	// packet (0 for control traffic).
	TensorID uint32
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("protocol: stale view epoch %d (current %d, tensor %#x)",
		e.Got, e.Current, e.TensorID)
}

func (e *StaleEpochError) Unwrap() error { return ErrStaleEpoch }

// Verdict is Membership's ruling on one observed epoch.
type Verdict uint8

const (
	// VerdictCurrent admits traffic bound to the live epoch.
	VerdictCurrent Verdict = iota
	// VerdictStale refuses traffic bound to a concluded epoch; the
	// refusal must be typed (StaleEpochError), never a silent drop.
	VerdictStale
	// VerdictFuture defers traffic bound to an epoch this node has not
	// reached (it is the one that is behind; it must catch up before
	// ruling).
	VerdictFuture
)

func (v Verdict) String() string {
	switch v {
	case VerdictCurrent:
		return "current"
	case VerdictStale:
		return "stale"
	case VerdictFuture:
		return "future"
	default:
		return "unknown"
	}
}

// MembershipStats counts view-change activity.
type MembershipStats struct {
	ViewChanges   int64 // epochs advanced (failovers + planned changes)
	Failovers     int64 // aggregator replacements
	StaleRefusals int64 // typed stale-epoch refusals issued
	DeferredJoins int64 // workers queued for the next epoch
}

// Membership sequences a group's epoch-numbered views: it rules on
// observed epochs, queues joining workers for the next epoch (a worker
// arriving mid-collective must not change the live epoch's participant
// set — in-flight rounds fold exactly the registered contributor set),
// and promotes standby aggregators on failover. One instance lives
// wherever view decisions are made (each aggregator driver, the chaos
// orchestrator, tests); determinism of the transition function keeps
// replicas in agreement given the same event sequence.
type Membership struct {
	cur      View
	standbys []int // failover chain, consumed front to back
	pending  []int // workers awaiting admission at the next epoch
	stats    MembershipStats
}

// NewMembership starts a membership machine at the given initial view.
func NewMembership(initial View) (*Membership, error) {
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	return &Membership{cur: initial.Clone()}, nil
}

// View returns (a copy of) the current view.
func (g *Membership) View() View { return g.cur.Clone() }

// Epoch returns the current epoch.
func (g *Membership) Epoch() uint32 { return g.cur.Epoch }

// Stats returns a copy of the activity counters.
func (g *Membership) Stats() MembershipStats { return g.stats }

// AddStandby appends an aggregator node to the failover chain.
func (g *Membership) AddStandby(id int) { g.standbys = append(g.standbys, id) }

// Standbys returns the remaining failover chain.
func (g *Membership) Standbys() []int { return append([]int(nil), g.standbys...) }

// Check rules on traffic bound to the given epoch.
func (g *Membership) Check(epoch uint32) Verdict {
	switch {
	case epoch == g.cur.Epoch:
		return VerdictCurrent
	case epoch < g.cur.Epoch:
		return VerdictStale
	default:
		return VerdictFuture
	}
}

// Refuse issues the typed refusal for a stale-epoch packet (and counts
// it). Callers check the verdict first; Refuse on a non-stale epoch
// still returns the error describing the mismatch.
func (g *Membership) Refuse(epoch, tensorID uint32) *StaleEpochError {
	g.stats.StaleRefusals++
	return &StaleEpochError{Got: epoch, Current: g.cur.Epoch, TensorID: tensorID}
}

// Join queues a worker for admission at the next epoch and returns that
// epoch. A worker already in the current view (or already queued) is not
// re-queued; its admission epoch is returned unchanged.
func (g *Membership) Join(worker int) uint32 {
	if g.cur.HasWorker(worker) {
		return g.cur.Epoch
	}
	for _, p := range g.pending {
		if p == worker {
			return g.cur.Epoch + 1
		}
	}
	g.pending = append(g.pending, worker)
	g.stats.DeferredJoins++
	return g.cur.Epoch + 1
}

// Failover replaces a dead aggregator with the next standby in the
// chain, advancing the epoch (and admitting any queued joins — a view
// change is a view change). Returns the new view.
func (g *Membership) Failover(dead int) (View, error) {
	pos := -1
	for i, a := range g.cur.Aggregators {
		if a == dead {
			pos = i
			break
		}
	}
	if pos < 0 {
		return View{}, fmt.Errorf("protocol: failover: node %d is not an aggregator of epoch %d", dead, g.cur.Epoch)
	}
	if len(g.standbys) == 0 {
		return View{}, fmt.Errorf("protocol: failover: no standby left to replace aggregator %d", dead)
	}
	promoted := g.standbys[0]
	g.standbys = g.standbys[1:]
	// The standby takes the dead node's exact round-robin position, so
	// AggregatorFor(stream) re-resolves every stream it served and no
	// other stream moves.
	g.cur.Aggregators[pos] = promoted
	g.stats.Failovers++
	g.advance()
	return g.View(), nil
}

// Advance concludes a planned membership change: the epoch increments
// and pending joins are admitted. Returns the new view.
func (g *Membership) Advance() View {
	g.advance()
	return g.View()
}

func (g *Membership) advance() {
	g.cur.Epoch++
	g.cur.Workers = append(g.cur.Workers, g.pending...)
	g.pending = g.pending[:0]
	g.stats.ViewChanges++
	obs.Emit(obs.EvViewChange, 0, int64(g.cur.Epoch))
}

// Rebind re-resolves every stream's aggregator against a new aggregator
// list after a view change: the machine swaps its routing table and
// replays each non-done stream's outstanding packet to its (possibly
// new) destination, with retries and backoff reset — the new incarnation
// has never timed us out. Replays count as retransmissions.
//
// Replay is only performed in unreliable mode, where Algorithm 2's
// versioned rounds make it idempotent (the restored aggregator filters
// duplicates by round and seen-set, and answers genuinely lost rounds
// from lastRes or its archive). In reliable mode the swap still applies
// to future sends, but nothing is replayed: Algorithm 1 has no dedup
// state, so a blind resend could double-merge — reliable-mode failover
// is limited to graceful handoff at a round boundary (see DESIGN §12).
func (m *WorkerMachine) Rebind(aggs []int, now time.Duration, eb *EmitBuf) {
	// cfg.Aggregators may share backing with the driver's config; never
	// mutate it in place.
	m.cfg.Aggregators = append([]int(nil), aggs...)
	if m.cfg.Reliable || !m.started {
		return
	}
	for _, st := range m.streams {
		if st == nil || st.done || st.last == nil {
			continue
		}
		st.sentAt = now
		st.retries = 0
		st.timeout = m.cfg.RetransmitTimeout
		m.stats.PacketsSent++
		m.stats.Retransmits++
		m.stats.BytesSent += int64(st.lastSize)
		obs.EmitSlot(obs.EvRetransmit, int32(m.id), m.tid, uint16(st.idx), st.last.Version, int64(st.lastSize))
		eb.Append(Emit{Dst: m.cfg.AggregatorFor(st.idx), Packet: st.last, Size: st.lastSize, Retransmit: true})
	}
}
