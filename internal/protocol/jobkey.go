package protocol

import "hash/fnv"

// Tensor-ID namespacing (multi-tenant collective service).
//
// The 32-bit wire tensor ID is split into a job namespace (high bits) and
// a per-job operation sequence (low bits):
//
//	tid = namespace << TidSeqBits | seq
//
// Namespace 0 is the default/legacy namespace: a worker that never opens
// a named job mints tids 1, 2, 3, ... exactly as before this layer
// existed, and every pre-namespace tid parses as (ns 0, seq tid). Named
// jobs derive their namespace deterministically from the (tenant, job)
// identity — every worker of a job computes the same namespace with no
// coordination, which is what lets SPMD workers mint identical tids for
// the same collective — and the aggregator-side registry verifies the
// mapping at job-open time, turning a hash collision between two distinct
// jobs into a typed admission error instead of silent tid interleaving.
const (
	// TidSeqBits is the width of the per-job operation sequence.
	TidSeqBits = 20
	// MaxTidSeq is the largest operation sequence number; a job session
	// exhausting it must be reopened (about one million collectives).
	MaxTidSeq = 1<<TidSeqBits - 1
	// MaxNamespace is the largest job namespace (12 bits).
	MaxNamespace = 1<<(32-TidSeqBits) - 1
)

// TidFor composes a wire tensor ID from a job namespace and an operation
// sequence number.
func TidFor(ns, seq uint32) uint32 {
	return ns<<TidSeqBits | (seq & MaxTidSeq)
}

// TidNamespace extracts the job namespace of a tensor ID.
func TidNamespace(tid uint32) uint32 { return tid >> TidSeqBits }

// TidSeq extracts the per-job operation sequence of a tensor ID.
func TidSeq(tid uint32) uint32 { return tid & MaxTidSeq }

// NamespaceOf derives the tid namespace for a (tenant, job) identity:
// FNV-1a over "tenant\x00job", folded into [1, MaxNamespace]. Namespace 0
// is reserved for the default/legacy job.
func NamespaceOf(tenant, job string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(job))
	return h.Sum32()%MaxNamespace + 1
}
