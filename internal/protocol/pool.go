package protocol

import (
	"sync"
	"sync/atomic"

	"omnireduce/internal/obs"
)

func init() {
	obs.RegisterPool("protocol_worker_machines", WorkerMachinePoolBalance)
	obs.RegisterPool("protocol_agg_slots", AggSlotPoolBalance)
	obs.RegisterPool("protocol_sparse_slots", SparseSlotPoolBalance)
}

// EmitBuf is a caller-owned, reusable emit accumulator. Machines append
// emits to it instead of returning fresh []Emit slices, so a driver that
// keeps one EmitBuf per loop replays the same backing array round after
// round. The contents are valid until the next Reset (drivers Reset
// immediately before each machine call, consume, repeat).
type EmitBuf struct {
	e []Emit
}

// Reset empties the buffer, retaining capacity.
func (b *EmitBuf) Reset() { b.e = b.e[:0] }

// Append adds one emit.
func (b *EmitBuf) Append(e Emit) { b.e = append(b.e, e) }

// Emits returns the accumulated emits. The slice is valid until the next
// Reset or Append.
func (b *EmitBuf) Emits() []Emit { return b.e }

// Len reports the number of accumulated emits.
func (b *EmitBuf) Len() int { return len(b.e) }

// workerMachinePool recycles WorkerMachines (with their stream tables,
// packet shells, and next-offset scratch) across collectives.
var workerMachinePool sync.Pool

var (
	workerMachineGets atomic.Int64
	workerMachinePuts atomic.Int64
	aggSlotGets       atomic.Int64
	aggSlotPuts       atomic.Int64
	sparseSlotGets    atomic.Int64
	sparseSlotPuts    atomic.Int64
)

// GetWorkerMachine returns a pooled worker machine initialized exactly
// like NewWorkerMachine. Callers must Recycle it when the collective
// finishes (and no emitted packet can still be in flight through a
// driver's encoder).
func GetWorkerMachine(cfg Config, workerID int, tensorID uint32) *WorkerMachine {
	workerMachineGets.Add(1)
	obs.Emit(obs.EvMachinePoolGet, tensorID, 0)
	m, _ := workerMachinePool.Get().(*WorkerMachine)
	if m == nil {
		m = &WorkerMachine{}
	}
	m.init(cfg, workerID, tensorID)
	return m
}

// Recycle returns a machine obtained from GetWorkerMachine to the pool.
// The machine must not be used afterwards.
func (m *WorkerMachine) Recycle() {
	workerMachinePuts.Add(1)
	obs.Emit(obs.EvMachinePoolPut, m.tid, 0)
	m.view = nil // drop the tensor reference; keep streams/shells warm
	workerMachinePool.Put(m)
}

// WorkerMachinePoolBalance reports cumulative get/put counts for the
// worker-machine pool (obs leak audit). Every live collective holds
// exactly one machine, so a quiesced system balances.
func WorkerMachinePoolBalance() (gets, puts int64) {
	return workerMachineGets.Load(), workerMachinePuts.Load()
}

// AggSlotPoolBalance reports cumulative get/put counts for aggregator
// dense-slot state (free-listed per machine). gets-puts equals the number
// of currently-open slots across all machines.
func AggSlotPoolBalance() (gets, puts int64) {
	return aggSlotGets.Load(), aggSlotPuts.Load()
}

// SparseSlotPoolBalance is AggSlotPoolBalance for sparse slot state.
func SparseSlotPoolBalance() (gets, puts int64) {
	return sparseSlotGets.Load(), sparseSlotPuts.Load()
}
