package protocol

import (
	"omnireduce/internal/tensor"
	"omnireduce/internal/wire"
)

// Msg is one decoded inbound message for a machine: exactly one of Dense
// or Sparse is non-nil. Drivers decode bytes (or pass simulator payloads
// through) before handing messages to a machine; machines never see
// encoded buffers.
//
// Ownership: an inbound Msg is only guaranteed valid for the duration of
// the HandlePacket call that consumes it. Machines copy whatever they
// need (block payloads into accumulators or tensor views, metadata into
// slot state) and must not retain references to the packet, its Nexts, or
// any Block.Data past the call. This is what lets the live drivers decode
// into recycled packets and scratch arenas (wire.DecodePacketInto) and
// recycle them immediately after HandlePacket returns, keeping the
// steady-state receive path allocation-free. The simulator relies on the
// complementary guarantee: machines never mutate a received packet, so it
// may deliver one decoded packet by reference to many machines.
type Msg struct {
	Dense  *wire.Packet
	Sparse *wire.SparsePacket
}

// Emit is one outbound message requested by a machine: a decoded packet,
// its destination node ID, and the exact number of bytes the wire encoding
// occupies (per internal/wire's encoders). Real drivers call Encode and
// transmit; the simulator deep-copies the packet and charges Size bytes to
// the virtual fabric.
//
// Machines never mutate a packet while it is emitted and never mutate
// received packets, so a single packet value may safely be encoded once
// and sent N times within one consuming burst (aggregator result
// multicasts are pointer-equal across their fan-out).
//
// Ownership: emitted packets belong to the machine, and they are reusable
// shells — the machine recycles a shell two rounds after emitting it
// (double buffering), and emitted payloads may alias the machine's
// TensorView or internal arenas. A driver must therefore CONSUME every
// emit — encode it onto the wire, or deep-copy it — before the next call
// into the emitting machine, and must never mutate or recycle the packet
// itself. The live drivers satisfy this by construction (txBatch encodes
// the whole burst before returning); the simulator copies packets into
// its own pooled shells at route time, because simulated delivery happens
// at a future virtual time.
type Emit struct {
	Dst    int
	Packet *wire.Packet
	Sparse *wire.SparsePacket
	Size   int
	// Retransmit marks timer-driven resends (loss-recovery traffic),
	// distinguishing repairs from first transmissions in driver accounting.
	Retransmit bool
}

// Encode appends the emit's wire encoding to dst and returns the extended
// slice.
func (e *Emit) Encode(dst []byte) []byte {
	if e.Packet != nil {
		return wire.AppendPacket(dst, e.Packet)
	}
	return wire.AppendSparsePacket(dst, e.Sparse)
}

// TensorView is the machines' window onto tensor data. The live driver
// backs it with a real tensor and its non-zero bitmap; the simulator backs
// it with a block-occupancy spec and shared zero-filled payloads, so the
// same machine code runs in both substrates.
type TensorView interface {
	// NumBlocks is the number of BlockSize-element blocks covering the
	// tensor (the final block may be short).
	NumBlocks() int
	// NonZero reports whether block b has any non-zero element.
	NonZero(b int) bool
	// Block returns block b's values; its length is the block's true
	// element count.
	Block(b int) []float32
	// SetBlock overwrites block b with aggregated result values.
	SetBlock(b int, data []float32)
}

// DenseView adapts a dense float32 tensor (plus its block-occupancy
// bitmap) to the TensorView interface. It is the live substrate's view; it
// mutates the underlying slice in place as results arrive.
type DenseView struct {
	t  *tensor.Dense
	bm *tensor.Bitmap
	bs int
	nb int
}

// NewDenseView wraps data with block size bs. When forceDense is set the
// occupancy bitmap is skipped entirely: NonZero must not be consulted (the
// machines do not when Config.ForceDense is set).
func NewDenseView(data []float32, bs int, forceDense bool) *DenseView {
	t := tensor.FromSlice(data)
	v := &DenseView{t: t, bs: bs, nb: t.NumBlocks(bs)}
	if !forceDense {
		v.bm = tensor.ComputeBitmap(t, bs)
	}
	return v
}

// NumBlocks implements TensorView.
func (v *DenseView) NumBlocks() int { return v.nb }

// NonZero implements TensorView.
func (v *DenseView) NonZero(b int) bool { return v.bm.Get(b) }

// Block implements TensorView.
func (v *DenseView) Block(b int) []float32 { return v.t.Block(b, v.bs) }

// SetBlock implements TensorView.
func (v *DenseView) SetBlock(b int, data []float32) { v.t.SetBlock(b*v.bs, data) }
