package protocol

import (
	"errors"
	"testing"
	"time"

	"omnireduce/internal/tensor"
	"omnireduce/internal/wire"
)

// View-epoch edge cases and failover handoff, exercised entirely at the
// machine layer: no transport, no goroutines. The Membership machine is
// pure state, so stale epochs, deferred joins, and standby-chain
// exhaustion are plain table tests; the handoff itself runs on a small
// multi-aggregator pump that kills a machine mid-collective and resumes
// its successor from a Checkpoint/Restore snapshot.

func TestMembershipEdgeCases(t *testing.T) {
	base := View{Epoch: 1, Workers: []int{0, 1, 2}, Aggregators: []int{100, 200}}
	cases := []struct {
		name string
		run  func(t *testing.T, g *Membership)
	}{
		{
			// A packet bound to a concluded epoch draws a typed refusal
			// carrying both epochs and the refused tensor — never a silent
			// drop, and identifiable with errors.Is/As.
			name: "stale-epoch-typed-refusal",
			run: func(t *testing.T, g *Membership) {
				g.Advance() // epoch 1 -> 2
				if v := g.Check(1); v != VerdictStale {
					t.Fatalf("Check(1) = %v, want stale", v)
				}
				err := g.Refuse(1, 0xABC)
				if !errors.Is(err, ErrStaleEpoch) {
					t.Fatalf("refusal does not wrap ErrStaleEpoch: %v", err)
				}
				var se *StaleEpochError
				if !errors.As(err, &se) {
					t.Fatalf("refusal is not a *StaleEpochError: %v", err)
				}
				if se.Got != 1 || se.Current != 2 || se.TensorID != 0xABC {
					t.Fatalf("refusal fields = %+v", se)
				}
				if s := g.Stats(); s.StaleRefusals != 1 {
					t.Fatalf("StaleRefusals = %d, want 1", s.StaleRefusals)
				}
			},
		},
		{
			// An epoch we have not reached is OUR problem, not the
			// sender's: defer, don't refuse.
			name: "future-epoch-deferred",
			run: func(t *testing.T, g *Membership) {
				if v := g.Check(5); v != VerdictFuture {
					t.Fatalf("Check(5) = %v, want future", v)
				}
				if v := g.Check(1); v != VerdictCurrent {
					t.Fatalf("Check(1) = %v, want current", v)
				}
			},
		},
		{
			// A worker joining mid-collective is admitted at the NEXT
			// epoch: the live epoch's contributor set must not change under
			// in-flight rounds.
			name: "join-mid-collective-admitted-next-epoch",
			run: func(t *testing.T, g *Membership) {
				if e := g.Join(7); e != 2 {
					t.Fatalf("Join(7) admission epoch = %d, want 2", e)
				}
				if e := g.Join(7); e != 2 { // idempotent re-join
					t.Fatalf("second Join(7) = %d, want 2", e)
				}
				if g.View().HasWorker(7) {
					t.Fatal("joiner visible in the live epoch")
				}
				if e := g.Join(0); e != 1 { // existing member: admitted now
					t.Fatalf("Join(0) = %d, want 1", e)
				}
				v := g.Advance()
				if v.Epoch != 2 || !v.HasWorker(7) {
					t.Fatalf("post-advance view %+v does not admit the joiner", v)
				}
				if s := g.Stats(); s.DeferredJoins != 1 {
					t.Fatalf("DeferredJoins = %d, want 1", s.DeferredJoins)
				}
			},
		},
		{
			// Two failovers consume the standby chain front to back, each
			// promoted node taking the dead one's exact round-robin
			// position; a third failover has nothing left and must error.
			name: "double-failover-consumes-standby-chain",
			run: func(t *testing.T, g *Membership) {
				g.AddStandby(300)
				g.AddStandby(400)
				v, err := g.Failover(200)
				if err != nil {
					t.Fatal(err)
				}
				if v.Epoch != 2 || v.Aggregators[0] != 100 || v.Aggregators[1] != 300 {
					t.Fatalf("first failover view %+v", v)
				}
				v, err = g.Failover(100)
				if err != nil {
					t.Fatal(err)
				}
				if v.Epoch != 3 || v.Aggregators[0] != 400 || v.Aggregators[1] != 300 {
					t.Fatalf("second failover view %+v", v)
				}
				if _, err = g.Failover(300); err == nil {
					t.Fatal("third failover succeeded with an empty standby chain")
				}
				if s := g.Stats(); s.Failovers != 2 || s.ViewChanges != 2 {
					t.Fatalf("stats = %+v", s)
				}
			},
		},
		{
			name: "failover-of-non-aggregator-refused",
			run: func(t *testing.T, g *Membership) {
				g.AddStandby(300)
				if _, err := g.Failover(7); err == nil {
					t.Fatal("failover of a non-aggregator succeeded")
				}
				if g.Epoch() != 1 {
					t.Fatalf("failed failover advanced the epoch to %d", g.Epoch())
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := NewMembership(base)
			if err != nil {
				t.Fatal(err)
			}
			tc.run(t, g)
		})
	}
}

func TestViewValidate(t *testing.T) {
	if err := (View{Epoch: 0, Aggregators: []int{1}}).Validate(); err == nil {
		t.Fatal("epoch 0 validated")
	}
	if err := (View{Epoch: 1}).Validate(); err == nil {
		t.Fatal("aggregator-less view validated")
	}
	if _, err := NewMembership(View{}); err == nil {
		t.Fatal("NewMembership accepted an invalid view")
	}
}

// multiPump is the trace pump generalized to several aggregator nodes,
// with a kill switch: killing a node checkpoints its machine into a
// fresh standby, drops everything queued toward the corpse, and rebinds
// every worker. Delivery stays synchronous and deterministic.
type multiPump struct {
	t    *testing.T
	cfg  Config
	wms  []*WorkerMachine
	ams  map[int]*AggregatorMachine
	q    []tmsg
	now  time.Duration
	eb   EmitBuf
	aggs []int // current serving list, round-robin order
}

func newMultiPump(t *testing.T, cfg Config, inputs [][]float32) (*multiPump, [][]float32) {
	t.Helper()
	cfg.Workers = len(inputs)
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	p := &multiPump{t: t, cfg: cfg, ams: make(map[int]*AggregatorMachine),
		aggs: append([]int(nil), cfg.Aggregators...)}
	for _, id := range cfg.Aggregators {
		p.ams[id] = NewAggregatorMachine(cfg, id)
	}
	work := make([][]float32, len(inputs))
	for w := range inputs {
		work[w] = append([]float32(nil), inputs[w]...)
		p.wms = append(p.wms, NewWorkerMachine(cfg, w, 1))
	}
	for w, m := range p.wms {
		view := NewDenseView(work[w], cfg.BlockSize, cfg.ForceDense)
		p.eb.Reset()
		m.Start(view, 0, &p.eb)
		p.push(w, p.eb.Emits())
	}
	return p, work
}

func (p *multiPump) push(src int, emits []Emit) {
	for i := range emits {
		p.q = append(p.q, tmsg{src: src, dst: emits[i].Dst, pkt: testClone(emits[i].Packet)})
	}
}

func (p *multiPump) step(budget int) {
	for n := 0; len(p.q) > 0 && n < budget; n++ {
		m := p.q[0]
		p.q = p.q[1:]
		if am := p.ams[m.dst]; am != nil {
			p.eb.Reset()
			if err := am.HandlePacket(Msg{Dense: m.pkt}, &p.eb); err != nil {
				p.t.Fatalf("aggregator %d: %v", m.dst, err)
			}
			p.push(m.dst, p.eb.Emits())
			continue
		}
		if m.dst >= len(p.wms) {
			continue // destined to a dead aggregator: the fabric eats it
		}
		p.eb.Reset()
		if err := p.wms[m.dst].HandlePacket(m.pkt, p.now, &p.eb); err != nil {
			p.t.Fatalf("worker %d: %v", m.dst, err)
		}
		p.push(m.dst, p.eb.Emits())
	}
}

func (p *multiPump) tick() {
	var latest time.Duration
	for _, m := range p.wms {
		if d, ok := m.NextTimeout(); ok && d > latest {
			latest = d
		}
	}
	p.now = latest + time.Nanosecond
	for w, m := range p.wms {
		p.eb.Reset()
		if err := m.HandleTimeout(p.now, &p.eb); err != nil {
			p.t.Fatalf("worker %d timeout: %v", w, err)
		}
		p.push(w, p.eb.Emits())
	}
}

func (p *multiPump) allDone() bool {
	for _, m := range p.wms {
		if !m.Done() {
			return false
		}
	}
	return true
}

// kill checkpoints dead's machine into a fresh standby at node standbyID,
// removes the corpse (in-flight traffic toward it is lost), and rebinds
// every worker to the updated serving list.
func (p *multiPump) kill(dead, standbyID int) {
	ck := p.ams[dead].Checkpoint()
	sm := NewAggregatorMachine(p.cfg, standbyID)
	if err := sm.Restore(ck); err != nil {
		p.t.Fatalf("restore: %v", err)
	}
	delete(p.ams, dead)
	p.ams[standbyID] = sm
	kept := p.q[:0]
	for _, m := range p.q {
		if m.dst != dead {
			kept = append(kept, m)
		}
	}
	p.q = kept
	for i, id := range p.aggs {
		if id == dead {
			p.aggs[i] = standbyID
		}
	}
	for w, m := range p.wms {
		p.eb.Reset()
		m.Rebind(p.aggs, p.now, &p.eb)
		p.push(w, p.eb.Emits())
	}
}

// TestFailoverPumpHandoff kills one of two aggregators mid-collective and
// resumes its successor from the checkpoint. The surviving run must
// converge to results bit-identical to an undisturbed run, the standby
// must complete rounds of its own, and replays landing at the survivor
// must be version-filtered rather than double-merged.
func TestFailoverPumpHandoff(t *testing.T) {
	cfg := Config{
		BlockSize:          4,
		FusionWidth:        4,
		Streams:            2,
		Aggregators:        []int{100, 200},
		DeterministicOrder: true,
		RetransmitTimeout:  time.Millisecond,
	}
	inputs := traceInputs()

	// Reference: same config, no failover.
	ref, refWork := newMultiPump(t, cfg, inputs)
	ref.step(1 << 20)
	if !ref.allDone() {
		t.Fatal("reference run did not converge")
	}

	for _, killAfter := range []int{1, 7, 25} {
		p, work := newMultiPump(t, cfg, inputs)
		p.step(killAfter)
		p.kill(200, 300)
		p.step(1 << 20)
		for i := 0; i < 64 && !p.allDone(); i++ {
			p.tick()
			p.step(1 << 20)
		}
		if !p.allDone() {
			t.Fatalf("killAfter=%d: machines did not converge", killAfter)
		}
		for w := range work {
			for i, v := range work[w] {
				if v != refWork[w][i] {
					t.Fatalf("killAfter=%d: worker %d elem %d: %v != reference %v",
						killAfter, w, i, v, refWork[w][i])
				}
			}
		}
		if s := p.ams[300].Stats(); s.RoundsCompleted == 0 {
			t.Fatalf("killAfter=%d: standby completed no rounds: %+v", killAfter, s)
		}
	}
}

// TestCheckpointRoundTrip snapshots a mid-collective aggregator and
// restores it into a fresh machine; both must answer the remaining trace
// identically (the restored machine replaces the original outright).
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := Config{
		BlockSize:          4,
		FusionWidth:        4,
		Streams:            2,
		Aggregators:        []int{100},
		DeterministicOrder: true,
		RetransmitTimeout:  time.Millisecond,
	}
	inputs := traceInputs()
	p, work := newMultiPump(t, cfg, inputs)
	p.step(9)
	// Swap the live machine for its own checkpoint restored into a clone:
	// pure state transfer, no network involved.
	ck := p.ams[100].Checkpoint()
	clone := NewAggregatorMachine(p.cfg, 100)
	if err := clone.Restore(ck); err != nil {
		t.Fatal(err)
	}
	orig := p.ams[100]
	p.ams[100] = clone
	p.step(1 << 20)
	for i := 0; i < 64 && !p.allDone(); i++ {
		p.tick()
		p.step(1 << 20)
	}
	if !p.allDone() {
		t.Fatal("machines did not converge after restore swap")
	}
	ref := refSum(inputs)
	for w := range work {
		for i, v := range work[w] {
			if v != ref[i] {
				t.Fatalf("worker %d elem %d: %v != %v", w, i, v, ref[i])
			}
		}
	}
	// A restore into a machine with live slots must be refused.
	if err := orig.Restore(ck); err == nil {
		t.Fatal("restore into a live machine succeeded")
	}
}

// TestSparseMultiAggregatorRouting is the regression test for the sparse
// path hardcoding Aggregators[0]: key-value traffic must route by tensor
// ID through AggregatorFor, so distinct sparse tensors spread across the
// aggregator set and every worker picks the same aggregator per tensor.
func TestSparseMultiAggregatorRouting(t *testing.T) {
	cfg := Config{Workers: 2, Aggregators: []int{100, 200}, Reliable: true, BlockSize: 2}.WithDefaults()
	mk := func(pairs map[int32]float32) *tensor.COO {
		c := tensor.NewCOO(100)
		for k := int32(0); k < 100; k++ {
			if v, ok := pairs[k]; ok {
				c.Append(k, v)
			}
		}
		return c
	}
	for _, tc := range []struct {
		tid     uint32
		wantDst int
	}{
		{tid: 1, wantDst: 200}, // 1 % 2 == 1 -> second aggregator
		{tid: 2, wantDst: 100}, // 2 % 2 == 0 -> first aggregator
	} {
		ins := []*tensor.COO{
			mk(map[int32]float32{3: 1, 7: 2, 51: 4, 99: 5}),
			mk(map[int32]float32{7: 10, 8: 11, 51: 12}),
		}
		ams := map[int]*AggregatorMachine{
			100: NewAggregatorMachine(cfg, 100),
			200: NewAggregatorMachine(cfg, 200),
		}
		var wms []*SparseWorkerMachine
		type smsg struct {
			dst int
			pkt *wire.SparsePacket
		}
		var q []smsg
		var eb EmitBuf
		push := func(src int, emits []Emit) {
			for i := range emits {
				if src < len(ins) && emits[i].Dst != tc.wantDst {
					t.Fatalf("tid %d: worker %d sent sparse packet to node %d, want %d",
						tc.tid, src, emits[i].Dst, tc.wantDst)
				}
				q = append(q, smsg{dst: emits[i].Dst, pkt: testCloneSparse(emits[i].Sparse)})
			}
		}
		for w := range ins {
			m, err := NewSparseWorkerMachine(cfg, w, tc.tid, ins[w])
			if err != nil {
				t.Fatal(err)
			}
			wms = append(wms, m)
			eb.Reset()
			m.Start(&eb)
			push(w, eb.Emits())
		}
		for len(q) > 0 {
			m := q[0]
			q = q[1:]
			if am := ams[m.dst]; am != nil {
				eb.Reset()
				if err := am.HandlePacket(Msg{Sparse: m.pkt}, &eb); err != nil {
					t.Fatal(err)
				}
				push(m.dst, eb.Emits())
				continue
			}
			eb.Reset()
			if err := wms[m.dst].HandlePacket(m.pkt, &eb); err != nil {
				t.Fatal(err)
			}
			push(m.dst, eb.Emits())
		}
		want := map[int32]float32{3: 1, 7: 12, 8: 11, 51: 16, 99: 5}
		for w, m := range wms {
			if !m.Done() {
				t.Fatalf("tid %d: worker %d not done", tc.tid, w)
			}
			res := m.Result()
			if res.Len() != len(want) {
				t.Fatalf("tid %d: worker %d: %d keys, want %d", tc.tid, w, res.Len(), len(want))
			}
			for i, k := range res.Keys {
				if res.Values[i] != want[k] {
					t.Fatalf("tid %d worker %d key %d: %v != %v", tc.tid, w, k, res.Values[i], want[k])
				}
			}
		}
		// The other aggregator must have seen nothing.
		other := 300 - tc.wantDst
		if s := ams[other].Stats(); s.PacketsRecvd != 0 {
			t.Fatalf("tid %d: idle aggregator %d received %d packets", tc.tid, other, s.PacketsRecvd)
		}
	}
}
