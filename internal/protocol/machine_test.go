package protocol

import (
	"strings"
	"testing"
	"time"

	"omnireduce/internal/tensor"
	"omnireduce/internal/wire"
)

// Trace tests for the sans-I/O machines: a tiny synchronous pump feeds
// worker and aggregator machines from a FIFO queue — no transport, no
// goroutines, no clocks. Each table entry perturbs the delivery schedule
// (duplicates, reorders, drops + timeouts) and asserts the machines still
// converge on the exact deterministic sum.

const aggNode = 100 // dedicated aggregator node ID, distinct from worker IDs

type tmsg struct {
	src, dst int
	pkt      *wire.Packet
}

// testClone deep-copies an emitted dense packet. Machines emit reusable
// shells valid only until the next call into the emitting machine, so
// the pump — which queues messages for later delivery — must copy them
// at enqueue time, exactly as a real driver would encode them.
func testClone(p *wire.Packet) *wire.Packet {
	c := *p
	c.Nexts = append([]uint32(nil), p.Nexts...)
	c.Blocks = append([]wire.Block(nil), p.Blocks...)
	for i := range c.Blocks {
		c.Blocks[i].Data = append([]float32(nil), c.Blocks[i].Data...)
	}
	return &c
}

// testCloneSparse is testClone for key-value packets.
func testCloneSparse(p *wire.SparsePacket) *wire.SparsePacket {
	c := *p
	c.Keys = append([]uint32(nil), p.Keys...)
	c.Values = append([]float32(nil), p.Values...)
	return &c
}

// pump drives the machines to completion with deterministic, synchronous
// delivery. tamper sees every enqueued message and returns the copies to
// actually deliver (nil drops it); swapLinks additionally swaps adjacent
// queue entries on distinct links to exercise cross-link reordering.
type pump struct {
	t         *testing.T
	cfg       Config
	wms       []*WorkerMachine
	am        *AggregatorMachine
	q         []tmsg
	now       time.Duration
	tamper    func(n int, m tmsg) []tmsg
	swapLinks bool
	seq       int
	eb        EmitBuf
}

func newPump(t *testing.T, cfg Config, inputs [][]float32, tamper func(n int, m tmsg) []tmsg, swap bool) (*pump, [][]float32) {
	t.Helper()
	cfg.Workers = len(inputs)
	cfg.Aggregators = []int{aggNode}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	p := &pump{t: t, cfg: cfg, am: NewAggregatorMachine(cfg, aggNode),
		tamper: tamper, swapLinks: swap}
	work := make([][]float32, len(inputs))
	for w := range inputs {
		work[w] = append([]float32(nil), inputs[w]...)
		p.wms = append(p.wms, NewWorkerMachine(cfg, w, 1))
	}
	for w, m := range p.wms {
		view := NewDenseView(work[w], cfg.BlockSize, cfg.ForceDense)
		p.eb.Reset()
		m.Start(view, 0, &p.eb)
		p.push(w, p.eb.Emits())
	}
	return p, work
}

func (p *pump) push(src int, emits []Emit) {
	for i := range emits {
		m := tmsg{src: src, dst: emits[i].Dst, pkt: testClone(emits[i].Packet)}
		out := []tmsg{m}
		if p.tamper != nil {
			out = p.tamper(p.seq, m)
		}
		p.seq++
		p.q = append(p.q, out...)
		if p.swapLinks && len(p.q) >= 2 {
			a, b := &p.q[len(p.q)-2], &p.q[len(p.q)-1]
			if a.src != b.src || a.dst != b.dst {
				*a, *b = *b, *a // cross-link swap preserves per-link FIFO
			}
		}
	}
}

// drain processes the queue to empty, panicking the test on machine errors.
func (p *pump) drain() {
	for len(p.q) > 0 {
		m := p.q[0]
		p.q = p.q[1:]
		if m.dst == aggNode {
			p.eb.Reset()
			if err := p.am.HandlePacket(Msg{Dense: m.pkt}, &p.eb); err != nil {
				p.t.Fatalf("aggregator: %v", err)
			}
			p.push(aggNode, p.eb.Emits())
			continue
		}
		p.eb.Reset()
		if err := p.wms[m.dst].HandlePacket(m.pkt, p.now, &p.eb); err != nil {
			p.t.Fatalf("worker %d: %v", m.dst, err)
		}
		p.push(m.dst, p.eb.Emits())
	}
}

// tick advances virtual time past every pending deadline and fires the
// timeout handler on all workers.
func (p *pump) tick() {
	var latest time.Duration
	for _, m := range p.wms {
		if d, ok := m.NextTimeout(); ok && d > latest {
			latest = d
		}
	}
	p.now = latest + time.Nanosecond
	for w, m := range p.wms {
		p.eb.Reset()
		if err := m.HandleTimeout(p.now, &p.eb); err != nil {
			p.t.Fatalf("worker %d timeout: %v", w, err)
		}
		p.push(w, p.eb.Emits())
	}
}

func (p *pump) allDone() bool {
	for _, m := range p.wms {
		if !m.Done() {
			return false
		}
	}
	return true
}

// traceInputs builds three workers' inputs with distinct sparsity patterns
// over 24 blocks of 4 elements each.
func traceInputs() [][]float32 {
	const blocks, bs = 24, 4
	mk := func(wid int, nz func(b int) bool) []float32 {
		d := make([]float32, blocks*bs)
		for b := 0; b < blocks; b++ {
			if !nz(b) {
				continue
			}
			for i := 0; i < bs; i++ {
				d[b*bs+i] = float32(wid*1000 + b*10 + i)
			}
		}
		return d
	}
	return [][]float32{
		mk(1, func(b int) bool { return b%2 == 0 }),
		mk(2, func(b int) bool { return b%3 == 0 }),
		mk(3, func(b int) bool { return b >= 16 }),
	}
}

func refSum(inputs [][]float32) []float32 {
	ref := make([]float32, len(inputs[0]))
	for _, in := range inputs {
		for i, v := range in {
			ref[i] += v
		}
	}
	return ref
}

func TestMachineTraces(t *testing.T) {
	base := Config{
		BlockSize:          4,
		FusionWidth:        4,
		Streams:            2,
		DeterministicOrder: true,
		RetransmitTimeout:  time.Millisecond,
	}
	cases := []struct {
		name     string
		reliable bool
		tamper   func(n int, m tmsg) []tmsg
		swap     bool
		ticks    int // extra timeout rounds to recover dropped packets
		check    func(t *testing.T, p *pump)
	}{
		{
			name: "in-order-reliable", reliable: true,
		},
		{
			name: "in-order-lossy",
		},
		{
			// Every aggregator result delivered twice: the duplicate must be
			// version-filtered (or done-filtered) by the worker machines.
			name: "duplicated-results",
			tamper: func(n int, m tmsg) []tmsg {
				if m.src == aggNode {
					return []tmsg{m, m}
				}
				return []tmsg{m}
			},
			check: func(t *testing.T, p *pump) {
				var stale int64
				for _, m := range p.wms {
					stale += m.Stats().StaleResults
				}
				if stale == 0 {
					t.Fatal("duplicated results not filtered")
				}
			},
		},
		{
			// Every worker data packet delivered twice: the aggregator must
			// filter same-round duplicates and replay to stale rounds without
			// corrupting the sum.
			name: "duplicated-data-stale-rounds",
			tamper: func(n int, m tmsg) []tmsg {
				if m.dst == aggNode {
					return []tmsg{m, m}
				}
				return []tmsg{m}
			},
			check: func(t *testing.T, p *pump) {
				s := p.am.Stats()
				if s.DupsFiltered == 0 && s.StaleRounds == 0 {
					t.Fatalf("duplicates neither filtered nor recognized stale: %+v", s)
				}
			},
		},
		{
			// Adjacent messages on distinct links swapped: per-link FIFO
			// holds (the protocol's only ordering assumption), cross-link
			// order does not.
			name: "reordered-across-links", reliable: true, swap: true,
		},
		{
			name: "reordered-across-links-lossy", swap: true,
		},
		{
			// Drop the first five worker packets (bootstraps among them);
			// only the retransmission timer can recover the streams.
			name: "timeout-before-result",
			tamper: func(n int, m tmsg) []tmsg {
				if m.dst == aggNode && n < 5 {
					return nil
				}
				return []tmsg{m}
			},
			ticks: 32,
			check: func(t *testing.T, p *pump) {
				var retr int64
				for _, m := range p.wms {
					retr += m.Stats().Retransmits
				}
				if retr == 0 {
					t.Fatal("drops recovered without retransmissions")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Reliable = tc.reliable
			inputs := traceInputs()
			p, work := newPump(t, cfg, inputs, tc.tamper, tc.swap)
			p.drain()
			for i := 0; i < tc.ticks && !p.allDone(); i++ {
				p.tick()
				p.drain()
			}
			if !p.allDone() {
				t.Fatal("machines did not converge")
			}
			ref := refSum(inputs)
			for w := range work {
				for i, v := range work[w] {
					if v != ref[i] {
						t.Fatalf("worker %d elem %d: %v != %v", w, i, v, ref[i])
					}
				}
			}
			if tc.check != nil {
				tc.check(t, p)
			}
		})
	}
}

// TestWorkerMachineResultErrors exercises the worker machine's protocol
// error paths directly: wrong message type, unknown stream, stale tensor.
func TestWorkerMachineResultErrors(t *testing.T) {
	// One stream, one column over three dense blocks: after the bootstrap
	// sends block 0, the machine's local next is block 1.
	cfg := Config{Workers: 1, Aggregators: []int{aggNode}, Reliable: true,
		BlockSize: 4, FusionWidth: 1, Streams: 1}
	m := NewWorkerMachine(cfg, 0, 1)
	data := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	var eb EmitBuf
	m.Start(NewDenseView(data, 4, false), 0, &eb)
	if eb.Len() != 1 {
		t.Fatalf("bootstrap emits = %d", eb.Len())
	}
	eb.Reset()
	if err := m.HandlePacket(&wire.Packet{Type: wire.TypeData, TensorID: 1}, 0, &eb); err == nil || !strings.Contains(err.Error(), "unexpected message type") {
		t.Fatalf("wrong type: err = %v", err)
	}
	eb.Reset()
	if err := m.HandlePacket(&wire.Packet{Type: wire.TypeResult, TensorID: 1, Slot: 9, Nexts: []uint32{wire.Inf(0)}}, 0, &eb); err == nil || !strings.Contains(err.Error(), "unknown stream") {
		t.Fatalf("unknown stream: err = %v", err)
	}
	// Stale tensor IDs are silently dropped and counted.
	eb.Reset()
	err := m.HandlePacket(&wire.Packet{Type: wire.TypeResult, TensorID: 7, Nexts: []uint32{wire.Inf(0)}}, 0, &eb)
	if err != nil || eb.Len() != 0 {
		t.Fatalf("stale result not dropped: %d emits, err %v", eb.Len(), err)
	}
	if m.Stats().StaleResults != 1 {
		t.Fatalf("StaleResults = %d, want 1", m.Stats().StaleResults)
	}
	// A request past our local next (2 when we still hold block 1) is a
	// protocol violation.
	eb.Reset()
	if err := m.HandlePacket(&wire.Packet{Type: wire.TypeResult, TensorID: 1, BlockSize: 4, Nexts: []uint32{2}}, 0, &eb); err == nil || !strings.Contains(err.Error(), "past local next") {
		t.Fatalf("past-next: err = %v", err)
	}
}

// TestSparseMachineTrace runs the Algorithm 3 key-value machines through
// the same synchronous in-memory style: two workers with overlapping COO
// tensors, one aggregator, in-order delivery.
func TestSparseMachineTrace(t *testing.T) {
	cfg := Config{Workers: 2, Aggregators: []int{aggNode}, Reliable: true, BlockSize: 2}.WithDefaults()
	mk := func(pairs map[int32]float32) *tensor.COO {
		c := tensor.NewCOO(100)
		for k := int32(0); k < 100; k++ {
			if v, ok := pairs[k]; ok {
				c.Append(k, v)
			}
		}
		return c
	}
	ins := []*tensor.COO{
		mk(map[int32]float32{3: 1, 7: 2, 50: 3, 51: 4, 99: 5}),
		mk(map[int32]float32{7: 10, 8: 11, 51: 12}),
	}
	am := NewAggregatorMachine(cfg, aggNode)
	var wms []*SparseWorkerMachine
	type smsg struct {
		dst int
		pkt *wire.SparsePacket
	}
	var q []smsg
	var eb EmitBuf
	push := func(emits []Emit) {
		for i := range emits {
			q = append(q, smsg{dst: emits[i].Dst, pkt: testCloneSparse(emits[i].Sparse)})
		}
	}
	for w := range ins {
		m, err := NewSparseWorkerMachine(cfg, w, 1, ins[w])
		if err != nil {
			t.Fatal(err)
		}
		wms = append(wms, m)
		eb.Reset()
		m.Start(&eb)
		push(eb.Emits())
	}
	for len(q) > 0 {
		m := q[0]
		q = q[1:]
		if m.dst == aggNode {
			eb.Reset()
			if err := am.HandlePacket(Msg{Sparse: m.pkt}, &eb); err != nil {
				t.Fatal(err)
			}
			push(eb.Emits())
			continue
		}
		eb.Reset()
		if err := wms[m.dst].HandlePacket(m.pkt, &eb); err != nil {
			t.Fatal(err)
		}
		push(eb.Emits())
	}
	want := map[int32]float32{3: 1, 7: 12, 8: 11, 50: 3, 51: 16, 99: 5}
	for w, m := range wms {
		if !m.Done() {
			t.Fatalf("worker %d not done", w)
		}
		res := m.Result()
		if res.Len() != len(want) {
			t.Fatalf("worker %d: %d keys, want %d", w, res.Len(), len(want))
		}
		for i, k := range res.Keys {
			if res.Values[i] != want[k] {
				t.Fatalf("worker %d key %d: %v != %v", w, k, res.Values[i], want[k])
			}
		}
	}
}
