package protocol

import (
	"container/heap"
	"fmt"

	"omnireduce/internal/tensor"
	"omnireduce/internal/wire"
)

// This file implements the sparse (key-value) block format extension of
// §3.3 / Algorithm 3. The input is a COO tensor; workers stream blocks of
// BlockSize key-value pairs in key order, each packet carrying the key of
// the sender's next non-zero value. The aggregator tracks every worker's
// next key and flushes the aggregated prefix below the global minimum to
// all workers, which assemble the full reduced tensor in key order.
//
// As in the paper, this mode targets reliable transports (the paper leaves
// a lossy realization as future work), so the machine requests no timers.
//
// Keys must be < 0xFFFFFFFE: 0xFFFFFFFF is the "no more keys" sentinel and
// 0xFFFFFFFE marks non-final chunks of the final flush.

// MoreComing marks a sparse-result chunk that is not the last of its
// flush: the receiving worker must not treat it as flow-control progress.
const MoreComing = wire.InfKey - 1

// SparseWorkerMachine is the worker side of one sparse AllReduce
// (Algorithm 3): it streams blocks of key-value pairs in key order, flow
// controlled by the aggregator's announced global next key, and assembles
// the multicast result prefix into the output COO tensor.
type SparseWorkerMachine struct {
	cfg   Config
	id    int
	tid   uint32
	in    *tensor.COO
	out   *tensor.COO
	idx   int // next unsent pair index into in
	done  bool
	stats WorkerStats
}

// NewSparseWorkerMachine validates the input tensor's key range and
// creates the machine. Sparse mode requires a reliable transport.
func NewSparseWorkerMachine(cfg Config, workerID int, tensorID uint32, in *tensor.COO) (*SparseWorkerMachine, error) {
	cfg = cfg.WithDefaults()
	if !cfg.Reliable {
		return nil, fmt.Errorf("protocol: sparse mode requires a reliable transport")
	}
	for _, k := range in.Keys {
		if uint32(k) >= MoreComing {
			return nil, fmt.Errorf("protocol: sparse key %d out of range", k)
		}
	}
	return &SparseWorkerMachine{
		cfg: cfg,
		id:  workerID,
		tid: tensorID,
		in:  in,
		out: tensor.NewCOO(in.Dim),
	}, nil
}

// Stats returns a copy of the machine's traffic counters.
func (m *SparseWorkerMachine) Stats() WorkerStats { return m.stats }

// Done reports whether the final result chunk has arrived.
func (m *SparseWorkerMachine) Done() bool { return m.done }

// Result returns the assembled global reduction; valid once Done.
func (m *SparseWorkerMachine) Result() *tensor.COO { return m.out }

// Start emits the first block of pairs (Algorithm 3 lines 2-7).
func (m *SparseWorkerMachine) Start() []Emit {
	return []Emit{m.sendNext()}
}

// sendNext builds and accounts the next BlockSize-pair packet.
func (m *SparseWorkerMachine) sendNext() Emit {
	bs := m.cfg.BlockSize
	hi := m.idx + bs
	if hi > m.in.Len() {
		hi = m.in.Len()
	}
	p := &wire.SparsePacket{
		Type:     wire.TypeSparseData,
		WID:      uint16(m.id),
		TensorID: m.tid,
		NextKey:  wire.InfKey,
	}
	for i := m.idx; i < hi; i++ {
		p.Keys = append(p.Keys, uint32(m.in.Keys[i]))
		p.Values = append(p.Values, m.in.Values[i])
	}
	m.idx = hi
	if m.idx < m.in.Len() {
		p.NextKey = uint32(m.in.Keys[m.idx])
	}
	size := wire.EncodedSparsePacketSize(p)
	m.stats.PacketsSent++
	m.stats.BytesSent += int64(size)
	return Emit{Dst: m.cfg.Aggregators[0], Sparse: p, Size: size}
}

// HandlePacket consumes one sparse result chunk: appends the flushed
// prefix to the output and, when the global progress reaches our next
// unsent key, emits the next block (Algorithm 3 line 10).
func (m *SparseWorkerMachine) HandlePacket(p *wire.SparsePacket) ([]Emit, error) {
	if p.Type != wire.TypeSparseResult {
		return nil, fmt.Errorf("protocol: worker %d: unexpected message type %d in sparse mode", m.id, p.Type)
	}
	if p.TensorID != m.tid {
		return nil, nil // stale
	}
	for i, k := range p.Keys {
		m.out.Append(int32(k), p.Values[i])
	}
	if p.NextKey == wire.InfKey {
		m.done = true
		return nil, nil
	}
	if m.idx < m.in.Len() && p.NextKey != MoreComing && int64(p.NextKey) >= int64(m.in.Keys[m.idx]) {
		return []Emit{m.sendNext()}, nil
	}
	return nil, nil
}

// sparseAgg is the aggregator-side state of Algorithm 3.
type sparseAgg struct {
	tensorID uint32
	values   map[uint32]float32
	pending  keyHeap // aggregated keys not yet flushed
	nextKey  []int64 // per-worker next key; -1 unknown, maxInt64 done
	sent     int64   // smallest unflushed key
	finished bool
}

type keyHeap []uint32

func (h keyHeap) Len() int            { return len(h) }
func (h keyHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h keyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *keyHeap) Push(x interface{}) { *h = append(*h, x.(uint32)) }
func (h *keyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (m *AggregatorMachine) handleSparse(p *wire.SparsePacket) ([]Emit, error) {
	// Sparse operations are keyed by tensor ID, so several may be in
	// flight concurrently.
	sa := m.sparse[p.TensorID]
	if sa == nil {
		sa = &sparseAgg{
			tensorID: p.TensorID,
			values:   make(map[uint32]float32),
			nextKey:  make([]int64, m.cfg.Workers),
			sent:     0,
		}
		for i := range sa.nextKey {
			sa.nextKey[i] = -1
		}
		m.sparse[p.TensorID] = sa
		if m.SlotOpened != nil {
			m.SlotOpened(p.TensorID)
		}
	}
	if sa.finished {
		return nil, nil
	}
	wid := int(p.WID)
	if wid >= m.cfg.Workers {
		return nil, fmt.Errorf("protocol: sparse packet from unknown worker %d", p.WID)
	}
	// Merge pairs (Algorithm 3 line 25).
	for i, k := range p.Keys {
		if _, ok := sa.values[k]; !ok {
			heap.Push(&sa.pending, k)
		}
		sa.values[k] += p.Values[i]
	}
	if p.NextKey == wire.InfKey {
		sa.nextKey[wid] = nextDone
	} else {
		sa.nextKey[wid] = int64(p.NextKey)
	}
	min := minOf(sa.nextKey)
	if min == -1 {
		return nil, nil // not all workers reported yet
	}
	if min == nextDone {
		// Final flush: everything pending, last chunk marked InfKey.
		emits := m.flushSparse(sa, nextDone)
		sa.finished = true
		delete(m.sparse, p.TensorID)
		if m.SlotFinished != nil {
			m.SlotFinished(p.TensorID)
		}
		return emits, nil
	}
	if min > sa.sent {
		emits := m.flushSparse(sa, min)
		sa.sent = min
		return emits, nil
	}
	return nil, nil
}

// flushSparse multicasts aggregated pairs with key < upTo, chunked into
// BlockSize-pair packets. upTo == nextDone flushes everything and marks
// the final chunk with InfKey.
func (m *AggregatorMachine) flushSparse(sa *sparseAgg, upTo int64) []Emit {
	bs := m.cfg.BlockSize
	var keys []uint32
	for sa.pending.Len() > 0 && int64(sa.pending[0]) < upTo {
		keys = append(keys, heap.Pop(&sa.pending).(uint32))
	}
	final := upTo == nextDone
	var emits []Emit
	// Always send at least one packet: the flush is also the flow-control
	// clock for the workers (it announces the new global next key).
	for first := true; first || len(keys) > 0; first = false {
		n := len(keys)
		if n > bs {
			n = bs
		}
		p := &wire.SparsePacket{
			Type:     wire.TypeSparseResult,
			WID:      uint16(m.localID & 0xFFFF),
			TensorID: sa.tensorID,
			Keys:     keys[:n],
		}
		for _, k := range p.Keys {
			p.Values = append(p.Values, sa.values[k])
		}
		keys = keys[n:]
		switch {
		case len(keys) > 0:
			p.NextKey = MoreComing
		case final:
			p.NextKey = wire.InfKey
		default:
			p.NextKey = uint32(upTo)
		}
		size := wire.EncodedSparsePacketSize(p)
		for w := 0; w < m.cfg.Workers; w++ {
			emits = append(emits, Emit{Dst: w, Sparse: p, Size: size})
		}
	}
	return emits
}
