package protocol

import (
	"container/heap"
	"fmt"

	"omnireduce/internal/obs"
	"omnireduce/internal/tensor"
	"omnireduce/internal/wire"
)

// This file implements the sparse (key-value) block format extension of
// §3.3 / Algorithm 3. The input is a COO tensor; workers stream blocks of
// BlockSize key-value pairs in key order, each packet carrying the key of
// the sender's next non-zero value. The aggregator tracks every worker's
// next key and flushes the aggregated prefix below the global minimum to
// all workers, which assemble the full reduced tensor in key order.
//
// As in the paper, this mode targets reliable transports (the paper leaves
// a lossy realization as future work), so the machine requests no timers.
//
// Keys must be < 0xFFFFFFFE: 0xFFFFFFFF is the "no more keys" sentinel and
// 0xFFFFFFFE marks non-final chunks of the final flush.

// MoreComing marks a sparse-result chunk that is not the last of its
// flush: the receiving worker must not treat it as flow-control progress.
const MoreComing = wire.InfKey - 1

// SparseWorkerMachine is the worker side of one sparse AllReduce
// (Algorithm 3): it streams blocks of key-value pairs in key order, flow
// controlled by the aggregator's announced global next key, and assembles
// the multicast result prefix into the output COO tensor.
type SparseWorkerMachine struct {
	cfg   Config
	id    int
	tid   uint32
	in    *tensor.COO
	out   *tensor.COO
	idx   int // next unsent pair index into in
	done  bool
	stats WorkerStats

	// shells are the machine's reusable outbound packets (see the Emit
	// ownership contract); Values alias the input tensor zero-copy.
	shells [2]wire.SparsePacket
	flip   int
}

// NewSparseWorkerMachine validates the input tensor's key range and
// creates the machine. Sparse mode requires a reliable transport.
func NewSparseWorkerMachine(cfg Config, workerID int, tensorID uint32, in *tensor.COO) (*SparseWorkerMachine, error) {
	cfg = cfg.WithDefaults()
	if !cfg.Reliable {
		return nil, fmt.Errorf("protocol: sparse mode requires a reliable transport")
	}
	for _, k := range in.Keys {
		if uint32(k) >= MoreComing {
			return nil, fmt.Errorf("protocol: sparse key %d out of range", k)
		}
	}
	return &SparseWorkerMachine{
		cfg: cfg,
		id:  workerID,
		tid: tensorID,
		in:  in,
		out: tensor.NewCOO(in.Dim),
	}, nil
}

// Stats returns a copy of the machine's traffic counters.
func (m *SparseWorkerMachine) Stats() WorkerStats { return m.stats }

// Done reports whether the final result chunk has arrived.
func (m *SparseWorkerMachine) Done() bool { return m.done }

// Result returns the assembled global reduction; valid once Done.
func (m *SparseWorkerMachine) Result() *tensor.COO { return m.out }

// Start emits the first block of pairs (Algorithm 3 lines 2-7) into eb.
func (m *SparseWorkerMachine) Start(eb *EmitBuf) {
	m.sendNext(eb)
}

// sendNext builds and accounts the next BlockSize-pair packet in a
// flipped shell. Keys are converted into the shell's reused array; Values
// alias the input tensor (machines never mutate it).
func (m *SparseWorkerMachine) sendNext(eb *EmitBuf) {
	bs := m.cfg.BlockSize
	hi := m.idx + bs
	if hi > m.in.Len() {
		hi = m.in.Len()
	}
	m.flip ^= 1
	p := &m.shells[m.flip]
	p.Type = wire.TypeSparseData
	p.WID = uint16(m.id)
	p.TensorID = m.tid
	p.NextKey = wire.InfKey
	p.Keys = p.Keys[:0]
	for i := m.idx; i < hi; i++ {
		p.Keys = append(p.Keys, uint32(m.in.Keys[i]))
	}
	p.Values = m.in.Values[m.idx:hi]
	m.idx = hi
	if m.idx < m.in.Len() {
		p.NextKey = uint32(m.in.Keys[m.idx])
	}
	size := wire.EncodedSparsePacketSize(p)
	m.stats.PacketsSent++
	m.stats.BytesSent += int64(size)
	// Sparse tensors are routed by tensor ID (not per-stream like dense):
	// Algorithm 3's streaming merge needs every worker's chunks for one
	// tensor at a single aggregator, and keying by tid keeps all workers
	// in agreement while still spreading distinct tensors across the
	// multi-aggregator round-robin.
	eb.Append(Emit{Dst: m.cfg.AggregatorFor(int(m.tid)), Sparse: p, Size: size})
}

// HandlePacket consumes one sparse result chunk: appends the flushed
// prefix to the output and, when the global progress reaches our next
// unsent key, emits the next block into eb (Algorithm 3 line 10).
func (m *SparseWorkerMachine) HandlePacket(p *wire.SparsePacket, eb *EmitBuf) error {
	if p.Type != wire.TypeSparseResult {
		return fmt.Errorf("protocol: worker %d: unexpected message type %d in sparse mode", m.id, p.Type)
	}
	if p.TensorID != m.tid {
		return nil // stale
	}
	for i, k := range p.Keys {
		m.out.Append(int32(k), p.Values[i])
	}
	if p.NextKey == wire.InfKey {
		m.done = true
		return nil
	}
	if m.idx < m.in.Len() && p.NextKey != MoreComing && int64(p.NextKey) >= int64(m.in.Keys[m.idx]) {
		m.sendNext(eb)
	}
	return nil
}

// sparseAgg is the aggregator-side state of Algorithm 3.
//
// The steady state holds the aggregate as parallel sorted runs
// (keys/vals) with a flushed-prefix watermark: workers stream their pairs
// in key order, so each inbound packet is an ascending run that merges
// into the unflushed suffix in O(suffix + packet) with zero allocation
// (the suffix is bounded by Workers × BlockSize through flow control).
// Flushes emit subslices of the runs zero-copy; the flushed prefix is
// retained (never compacted) so emitted subslices stay valid while the
// driver consumes them. If a packet ever violates the ordering
// assumptions (unsorted keys, or keys below the flush watermark), the
// state falls back permanently to the map+heap path, which accepts
// arbitrary key orderings at allocation cost.
type sparseAgg struct {
	tensorID uint32

	// Sorted-run fast path.
	sorted  bool
	keys    []uint32
	vals    []float32
	flushed int // keys[:flushed] already flushed
	mergeK  []uint32
	mergeV  []float32

	// Fallback path (map + heap), engaged by fallbackify.
	values  map[uint32]float32
	pending keyHeap // aggregated keys not yet flushed

	nextKey  []int64 // per-worker next key; -1 unknown, maxInt64 done
	sent     int64   // smallest unflushed key
	finished bool

	// shells are the reusable result-chunk packets of one flush; the
	// array is reserved to the flush's chunk count up front so earlier
	// chunks' pointers stay stable while later ones are built.
	shells []wire.SparsePacket
}

type keyHeap []uint32

func (h keyHeap) Len() int            { return len(h) }
func (h keyHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h keyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *keyHeap) Push(x interface{}) { *h = append(*h, x.(uint32)) }
func (h *keyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// newSparse re-arms a free-listed (or fresh) sparse aggregation state.
func (m *AggregatorMachine) newSparse(tensorID uint32) *sparseAgg {
	sparseSlotGets.Add(1)
	obs.Emit(obs.EvMachinePoolGet, tensorID, 2)
	var sa *sparseAgg
	if n := len(m.sparseFree); n > 0 {
		sa = m.sparseFree[n-1]
		m.sparseFree[n-1] = nil
		m.sparseFree = m.sparseFree[:n-1]
	} else {
		sa = &sparseAgg{}
	}
	sa.tensorID = tensorID
	sa.sorted = true
	sa.keys = sa.keys[:0]
	sa.vals = sa.vals[:0]
	sa.flushed = 0
	if sa.values != nil {
		clear(sa.values)
	}
	sa.pending = sa.pending[:0]
	sa.nextKey = resizeI64(sa.nextKey, m.cfg.Workers)
	for i := range sa.nextKey {
		sa.nextKey[i] = -1
	}
	sa.sent = 0
	sa.finished = false
	return sa
}

func (m *AggregatorMachine) freeSparse(sa *sparseAgg) {
	sparseSlotPuts.Add(1)
	obs.Emit(obs.EvMachinePoolPut, sa.tensorID, 2)
	m.sparseFree = append(m.sparseFree, sa)
}

// fallbackify abandons the sorted-run representation: all aggregated
// pairs move into the values map (flushed ones included, so late
// contributions to already-flushed keys keep folding in, matching the
// historical map semantics), unflushed keys into the pending heap.
func (sa *sparseAgg) fallbackify() {
	if sa.values == nil {
		sa.values = make(map[uint32]float32, len(sa.keys))
	}
	for i, k := range sa.keys {
		sa.values[k] = sa.vals[i]
	}
	sa.pending = append(sa.pending[:0], sa.keys[sa.flushed:]...)
	heap.Init(&sa.pending)
	sa.keys = sa.keys[:0]
	sa.vals = sa.vals[:0]
	sa.flushed = 0
	sa.sorted = false
}

// runSortedFor reports whether p's keys can merge into the sorted runs:
// non-descending and nothing below the flush watermark. In-order workers
// always satisfy this (a worker's new keys are >= its announced next key
// >= the flushed global minimum).
func (sa *sparseAgg) runSortedFor(p *wire.SparsePacket) bool {
	if len(p.Keys) == 0 {
		return true
	}
	if int64(p.Keys[0]) < sa.sent {
		return false
	}
	for i := 1; i < len(p.Keys); i++ {
		if p.Keys[i] < p.Keys[i-1] {
			return false
		}
	}
	return true
}

// mergeRun folds p's ascending key-value run into the unflushed suffix of
// the sorted runs. Equal keys fold in arrival order, the same float-op
// sequence as the map path's `+=`.
func (sa *sparseAgg) mergeRun(p *wire.SparsePacket) {
	suf := sa.keys[sa.flushed:]
	sufV := sa.vals[sa.flushed:]
	mk := sa.mergeK[:0]
	mv := sa.mergeV[:0]
	i, j := 0, 0
	for i < len(suf) && j < len(p.Keys) {
		switch {
		case suf[i] < p.Keys[j]:
			mk = append(mk, suf[i])
			mv = append(mv, sufV[i])
			i++
		case suf[i] > p.Keys[j]:
			mk, mv = appendFold(mk, mv, p.Keys[j], p.Values[j])
			j++
		default:
			mk = append(mk, suf[i])
			mv = append(mv, sufV[i]+p.Values[j])
			i++
			j++
		}
	}
	for ; i < len(suf); i++ {
		mk = append(mk, suf[i])
		mv = append(mv, sufV[i])
	}
	for ; j < len(p.Keys); j++ {
		mk, mv = appendFold(mk, mv, p.Keys[j], p.Values[j])
	}
	sa.mergeK, sa.mergeV = mk, mv
	sa.keys = append(sa.keys[:sa.flushed], mk...)
	sa.vals = append(sa.vals[:sa.flushed], mv...)
}

// appendFold appends (k, v), folding into the last entry when the key
// repeats (duplicate keys within one packet).
func appendFold(mk []uint32, mv []float32, k uint32, v float32) ([]uint32, []float32) {
	if n := len(mk); n > 0 && mk[n-1] == k {
		mv[n-1] += v
		return mk, mv
	}
	return append(mk, k), append(mv, v)
}

func (m *AggregatorMachine) handleSparse(p *wire.SparsePacket, eb *EmitBuf) error {
	// Sparse operations are keyed by tensor ID, so several may be in
	// flight concurrently.
	sa := m.sparse[p.TensorID]
	if sa == nil {
		sa = m.newSparse(p.TensorID)
		m.sparse[p.TensorID] = sa
		if m.SlotOpened != nil {
			m.SlotOpened(p.TensorID)
		}
	}
	if sa.finished {
		return nil
	}
	wid := int(p.WID)
	if wid >= m.cfg.Workers {
		return fmt.Errorf("protocol: sparse packet from unknown worker %d", p.WID)
	}
	// Merge pairs (Algorithm 3 line 25).
	if sa.sorted && !sa.runSortedFor(p) {
		sa.fallbackify()
	}
	if sa.sorted {
		sa.mergeRun(p)
	} else {
		for i, k := range p.Keys {
			if _, ok := sa.values[k]; !ok {
				heap.Push(&sa.pending, k)
			}
			sa.values[k] += p.Values[i]
		}
	}
	if p.NextKey == wire.InfKey {
		sa.nextKey[wid] = nextDone
	} else {
		sa.nextKey[wid] = int64(p.NextKey)
	}
	min := minOf(sa.nextKey)
	if min == -1 {
		return nil // not all workers reported yet
	}
	if min == nextDone {
		// Final flush: everything pending, last chunk marked InfKey.
		m.flushSparse(sa, nextDone, eb)
		sa.finished = true
		delete(m.sparse, p.TensorID)
		if m.SlotFinished != nil {
			m.SlotFinished(p.TensorID)
		}
		m.freeSparse(sa)
		return nil
	}
	if min > sa.sent {
		m.flushSparse(sa, min, eb)
		sa.sent = min
	}
	return nil
}

// flushSparse multicasts aggregated pairs with key < upTo into eb,
// chunked into BlockSize-pair packets. upTo == nextDone flushes
// everything and marks the final chunk with InfKey.
func (m *AggregatorMachine) flushSparse(sa *sparseAgg, upTo int64, eb *EmitBuf) {
	var ks []uint32
	var vs []float32
	if sa.sorted {
		end := sa.flushed
		for end < len(sa.keys) && int64(sa.keys[end]) < upTo {
			end++
		}
		// Zero-copy subslices of the runs: the flushed prefix is never
		// compacted or overwritten, so these stay valid past the call.
		ks = sa.keys[sa.flushed:end]
		vs = sa.vals[sa.flushed:end]
		sa.flushed = end
	} else {
		mk := sa.mergeK[:0]
		mv := sa.mergeV[:0]
		for sa.pending.Len() > 0 && int64(sa.pending[0]) < upTo {
			k := heap.Pop(&sa.pending).(uint32)
			mk = append(mk, k)
			mv = append(mv, sa.values[k])
		}
		sa.mergeK, sa.mergeV = mk, mv
		ks, vs = mk, mv
	}
	bs := m.cfg.BlockSize
	final := upTo == nextDone
	chunks := (len(ks) + bs - 1) / bs
	if chunks == 0 {
		// Always send at least one packet: the flush is also the
		// flow-control clock for the workers (it announces the new global
		// next key).
		chunks = 1
	}
	// Reserve every chunk shell before emitting any, so earlier chunks'
	// pointers stay stable while later ones are filled.
	if cap(sa.shells) < chunks {
		sa.shells = make([]wire.SparsePacket, chunks)
	}
	sa.shells = sa.shells[:chunks]
	off := 0
	for i := 0; i < chunks; i++ {
		n := len(ks) - off
		if n > bs {
			n = bs
		}
		p := &sa.shells[i]
		p.Type = wire.TypeSparseResult
		p.WID = uint16(m.localID & 0xFFFF)
		p.TensorID = sa.tensorID
		p.Keys = ks[off : off+n]
		p.Values = vs[off : off+n]
		off += n
		switch {
		case off < len(ks):
			p.NextKey = MoreComing
		case final:
			p.NextKey = wire.InfKey
		default:
			p.NextKey = uint32(upTo)
		}
		size := wire.EncodedSparsePacketSize(p)
		for w := 0; w < m.cfg.Workers; w++ {
			eb.Append(Emit{Dst: w, Sparse: p, Size: size})
		}
	}
}
