package protocol

import (
	"fmt"
	"sort"

	"omnireduce/internal/obs"
	"omnireduce/internal/wire"
)

// Checkpoint/Restore serialize an aggregator machine's full protocol
// state — per-slot round counters, in-progress accumulators, the
// finished-tensor archive and trackers, and sparse merge state — so a
// standby aggregator can adopt a dead primary's position mid-collective.
// The DTO types hold only exported fields of gob/JSON-friendly shapes;
// the driver chooses the encoding (the live service streams gob frames,
// tests compare structs directly).
//
// Checkpoint ALIASES live machine state (the same contract as Emit
// shells: the snapshot is valid until the next machine call, long enough
// to encode and send). Restore COPIES everything, so a restored machine
// shares nothing with the checkpoint buffer or the source machine.

// AccumCheckpoint is one column accumulator's state. Exactly one of the
// three representations is populated, matching the machine's mode: F for
// plain float32 summation, Q for fixed-point, Per for deterministic
// worker-ordered reduction (Per[wid] nil = worker absent this round).
type AccumCheckpoint struct {
	F   []float32
	Q   []int64
	Per [][]float32
}

// SlotCheckpoint is one dense (slot, tensor) aggregation state.
type SlotCheckpoint struct {
	Slot      uint16
	TensorID  uint32
	BlockSize int
	Cols      int
	DType     uint8

	Cur     []int64
	Nexts   [][]int64
	MinNext []int64
	Seen    []bool
	Count   int
	Round   uint8
	Acc     []AccumCheckpoint

	LastRes     *wire.Packet
	LastResSize int
}

// SparseCheckpoint is one sparse tensor's Algorithm 3 merge state.
type SparseCheckpoint struct {
	TensorID uint32
	Sorted   bool
	Keys     []uint32
	Vals     []float32
	Flushed  int
	Values   map[uint32]float32
	Pending  []uint32
	NextKey  []int64
	Sent     int64
}

// ArchiveCheckpoint is one finished tensor's replayable final result.
type ArchiveCheckpoint struct {
	Slot     uint16
	TensorID uint32
	Size     int
	Packet   wire.Packet
}

// FinishedCheckpoint is one (slot, namespace) finished-sequence tracker.
type FinishedCheckpoint struct {
	Slot   uint16
	NS     uint32
	UpTo   uint32
	Except []uint32
}

// AggCheckpoint is a complete aggregator-machine snapshot.
type AggCheckpoint struct {
	Workers  int
	Slots    []SlotCheckpoint
	Sparse   []SparseCheckpoint
	Archive  []ArchiveCheckpoint
	Finished []FinishedCheckpoint
	Stats    AggStats
}

// Checkpoint snapshots the machine's protocol state. Slices and packets
// in the snapshot alias live machine state: the snapshot must be encoded
// (or deep-copied) before the next machine call. Entries are sorted by
// (slot, tensor) so identical machine states produce identical
// checkpoints regardless of map iteration order.
func (m *AggregatorMachine) Checkpoint() *AggCheckpoint {
	ck := &AggCheckpoint{Workers: m.cfg.Workers, Stats: m.stats}
	for si := range m.table {
		for _, e := range m.table[si] {
			sl := e.sl
			sc := SlotCheckpoint{
				Slot:        uint16(si),
				TensorID:    sl.tensorID,
				BlockSize:   sl.blockSize,
				Cols:        sl.cols,
				DType:       sl.dtype,
				Cur:         sl.cur,
				Nexts:       sl.nexts,
				MinNext:     sl.minNext,
				Seen:        sl.seen,
				Count:       sl.count,
				Round:       sl.round,
				LastRes:     sl.lastRes,
				LastResSize: sl.lastResSize,
			}
			for c := range sl.acc {
				a := &sl.acc[c]
				sc.Acc = append(sc.Acc, AccumCheckpoint{F: a.f, Q: a.q, Per: a.per})
			}
			ck.Slots = append(ck.Slots, sc)
		}
	}
	sort.Slice(ck.Slots, func(i, j int) bool {
		if ck.Slots[i].Slot != ck.Slots[j].Slot {
			return ck.Slots[i].Slot < ck.Slots[j].Slot
		}
		return ck.Slots[i].TensorID < ck.Slots[j].TensorID
	})
	for tid, sa := range m.sparse {
		ck.Sparse = append(ck.Sparse, SparseCheckpoint{
			TensorID: tid,
			Sorted:   sa.sorted,
			Keys:     sa.keys,
			Vals:     sa.vals,
			Flushed:  sa.flushed,
			Values:   sa.values,
			Pending:  sa.pending,
			NextKey:  sa.nextKey,
			Sent:     sa.sent,
		})
	}
	sort.Slice(ck.Sparse, func(i, j int) bool { return ck.Sparse[i].TensorID < ck.Sparse[j].TensorID })
	for slot, am := range m.archive {
		for tid, ar := range am {
			ck.Archive = append(ck.Archive, ArchiveCheckpoint{
				Slot: slot, TensorID: tid, Size: ar.size, Packet: *ar.pkt,
			})
		}
	}
	sort.Slice(ck.Archive, func(i, j int) bool {
		if ck.Archive[i].Slot != ck.Archive[j].Slot {
			return ck.Archive[i].Slot < ck.Archive[j].Slot
		}
		return ck.Archive[i].TensorID < ck.Archive[j].TensorID
	})
	for slot, fm := range m.finished {
		for ns, f := range fm {
			fc := FinishedCheckpoint{Slot: slot, NS: ns, UpTo: f.upTo}
			for seq := range f.except {
				fc.Except = append(fc.Except, seq)
			}
			sort.Slice(fc.Except, func(i, j int) bool { return fc.Except[i] < fc.Except[j] })
			ck.Finished = append(ck.Finished, fc)
		}
	}
	sort.Slice(ck.Finished, func(i, j int) bool {
		if ck.Finished[i].Slot != ck.Finished[j].Slot {
			return ck.Finished[i].Slot < ck.Finished[j].Slot
		}
		return ck.Finished[i].NS < ck.Finished[j].NS
	})
	return ck
}

// Restore loads a checkpoint into a fresh (or Released) machine, deep-
// copying every array so the checkpoint buffer can be recycled. The
// restored machine mirrors the source's pool accounting (each adopted
// slot counts as a pool get on this machine) and fires SlotOpened for
// every live slot and sparse tensor, so a multi-tenant driver's
// admission/drain refcounts track handed-over work exactly like locally
// opened work.
func (m *AggregatorMachine) Restore(ck *AggCheckpoint) error {
	if ck.Workers != m.cfg.Workers {
		return fmt.Errorf("protocol: checkpoint for %d workers restored into machine configured for %d",
			ck.Workers, m.cfg.Workers)
	}
	if m.live > 0 || len(m.sparse) > 0 {
		return fmt.Errorf("protocol: restore into machine with %d live slots", m.ActiveSlots())
	}
	for i := range ck.Slots {
		sc := &ck.Slots[i]
		if len(sc.Acc) != sc.Cols {
			return fmt.Errorf("protocol: checkpoint slot %d tensor %#x: %d accumulators for %d columns",
				sc.Slot, sc.TensorID, len(sc.Acc), sc.Cols)
		}
		aggSlotGets.Add(1)
		obs.Emit(obs.EvMachinePoolGet, sc.TensorID, 1)
		sl := &aggSlot{
			tensorID:    sc.TensorID,
			blockSize:   sc.BlockSize,
			cols:        sc.Cols,
			dtype:       sc.DType,
			cur:         append([]int64(nil), sc.Cur...),
			minNext:     append([]int64(nil), sc.MinNext...),
			mins:        make([]int64, sc.Cols),
			seen:        append([]bool(nil), sc.Seen...),
			count:       sc.Count,
			round:       sc.Round,
			lastResSize: sc.LastResSize,
		}
		sl.nexts = make([][]int64, len(sc.Nexts))
		for c := range sc.Nexts {
			sl.nexts[c] = append([]int64(nil), sc.Nexts[c]...)
		}
		sl.acc = make([]accum, sc.Cols)
		for c := range sl.acc {
			a := &sl.acc[c]
			a.init(m.cfg)
			ac := &sc.Acc[c]
			if a.det {
				// Rebuild the arena through add() so per-slices carve from
				// this machine's backing in worker order.
				for w, d := range ac.Per {
					if d != nil {
						a.add(w, d)
					}
				}
			} else {
				a.f = append(a.f, ac.F...)
				a.q = append(a.q, ac.Q...)
			}
		}
		if sc.LastRes != nil {
			// The checkpointed lastRes aliased the source's recycled shell;
			// the restored one is standalone, replayed as-is until this
			// machine finishes its own next round.
			sl.lastRes = clonePacket(sc.LastRes)
		}
		m.putSlot(sc.Slot, sc.TensorID, sl)
		if m.SlotOpened != nil {
			m.SlotOpened(sc.TensorID)
		}
	}
	for i := range ck.Sparse {
		sp := &ck.Sparse[i]
		sparseSlotGets.Add(1)
		obs.Emit(obs.EvMachinePoolGet, sp.TensorID, 2)
		sa := &sparseAgg{
			tensorID: sp.TensorID,
			sorted:   sp.Sorted,
			keys:     append([]uint32(nil), sp.Keys...),
			vals:     append([]float32(nil), sp.Vals...),
			flushed:  sp.Flushed,
			pending:  append(keyHeap(nil), sp.Pending...),
			nextKey:  append([]int64(nil), sp.NextKey...),
			sent:     sp.Sent,
		}
		if sp.Values != nil {
			sa.values = make(map[uint32]float32, len(sp.Values))
			for k, v := range sp.Values {
				sa.values[k] = v
			}
		}
		m.sparse[sp.TensorID] = sa
		if m.SlotOpened != nil {
			m.SlotOpened(sp.TensorID)
		}
	}
	for i := range ck.Archive {
		ar := &ck.Archive[i]
		am := m.archive[ar.Slot]
		if am == nil {
			am = make(map[uint32]*archived)
			m.archive[ar.Slot] = am
		}
		pkt := ar.Packet
		am[ar.TensorID] = &archived{pkt: clonePacket(&pkt), size: ar.Size}
	}
	for i := range ck.Finished {
		fc := &ck.Finished[i]
		fm := m.finished[fc.Slot]
		if fm == nil {
			fm = make(map[uint32]*finishedTracker)
			m.finished[fc.Slot] = fm
		}
		f := &finishedTracker{upTo: fc.UpTo}
		if len(fc.Except) > 0 {
			f.except = make(map[uint32]bool, len(fc.Except))
			for _, seq := range fc.Except {
				f.except[seq] = true
			}
		}
		fm[fc.NS] = f
	}
	m.stats = ck.Stats
	return nil
}
