package protocol

import (
	"fmt"
	"math"
	"sort"

	"omnireduce/internal/obs"
	"omnireduce/internal/tensor"
	"omnireduce/internal/wire"
)

// AggStats counts aggregator-side protocol activity. The recovery
// counters distinguish the three fates of a non-live packet: a duplicate
// of the current round (filtered), a packet from an old round (answered
// with a replay when possible), and a packet for a tensor that finished
// long enough ago that its archived result was evicted (dropped).
type AggStats struct {
	PacketsRecvd     int64
	BlocksAggregated int64
	RoundsCompleted  int64
	ResultsSent      int64
	Replays          int64 // unicast result retransmissions (Algorithm 2)
	DupsFiltered     int64 // same-round duplicates discarded
	StaleRounds      int64 // packets arriving for an already-concluded round
	StaleFinished    int64 // packets for finished tensors past the archive
}

// slotKey identifies one tensor's aggregation state on one stream slot:
// several tensors may be in flight concurrently (bucket pipelining), each
// with independent slot state.
type slotKey struct {
	slot     uint16
	tensorID uint32
}

// archived is a finished tensor's final result retained for replay.
type archived struct {
	pkt  *wire.Packet
	size int
}

// AggregatorMachine is one aggregator node's protocol state: it owns the
// slots of every stream mapped to it and runs the block aggregation of
// Algorithms 1 and 2 plus the key-value aggregation of Algorithm 3.
//
// The machine is purely event-driven: HandlePacket consumes one decoded
// inbound message and returns the messages to transmit. It requests no
// timers (the aggregator side of the protocol is passive). Methods must
// not be called concurrently.
type AggregatorMachine struct {
	cfg Config
	// localID is stamped as the WID of emitted results (the aggregator
	// shard identity, matching the live driver's transport node ID).
	localID int

	slots  map[slotKey]*aggSlot
	sparse map[uint32]*sparseAgg

	// archive keeps, per slot, the final result of recently finished
	// tensors so a lost final multicast can be replayed to a
	// retransmitting worker even after the slot moved on (unreliable
	// mode). Bounded to the archiveDepth most recent tensors per
	// (slot, namespace), so one busy job cannot evict a quiet job's
	// replayable results.
	archive map[uint16]map[uint32]*archived
	// finished tracks exactly which tensor IDs have completed per
	// (slot, tid-namespace) (compactly: a completed prefix plus
	// out-of-order exceptions over the per-job sequence), so stale
	// packets cannot resurrect zombie slot state after their archive
	// entry was evicted. Concurrent tensors may finish out of order, so a
	// simple high-water mark would wrongly drop bootstraps of
	// lower-numbered tensors still in flight; and sequences are dense
	// only within a job, so the tracker is per namespace.
	finished map[uint16]map[uint32]*finishedTracker

	// SlotOpened/SlotFinished, when set, are called with the tensor ID
	// each time per-tensor aggregation state is created on a slot and
	// each time it concludes (dense: one call per (slot, tensor) pair;
	// sparse: one per tensor). They let a multi-tenant driver refcount
	// in-flight operations for admission control and graceful drain
	// without scraping machine internals. The callbacks run synchronously
	// inside HandlePacket and must not call back into the machine; the
	// machine stays pure — no goroutines, clocks, or I/O — and substrates
	// that leave them nil (the simulator) are unaffected.
	SlotOpened   func(tensorID uint32)
	SlotFinished func(tensorID uint32)

	stats AggStats
}

// NewAggregatorMachine creates an aggregator machine; localID is the node
// ID stamped on emitted results.
func NewAggregatorMachine(cfg Config, localID int) *AggregatorMachine {
	return &AggregatorMachine{
		cfg:      cfg.WithDefaults(),
		localID:  localID,
		slots:    make(map[slotKey]*aggSlot),
		sparse:   make(map[uint32]*sparseAgg),
		archive:  make(map[uint16]map[uint32]*archived),
		finished: make(map[uint16]map[uint32]*finishedTracker),
	}
}

// ActiveSlots reports how many per-tensor aggregation states (dense slot
// entries plus sparse tensors) are currently live. A draining driver
// polls this alongside its own admission refcounts to decide when all
// in-flight rounds have concluded.
func (m *AggregatorMachine) ActiveSlots() int { return len(m.slots) + len(m.sparse) }

// Stats returns a copy of the machine's traffic counters.
func (m *AggregatorMachine) Stats() AggStats { return m.stats }

// HandlePacket processes one decoded inbound message (dense data or
// sparse key-value) and returns the messages to transmit. Emitted result
// packets are never mutated afterwards, so drivers may encode once and
// fan out, or multicast the decoded packet by reference.
func (m *AggregatorMachine) HandlePacket(msg Msg) ([]Emit, error) {
	m.stats.PacketsRecvd++
	switch {
	case msg.Dense != nil:
		return m.handleDense(msg.Dense)
	case msg.Sparse != nil:
		return m.handleSparse(msg.Sparse)
	default:
		return nil, fmt.Errorf("protocol: aggregator received empty message")
	}
}

// aggSlot is the per-stream aggregation state. Column arrays are indexed
// by the fusion column (§3.2).
//
// Loss recovery generalizes Algorithm 2's two-way slot versioning to a
// mod-256 round counter carried in the packet's Version byte: the paper's
// single version bit cannot distinguish a retransmitted duplicate delayed
// by two rounds from a current-round packet (tolerable on the paper's
// single-switch fabric, not under arbitrary reordering), while a byte
// gives 256 rounds of reordering slack. A packet for an older round is
// answered with the previous round's result, which is exactly what a
// straggling worker is missing.
type aggSlot struct {
	tensorID  uint32
	blockSize int
	cols      int
	dtype     uint8

	// cur[c] is the block index currently being aggregated for column c
	// (nextUnknown until the first packet reveals it, nextDone when the
	// column is finished).
	cur []int64

	// nexts[c][wid] is the latest "next non-zero block" report from each
	// worker (reliable mode: persists across rounds because
	// non-contributors stay silent).
	nexts [][]int64

	// Current-round aggregation state.
	acc         []*accum // per column
	minNext     []int64  // per-round min next (unreliable mode)
	seen        []bool
	count       int
	round       uint8 // current round number mod 256 (unreliable mode)
	lastRes     *wire.Packet
	lastResSize int
	finished    bool
}

func (m *AggregatorMachine) newSlot(p *wire.Packet) *aggSlot {
	cols := p.Cols()
	s := &aggSlot{
		tensorID:  p.TensorID,
		blockSize: int(p.BlockSize),
		cols:      cols,
		dtype:     p.DType,
		cur:       make([]int64, cols),
		nexts:     make([][]int64, cols),
	}
	for c := range s.cur {
		s.cur[c] = nextUnknown
		s.nexts[c] = make([]int64, m.cfg.Workers)
		for w := range s.nexts[c] {
			s.nexts[c][w] = nextUnknown
		}
	}
	s.acc = make([]*accum, cols)
	for c := range s.acc {
		s.acc[c] = newAccum(m.cfg)
	}
	s.minNext = make([]int64, cols)
	for c := range s.minNext {
		s.minNext[c] = nextDone
	}
	s.seen = make([]bool, m.cfg.Workers)
	return s
}

func (m *AggregatorMachine) handleDense(p *wire.Packet) ([]Emit, error) {
	if int(p.WID) >= m.cfg.Workers {
		return nil, fmt.Errorf("protocol: packet from unknown worker %d", p.WID)
	}
	key := slotKey{p.Slot, p.TensorID}
	sl := m.slots[key]
	if sl == nil {
		if ar, ok := m.archive[p.Slot][p.TensorID]; ok {
			// Stale retransmission for a finished tensor: replay the
			// final result to the sender (Algorithm 2 replay path).
			m.stats.Replays++
			return []Emit{{Dst: int(p.WID), Packet: ar.pkt, Size: ar.size}}, nil
		}
		if m.isFinished(p.Slot, p.TensorID) {
			// A finished tensor already evicted from the archive: cannot
			// replay, but must not resurrect state either.
			m.stats.StaleFinished++
			return nil, nil
		}
		sl = m.newSlot(p)
		m.slots[key] = sl
		if m.SlotOpened != nil {
			m.SlotOpened(p.TensorID)
		}
	}
	if p.Cols() != sl.cols || int(p.BlockSize) != sl.blockSize || p.DType != sl.dtype {
		return nil, fmt.Errorf("protocol: slot %d: inconsistent geometry from worker %d", p.Slot, p.WID)
	}

	if m.cfg.Reliable {
		return m.processReliable(p, sl)
	}
	return m.processVersioned(p, sl)
}

// finishedTracker records a set of finished operation sequences compactly:
// every seq <= upTo has finished, plus the out-of-order exceptions above
// it. Sequence numbers are allocated densely (1, 2, 3, ...) within a job's
// tid namespace, so the exception set stays bounded by the number of that
// job's concurrent operations. (Full tensor IDs are dense only per
// namespace, hence one tracker per (slot, namespace).)
type finishedTracker struct {
	upTo   uint32
	except map[uint32]bool
}

func (f *finishedTracker) add(seq uint32) {
	if seq <= f.upTo {
		return
	}
	if f.except == nil {
		f.except = make(map[uint32]bool)
	}
	f.except[seq] = true
	for f.except[f.upTo+1] {
		delete(f.except, f.upTo+1)
		f.upTo++
	}
}

func (f *finishedTracker) has(seq uint32) bool {
	return seq <= f.upTo || f.except[seq]
}

// isFinished reports whether tensorID already completed on this slot.
func (m *AggregatorMachine) isFinished(slot uint16, tensorID uint32) bool {
	f := m.finished[slot][TidNamespace(tensorID)]
	return f != nil && f.has(TidSeq(tensorID))
}

func (m *AggregatorMachine) markFinished(slot uint16, tensorID uint32) {
	ns := TidNamespace(tensorID)
	fm := m.finished[slot]
	if fm == nil {
		fm = make(map[uint32]*finishedTracker)
		m.finished[slot] = fm
	}
	f := fm[ns]
	if f == nil {
		f = &finishedTracker{}
		fm[ns] = f
	}
	f.add(TidSeq(tensorID))
}

// processReliable implements Algorithm 1 (+ Block Fusion): silent workers,
// min-based completion.
func (m *AggregatorMachine) processReliable(p *wire.Packet, sl *aggSlot) ([]Emit, error) {
	wid := int(p.WID)
	if err := sl.merge(p, wid); err != nil {
		return nil, err
	}
	for c := 0; c < sl.cols; c++ {
		sl.nexts[c][wid] = decodeNext(p.Nexts[c])
	}
	// Completion: every column's current block is strictly below the
	// global minimum next (line 22 of Algorithm 1, per column).
	for c := 0; c < sl.cols; c++ {
		if sl.cur[c] == nextDone {
			continue
		}
		min := minOf(sl.nexts[c])
		if min == nextUnknown || min <= sl.cur[c] {
			return nil, nil // column still collecting
		}
		// An uninitialized column (cur == nextUnknown) completes only
		// once every worker reported, which min > nextUnknown implies.
	}
	concluded := sl.round
	sl.round++
	return m.finishRound(sl, p.Slot, concluded, func(c int) int64 { return minOf(sl.nexts[c]) })
}

// processVersioned implements Algorithm 2 with the round-counter
// extension: every worker sends exactly one packet (data or empty ack)
// per round; duplicates within the current round are ignored; packets for
// earlier rounds indicate the sender missed a result, which is replayed
// unicast (the paper's lines 47-49 generalized).
func (m *AggregatorMachine) processVersioned(p *wire.Packet, sl *aggSlot) ([]Emit, error) {
	wid := int(p.WID)
	if p.Version != sl.round {
		// An old-round packet (retransmission or reordered duplicate):
		// the sender is at most one result behind a live round, and that
		// missing result is lastRes. Deeper-stale duplicates receive a
		// result their worker will discard by version mismatch.
		m.stats.StaleRounds++
		if sl.lastRes != nil {
			m.stats.Replays++
			return []Emit{{Dst: wid, Packet: sl.lastRes, Size: sl.lastResSize}}, nil
		}
		return nil, nil
	}
	if sl.seen[wid] {
		m.stats.DupsFiltered++
		return nil, nil // duplicate within the live round; original counted
	}
	sl.seen[wid] = true
	sl.count++
	if err := sl.merge(p, wid); err != nil {
		return nil, err
	}
	for c := 0; c < sl.cols; c++ {
		n := decodeNext(p.Nexts[c])
		if n < sl.minNext[c] {
			sl.minNext[c] = n
		}
	}
	if sl.count < m.cfg.Workers {
		return nil, nil
	}
	mins := append([]int64(nil), sl.minNext...)
	// Advance the round before emitting so the result carries the round
	// it concludes while new state is clean for the next one.
	sl.count = 0
	for i := range sl.seen {
		sl.seen[i] = false
	}
	concluded := sl.round
	sl.round++
	return m.finishRound(sl, p.Slot, concluded, func(c int) int64 { return mins[c] })
}

// merge accumulates the packet's blocks into the slot's accumulators and
// initializes column cursors from the block indices.
func (sl *aggSlot) merge(p *wire.Packet, wid int) error {
	for _, b := range p.Blocks {
		c := ColOf(b.Index, sl.cols)
		if sl.cur[c] == nextUnknown {
			sl.cur[c] = int64(b.Index)
		}
		if int64(b.Index) != sl.cur[c] {
			return fmt.Errorf("protocol: worker %d sent block %d for column %d, expected %d",
				wid, b.Index, c, sl.cur[c])
		}
		sl.acc[c].add(wid, b.Data)
	}
	return nil
}

// finishRound emits the multicast result for a completed round and
// advances or finishes the slot. minFor(c) yields the new global next for
// column c; round is the concluded round's number.
func (m *AggregatorMachine) finishRound(sl *aggSlot, slot uint16, round uint8, minFor func(int) int64) ([]Emit, error) {
	res := &wire.Packet{
		Type:      wire.TypeResult,
		Version:   round,
		DType:     sl.dtype,
		Slot:      slot,
		WID:       uint16(m.localID & 0xFFFF),
		TensorID:  sl.tensorID,
		BlockSize: uint32(sl.blockSize),
		Nexts:     make([]uint32, sl.cols),
	}
	allDone := true
	for c := 0; c < sl.cols; c++ {
		if sl.cur[c] != nextUnknown && sl.cur[c] != nextDone {
			res.Blocks = append(res.Blocks, wire.Block{
				Index: uint32(sl.cur[c]),
				Data:  sl.acc[c].result(),
			})
		}
		min := minFor(c)
		if sl.cur[c] == nextDone {
			min = nextDone
		}
		if min == nextDone {
			res.Nexts[c] = wire.Inf(c)
			sl.cur[c] = nextDone
		} else {
			res.Nexts[c] = uint32(min)
			sl.cur[c] = min
			allDone = false
		}
		sl.acc[c].reset()
		sl.minNext[c] = nextDone
	}
	size := wire.EncodedPacketSize(res)
	sl.lastRes = res
	sl.lastResSize = size
	if allDone {
		sl.finished = true
		m.archiveResult(slot, sl.tensorID, res, size)
		delete(m.slots, slotKey{slot, sl.tensorID})
		if m.SlotFinished != nil {
			m.SlotFinished(sl.tensorID)
		}
	}
	m.stats.RoundsCompleted++
	m.stats.BlocksAggregated += int64(len(res.Blocks))
	obs.EmitSlot(obs.EvSlotComplete, int32(m.localID), sl.tensorID, slot, round, int64(len(res.Blocks)))
	emits := make([]Emit, 0, m.cfg.Workers)
	for w := 0; w < m.cfg.Workers; w++ {
		emits = append(emits, Emit{Dst: w, Packet: res, Size: size})
		m.stats.ResultsSent++
	}
	return emits, nil
}

// archiveDepth bounds the per-(slot, namespace) final-result archive; it
// must exceed the number of concurrently outstanding tensors per job so a
// straggler can always recover a lost final multicast. Eviction is scoped
// to the finishing tensor's namespace: a busy job churning through
// results must not evict a quiet job's still-replayable ones.
const archiveDepth = 16

func (m *AggregatorMachine) archiveResult(slot uint16, tensorID uint32, res *wire.Packet, size int) {
	am := m.archive[slot]
	if am == nil {
		am = make(map[uint32]*archived)
		m.archive[slot] = am
	}
	am[tensorID] = &archived{pkt: res, size: size}
	m.markFinished(slot, tensorID)
	// Bound the archive to the namespace's most recent operation
	// sequences.
	ns := TidNamespace(tensorID)
	inNs := 0
	for id := range am {
		if TidNamespace(id) == ns {
			inNs++
		}
	}
	if inNs > archiveDepth {
		ids := make([]uint32, 0, inNs)
		for id := range am {
			if TidNamespace(id) == ns {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids[:len(ids)-archiveDepth] {
			delete(am, id)
		}
	}
}

// accum accumulates one block-sized unit of aggregation, supporting plain
// float32 summation, fixed-point (switch-mode) summation, and
// deterministic worker-ID-ordered reduction.
type accum struct {
	det   bool
	scale float64
	f     []float32
	q     []int64
	per   map[int][]float32
}

func newAccum(cfg Config) *accum {
	a := &accum{det: cfg.DeterministicOrder, scale: cfg.QuantizeScale}
	if a.det {
		a.per = make(map[int][]float32)
	}
	return a
}

func (a *accum) add(wid int, data []float32) {
	if a.det {
		c := make([]float32, len(data))
		copy(c, data)
		a.per[wid] = c
		return
	}
	if a.scale != 0 {
		if len(a.q) < len(data) {
			a.q = append(a.q, make([]int64, len(data)-len(a.q))...)
		}
		for i, v := range data {
			a.q[i] += int64(math.RoundToEven(float64(v) * a.scale))
		}
		return
	}
	if len(a.f) < len(data) {
		a.f = append(a.f, make([]float32, len(data)-len(a.f))...)
	}
	tensor.AddF32(a.f, data)
}

func (a *accum) result() []float32 {
	if a.det {
		wids := make([]int, 0, len(a.per))
		for w := range a.per {
			wids = append(wids, w)
		}
		sort.Ints(wids)
		var out []float32
		for _, w := range wids {
			d := a.per[w]
			if len(out) < len(d) {
				out = append(out, make([]float32, len(d)-len(out))...)
			}
			if a.scale != 0 {
				// Deterministic + quantized: quantize each contribution.
				for i, v := range d {
					out[i] += float32(math.RoundToEven(float64(v)*a.scale) / a.scale)
				}
			} else {
				tensor.AddF32(out, d)
			}
		}
		return out
	}
	if a.scale != 0 {
		out := make([]float32, len(a.q))
		for i, v := range a.q {
			out[i] = float32(float64(v) / a.scale)
		}
		return out
	}
	out := make([]float32, len(a.f))
	copy(out, a.f)
	return out
}

func (a *accum) reset() {
	a.f = a.f[:0]
	a.q = a.q[:0]
	if a.det {
		clear(a.per)
	}
}
