package protocol

import (
	"fmt"
	"math"
	"sort"

	"omnireduce/internal/obs"
	"omnireduce/internal/tensor"
	"omnireduce/internal/wire"
)

// AggStats counts aggregator-side protocol activity. The recovery
// counters distinguish the three fates of a non-live packet: a duplicate
// of the current round (filtered), a packet from an old round (answered
// with a replay when possible), and a packet for a tensor that finished
// long enough ago that its archived result was evicted (dropped).
type AggStats struct {
	PacketsRecvd     int64
	BlocksAggregated int64
	RoundsCompleted  int64
	ResultsSent      int64
	Replays          int64 // unicast result retransmissions (Algorithm 2)
	DupsFiltered     int64 // same-round duplicates discarded
	StaleRounds      int64 // packets arriving for an already-concluded round
	StaleFinished    int64 // packets for finished tensors past the archive
	FastForwards     int64 // rounds skipped resyncing after a checkpoint restore
}

// slotEnt is one live tensor's aggregation state within a slot bucket.
type slotEnt struct {
	tid uint32
	sl  *aggSlot
}

// archived is a finished tensor's final result retained for replay. The
// packet is a deep copy (live result packets are recycled shells).
type archived struct {
	pkt  *wire.Packet
	size int
}

// AggregatorMachine is one aggregator node's protocol state: it owns the
// slots of every stream mapped to it and runs the block aggregation of
// Algorithms 1 and 2 plus the key-value aggregation of Algorithm 3.
//
// The machine is purely event-driven: HandlePacket consumes one decoded
// inbound message and appends the messages to transmit to the caller's
// EmitBuf. It requests no timers (the aggregator side of the protocol is
// passive). Methods must not be called concurrently.
//
// All per-tensor round state (slots, accumulators, result shells) is
// free-listed inside the machine and recycled across tensors, so the
// steady state aggregates and emits without allocating. The free-list
// traffic is reported through the obs pool counters (protocol_agg_slots,
// protocol_sparse_slots).
type AggregatorMachine struct {
	cfg Config
	// localID is stamped as the WID of emitted results (the aggregator
	// shard identity, matching the live driver's transport node ID).
	localID int

	// table is the slot-indexed live-tensor table: table[slot] is the
	// bucket of tensors currently aggregating on that stream slot (several
	// tensors may be in flight concurrently under bucket pipelining, but
	// the bucket stays tiny — it is bounded by the job's in-flight window,
	// so a linear scan beats hashing a composite key).
	table []([]slotEnt)
	live  int // total live dense entries across all buckets

	sparse map[uint32]*sparseAgg

	// slotFree / sparseFree recycle retired per-tensor state.
	slotFree   []*aggSlot
	sparseFree []*sparseAgg

	// archive keeps, per slot, the final result of recently finished
	// tensors so a lost final multicast can be replayed to a
	// retransmitting worker even after the slot moved on (unreliable
	// mode). Bounded to the archiveDepth most recent tensors per
	// (slot, namespace), so one busy job cannot evict a quiet job's
	// replayable results.
	archive map[uint16]map[uint32]*archived
	// finished tracks exactly which tensor IDs have completed per
	// (slot, tid-namespace) (compactly: a completed prefix plus
	// out-of-order exceptions over the per-job sequence), so stale
	// packets cannot resurrect zombie slot state after their archive
	// entry was evicted. Concurrent tensors may finish out of order, so a
	// simple high-water mark would wrongly drop bootstraps of
	// lower-numbered tensors still in flight; and sequences are dense
	// only within a job, so the tracker is per namespace.
	finished map[uint16]map[uint32]*finishedTracker

	// SlotOpened/SlotFinished, when set, are called with the tensor ID
	// each time per-tensor aggregation state is created on a slot and
	// each time it concludes (dense: one call per (slot, tensor) pair;
	// sparse: one per tensor). They let a multi-tenant driver refcount
	// in-flight operations for admission control and graceful drain
	// without scraping machine internals. The callbacks run synchronously
	// inside HandlePacket and must not call back into the machine; the
	// machine stays pure — no goroutines, clocks, or I/O — and substrates
	// that leave them nil (the simulator) are unaffected.
	SlotOpened   func(tensorID uint32)
	SlotFinished func(tensorID uint32)

	stats AggStats
}

// NewAggregatorMachine creates an aggregator machine; localID is the node
// ID stamped on emitted results.
func NewAggregatorMachine(cfg Config, localID int) *AggregatorMachine {
	return &AggregatorMachine{
		cfg:      cfg.WithDefaults(),
		localID:  localID,
		sparse:   make(map[uint32]*sparseAgg),
		archive:  make(map[uint16]map[uint32]*archived),
		finished: make(map[uint16]map[uint32]*finishedTracker),
	}
}

// Presize reserves the slot table for `slots` stream slots with room for
// `perSlot` concurrently live tensors each, so the steady state never
// grows the table. Drivers size it from their registry (stream count ×
// in-flight window); calling it is optional and never shrinks.
func (m *AggregatorMachine) Presize(slots, perSlot int) {
	if perSlot < 1 {
		perSlot = 1
	}
	for len(m.table) < slots {
		m.table = append(m.table, nil)
	}
	for i := range m.table {
		if m.table[i] == nil {
			m.table[i] = make([]slotEnt, 0, perSlot)
		}
	}
}

// ActiveSlots reports how many per-tensor aggregation states (dense slot
// entries plus sparse tensors) are currently live. A draining driver
// polls this alongside its own admission refcounts to decide when all
// in-flight rounds have concluded.
func (m *AggregatorMachine) ActiveSlots() int { return m.live + len(m.sparse) }

// Release returns every live slot's state to the machine's free lists and
// balances the obs pool counters. Drivers call it when retiring a machine
// (tenant teardown, generation bump); the machine must not be used
// afterwards except to be garbage collected.
func (m *AggregatorMachine) Release() {
	for si := range m.table {
		for _, e := range m.table[si] {
			aggSlotPuts.Add(1)
			obs.Emit(obs.EvMachinePoolPut, e.tid, 1)
		}
		m.table[si] = nil
	}
	m.live = 0
	for tid := range m.sparse {
		sparseSlotPuts.Add(1)
		obs.Emit(obs.EvMachinePoolPut, tid, 2)
		delete(m.sparse, tid)
	}
}

// Stats returns a copy of the machine's traffic counters.
func (m *AggregatorMachine) Stats() AggStats { return m.stats }

// HandlePacket processes one decoded inbound message (dense data or
// sparse key-value) and appends the messages to transmit to eb. Emitted
// result packets are reusable shells under the Emit ownership contract:
// the caller must consume them before the next HandlePacket call. Within
// one call, a multicast result is pointer-equal across its fan-out, so
// drivers may encode once and send N times.
func (m *AggregatorMachine) HandlePacket(msg Msg, eb *EmitBuf) error {
	m.stats.PacketsRecvd++
	switch {
	case msg.Dense != nil:
		return m.handleDense(msg.Dense, eb)
	case msg.Sparse != nil:
		return m.handleSparse(msg.Sparse, eb)
	default:
		return fmt.Errorf("protocol: aggregator received empty message")
	}
}

// aggSlot is the per-stream aggregation state. Column arrays are indexed
// by the fusion column (§3.2). Retired slots park on the machine's free
// list with their arrays intact, so a recycled slot re-arms without
// allocating.
//
// Loss recovery generalizes Algorithm 2's two-way slot versioning to a
// mod-256 round counter carried in the packet's Version byte: the paper's
// single version bit cannot distinguish a retransmitted duplicate delayed
// by two rounds from a current-round packet (tolerable on the paper's
// single-switch fabric, not under arbitrary reordering), while a byte
// gives 256 rounds of reordering slack. A packet for an older round is
// answered with the previous round's result, which is exactly what a
// straggling worker is missing.
type aggSlot struct {
	tensorID  uint32
	blockSize int
	cols      int
	dtype     uint8

	// cur[c] is the block index currently being aggregated for column c
	// (nextUnknown until the first packet reveals it, nextDone when the
	// column is finished).
	cur []int64

	// nexts[c][wid] is the latest "next non-zero block" report from each
	// worker (reliable mode: persists across rounds because
	// non-contributors stay silent).
	nexts [][]int64

	// Current-round aggregation state.
	acc         []accum // per column
	minNext     []int64 // per-round min next (unreliable mode)
	mins        []int64 // scratch: the concluded round's global nexts
	seen        []bool
	count       int
	round       uint8 // current round number mod 256 (unreliable mode)
	lastRes     *wire.Packet
	lastResSize int
	finished    bool

	// shells/arenas are the slot's two reusable result packets and their
	// block-payload arenas, flipped each finished round: the shell emitted
	// for round r is only rebuilt at round r+2, after the driver consumed
	// it (and after any stale-round replay of it went out).
	shells [2]wire.Packet
	arenas [2][]float32
	flip   int
}

// resizeI64 returns s with length n, reusing capacity; contents are
// unspecified (callers refill).
func resizeI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func (m *AggregatorMachine) slotAt(slot uint16, tid uint32) *aggSlot {
	if int(slot) >= len(m.table) {
		return nil
	}
	for _, e := range m.table[slot] {
		if e.tid == tid {
			return e.sl
		}
	}
	return nil
}

func (m *AggregatorMachine) putSlot(slot uint16, tid uint32, sl *aggSlot) {
	for int(slot) >= len(m.table) {
		m.table = append(m.table, nil)
	}
	m.table[slot] = append(m.table[slot], slotEnt{tid: tid, sl: sl})
	m.live++
}

// dropSlot removes (slot, tid) from the table (swap-remove within the
// bucket) and returns its state, or nil if absent.
func (m *AggregatorMachine) dropSlot(slot uint16, tid uint32) *aggSlot {
	b := m.table[slot]
	for i, e := range b {
		if e.tid == tid {
			last := len(b) - 1
			b[i] = b[last]
			b[last] = slotEnt{}
			m.table[slot] = b[:last]
			m.live--
			return e.sl
		}
	}
	return nil
}

// freeSlot parks a retired slot on the free list. Its shells may still be
// referenced by emits pending consumption; they are only rewritten after
// the slot is re-armed AND finishes a round, which is at least one
// machine call later — past the Emit contract's consumption deadline.
func (m *AggregatorMachine) freeSlot(sl *aggSlot) {
	aggSlotPuts.Add(1)
	obs.Emit(obs.EvMachinePoolPut, sl.tensorID, 1)
	sl.lastRes = nil
	m.slotFree = append(m.slotFree, sl)
}

// newSlot re-arms a free-listed (or fresh) slot for p's tensor.
func (m *AggregatorMachine) newSlot(p *wire.Packet) *aggSlot {
	aggSlotGets.Add(1)
	obs.Emit(obs.EvMachinePoolGet, p.TensorID, 1)
	var s *aggSlot
	if n := len(m.slotFree); n > 0 {
		s = m.slotFree[n-1]
		m.slotFree[n-1] = nil
		m.slotFree = m.slotFree[:n-1]
	} else {
		s = &aggSlot{}
	}
	cols := p.Cols()
	s.tensorID = p.TensorID
	s.blockSize = int(p.BlockSize)
	s.cols = cols
	s.dtype = p.DType
	s.count = 0
	s.round = 0
	s.lastRes = nil
	s.lastResSize = 0
	s.finished = false
	s.cur = resizeI64(s.cur, cols)
	s.minNext = resizeI64(s.minNext, cols)
	s.mins = resizeI64(s.mins, cols)
	for c := 0; c < cols; c++ {
		s.cur[c] = nextUnknown
		s.minNext[c] = nextDone
	}
	for cap(s.nexts) < cols {
		s.nexts = append(s.nexts[:cap(s.nexts)], nil)
	}
	s.nexts = s.nexts[:cols]
	for c := range s.nexts {
		s.nexts[c] = resizeI64(s.nexts[c], m.cfg.Workers)
		for w := range s.nexts[c] {
			s.nexts[c][w] = nextUnknown
		}
	}
	for cap(s.acc) < cols {
		s.acc = append(s.acc[:cap(s.acc)], accum{})
	}
	s.acc = s.acc[:cols]
	for c := range s.acc {
		s.acc[c].init(m.cfg)
	}
	if cap(s.seen) < m.cfg.Workers {
		s.seen = make([]bool, m.cfg.Workers)
	}
	s.seen = s.seen[:m.cfg.Workers]
	for i := range s.seen {
		s.seen[i] = false
	}
	return s
}

func (m *AggregatorMachine) handleDense(p *wire.Packet, eb *EmitBuf) error {
	if int(p.WID) >= m.cfg.Workers {
		return fmt.Errorf("protocol: packet from unknown worker %d", p.WID)
	}
	sl := m.slotAt(p.Slot, p.TensorID)
	if sl == nil {
		if ar, ok := m.archive[p.Slot][p.TensorID]; ok {
			// Stale retransmission for a finished tensor: replay the
			// final result to the sender (Algorithm 2 replay path).
			m.stats.Replays++
			eb.Append(Emit{Dst: int(p.WID), Packet: ar.pkt, Size: ar.size})
			return nil
		}
		if m.isFinished(p.Slot, p.TensorID) {
			// A finished tensor already evicted from the archive: cannot
			// replay, but must not resurrect state either.
			m.stats.StaleFinished++
			return nil
		}
		sl = m.newSlot(p)
		m.putSlot(p.Slot, p.TensorID, sl)
		if m.SlotOpened != nil {
			m.SlotOpened(p.TensorID)
		}
	}
	if p.Cols() != sl.cols || int(p.BlockSize) != sl.blockSize || p.DType != sl.dtype {
		return fmt.Errorf("protocol: slot %d: inconsistent geometry from worker %d", p.Slot, p.WID)
	}

	if m.cfg.Reliable {
		return m.processReliable(p, sl, eb)
	}
	return m.processVersioned(p, sl, eb)
}

// finishedTracker records a set of finished operation sequences compactly:
// every seq <= upTo has finished, plus the out-of-order exceptions above
// it. Sequence numbers are allocated densely (1, 2, 3, ...) within a job's
// tid namespace, so the exception set stays bounded by the number of that
// job's concurrent operations. (Full tensor IDs are dense only per
// namespace, hence one tracker per (slot, namespace).)
type finishedTracker struct {
	upTo   uint32
	except map[uint32]bool
}

func (f *finishedTracker) add(seq uint32) {
	if seq <= f.upTo {
		return
	}
	if f.except == nil {
		f.except = make(map[uint32]bool)
	}
	f.except[seq] = true
	for f.except[f.upTo+1] {
		delete(f.except, f.upTo+1)
		f.upTo++
	}
}

func (f *finishedTracker) has(seq uint32) bool {
	return seq <= f.upTo || f.except[seq]
}

// isFinished reports whether tensorID already completed on this slot.
func (m *AggregatorMachine) isFinished(slot uint16, tensorID uint32) bool {
	f := m.finished[slot][TidNamespace(tensorID)]
	return f != nil && f.has(TidSeq(tensorID))
}

func (m *AggregatorMachine) markFinished(slot uint16, tensorID uint32) {
	ns := TidNamespace(tensorID)
	fm := m.finished[slot]
	if fm == nil {
		fm = make(map[uint32]*finishedTracker)
		m.finished[slot] = fm
	}
	f := fm[ns]
	if f == nil {
		f = &finishedTracker{}
		fm[ns] = f
	}
	f.add(TidSeq(tensorID))
}

// processReliable implements Algorithm 1 (+ Block Fusion): silent workers,
// min-based completion.
func (m *AggregatorMachine) processReliable(p *wire.Packet, sl *aggSlot, eb *EmitBuf) error {
	wid := int(p.WID)
	if err := sl.merge(p, wid); err != nil {
		return err
	}
	for c := 0; c < sl.cols; c++ {
		sl.nexts[c][wid] = decodeNext(p.Nexts[c])
	}
	// Completion: every column's current block is strictly below the
	// global minimum next (line 22 of Algorithm 1, per column). The mins
	// double as the concluded round's global nexts for finishRound.
	for c := 0; c < sl.cols; c++ {
		if sl.cur[c] == nextDone {
			sl.mins[c] = nextDone
			continue
		}
		min := minOf(sl.nexts[c])
		if min == nextUnknown || min <= sl.cur[c] {
			return nil // column still collecting
		}
		// An uninitialized column (cur == nextUnknown) completes only
		// once every worker reported, which min > nextUnknown implies.
		sl.mins[c] = min
	}
	concluded := sl.round
	sl.round++
	return m.finishRound(sl, p.Slot, concluded, eb)
}

// processVersioned implements Algorithm 2 with the round-counter
// extension: every worker sends exactly one packet (data or empty ack)
// per round; duplicates within the current round are ignored; packets for
// earlier rounds indicate the sender missed a result, which is replayed
// unicast (the paper's lines 47-49 generalized).
func (m *AggregatorMachine) processVersioned(p *wire.Packet, sl *aggSlot, eb *EmitBuf) error {
	wid := int(p.WID)
	if p.Version == sl.round+1 {
		// The whole worker set is one round ahead of us: this aggregator
		// was restored from a checkpoint taken before the last result
		// went out (a failover that lost the final checkpoint delta).
		// Round sl.round's result already lives in the workers' output
		// views — a worker only advances to round r+1 after applying
		// result r — so the round is globally concluded and we fast-
		// forward: rearm the slot for the new round and take the cursor
		// positions from the incoming packets (all workers agree on them,
		// having applied the same result). Only ever one round: workers
		// cannot reach r+2 without a result for r+1, which only we issue.
		m.stats.FastForwards++
		for c := 0; c < sl.cols; c++ {
			sl.cur[c] = nextUnknown
			sl.minNext[c] = nextDone
			for w := range sl.nexts[c] {
				sl.nexts[c][w] = nextUnknown
			}
			sl.acc[c].reset()
		}
		for i := range sl.seen {
			sl.seen[i] = false
		}
		sl.count = 0
		sl.round = p.Version
	}
	if p.Version != sl.round {
		// An old-round packet (retransmission or reordered duplicate):
		// the sender is at most one result behind a live round, and that
		// missing result is lastRes. Deeper-stale duplicates receive a
		// result their worker will discard by version mismatch.
		m.stats.StaleRounds++
		if sl.lastRes != nil {
			m.stats.Replays++
			eb.Append(Emit{Dst: wid, Packet: sl.lastRes, Size: sl.lastResSize})
		}
		return nil
	}
	if sl.seen[wid] {
		m.stats.DupsFiltered++
		return nil // duplicate within the live round; original counted
	}
	sl.seen[wid] = true
	sl.count++
	if err := sl.merge(p, wid); err != nil {
		return err
	}
	for c := 0; c < sl.cols; c++ {
		n := decodeNext(p.Nexts[c])
		if n < sl.minNext[c] {
			sl.minNext[c] = n
		}
	}
	if sl.count < m.cfg.Workers {
		return nil
	}
	sl.mins = append(sl.mins[:0], sl.minNext...)
	// Advance the round before emitting so the result carries the round
	// it concludes while new state is clean for the next one.
	sl.count = 0
	for i := range sl.seen {
		sl.seen[i] = false
	}
	concluded := sl.round
	sl.round++
	return m.finishRound(sl, p.Slot, concluded, eb)
}

// merge accumulates the packet's blocks into the slot's accumulators and
// initializes column cursors from the block indices.
func (sl *aggSlot) merge(p *wire.Packet, wid int) error {
	for _, b := range p.Blocks {
		c := ColOf(b.Index, sl.cols)
		if sl.cur[c] == nextUnknown {
			sl.cur[c] = int64(b.Index)
		}
		if int64(b.Index) != sl.cur[c] {
			return fmt.Errorf("protocol: worker %d sent block %d for column %d, expected %d",
				wid, b.Index, c, sl.cur[c])
		}
		sl.acc[c].add(wid, b.Data)
	}
	return nil
}

// finishRound emits the multicast result for a completed round into eb
// and advances or finishes the slot. sl.mins[c] holds the new global next
// for column c; round is the concluded round's number. The result packet
// is the slot's flipped shell with block payloads carved from its arena —
// consumed by the driver before the shell's next rewrite two rounds out.
func (m *AggregatorMachine) finishRound(sl *aggSlot, slot uint16, round uint8, eb *EmitBuf) error {
	sl.flip ^= 1
	res := &sl.shells[sl.flip]
	if cap(res.Nexts) < sl.cols {
		res.Nexts = make([]uint32, sl.cols)
	}
	res.Nexts = res.Nexts[:sl.cols]
	res.Blocks = res.Blocks[:0]
	res.Type = wire.TypeResult
	res.Version = round
	res.DType = sl.dtype
	res.Slot = slot
	res.WID = uint16(m.localID & 0xFFFF)
	res.TensorID = sl.tensorID
	res.BlockSize = uint32(sl.blockSize)
	// Block payloads are carved from the shell's arena. If the arena
	// reallocates mid-loop, earlier blocks keep reading the old backing
	// (their copied values are intact there) and the grown capacity is
	// kept for the next use of this shell, so the steady state stops
	// reallocating.
	arena := sl.arenas[sl.flip][:0]
	allDone := true
	for c := 0; c < sl.cols; c++ {
		if sl.cur[c] != nextUnknown && sl.cur[c] != nextDone {
			start := len(arena)
			arena = sl.acc[c].appendResult(arena)
			res.Blocks = append(res.Blocks, wire.Block{
				Index: uint32(sl.cur[c]),
				Data:  arena[start:len(arena):len(arena)],
			})
		}
		min := sl.mins[c]
		if sl.cur[c] == nextDone {
			min = nextDone
		}
		if min == nextDone {
			res.Nexts[c] = wire.Inf(c)
			sl.cur[c] = nextDone
		} else {
			res.Nexts[c] = uint32(min)
			sl.cur[c] = min
			allDone = false
		}
		sl.acc[c].reset()
		sl.minNext[c] = nextDone
	}
	sl.arenas[sl.flip] = arena
	size := wire.EncodedPacketSize(res)
	sl.lastRes = res
	sl.lastResSize = size
	if allDone {
		sl.finished = true
		m.archiveResult(slot, sl.tensorID, res, size)
		if freed := m.dropSlot(slot, sl.tensorID); freed != nil {
			m.freeSlot(freed)
		}
		if m.SlotFinished != nil {
			m.SlotFinished(sl.tensorID)
		}
	}
	m.stats.RoundsCompleted++
	m.stats.BlocksAggregated += int64(len(res.Blocks))
	obs.EmitSlot(obs.EvSlotComplete, int32(m.localID), sl.tensorID, slot, round, int64(len(res.Blocks)))
	for w := 0; w < m.cfg.Workers; w++ {
		eb.Append(Emit{Dst: w, Packet: res, Size: size})
		m.stats.ResultsSent++
	}
	return nil
}

// archiveDepth bounds the per-(slot, namespace) final-result archive; it
// must exceed the number of concurrently outstanding tensors per job so a
// straggler can always recover a lost final multicast. Eviction is scoped
// to the finishing tensor's namespace: a busy job churning through
// results must not evict a quiet job's still-replayable ones.
const archiveDepth = 16

// clonePacket deep-copies a result packet (header, nexts, and block
// payloads into one fresh arena) for the archive: archived replays must
// outlive the recycled shell they were built in.
func clonePacket(p *wire.Packet) *wire.Packet {
	c := &wire.Packet{}
	*c = *p
	c.Nexts = append([]uint32(nil), p.Nexts...)
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Data)
	}
	data := make([]float32, 0, n)
	c.Blocks = make([]wire.Block, len(p.Blocks))
	for i, b := range p.Blocks {
		start := len(data)
		data = append(data, b.Data...)
		c.Blocks[i] = wire.Block{Index: b.Index, Data: data[start:len(data):len(data)]}
	}
	return c
}

func (m *AggregatorMachine) archiveResult(slot uint16, tensorID uint32, res *wire.Packet, size int) {
	am := m.archive[slot]
	if am == nil {
		am = make(map[uint32]*archived)
		m.archive[slot] = am
	}
	am[tensorID] = &archived{pkt: clonePacket(res), size: size}
	m.markFinished(slot, tensorID)
	// Bound the archive to the namespace's most recent operation
	// sequences.
	ns := TidNamespace(tensorID)
	inNs := 0
	for id := range am {
		if TidNamespace(id) == ns {
			inNs++
		}
	}
	if inNs > archiveDepth {
		ids := make([]uint32, 0, inNs)
		for id := range am {
			if TidNamespace(id) == ns {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids[:len(ids)-archiveDepth] {
			delete(am, id)
		}
	}
}

// accum accumulates one block-sized unit of aggregation, supporting plain
// float32 summation, fixed-point (switch-mode) summation, and
// deterministic worker-ID-ordered reduction. All backing arrays are
// retained across rounds and tensors (init/reset truncate, never free).
type accum struct {
	det   bool
	scale float64
	f     []float32
	q     []int64
	// Deterministic mode: per[wid] is worker wid's block copy for the
	// current round (nil = absent), carved from arena. If arena
	// reallocates as workers arrive, earlier per-slices keep reading the
	// old backing — their copied values are intact there — and the grown
	// capacity makes later rounds allocation-free.
	arena []float32
	per   [][]float32
}

func newAccum(cfg Config) *accum {
	a := &accum{}
	a.init(cfg)
	return a
}

// init re-arms the accumulator for a (possibly different) config,
// truncating but keeping backing arrays.
func (a *accum) init(cfg Config) {
	a.det = cfg.DeterministicOrder
	a.scale = cfg.QuantizeScale
	a.reset()
}

func (a *accum) add(wid int, data []float32) {
	if a.det {
		for wid >= len(a.per) {
			a.per = append(a.per, nil)
		}
		start := len(a.arena)
		a.arena = append(a.arena, data...)
		a.per[wid] = a.arena[start:len(a.arena):len(a.arena)]
		return
	}
	if a.scale != 0 {
		if len(a.q) < len(data) {
			a.q = append(a.q, make([]int64, len(data)-len(a.q))...)
		}
		for i, v := range data {
			a.q[i] += int64(math.RoundToEven(float64(v) * a.scale))
		}
		return
	}
	if len(a.f) < len(data) {
		a.f = append(a.f, make([]float32, len(data)-len(a.f))...)
	}
	tensor.AddF32(a.f, data)
}

// appendResult appends the round's aggregate to dst and returns the
// extended slice. Deterministic mode folds worker contributions in
// ascending worker-ID order (the same float-op sequence as summing a
// sorted map), so results are bit-identical run to run.
func (a *accum) appendResult(dst []float32) []float32 {
	if a.det {
		start := len(dst)
		for w := 0; w < len(a.per); w++ {
			d := a.per[w]
			if d == nil {
				continue
			}
			for len(dst)-start < len(d) {
				dst = append(dst, 0)
			}
			out := dst[start:]
			if a.scale != 0 {
				// Deterministic + quantized: quantize each contribution.
				for i, v := range d {
					out[i] += float32(math.RoundToEven(float64(v)*a.scale) / a.scale)
				}
			} else {
				tensor.AddF32(out, d)
			}
		}
		return dst
	}
	if a.scale != 0 {
		for _, v := range a.q {
			dst = append(dst, float32(float64(v)/a.scale))
		}
		return dst
	}
	return append(dst, a.f...)
}

func (a *accum) reset() {
	a.f = a.f[:0]
	a.q = a.q[:0]
	a.arena = a.arena[:0]
	for i := range a.per {
		a.per[i] = nil
	}
}
