// Package protocol is the sans-I/O engine of the OmniReduce protocol:
// Algorithm 1 streaming aggregation, the §3.1.1 slot/stream scheduling,
// the §3.2 Block Fusion column layout, Algorithm 2's round-counter loss
// recovery, and Algorithm 3's sparse key-value mode — expressed as pure
// event-driven state machines with no goroutines, clocks, sockets, or
// buffers of encoded bytes inside.
//
// The machines are driven by their callers ("drivers"):
//
//   - WorkerMachine and AggregatorMachine consume decoded wire packets via
//     HandlePacket and wall-clock notifications via HandleTimeout, and
//     return []Emit — destination node IDs plus decoded packets annotated
//     with their exact encoded size (internal/wire's EncodedPacketSize).
//   - A driver owns all I/O: internal/core pumps real transport.Conn
//     messages and time.Timer ticks through the machines, while
//     internal/netsim/simproto feeds the same machines from a
//     discrete-event loop in virtual time, charging Emit.Size bytes to the
//     simulated fabric.
//
// Because both substrates execute this one implementation, the simulator
// cannot drift from the live protocol: round schedules, loss recovery, and
// packet sizes are decided here and only here.
package protocol

import (
	"fmt"
	"math"
	"time"

	"omnireduce/internal/wire"
)

// Config parameterizes the protocol machines. It mirrors core.Config's
// protocol-relevant fields; every participant in a job must agree on it.
type Config struct {
	// Workers is the number of worker nodes, with IDs 0..Workers-1.
	Workers int
	// Aggregators lists the aggregator node IDs. Stream s is served by
	// Aggregators[s % len(Aggregators)].
	Aggregators []int
	// BlockSize is the number of float32 elements per block.
	BlockSize int
	// FusionWidth is the number of blocks fused per packet (§3.2).
	FusionWidth int
	// Streams is the number of parallel aggregation streams (§3.1.1).
	Streams int
	// Reliable selects Algorithm 1 (in-order lossless fabric, silent
	// workers, no timers) over Algorithm 2 (acks, rounds, retransmission).
	Reliable bool
	// RetransmitTimeout is the initial per-packet loss-detection timer.
	RetransmitTimeout time.Duration
	// RetransmitBackoff multiplies a stream's timeout after every
	// retransmission; >= 1 when set.
	RetransmitBackoff float64
	// RetransmitCeiling caps the backed-off timeout.
	RetransmitCeiling time.Duration
	// RetransmitJitter is the fractional jitter in [0,1) applied to
	// backed-off timeouts, drawn from a deterministic per-(worker, tensor)
	// source. Zero means the default; pass a negative value to disable
	// jitter entirely (WithDefaults normalizes it to 0).
	RetransmitJitter float64
	// MaxRetries bounds per-packet retransmissions; 0 retries forever.
	MaxRetries int
	// DeterministicOrder reduces contributions in worker-ID order (§7).
	DeterministicOrder bool
	// HalfPrecision transmits block data as IEEE 754 binary16.
	HalfPrecision bool
	// ForceDense disables zero-block elision (the SwitchML* baseline).
	ForceDense bool
	// QuantizeScale, when non-zero, accumulates in fixed-point int64 with
	// this scale (switch-ALU emulation, §7).
	QuantizeScale float64
}

// Defaults returns the paper-default protocol parameters (§6). This is the
// single source of defaults: core.Config and simproto.OmniOpts both fill
// their zero fields from it, so the live cluster and the simulator cannot
// silently diverge on a parameter.
func Defaults() Config {
	return Config{
		BlockSize:         256,
		FusionWidth:       8,
		Streams:           4,
		RetransmitTimeout: 20 * time.Millisecond,
		RetransmitBackoff: 2,
		RetransmitJitter:  0.1,
		// RetransmitCeiling is derived (16x the timeout) by WithDefaults.
	}
}

// WithDefaults fills zero fields with the Defaults values; the ceiling is
// derived from the (possibly overridden) timeout.
func (c Config) WithDefaults() Config {
	d := Defaults()
	if c.BlockSize == 0 {
		c.BlockSize = d.BlockSize
	}
	if c.FusionWidth == 0 {
		c.FusionWidth = d.FusionWidth
	}
	if c.Streams == 0 {
		c.Streams = d.Streams
	}
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = d.RetransmitTimeout
	}
	if c.RetransmitBackoff == 0 {
		c.RetransmitBackoff = d.RetransmitBackoff
	}
	if c.RetransmitCeiling == 0 {
		c.RetransmitCeiling = 16 * c.RetransmitTimeout
	}
	if c.RetransmitJitter == 0 {
		c.RetransmitJitter = d.RetransmitJitter
	} else if c.RetransmitJitter < 0 {
		c.RetransmitJitter = 0 // explicitly disabled
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("protocol: Workers must be positive, got %d", c.Workers)
	}
	if len(c.Aggregators) == 0 {
		return fmt.Errorf("protocol: at least one aggregator required")
	}
	if c.BlockSize < 0 || c.FusionWidth < 0 || c.FusionWidth > wire.MaxCols || c.Streams < 0 {
		return fmt.Errorf("protocol: invalid block/fusion/stream parameters")
	}
	if c.QuantizeScale < 0 {
		return fmt.Errorf("protocol: QuantizeScale must be non-negative")
	}
	if c.RetransmitBackoff != 0 && c.RetransmitBackoff < 1 {
		return fmt.Errorf("protocol: RetransmitBackoff must be >= 1, got %v", c.RetransmitBackoff)
	}
	if c.RetransmitJitter < 0 || c.RetransmitJitter >= 1 {
		return fmt.Errorf("protocol: RetransmitJitter must be in [0, 1), got %v", c.RetransmitJitter)
	}
	if c.RetransmitCeiling < 0 || (c.RetransmitCeiling > 0 && c.RetransmitCeiling < c.RetransmitTimeout) {
		return fmt.Errorf("protocol: RetransmitCeiling %v below RetransmitTimeout %v", c.RetransmitCeiling, c.RetransmitTimeout)
	}
	return nil
}

// AggregatorFor returns the node ID serving stream s.
func (c Config) AggregatorFor(s int) int {
	return c.Aggregators[s%len(c.Aggregators)]
}

// Shard returns the global block range [lo, hi) owned by stream s when the
// tensor has nb blocks total and eff streams are active (§3.1.1:
// contiguous shards).
func Shard(s, eff, nb int) (lo, hi int) {
	lo = s * nb / eff
	hi = (s + 1) * nb / eff
	return lo, hi
}

// EffectiveStreams caps the stream count so every stream owns at least one
// block.
func EffectiveStreams(streams, nb int) int {
	if nb < streams {
		if nb == 0 {
			return 1
		}
		return nb
	}
	return streams
}

// Column layout (§3.2): within a stream's shard [lo, hi) of global block
// indices, column c holds the blocks b with b % width == c, in ascending
// order.

// ColOf returns the column of global block index b under fusion width w.
func ColOf(b uint32, w int) int { return int(b) % w }

// FirstInColumn returns the first global block index in [lo, hi) congruent
// to c mod w, or -1 if the column is empty.
func FirstInColumn(lo, hi, c, w int) int {
	// Smallest b >= lo with b % w == c.
	r := lo % w
	b := lo + ((c-r)%w+w)%w
	if b >= hi {
		return -1
	}
	return b
}

// NextNonZeroInColumn scans for the next non-zero block strictly after
// `after` within [lo, hi) staying in column c (stride w). A negative
// `after` starts the scan at the column's first block. nonZero is the
// block-occupancy predicate (a bitmap lookup, or constant true when
// forcing dense mode).
func NextNonZeroInColumn(nonZero func(b int) bool, after, lo, hi, c, w int) int {
	start := FirstInColumn(lo, hi, c, w)
	if start < 0 {
		return -1
	}
	b := start
	if after >= start {
		// Advance to the first column slot strictly after `after`.
		b = after + w
	}
	for ; b < hi; b += w {
		if nonZero(b) {
			return b
		}
	}
	return -1
}

// NextOffsetWire converts a block index (or -1 for none) to the wire
// next-offset encoding for column c.
func NextOffsetWire(b, c int) uint32 {
	if b < 0 {
		return wire.Inf(c)
	}
	return uint32(b)
}

// BlockLen returns the element count of global block b for a tensor of n
// elements and block size bs (the final block may be short).
func BlockLen(b, bs, n int) int {
	lo := b * bs
	hi := lo + bs
	if hi > n {
		hi = n
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// Internal next-offset encoding: nextUnknown is Algorithm 1's -infinity
// initial value (the aggregator has not heard from this worker yet);
// nextDone means the worker/column has no further non-zero blocks.
const (
	nextUnknown int64 = -1
	nextDone    int64 = math.MaxInt64
)

// decodeNext converts a wire next-offset to the internal encoding.
func decodeNext(v uint32) int64 {
	if wire.IsInf(v) {
		return nextDone
	}
	return int64(v)
}

func minOf(v []int64) int64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
