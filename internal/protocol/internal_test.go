package protocol

import (
	"math"
	"testing"

	"omnireduce/internal/wire"
)

// Unit tests for package internals: the accumulator modes, the result
// archive, and the finished-tensor tracker. (Machine-level behavior is
// covered by the trace tests in machine_test.go.)

func TestAccumFloat(t *testing.T) {
	a := newAccum(Config{})
	a.add(1, []float32{1, 2})
	a.add(0, []float32{10, 20, 30}) // longer contribution grows the slot
	got := a.appendResult(nil)
	if len(got) != 3 || got[0] != 11 || got[1] != 22 || got[2] != 30 {
		t.Fatalf("result = %v", got)
	}
	a.reset()
	a.add(0, []float32{5})
	if got := a.appendResult(nil); len(got) != 1 || got[0] != 5 {
		t.Fatalf("after reset: %v", got)
	}
}

func TestAccumQuantized(t *testing.T) {
	a := newAccum(Config{QuantizeScale: 4}) // quarter resolution
	a.add(0, []float32{0.1})                // 0.1*4 = 0.4 rounds to 0
	a.add(1, []float32{0.5})                // 0.5*4 = 2
	got := a.appendResult(nil)
	if len(got) != 1 {
		t.Fatalf("result = %v", got)
	}
	if got[0] != 0.5 { // (0 + 2)/4
		t.Fatalf("quantized sum = %v, want 0.5", got[0])
	}
}

func TestAccumDeterministicOrder(t *testing.T) {
	// Floating-point addition is not associative; the deterministic
	// accumulator must reduce in ascending worker-ID order regardless of
	// arrival order.
	mk := func(order []int) []float32 {
		a := newAccum(Config{DeterministicOrder: true})
		vals := map[int][]float32{
			0: {1e8}, 1: {-1e8}, 2: {1}, 3: {0.5},
		}
		for _, w := range order {
			a.add(w, vals[w])
		}
		return a.appendResult(nil)
	}
	r1 := mk([]int{0, 1, 2, 3})
	r2 := mk([]int{3, 2, 1, 0})
	r3 := mk([]int{2, 0, 3, 1})
	if r1[0] != r2[0] || r2[0] != r3[0] {
		t.Fatalf("order-dependent results: %v %v %v", r1, r2, r3)
	}
}

func TestAccumDeterministicQuantized(t *testing.T) {
	a := newAccum(Config{DeterministicOrder: true, QuantizeScale: 1 << 10})
	a.add(1, []float32{0.25})
	a.add(0, []float32{0.5})
	got := a.appendResult(nil)
	if math.Abs(float64(got[0])-0.75) > 1e-3 {
		t.Fatalf("det+quant = %v", got)
	}
}

func TestArchiveEviction(t *testing.T) {
	cfg := Config{Workers: 1, Aggregators: []int{1}, Reliable: true}.WithDefaults()
	a := NewAggregatorMachine(cfg, 1)
	for tid := uint32(1); tid <= 40; tid++ {
		res := &wire.Packet{Type: wire.TypeResult, TensorID: tid, BlockSize: 4}
		a.archiveResult(0, tid, res, wire.EncodedPacketSize(res))
	}
	m := a.archive[0]
	if len(m) != archiveDepth {
		t.Fatalf("archive holds %d entries, want %d", len(m), archiveDepth)
	}
	if _, ok := m[40]; !ok {
		t.Fatal("archive lost the newest tensor")
	}
	if _, ok := m[40-archiveDepth]; ok {
		t.Fatal("archive kept an evicted tensor")
	}
	if !a.isFinished(0, 3) {
		t.Fatal("isFinished should report evicted tensor 3")
	}
	if a.isFinished(0, 41) {
		t.Fatal("isFinished must not report future tensor")
	}
}

func TestFinishedTrackerOutOfOrder(t *testing.T) {
	f := &finishedTracker{}
	f.add(3)
	if f.has(1) || f.has(2) || !f.has(3) {
		t.Fatal("out-of-order add wrong")
	}
	f.add(1)
	if !f.has(1) || f.has(2) {
		t.Fatal("prefix tracking wrong")
	}
	f.add(2)
	if f.upTo != 3 {
		t.Fatalf("prefix did not collapse: upTo=%d except=%v", f.upTo, f.except)
	}
	if len(f.except) != 0 {
		t.Fatalf("exceptions not drained: %v", f.except)
	}
	f.add(2) // re-add below prefix: no-op
	if f.upTo != 3 {
		t.Fatal("re-add changed prefix")
	}
}
