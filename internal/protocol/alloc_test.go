package protocol

import (
	"fmt"
	"testing"

	"omnireduce/internal/wire"
)

// Steady-state allocation pins for the machines themselves. The protocol
// machines promise zero-allocation rounds once their pooled state has
// warmed up: slot and stream buffers are generation-recycled, accumulator
// storage is carved from per-slot arenas, and emitted packets are reusable
// shells. These tests drive worker and aggregator machines round by round
// with no transport underneath, so any allocation observed comes from the
// machines (or the EmitBuf, which is part of the same contract).

// steadyHarness wires W worker machines to one aggregator machine in
// memory and runs complete rounds synchronously. Emits are consumed
// immediately — exactly the shell-ownership discipline real drivers
// follow — so no copies are made anywhere on the hot path.
type steadyHarness struct {
	t       *testing.T
	wms     []*WorkerMachine
	am      *AggregatorMachine
	results []*wire.Packet // pending result shell per worker
	ebW     EmitBuf
	ebA     EmitBuf
}

func newSteadyHarness(t *testing.T, workers int, reliable bool) *steadyHarness {
	t.Helper()
	cfg := Config{
		Workers:            workers,
		Aggregators:        []int{aggNode},
		Reliable:           reliable,
		DeterministicOrder: true,
		BlockSize:          4,
		FusionWidth:        1,
		Streams:            1,
	}.WithDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	const blocks = 4096 // far more rounds than any test consumes
	h := &steadyHarness{t: t, am: NewAggregatorMachine(cfg, aggNode),
		results: make([]*wire.Packet, workers)}
	h.am.Presize(cfg.Streams, 4)
	data := make([]float32, blocks*cfg.BlockSize)
	for i := range data {
		data[i] = float32(i%7) + 1 // fully dense: every block is sent
	}
	for w := 0; w < workers; w++ {
		m := NewWorkerMachine(cfg, w, 1)
		h.wms = append(h.wms, m)
		h.ebW.Reset()
		m.Start(NewDenseView(data, cfg.BlockSize, cfg.ForceDense), 0, &h.ebW)
		h.feedAgg()
	}
	return h
}

// feedAgg hands every pending worker emit to the aggregator and records
// the result shells the aggregator answers with.
func (h *steadyHarness) feedAgg() {
	for _, e := range h.ebW.Emits() {
		h.ebA.Reset()
		if err := h.am.HandlePacket(Msg{Dense: e.Packet}, &h.ebA); err != nil {
			h.t.Fatalf("aggregator: %v", err)
		}
		for _, ea := range h.ebA.Emits() {
			h.results[ea.Dst] = ea.Packet
		}
	}
}

// step runs one complete round: every worker consumes its pending result
// and contributes its next block; the aggregator reduces and responds.
func (h *steadyHarness) step() {
	for w := range h.wms {
		res := h.results[w]
		if res == nil {
			h.t.Fatal("steady harness: no pending result")
		}
		h.ebW.Reset()
		if err := h.wms[w].HandlePacket(res, 0, &h.ebW); err != nil {
			h.t.Fatalf("worker %d: %v", w, err)
		}
		h.feedAgg()
	}
}

// TestSteadyStateZeroAllocs pins worker HandlePacket and aggregator
// HandlePacket (including finishRound) at zero allocations per round
// after warmup, and asserts the per-round figure does not grow with the
// worker count (the slope of allocations over fan-in is flat).
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	cases := []struct {
		workers  int
		reliable bool
	}{
		{2, true},
		{8, true},
		{2, false}, // versioned (lossy) rounds must be allocation-free too
	}
	perRound := make(map[int]float64)
	for _, tc := range cases {
		name := fmt.Sprintf("workers=%d_reliable=%v", tc.workers, tc.reliable)
		t.Run(name, func(t *testing.T) {
			h := newSteadyHarness(t, tc.workers, tc.reliable)
			for i := 0; i < 64; i++ {
				h.step() // warm pools, arenas, and emit buffers to steady caps
			}
			got := testing.AllocsPerRun(256, h.step)
			if tc.reliable {
				perRound[tc.workers] = got
			}
			if got != 0 {
				t.Fatalf("steady-state round allocates %.1f objects, want 0", got)
			}
		})
	}
	if perRound[8] > perRound[2] {
		t.Fatalf("allocations grow with worker count: 8w=%.1f > 2w=%.1f",
			perRound[8], perRound[2])
	}
}

// TestWorkerMachinePoolReuse verifies the machine pool actually recycles:
// acquiring, running, and recycling a machine keeps the pool's get/put
// counters balanced.
func TestWorkerMachinePoolReuse(t *testing.T) {
	cfg := Config{Workers: 1, Aggregators: []int{aggNode}, Reliable: true,
		BlockSize: 4, FusionWidth: 1, Streams: 1}.WithDefaults()
	g0, p0 := WorkerMachinePoolBalance()
	var eb EmitBuf
	for i := 0; i < 4; i++ {
		m := GetWorkerMachine(cfg, 0, uint32(i+1))
		eb.Reset()
		m.Start(NewDenseView([]float32{1, 2, 3, 4}, 4, false), 0, &eb)
		m.Recycle()
	}
	g1, p1 := WorkerMachinePoolBalance()
	if g1-g0 != 4 || p1-p0 != 4 {
		t.Fatalf("pool counters unbalanced: gets +%d puts +%d, want +4/+4", g1-g0, p1-p0)
	}
}
