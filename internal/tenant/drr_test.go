package tenant

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDRRPerFlowFIFO(t *testing.T) {
	d := NewDRR[int](0, 0, nil)
	for i := 0; i < 10; i++ {
		if !d.Push(7, i, 1) {
			t.Fatalf("Push %d refused", i)
		}
	}
	for i := 0; i < 10; i++ {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d, %v; want %d in order", v, ok, i)
		}
	}
}

// TestDRRFairShare floods two equal-weight flows with equal-cost items
// and checks the scheduler interleaves service instead of draining one
// flow first.
func TestDRRFairShare(t *testing.T) {
	d := NewDRR[uint32](64, 0, nil)
	const n = 64
	for i := 0; i < n; i++ {
		d.Push(1, 1, 16)
		d.Push(2, 2, 16)
	}
	served := map[uint32]int{}
	for i := 0; i < n; i++ { // first half of the backlog
		v, ok := d.Pop()
		if !ok {
			t.Fatal("Pop failed with items queued")
		}
		served[v]++
	}
	// With equal weights the half-way point must have served both flows
	// near-equally (exact alternation in quanta of 64/16 = 4 items).
	if served[1] < n/4 || served[2] < n/4 {
		t.Fatalf("unfair service at midpoint: %v", served)
	}
}

// TestDRRWeightedShare gives one flow 3x the weight and checks its share
// of service is proportionally larger over a window.
func TestDRRWeightedShare(t *testing.T) {
	weights := map[uint32]int{1: 3, 2: 1}
	d := NewDRR[uint32](16, 0, func(flow uint32) int { return weights[flow] })
	const n = 400
	for i := 0; i < n; i++ {
		d.Push(1, 1, 16)
		d.Push(2, 2, 16)
	}
	served := map[uint32]int{}
	for i := 0; i < n; i++ {
		v, ok := d.Pop()
		if !ok {
			t.Fatal("Pop failed with items queued")
		}
		served[v]++
	}
	ratio := float64(served[1]) / float64(served[2])
	if ratio < 2.0 || ratio > 4.0 {
		t.Fatalf("weighted share ratio = %.2f (served %v); want ~3", ratio, served)
	}
}

func TestDRRFlowCapAndPushWait(t *testing.T) {
	d := NewDRR[int](0, 2, nil)
	if !d.Push(1, 10, 1) || !d.Push(1, 11, 1) {
		t.Fatal("pushes under cap refused")
	}
	if d.Push(1, 12, 1) {
		t.Fatal("push over cap accepted")
	}
	// Another flow's cap is independent.
	if !d.Push(2, 20, 1) {
		t.Fatal("push to second flow refused")
	}

	// PushWait blocks until a Pop frees space.
	done := make(chan error, 1)
	go func() { done <- d.PushWait(1, 12, 1) }()
	select {
	case err := <-done:
		t.Fatalf("PushWait returned %v before space freed", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok := d.Pop(); !ok {
		t.Fatal("Pop failed")
	}
	// Draining one item from flow 1 (or flow 2 — either way flow 1 will
	// free within two pops) unblocks the waiter.
	d.Pop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("PushWait = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PushWait never unblocked")
	}
}

func TestDRRCloseDrains(t *testing.T) {
	d := NewDRR[int](0, 0, nil)
	d.Push(1, 1, 1)
	d.Push(1, 2, 1)
	d.Close()
	// Queued items remain poppable after close...
	if v, ok := d.Pop(); !ok || v != 1 {
		t.Fatalf("Pop after close = %d, %v; want 1, true", v, ok)
	}
	if v, ok := d.Pop(); !ok || v != 2 {
		t.Fatalf("Pop after close = %d, %v; want 2, true", v, ok)
	}
	// ...then Pop reports closed instead of blocking.
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on drained closed scheduler = true")
	}
	if d.Push(1, 3, 1) {
		t.Fatal("Push accepted after close")
	}
	if err := d.PushWait(1, 3, 1); !errors.Is(err, ErrSchedClosed) {
		t.Fatalf("PushWait after close = %v; want ErrSchedClosed", err)
	}
}

func TestDRRPopBlocksUntilWork(t *testing.T) {
	d := NewDRR[int](0, 0, nil)
	got := make(chan int, 1)
	go func() {
		v, ok := d.Pop()
		if ok {
			got <- v
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	d.Push(3, 42, 1)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("Pop = %d, want 42", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop never woke")
	}
	d.Close()
}

// TestDRRConcurrent hammers the scheduler from several producers and one
// consumer under the race detector.
func TestDRRConcurrent(t *testing.T) {
	d := NewDRR[int](256, 64, nil)
	const producers, per = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := d.PushWait(uint32(p), p*per+i, 8); err != nil {
					t.Errorf("PushWait: %v", err)
					return
				}
			}
		}(p)
	}
	seen := 0
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for {
			if _, ok := d.Pop(); !ok {
				return
			}
			seen++
		}
	}()
	wg.Wait()
	d.Close()
	<-consumed
	if seen != producers*per {
		t.Fatalf("consumed %d items, want %d", seen, producers*per)
	}
}
