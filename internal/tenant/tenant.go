// Package tenant implements the multi-tenant collective service layer:
// job identity and tensor-ID namespacing policy, per-tenant quotas, the
// aggregator-side job registry (admission control, collision detection,
// drain accounting), and the deficit-round-robin scheduler that shares an
// aggregator's merge shards fairly across jobs.
//
// The package is deliberately transport- and protocol-agnostic: the core
// drivers feed it job opens, first-packet admissions, and slot lifecycle
// events, and it answers with typed verdicts. Wire reason codes
// (internal/wire control packets) map 1:1 to the typed errors here, so a
// rejection crosses the network and resurfaces as the same error value on
// the worker side.
package tenant

import (
	"errors"
	"fmt"

	"omnireduce/internal/wire"
)

// DefaultTenant is the tenant identity of the legacy single-job API:
// workers that never open a named job aggregate under it, in tensor-ID
// namespace 0.
const DefaultTenant = "default"

// DefaultJob is the job name of the legacy single-job API.
const DefaultJob = "default"

// JobKey identifies one training job's collective session: a tenant (the
// isolation and quota boundary) and a job name within it. The derived
// tensor-ID namespace (protocol.NamespaceOf) is what appears on the wire.
type JobKey struct {
	Tenant string
	Job    string
}

func (k JobKey) String() string { return k.Tenant + "/" + k.Job }

// Validate rejects empty or oversized identities (names travel in control
// packets with one-byte length prefixes).
func (k JobKey) Validate() error {
	if k.Tenant == "" || k.Job == "" {
		return fmt.Errorf("tenant: empty tenant or job name in %q", k.String())
	}
	if len(k.Tenant) > wire.MaxControlName || len(k.Job) > wire.MaxControlName {
		return fmt.Errorf("tenant: tenant/job name too long in %q (max %d bytes)", k.String(), wire.MaxControlName)
	}
	return nil
}

// Quota bounds one tenant's share of an aggregator.
type Quota struct {
	// Weight is the tenant's deficit-round-robin share of the merge
	// shards' service time relative to other tenants (default 1).
	Weight int
	// MaxJobs caps concurrently open jobs; 0 means unlimited.
	MaxJobs int
	// MaxInFlightOps caps concurrently admitted collectives across the
	// tenant's jobs; 0 means unlimited. Exceeding it yields a typed
	// ErrTenantQuota rejection, not silent queueing.
	MaxInFlightOps int
}

func (q Quota) weight() int {
	if q.Weight <= 0 {
		return 1
	}
	return q.Weight
}

// Config is an aggregator's tenancy policy.
type Config struct {
	// Tenants maps tenant name to its quota. Tenants absent from the map
	// get Default.
	Tenants map[string]Quota
	// Default applies to tenants without an explicit entry (zero value =
	// weight 1, no caps).
	Default Quota
}

// QuotaFor resolves the effective quota of a tenant.
func (c *Config) QuotaFor(name string) Quota {
	if c != nil && c.Tenants != nil {
		if q, ok := c.Tenants[name]; ok {
			return q
		}
	}
	if c != nil {
		return c.Default
	}
	return Quota{}
}

// Typed admission errors. Worker-side drivers surface these from
// AllReduce/OpenJob when the aggregator refuses service; they wrap across
// the wire via the reason codes below.
var (
	// ErrTenantQuota reports a per-tenant limit (MaxJobs or
	// MaxInFlightOps) was exceeded.
	ErrTenantQuota = errors.New("tenant: per-tenant quota exceeded")
	// ErrAdmissionRejected is the generic admission refusal.
	ErrAdmissionRejected = errors.New("tenant: admission rejected")
	// ErrDraining reports the aggregator is draining for a rolling
	// restart: in-flight rounds finish, new work must retry elsewhere.
	ErrDraining = errors.New("tenant: aggregator draining, retry elsewhere")
	// ErrTidCollision reports a tensor-ID namespace collision: two
	// distinct jobs resolved to the same namespace (hash collision), or
	// two unrelated legacy workers reused the same worker ID in the
	// default namespace. Before the registry existed such collectives
	// interleaved silently and corrupted both results.
	ErrTidCollision = errors.New("tenant: tensor-id namespace collision")
	// ErrUnknownJob reports a data packet for a namespace never opened on
	// this aggregator.
	ErrUnknownJob = errors.New("tenant: operation for a job not opened here")
	// ErrStaleView reports the sender's bound membership epoch is stale:
	// the group moved to a newer view (an aggregator failed over, or
	// membership changed) and the sender must rebind before retrying.
	ErrStaleView = errors.New("tenant: stale membership view, rebind required")
)

// ErrorForReason maps a wire rejection reason code to its typed error.
func ErrorForReason(reason uint8) error {
	switch reason {
	case wire.ReasonQuota:
		return ErrTenantQuota
	case wire.ReasonDraining:
		return ErrDraining
	case wire.ReasonCollision:
		return ErrTidCollision
	case wire.ReasonUnknown:
		return ErrUnknownJob
	case wire.ReasonRejected:
		return ErrAdmissionRejected
	case wire.ReasonStaleEpoch:
		return ErrStaleView
	default:
		return nil
	}
}

// ReasonForError maps a typed admission error to its wire reason code.
func ReasonForError(err error) uint8 {
	switch {
	case errors.Is(err, ErrTenantQuota):
		return wire.ReasonQuota
	case errors.Is(err, ErrDraining):
		return wire.ReasonDraining
	case errors.Is(err, ErrTidCollision):
		return wire.ReasonCollision
	case errors.Is(err, ErrUnknownJob):
		return wire.ReasonUnknown
	case errors.Is(err, ErrStaleView):
		return wire.ReasonStaleEpoch
	case err != nil:
		return wire.ReasonRejected
	default:
		return wire.ReasonNone
	}
}
