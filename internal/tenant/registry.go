package tenant

import (
	"fmt"
	"sync"

	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
)

// Registry is an aggregator's job registry: the authoritative record of
// which jobs are open, which tenants own them, which tensor-ID
// namespaces they occupy, which transport nodes their workers live at,
// and how many collectives each tenant has in flight. It makes every
// admission decision — job open, first packet of a new operation — and
// turns violations into typed errors with wire reason codes.
//
// Concurrency: OpenJob/AdmitOp are called by the aggregator's
// single-threaded packet router; SlotOpened/SlotFinished arrive from the
// merge-shard goroutines; Drain polling and obs scraping come from
// anywhere. One mutex guards it all — these are per-operation events (a
// handful per collective), not per-packet ones, so the lock is far off
// the datapath.
type Registry struct {
	mu       sync.Mutex
	cfg      Config
	jobs     map[uint32]*jobEntry    // by tensor-ID namespace
	tenants  map[string]*tenantEntry // by tenant name
	ops      map[uint32]*opEntry     // in-flight collectives by tensor ID
	rejected map[uint32]uint8        // rejected tids -> reason (so every worker's packets get the same typed refusal)
	liveSlot int                     // live per-tensor slot states across all merge shards
	draining bool
	obs      *obs.Registry
}

type jobEntry struct {
	key     JobKey
	ns      uint32
	workers int
	// nodes[wid] is the transport node each job-relative worker ID is
	// bound to: from the JobOpen sender for named jobs, from first-packet
	// attribution for the default namespace. A later packet claiming the
	// same wid from a different node is a collision — the exact silent
	// tid-interleaving hazard the registry exists to close.
	nodes   []int
	openBy  map[int]bool // wids with an open session (named jobs)
	tenant  *tenantEntry
}

type tenantEntry struct {
	name  string
	quota Quota

	jobs     int // open jobs
	inflight int // admitted, unfinished collectives
	slots    int // live per-tensor slot states across the merge shards

	// Cached per-tenant metrics (created once at registration, updated
	// lock-free afterwards).
	mAdmitted *obs.Counter
	mRejected *obs.Counter
	mOps      *obs.Gauge
	mJobs     *obs.Gauge
	mSlots    *obs.Gauge
}

// opEntry tracks one admitted collective until every merge-shard slot it
// opened has finished.
type opEntry struct {
	job    *jobEntry
	opened int // slots ever opened
	live   int // slots currently open
}

// NewRegistry creates a registry with the given tenancy policy,
// publishing per-tenant metrics into reg (obs.Default() is the usual
// choice; nil disables metrics). defaultWorkers is the worker count of
// the implicit namespace-0 job serving the legacy single-job API.
func NewRegistry(cfg Config, reg *obs.Registry, defaultWorkers int) *Registry {
	r := &Registry{
		cfg:      cfg,
		jobs:     make(map[uint32]*jobEntry),
		tenants:  make(map[string]*tenantEntry),
		ops:      make(map[uint32]*opEntry),
		rejected: make(map[uint32]uint8),
		obs:      reg,
	}
	// The legacy/default job is always open: namespace 0, identity
	// wid->node mapping learned from packet attribution.
	te := r.tenantLocked(DefaultTenant)
	j := &jobEntry{
		key:     JobKey{Tenant: DefaultTenant, Job: DefaultJob},
		ns:      0,
		workers: defaultWorkers,
		nodes:   unboundNodes(defaultWorkers),
		tenant:  te,
	}
	r.jobs[0] = j
	te.jobs++
	te.mJobs.Set(int64(te.jobs))
	return r
}

func unboundNodes(n int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = -1
	}
	return nodes
}

// tenantLocked returns (creating if needed) the tenant entry; r.mu held.
func (r *Registry) tenantLocked(name string) *tenantEntry {
	te := r.tenants[name]
	if te != nil {
		return te
	}
	te = &tenantEntry{name: name, quota: r.cfg.QuotaFor(name)}
	if r.obs != nil {
		p := "tenant:" + name + ":"
		te.mAdmitted = r.obs.Counter(p + "ops_admitted")
		te.mRejected = r.obs.Counter(p + "ops_rejected")
		te.mOps = r.obs.Gauge(p + "ops_active")
		te.mJobs = r.obs.Gauge(p + "jobs_active")
		te.mSlots = r.obs.Gauge(p + "slots_active")
	} else {
		te.mAdmitted, te.mRejected = &obs.Counter{}, &obs.Counter{}
		te.mOps, te.mJobs, te.mSlots = &obs.Gauge{}, &obs.Gauge{}, &obs.Gauge{}
	}
	r.tenants[name] = te
	return te
}

// OpenJob admits (or refuses) a worker's job-open request. ns must be
// protocol.NamespaceOf(key) — the registry re-derives and checks it, so a
// worker cannot squat on another job's namespace. node is the sender's
// transport node, bound to wid for result routing and collision
// detection. Returns the wire reason code and matching typed error on
// refusal.
func (r *Registry) OpenJob(key JobKey, ns uint32, wid, workers, node int) (uint8, error) {
	if err := key.Validate(); err != nil {
		return ReasonForError(ErrAdmissionRejected), fmt.Errorf("%w: %v", ErrAdmissionRejected, err)
	}
	if want := protocol.NamespaceOf(key.Tenant, key.Job); ns != want {
		return ReasonForError(ErrAdmissionRejected),
			fmt.Errorf("%w: job %s claims namespace %d, derives %d", ErrAdmissionRejected, key, ns, want)
	}
	if workers <= 0 || wid < 0 || wid >= workers {
		return ReasonForError(ErrAdmissionRejected),
			fmt.Errorf("%w: job %s: invalid wid %d of %d workers", ErrAdmissionRejected, key, wid, workers)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return ReasonForError(ErrDraining), fmt.Errorf("%w: job %s refused", ErrDraining, key)
	}
	j := r.jobs[ns]
	if j != nil {
		if j.key != key {
			// Two distinct jobs hashing to one namespace: refuse the
			// newcomer instead of letting their tids interleave.
			return ReasonForError(ErrTidCollision),
				fmt.Errorf("%w: namespace %d already held by %s, wanted by %s", ErrTidCollision, ns, j.key, key)
		}
		if j.workers != workers {
			return ReasonForError(ErrAdmissionRejected),
				fmt.Errorf("%w: job %s opened with %d workers, reopened with %d", ErrAdmissionRejected, key, j.workers, workers)
		}
		if j.nodes[wid] >= 0 && j.nodes[wid] != node {
			return ReasonForError(ErrTidCollision),
				fmt.Errorf("%w: job %s wid %d bound to node %d, reopened from node %d", ErrTidCollision, key, wid, j.nodes[wid], node)
		}
		j.nodes[wid] = node
		j.openBy[wid] = true
		return 0, nil
	}
	te := r.tenantLocked(key.Tenant)
	if te.quota.MaxJobs > 0 && te.jobs >= te.quota.MaxJobs {
		te.mRejected.Inc()
		return ReasonForError(ErrTenantQuota),
			fmt.Errorf("%w: tenant %q at MaxJobs=%d", ErrTenantQuota, key.Tenant, te.quota.MaxJobs)
	}
	j = &jobEntry{
		key:     key,
		ns:      ns,
		workers: workers,
		nodes:   unboundNodes(workers),
		openBy:  make(map[int]bool),
		tenant:  te,
	}
	j.nodes[wid] = node
	j.openBy[wid] = true
	r.jobs[ns] = j
	te.jobs++
	te.mJobs.Set(int64(te.jobs))
	return 0, nil
}

// CloseJob releases one worker's session on a namespace; when the last
// worker closes, the job is deregistered, its namespace freed, and any
// straggling operation accounting purged (a crashed worker must not pin
// drain forever). Returns true when this call deregistered the job — the
// packet router uses that to retire the namespace's protocol machines,
// so a reincarnated job starting its tensor IDs over meets fresh state
// instead of the old session's finished-tensor archive. The default
// namespace is never deregistered.
func (r *Registry) CloseJob(ns uint32, wid int) bool {
	if ns == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.jobs[ns]
	if j == nil || wid < 0 || wid >= j.workers {
		return false
	}
	delete(j.openBy, wid)
	if len(j.openBy) != 0 {
		return false
	}
	delete(r.jobs, ns)
	j.tenant.jobs--
	j.tenant.mJobs.Set(int64(j.tenant.jobs))
	for tid, op := range r.ops {
		if op.job == j {
			delete(r.ops, tid)
			r.liveSlot -= op.live
			j.tenant.slots -= op.live
			j.tenant.inflight--
		}
	}
	j.tenant.mOps.Set(int64(j.tenant.inflight))
	j.tenant.mSlots.Set(int64(j.tenant.slots))
	for tid := range r.rejected {
		if protocol.TidNamespace(tid) == ns {
			delete(r.rejected, tid)
		}
	}
	return true
}

// AdmitOp decides the fate of a (tensor ID, worker ID, sender node)
// triple the packet router has not seen before: the packet is either
// admitted (nil error) or refused with a wire reason and typed error.
// The first triple of a tensor ID admits the whole operation (quota and
// drain checks); later triples bind the op's remaining workers and catch
// collisions — a worker ID already bound to a different transport node
// means two collectives are sharing one tensor-ID space, the exact
// silent-interleave hazard the registry exists to close. Re-asking about
// a known triple is idempotent (the router's verdict cache may be
// pruned), never double-accounting the tenant.
func (r *Registry) AdmitOp(tid uint32, wid, from int) (uint8, error) {
	ns := protocol.TidNamespace(tid)
	r.mu.Lock()
	defer r.mu.Unlock()
	if reason, ok := r.rejected[tid]; ok {
		// A sibling worker's packet for an op already refused: repeat the
		// identical verdict so the whole job fails with one typed error.
		return reason, ErrorForReason(reason)
	}
	j := r.jobs[ns]
	if j == nil {
		return r.rejectLocked(nil, tid, ErrUnknownJob,
			fmt.Errorf("%w: tensor %#x in unopened namespace %d", ErrUnknownJob, tid, ns))
	}
	if wid < 0 || wid >= j.workers {
		if ns == 0 {
			// Legacy namespace: an out-of-range worker ID has always been
			// the merge machine's protocol error (it kills the aggregator
			// loudly); keep that contract rather than softening it into a
			// typed refusal the misconfigured sender may not understand.
			return 0, nil
		}
		return r.rejectLocked(j.tenant, tid, ErrAdmissionRejected,
			fmt.Errorf("%w: job %s: tensor %#x from out-of-range wid %d", ErrAdmissionRejected, j.key, tid, wid))
	}
	if bound := j.nodes[wid]; bound >= 0 && bound != from {
		// Same (namespace, wid) claimed from two transport nodes: two
		// collectives are colliding on one tensor-ID space. Pre-registry
		// these packets interleaved silently into one merge. The verdict is
		// NOT memoized per tid — only the intruding sender is refused; the
		// bound worker's packets for this tensor keep flowing.
		j.tenant.mRejected.Inc()
		return ReasonForError(ErrTidCollision),
			fmt.Errorf("%w: namespace %d wid %d bound to node %d, packet from node %d", ErrTidCollision, ns, wid, bound, from)
	}
	if r.ops[tid] != nil {
		// Known op: bind this (possibly late-arriving) worker and admit.
		j.nodes[wid] = from
		return 0, nil
	}
	if r.draining {
		return r.rejectLocked(j.tenant, tid, ErrDraining,
			fmt.Errorf("%w: tensor %#x refused", ErrDraining, tid))
	}
	te := j.tenant
	if te.quota.MaxInFlightOps > 0 && te.inflight >= te.quota.MaxInFlightOps {
		return r.rejectLocked(te, tid, ErrTenantQuota,
			fmt.Errorf("%w: tenant %q at MaxInFlightOps=%d", ErrTenantQuota, te.name, te.quota.MaxInFlightOps))
	}
	j.nodes[wid] = from
	r.ops[tid] = &opEntry{job: j}
	te.inflight++
	te.mAdmitted.Inc()
	te.mOps.Set(int64(te.inflight))
	return 0, nil
}

// rejectLocked records a refusal verdict for tid and returns it; r.mu
// held. Recording it lets every sibling worker's packets receive the
// same typed rejection instead of a confusing mix.
func (r *Registry) rejectLocked(te *tenantEntry, tid uint32, sentinel, err error) (uint8, error) {
	reason := ReasonForError(sentinel)
	if len(r.rejected) >= 1<<16 {
		// Bound the memo on a long-lived service. Losing old verdicts is
		// benign: re-deriving mostly reproduces them, and an op whose
		// workers straddle a pruning at worst splits into two typed
		// errors instead of one.
		clear(r.rejected)
	}
	r.rejected[tid] = reason
	if te != nil {
		te.mRejected.Inc()
	}
	return reason, err
}

// RejectedReason reports the recorded refusal for tid, if any.
func (r *Registry) RejectedReason(tid uint32) (uint8, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reason, ok := r.rejected[tid]
	return reason, ok
}

// SlotOpened records that a merge shard created per-tensor state for an
// admitted operation. Called from shard goroutines via the machine's
// lifecycle hooks. An unknown tid (its entry already completed while a
// reordered bootstrap straggled, or the op predates a registry restart)
// re-activates accounting against the owning namespace rather than going
// untracked — drain correctness depends on every live slot being
// counted.
func (r *Registry) SlotOpened(tid uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := r.ops[tid]
	if op == nil {
		j := r.jobs[protocol.TidNamespace(tid)]
		if j == nil {
			return
		}
		op = &opEntry{job: j}
		r.ops[tid] = op
		j.tenant.inflight++
		j.tenant.mOps.Set(int64(j.tenant.inflight))
	}
	op.opened++
	op.live++
	r.liveSlot++
	op.job.tenant.slots++
	op.job.tenant.mSlots.Set(int64(op.job.tenant.slots))
}

// SlotFinished records that a merge shard concluded per-tensor state.
// When the operation's last live slot finishes, the op completes and its
// tenant's in-flight count drops.
func (r *Registry) SlotFinished(tid uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := r.ops[tid]
	if op == nil {
		return
	}
	op.live--
	r.liveSlot--
	te := op.job.tenant
	te.slots--
	te.mSlots.Set(int64(te.slots))
	if op.live <= 0 {
		delete(r.ops, tid)
		te.inflight--
		te.mOps.Set(int64(te.inflight))
	}
}

// StartDrain flips the registry into drain mode: every subsequent
// OpenJob and AdmitOp is refused with ErrDraining while already-admitted
// operations run to completion.
func (r *Registry) StartDrain() {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
}

// Draining reports whether StartDrain was called.
func (r *Registry) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// ActiveOps reports the number of admitted, unfinished collectives.
func (r *Registry) ActiveOps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// LiveSlots reports the number of live per-tensor slot states across the
// merge shards (maintained through the machines' lifecycle hooks).
func (r *Registry) LiveSlots() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveSlot
}

// NodeFor resolves a job-relative worker ID to its transport node for
// result routing. ok is false when the binding is unknown (default
// namespace before first contact), in which case callers fall back to
// the identity mapping.
func (r *Registry) NodeFor(tid uint32, wid int) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.jobs[protocol.TidNamespace(tid)]
	if j == nil || wid < 0 || wid >= len(j.nodes) || j.nodes[wid] < 0 {
		return 0, false
	}
	return j.nodes[wid], true
}

// WorkersOf reports the worker count of the job occupying ns (0 when the
// namespace is not open). Per-namespace machine instances size their
// WID-indexed state from it.
func (r *Registry) WorkersOf(ns uint32) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.jobs[ns]
	if j == nil {
		return 0
	}
	return j.workers
}

// MaxInFlightOf reports the in-flight operation cap of the tenant owning
// ns (0 when the namespace is not open or the tenant is uncapped).
// Per-namespace machine instances use it to presize their slot tables for
// the worst-case number of concurrently live tensors.
func (r *Registry) MaxInFlightOf(ns uint32) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.jobs[ns]
	if j == nil {
		return 0
	}
	return j.tenant.quota.MaxInFlightOps
}

// Weight reports the DRR weight of the tenant owning ns (1 when
// unknown).
func (r *Registry) Weight(ns uint32) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.jobs[ns]
	if j == nil {
		return 1
	}
	return j.tenant.quota.weight()
}

// TenantOf reports the tenant name owning ns ("" when not open).
func (r *Registry) TenantOf(ns uint32) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.jobs[ns]
	if j == nil {
		return ""
	}
	return j.tenant.name
}

// Stats is a point-in-time per-tenant accounting snapshot, handed to the
// obs layer as the final word at drain time.
type Stats struct {
	Tenant   string
	Jobs     int
	Inflight int
	Admitted int64
	Rejected int64
}

// Snapshot returns per-tenant accounting, sorted by tenant name
// insertion-independently (callers sort if they need determinism).
func (r *Registry) Snapshot() []Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Stats, 0, len(r.tenants))
	for _, te := range r.tenants {
		out = append(out, Stats{
			Tenant:   te.name,
			Jobs:     te.jobs,
			Inflight: te.inflight,
			Admitted: te.mAdmitted.Load(),
			Rejected: te.mRejected.Load(),
		})
	}
	return out
}
