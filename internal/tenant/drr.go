package tenant

import (
	"errors"
	"sync"
)

// ErrSchedClosed is returned by PushWait after Close.
var ErrSchedClosed = errors.New("tenant: scheduler closed")

// DRR is a deficit-round-robin scheduler multiplexing per-flow FIFOs
// into one service order. A flow is a tensor-ID namespace (one job); its
// weight is the owning tenant's quota weight. Each visit grants a flow
// quantum×weight deficit credit; the flow is served while its credit
// covers the head item's cost (packet bytes), so over time each backlogged
// flow receives service proportional to its weight regardless of how
// aggressively other flows enqueue — the classic O(1) DRR guarantee
// (Shreedhar & Varghese).
//
// Within a flow, order is strictly FIFO — the aggregation protocol
// requires per-slot packet ordering from a given worker, and per-flow
// FIFO preserves every per-(job, slot) arrival order the previous
// single-queue design provided.
//
// Push never blocks (full flow ⇒ false: unreliable mode drops and lets
// Algorithm 2 repair); PushWait blocks for space (reliable mode must not
// drop). Pop blocks for work. One consumer and any number of producers.
type DRR[T any] struct {
	mu    sync.Mutex
	work  sync.Cond // waits: consumer for items
	space sync.Cond // waits: producers for per-flow capacity

	flows map[uint32]*drrFlow[T]
	ring  []*drrFlow[T] // backlogged flows, round-robin order
	idx   int           // ring position being served

	quantum int
	flowCap int
	n       int  // total queued items
	inTurn  bool // ring[idx] already received this turn's quantum grant
	closed  bool

	// weightOf resolves a new flow's weight (nil ⇒ weight 1). Consulted
	// once per flow activation, not per packet.
	weightOf func(ns uint32) int
}

type drrItem[T any] struct {
	v    T
	cost int
}

type drrFlow[T any] struct {
	ns      uint32
	weight  int
	deficit int
	q       []drrItem[T] // FIFO: q[head:] pending
	head    int
	queued  bool // in ring
}

func (f *drrFlow[T]) size() int { return len(f.q) - f.head }

func (f *drrFlow[T]) push(it drrItem[T]) {
	// Compact the consumed prefix before growing.
	if f.head > 0 && f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	} else if f.head > 64 && f.head*2 >= len(f.q) {
		n := copy(f.q, f.q[f.head:])
		f.q = f.q[:n]
		f.head = 0
	}
	f.q = append(f.q, it)
}

func (f *drrFlow[T]) pop() drrItem[T] {
	it := f.q[f.head]
	var zero drrItem[T]
	f.q[f.head] = zero // drop reference for GC
	f.head++
	return it
}

// NewDRR creates a scheduler. quantum is the per-visit byte credit for a
// weight-1 flow (a few packets' worth); flowCap bounds each flow's queue
// in items; weightOf resolves flow weights at activation (nil ⇒ 1).
func NewDRR[T any](quantum, flowCap int, weightOf func(ns uint32) int) *DRR[T] {
	if quantum <= 0 {
		quantum = 1 << 14
	}
	if flowCap <= 0 {
		flowCap = 1024
	}
	d := &DRR[T]{
		flows:    make(map[uint32]*drrFlow[T]),
		quantum:  quantum,
		flowCap:  flowCap,
		weightOf: weightOf,
	}
	d.work.L = &d.mu
	d.space.L = &d.mu
	return d
}

func (d *DRR[T]) flowLocked(ns uint32) *drrFlow[T] {
	f := d.flows[ns]
	if f == nil {
		w := 1
		if d.weightOf != nil {
			if got := d.weightOf(ns); got > 0 {
				w = got
			}
		}
		f = &drrFlow[T]{ns: ns, weight: w}
		d.flows[ns] = f
	}
	return f
}

func (d *DRR[T]) enqueueLocked(f *drrFlow[T], v T, cost int) {
	f.push(drrItem[T]{v: v, cost: cost})
	if !f.queued {
		f.queued = true
		d.ring = append(d.ring, f)
	}
	d.n++
	d.work.Signal()
}

// Push enqueues without blocking; false means the flow is at capacity
// (or the scheduler closed) and the item was not taken.
func (d *DRR[T]) Push(ns uint32, v T, cost int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	f := d.flowLocked(ns)
	if f.size() >= d.flowCap {
		return false
	}
	d.enqueueLocked(f, v, cost)
	return true
}

// PushWait enqueues, blocking while the flow is at capacity. Returns
// ErrSchedClosed if the scheduler closes while waiting.
func (d *DRR[T]) PushWait(ns uint32, v T, cost int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed {
			return ErrSchedClosed
		}
		f := d.flowLocked(ns)
		if f.size() < d.flowCap {
			d.enqueueLocked(f, v, cost)
			return nil
		}
		d.space.Wait()
	}
}

// Pop dequeues the next item in DRR service order, blocking until one is
// available. ok is false once the scheduler is closed and fully drained.
func (d *DRR[T]) Pop() (v T, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.n > 0 {
			return d.popLocked()
		}
		if d.closed {
			var zero T
			return zero, false
		}
		d.work.Wait()
	}
}

// TryPop dequeues without blocking.
func (d *DRR[T]) TryPop() (v T, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		var zero T
		return zero, false
	}
	return d.popLocked()
}

func (d *DRR[T]) popLocked() (T, bool) {
	for {
		if d.idx >= len(d.ring) {
			d.idx = 0
		}
		f := d.ring[d.idx]
		if f.size() == 0 {
			// Emptied while being served: leaves the ring with its
			// deficit forfeited (DRR rule — credit does not accrue while
			// idle).
			d.dropFlowLocked(f)
			continue
		}
		if !d.inTurn {
			// The flow's turn begins: grant its one quantum. The grant
			// happens exactly once per ring rotation, which is what bounds
			// any flow's service share at weight/Σweights.
			f.deficit += d.quantum * f.weight
			d.inTurn = true
		}
		if f.deficit < f.q[f.head].cost {
			// Credit exhausted (or the head item is larger than one
			// quantum and needs more turns to accrue): end the turn so the
			// other flows are served meanwhile.
			d.idx++
			d.inTurn = false
			continue
		}
		it := f.pop()
		f.deficit -= it.cost
		d.n--
		if f.size() == 0 {
			d.dropFlowLocked(f)
		}
		d.space.Broadcast()
		return it.v, true
	}
}

// dropFlowLocked removes the flow at d.idx from the ring.
func (d *DRR[T]) dropFlowLocked(f *drrFlow[T]) {
	f.deficit = 0
	f.queued = false
	d.ring = append(d.ring[:d.idx], d.ring[d.idx+1:]...)
	d.inTurn = false
}

// Len reports the total queued items.
func (d *DRR[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Close stops accepting new items and wakes all waiters; queued items
// remain poppable until drained.
func (d *DRR[T]) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.work.Broadcast()
	d.space.Broadcast()
}
