package tenant

import (
	"errors"
	"fmt"
	"testing"

	"omnireduce/internal/protocol"
)

func openOK(t *testing.T, r *Registry, key JobKey, wid, workers, node int) uint32 {
	t.Helper()
	ns := protocol.NamespaceOf(key.Tenant, key.Job)
	if reason, err := r.OpenJob(key, ns, wid, workers, node); err != nil {
		t.Fatalf("OpenJob(%s) = reason %d, %v; want accept", key, reason, err)
	}
	return ns
}

func TestOpenJobAndAdmit(t *testing.T) {
	r := NewRegistry(Config{}, nil, 2)
	key := JobKey{Tenant: "prod", Job: "ranker"}
	ns := openOK(t, r, key, 0, 2, 10)
	openOK(t, r, key, 1, 2, 11)

	if got := r.WorkersOf(ns); got != 2 {
		t.Fatalf("WorkersOf(%d) = %d, want 2", ns, got)
	}
	if got := r.TenantOf(ns); got != "prod" {
		t.Fatalf("TenantOf = %q, want prod", got)
	}

	tid := protocol.TidFor(ns, 1)
	if _, err := r.AdmitOp(tid, 0, 10); err != nil {
		t.Fatalf("AdmitOp: %v", err)
	}
	if got := r.ActiveOps(); got != 1 {
		t.Fatalf("ActiveOps = %d, want 1", got)
	}
	// Result routing resolves the job-relative wid to its bound node.
	if node, ok := r.NodeFor(tid, 1); !ok || node != 11 {
		t.Fatalf("NodeFor(wid 1) = %d, %v; want 11, true", node, ok)
	}

	// Slot lifecycle drives the op to completion.
	r.SlotOpened(tid)
	r.SlotOpened(tid)
	if got := r.LiveSlots(); got != 2 {
		t.Fatalf("LiveSlots = %d, want 2", got)
	}
	r.SlotFinished(tid)
	if got := r.ActiveOps(); got != 1 {
		t.Fatalf("ActiveOps after one slot = %d, want 1", got)
	}
	r.SlotFinished(tid)
	if got := r.ActiveOps(); got != 0 {
		t.Fatalf("ActiveOps after all slots = %d, want 0", got)
	}
	if got := r.LiveSlots(); got != 0 {
		t.Fatalf("LiveSlots = %d, want 0", got)
	}
}

func TestOpenJobRefusals(t *testing.T) {
	r := NewRegistry(Config{}, nil, 2)
	key := JobKey{Tenant: "prod", Job: "ranker"}
	ns := openOK(t, r, key, 0, 4, 10)

	// Squatting: claiming a namespace that key does not derive to.
	bad := JobKey{Tenant: "prod", Job: "other"}
	if _, err := r.OpenJob(bad, ns, 0, 4, 10); !errors.Is(err, ErrAdmissionRejected) &&
		!errors.Is(err, ErrTidCollision) {
		t.Fatalf("squatting open = %v; want refusal", err)
	}
	// Worker-count mismatch on reopen.
	if _, err := r.OpenJob(key, ns, 1, 8, 11); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("worker-count mismatch = %v; want ErrAdmissionRejected", err)
	}
	// Same wid re-opened from a different node is a collision.
	if _, err := r.OpenJob(key, ns, 0, 4, 99); !errors.Is(err, ErrTidCollision) {
		t.Fatalf("node rebind = %v; want ErrTidCollision", err)
	}
	// Invalid identities never register.
	if _, err := r.OpenJob(JobKey{}, 0, 0, 1, 0); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := r.OpenJob(key, ns, 7, 4, 10); err == nil {
		t.Fatal("out-of-range wid accepted")
	}
}

// collidingKey brute-forces a job name whose namespace collides with
// key's — the deterministic hash has 4095 buckets, so a few thousand
// candidates always suffice.
func collidingKey(t *testing.T, key JobKey) JobKey {
	t.Helper()
	want := protocol.NamespaceOf(key.Tenant, key.Job)
	for i := 0; i < 1_000_000; i++ {
		cand := JobKey{Tenant: key.Tenant, Job: fmt.Sprintf("cand-%d", i)}
		if cand != key && protocol.NamespaceOf(cand.Tenant, cand.Job) == want {
			return cand
		}
	}
	t.Fatal("no colliding key found")
	return JobKey{}
}

func TestNamespaceHashCollision(t *testing.T) {
	r := NewRegistry(Config{}, nil, 2)
	key := JobKey{Tenant: "prod", Job: "ranker"}
	ns := openOK(t, r, key, 0, 2, 10)

	other := collidingKey(t, key)
	if _, err := r.OpenJob(other, ns, 0, 2, 20); !errors.Is(err, ErrTidCollision) {
		t.Fatalf("hash collision open = %v; want ErrTidCollision", err)
	}
	// Once the holder closes, the namespace frees up for the other job.
	r.CloseJob(ns, 0)
	if _, err := r.OpenJob(other, ns, 0, 2, 20); err != nil {
		t.Fatalf("open after close = %v; want accept", err)
	}
}

func TestMaxJobsQuota(t *testing.T) {
	cfg := Config{Tenants: map[string]Quota{"small": {MaxJobs: 1}}}
	r := NewRegistry(cfg, nil, 2)
	openOK(t, r, JobKey{Tenant: "small", Job: "a"}, 0, 2, 10)
	key := JobKey{Tenant: "small", Job: "b"}
	if _, err := r.OpenJob(key, protocol.NamespaceOf(key.Tenant, key.Job), 0, 2, 10); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("second job = %v; want ErrTenantQuota", err)
	}
	// Another tenant is unaffected.
	openOK(t, r, JobKey{Tenant: "big", Job: "b"}, 0, 2, 10)
}

func TestMaxInFlightOpsQuota(t *testing.T) {
	cfg := Config{Tenants: map[string]Quota{"small": {MaxInFlightOps: 1}}}
	r := NewRegistry(cfg, nil, 2)
	key := JobKey{Tenant: "small", Job: "a"}
	ns := openOK(t, r, key, 0, 2, 10)

	tid1, tid2 := protocol.TidFor(ns, 1), protocol.TidFor(ns, 2)
	if _, err := r.AdmitOp(tid1, 0, 10); err != nil {
		t.Fatalf("first op: %v", err)
	}
	reason, err := r.AdmitOp(tid2, 0, 10)
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("second op = %v; want ErrTenantQuota", err)
	}
	if got := ErrorForReason(reason); !errors.Is(got, ErrTenantQuota) {
		t.Fatalf("reason %d maps to %v; want ErrTenantQuota", reason, got)
	}
	// The verdict is memoized: a sibling worker gets the identical refusal.
	if _, err := r.AdmitOp(tid2, 1, 11); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("sibling re-ask = %v; want memoized ErrTenantQuota", err)
	}
	if rr, ok := r.RejectedReason(tid2); !ok || rr != reason {
		t.Fatalf("RejectedReason = %d, %v; want %d, true", rr, ok, reason)
	}

	// When the first op finishes, capacity frees for a new tid.
	r.SlotOpened(tid1)
	r.SlotFinished(tid1)
	if _, err := r.AdmitOp(protocol.TidFor(ns, 3), 0, 10); err != nil {
		t.Fatalf("op after completion: %v", err)
	}
}

func TestAdmitOpRefusals(t *testing.T) {
	r := NewRegistry(Config{}, nil, 2)
	// Unknown namespace.
	if _, err := r.AdmitOp(protocol.TidFor(77, 1), 0, 0); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown ns = %v; want ErrUnknownJob", err)
	}
	// Default-namespace collision: one wid claimed from two nodes (the
	// legacy two-clusters-one-aggregator hazard).
	if _, err := r.AdmitOp(protocol.TidFor(0, 1), 0, 0); err != nil {
		t.Fatalf("first cluster: %v", err)
	}
	if _, err := r.AdmitOp(protocol.TidFor(0, 2), 0, 5); !errors.Is(err, ErrTidCollision) {
		t.Fatalf("second cluster = %v; want ErrTidCollision", err)
	}
	// Out-of-range wid on the default namespace is admitted: the machine's
	// protocol error is the legacy contract for that misconfiguration.
	if _, err := r.AdmitOp(protocol.TidFor(0, 3), 9, 0); err != nil {
		t.Fatalf("legacy out-of-range wid = %v; want admit", err)
	}
	// On a named job it is refused.
	key := JobKey{Tenant: "prod", Job: "x"}
	ns := openOK(t, r, key, 0, 2, 10)
	if _, err := r.AdmitOp(protocol.TidFor(ns, 1), 9, 10); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("named out-of-range wid = %v; want ErrAdmissionRejected", err)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	r := NewRegistry(Config{}, nil, 2)
	key := JobKey{Tenant: "prod", Job: "ranker"}
	ns := openOK(t, r, key, 0, 2, 10)
	tid := protocol.TidFor(ns, 1)
	if _, err := r.AdmitOp(tid, 0, 10); err != nil {
		t.Fatalf("pre-drain op: %v", err)
	}
	r.SlotOpened(tid)

	r.StartDrain()
	if !r.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}
	// New jobs and new ops refuse with the drain error...
	k2 := JobKey{Tenant: "prod", Job: "late"}
	if _, err := r.OpenJob(k2, protocol.NamespaceOf(k2.Tenant, k2.Job), 0, 2, 10); !errors.Is(err, ErrDraining) {
		t.Fatalf("open during drain = %v; want ErrDraining", err)
	}
	if _, err := r.AdmitOp(protocol.TidFor(ns, 2), 0, 10); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit during drain = %v; want ErrDraining", err)
	}
	// ...while the in-flight op keeps running to completion.
	if got := r.ActiveOps(); got != 1 {
		t.Fatalf("ActiveOps = %d, want 1", got)
	}
	r.SlotFinished(tid)
	if got, slots := r.ActiveOps(), r.LiveSlots(); got != 0 || slots != 0 {
		t.Fatalf("post-drain ActiveOps=%d LiveSlots=%d, want 0/0", got, slots)
	}
}

func TestSlotReactivation(t *testing.T) {
	// A slot opening for a tid with no op entry (reordered bootstrap after
	// completion) re-activates accounting instead of going untracked.
	r := NewRegistry(Config{}, nil, 2)
	tid := protocol.TidFor(0, 1)
	r.SlotOpened(tid)
	if got := r.ActiveOps(); got != 1 {
		t.Fatalf("ActiveOps = %d, want 1 (re-activated)", got)
	}
	r.SlotFinished(tid)
	if got := r.ActiveOps(); got != 0 {
		t.Fatalf("ActiveOps = %d, want 0", got)
	}
	// Unknown namespace slots are ignored entirely.
	r.SlotOpened(protocol.TidFor(55, 1))
	if got := r.LiveSlots(); got != 0 {
		t.Fatalf("LiveSlots = %d, want 0 for unknown ns", got)
	}
}

func TestSnapshotAccounting(t *testing.T) {
	cfg := Config{Tenants: map[string]Quota{"small": {MaxInFlightOps: 1}}}
	r := NewRegistry(cfg, nil, 2)
	key := JobKey{Tenant: "small", Job: "a"}
	ns := openOK(t, r, key, 0, 2, 10)
	r.AdmitOp(protocol.TidFor(ns, 1), 0, 10)
	r.AdmitOp(protocol.TidFor(ns, 2), 0, 10) // rejected: quota

	var small *Stats
	for _, s := range r.Snapshot() {
		if s.Tenant == "small" {
			v := s
			small = &v
		}
	}
	if small == nil {
		t.Fatal("tenant small missing from snapshot")
	}
	if small.Jobs != 1 || small.Inflight != 1 || small.Admitted != 1 || small.Rejected != 1 {
		t.Fatalf("snapshot = %+v; want jobs=1 inflight=1 admitted=1 rejected=1", *small)
	}
}

func TestWeightDefaults(t *testing.T) {
	cfg := Config{Tenants: map[string]Quota{"heavy": {Weight: 4}}}
	r := NewRegistry(cfg, nil, 2)
	key := JobKey{Tenant: "heavy", Job: "a"}
	ns := openOK(t, r, key, 0, 2, 10)
	if got := r.Weight(ns); got != 4 {
		t.Fatalf("Weight(heavy) = %d, want 4", got)
	}
	if got := r.Weight(0); got != 1 {
		t.Fatalf("Weight(default) = %d, want 1", got)
	}
	if got := r.Weight(999); got != 1 {
		t.Fatalf("Weight(unknown) = %d, want 1", got)
	}
}
