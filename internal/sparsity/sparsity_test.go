package sparsity

import (
	"math"
	"math/rand"
	"testing"

	"omnireduce/internal/tensor"
)

func TestGenerateSparsityLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range []float64{0, 0.5, 0.9, 0.99} {
		ts := Generate(GenSpec{Elements: 100_000, Sparsity: s, Workers: 2, Overlap: OverlapRandom}, rng)
		for w, d := range ts {
			got := d.Sparsity()
			if math.Abs(got-s) > 0.02 {
				t.Errorf("s=%v worker %d: measured sparsity %v", s, w, got)
			}
		}
	}
}

func TestGenerateOverlapAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ts := Generate(GenSpec{Elements: 10_000, Sparsity: 0.9, Workers: 4, Overlap: OverlapAll, BlockAligned: 16}, rng)
	m0 := tensor.ComputeBitmap(ts[0], 16)
	for w := 1; w < 4; w++ {
		m := tensor.ComputeBitmap(ts[w], 16)
		for b := 0; b < m.NumBlocks(); b++ {
			if m.Get(b) != m0.Get(b) {
				t.Fatalf("worker %d block %d differs from worker 0 under OverlapAll", w, b)
			}
		}
	}
}

func TestGenerateOverlapNone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := Generate(GenSpec{Elements: 40_000, Sparsity: 0.9, Workers: 4, Overlap: OverlapNone, BlockAligned: 16}, rng)
	st := ComputeGlobalBlockStats(ts, 16)
	for k := 1; k < len(st.ByOverlap); k++ {
		if st.ByOverlap[k] != 0 {
			t.Fatalf("OverlapNone produced %d blocks with overlap %d", st.ByOverlap[k], k+1)
		}
	}
	if st.UnionNonZero != st.TotalSent {
		t.Fatalf("union %d != total sent %d under no overlap", st.UnionNonZero, st.TotalSent)
	}
}

func TestGlobalBlockStats(t *testing.T) {
	a := tensor.NewDense(64)
	b := tensor.NewDense(64)
	a.Data[0] = 1  // block 0 only worker a
	a.Data[16] = 1 // block 1 both
	b.Data[17] = 1
	b.Data[48] = 1 // block 3 only b
	st := ComputeGlobalBlockStats([]*tensor.Dense{a, b}, 16)
	if st.Blocks != 4 || st.UnionNonZero != 3 || st.TotalSent != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByOverlap[0] != 2 || st.ByOverlap[1] != 1 {
		t.Fatalf("ByOverlap = %v", st.ByOverlap)
	}
	frac := st.SentVolumeFractionByOverlap()
	if math.Abs(frac[0]-0.5) > 1e-12 || math.Abs(frac[1]-0.5) > 1e-12 {
		t.Fatalf("volume fractions = %v", frac)
	}
	if got := st.UnionExpansion(2); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("UnionExpansion = %v, want 1.5", got)
	}
}

func TestProfileElementSparsityMatchesPaper(t *testing.T) {
	// Structural models should reproduce Table 1's gradient sparsity
	// within a few percentage points.
	tol := map[string]float64{
		"DeepLight": 0.005, "LSTM": 0.01, "NCF": 0.03,
		"BERT": 0.10, "VGG19": 0.005, "ResNet152": 0.005,
	}
	for _, p := range Workloads {
		got := p.ElementSparsity()
		if d := math.Abs(got - p.PaperSparsity); d > tol[p.Name] {
			t.Errorf("%s: modeled sparsity %.4f vs paper %.4f (|d|=%.4f)", p.Name, got, p.PaperSparsity, d)
		}
	}
}

func TestProfileOmniCommMatchesTable1(t *testing.T) {
	// Modeled per-worker OmniReduce volume at bs=256 should be within 35%
	// of Table 1's measured value (the paper's values are longitudinal
	// training averages; ours is a single-iteration structural model).
	for _, p := range Workloads {
		got := p.OmniCommBytes(256)
		want := p.PaperOmniCommBytes
		ratio := float64(got) / float64(want)
		if ratio < 0.65 || ratio > 1.35 {
			t.Errorf("%s: modeled OmniComm %d MB vs paper %d MB (ratio %.2f)",
				p.Name, got>>20, want>>20, ratio)
		}
	}
}

func TestBlockSparsityMonotone(t *testing.T) {
	for _, p := range append(Workloads, SBERT) {
		prev := 1.0
		for _, bs := range []int{1, 32, 64, 128, 256, 352} {
			s := p.BlockSparsity(bs)
			if s < 0 || s > 1 {
				t.Fatalf("%s bs=%d: block sparsity %v out of range", p.Name, bs, s)
			}
			if s > prev+1e-9 {
				t.Fatalf("%s: block sparsity not non-increasing at bs=%d (%v > %v)", p.Name, bs, s, prev)
			}
			prev = s
		}
	}
}

func TestBlockSparsityAtOneIsElementSparsity(t *testing.T) {
	for _, p := range Workloads {
		// Tolerance covers EmbRows*EmbDim rounding vs EmbBytes/4.
		if d := math.Abs(p.BlockSparsity(1) - p.ElementSparsity()); d > 1e-5 {
			t.Errorf("%s: BlockSparsity(1)=%v != ElementSparsity=%v", p.Name, p.BlockSparsity(1), p.ElementSparsity())
		}
	}
}

func TestUnionFactor(t *testing.T) {
	// With all blocks fully overlapping (ResNet-like), union == per-worker.
	if got := ResNet152.UnionFactor(8); math.Abs(got-1) > 0.01 {
		t.Errorf("ResNet152 UnionFactor(8) = %v, want ~1", got)
	}
	// DeepLight: mostly single-worker blocks -> union much larger than
	// per-worker volume. Analysis of Table 2 gives ~5.7.
	got := DeepLight.UnionFactor(8)
	if got < 4 || got > 7 {
		t.Errorf("DeepLight UnionFactor(8) = %v, want ~5.7", got)
	}
	// Single worker: factor 1 by definition.
	if got := DeepLight.UnionFactor(1); got != 1 {
		t.Errorf("UnionFactor(1) = %v", got)
	}
	// Factor grows with worker count for low-overlap workloads.
	if DeepLight.UnionFactor(2) >= DeepLight.UnionFactor(8) {
		t.Errorf("UnionFactor should grow with workers: %v vs %v",
			DeepLight.UnionFactor(2), DeepLight.UnionFactor(8))
	}
}

func TestSynthesizeGradientStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, p := range []*Profile{DeepLight, VGG19} {
		g := p.SynthesizeGradient(1000, rng)
		got := g.Sparsity()
		want := p.ElementSparsity()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s: synthesized sparsity %v vs modeled %v", p.Name, got, want)
		}
		// Block sparsity at 256 should be near the analytic curve.
		bm := tensor.ComputeBitmap(g, 256)
		if d := math.Abs(bm.BlockSparsity() - p.BlockSparsity(256)); d > 0.05 {
			t.Errorf("%s: synthesized block sparsity %v vs modeled %v",
				p.Name, bm.BlockSparsity(), p.BlockSparsity(256))
		}
	}
}

func TestSynthesizeWorkersOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// NCF has a spread-out overlap distribution; check the synthesized
	// Table 2-style breakdown tracks the profile's distribution.
	p := NCF
	ts := p.SynthesizeWorkers(8, 1<<20, 256, rng)
	st := ComputeGlobalBlockStats(ts, 256)
	frac := st.SentVolumeFractionByOverlap()
	for k := 0; k < 8; k++ {
		if math.Abs(frac[k]-p.OverlapVolumeFrac[k]) > 0.04 {
			t.Errorf("overlap class %d: synthesized %.4f vs profile %.4f", k+1, frac[k], p.OverlapVolumeFrac[k])
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("LSTM") != LSTM {
		t.Fatal("ByName(LSTM) wrong")
	}
	if ByName("sBERT") != SBERT {
		t.Fatal("ByName(sBERT) wrong")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName(nope) should be nil")
	}
}

func TestOverlapString(t *testing.T) {
	if OverlapRandom.String() != "random" || OverlapAll.String() != "all" || OverlapNone.String() != "none" {
		t.Fatal("Overlap.String wrong")
	}
	if Overlap(9).String() == "" {
		t.Fatal("unknown overlap should still stringify")
	}
}

func TestOverlapVolumeFracSumsToOne(t *testing.T) {
	for _, p := range append(Workloads, SBERT) {
		var s float64
		for _, f := range p.OverlapVolumeFrac {
			s += f
		}
		if math.Abs(s-1) > 0.01 {
			t.Errorf("%s: overlap fractions sum to %v", p.Name, s)
		}
	}
}

func TestBuckets(t *testing.T) {
	// DeepLight: 2.26 GB / 25 MB buckets = 87 buckets.
	if got := DeepLight.Buckets(); got < 80 || got > 100 {
		t.Fatalf("DeepLight buckets = %d", got)
	}
	small := &Profile{DenseBytes: 10}
	if small.Buckets() != 1 {
		t.Fatal("tiny model should have 1 bucket")
	}
}
