// Package sparsity provides synthetic gradient generators with controlled
// sparsity and inter-worker overlap, plus the per-model gradient profiles
// of the paper's six DNN workloads (Tables 1 and 2, Figure 16).
//
// Two layers are provided:
//
//   - Generators that materialize actual float32 tensors for the real
//     implementation's tests and benchmarks (§6.1 "sparse tensors are
//     generated randomly at each iteration").
//   - Analytic profiles that describe each DNN's gradient structure
//     (size, embedding fraction, block-sparsity curve, overlap
//     distribution) for the virtual-time simulator, which must reason
//     about multi-gigabyte gradients without materializing them.
package sparsity

import (
	"fmt"
	"math/rand"

	"omnireduce/internal/tensor"
)

// Overlap controls how the non-zero positions of different workers'
// tensors relate (§6.4.2: "all overlap", "none overlap", random).
type Overlap int

const (
	// OverlapRandom draws each worker's non-zero set independently.
	OverlapRandom Overlap = iota
	// OverlapAll gives every worker the same non-zero positions.
	OverlapAll
	// OverlapNone partitions non-zero positions disjointly across workers.
	OverlapNone
)

// String implements fmt.Stringer.
func (o Overlap) String() string {
	switch o {
	case OverlapRandom:
		return "random"
	case OverlapAll:
		return "all"
	case OverlapNone:
		return "none"
	default:
		return fmt.Sprintf("Overlap(%d)", int(o))
	}
}

// GenSpec describes a synthetic multi-worker gradient generation request.
type GenSpec struct {
	Elements int     // tensor length per worker
	Sparsity float64 // fraction of zero elements in [0,1]
	Workers  int
	Overlap  Overlap
	// BlockAligned, when > 0, places non-zeros in units of whole blocks of
	// this many elements (block-granular sparsity); when 0, non-zeros are
	// placed element-wise.
	BlockAligned int
}

// Generate produces one tensor per worker according to spec, using rng for
// all randomness. Values are drawn from a unit normal distribution.
func Generate(spec GenSpec, rng *rand.Rand) []*tensor.Dense {
	if spec.Workers <= 0 {
		panic("sparsity: Workers must be positive")
	}
	if spec.Sparsity < 0 || spec.Sparsity > 1 {
		panic("sparsity: Sparsity must be in [0,1]")
	}
	out := make([]*tensor.Dense, spec.Workers)
	for w := range out {
		out[w] = tensor.NewDense(spec.Elements)
	}
	unit := 1
	if spec.BlockAligned > 1 {
		unit = spec.BlockAligned
	}
	numUnits := (spec.Elements + unit - 1) / unit
	nzUnits := int(float64(numUnits)*(1-spec.Sparsity) + 0.5)
	if nzUnits > numUnits {
		nzUnits = numUnits
	}

	fill := func(t *tensor.Dense, u int) {
		lo := u * unit
		hi := lo + unit
		if hi > spec.Elements {
			hi = spec.Elements
		}
		for i := lo; i < hi; i++ {
			v := float32(rng.NormFloat64())
			if v == 0 {
				v = 1e-6 // keep chosen positions genuinely non-zero
			}
			t.Data[i] = v
		}
	}

	switch spec.Overlap {
	case OverlapAll:
		units := rng.Perm(numUnits)[:nzUnits]
		for _, u := range units {
			for w := range out {
				fill(out[w], u)
			}
		}
	case OverlapNone:
		// Disjoint unit sets: shuffle all units, deal nzUnits to each
		// worker in turn. If there are not enough units for full
		// disjointness, later workers get fewer (documented best effort,
		// mirroring the paper's "no overlap is viable only when m <= n/N").
		perm := rng.Perm(numUnits)
		idx := 0
		for w := range out {
			for k := 0; k < nzUnits && idx < len(perm); k++ {
				fill(out[w], perm[idx])
				idx++
			}
		}
	case OverlapRandom:
		for w := range out {
			units := rng.Perm(numUnits)[:nzUnits]
			for _, u := range units {
				fill(out[w], u)
			}
		}
	default:
		panic("sparsity: unknown overlap mode")
	}
	return out
}

// GlobalBlockStats summarizes the union structure of a multi-worker tensor
// set under block size bs: how many blocks are non-zero at >=1 worker, the
// total number of (worker, block) transmissions OmniReduce would perform,
// and the distribution of blocks by how many workers share them
// (Table 2's breakdown).
type GlobalBlockStats struct {
	Blocks       int   // total blocks per tensor
	UnionNonZero int   // blocks non-zero at >= 1 worker
	TotalSent    int   // sum over workers of per-worker non-zero blocks
	ByOverlap    []int // ByOverlap[k-1] = #blocks non-zero at exactly k workers
}

// ComputeGlobalBlockStats scans the given per-worker tensors.
func ComputeGlobalBlockStats(tensors []*tensor.Dense, bs int) GlobalBlockStats {
	if len(tensors) == 0 {
		return GlobalBlockStats{}
	}
	nb := tensors[0].NumBlocks(bs)
	st := GlobalBlockStats{Blocks: nb, ByOverlap: make([]int, len(tensors))}
	maps := make([]*tensor.Bitmap, len(tensors))
	for w, t := range tensors {
		maps[w] = tensor.ComputeBitmap(t, bs)
	}
	for b := 0; b < nb; b++ {
		cnt := 0
		for _, m := range maps {
			if m.Get(b) {
				cnt++
			}
		}
		if cnt > 0 {
			st.UnionNonZero++
			st.TotalSent += cnt
			st.ByOverlap[cnt-1]++
		}
	}
	return st
}

// SentVolumeFractionByOverlap converts ByOverlap counts into Table 2's
// metric: the fraction of the total transmitted block volume contributed by
// blocks with each overlap count (a block with overlap k is transmitted k
// times).
func (st GlobalBlockStats) SentVolumeFractionByOverlap() []float64 {
	out := make([]float64, len(st.ByOverlap))
	if st.TotalSent == 0 {
		return out
	}
	for k, c := range st.ByOverlap {
		out[k] = float64((k+1)*c) / float64(st.TotalSent)
	}
	return out
}

// UnionExpansion returns the ratio of union non-zero volume to the average
// per-worker sent volume: how much more a worker receives than it sends.
func (st GlobalBlockStats) UnionExpansion(workers int) float64 {
	if st.TotalSent == 0 {
		return 1
	}
	perWorker := float64(st.TotalSent) / float64(workers)
	return float64(st.UnionNonZero) / perWorker
}
