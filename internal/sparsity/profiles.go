package sparsity

import (
	"math"
	"math/rand"

	"omnireduce/internal/tensor"
)

// Profile analytically describes one DNN workload's gradient structure, so
// the virtual-time simulator can reason about multi-gigabyte gradients
// without materializing them. Values are taken from, or calibrated
// against, the paper's Tables 1 and 2 and Figure 9 (see EXPERIMENTS.md for
// the calibration notes).
type Profile struct {
	Name  string
	Task  string
	Batch int

	// Gradient composition (Table 1). Sizes in bytes of float32 data.
	DenseBytes int64 // non-embedding weights
	EmbBytes   int64 // embedding weights (0 for conv nets)

	// Structural model of the embedding part: EmbRows rows of width
	// EmbDim; TouchedRows rows receive non-zero gradients per iteration,
	// uniformly placed. Rows are block-aligned.
	EmbDim      int
	EmbRows     int64
	TouchedRows int64

	// DenseDensity is the element-wise non-zero fraction of the dense
	// (non-embedding) part of the gradient.
	DenseDensity float64

	// PaperSparsity is Table 1's overall gradient sparsity, kept for
	// cross-checking the structural model.
	PaperSparsity float64

	// PaperOmniCommBytes is Table 1's measured average per-worker
	// OmniReduce communication volume at block size 256.
	PaperOmniCommBytes int64

	// OverlapVolumeFrac is Table 2's breakdown for 8 workers:
	// OverlapVolumeFrac[k-1] is the fraction of total transmitted block
	// volume contributed by blocks non-zero at exactly k workers.
	OverlapVolumeFrac [8]float64

	// TComp is the calibrated single-GPU computation time per iteration in
	// seconds, and OverlapGamma the fraction of TComp that gradient
	// communication can hide behind (comm/compute overlap). Both are
	// derived from the paper's Figure 9 NCCL scaling factors combined with
	// the ring AllReduce bandwidth model; see EXPERIMENTS.md.
	TComp        float64
	OverlapGamma float64
}

// TotalBytes is the full gradient size in bytes.
func (p *Profile) TotalBytes() int64 { return p.DenseBytes + p.EmbBytes }

// TotalElems is the number of float32 gradient elements.
func (p *Profile) TotalElems() int64 { return p.TotalBytes() / 4 }

// Buckets approximates how many gradient buckets DDP-style training
// communicates per iteration (25 MB fusion buckets, PyTorch's default).
func (p *Profile) Buckets() int {
	const bucket = 25 << 20
	n := (p.TotalBytes() + bucket - 1) / bucket
	if n < 1 {
		n = 1
	}
	return int(n)
}

// ElementSparsity is the modeled element-wise zero fraction.
func (p *Profile) ElementSparsity() float64 {
	embNNZ := float64(p.TouchedRows) * float64(p.EmbDim)
	denseNNZ := p.DenseDensity * float64(p.DenseBytes/4)
	return 1 - (embNNZ+denseNNZ)/float64(p.TotalElems())
}

// BlockSparsity returns the modeled fraction of all-zero blocks for block
// size bs (in elements). This is Figure 16's left panel.
//
// Embedding part: rows are block-aligned and touched uniformly at random
// with probability t = TouchedRows/EmbRows. A block of bs elements spans
// r = max(1, bs/EmbDim) rows, so it is zero with probability (1-t)^r.
// Dense part: elements are i.i.d. non-zero with probability DenseDensity,
// so a block is zero with probability (1-DenseDensity)^bs.
func (p *Profile) BlockSparsity(bs int) float64 {
	embElems := float64(p.EmbBytes / 4)
	denseElems := float64(p.DenseBytes / 4)
	total := embElems + denseElems

	var embZero float64
	if embElems > 0 {
		t := float64(p.TouchedRows) / float64(p.EmbRows)
		r := 1.0
		if bs > p.EmbDim {
			r = float64(bs) / float64(p.EmbDim)
		}
		embZero = math.Pow(1-t, r)
	}
	denseZero := math.Pow(1-p.DenseDensity, float64(bs))
	return (embElems*embZero + denseElems*denseZero) / total
}

// OmniCommBytes returns the modeled per-worker OmniReduce communication
// volume at block size bs: the volume of non-zero blocks.
func (p *Profile) OmniCommBytes(bs int) int64 {
	return int64((1 - p.BlockSparsity(bs)) * float64(p.TotalBytes()))
}

// UnionFactor returns U/V: the ratio between the union non-zero block
// volume across workers and the average per-worker non-zero volume,
// derived from the Table 2 overlap distribution restricted to `workers`
// members of the 8-worker set. A block transmitted by exactly k of 8
// workers is, for a random subset of size n, transmitted by a
// hypergeometric number of them.
func (p *Profile) UnionFactor(workers int) float64 {
	if workers <= 1 {
		return 1
	}
	if workers > 8 {
		workers = 8
	}
	// For each 8-worker overlap class k (volume fraction f_k, block-count
	// weight f_k/k), compute the expected per-block sent count and union
	// membership when restricted to n workers.
	var blockWeight, sent, union float64
	n := float64(workers)
	for k := 1; k <= 8; k++ {
		f := p.OverlapVolumeFrac[k-1]
		if f == 0 {
			continue
		}
		w := f / float64(k) // relative number of blocks in class k
		// Expected #senders among n: n*k/8 (hypergeometric mean).
		eSent := n * float64(k) / 8
		// P(block present at >=1 of the n): 1 - C(8-k,n)/C(8,n).
		pPresent := 1 - hypergeomZero(8, k, workers)
		blockWeight += w
		sent += w * eSent
		union += w * pPresent
	}
	if sent == 0 {
		return 1
	}
	perWorker := sent / n
	return union / perWorker
}

// hypergeomZero returns P(no marked items drawn) when drawing n of total
// items, k of which are marked: C(total-k, n) / C(total, n).
func hypergeomZero(total, k, n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		num := float64(total - k - i)
		den := float64(total - i)
		if num <= 0 {
			return 0
		}
		p *= num / den
	}
	return p
}

// SynthesizeGradient materializes a scaled-down gradient tensor with the
// profile's structure. scale divides the model size (e.g. 1000 turns a
// 2.26 GB gradient into ~2.3 MB) while preserving element and block
// sparsity structure. Used by tests and by Table 1 / Fig 16 regeneration.
func (p *Profile) SynthesizeGradient(scale int, rng *rand.Rand) *tensor.Dense {
	if scale < 1 {
		scale = 1
	}
	embElems := int(p.EmbBytes / 4 / int64(scale))
	denseElems := int(p.DenseBytes / 4 / int64(scale))
	d := tensor.NewDense(embElems + denseElems)

	// Embedding region: block-aligned rows of width EmbDim.
	if embElems > 0 && p.EmbRows > 0 {
		rows := embElems / p.EmbDim
		if rows < 1 {
			rows = 1
		}
		t := float64(p.TouchedRows) / float64(p.EmbRows)
		touched := int(t*float64(rows) + 0.5)
		if touched < 1 {
			touched = 1
		}
		if touched > rows {
			touched = rows
		}
		for _, r := range rng.Perm(rows)[:touched] {
			lo := r * p.EmbDim
			hi := lo + p.EmbDim
			if hi > embElems {
				hi = embElems
			}
			for i := lo; i < hi; i++ {
				d.Data[i] = nonZeroNorm(rng)
			}
		}
	}
	// Dense region: i.i.d. elements.
	for i := embElems; i < embElems+denseElems; i++ {
		if rng.Float64() < p.DenseDensity {
			d.Data[i] = nonZeroNorm(rng)
		}
	}
	return d
}

// SynthesizeWorkers materializes per-worker gradients whose overlap
// structure follows the profile's Table 2 distribution: for every union
// non-zero block, an overlap class k is drawn with probability
// proportional to f_k/k, and the block is assigned to k random workers.
// The per-worker non-zero block count matches OmniCommBytes(bs)/(<k>)
// structure. Used by Table 2 regeneration and overlap-sensitive tests.
func (p *Profile) SynthesizeWorkers(workers, elements, bs int, rng *rand.Rand) []*tensor.Dense {
	out := make([]*tensor.Dense, workers)
	for w := range out {
		out[w] = tensor.NewDense(elements)
	}
	nb := (elements + bs - 1) / bs
	// Union block density at this bs.
	perWorkerDensity := 1 - p.BlockSparsity(bs)
	// Class weights over blocks (f_k/k).
	var weights [8]float64
	var wSum, meanK float64
	for k := 1; k <= 8; k++ {
		weights[k-1] = p.OverlapVolumeFrac[k-1] / float64(k)
		wSum += weights[k-1]
	}
	if wSum == 0 {
		weights[7] = 1
		wSum = 1
	}
	for k := 1; k <= 8; k++ {
		meanK += float64(k) * weights[k-1] / wSum
	}
	// Choose union block count so that average per-worker density matches:
	// perWorker = union * meanK / workers  =>  union = perWorker*workers/meanK.
	unionBlocks := int(perWorkerDensity*float64(nb)*float64(workers)/meanK + 0.5)
	if unionBlocks > nb {
		unionBlocks = nb
	}
	perm := rng.Perm(nb)[:unionBlocks]
	for _, b := range perm {
		// Draw overlap class.
		x := rng.Float64() * wSum
		k := 8
		for c := 1; c <= 8; c++ {
			x -= weights[c-1]
			if x <= 0 {
				k = c
				break
			}
		}
		if k > workers {
			k = workers
		}
		for _, w := range rng.Perm(workers)[:k] {
			lo := b * bs
			hi := lo + bs
			if hi > elements {
				hi = elements
			}
			for i := lo; i < hi; i++ {
				out[w].Data[i] = nonZeroNorm(rng)
			}
		}
	}
	return out
}

func nonZeroNorm(rng *rand.Rand) float32 {
	v := float32(rng.NormFloat64())
	if v == 0 {
		return 1e-6
	}
	return v
}

// The six benchmark workloads of Table 1. Structural parameters (EmbDim,
// TouchedRows, DenseDensity) are fitted so that ElementSparsity and
// OmniCommBytes(256) reproduce Table 1; TComp/OverlapGamma are calibrated
// from Figure 9's NCCL scaling factors (see EXPERIMENTS.md).
var (
	DeepLight = &Profile{
		Name: "DeepLight", Task: "Click-through Rate Prediction", Batch: 2048,
		DenseBytes: 1_800_000, EmbBytes: 2_260_000_000,
		EmbDim: 64, EmbRows: 8_828_125, TouchedRows: 16_600,
		DenseDensity:  1.0,
		PaperSparsity: 0.9973, PaperOmniCommBytes: 16 << 20,
		OverlapVolumeFrac: [8]float64{0.5949, 0.1194, 0.0561, 0.0340, 0.0236, 0.0185, 0.0173, 0.1362},
		TComp:             0.145, OverlapGamma: 0.10,
	}
	LSTM = &Profile{
		Name: "LSTM", Task: "Language Modeling", Batch: 128,
		DenseBytes: 74_000_000, EmbBytes: 1_520_000_000,
		EmbDim: 512, EmbRows: 742_187, TouchedRows: 8_000,
		DenseDensity:  0.962,
		PaperSparsity: 0.9450, PaperOmniCommBytes: 90 << 20,
		OverlapVolumeFrac: [8]float64{0.1810, 0.0458, 0.0198, 0.0111, 0.0071, 0.0050, 0.0040, 0.7261},
		TComp:             0.307, OverlapGamma: 0.18,
	}
	NCF = &Profile{
		Name: "NCF", Task: "Recommendation", Batch: 1 << 20,
		DenseBytes: 400_000, EmbBytes: 679_000_000,
		EmbDim: 64, EmbRows: 2_652_343, TouchedRows: 360_000,
		DenseDensity:  1.0,
		PaperSparsity: 0.846, PaperOmniCommBytes: 280 << 20,
		OverlapVolumeFrac: [8]float64{0.2748, 0.1778, 0.1310, 0.1029, 0.0852, 0.0760, 0.0739, 0.0785},
		TComp:             0.202, OverlapGamma: 0.0,
	}
	BERT = &Profile{
		Name: "BERT", Task: "Question Answering", Batch: 4,
		DenseBytes: 1_000_000_000, EmbBytes: 284_000_000,
		EmbDim: 768, EmbRows: 92_447, TouchedRows: 53_600,
		DenseDensity:  1.0,
		PaperSparsity: 0.0931, PaperOmniCommBytes: 1_213_328_384, // 1.13 GiB
		OverlapVolumeFrac: [8]float64{0.0060, 0.0011, 0.0004, 0.0002, 0.0001, 0.0001, 0.0001, 0.9920},
		TComp:             0.550, OverlapGamma: 0.78,
	}
	VGG19 = &Profile{
		Name: "VGG19", Task: "Image Classification", Batch: 64,
		DenseBytes: 548_000_000, EmbBytes: 0,
		DenseDensity:  0.680,
		PaperSparsity: 0.320, PaperOmniCommBytes: 547 << 20,
		OverlapVolumeFrac: [8]float64{0.0003, 0.0002, 0.0001, 0.0001, 0.0002, 0.0006, 0.0105, 0.9879},
		TComp:             0.450, OverlapGamma: 0.693,
	}
	ResNet152 = &Profile{
		Name: "ResNet152", Task: "Image Classification", Batch: 64,
		DenseBytes: 230_000_000, EmbBytes: 0,
		DenseDensity:  0.784,
		PaperSparsity: 0.216, PaperOmniCommBytes: 230 << 20,
		OverlapVolumeFrac: [8]float64{0.0001, 0.0001, 0, 0, 0, 0.0001, 0.0001, 0.9996},
		TComp:             0.300, OverlapGamma: 1.0,
	}

	// SBERT is BERT after 1% Block Top-k compression (Table 2's last
	// column): very sparse with low inter-worker overlap. Block Top-k
	// produces block-structured sparsity (whole 256-element blocks kept or
	// dropped), which the i.i.d. dense-part model expresses with a
	// DenseDensity calibrated so that the 256-block density is ~1%:
	// 1-(1-dd)^256 = 0.01.
	SBERT = &Profile{
		Name: "sBERT", Task: "Question Answering (1% Block Top-k)", Batch: 4,
		DenseBytes: 1_000_000_000, EmbBytes: 284_000_000,
		EmbDim: 768, EmbRows: 92_447, TouchedRows: 536,
		DenseDensity:  3.93e-5,
		PaperSparsity: 0.99, PaperOmniCommBytes: 13 << 20,
		OverlapVolumeFrac: [8]float64{0.8315, 0.1281, 0.0263, 0.0078, 0.0031, 0.0014, 0.0007, 0.0011},
		TComp:             0.550, OverlapGamma: 0.78,
	}
)

// Workloads lists the six benchmark DNNs in Table 1 order.
var Workloads = []*Profile{DeepLight, LSTM, NCF, BERT, VGG19, ResNet152}

// ByName returns the named workload profile, or nil.
func ByName(name string) *Profile {
	for _, p := range append(Workloads, SBERT) {
		if p.Name == name {
			return p
		}
	}
	return nil
}
