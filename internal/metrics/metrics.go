// Package metrics provides the small reporting toolkit used by the
// experiment harness: fixed-width text tables (the rows/series each
// figure regenerates), CSV output, and summary statistics.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows and renders them as an aligned text table or CSV.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v, and float64 values
// with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the aligned text table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderCSV writes the table as CSV (no quoting; cells must not contain
// commas, which the harness's numeric output guarantees).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.headers, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// String renders the text table.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Mean, Min, Max   float64
	P50, P90, P99    float64
	StdDev, Variance float64
}

// Summarize computes summary statistics (nil-safe; zero for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	s.Variance = sq/float64(len(xs)) - s.Mean*s.Mean
	if s.Variance < 0 {
		s.Variance = 0
	}
	s.StdDev = math.Sqrt(s.Variance)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	s.P50, s.P90, s.P99 = q(0.50), q(0.90), q(0.99)
	return s
}

// FormatBytes renders a byte count in human units.
func FormatBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// FormatDuration renders seconds in engineering units.
func FormatDuration(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.3f s", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.3f ms", sec*1e3)
	case sec >= 1e-6:
		return fmt.Sprintf("%.3f us", sec*1e6)
	default:
		return fmt.Sprintf("%.0f ns", sec*1e9)
	}
}
