package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a", 1.5)
	tb.AddRow("longer-name", 123456.789)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "longer-name") || !strings.Contains(out, "1.235e+05") {
		t.Fatalf("bad render:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	var b strings.Builder
	tb.RenderCSV(&b)
	want := "a,b\n1,2\n"
	if b.String() != want {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		512:             "512 B",
		2048:            "2.00 KB",
		3 << 20:         "3.00 MB",
		1.5 * (1 << 30): "1.50 GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatDuration(2.5); got != "2.500 s" {
		t.Errorf("FormatDuration = %q", got)
	}
	if got := FormatDuration(0.012); got != "12.000 ms" {
		t.Errorf("FormatDuration = %q", got)
	}
	if got := FormatDuration(43e-6); got != "43.000 us" {
		t.Errorf("FormatDuration = %q", got)
	}
	if got := FormatDuration(5e-8); got != "50 ns" {
		t.Errorf("FormatDuration = %q", got)
	}
}
