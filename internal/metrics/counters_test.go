package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Add("retransmits", 3)
	c.Add("backoffs", 1)
	c.Add("retransmits", 2)
	if got := c.Get("retransmits"); got != 5 {
		t.Fatalf("retransmits = %d", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("missing = %d", got)
	}
	if got := c.Total(); got != 6 {
		t.Fatalf("total = %d", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "retransmits" || names[1] != "backoffs" {
		t.Fatalf("creation order lost: %v", names)
	}
	sorted := c.SortedNames()
	if sorted[0] != "backoffs" || sorted[1] != "retransmits" {
		t.Fatalf("sorted = %v", sorted)
	}
}

func TestCountersMergePreservesOrder(t *testing.T) {
	a := NewCounters()
	a.Add("x", 1)
	b := NewCounters()
	b.Add("y", 2)
	b.Add("z", 3)
	b.Add("x", 10)
	a.Merge(b)
	if got := a.Get("x"); got != 11 {
		t.Fatalf("x = %d", got)
	}
	names := a.Names()
	if len(names) != 3 || names[0] != "x" || names[1] != "y" || names[2] != "z" {
		t.Fatalf("merge order = %v", names)
	}
	snap := a.Snapshot()
	snap["x"] = 0 // snapshot is a copy
	if a.Get("x") != 11 {
		t.Fatal("snapshot aliased internal state")
	}
}

func TestCountersTable(t *testing.T) {
	c := NewCounters()
	c.Add("dups_filtered", 7)
	c.Add("stale_rounds", 0)
	out := c.Table("recovery").String()
	if !strings.Contains(out, "dups_filtered") || !strings.Contains(out, "7") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if c.Table("recovery").Rows() != 2 {
		t.Fatal("zero-valued counters must still render")
	}
}

// TestCountersMergeConcurrentWithAdd races Merge against counter
// creation and increments in the source set. The merge must read names
// and values as one consistent snapshot: with the old two-lock protocol
// (Names() then Snapshot()), a counter created between the calls could
// merge with a value the names slice never agreed to, and under the
// race detector the torn accesses surface as data races.
func TestCountersMergeConcurrentWithAdd(t *testing.T) {
	src := NewCounters()
	dst := NewCounters()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src.Add("steady", 1)
			src.Add(fmt.Sprintf("new_%d", i%64), 1)
		}
	}()
	for i := 0; i < 200; i++ {
		dst.Merge(src)
	}
	close(stop)
	wg.Wait()
	// Final merge after the writer stops: dst must now cover every
	// counter src has, each with a sane (≤ src) value from some earlier
	// consistent snapshot.
	final := NewCounters()
	final.Merge(src)
	names, vals := src.snapshotOrdered()
	if len(names) != len(vals) {
		t.Fatalf("snapshotOrdered: %d names, %d vals", len(names), len(vals))
	}
	for i, n := range names {
		if got := final.Get(n); got != vals[i] {
			t.Fatalf("final merge %s = %d, want %d", n, got, vals[i])
		}
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1_000; i++ {
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8_000 {
		t.Fatalf("n = %d", got)
	}
}
