package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Add("retransmits", 3)
	c.Add("backoffs", 1)
	c.Add("retransmits", 2)
	if got := c.Get("retransmits"); got != 5 {
		t.Fatalf("retransmits = %d", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("missing = %d", got)
	}
	if got := c.Total(); got != 6 {
		t.Fatalf("total = %d", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "retransmits" || names[1] != "backoffs" {
		t.Fatalf("creation order lost: %v", names)
	}
	sorted := c.SortedNames()
	if sorted[0] != "backoffs" || sorted[1] != "retransmits" {
		t.Fatalf("sorted = %v", sorted)
	}
}

func TestCountersMergePreservesOrder(t *testing.T) {
	a := NewCounters()
	a.Add("x", 1)
	b := NewCounters()
	b.Add("y", 2)
	b.Add("z", 3)
	b.Add("x", 10)
	a.Merge(b)
	if got := a.Get("x"); got != 11 {
		t.Fatalf("x = %d", got)
	}
	names := a.Names()
	if len(names) != 3 || names[0] != "x" || names[1] != "y" || names[2] != "z" {
		t.Fatalf("merge order = %v", names)
	}
	snap := a.Snapshot()
	snap["x"] = 0 // snapshot is a copy
	if a.Get("x") != 11 {
		t.Fatal("snapshot aliased internal state")
	}
}

func TestCountersTable(t *testing.T) {
	c := NewCounters()
	c.Add("dups_filtered", 7)
	c.Add("stale_rounds", 0)
	out := c.Table("recovery").String()
	if !strings.Contains(out, "dups_filtered") || !strings.Contains(out, "7") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if c.Table("recovery").Rows() != 2 {
		t.Fatal("zero-valued counters must still render")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1_000; i++ {
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8_000 {
		t.Fatalf("n = %d", got)
	}
}
