package metrics

import (
	"sort"
	"sync"
)

// Counters is a small set of named monotonic event counters, safe for
// concurrent use. The protocol layers use it to expose per-event recovery
// metrics (retransmissions, replays, filtered duplicates) in a form the
// reporting toolkit can render and merge across nodes.
type Counters struct {
	mu    sync.Mutex
	order []string
	vals  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Add increments the named counter by delta, creating it at zero first.
// Counter creation order is remembered for rendering.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.vals[name]; !ok {
		c.order = append(c.order, name)
	}
	c.vals[name] += delta
}

// Get returns the named counter's value (zero if absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}

// snapshotOrdered returns the counter names in creation order together
// with their values, captured under one lock acquisition so the pair is
// a consistent point-in-time view even while other goroutines Add.
func (c *Counters) snapshotOrdered() ([]string, []int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := append([]string(nil), c.order...)
	vals := make([]int64, len(names))
	for i, n := range names {
		vals[i] = c.vals[n]
	}
	return names, vals
}

// Merge adds every counter of other into c, preserving other's creation
// order for counters c does not yet have. The names and values of other
// are read in a single consistent snapshot: a counter created in other
// concurrently with the merge is either fully included or fully absent,
// never present with a torn value.
func (c *Counters) Merge(other *Counters) {
	names, vals := other.snapshotOrdered()
	for i, name := range names {
		c.Add(name, vals[i])
	}
}

// Total returns the sum of all counters.
func (c *Counters) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.vals {
		t += v
	}
	return t
}

// Names returns the counter names in creation order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Table renders the counters as a two-column table in creation order.
func (c *Counters) Table(title string) *Table {
	names, vals := c.snapshotOrdered()
	t := NewTable(title, "event", "count")
	for i, n := range names {
		t.AddRow(n, vals[i])
	}
	return t
}

// SortedNames returns the counter names sorted lexicographically.
func (c *Counters) SortedNames() []string {
	n := c.Names()
	sort.Strings(n)
	return n
}
