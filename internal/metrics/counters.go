package metrics

import (
	"sort"
	"sync"
)

// Counters is a small set of named monotonic event counters, safe for
// concurrent use. The protocol layers use it to expose per-event recovery
// metrics (retransmissions, replays, filtered duplicates) in a form the
// reporting toolkit can render and merge across nodes.
type Counters struct {
	mu    sync.Mutex
	order []string
	vals  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Add increments the named counter by delta, creating it at zero first.
// Counter creation order is remembered for rendering.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.vals[name]; !ok {
		c.order = append(c.order, name)
	}
	c.vals[name] += delta
}

// Get returns the named counter's value (zero if absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}

// Merge adds every counter of other into c, preserving other's creation
// order for counters c does not yet have.
func (c *Counters) Merge(other *Counters) {
	names := other.Names()
	snap := other.Snapshot()
	for _, name := range names {
		c.Add(name, snap[name])
	}
}

// Total returns the sum of all counters.
func (c *Counters) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.vals {
		t += v
	}
	return t
}

// Names returns the counter names in creation order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Table renders the counters as a two-column table in creation order.
func (c *Counters) Table(title string) *Table {
	c.mu.Lock()
	names := append([]string(nil), c.order...)
	vals := make([]int64, len(names))
	for i, n := range names {
		vals[i] = c.vals[n]
	}
	c.mu.Unlock()
	t := NewTable(title, "event", "count")
	for i, n := range names {
		t.AddRow(n, vals[i])
	}
	return t
}

// SortedNames returns the counter names sorted lexicographically.
func (c *Counters) SortedNames() []string {
	n := c.Names()
	sort.Strings(n)
	return n
}
