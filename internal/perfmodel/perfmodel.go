// Package perfmodel implements the closed-form performance model of §3.4
// (following Patarasuk & Yuan's modeling approach): completion times for
// ring AllReduce, AGsparse AllReduce, and OmniReduce, plus the speedup
// expressions the paper derives from them.
package perfmodel

// Params are the model inputs: N workers with full-duplex bandwidth B
// (bits/second), one-way latency Alpha (seconds), tensor of S elements of
// ElemBytes each, and element density D in [0, 1].
type Params struct {
	N         int
	B         float64
	Alpha     float64
	S         float64 // elements
	ElemBytes float64 // bytes per element (4 for float32)
	D         float64
}

func (p Params) bits() float64 { return p.S * p.ElemBytes * 8 }

// TRing is the ring AllReduce time: 2(N-1)(α + S/(N·B)).
func TRing(p Params) float64 {
	n := float64(p.N)
	return 2 * (n - 1) * (p.Alpha + p.bits()/(n*p.B))
}

// TAGsparse is the AGsparse AllReduce time: (N-1)(α + 2DS/B), with key and
// value each ElemBytes wide.
func TAGsparse(p Params) float64 {
	n := float64(p.N)
	return (n - 1) * (p.Alpha + 2*p.D*p.bits()/p.B)
}

// TOmniReduce is the best-case OmniReduce time: α + DS/B, independent of
// N (the aggregator bandwidth matches the combined worker bandwidth and
// pipelining masks intermediate latency).
func TOmniReduce(p Params) float64 {
	return p.Alpha + p.D*p.bits()/p.B
}

// SpeedupVsRing is the bandwidth-regime speedup 2(N-1)/(N·D).
func SpeedupVsRing(n int, d float64) float64 {
	return 2 * float64(n-1) / (float64(n) * d)
}

// SpeedupVsAGsparse is the bandwidth-regime speedup 2(N-1).
func SpeedupVsAGsparse(n int) float64 {
	return 2 * float64(n-1)
}

// ColocatedSpeedupVsRing halves the benefit: with the aggregator sharded
// across the N workers each node has B/2 for each role, so the dense
// (D=1) speedup drops to 1 (§3.4).
func ColocatedSpeedupVsRing(n int, d float64) float64 {
	return SpeedupVsRing(n, d) / 2
}
