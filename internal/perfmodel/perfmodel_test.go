package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func base() Params {
	return Params{N: 8, B: 1e10, Alpha: 5e-6, S: 25e6, ElemBytes: 4, D: 1}
}

func TestTRing(t *testing.T) {
	p := base()
	want := 2.0 * 7 * (5e-6 + 25e6*32/(8*1e10))
	if got := TRing(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TRing = %v, want %v", got, want)
	}
}

func TestTAGsparse(t *testing.T) {
	p := base()
	p.D = 0.1
	want := 7.0 * (5e-6 + 2*0.1*25e6*32/1e10)
	if got := TAGsparse(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TAGsparse = %v", got)
	}
}

func TestTOmniReduce(t *testing.T) {
	p := base()
	p.D = 0.01
	want := 5e-6 + 0.01*25e6*32/1e10
	if got := TOmniReduce(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TOmniReduce = %v", got)
	}
}

func TestSpeedups(t *testing.T) {
	if got := SpeedupVsRing(8, 1); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("SU ring dense = %v, want 1.75", got)
	}
	if got := SpeedupVsRing(8, 0.01); math.Abs(got-175) > 1e-9 {
		t.Fatalf("SU ring sparse = %v, want 175", got)
	}
	if got := SpeedupVsAGsparse(8); got != 14 {
		t.Fatalf("SU agsparse = %v, want 14", got)
	}
	if got := ColocatedSpeedupVsRing(8, 1); math.Abs(got-0.875) > 1e-12 {
		t.Fatalf("SU colocated = %v", got)
	}
}

// Property: in the bandwidth regime (alpha = 0) the model ratios equal the
// closed-form speedups exactly.
func TestSpeedupConsistencyProperty(t *testing.T) {
	f := func(nRaw uint8, dRaw uint8) bool {
		n := 2 + int(nRaw)%15
		d := 0.01 + float64(dRaw%100)/100
		p := Params{N: n, B: 1e10, Alpha: 0, S: 1e6, ElemBytes: 4, D: d}
		su := TRing(p) / TOmniReduce(p)
		return math.Abs(su-SpeedupVsRing(n, d)) < 1e-6*su
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Omni's time never exceeds ring's for any density <= 1 with alpha = 0 and
// N >= 2 (SU >= 2(N-1)/N >= 1).
func TestOmniNeverSlowerInModel(t *testing.T) {
	f := func(nRaw, dRaw uint8) bool {
		p := Params{N: 2 + int(nRaw)%15, B: 1e10, Alpha: 0, S: 1e6, ElemBytes: 4, D: 0.01 + float64(dRaw%100)/100}
		return TOmniReduce(p) <= TRing(p)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
