package obs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"omnireduce/internal/metrics"
)

// ErrPoolLeak is wrapped by LeaksErr so callers can errors.Is-match a
// leak regardless of which pools it names.
var ErrPoolLeak = errors.New("obs: pool leak")

// Pool-leak audit. PR 3's pooled packet lifecycle made buffer ownership a
// correctness invariant: every transport.GetBuf must eventually be matched
// by a PutBuf, and every borrowed decode state must be returned. A
// violation — a pooled buffer parked in a dead operation's queue, a wedged
// receive pump holding messages nobody will drain — is invisible until
// throughput collapses, because sync.Pool quietly falls back to the
// allocator. The audit makes the balance observable: pools register a
// balance function here, and a LeakAudit brackets a run section,
// reporting any pool whose Get/Put delta did not return to zero.

// PoolBalanceFunc reports a pool's cumulative Get and Put counts.
type PoolBalanceFunc func() (gets, puts int64)

type poolReg struct {
	name string
	fn   PoolBalanceFunc
}

var (
	poolsMu sync.Mutex
	pools   []poolReg
)

// RegisterPool registers a named pool for auditing. Registration is
// typically done in the owning package's init; re-registering a name
// replaces the previous function.
func RegisterPool(name string, fn PoolBalanceFunc) {
	poolsMu.Lock()
	defer poolsMu.Unlock()
	for i := range pools {
		if pools[i].name == name {
			pools[i].fn = fn
			return
		}
	}
	pools = append(pools, poolReg{name: name, fn: fn})
}

// PoolBalance is one pool's cumulative Get/Put tally.
type PoolBalance struct {
	Name string `json:"name"`
	Gets int64  `json:"gets"`
	Puts int64  `json:"puts"`
}

// Outstanding is the number of unreturned acquisitions.
func (b PoolBalance) Outstanding() int64 { return b.Gets - b.Puts }

// PoolBalances snapshots every registered pool.
func PoolBalances() []PoolBalance {
	poolsMu.Lock()
	regs := append([]poolReg(nil), pools...)
	poolsMu.Unlock()
	out := make([]PoolBalance, len(regs))
	for i, r := range regs {
		gets, puts := r.fn()
		out[i] = PoolBalance{Name: r.name, Gets: gets, Puts: puts}
	}
	return out
}

// PoolTable renders the registered pools' balances.
func PoolTable() *metrics.Table {
	t := metrics.NewTable("pool balance", "pool", "gets", "puts", "outstanding")
	for _, b := range PoolBalances() {
		t.AddRow(b.Name, b.Gets, b.Puts, b.Outstanding())
	}
	return t
}

// LeakAudit brackets a run section: StartLeakAudit snapshots every pool,
// and Leaks/Settle report pools whose outstanding count grew. Balances
// are process-global, so audits are meaningful only around sections that
// quiesce (all connections closed, all operations finished) and must not
// overlap concurrently-audited sections.
type LeakAudit struct {
	start map[string]int64 // outstanding at start, by pool
}

// StartLeakAudit snapshots the current pool balances.
func StartLeakAudit() *LeakAudit {
	a := &LeakAudit{start: make(map[string]int64)}
	for _, b := range PoolBalances() {
		a.start[b.Name] = b.Outstanding()
	}
	return a
}

// Leaks returns the pools whose outstanding count exceeds the audit's
// starting point. A negative delta (a buffer acquired before the audit,
// released inside it) is not a leak and is not reported.
func (a *LeakAudit) Leaks() []PoolBalance {
	var out []PoolBalance
	for _, b := range PoolBalances() {
		if b.Outstanding() > a.start[b.Name] {
			out = append(out, b)
		}
	}
	return out
}

// Settle polls until no pool leaks relative to the audit's start, or the
// timeout expires, and returns the final leak set (empty on success).
// Teardown is asynchronous — receive pumps observing a close, delayed
// chaos deliveries, pool releases racing the audit — so a brief
// settlement window avoids false positives without hiding real leaks.
func (a *LeakAudit) Settle(timeout time.Duration) []PoolBalance {
	deadline := time.Now().Add(timeout)
	for {
		leaks := a.Leaks()
		if len(leaks) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return leaks
		}
		time.Sleep(time.Millisecond)
	}
}

// Err converts a leak set to an error (nil when empty), for callers that
// propagate rather than assert.
func LeaksErr(leaks []PoolBalance) error {
	if len(leaks) == 0 {
		return nil
	}
	msg := ""
	for _, l := range leaks {
		msg += fmt.Sprintf(" %s outstanding=%d (gets=%d puts=%d)", l.Name, l.Outstanding(), l.Gets, l.Puts)
	}
	return fmt.Errorf("%w:%s", ErrPoolLeak, msg)
}
