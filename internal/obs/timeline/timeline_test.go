package timeline

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"omnireduce/internal/obs"
)

// dump builds a FlightDump from records with the given node default.
func dump(node int32, recs ...obs.Record) *obs.FlightDump {
	return &obs.FlightDump{Node: node, Records: recs}
}

func issue(ts int64, node int32, tid uint32, slot uint16, round uint8, blocks int64) obs.Record {
	return obs.Record{TS: ts, Node: node, Ev: obs.EvSlotIssue, Tid: tid, Slot: slot, Round: round, Arg: blocks}
}

func complete(ts int64, node int32, tid uint32, slot uint16, round uint8, blocks int64) obs.Record {
	return obs.Record{TS: ts, Node: node, Ev: obs.EvSlotComplete, Tid: tid, Slot: slot, Round: round, Arg: blocks}
}

func skip(ts int64, node int32, tid uint32, slot uint16, n int64) obs.Record {
	return obs.Record{TS: ts, Node: node, Ev: obs.EvLookaheadSkip, Tid: tid, Slot: slot, Arg: n}
}

func retx(ts int64, node int32, tid uint32, slot uint16, round uint8) obs.Record {
	return obs.Record{TS: ts, Node: node, Ev: obs.EvRetransmit, Tid: tid, Slot: slot, Round: round, Arg: 64}
}

func TestMergeSingleDumpLifelines(t *testing.T) {
	// One slot, two rounds: [100,300] and [500,900]; duration 100..900.
	tl, err := Merge(dump(-1,
		issue(100, 0, 1, 0, 0, 2),
		issue(150, 1, 1, 0, 0, 1),
		complete(300, 2, 1, 0, 0, 2),
		issue(500, 0, 1, 0, 1, 1),
		complete(900, 2, 1, 0, 1, 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Lanes) != 1 {
		t.Fatalf("lanes = %d, want 1", len(tl.Lanes))
	}
	l := tl.Lanes[0]
	if len(l.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(l.Spans))
	}
	if l.Spans[0].Start != 100 || l.Spans[0].End != 300 || l.Spans[0].Issues != 2 || l.Spans[0].Blocks != 3 {
		t.Fatalf("span 0 = %+v", l.Spans[0])
	}
	if l.Spans[1].Start != 500 || l.Spans[1].End != 900 {
		t.Fatalf("span 1 = %+v", l.Spans[1])
	}
	if l.Busy != 200+400 {
		t.Fatalf("busy = %d, want 600", l.Busy)
	}
	// Busy 600 of an 800ns window.
	if got, want := tl.Occupancy(), 600.0/800.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("occupancy = %v, want %v", got, want)
	}
	if tl.OpenRounds() != 0 {
		t.Fatalf("open rounds = %d, want 0", tl.OpenRounds())
	}
}

func TestMergeClockAlignment(t *testing.T) {
	// Worker dump and aggregator dump observing the same tensor, with the
	// aggregator's recorder origin 1ms behind the worker's (so its raw
	// timestamps are wildly offset). After op-begin anchor alignment the
	// aggregator's stream shifts onto the worker clock modulo the anchor
	// round's own latency (200ns here), which per-tid alignment absorbs:
	// every later round keeps its latency minus that constant.
	const skew = -1_000_000 // aggregator origin offset
	worker := dump(0,
		issue(100, 0, 7, 0, 0, 1),
		issue(1000, 0, 7, 0, 1, 1),
		issue(2000, 0, 7, 0, 2, 1),
	)
	agg := dump(2,
		complete(100+200+skew, 2, 7, 0, 0, 1),
		complete(1000+250+skew, 2, 7, 0, 1, 1),
		complete(2000+290+skew, 2, 7, 0, 2, 1),
	)
	tl, err := Merge(worker, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Lanes) != 1 {
		t.Fatalf("lanes = %d, want 1", len(tl.Lanes))
	}
	l := tl.Lanes[0]
	if len(l.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(l.Spans))
	}
	wantDur := []int64{0, 50, 90} // true latencies 200/250/290 minus the absorbed 200
	for i, s := range l.Spans {
		if s.End < s.Start {
			t.Fatalf("span %d never closed or inverted: %+v (alignment failed)", i, s)
		}
		if got := s.End - s.Start; got != wantDur[i] {
			t.Fatalf("span %d duration = %d, want %d", i, got, wantDur[i])
		}
	}
	if tl.OpenRounds() != 0 {
		t.Fatalf("open rounds = %d, want 0", tl.OpenRounds())
	}
}

func TestSkipRatioAndDenseFactor(t *testing.T) {
	tl, err := Merge(dump(-1,
		issue(0, 0, 1, 0, 0, 10),
		skip(1, 0, 1, 0, 60),
		skip(2, 1, 1, 0, 20),
		issue(3, 1, 1, 0, 0, 10),
		complete(10, 2, 1, 0, 0, 10),
	))
	if err != nil {
		t.Fatal(err)
	}
	if tl.IssuedBlocks != 20 || tl.SkippedBlocks != 80 {
		t.Fatalf("issued %d skipped %d, want 20/80", tl.IssuedBlocks, tl.SkippedBlocks)
	}
	if got := tl.SkipRatio(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("skip ratio = %v, want 0.8", got)
	}
	if got := tl.DenseFactor(); math.Abs(got-5.0) > 1e-9 {
		t.Fatalf("dense factor = %v, want 5.0", got)
	}
}

func TestRepairLatency(t *testing.T) {
	tl, err := Merge(dump(-1,
		issue(0, 0, 1, 0, 0, 1),
		retx(100, 0, 1, 0, 0),
		retx(150, 1, 1, 0, 0), // second repair before completion: earliest wins
		complete(400, 2, 1, 0, 0, 1),
		issue(500, 0, 1, 0, 1, 1),
		retx(600, 0, 1, 0, 1),
		complete(700, 2, 1, 0, 1, 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Retransmits != 3 {
		t.Fatalf("retransmits = %d, want 3", tl.Retransmits)
	}
	if len(tl.RepairLatencies) != 2 {
		t.Fatalf("repair latencies = %v, want 2 entries", tl.RepairLatencies)
	}
	if tl.RepairLatencies[0] != 100 || tl.RepairLatencies[1] != 300 {
		t.Fatalf("repair latencies = %v, want [100 300]", tl.RepairLatencies)
	}
	if q := tl.RepairQuantile(0.99); q != 300 {
		t.Fatalf("p99 = %d, want 300", q)
	}
}

func TestOpenRoundsAndCurve(t *testing.T) {
	tl, err := Merge(dump(-1,
		issue(0, 0, 1, 0, 0, 1),
		complete(500, 2, 1, 0, 0, 1),
		issue(500, 0, 1, 1, 0, 1),     // never completes: wedged round
		complete(1000, 2, 1, 2, 9, 1), // completion whose issue was clipped
	))
	if err != nil {
		t.Fatal(err)
	}
	if tl.OpenRounds() != 1 {
		t.Fatalf("open rounds = %d, want 1", tl.OpenRounds())
	}
	curve := tl.OccupancyCurve(2)
	if len(curve) != 2 {
		t.Fatalf("curve = %v", curve)
	}
	// 3 lanes. First half [0,500): lane0 busy fully, lane1 idle, lane2
	// idle -> 1/3. Second half: lane1's open span busy through End -> 1/3.
	if math.Abs(curve[0]-1.0/3) > 1e-9 || math.Abs(curve[1]-1.0/3) > 1e-9 {
		t.Fatalf("curve = %v, want [1/3 1/3]", curve)
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("Merge() of nothing should error")
	}
	if _, err := Merge(dump(0)); err == nil {
		t.Fatal("Merge of empty dump should error")
	}
}

func TestReportAndRender(t *testing.T) {
	tl, err := Merge(dump(-1,
		issue(0, 0, 1, 0, 0, 4),
		skip(1, 0, 1, 0, 12),
		complete(800, 2, 1, 0, 0, 4),
	))
	if err != nil {
		t.Fatal(err)
	}
	r := tl.Report(4)
	if r.Lanes != 1 || r.IssuedBlocks != 4 || r.SkippedBlocks != 12 {
		t.Fatalf("report = %+v", r)
	}
	if math.Abs(r.SkipRatio-0.75) > 1e-9 {
		t.Fatalf("report skip ratio = %v, want 0.75", r.SkipRatio)
	}
	if len(r.OccupancyCurve) != 4 {
		t.Fatalf("curve = %v", r.OccupancyCurve)
	}
	var buf bytes.Buffer
	tl.RenderText(&buf, 40)
	out := buf.String()
	for _, want := range []string{"occupancy", "skip ratio", "tid   1 slot   0", "occupancy curve"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderText missing %q in:\n%s", want, out)
		}
	}
}
