package timeline

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Report is the serializable summary tracetool emits: the derived
// metrics plus the lanes themselves for downstream plotting.
type Report struct {
	DurationNs    int64   `json:"duration_ns"`
	Workers       int     `json:"workers"`
	Lanes         int     `json:"lanes"`
	Occupancy     float64 `json:"occupancy"`
	SkipRatio     float64 `json:"skip_ratio"`
	DenseFactor   float64 `json:"dense_factor"`
	IssuedBlocks  int64   `json:"issued_blocks"`
	SkippedBlocks int64   `json:"skipped_blocks"`
	Retransmits   int     `json:"retransmits"`
	OpenRounds    int     `json:"open_rounds"`
	RepairP50Ns   int64   `json:"repair_p50_ns,omitempty"`
	RepairP95Ns   int64   `json:"repair_p95_ns,omitempty"`
	RepairP99Ns   int64   `json:"repair_p99_ns,omitempty"`
	// OccupancyCurve is the fraction of lanes busy per time bucket.
	OccupancyCurve []float64 `json:"occupancy_curve,omitempty"`
	// Tags carries the merged emitter metadata (e.g. expected_skip_ratio).
	Tags  map[string]string `json:"tags,omitempty"`
	Slots []*Lane           `json:"slots"`
}

// Report derives the summary document, with an occupancy curve of n
// buckets (0 to omit the curve).
func (t *Timeline) Report(curveBuckets int) Report {
	r := Report{
		DurationNs:    t.Duration(),
		Lanes:         len(t.Lanes),
		Occupancy:     t.Occupancy(),
		SkipRatio:     t.SkipRatio(),
		DenseFactor:   t.DenseFactor(),
		IssuedBlocks:  t.IssuedBlocks,
		SkippedBlocks: t.SkippedBlocks,
		Retransmits:   t.Retransmits,
		OpenRounds:    t.OpenRounds(),
		Tags:          t.Tags,
		Slots:         t.Lanes,
	}
	for _, n := range t.Nodes {
		if n >= 0 {
			r.Workers++ // node IDs < 0 are "unknown"; aggregators are counted too
		}
	}
	if len(t.RepairLatencies) > 0 {
		r.RepairP50Ns = t.RepairQuantile(0.50)
		r.RepairP95Ns = t.RepairQuantile(0.95)
		r.RepairP99Ns = t.RepairQuantile(0.99)
	}
	if curveBuckets > 0 {
		r.OccupancyCurve = t.OccupancyCurve(curveBuckets)
	}
	return r
}

// RenderText writes the human-readable timeline report: a summary header,
// one Gantt row per slot lane (each cell shades how much of that time
// bucket the lane spent busy), and the occupancy curve.
func (t *Timeline) RenderText(w io.Writer, width int) {
	if width <= 0 {
		width = 60
	}
	fmt.Fprintf(w, "timeline: %v observed, %d lanes, %d nodes\n",
		time.Duration(t.Duration()).Round(time.Microsecond), len(t.Lanes), len(t.Nodes))
	fmt.Fprintf(w, "  occupancy %5.1f%%   skip ratio %6.4f   dense factor %.2fx   blocks issued %d skipped %d\n",
		t.Occupancy()*100, t.SkipRatio(), t.DenseFactor(), t.IssuedBlocks, t.SkippedBlocks)
	if t.Retransmits > 0 {
		fmt.Fprintf(w, "  retransmits %d   repair p50 %v p95 %v p99 %v\n", t.Retransmits,
			time.Duration(t.RepairQuantile(0.50)).Round(time.Microsecond),
			time.Duration(t.RepairQuantile(0.95)).Round(time.Microsecond),
			time.Duration(t.RepairQuantile(0.99)).Round(time.Microsecond))
	}
	if n := t.OpenRounds(); n > 0 {
		fmt.Fprintf(w, "  OPEN ROUNDS: %d (rounds issued but never completed in the observed window)\n", n)
	}
	if t.Duration() <= 0 {
		return
	}

	shades := []rune(" .:-=#")
	for _, l := range t.Lanes {
		row := make([]float64, width)
		wd := float64(t.Duration()) / float64(width)
		for _, s := range l.Spans {
			end := s.End
			if end < 0 {
				end = t.End
			}
			lo, hi := float64(s.Start-t.Start), float64(end-t.Start)
			for b := int(lo / wd); b < width && float64(b)*wd < hi; b++ {
				ov := minF(hi, float64(b+1)*wd) - maxF(lo, float64(b)*wd)
				if ov > 0 {
					row[b] += ov / wd
				}
			}
		}
		var sb strings.Builder
		for _, f := range row {
			if f > 1 {
				f = 1
			}
			sb.WriteRune(shades[int(f*float64(len(shades)-1)+0.5)])
		}
		busyPct := 0.0
		if t.Duration() > 0 {
			busyPct = 100 * float64(l.Busy) / float64(t.Duration())
		}
		fmt.Fprintf(w, "  tid %3d slot %3d |%s| %5.1f%% busy, %3d rounds, %d retx\n",
			l.Tid, l.Slot, sb.String(), busyPct, len(l.Spans), l.Retransmits)
	}

	curve := t.OccupancyCurve(width)
	var sb strings.Builder
	for _, f := range curve {
		sb.WriteRune(shades[int(f*float64(len(shades)-1)+0.5)])
	}
	fmt.Fprintf(w, "  occupancy curve |%s|\n", sb.String())
}
