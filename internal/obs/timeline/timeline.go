// Package timeline reconstructs cross-node pipeline timelines from
// flight-recorder dumps: the analysis layer that turns raw slot events
// into the paper's Fig 6-style readouts — per-slot lifelines, slot
// occupancy over time, look-ahead skip ratio, effective goodput vs a
// dense baseline, and retransmit-repair latencies.
//
// Inputs are obs.FlightDump documents, one per process (a worker, an
// aggregator, or a whole in-process cluster). Clocks are aligned via
// op-begin anchors, never wall clocks: each dump's records are
// timestamped relative to its own recorder origin, and for every tensor
// ID the earliest record in each dump marks (approximately) the same
// protocol instant — the collective's kickoff. Merge shifts each dump by
// the median per-tensor anchor delta against a reference dump, which is
// robust to one tensor's anchor being clipped out of a ring.
package timeline

import (
	"fmt"
	"sort"

	"omnireduce/internal/obs"
)

// Span is one busy interval on a slot lane: a protocol round from its
// first witnessed worker issue to the aggregator's round completion.
// Times are aligned nanoseconds relative to the merged timeline origin.
type Span struct {
	Round uint8 `json:"round"`
	// Start is the earliest EvSlotIssue of the round (equal to End for a
	// completion whose issues were overwritten in the ring).
	Start int64 `json:"start"`
	// End is the aggregator's EvSlotComplete for the round; -1 while the
	// round is still open (a stalled or clipped round).
	End int64 `json:"end"`
	// Issues counts the worker packets witnessed for the round.
	Issues int `json:"issues"`
	// Blocks is the data blocks carried by those packets.
	Blocks int64 `json:"blocks"`
}

// Lane is the lifeline of one (tensor, slot) stream across the cluster.
type Lane struct {
	Tid  uint32 `json:"tid"`
	Slot uint16 `json:"slot"`
	// Spans are the lane's rounds in completion order.
	Spans []Span `json:"spans"`
	// Busy is the summed duration of closed spans.
	Busy int64 `json:"busy"`
	// Issued / Skipped are the lane's data-block totals: transmitted
	// blocks vs zero blocks the look-ahead passed over.
	Issued  int64 `json:"issued"`
	Skipped int64 `json:"skipped"`
	// Retransmits counts timer-driven repairs on the lane.
	Retransmits int `json:"retransmits"`

	// open tracks the in-flight spans by round during reconstruction.
	open map[uint8]int
	// pendingRepair is the earliest unrepaired retransmit timestamp.
	pendingRepair int64
	hasPending    bool
}

// Timeline is the merged, clock-aligned view of one run.
type Timeline struct {
	// Start / End bound the observed records (aligned nanoseconds).
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Lanes are the reconstructed slot lifelines, ordered (tid, slot).
	Lanes []*Lane `json:"lanes"`
	// Nodes lists the distinct node IDs observed.
	Nodes []int32 `json:"nodes"`
	// IssuedBlocks / SkippedBlocks aggregate the lanes.
	IssuedBlocks  int64 `json:"issued_blocks"`
	SkippedBlocks int64 `json:"skipped_blocks"`
	// Retransmits is the cluster-wide repair count; RepairLatencies are
	// the sorted retransmit→round-completion latencies (ns).
	Retransmits     int     `json:"retransmits"`
	RepairLatencies []int64 `json:"repair_latencies,omitempty"`
	// Tags merges the emitter metadata of every input dump.
	Tags map[string]string `json:"tags,omitempty"`
}

// Merge builds the timeline from one or more dumps. Dump order is
// irrelevant; the dump with the most records anchors the merged clock.
func Merge(dumps ...*obs.FlightDump) (*Timeline, error) {
	var nonEmpty []*obs.FlightDump
	for _, d := range dumps {
		if d != nil && len(d.Records) > 0 {
			nonEmpty = append(nonEmpty, d)
		}
	}
	if len(nonEmpty) == 0 {
		return nil, fmt.Errorf("timeline: no records in %d dump(s)", len(dumps))
	}

	ref := nonEmpty[0]
	for _, d := range nonEmpty[1:] {
		if len(d.Records) > len(ref.Records) {
			ref = d
		}
	}
	refAnchor := anchors(ref)

	type rec struct{ obs.Record }
	var all []rec
	tags := map[string]string{}
	nodeSet := map[int32]struct{}{}
	for _, d := range nonEmpty {
		off := offsetAgainst(refAnchor, anchors(d))
		for _, r := range d.Records {
			r.TS += off
			all = append(all, rec{r})
			nodeSet[r.Node] = struct{}{}
		}
		for k, v := range d.Tags {
			tags[k] = v
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TS < all[j].TS })

	t := &Timeline{Start: all[0].TS, End: all[len(all)-1].TS}
	if len(tags) > 0 {
		t.Tags = tags
	}
	for n := range nodeSet {
		t.Nodes = append(t.Nodes, n)
	}
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i] < t.Nodes[j] })

	lanes := map[[2]uint32]*Lane{}
	lane := func(tid uint32, slot uint16) *Lane {
		k := [2]uint32{tid, uint32(slot)}
		l := lanes[k]
		if l == nil {
			l = &Lane{Tid: tid, Slot: slot, open: map[uint8]int{}}
			lanes[k] = l
			t.Lanes = append(t.Lanes, l)
		}
		return l
	}

	for _, r := range all {
		switch r.Ev {
		case obs.EvSlotIssue:
			l := lane(r.Tid, r.Slot)
			if i, ok := l.open[r.Round]; ok {
				l.Spans[i].Issues++
				l.Spans[i].Blocks += r.Arg
			} else {
				l.open[r.Round] = len(l.Spans)
				l.Spans = append(l.Spans, Span{Round: r.Round, Start: r.TS, End: -1, Issues: 1, Blocks: r.Arg})
			}
			l.Issued += r.Arg
		case obs.EvSlotComplete:
			l := lane(r.Tid, r.Slot)
			if i, ok := l.open[r.Round]; ok {
				l.Spans[i].End = r.TS
				l.Busy += r.TS - l.Spans[i].Start
				delete(l.open, r.Round)
			} else {
				// Round's issues were clipped out of the ring: record the
				// completion as an instantaneous span so the round count
				// stays honest.
				l.Spans = append(l.Spans, Span{Round: r.Round, Start: r.TS, End: r.TS})
			}
			if l.hasPending {
				t.RepairLatencies = append(t.RepairLatencies, r.TS-l.pendingRepair)
				l.hasPending = false
			}
		case obs.EvLookaheadSkip:
			l := lane(r.Tid, r.Slot)
			l.Skipped += r.Arg
		case obs.EvRetransmit:
			l := lane(r.Tid, r.Slot)
			l.Retransmits++
			t.Retransmits++
			if !l.hasPending {
				l.pendingRepair, l.hasPending = r.TS, true
			}
		}
	}

	sort.Slice(t.Lanes, func(i, j int) bool {
		if t.Lanes[i].Tid != t.Lanes[j].Tid {
			return t.Lanes[i].Tid < t.Lanes[j].Tid
		}
		return t.Lanes[i].Slot < t.Lanes[j].Slot
	})
	for _, l := range t.Lanes {
		l.open = nil
		t.IssuedBlocks += l.Issued
		t.SkippedBlocks += l.Skipped
	}
	sort.Slice(t.RepairLatencies, func(i, j int) bool { return t.RepairLatencies[i] < t.RepairLatencies[j] })
	return t, nil
}

// anchors returns a dump's per-tensor clock anchors: the earliest record
// timestamp of each tensor ID, approximating the collective's kickoff as
// observed by that process.
func anchors(d *obs.FlightDump) map[uint32]int64 {
	a := map[uint32]int64{}
	for _, r := range d.Records {
		if ts, ok := a[r.Tid]; !ok || r.TS < ts {
			a[r.Tid] = r.TS
		}
	}
	return a
}

// offsetAgainst computes the shift that aligns a dump onto the reference
// clock: the median, over tensors both dumps observed, of the anchor
// deltas. With no shared tensor the dumps are aligned at their global
// minima (best effort).
func offsetAgainst(ref, d map[uint32]int64) int64 {
	var deltas []int64
	for tid, ts := range d {
		if rts, ok := ref[tid]; ok {
			deltas = append(deltas, rts-ts)
		}
	}
	if len(deltas) == 0 {
		refMin, dMin := mapMin(ref), mapMin(d)
		return refMin - dMin
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i] < deltas[j] })
	return deltas[len(deltas)/2]
}

func mapMin(m map[uint32]int64) int64 {
	first := true
	var min int64
	for _, v := range m {
		if first || v < min {
			min, first = v, false
		}
	}
	return min
}

// Duration is the observed timeline length in nanoseconds.
func (t *Timeline) Duration() int64 { return t.End - t.Start }

// Occupancy is the mean fraction of the run each lane spent with a round
// in flight — the paper's pipeline-saturation measure. 1.0 means every
// slot always had an outstanding round.
func (t *Timeline) Occupancy() float64 {
	d := t.Duration()
	if d <= 0 || len(t.Lanes) == 0 {
		return 0
	}
	var sum float64
	for _, l := range t.Lanes {
		f := float64(l.Busy) / float64(d)
		if f > 1 {
			f = 1
		}
		sum += f
	}
	return sum / float64(len(t.Lanes))
}

// OccupancyCurve buckets the run into n equal windows and returns, for
// each, the fraction of lanes with a round in flight — occupancy over
// time.
func (t *Timeline) OccupancyCurve(n int) []float64 {
	if n <= 0 || t.Duration() <= 0 || len(t.Lanes) == 0 {
		return nil
	}
	w := float64(t.Duration()) / float64(n)
	busy := make([]float64, n)
	for _, l := range t.Lanes {
		for _, s := range l.Spans {
			end := s.End
			if end < 0 {
				end = t.End // open span: busy through the end of the run
			}
			if end <= s.Start {
				continue
			}
			lo := float64(s.Start - t.Start)
			hi := float64(end - t.Start)
			for b := int(lo / w); b < n && float64(b)*w < hi; b++ {
				bLo, bHi := float64(b)*w, float64(b+1)*w
				ov := minF(hi, bHi) - maxF(lo, bLo)
				if ov > 0 {
					busy[b] += ov / w
				}
			}
		}
	}
	for b := range busy {
		busy[b] /= float64(len(t.Lanes))
		if busy[b] > 1 {
			busy[b] = 1
		}
	}
	return busy
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SkipRatio is the fraction of per-worker blocks the look-ahead elided:
// skipped / (skipped + issued). For a tensor of block density d this
// converges to 1-d (bootstrap blocks — the first of each column — are
// always transmitted, a vanishing correction at realistic block counts).
func (t *Timeline) SkipRatio() float64 {
	tot := t.IssuedBlocks + t.SkippedBlocks
	if tot == 0 {
		return 0
	}
	return float64(t.SkippedBlocks) / float64(tot)
}

// DenseFactor is the effective goodput multiplier vs a dense baseline
// that would have transmitted every block: (issued+skipped)/issued.
func (t *Timeline) DenseFactor() float64 {
	if t.IssuedBlocks == 0 {
		return 0
	}
	return float64(t.IssuedBlocks+t.SkippedBlocks) / float64(t.IssuedBlocks)
}

// RepairQuantile returns the q-quantile (0..1) of the retransmit-repair
// latencies — the time from a timer-driven resend to its slot's next
// round completion. Exact (the latencies are held, not bucketed).
func (t *Timeline) RepairQuantile(q float64) int64 {
	n := len(t.RepairLatencies)
	if n == 0 {
		return 0
	}
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return t.RepairLatencies[i]
}

// OpenRounds counts spans still in flight at the end of the observed
// window — a stalled run shows the wedged rounds here.
func (t *Timeline) OpenRounds() int {
	n := 0
	for _, l := range t.Lanes {
		for _, s := range l.Spans {
			if s.End < 0 {
				n++
			}
		}
	}
	return n
}
