package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("packets")
	c.Inc()
	c.Add(4)
	if r.Counter("packets") != c {
		t.Fatal("Counter not idempotent")
	}
	if got := r.Counter("packets").Load(); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := r.Gauge("depth").Load(); got != 5 {
		t.Fatalf("gauge = %d", got)
	}
	if r.Histogram("lat") != r.Histogram("lat") {
		t.Fatal("Histogram not idempotent")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// bucket 0: v == 0; bucket i: [2^(i-1), 2^i)
	h.Observe(0)
	h.Observe(1)    // bucket 1
	h.Observe(2)    // bucket 2
	h.Observe(3)    // bucket 2
	h.Observe(4)    // bucket 3
	h.Observe(1023) // bucket 10
	h.Observe(1024) // bucket 11
	h.Observe(-5)   // clamps to 0, bucket 0
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d", s.Count)
	}
	wantBuckets := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1, 10: 1, 11: 1}
	for i, v := range s.Buckets {
		if v != wantBuckets[i] {
			t.Fatalf("bucket %d = %d, want %d", i, v, wantBuckets[i])
		}
	}
	if s.Sum != 0+1+2+3+4+1023+1024 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if m := s.Mean(); m <= 0 {
		t.Fatalf("mean = %g", m)
	}
	// Quantile returns a bucket upper bound: the p50 of this sample sits
	// in bucket 2 (values 2,3 are the 4th/5th of 8 sorted samples).
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("p50 bound = %d", q)
	}
	if q := s.Quantile(1.0); q < 1024 {
		t.Fatalf("p100 bound = %d", q)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(1<<62 + 1)
	s := h.Snapshot()
	if s.Buckets[HistBuckets-1] != 1 {
		t.Fatal("huge sample must land in the last bucket")
	}
}

func TestSnapshotAndTables(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(100)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "b" || s.Counters[1].Name != "a" {
		t.Fatalf("creation order lost: %+v", s.Counters)
	}
	tables := r.Tables("test ")
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	out := tables[0].String() + tables[1].String()
	for _, want := range []string{"a", "b", "g (gauge)", "h"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables missing %q:\n%s", want, out)
		}
	}
	cs := r.Counters()
	if cs.Get("a") != 1 || cs.Get("b") != 2 || cs.Get("g") != 3 {
		t.Fatal("Counters export mismatch")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("y")
	c.Add(5)
	h.Observe(9)
	r.Reset()
	if c.Load() != 0 {
		t.Fatal("counter not reset")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatal("histogram not reset")
	}
	if r.Counter("x") != c {
		t.Fatal("reset must preserve metric identity")
	}
}

func TestTracerDisabledAndEnabled(t *testing.T) {
	if prev := SetTracer(nil); prev != nil {
		defer SetTracer(prev)
	}
	if Enabled() {
		t.Fatal("tracer must start disabled")
	}
	Emit(EvPacketSent, 1, 100) // must be a no-op

	ct := NewCountingTracer()
	SetTracer(ct)
	defer SetTracer(nil)
	if !Enabled() {
		t.Fatal("tracer not enabled")
	}
	Emit(EvPacketSent, 1, 100)
	Emit(EvPacketSent, 2, 50)
	Emit(EvRetransmit, 1, 1)
	if ct.Count(EvPacketSent) != 2 || ct.ArgSum(EvPacketSent) != 150 {
		t.Fatalf("packet_sent count=%d args=%d", ct.Count(EvPacketSent), ct.ArgSum(EvPacketSent))
	}
	cs := ct.Counters()
	if cs.Get("trace_packet_sent") != 2 || cs.Get("trace_retransmit") != 1 {
		t.Fatalf("trace counters: %v", cs.Snapshot())
	}
	if cs.Get("trace_op_begin") != 0 {
		t.Fatal("zero events must not be exported")
	}
}

func TestRingTracer(t *testing.T) {
	r := NewRingTracer(3)
	for i := int64(1); i <= 5; i++ {
		r.Trace(EvPacketSent, uint32(i), i*10)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring kept %d events", len(evs))
	}
	if evs[0].Arg != 30 || evs[2].Arg != 50 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
}

func TestMultiTracer(t *testing.T) {
	a, b := NewCountingTracer(), NewCountingTracer()
	m := MultiTracer{a, b}
	m.Trace(EvOpBegin, 1, 64)
	if a.Count(EvOpBegin) != 1 || b.Count(EvOpBegin) != 1 {
		t.Fatal("multi tracer did not fan out")
	}
}

func TestEventString(t *testing.T) {
	seen := map[string]bool{}
	for ev := Event(0); ev < NumEvents; ev++ {
		s := ev.String()
		if s == "" || s == "unknown" {
			t.Fatalf("event %d has no name", ev)
		}
		if seen[s] {
			t.Fatalf("duplicate event name %q", s)
		}
		seen[s] = true
	}
	if Event(200).String() != "unknown" {
		t.Fatal("out-of-range event must be unknown")
	}
}

func TestLeakAudit(t *testing.T) {
	var gets, puts atomic.Int64
	RegisterPool("test_pool", func() (int64, int64) { return gets.Load(), puts.Load() })
	// Re-registering replaces, not duplicates.
	RegisterPool("test_pool", func() (int64, int64) { return gets.Load(), puts.Load() })

	a := StartLeakAudit()
	gets.Add(3)
	puts.Add(2)
	leaks := a.Leaks()
	found := false
	for _, l := range leaks {
		if l.Name == "test_pool" {
			found = true
			if l.Outstanding() != 1 {
				t.Fatalf("outstanding = %d", l.Outstanding())
			}
		}
	}
	if !found {
		t.Fatalf("leak not reported: %+v", leaks)
	}
	if err := LeaksErr(leaks); err == nil || !strings.Contains(err.Error(), "test_pool") {
		t.Fatalf("LeaksErr = %v", err)
	}

	// Release in the background; Settle must converge.
	go func() { time.Sleep(5 * time.Millisecond); puts.Add(1) }()
	if leaks := a.Settle(2 * time.Second); len(leaksOf(leaks, "test_pool")) != 0 {
		t.Fatalf("settle did not converge: %+v", leaks)
	}
	if err := LeaksErr(nil); err != nil {
		t.Fatalf("empty LeaksErr = %v", err)
	}

	// A negative delta (release of a pre-audit acquisition) is not a leak.
	b := StartLeakAudit()
	puts.Add(1) // puts now exceed gets
	if leaks := leaksOf(b.Leaks(), "test_pool"); len(leaks) != 0 {
		t.Fatalf("negative delta reported as leak: %+v", leaks)
	}
	if !strings.Contains(PoolTable().String(), "test_pool") {
		t.Fatal("pool table missing test_pool")
	}
}

func leaksOf(leaks []PoolBalance, name string) []PoolBalance {
	var out []PoolBalance
	for _, l := range leaks {
		if l.Name == name {
			out = append(out, l)
		}
	}
	return out
}

func TestWriteJSONAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("json_c").Add(9)
	r.Histogram("json_h").Observe(4)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics RegistrySnapshot `json:"metrics"`
		Pools   []PoolBalance    `json:"pools"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics.Counters) != 1 || doc.Metrics.Counters[0].Value != 9 {
		t.Fatalf("JSON counters: %+v", doc.Metrics.Counters)
	}
	if len(doc.Metrics.Hists) != 1 || doc.Metrics.Hists[0].Count != 1 {
		t.Fatalf("JSON hists: %+v", doc.Metrics.Hists)
	}

	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "json_c") {
		t.Fatalf("handler: code %d body %s", rec.Code, rec.Body.String())
	}

	mux := DebugMux(r)
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec2.Code != 200 || !strings.Contains(rec2.Body.String(), "omnireduce") {
		t.Fatal("expvar endpoint missing omnireduce var")
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("sharedh")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Histogram("sharedh").Snapshot().Count; got != 8000 {
		t.Fatalf("hist count = %d", got)
	}
}

// TestObsHotPathZeroAllocs pins the always-on metric updates and the
// disabled trace path at zero allocations per operation — the
// observability layer's hot-path budget.
func TestObsHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	r := NewRegistry()
	c := r.Counter("hot")
	g := r.Gauge("hotg")
	h := r.Histogram("hoth")
	if prev := SetTracer(nil); prev != nil {
		defer SetTracer(prev)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(4096)
		Emit(EvPacketSent, 7, 4096) // disabled path
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op", n)
	}
	// Counting tracer installed: still allocation-free.
	ct := NewCountingTracer()
	SetTracer(ct)
	defer SetTracer(nil)
	if n := testing.AllocsPerRun(1000, func() {
		Emit(EvPacketSent, 7, 4096)
	}); n != 0 {
		t.Fatalf("counting tracer allocates %v per op", n)
	}
}
