// Package obs is the live datapath's observability layer: a process-wide
// registry of low-overhead metrics (counters, gauges, log2-bucket
// histograms), opt-in per-collective trace events behind a nil-checked
// Tracer, and a pool-leak audit that reconciles buffer-pool Get/Put
// balances across a run.
//
// Design constraints, in priority order:
//
//  1. The always-on metrics must cost nothing but a handful of atomic
//     adds on the hot path — no allocation, no locking, no formatting.
//     Hot paths capture *Counter/*Histogram pointers once (package init)
//     and update them directly; the registry's map and mutex are touched
//     only at creation and snapshot time.
//  2. The disabled trace path must cost one branch (an atomic pointer
//     load and nil check in Emit). Tracing is for debugging and tests;
//     production runs leave it nil.
//  3. Reading the metrics must never perturb them: snapshots are atomic
//     loads, rendered through the internal/metrics table toolkit the
//     experiment harness already uses.
//
// The paper's evaluation (§5) leans on exactly this kind of cheap online
// accounting — per-block and per-slot counters on the datapath — and the
// PR-3 pooled buffer lifecycle makes Get/Put balance a correctness
// invariant this package makes observable (see audit.go).
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"omnireduce/internal/metrics"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a point-in-time value (queue depth, in-flight operations).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of log2 histogram buckets. Bucket i counts
// observations v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0,
// bucket i (i > 0) holds v in [2^(i-1), 2^i). The last bucket absorbs
// everything larger. 48 buckets cover durations beyond 3 days in
// nanoseconds and sizes beyond 100 TB in bytes.
const HistBuckets = 48

// Histogram is a fixed log2-bucket histogram. Observe is wait-free: one
// atomic add per bucket/count/sum, no allocation ever.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is an atomic-read copy of a histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [HistBuckets]int64
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the arithmetic mean of the observed samples (0 if empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) from
// the bucket boundaries: the top edge of the bucket containing the
// q*Count-th sample. Log2 buckets bound the answer within 2x.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var seen int64
	for i, b := range s.Buckets {
		seen += b
		if seen > target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<uint(HistBuckets) - 1
}

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<uint(i) - 1
}

// Registry is a named collection of metrics. Metric creation
// (get-or-create by name) takes a mutex; updates through the returned
// pointers are lock-free. The zero value is not usable; call NewRegistry
// or use Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// creation order per kind, for stable rendering
	counterOrder []string
	gaugeOrder   []string
	histOrder    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the datapath publishes into.
var Default = NewRegistry()

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.counterOrder = append(r.counterOrder, name)
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.gaugeOrder = append(r.gaugeOrder, name)
	}
	return g
}

// Histogram returns the named histogram, creating it empty on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
		r.histOrder = append(r.histOrder, name)
	}
	return h
}

// Reset zeroes every metric in place. Metric identity is preserved, so
// pointers captured by hot paths keep working; use between benchmark or
// test sections that assert on deltas.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// NamedValue is one counter or gauge in a snapshot.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// NamedHist is one histogram in a snapshot; Buckets holds only the
// occupied prefix (trailing zero buckets are trimmed).
type NamedHist struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Mean    float64 `json:"mean"`
	P50     int64   `json:"p50"`
	P95     int64   `json:"p95"`
	P99     int64   `json:"p99"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// RegistrySnapshot is a consistent-enough copy of a registry: each value
// is read atomically; the set of metrics is captured under the registry
// lock.
type RegistrySnapshot struct {
	Counters []NamedValue `json:"counters"`
	Gauges   []NamedValue `json:"gauges"`
	Hists    []NamedHist  `json:"histograms"`
}

// Snapshot captures every metric in creation order.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	counterNames := append([]string(nil), r.counterOrder...)
	gaugeNames := append([]string(nil), r.gaugeOrder...)
	histNames := append([]string(nil), r.histOrder...)
	counters := make([]*Counter, len(counterNames))
	for i, n := range counterNames {
		counters[i] = r.counters[n]
	}
	gauges := make([]*Gauge, len(gaugeNames))
	for i, n := range gaugeNames {
		gauges[i] = r.gauges[n]
	}
	hists := make([]*Histogram, len(histNames))
	for i, n := range histNames {
		hists[i] = r.hists[n]
	}
	r.mu.Unlock()

	var s RegistrySnapshot
	for i, n := range counterNames {
		s.Counters = append(s.Counters, NamedValue{Name: n, Value: counters[i].Load()})
	}
	for i, n := range gaugeNames {
		s.Gauges = append(s.Gauges, NamedValue{Name: n, Value: gauges[i].Load()})
	}
	for i, n := range histNames {
		hs := hists[i].Snapshot()
		nh := NamedHist{
			Name:  n,
			Count: hs.Count,
			Sum:   hs.Sum,
			Mean:  hs.Mean(),
			P50:   hs.Quantile(0.50),
			P95:   hs.Quantile(0.95),
			P99:   hs.Quantile(0.99),
		}
		last := -1
		for b, v := range hs.Buckets {
			if v != 0 {
				last = b
			}
		}
		if last >= 0 {
			nh.Buckets = append([]int64(nil), hs.Buckets[:last+1]...)
		}
		s.Hists = append(s.Hists, nh)
	}
	return s
}

// Counters exports the registry's counters (and gauges) as a
// metrics.Counters set, merging into the harness's existing reporting.
func (r *Registry) Counters() *metrics.Counters {
	snap := r.Snapshot()
	c := metrics.NewCounters()
	for _, nv := range snap.Counters {
		c.Add(nv.Name, nv.Value)
	}
	for _, nv := range snap.Gauges {
		c.Add(nv.Name, nv.Value)
	}
	return c
}

// Tables renders the registry as metrics tables: one for counters and
// gauges, one summary row per histogram.
func (r *Registry) Tables(titlePrefix string) []*metrics.Table {
	snap := r.Snapshot()
	var out []*metrics.Table
	if len(snap.Counters)+len(snap.Gauges) > 0 {
		t := metrics.NewTable(titlePrefix+"counters", "metric", "value")
		for _, nv := range snap.Counters {
			t.AddRow(nv.Name, nv.Value)
		}
		for _, nv := range snap.Gauges {
			t.AddRow(nv.Name+" (gauge)", nv.Value)
		}
		out = append(out, t)
	}
	if len(snap.Hists) > 0 {
		t := metrics.NewTable(titlePrefix+"histograms", "metric", "count", "mean", "p50<=", "p95<=", "p99<=")
		for _, h := range snap.Hists {
			t.AddRow(h.Name, h.Count, fmt.Sprintf("%.4g", h.Mean), h.P50, h.P95, h.P99)
		}
		out = append(out, t)
	}
	return out
}

// SortedCounterNames returns the registry's counter names sorted
// lexicographically (test helper).
func (r *Registry) SortedCounterNames() []string {
	r.mu.Lock()
	names := append([]string(nil), r.counterOrder...)
	r.mu.Unlock()
	sort.Strings(names)
	return names
}
