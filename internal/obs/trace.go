package obs

import (
	"sync"
	"sync/atomic"

	"omnireduce/internal/metrics"
)

// Event identifies one kind of datapath trace event. Events carry the
// tensor ID of the collective they belong to (0 when not applicable) and
// one event-specific argument (a byte count, a latency, a block count).
type Event uint8

const (
	// EvOpBegin fires when a worker starts a collective; arg is the
	// tensor element count.
	EvOpBegin Event = iota
	// EvOpEnd fires when a collective completes; arg is its latency in
	// nanoseconds.
	EvOpEnd
	// EvBlockSent fires when a worker's machine transmits data blocks;
	// arg is the block-count delta.
	EvBlockSent
	// EvBlockRecvd fires when an aggregator machine aggregates inbound
	// blocks; arg is the block-count delta.
	EvBlockRecvd
	// EvPacketSent fires per transmitted packet; arg is the encoded size
	// in bytes.
	EvPacketSent
	// EvPacketRecvd fires per received packet; arg is the encoded size in
	// bytes.
	EvPacketRecvd
	// EvRetransmit fires per timer-driven resend (Algorithm 2 repair
	// traffic).
	EvRetransmit
	// EvStaleDrop fires when a worker's receive pump drops a message for
	// a finished or unknown collective.
	EvStaleDrop
	// EvOverflowDrop fires when a worker's receive pump drops a message
	// because the owning operation's queue is full (unreliable mode; the
	// retransmission protocol recovers).
	EvOverflowDrop
	// EvPoolGet / EvPoolPut fire on transport buffer-pool traffic; arg is
	// the buffer length.
	EvPoolGet
	EvPoolPut
	// EvDecodeStateGet / EvDecodeStatePut fire on decode-state pool
	// borrow/return.
	EvDecodeStateGet
	EvDecodeStatePut

	// The slot-pipeline events below are emitted by the protocol machines
	// themselves (internal/protocol), so the live cluster and the
	// discrete-event simulator produce identical streams for identical
	// runs — the property the drift tier asserts. They carry full
	// node/slot/round tags via EmitSlot.

	// EvSlotIssue fires when a worker machine transmits a fresh (non
	// retransmitted) data packet into a stream slot; arg is the number of
	// data blocks in the packet.
	EvSlotIssue
	// EvSlotComplete fires when an aggregator machine concludes a round
	// on a slot and multicasts its result; arg is the number of result
	// blocks.
	EvSlotComplete
	// EvLookaheadSkip fires when a worker machine's next-non-zero
	// look-ahead advances past zero blocks; arg is the number of blocks
	// skipped (each zero block is skipped exactly once per worker).
	EvLookaheadSkip

	// EvTxBatch / EvRxBatch fire once per batched transport syscall
	// (sendmmsg/recvmmsg); arg is the number of datagrams the call moved.
	// Dividing the packet event rate by the batch event rate gives the
	// live amortization factor the batching tentpole is gated on.
	EvTxBatch
	EvRxBatch

	// EvMachinePoolGet / EvMachinePoolPut fire when a protocol machine's
	// pooled state (worker machines, aggregator slots, sparse slots) is
	// acquired or released; appended after the batch events so earlier
	// serialized traces keep their numeric values.
	EvMachinePoolGet
	EvMachinePoolPut

	// EvViewChange fires when a node adopts a new membership view (arg:
	// the new epoch); EvCheckpoint when an aggregator streams a slot-state
	// checkpoint to a standby (arg: encoded bytes). Driver-side events, so
	// failover shows up in flight-recorder dumps and timelines.
	EvViewChange
	EvCheckpoint

	// NumEvents is the number of event kinds (array sizing).
	NumEvents
)

var eventNames = [NumEvents]string{
	EvOpBegin:        "op_begin",
	EvOpEnd:          "op_end",
	EvBlockSent:      "block_sent",
	EvBlockRecvd:     "block_recvd",
	EvPacketSent:     "packet_sent",
	EvPacketRecvd:    "packet_recvd",
	EvRetransmit:     "retransmit",
	EvStaleDrop:      "stale_drop",
	EvOverflowDrop:   "overflow_drop",
	EvPoolGet:        "pool_get",
	EvPoolPut:        "pool_put",
	EvDecodeStateGet: "decode_state_get",
	EvDecodeStatePut: "decode_state_put",
	EvSlotIssue:      "slot_issue",
	EvSlotComplete:   "slot_complete",
	EvLookaheadSkip:  "lookahead_skip",
	EvTxBatch:        "tx_batch",
	EvRxBatch:        "rx_batch",
	EvMachinePoolGet: "machine_pool_get",
	EvMachinePoolPut: "machine_pool_put",
	EvViewChange:     "view_change",
	EvCheckpoint:     "checkpoint",
}

// MachineEvents lists the event kinds emitted by the protocol machines
// themselves (as opposed to by a substrate driver). These are the kinds
// for which live-vs-simulator event streams must be identical, since the
// machines are the single shared implementation.
var MachineEvents = [...]Event{EvSlotIssue, EvSlotComplete, EvLookaheadSkip, EvRetransmit}

// String returns the event's snake_case name.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "unknown"
}

// Tracer receives datapath trace events. Implementations must be safe
// for concurrent use and must not block: Trace is called from receive
// pumps and per-operation goroutines. The tid is the collective's tensor
// ID (0 when the event is not tied to one).
type Tracer interface {
	Trace(ev Event, tid uint32, arg int64)
}

// SlotTracer is the full-fidelity tracer interface: events tagged with
// the emitting node, the stream slot, and the protocol round, which is
// what the flight recorder and the timeline analyzer consume. Tracers
// that do not implement it receive slot events through plain Trace with
// the extra tags dropped.
type SlotTracer interface {
	Tracer
	TraceSlot(ev Event, node int32, tid uint32, slot uint16, round uint8, arg int64)
}

// tracerBox wraps the interface so an atomic.Pointer can hold it. The
// SlotTracer assertion happens once at install time, keeping EmitSlot's
// hot path free of interface type switches.
type tracerBox struct {
	t  Tracer
	st SlotTracer // non-nil when t implements SlotTracer
}

var activeTracer atomic.Pointer[tracerBox]

// SetTracer installs t as the process-wide tracer; nil disables tracing.
// The previous tracer (nil if none) is returned so callers can restore
// it.
func SetTracer(t Tracer) Tracer {
	var prev Tracer
	var next *tracerBox
	if t != nil {
		next = &tracerBox{t: t}
		if st, ok := t.(SlotTracer); ok {
			next.st = st
		}
	}
	if old := activeTracer.Swap(next); old != nil {
		prev = old.t
	}
	return prev
}

// Enabled reports whether a tracer is installed. Call sites that must
// compute an event argument (a stats delta, a decode) guard the
// computation with Enabled; plain Emit calls need no guard.
func Enabled() bool { return activeTracer.Load() != nil }

// Emit delivers one event to the installed tracer. With no tracer the
// cost is one atomic load and one branch — the disabled-path budget the
// datapath is designed around.
func Emit(ev Event, tid uint32, arg int64) {
	if b := activeTracer.Load(); b != nil {
		b.t.Trace(ev, tid, arg)
	}
}

// EmitSlot delivers one fully tagged slot-pipeline event. Tracers that
// implement SlotTracer receive every tag; plain tracers receive the event
// through Trace. The disabled path is identical to Emit's: one atomic
// load and one branch, so the protocol machines can call it
// unconditionally without perturbing either substrate.
func EmitSlot(ev Event, node int32, tid uint32, slot uint16, round uint8, arg int64) {
	b := activeTracer.Load()
	if b == nil {
		return
	}
	if b.st != nil {
		b.st.TraceSlot(ev, node, tid, slot, round, arg)
		return
	}
	b.t.Trace(ev, tid, arg)
}

// CountingTracer tallies events per kind: the cheapest useful tracer,
// and the one tests assert against. Counting is wait-free.
type CountingTracer struct {
	counts [NumEvents]atomic.Int64
	args   [NumEvents]atomic.Int64
}

// NewCountingTracer returns a zeroed counting tracer.
func NewCountingTracer() *CountingTracer { return &CountingTracer{} }

// Trace implements Tracer.
func (c *CountingTracer) Trace(ev Event, _ uint32, arg int64) {
	if ev >= NumEvents {
		return
	}
	c.counts[ev].Add(1)
	c.args[ev].Add(arg)
}

// Count returns how many events of kind ev were traced.
func (c *CountingTracer) Count(ev Event) int64 {
	if ev >= NumEvents {
		return 0
	}
	return c.counts[ev].Load()
}

// ArgSum returns the sum of the args of kind ev (total bytes sent for
// EvPacketSent, total blocks for EvBlockSent, ...).
func (c *CountingTracer) ArgSum(ev Event) int64 {
	if ev >= NumEvents {
		return 0
	}
	return c.args[ev].Load()
}

// Counters exports the non-zero tallies as a metrics counter set.
func (c *CountingTracer) Counters() *metrics.Counters {
	out := metrics.NewCounters()
	for ev := Event(0); ev < NumEvents; ev++ {
		if n := c.counts[ev].Load(); n != 0 {
			out.Add("trace_"+ev.String(), n)
		}
	}
	return out
}

// TraceEvent is one recorded event in a RingTracer.
type TraceEvent struct {
	Ev  Event
	Tid uint32
	Arg int64
}

// RingTracer keeps the last N events in a ring: the flight recorder for
// debugging a wedged collective. It allocates only at construction.
type RingTracer struct {
	mu      sync.Mutex
	buf     []TraceEvent
	next    int
	wrapped bool
}

// NewRingTracer returns a tracer retaining the last n events (n >= 1).
func NewRingTracer(n int) *RingTracer {
	if n < 1 {
		n = 1
	}
	return &RingTracer{buf: make([]TraceEvent, n)}
}

// Trace implements Tracer.
func (r *RingTracer) Trace(ev Event, tid uint32, arg int64) {
	r.mu.Lock()
	r.buf[r.next] = TraceEvent{Ev: ev, Tid: tid, Arg: arg}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (r *RingTracer) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]TraceEvent(nil), r.buf[:r.next]...)
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// MultiTracer fans events out to several tracers (e.g. counting + ring).
type MultiTracer []Tracer

// Trace implements Tracer.
func (m MultiTracer) Trace(ev Event, tid uint32, arg int64) {
	for _, t := range m {
		t.Trace(ev, tid, arg)
	}
}

// TraceSlot implements SlotTracer: children that understand slot tags get
// them; plain tracers get the untagged event.
func (m MultiTracer) TraceSlot(ev Event, node int32, tid uint32, slot uint16, round uint8, arg int64) {
	for _, t := range m {
		if st, ok := t.(SlotTracer); ok {
			st.TraceSlot(ev, node, tid, slot, round, arg)
		} else {
			t.Trace(ev, tid, arg)
		}
	}
}
