package obs

import (
	"sort"
	"strings"

	"omnireduce/internal/metrics"
)

// tenantMetricPrefix namespaces the per-tenant metrics the aggregator's
// job registry publishes: "tenant:<name>:<metric>". Keeping the
// convention here lets reporting tools group them without knowing the
// registry.
const tenantMetricPrefix = "tenant:"

// TenantTable regroups the registry's per-tenant metrics
// ("tenant:<name>:<metric>") into one table row per tenant, one column
// per metric, sorted by tenant name. Returns nil when no tenant metrics
// exist, so single-tenant reports stay unchanged.
func (r *Registry) TenantTable(titlePrefix string) *metrics.Table {
	snap := r.Snapshot()
	byTenant := make(map[string]map[string]int64)
	cols := make(map[string]bool)
	add := func(nv NamedValue) {
		rest, ok := strings.CutPrefix(nv.Name, tenantMetricPrefix)
		if !ok {
			return
		}
		name, metric, ok := strings.Cut(rest, ":")
		if !ok || name == "" || metric == "" {
			return
		}
		if byTenant[name] == nil {
			byTenant[name] = make(map[string]int64)
		}
		byTenant[name][metric] = nv.Value
		cols[metric] = true
	}
	for _, nv := range snap.Counters {
		add(nv)
	}
	for _, nv := range snap.Gauges {
		add(nv)
	}
	if len(byTenant) == 0 {
		return nil
	}
	colNames := make([]string, 0, len(cols))
	for c := range cols {
		colNames = append(colNames, c)
	}
	sort.Strings(colNames)
	t := metrics.NewTable(titlePrefix+"tenants", append([]string{"tenant"}, colNames...)...)
	tenants := make([]string, 0, len(byTenant))
	for name := range byTenant {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		row := make([]any, 0, 1+len(colNames))
		row = append(row, name)
		for _, c := range colNames {
			row = append(row, byTenant[name][c])
		}
		t.AddRow(row...)
	}
	return t
}
