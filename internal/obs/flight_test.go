package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestFlightRecorderRoundTrip(t *testing.T) {
	fr := NewFlightRecorder(3, 64)
	fr.TraceSlot(EvSlotIssue, 3, 7, 5, 200, 11)
	fr.TraceSlot(EvSlotComplete, 4, 7, 5, 255, -2)
	fr.Trace(EvOpBegin, 9, 1<<40)

	recs := fr.Records()
	if len(recs) != 3 {
		t.Fatalf("Records() = %d records, want 3", len(recs))
	}
	byEv := make(map[Event]Record)
	for i, r := range recs {
		byEv[r.Ev] = r
		if i > 0 && recs[i].TS < recs[i-1].TS {
			t.Fatalf("records not sorted by TS: %v", recs)
		}
	}
	issue := byEv[EvSlotIssue]
	if issue.Node != 3 || issue.Tid != 7 || issue.Slot != 5 || issue.Round != 200 || issue.Arg != 11 {
		t.Fatalf("EvSlotIssue record mangled: %+v", issue)
	}
	complete := byEv[EvSlotComplete]
	if complete.Node != 4 || complete.Round != 255 || complete.Arg != -2 {
		t.Fatalf("EvSlotComplete record mangled: %+v", complete)
	}
	begin := byEv[EvOpBegin]
	if begin.Node != 3 || begin.Tid != 9 || begin.Slot != 0 || begin.Arg != 1<<40 {
		t.Fatalf("Trace path record mangled: %+v", begin)
	}

	var buf bytes.Buffer
	d := fr.Dump()
	d.Tags = map[string]string{"expected_skip_ratio": "0.9"}
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatalf("ReadFlightDump: %v", err)
	}
	if back.Node != 3 || len(back.Records) != 3 || back.Tags["expected_skip_ratio"] != "0.9" {
		t.Fatalf("round-trip mismatch: node=%d records=%d tags=%v", back.Node, len(back.Records), back.Tags)
	}
	if back.Records[0] != recs[0] {
		t.Fatalf("record round-trip mismatch: %+v vs %+v", back.Records[0], recs[0])
	}
}

func TestFlightRecorderNegativeNode(t *testing.T) {
	fr := NewFlightRecorder(-1, 16).KeepAll()
	fr.Trace(EvPoolGet, 0, 128)
	recs := fr.Records()
	if len(recs) != 1 || recs[0].Node != -1 {
		t.Fatalf("want one record with node -1, got %+v", recs)
	}
}

// TestFlightRecorderEventFilter: the default filter keeps protocol events
// and drops the per-packet firehose; Keep replaces the set.
func TestFlightRecorderEventFilter(t *testing.T) {
	fr := NewFlightRecorder(0, 16)
	fr.Trace(EvPoolGet, 0, 1)                // firehose: dropped by default
	fr.Trace(EvPacketSent, 0, 1)             // firehose: dropped by default
	fr.Trace(EvOpBegin, 7, 0)                // lifecycle: kept
	fr.TraceSlot(EvSlotIssue, 0, 7, 0, 0, 1) // protocol: kept
	recs := fr.Records()
	if len(recs) != 2 {
		t.Fatalf("default filter retained %d records, want 2: %+v", len(recs), recs)
	}
	for _, r := range recs {
		if r.Ev != EvOpBegin && r.Ev != EvSlotIssue {
			t.Fatalf("default filter retained firehose event %v", r.Ev)
		}
	}

	fr = NewFlightRecorder(0, 16).Keep(EvPoolGet)
	fr.Trace(EvPoolGet, 0, 1)
	fr.TraceSlot(EvSlotIssue, 0, 7, 0, 0, 1)
	if recs := fr.Records(); len(recs) != 1 || recs[0].Ev != EvPoolGet {
		t.Fatalf("Keep(EvPoolGet) retained %+v, want exactly one pool_get", recs)
	}
}

func TestFlightRecorderRingRetention(t *testing.T) {
	fr := NewFlightRecorder(0, 8)
	// All events share (ev, tid, slot), so they land in one shard's
	// 8-entry ring; only the last 8 survive.
	const n = 100
	for i := 0; i < n; i++ {
		fr.TraceSlot(EvSlotIssue, 0, 1, 2, uint8(i), int64(i))
	}
	recs := fr.Records()
	if len(recs) != 8 {
		t.Fatalf("Records() = %d, want ring capacity 8", len(recs))
	}
	for i, r := range recs {
		if want := int64(n - 8 + i); r.Arg != want {
			t.Fatalf("record %d: arg %d, want %d (most recent events retained in order)", i, r.Arg, want)
		}
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(0, 256)
	prev := SetTracer(fr)
	defer SetTracer(prev)

	const writers, perWriter = 8, 500
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent reader: must never block writers or observe torn records.
	// Writers always stamp Node == Tid; a mismatch means a torn read
	// slipped past the seqlock.
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			for _, r := range fr.Records() {
				if r.Ev != EvSlotIssue || r.Node != int32(r.Tid) {
					t.Errorf("torn record observed: %+v", r)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				EmitSlot(EvSlotIssue, int32(w), uint32(w), uint16(i), uint8(i), int64(i))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	recs := fr.Records()
	if len(recs) == 0 {
		t.Fatal("no records retained")
	}
	for _, r := range recs {
		if r.Node != int32(r.Tid) {
			t.Fatalf("torn record: %+v", r)
		}
	}
}

func TestActiveFlightRecorder(t *testing.T) {
	if ActiveFlightRecorder() != nil {
		t.Fatal("ActiveFlightRecorder with no tracer installed should be nil")
	}
	fr := NewFlightRecorder(0, 16)
	prev := SetTracer(MultiTracer{NewCountingTracer(), MultiTracer{fr}})
	defer SetTracer(prev)
	if got := ActiveFlightRecorder(); got != fr {
		t.Fatalf("ActiveFlightRecorder = %v, want the nested recorder", got)
	}
}

func TestEmitSlotFallback(t *testing.T) {
	// A plain Tracer still receives slot events, untagged.
	c := NewCountingTracer()
	prev := SetTracer(c)
	defer SetTracer(prev)
	EmitSlot(EvLookaheadSkip, 1, 2, 3, 4, 5)
	if c.Count(EvLookaheadSkip) != 1 || c.ArgSum(EvLookaheadSkip) != 5 {
		t.Fatalf("plain tracer missed slot event: count=%d arg=%d",
			c.Count(EvLookaheadSkip), c.ArgSum(EvLookaheadSkip))
	}
}

func TestRingTracerExactCapacity(t *testing.T) {
	r := NewRingTracer(4)
	for i := 0; i < 4; i++ {
		r.Trace(EvOpBegin, uint32(i), int64(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Tid != uint32(i) {
			t.Fatalf("event %d out of emission order: %+v", i, e)
		}
	}
}

func TestRingTracerWraparound(t *testing.T) {
	r := NewRingTracer(4)
	const n = 11 // wraps twice, lands mid-ring
	for i := 0; i < n; i++ {
		r.Trace(EvOpBegin, uint32(i), int64(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() = %d, want capacity 4", len(evs))
	}
	for i, e := range evs {
		if want := uint32(n - 4 + i); e.Tid != want {
			t.Fatalf("event %d: tid %d, want %d (oldest-first emission order after wrap)", i, e.Tid, want)
		}
	}
}
