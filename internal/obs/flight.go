package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// Flight recorder: the always-cheap, bounded-memory event log that makes
// a wedged or slow collective explainable after the fact. It retains the
// last N fully tagged events (monotonic timestamp, node, op, slot, round,
// arg) in sharded lock-free rings; a dump is a consistent-enough snapshot
// that cmd/tracetool and internal/obs/timeline turn into per-slot
// pipeline timelines, occupancy, and look-ahead statistics.
//
// Design constraints:
//
//   - Recording must be allocation-free and lock-free: the recorder is
//     installed during chaos runs, drift runs, and (via the stall
//     watchdog) potentially in production, so it shares the enabled-path
//     budget of the counting tracer. Each record is packed into a fixed
//     set of atomic words; claiming a ring position is one atomic add.
//   - Shards approximate per-goroutine rings: the shard is picked by the
//     (tid, slot, event-class) stream key, and in the live driver each
//     (operation, slot) event stream is produced by a single goroutine,
//     so shards are single-writer in steady state. When two goroutines do
//     collide on a shard, a per-entry seqlock keeps records tear-free:
//     readers discard entries whose sequence changed mid-copy.
//   - Reading (Records/Dump) may run concurrently with recording — the
//     stall watchdog snapshots a live system — and must never block
//     writers.

// Record is one fully tagged flight-recorder event.
type Record struct {
	// TS is the event time in nanoseconds since the recorder's origin
	// (monotonic wall clock; the timeline analyzer aligns origins across
	// nodes via op-begin anchors).
	TS int64 `json:"ts"`
	// Node is the emitting node ID (-1 when unknown: events recorded
	// through the untagged Trace path on a recorder with no default node).
	Node int32 `json:"node"`
	// Ev is the event kind.
	Ev Event `json:"ev"`
	// Tid is the collective's tensor ID (0 when not tied to one).
	Tid uint32 `json:"tid"`
	// Slot is the stream slot (meaningful for slot-pipeline events).
	Slot uint16 `json:"slot"`
	// Round is the protocol round counter mod 256.
	Round uint8 `json:"round"`
	// Arg is the event-specific argument (bytes, blocks, nanoseconds).
	Arg int64 `json:"arg"`
}

// frEntry is one ring cell: a seqlock word plus the record packed into
// three atomic words, so concurrent read/write is both race-free (every
// access is atomic) and tear-free (the sequence validates the copy).
// Sequence protocol: 0 = never written; odd = write in progress; even =
// committed by claim seq/2.
type frEntry struct {
	seq atomic.Uint64
	w0  atomic.Uint64 // TS
	w1  atomic.Uint64 // Node<<32 | Tid
	w2  atomic.Uint64 // Arg
	w3  atomic.Uint64 // Ev | Slot<<8 | Round<<24
}

func (e *frEntry) store(r Record) {
	e.w0.Store(uint64(r.TS))
	e.w1.Store(uint64(uint32(r.Node))<<32 | uint64(r.Tid))
	e.w2.Store(uint64(r.Arg))
	e.w3.Store(uint64(r.Ev) | uint64(r.Slot)<<8 | uint64(r.Round)<<24)
}

func (e *frEntry) load() Record {
	w0, w1, w2, w3 := e.w0.Load(), e.w1.Load(), e.w2.Load(), e.w3.Load()
	return Record{
		TS:    int64(w0),
		Node:  int32(uint32(w1 >> 32)),
		Tid:   uint32(w1),
		Arg:   int64(w2),
		Ev:    Event(w3),
		Slot:  uint16(w3 >> 8),
		Round: uint8(w3 >> 24),
	}
}

// frShard is one single-writer-in-steady-state ring. pos is the claim
// counter (1-based); entry i lives at buf[(i-1) & mask].
type frShard struct {
	pos atomic.Uint64
	_   [56]byte // keep claim counters on distinct cache lines
	buf []frEntry
}

func (s *frShard) add(r Record) {
	i := s.pos.Add(1)
	e := &s.buf[(i-1)&uint64(len(s.buf)-1)]
	e.seq.Store(2*i - 1) // odd: write in progress
	e.store(r)
	e.seq.Store(2 * i) // even: committed
}

// collect appends the shard's committed records to out, discarding
// entries that a concurrent writer is overwriting.
func (s *frShard) collect(out []Record) []Record {
	for i := range s.buf {
		e := &s.buf[i]
		s1 := e.seq.Load()
		if s1 == 0 || s1%2 == 1 {
			continue
		}
		r := e.load()
		if e.seq.Load() != s1 {
			continue // torn by a concurrent writer; drop
		}
		out = append(out, r)
	}
	return out
}

// FlightRecorder retains the most recent events across a set of sharded
// rings. It implements Tracer and SlotTracer, so it can be installed
// process-wide with SetTracer (alone or inside a MultiTracer).
type FlightRecorder struct {
	node   int32
	origin time.Time
	mask   uint32
	keep   uint32 // event filter bitmask (1<<ev); set before install
	shards []frShard
}

// DefaultFlightEvents is the per-shard ring capacity used by
// NewFlightRecorder when the caller passes 0.
const DefaultFlightEvents = 4096

// DefaultFlightKeep is the recorder's default event filter: protocol and
// operation-lifecycle events. The per-packet and per-buffer firehose
// (packet/block send and receive, pool and decode-state churn) is
// excluded — at datapath rates it would evict the protocol history the
// ring exists to retain, and its shard claim counters would contend on
// the packet hot path (the counting tracer covers those events at a
// counter's cost). Override with Keep.
var DefaultFlightKeep = []Event{
	EvOpBegin, EvOpEnd, EvRetransmit, EvStaleDrop, EvOverflowDrop,
	EvSlotIssue, EvSlotComplete, EvLookaheadSkip,
	// Batch syscall events fire once per up-to-32 packets, far below the
	// per-packet firehose rate, and are the flight-level evidence of
	// batching effectiveness — retained by default.
	EvTxBatch, EvRxBatch,
}

// NewFlightRecorder returns a recorder whose untagged events default to
// node tag `node` (use -1 for "unknown") and whose every shard retains
// the last perShard events (rounded up to a power of two;
// DefaultFlightEvents when 0). The shard count is derived from
// GOMAXPROCS; total capacity is shards*perShard.
func NewFlightRecorder(node int32, perShard int) *FlightRecorder {
	if perShard <= 0 {
		perShard = DefaultFlightEvents
	}
	perShard = ceilPow2(perShard)
	ns := ceilPow2(runtime.GOMAXPROCS(0))
	if ns > 64 {
		ns = 64
	}
	fr := &FlightRecorder{
		node:   node,
		origin: time.Now(),
		mask:   uint32(ns - 1),
		shards: make([]frShard, ns),
	}
	for i := range fr.shards {
		fr.shards[i].buf = make([]frEntry, perShard)
	}
	return fr.Keep(DefaultFlightKeep...)
}

// Keep replaces the recorder's event filter: only the listed event kinds
// are recorded. Configure before installing the recorder with SetTracer;
// returns the recorder for chaining.
func (fr *FlightRecorder) Keep(evs ...Event) *FlightRecorder {
	var m uint32
	for _, ev := range evs {
		if ev < NumEvents {
			m |= 1 << uint(ev)
		}
	}
	fr.keep = m
	return fr
}

// KeepAll disables the event filter: every event kind is recorded,
// including the per-packet firehose. For short diagnostic captures where
// eviction and hot-path cost are acceptable.
func (fr *FlightRecorder) KeepAll() *FlightRecorder {
	fr.keep = 1<<uint(NumEvents) - 1
	return fr
}

func ceilPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// Now returns the recorder-origin-relative monotonic timestamp stamped on
// records, for callers correlating external observations with the dump.
func (fr *FlightRecorder) Now() int64 { return int64(time.Since(fr.origin)) }

// shardFor picks the ring for an event stream. (tid, slot) streams map
// stably to one shard — in the live driver each such stream is emitted by
// one goroutine, so rings are effectively single-writer; the event kind
// is mixed in to spread untagged pool traffic across shards.
func (fr *FlightRecorder) shardFor(ev Event, tid uint32, slot uint16) *frShard {
	h := tid*0x9E3779B1 ^ (uint32(slot)+1)*0x85EBCA77 ^ uint32(ev)*0xC2B2AE35
	return &fr.shards[h&fr.mask]
}

// Trace implements Tracer: events recorded without slot tags.
func (fr *FlightRecorder) Trace(ev Event, tid uint32, arg int64) {
	fr.TraceSlot(ev, fr.node, tid, 0, 0, arg)
}

// TraceSlot implements SlotTracer.
func (fr *FlightRecorder) TraceSlot(ev Event, node int32, tid uint32, slot uint16, round uint8, arg int64) {
	if ev >= NumEvents || fr.keep&(1<<uint(ev)) == 0 {
		return
	}
	fr.shardFor(ev, tid, slot).add(Record{
		TS:    fr.Now(),
		Node:  node,
		Ev:    ev,
		Tid:   tid,
		Slot:  slot,
		Round: round,
		Arg:   arg,
	})
}

// Records returns a snapshot of the retained events sorted by timestamp.
// It is safe to call while recording continues; records overwritten or
// mid-write during the snapshot are simply absent.
func (fr *FlightRecorder) Records() []Record {
	var out []Record
	for i := range fr.shards {
		out = fr.shards[i].collect(out)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Ev < out[j].Ev
	})
	return out
}

// FlightDump is the serialized form of a recorder snapshot: what one
// process (a worker, an aggregator, or a whole in-process cluster)
// contributes to a merged timeline.
type FlightDump struct {
	// Node is the dump's default node tag (-1 for a multi-node in-process
	// dump whose records carry their own tags).
	Node int32 `json:"node"`
	// Wall is the recorder's origin in wall-clock time (RFC3339Nano);
	// informational only — cross-dump alignment uses op-begin anchors,
	// never wall clocks.
	Wall string `json:"wall"`
	// Tags carries emitter-provided metadata (e.g. the expected
	// look-ahead skip ratio of a generated workload, which cmd/tracetool
	// checks the measured ratio against).
	Tags map[string]string `json:"tags,omitempty"`
	// Records are the retained events, oldest first.
	Records []Record `json:"records"`
}

// Dump snapshots the recorder into its serializable form.
func (fr *FlightRecorder) Dump() FlightDump {
	return FlightDump{
		Node:    fr.node,
		Wall:    fr.origin.Format(time.RFC3339Nano),
		Records: fr.Records(),
	}
}

// WriteJSON writes the dump as indented JSON.
func (d *FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadFlightDump parses one dump written by WriteJSON.
func ReadFlightDump(r io.Reader) (*FlightDump, error) {
	var d FlightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}

// ActiveFlightRecorder returns the process-wide flight recorder, if one
// is installed via SetTracer — directly or anywhere inside a nest of
// MultiTracers. The stall watchdog uses this to bundle the recorder's
// dump into a postmortem without threading the recorder through every
// config.
func ActiveFlightRecorder() *FlightRecorder {
	b := activeTracer.Load()
	if b == nil {
		return nil
	}
	return findFlightRecorder(b.t)
}

func findFlightRecorder(t Tracer) *FlightRecorder {
	switch v := t.(type) {
	case *FlightRecorder:
		return v
	case MultiTracer:
		for _, c := range v {
			if fr := findFlightRecorder(c); fr != nil {
				return fr
			}
		}
	}
	return nil
}
