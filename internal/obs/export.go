package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Exporters: JSON over io.Writer and HTTP, expvar integration, and an
// optional debug server bundling the registry with net/http/pprof — the
// run-time window into a live worker or aggregator.

// exportDoc is the JSON document shape shared by WriteJSON and Handler.
type exportDoc struct {
	Metrics RegistrySnapshot `json:"metrics"`
	Pools   []PoolBalance    `json:"pools"`
}

// WriteJSON writes the registry snapshot plus pool balances as indented
// JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := exportDoc{Metrics: r.Snapshot(), Pools: PoolBalances()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// Handler returns an http.Handler serving the registry as JSON.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

var expvarOnce sync.Once

// PublishExpvar publishes the default registry and pool balances under
// the "omnireduce" expvar name (idempotent; expvar panics on duplicate
// names).
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("omnireduce", expvar.Func(func() any {
			return exportDoc{Metrics: Default.Snapshot(), Pools: PoolBalances()}
		}))
	})
}

// DebugMux returns a mux exposing the observability surface:
//
//	/debug/obs     registry + pool balances as JSON
//	/debug/vars    expvar (including the published registry)
//	/debug/pprof/  the standard pprof handlers
func DebugMux(r *Registry) *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/obs", Handler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug serves DebugMux on addr in a background goroutine and
// returns the server (caller closes it). Errors after startup are
// dropped — the debug endpoint must never take the datapath down.
func ServeDebug(addr string, r *Registry) *http.Server {
	srv := &http.Server{Addr: addr, Handler: DebugMux(r)}
	go func() { _ = srv.ListenAndServe() }()
	return srv
}
