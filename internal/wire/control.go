package wire

import (
	"encoding/binary"
	"fmt"
)

// Control message types (multi-tenant job/admission plane). They share
// the one-byte type prefix with the data-plane formats, so PeekType and
// the receive pumps route them without a full decode.
const (
	// TypeJobOpen is a worker->aggregator request to register a job
	// session in the aggregator's tenant registry: it announces the
	// (tenant, job) identity behind a tensor-ID namespace, the sender's
	// job-relative worker ID, and the job's worker count.
	TypeJobOpen uint8 = iota + 5
	// TypeJobAccept is the aggregator->worker admission acknowledgment.
	TypeJobAccept
	// TypeJobReject is the aggregator->worker admission refusal; Reason
	// carries a typed rejection code (quota, drain, collision, ...).
	TypeJobReject
	// TypeJobClose is a worker->aggregator notice that the sender is done
	// with the job session (best effort; registries also reap on drain).
	TypeJobClose
	// TypeOpReject is an aggregator->worker per-operation admission
	// refusal: the TensorID names the rejected collective, so the worker
	// receive pump routes it to the in-flight operation, which fails with
	// the typed error for Reason.
	TypeOpReject
)

// Rejection reason codes carried by TypeJobReject / TypeOpReject.
// internal/tenant maps them to typed errors.
const (
	ReasonNone      uint8 = 0
	ReasonQuota     uint8 = 1 // per-tenant quota exceeded
	ReasonDraining  uint8 = 2 // aggregator draining for restart; retry elsewhere
	ReasonCollision uint8 = 3 // tensor-ID namespace collision detected
	ReasonUnknown   uint8 = 4 // operation for a job never opened here
	ReasonRejected  uint8 = 5 // generic admission refusal
)

// MaxControlName bounds the tenant and job name lengths on the wire.
const MaxControlName = 255

const controlHeaderLen = 12

// ControlPacket is a decoded control-plane message. TensorID is the job's
// control-channel tensor ID (namespace << TidSeqBits, sequence 0) for the
// job lifecycle types, or the rejected operation's tensor ID for
// TypeOpReject.
type ControlPacket struct {
	Type     uint8
	Reason   uint8
	WID      uint16 // job-relative worker id of the subject worker
	TensorID uint32
	Workers  uint16 // job worker count (TypeJobOpen); 0 otherwise
	Tenant   string
	Job      string
}

// EncodedControlSize returns the exact byte length AppendControl produces.
func EncodedControlSize(p *ControlPacket) int {
	return controlHeaderLen + len(p.Tenant) + len(p.Job)
}

// AppendControl encodes p, appending to dst. Layout:
//
//	[0] type, [1] reason
//	[2] wid uint16
//	[4] tensorID uint32
//	[8] workers uint16
//	[10] tenant length, [11] job length
//	[12] tenant bytes, then job bytes
//
// The tensor ID sits at offset 4, the same offset the sparse formats use,
// so the worker pump's tensor-ID peek covers all control types with one
// rule. Names longer than MaxControlName panic (callers validate at job
// open, not per packet).
func AppendControl(dst []byte, p *ControlPacket) []byte {
	if len(p.Tenant) > MaxControlName || len(p.Job) > MaxControlName {
		panic(fmt.Sprintf("wire: control name too long (%d/%d bytes)", len(p.Tenant), len(p.Job)))
	}
	dst, w := grow(dst, EncodedControlSize(p))
	w[0] = p.Type
	w[1] = p.Reason
	binary.LittleEndian.PutUint16(w[2:], p.WID)
	binary.LittleEndian.PutUint32(w[4:], p.TensorID)
	binary.LittleEndian.PutUint16(w[8:], p.Workers)
	w[10] = uint8(len(p.Tenant))
	w[11] = uint8(len(p.Job))
	off := controlHeaderLen
	copy(w[off:], p.Tenant)
	off += len(p.Tenant)
	copy(w[off:], p.Job)
	return dst
}

// DecodeControl parses an encoded control packet. The name strings are
// copied out of buf, so buf may be recycled immediately. Control packets
// are off the datapath (a handful per job lifetime), so there is no
// reuse-oriented decode form.
func DecodeControl(buf []byte) (*ControlPacket, error) {
	if len(buf) < controlHeaderLen {
		return nil, ErrTruncated
	}
	p := &ControlPacket{
		Type:     buf[0],
		Reason:   buf[1],
		WID:      binary.LittleEndian.Uint16(buf[2:]),
		TensorID: binary.LittleEndian.Uint32(buf[4:]),
		Workers:  binary.LittleEndian.Uint16(buf[8:]),
	}
	if p.Type < TypeJobOpen || p.Type > TypeOpReject {
		return nil, fmt.Errorf("wire: not a control packet (type %d)", p.Type)
	}
	tl, jl := int(buf[10]), int(buf[11])
	if len(buf) < controlHeaderLen+tl+jl {
		return nil, ErrTruncated
	}
	off := controlHeaderLen
	p.Tenant = string(buf[off : off+tl])
	off += tl
	p.Job = string(buf[off : off+jl])
	return p, nil
}

// IsControlType reports whether t is one of the control-plane types.
func IsControlType(t uint8) bool { return t >= TypeJobOpen && t <= TypeOpReject }

// PeekWID returns the worker ID of an encoded packet of any type without
// decoding it. The aggregator's admission gate uses it to attribute the
// first packet of an operation to a job-relative worker.
func PeekWID(buf []byte) (uint16, bool) {
	switch t := PeekType(buf); {
	case t == TypeData || t == TypeResult:
		if len(buf) < 8 {
			return 0, false
		}
		return binary.LittleEndian.Uint16(buf[6:]), true
	case t == TypeSparseData || t == TypeSparseResult || IsControlType(t) || IsViewType(t):
		if len(buf) < 4 {
			return 0, false
		}
		return binary.LittleEndian.Uint16(buf[2:]), true
	default:
		return 0, false
	}
}
