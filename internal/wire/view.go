package wire

import (
	"encoding/binary"
	"fmt"
)

// View-plane message types (elastic membership & failover). They extend
// the control plane's shared one-byte type prefix, so PeekType and the
// pumps route them without a full decode; DecodeControl's range check is
// untouched (view packets have their own format and decoder).
const (
	// TypeView announces a membership view (epoch + member IDs):
	// orchestrator->aggregator to activate a standby, and
	// aggregator->worker to propagate the change.
	TypeView uint8 = iota + 10
	// TypeViewAck is a worker->aggregator acknowledgment binding the
	// sender's connection to the acked epoch. Epoch stamping is per
	// connection, not per packet: membership changes orders of magnitude
	// less often than data flows, so the data-plane formats stay
	// untouched and the binding rides the handshake.
	TypeViewAck
	// TypeStaleEpoch is the typed refusal for traffic bound to a
	// concluded epoch. It carries the refusing side's full current view,
	// so the refusal doubles as anti-entropy: a worker that missed the
	// TypeView announcement learns the new membership from the refusal
	// itself and can rebind without another round-trip.
	TypeStaleEpoch
	// TypeCheckpoint streams aggregator slot-state (an encoded
	// protocol.AggCheckpoint) to a standby. Checkpoint frames can exceed
	// a UDP datagram; they require a framed reliable transport (TCP or
	// the in-process channel network) between primary and standby.
	TypeCheckpoint
)

// ReasonStaleEpoch extends the control-plane reason codes: the operation
// was refused because the sender's bound view epoch is stale.
// internal/tenant maps it to a typed error.
const ReasonStaleEpoch uint8 = 6

// MaxViewMembers bounds the member lists of an encoded view.
const MaxViewMembers = 0xFFFF

const viewHeaderLen = 16

// ViewPacket is a decoded view-plane message (TypeView, TypeViewAck,
// TypeStaleEpoch — one format for all three; member lists are empty on
// acks). TensorID is the refused operation for TypeStaleEpoch (0
// otherwise), kept at offset 4 like every non-dense format so the worker
// pump's tensor-ID peek routes refusals to the in-flight operation with
// the existing rule.
type ViewPacket struct {
	Type        uint8
	Reason      uint8
	WID         uint16 // sender's worker ID (acks); 0 otherwise
	TensorID    uint32
	Epoch       uint32
	Workers     []int32
	Aggregators []int32
}

// EncodedViewSize returns the exact byte length AppendView produces.
func EncodedViewSize(p *ViewPacket) int {
	return viewHeaderLen + 4*len(p.Workers) + 4*len(p.Aggregators)
}

// AppendView encodes p, appending to dst. Layout:
//
//	[0] type, [1] reason
//	[2] wid uint16
//	[4] tensorID uint32
//	[8] epoch uint32
//	[12] nworkers uint16, [14] naggregators uint16
//	[16] worker IDs (int32 each), then aggregator IDs
func AppendView(dst []byte, p *ViewPacket) []byte {
	if len(p.Workers) > MaxViewMembers || len(p.Aggregators) > MaxViewMembers {
		panic(fmt.Sprintf("wire: view member list too long (%d/%d)", len(p.Workers), len(p.Aggregators)))
	}
	dst, w := grow(dst, EncodedViewSize(p))
	w[0] = p.Type
	w[1] = p.Reason
	binary.LittleEndian.PutUint16(w[2:], p.WID)
	binary.LittleEndian.PutUint32(w[4:], p.TensorID)
	binary.LittleEndian.PutUint32(w[8:], p.Epoch)
	binary.LittleEndian.PutUint16(w[12:], uint16(len(p.Workers)))
	binary.LittleEndian.PutUint16(w[14:], uint16(len(p.Aggregators)))
	off := viewHeaderLen
	for _, id := range p.Workers {
		binary.LittleEndian.PutUint32(w[off:], uint32(id))
		off += 4
	}
	for _, id := range p.Aggregators {
		binary.LittleEndian.PutUint32(w[off:], uint32(id))
		off += 4
	}
	return dst
}

// DecodeView parses an encoded view packet. Member lists are copied out
// of buf, so buf may be recycled immediately (view traffic is off the
// datapath).
func DecodeView(buf []byte) (*ViewPacket, error) {
	if len(buf) < viewHeaderLen {
		return nil, ErrTruncated
	}
	p := &ViewPacket{
		Type:     buf[0],
		Reason:   buf[1],
		WID:      binary.LittleEndian.Uint16(buf[2:]),
		TensorID: binary.LittleEndian.Uint32(buf[4:]),
		Epoch:    binary.LittleEndian.Uint32(buf[8:]),
	}
	if p.Type < TypeView || p.Type > TypeStaleEpoch {
		return nil, fmt.Errorf("wire: not a view packet (type %d)", p.Type)
	}
	nw := int(binary.LittleEndian.Uint16(buf[12:]))
	na := int(binary.LittleEndian.Uint16(buf[14:]))
	if len(buf) < viewHeaderLen+4*(nw+na) {
		return nil, ErrTruncated
	}
	off := viewHeaderLen
	if nw > 0 {
		p.Workers = make([]int32, nw)
		for i := range p.Workers {
			p.Workers[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	}
	if na > 0 {
		p.Aggregators = make([]int32, na)
		for i := range p.Aggregators {
			p.Aggregators[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	}
	return p, nil
}

const checkpointHeaderLen = 16

// CheckpointFrame is a decoded TypeCheckpoint message: one shard's
// encoded machine state for one tensor-ID namespace, stamped with the
// epoch whose failover it serves. Payload encoding is the driver's
// choice (the live service uses gob); the wire layer treats it as bytes.
type CheckpointFrame struct {
	Shard   uint16
	NS      uint32
	Epoch   uint32
	Payload []byte
}

// EncodedCheckpointSize returns the exact byte length AppendCheckpoint
// produces.
func EncodedCheckpointSize(f *CheckpointFrame) int {
	return checkpointHeaderLen + len(f.Payload)
}

// AppendCheckpoint encodes f, appending to dst. Layout:
//
//	[0] type (TypeCheckpoint), [1] zero
//	[2] shard uint16
//	[4] namespace uint32
//	[8] epoch uint32
//	[12] payload length uint32
//	[16] payload bytes
func AppendCheckpoint(dst []byte, f *CheckpointFrame) []byte {
	dst, w := grow(dst, EncodedCheckpointSize(f))
	w[0] = TypeCheckpoint
	w[1] = 0
	binary.LittleEndian.PutUint16(w[2:], f.Shard)
	binary.LittleEndian.PutUint32(w[4:], f.NS)
	binary.LittleEndian.PutUint32(w[8:], f.Epoch)
	binary.LittleEndian.PutUint32(w[12:], uint32(len(f.Payload)))
	copy(w[checkpointHeaderLen:], f.Payload)
	return dst
}

// DecodeCheckpoint parses an encoded checkpoint frame. The payload is
// copied out of buf, so buf may be recycled immediately.
func DecodeCheckpoint(buf []byte) (*CheckpointFrame, error) {
	if len(buf) < checkpointHeaderLen || buf[0] != TypeCheckpoint {
		if len(buf) < checkpointHeaderLen {
			return nil, ErrTruncated
		}
		return nil, fmt.Errorf("wire: not a checkpoint frame (type %d)", buf[0])
	}
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	if len(buf) < checkpointHeaderLen+n {
		return nil, ErrTruncated
	}
	f := &CheckpointFrame{
		Shard:   binary.LittleEndian.Uint16(buf[2:]),
		NS:      binary.LittleEndian.Uint32(buf[4:]),
		Epoch:   binary.LittleEndian.Uint32(buf[8:]),
		Payload: append([]byte(nil), buf[checkpointHeaderLen:checkpointHeaderLen+n]...),
	}
	return f, nil
}

// IsViewType reports whether t is one of the view-plane types
// (view/ack/stale-epoch/checkpoint).
func IsViewType(t uint8) bool { return t >= TypeView && t <= TypeCheckpoint }
