package wire

import "math"

// IEEE 754 binary16 (half precision) software codec. The paper's RDMA
// metadata reserves 2 bits for the data type (§5); transmitting fp16
// halves the wire volume of every block at ~3 decimal digits of
// precision, the standard mixed-precision training trade-off.

// Data type identifiers carried in packet headers.
const (
	DTypeF32 uint8 = 0
	DTypeF16 uint8 = 1
)

// F16FromF32 converts a float32 to its nearest binary16 representation
// (round-to-nearest-even), with overflow mapping to infinity and
// underflow denormalizing toward zero.
func F16FromF32(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xFF) - 127 + 15
	mant := b & 0x7FFFFF

	switch {
	case exp >= 0x1F:
		// Overflow or already Inf/NaN.
		if int32(b>>23&0xFF) == 0xFF && mant != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // Inf
	case exp <= 0:
		// Subnormal or zero in half precision.
		if exp < -10 {
			return sign // underflow to zero
		}
		mant |= 0x800000 // implicit leading one
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// Round to nearest even.
		rem := mant & ((1 << shift) - 1)
		mid := uint32(1) << (shift - 1)
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		// Round to nearest even on the truncated 13 bits.
		rem := mant & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++
		}
		return half
	}
}

// F16ToF32 converts a binary16 value to float32 exactly.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch {
	case exp == 0x1F:
		if mant != 0 {
			return math.Float32frombits(sign | 0x7FC00000) // NaN
		}
		return math.Float32frombits(sign | 0x7F800000) // Inf
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize.
		for mant&0x400 == 0 {
			mant <<= 1
			exp--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | (exp+1-15+127)<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}
