package wire

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"testing/quick"
)

// Robustness: decoding arbitrary bytes must never panic — it either
// returns a packet or an error. The aggregator and worker receive raw
// datagrams from the network, so the decoders are an attack/corruption
// surface.

func TestDecodePacketNeverPanics(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(size)%2048)
		r.Read(buf)
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("DecodePacket panicked on %d bytes: %v", len(buf), p)
			}
		}()
		_, _ = DecodePacket(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSparsePacketNeverPanics(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(size)%2048)
		r.Read(buf)
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("DecodeSparsePacket panicked: %v", p)
			}
		}()
		_, _ = DecodeSparsePacket(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Flipping any single byte of a valid packet must not panic either (it
// may decode to a different valid packet or fail).
func TestDecodePacketBitflips(t *testing.T) {
	p := &Packet{
		Type: TypeData, Version: 1, Slot: 3, WID: 2, TensorID: 9,
		BlockSize: 8,
		Nexts:     []uint32{16, Inf(1)},
		Blocks:    []Block{{Index: 4, Data: []float32{1, 2, 3, 4, 5, 6, 7, 8}}},
	}
	buf := AppendPacket(nil, p)
	for i := range buf {
		for _, b := range []byte{0x00, 0xFF, buf[i] ^ 0x01} {
			mut := append([]byte(nil), buf...)
			mut[i] = b
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic with byte %d set to %#x: %v", i, b, r)
					}
				}()
				_, _ = DecodePacket(mut)
			}()
		}
	}
}

// seedPackets are valid encodings of representative packets, used both as
// fuzz seeds and by the corpus generator.
func seedPackets() [][]byte {
	ps := []*Packet{
		{Type: TypeData, Version: 1, Slot: 3, WID: 2, TensorID: 9, BlockSize: 8,
			Nexts:  []uint32{16, Inf(1)},
			Blocks: []Block{{Index: 4, Data: []float32{1, 2, 3, 4, 5, 6, 7, 8}}}},
		{Type: TypeResult, Version: 200, Slot: 0, WID: 0, TensorID: 1, BlockSize: 4,
			Nexts:  []uint32{Inf(0), Inf(1), Inf(2), Inf(3)},
			Blocks: nil}, // pure ack / completion
		{Type: TypeData, DType: DTypeF16, Version: 7, Slot: 1, WID: 5, TensorID: 3,
			BlockSize: 2, Nexts: []uint32{8, 9, 10},
			Blocks: []Block{
				{Index: 3, Data: []float32{0.5, -2}},
				{Index: 4, Data: []float32{65504, 0}},
				{Index: 5, Data: []float32{1}}, // short tail block
			}},
	}
	var out [][]byte
	for _, p := range ps {
		out = append(out, AppendPacket(nil, p))
	}
	out = append(out, AppendSparsePacket(nil, &SparsePacket{
		Type: TypeSparseData, WID: 1, TensorID: 2, NextKey: 77,
		Keys: []uint32{3, 9, 40}, Values: []float32{1, -1, 0.25},
	}))
	out = append(out, AppendSparsePacket(nil, &SparsePacket{
		Type: TypeSparseResult, WID: 0, TensorID: 2, NextKey: InfKey,
	}))
	return out
}

// chaosMutations derives deterministic corruptions of buf — the same
// damage the chaos fabric and a hostile network inflict: truncation,
// duplication (datagram concatenation), and bit flips.
func chaosMutations(buf []byte) [][]byte {
	var muts [][]byte
	for _, cut := range []int{0, 1, len(buf) / 2, len(buf) - 1} {
		if cut >= 0 && cut <= len(buf) {
			muts = append(muts, buf[:cut])
		}
	}
	muts = append(muts, append(append([]byte(nil), buf...), buf...))
	for i := 0; i < len(buf); i += 1 + len(buf)/16 {
		m := append([]byte(nil), buf...)
		m[i] ^= 1 << uint(i%8)
		muts = append(muts, m)
	}
	return muts
}

// reencodable reports whether a decoded packet may be passed back to
// AppendPacket: the encoder panics (by contract) unless blocks arrive in
// strictly ascending column order, a property corrupted indices can break.
func reencodable(p *Packet) bool {
	if len(p.Nexts) == 0 || len(p.Nexts) > MaxCols {
		return false
	}
	prev := -1
	for _, b := range p.Blocks {
		col := int(b.Index) % len(p.Nexts)
		if col <= prev {
			return false
		}
		prev = col
	}
	return true
}

// packetsEquivalent compares two decoded packets field by field, treating
// nil and empty slices as equal (the reuse path recycles backing arrays,
// so its empty slices are non-nil).
func packetsEquivalent(a, b *Packet) bool {
	if a.Type != b.Type || a.Version != b.Version || a.DType != b.DType ||
		a.Slot != b.Slot || a.WID != b.WID || a.TensorID != b.TensorID ||
		a.BlockSize != b.BlockSize || len(a.Nexts) != len(b.Nexts) || len(a.Blocks) != len(b.Blocks) {
		return false
	}
	for i := range a.Nexts {
		if a.Nexts[i] != b.Nexts[i] {
			return false
		}
	}
	for i := range a.Blocks {
		if a.Blocks[i].Index != b.Blocks[i].Index || len(a.Blocks[i].Data) != len(b.Blocks[i].Data) {
			return false
		}
		for j, v := range a.Blocks[i].Data {
			w := b.Blocks[i].Data[j]
			if v != w && (v == v || w == w) { // NaN payloads compare equal
				return false
			}
		}
	}
	return true
}

// checkReuseDecode verifies the recycled-state decode path against the
// fresh-allocation path: same error outcome, same decoded packet, no stale
// state leaking from whatever the recycled packet and arena held before.
func checkReuseDecode(t *testing.T, dirty *Packet, scratch []float32, buf []byte) []float32 {
	fresh, freshErr := DecodePacket(buf)
	scratch, reuseErr := DecodePacketInto(dirty, scratch, buf)
	if (freshErr == nil) != (reuseErr == nil) {
		t.Fatalf("decode paths disagree: fresh err %v, reuse err %v", freshErr, reuseErr)
	}
	if freshErr == nil && !packetsEquivalent(fresh, dirty) {
		t.Fatalf("reuse decode leaked stale state:\n fresh %+v\n reuse %+v", fresh, dirty)
	}
	return scratch
}

// FuzzDecodePacket exercises the dense decoder on arbitrary and mutated
// inputs: no panics ever, any buffer that decodes must survive an
// encode/decode round trip (byte-exact for float32 payloads), and the
// recycled-state reuse path (DecodePacketInto over a dirty packet and
// scratch arena) must agree with the fresh path exactly.
func FuzzDecodePacket(f *testing.F) {
	for _, seed := range seedPackets() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		// The reuse-path packet and arena are deliberately dirtied by every
		// successful decode in this run and by a seed decode up front, so a
		// decoder that fails to reset state cannot pass.
		dirty := &Packet{}
		scratch, _ := DecodePacketInto(dirty, nil, seedPackets()[0])
		check := func(b []byte) {
			scratch = checkReuseDecode(t, dirty, scratch, b)
			p, err := DecodePacket(b)
			if err != nil {
				return
			}
			if !reencodable(p) {
				return
			}
			enc := AppendPacket(nil, p)
			q, err := DecodePacket(enc)
			if err != nil {
				t.Fatalf("re-decode of re-encoded packet failed: %v", err)
			}
			if p.DType == DTypeF32 {
				// Float32 payloads are bit-transparent, so encoding the
				// decoded packet must be idempotent.
				if enc2 := AppendPacket(nil, q); !bytes.Equal(enc, enc2) {
					t.Fatalf("f32 round trip not idempotent:\n  %x\n  %x", enc, enc2)
				}
			} else if len(q.Blocks) != len(p.Blocks) || q.Cols() != p.Cols() {
				// Half precision may renormalize NaN payloads; structure
				// must still survive.
				t.Fatalf("f16 round trip changed structure: %d/%d blocks, %d/%d cols",
					len(q.Blocks), len(p.Blocks), q.Cols(), p.Cols())
			}
		}
		check(buf)
		for _, m := range chaosMutations(buf) {
			check(m)
		}
	})
}

// FuzzDecodeSparsePacket is the key-value analogue; sparse payloads are
// always float32, so the round trip must be byte-exact whenever the
// original buffer has no trailing garbage.
func FuzzDecodeSparsePacket(f *testing.F) {
	for _, seed := range seedPackets() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		check := func(b []byte) {
			p, err := DecodeSparsePacket(b)
			if err != nil {
				return
			}
			enc := AppendSparsePacket(nil, p)
			q, err := DecodeSparsePacket(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if enc2 := AppendSparsePacket(nil, q); !bytes.Equal(enc, enc2) {
				t.Fatalf("sparse round trip not idempotent:\n  %x\n  %x", enc, enc2)
			}
		}
		check(buf)
		for _, m := range chaosMutations(buf) {
			check(m)
		}
	})
}

// Huge declared lengths must fail cleanly rather than allocating wildly:
// a corrupted block-length field is bounded by the buffer check.
func TestDecodePacketHugeDeclaredLength(t *testing.T) {
	p := &Packet{Type: TypeData, BlockSize: 4, Nexts: []uint32{0},
		Blocks: []Block{{Index: 0, Data: []float32{1}}}}
	buf := AppendPacket(nil, p)
	// Block length field sits after nexts: header(24) + 4 + index(4).
	off := 24 + 4 + 4
	buf[off] = 0xFF
	buf[off+1] = 0xFF
	buf[off+2] = 0xFF
	buf[off+3] = 0x7F
	if _, err := DecodePacket(buf); err == nil {
		t.Fatal("accepted packet with 2^31 declared block length")
	}
}

// TestRegenerateFuzzCorpus rewrites the checked-in regression corpus under
// testdata/fuzz from seedPackets and their chaos mutations. Run with
// WIRE_CORPUS_GEN=1 after changing the wire format; normally it only
// verifies every corpus entry still parses without panicking.
func TestRegenerateFuzzCorpus(t *testing.T) {
	targets := []string{"FuzzDecodePacket", "FuzzDecodeSparsePacket"}
	if os.Getenv("WIRE_CORPUS_GEN") != "" {
		for _, target := range targets {
			dir := "testdata/fuzz/" + target
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			i := 0
			emit := func(buf []byte) {
				body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(buf)) + ")\n"
				name := fmt.Sprintf("%s/seed-%03d", dir, i)
				i++
				if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			for _, seed := range seedPackets() {
				emit(seed)
				for _, m := range chaosMutations(seed) {
					emit(m)
				}
			}
		}
		return
	}
	for _, target := range targets {
		dir := "testdata/fuzz/" + target
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("regression corpus missing (regenerate with WIRE_CORPUS_GEN=1): %v", err)
		}
		if len(entries) == 0 {
			t.Fatalf("empty corpus in %s", dir)
		}
		for _, e := range entries {
			raw, err := os.ReadFile(dir + "/" + e.Name())
			if err != nil {
				t.Fatal(err)
			}
			lines := bytes.SplitN(raw, []byte("\n"), 3)
			if len(lines) < 2 || string(lines[0]) != "go test fuzz v1" {
				t.Fatalf("%s/%s: not a go fuzz corpus file", dir, e.Name())
			}
			body := string(lines[1])
			if len(body) < len("[]byte(\"\")") || body[:7] != "[]byte(" {
				t.Fatalf("%s/%s: unexpected corpus entry %q", dir, e.Name(), body)
			}
			s, err := strconv.Unquote(body[7 : len(body)-1])
			if err != nil {
				t.Fatalf("%s/%s: %v", dir, e.Name(), err)
			}
			_, _ = DecodePacket([]byte(s))
			_, _ = DecodeSparsePacket([]byte(s))
		}
	}
}
