package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: decoding arbitrary bytes must never panic — it either
// returns a packet or an error. The aggregator and worker receive raw
// datagrams from the network, so the decoders are an attack/corruption
// surface.

func TestDecodePacketNeverPanics(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(size)%2048)
		r.Read(buf)
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("DecodePacket panicked on %d bytes: %v", len(buf), p)
			}
		}()
		_, _ = DecodePacket(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSparsePacketNeverPanics(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(size)%2048)
		r.Read(buf)
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("DecodeSparsePacket panicked: %v", p)
			}
		}()
		_, _ = DecodeSparsePacket(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Flipping any single byte of a valid packet must not panic either (it
// may decode to a different valid packet or fail).
func TestDecodePacketBitflips(t *testing.T) {
	p := &Packet{
		Type: TypeData, Version: 1, Slot: 3, WID: 2, TensorID: 9,
		BlockSize: 8,
		Nexts:     []uint32{16, Inf(1)},
		Blocks:    []Block{{Index: 4, Data: []float32{1, 2, 3, 4, 5, 6, 7, 8}}},
	}
	buf := AppendPacket(nil, p)
	for i := range buf {
		for _, b := range []byte{0x00, 0xFF, buf[i] ^ 0x01} {
			mut := append([]byte(nil), buf...)
			mut[i] = b
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic with byte %d set to %#x: %v", i, b, r)
					}
				}()
				_, _ = DecodePacket(mut)
			}()
		}
	}
}

// Huge declared lengths must fail cleanly rather than allocating wildly:
// a corrupted block-length field is bounded by the buffer check.
func TestDecodePacketHugeDeclaredLength(t *testing.T) {
	p := &Packet{Type: TypeData, BlockSize: 4, Nexts: []uint32{0},
		Blocks: []Block{{Index: 0, Data: []float32{1}}}}
	buf := AppendPacket(nil, p)
	// Block length field sits after nexts: header(24) + 4 + index(4).
	off := 24 + 4 + 4
	buf[off] = 0xFF
	buf[off+1] = 0xFF
	buf[off+2] = 0xFF
	buf[off+3] = 0x7F
	if _, err := DecodePacket(buf); err == nil {
		t.Fatal("accepted packet with 2^31 declared block length")
	}
}
