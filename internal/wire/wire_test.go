package wire

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Type:      TypeData,
		Version:   1,
		Slot:      7,
		WID:       3,
		TensorID:  42,
		BlockSize: 4,
		Nexts:     []uint32{8, Inf(1), 10, 11},
		Blocks: []Block{
			{Index: 4, Data: []float32{1, 2, 3, 4}}, // col 0
			{Index: 6, Data: []float32{5, 6, 7, 8}}, // col 2
			{Index: 7, Data: []float32{9}},          // col 3, short tail block
		},
	}
	buf := AppendPacket(nil, p)
	got, err := DecodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
	if PeekType(buf) != TypeData {
		t.Fatal("PeekType wrong")
	}
}

func TestPacketAckNoBlocks(t *testing.T) {
	p := &Packet{Type: TypeData, Slot: 1, WID: 2, BlockSize: 256, Nexts: []uint32{5, 9}}
	buf := AppendPacket(nil, p)
	got, err := DecodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Blocks) != 0 {
		t.Fatalf("ack decoded %d blocks", len(got.Blocks))
	}
	if got.Done() {
		t.Fatal("packet with finite nexts reported Done")
	}
}

func TestPacketDone(t *testing.T) {
	p := &Packet{Type: TypeResult, Nexts: []uint32{Inf(0), Inf(1)}}
	if !p.Done() {
		t.Fatal("all-inf packet should be Done")
	}
	if (&Packet{Type: TypeResult}).Done() {
		t.Fatal("packet with no columns must not be Done")
	}
}

func TestInfEncoding(t *testing.T) {
	for col := 0; col < MaxCols; col++ {
		v := Inf(col)
		if !IsInf(v) {
			t.Fatalf("Inf(%d) not IsInf", col)
		}
		if int(v-InfBase) != col {
			t.Fatalf("Inf(%d) lost column", col)
		}
	}
	if IsInf(12345) {
		t.Fatal("ordinary offset reported Inf")
	}
}

func TestAppendPacketColumnOrderPanics(t *testing.T) {
	p := &Packet{
		Type: TypeData, BlockSize: 2, Nexts: []uint32{0, 0},
		Blocks: []Block{{Index: 3, Data: []float32{1, 2}}, {Index: 2, Data: []float32{1, 2}}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-order columns")
		}
	}()
	AppendPacket(nil, p)
}

func TestAppendPacketInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero fusion width")
		}
	}()
	AppendPacket(nil, &Packet{Type: TypeData})
}

func TestDecodePacketTruncated(t *testing.T) {
	p := &Packet{Type: TypeData, BlockSize: 4, Nexts: []uint32{8},
		Blocks: []Block{{Index: 1, Data: []float32{1, 2, 3, 4}}}}
	buf := AppendPacket(nil, p)
	for _, n := range []int{0, 5, headerLen - 1, headerLen + 1, len(buf) - 1} {
		if n > len(buf) {
			continue
		}
		if _, err := DecodePacket(buf[:n]); err == nil {
			t.Errorf("DecodePacket accepted %d-byte prefix", n)
		}
	}
}

func TestDecodePacketBadWidth(t *testing.T) {
	buf := AppendPacket(nil, &Packet{Type: TypeData, BlockSize: 1, Nexts: []uint32{Inf(0)}})
	buf[2] = 0
	if _, err := DecodePacket(buf); err == nil {
		t.Fatal("accepted zero width")
	}
	buf[2] = MaxCols + 1
	if _, err := DecodePacket(buf); err == nil {
		t.Fatal("accepted oversize width")
	}
}

func TestSparseRoundTrip(t *testing.T) {
	p := &SparsePacket{
		Type: TypeSparseData, WID: 5, TensorID: 9, NextKey: 100,
		Keys:   []uint32{1, 5, 9},
		Values: []float32{0.5, -1, 2},
	}
	buf := AppendSparsePacket(nil, p)
	got, err := DecodeSparsePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("sparse round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestSparseEmpty(t *testing.T) {
	p := &SparsePacket{Type: TypeSparseData, NextKey: InfKey}
	got, err := DecodeSparsePacket(AppendSparsePacket(nil, p))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys) != 0 || got.NextKey != InfKey {
		t.Fatalf("got %+v", got)
	}
}

func TestSparseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AppendSparsePacket(nil, &SparsePacket{Keys: []uint32{1}})
}

func TestSparseTruncated(t *testing.T) {
	buf := AppendSparsePacket(nil, &SparsePacket{
		Type: TypeSparseData, Keys: []uint32{1, 2}, Values: []float32{1, 2}})
	for _, n := range []int{0, sparseHeaderLen - 1, len(buf) - 1} {
		if _, err := DecodeSparsePacket(buf[:n]); err == nil {
			t.Errorf("accepted %d-byte prefix", n)
		}
	}
}

func TestImmediateRoundTrip(t *testing.T) {
	f := func(dtype, opcode uint8, slot, nb uint16) bool {
		dtype &= 0x3
		opcode &= 0x3
		slot &= 0xFFF
		d, o, s, n := SplitImmediate(Immediate(dtype, opcode, slot, nb))
		return d == dtype && o == opcode && s == slot && n == nb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random packets survive a round trip.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cols := 1 + r.Intn(MaxCols)
		bs := 1 + r.Intn(64)
		p := &Packet{
			Type:      TypeData,
			Version:   uint8(r.Intn(2)),
			Slot:      uint16(r.Intn(1 << 12)),
			WID:       uint16(r.Intn(256)),
			TensorID:  r.Uint32(),
			BlockSize: uint32(bs),
			Nexts:     make([]uint32, cols),
		}
		for c := range p.Nexts {
			if r.Float64() < 0.3 {
				p.Nexts[c] = Inf(c)
			} else {
				p.Nexts[c] = uint32(r.Intn(1 << 20))
			}
		}
		for c := 0; c < cols; c++ {
			if r.Float64() < 0.5 {
				data := make([]float32, bs)
				for i := range data {
					data[i] = float32(r.NormFloat64())
				}
				// Block index congruent to c modulo cols.
				idx := uint32(r.Intn(1000))*uint32(cols) + uint32(c)
				p.Blocks = append(p.Blocks, Block{Index: idx, Data: data})
			}
		}
		got, err := DecodePacket(AppendPacket(nil, p))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPacketEncode(b *testing.B) {
	p := &Packet{Type: TypeData, BlockSize: 256, Nexts: make([]uint32, 4)}
	for c := 0; c < 4; c++ {
		p.Blocks = append(p.Blocks, Block{Index: uint32(c), Data: make([]float32, 256)})
	}
	buf := make([]byte, 0, MaxPacketLen(4, 256))
	b.SetBytes(int64(4 * 256 * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendPacket(buf[:0], p)
	}
}

func BenchmarkPacketDecode(b *testing.B) {
	p := &Packet{Type: TypeData, BlockSize: 256, Nexts: make([]uint32, 4)}
	for c := 0; c < 4; c++ {
		p.Blocks = append(p.Blocks, Block{Index: uint32(c), Data: make([]float32, 256)})
	}
	buf := AppendPacket(nil, p)
	b.SetBytes(int64(4 * 256 * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodePacket(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketDecodeInto is the reuse path the live drivers run:
// recycled packet, recycled scratch arena, zero steady-state allocations.
func BenchmarkPacketDecodeInto(b *testing.B) {
	p := &Packet{Type: TypeData, BlockSize: 256, Nexts: make([]uint32, 4)}
	for c := 0; c < 4; c++ {
		p.Blocks = append(p.Blocks, Block{Index: uint32(c), Data: make([]float32, 256)})
	}
	buf := AppendPacket(nil, p)
	var dst Packet
	var scratch []float32
	b.SetBytes(int64(4 * 256 * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		scratch, err = DecodePacketInto(&dst, scratch, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestF16RoundTripExactValues(t *testing.T) {
	// Values exactly representable in binary16 survive both directions.
	for _, v := range []float32{0, 1, -1, 0.5, 2, -1024, 65504, 6.103515625e-05} {
		h := F16FromF32(v)
		if got := F16ToF32(h); got != v {
			t.Errorf("f16 round trip %v -> %v", v, got)
		}
	}
}

func TestF16SpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if got := F16ToF32(F16FromF32(inf)); got != inf {
		t.Errorf("+Inf -> %v", got)
	}
	if got := F16ToF32(F16FromF32(float32(math.Inf(-1)))); got != float32(math.Inf(-1)) {
		t.Errorf("-Inf -> %v", got)
	}
	nan := float32(math.NaN())
	if got := F16ToF32(F16FromF32(nan)); got == got { // NaN != NaN
		t.Errorf("NaN -> %v", got)
	}
	// Overflow saturates to Inf, underflow to zero.
	if got := F16ToF32(F16FromF32(1e10)); got != inf {
		t.Errorf("overflow -> %v", got)
	}
	if got := F16ToF32(F16FromF32(1e-10)); got != 0 {
		t.Errorf("underflow -> %v", got)
	}
	// Subnormal half values round trip through the decoder.
	sub := F16ToF32(0x0001) // smallest positive subnormal: 2^-24
	if sub <= 0 || sub > 6e-8 {
		t.Errorf("subnormal decode = %v", sub)
	}
	if got := F16FromF32(sub); got != 0x0001 {
		t.Errorf("subnormal re-encode = %#x", got)
	}
}

// Property: conversion error is bounded by half-precision ULP (2^-11
// relative) for values in the normal range.
func TestF16ErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := float32((r.Float64()*2 - 1) * 60000)
		got := F16ToF32(F16FromF32(v))
		av := math.Abs(float64(v))
		if av < 1e-4 {
			return true // near the subnormal boundary; skip
		}
		return math.Abs(float64(got)-float64(v)) <= av/1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: F16ToF32 -> F16FromF32 is the identity on all 65536 half
// values except NaNs (canonicalized).
func TestF16AllValuesStable(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		v := F16ToF32(uint16(h))
		if v != v {
			continue // NaN payloads canonicalize
		}
		if got := F16FromF32(v); got != uint16(h) {
			t.Fatalf("half %#04x -> %v -> %#04x", h, v, got)
		}
	}
}

func TestPacketF16RoundTrip(t *testing.T) {
	p := &Packet{
		Type: TypeData, DType: DTypeF16, BlockSize: 4,
		Nexts:  []uint32{8, Inf(1)},
		Blocks: []Block{{Index: 2, Data: []float32{1, -0.5, 2048, 0}}, {Index: 3, Data: []float32{0.25}}},
	}
	buf := AppendPacket(nil, p)
	got, err := DecodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DType != DTypeF16 {
		t.Fatalf("dtype = %d", got.DType)
	}
	for i, b := range got.Blocks {
		for j, v := range b.Data {
			if v != p.Blocks[i].Data[j] {
				t.Fatalf("block %d elem %d: %v vs %v", i, j, v, p.Blocks[i].Data[j])
			}
		}
	}
	// fp16 packets are ~half the size of fp32.
	p32 := *p
	p32.DType = DTypeF32
	buf32 := AppendPacket(nil, &p32)
	if len(buf) >= len(buf32) {
		t.Fatalf("fp16 packet %d bytes not smaller than fp32 %d", len(buf), len(buf32))
	}
}

func TestDecodePacketBadDType(t *testing.T) {
	buf := AppendPacket(nil, &Packet{Type: TypeData, BlockSize: 1, Nexts: []uint32{Inf(0)}})
	buf[3] = 7
	if _, err := DecodePacket(buf); err == nil {
		t.Fatal("accepted unknown dtype")
	}
}
