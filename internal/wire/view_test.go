package wire

import (
	"bytes"
	"testing"
)

func TestViewPacketRoundTrip(t *testing.T) {
	cases := []*ViewPacket{
		{Type: TypeView, Epoch: 3, Workers: []int32{0, 1, 2}, Aggregators: []int32{100, 300}},
		{Type: TypeViewAck, WID: 7, Epoch: 9},
		{Type: TypeStaleEpoch, Reason: ReasonStaleEpoch, TensorID: 0xABCD, Epoch: 2,
			Workers: []int32{4}, Aggregators: []int32{5}},
	}
	for _, p := range cases {
		buf := AppendView(nil, p)
		if len(buf) != EncodedViewSize(p) {
			t.Fatalf("type %d: encoded %d bytes, EncodedViewSize says %d", p.Type, len(buf), EncodedViewSize(p))
		}
		if !IsViewType(PeekType(buf)) {
			t.Fatalf("type %d: PeekType/IsViewType missed it", p.Type)
		}
		got, err := DecodeView(buf)
		if err != nil {
			t.Fatalf("type %d: %v", p.Type, err)
		}
		if got.Type != p.Type || got.Reason != p.Reason || got.WID != p.WID ||
			got.TensorID != p.TensorID || got.Epoch != p.Epoch {
			t.Fatalf("header mismatch: %+v != %+v", got, p)
		}
		if len(got.Workers) != len(p.Workers) || len(got.Aggregators) != len(p.Aggregators) {
			t.Fatalf("member lists: %+v != %+v", got, p)
		}
		for i := range p.Workers {
			if got.Workers[i] != p.Workers[i] {
				t.Fatalf("worker %d: %d != %d", i, got.Workers[i], p.Workers[i])
			}
		}
		for i := range p.Aggregators {
			if got.Aggregators[i] != p.Aggregators[i] {
				t.Fatalf("aggregator %d: %d != %d", i, got.Aggregators[i], p.Aggregators[i])
			}
		}
	}
}

func TestViewPacketDecodeErrors(t *testing.T) {
	if _, err := DecodeView(make([]byte, viewHeaderLen-1)); err == nil {
		t.Fatal("short header decoded")
	}
	// Member lists longer than the buffer.
	p := &ViewPacket{Type: TypeView, Epoch: 1, Workers: []int32{1, 2, 3}}
	buf := AppendView(nil, p)
	if _, err := DecodeView(buf[:len(buf)-4]); err == nil {
		t.Fatal("truncated member list decoded")
	}
	// A checkpoint frame is not a view packet.
	ck := AppendCheckpoint(nil, &CheckpointFrame{Payload: []byte("x")})
	if _, err := DecodeView(ck); err == nil {
		t.Fatal("checkpoint frame decoded as view")
	}
}

func TestViewAckWIDPeek(t *testing.T) {
	// The gate attributes acks to connections by transport source, but the
	// WID must still peek like every non-dense format (offset 2).
	buf := AppendView(nil, &ViewPacket{Type: TypeViewAck, WID: 42, Epoch: 1})
	wid, ok := PeekWID(buf)
	if !ok || wid != 42 {
		t.Fatalf("PeekWID = %d, %v", wid, ok)
	}
}

func TestCheckpointFrameRoundTrip(t *testing.T) {
	f := &CheckpointFrame{Shard: 3, NS: 77, Epoch: 12, Payload: []byte("slot-state-bytes")}
	buf := AppendCheckpoint(nil, f)
	if len(buf) != EncodedCheckpointSize(f) {
		t.Fatalf("encoded %d bytes, EncodedCheckpointSize says %d", len(buf), EncodedCheckpointSize(f))
	}
	if PeekType(buf) != TypeCheckpoint || !IsViewType(TypeCheckpoint) {
		t.Fatal("checkpoint type not routable")
	}
	got, err := DecodeCheckpoint(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != f.Shard || got.NS != f.NS || got.Epoch != f.Epoch || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, f)
	}
	// The payload must be a copy, not an alias of the encode buffer.
	buf[checkpointHeaderLen] ^= 0xFF
	if bytes.Equal(got.Payload, buf[checkpointHeaderLen:]) {
		t.Fatal("decoded payload aliases the wire buffer")
	}
	if _, err := DecodeCheckpoint(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, err := DecodeCheckpoint(AppendView(nil, &ViewPacket{Type: TypeView, Epoch: 1})); err == nil {
		t.Fatal("view packet decoded as checkpoint")
	}
}

func TestViewTypesDisjointFromControl(t *testing.T) {
	for _, vt := range []uint8{TypeView, TypeViewAck, TypeStaleEpoch, TypeCheckpoint} {
		if IsControlType(vt) {
			t.Fatalf("view type %d claimed by the control plane", vt)
		}
		if !IsViewType(vt) {
			t.Fatalf("view type %d not recognized", vt)
		}
	}
	for _, ct := range []uint8{TypeData, TypeResult, TypeSparseData, TypeSparseResult} {
		if IsViewType(ct) {
			t.Fatalf("data type %d claimed by the view plane", ct)
		}
	}
}
