package wire

import "testing"

// EncodedPacketSize / EncodedSparsePacketSize are the single source of
// truth for how many bytes a packet occupies on the wire: the live drivers
// encode exactly that many bytes, and the simulator charges its fabric
// that many bytes without encoding. This test pins the contract for every
// packet kind by comparing against the real encoder's output.

func sizePackets() map[string]*Packet {
	return map[string]*Packet{
		"bootstrap-single-block": {
			Type: TypeData, DType: DTypeF32, Slot: 0, WID: 1, TensorID: 7,
			BlockSize: 256,
			Nexts:     []uint32{12},
			Blocks:    []Block{{Index: 0, Data: make([]float32, 256)}},
		},
		"fused-multi-block": {
			Type: TypeData, DType: DTypeF32, Slot: 3, WID: 2, TensorID: 7,
			BlockSize: 64,
			Nexts:     []uint32{8, Inf(1), 10, 11, 20, 21, 22, 23},
			Blocks: []Block{
				{Index: 0, Data: make([]float32, 64)},
				{Index: 2, Data: make([]float32, 64)},
				{Index: 5, Data: make([]float32, 13)}, // short tail block
			},
		},
		"empty-ack": {
			Type: TypeData, Version: 9, DType: DTypeF32, Slot: 1, WID: 0,
			TensorID:  3,
			BlockSize: 32,
			Nexts:     []uint32{Inf(0), Inf(1), Inf(2), Inf(3)},
		},
		"result-multicast": {
			Type: TypeResult, Version: 4, DType: DTypeF32, Slot: 2, WID: 100,
			TensorID:  3,
			BlockSize: 32,
			Nexts:     []uint32{5, Inf(1)},
			Blocks: []Block{
				{Index: 4, Data: make([]float32, 32)},
				{Index: 3, Data: make([]float32, 32)},
			},
		},
		"half-precision": {
			Type: TypeData, DType: DTypeF16, Slot: 0, WID: 1, TensorID: 9,
			BlockSize: 128,
			Nexts:     []uint32{Inf(0)},
			Blocks:    []Block{{Index: 0, Data: make([]float32, 128)}},
		},
	}
}

func TestEncodedPacketSizeMatchesEncoder(t *testing.T) {
	for name, p := range sizePackets() {
		enc := AppendPacket(nil, p)
		if got, want := EncodedPacketSize(p), len(enc); got != want {
			t.Errorf("%s: EncodedPacketSize = %d, encoder wrote %d bytes", name, got, want)
		}
	}
}

func TestEncodedSparsePacketSizeMatchesEncoder(t *testing.T) {
	cases := map[string]*SparsePacket{
		"data-chunk": {
			Type: TypeSparseData, WID: 1, TensorID: 5,
			Keys:    []uint32{3, 9, 200},
			Values:  []float32{1, 2, 3},
			NextKey: 201,
		},
		"empty-flush": {
			Type: TypeSparseData, WID: 0, TensorID: 5, NextKey: InfKey,
		},
		"result-chunk": {
			Type: TypeSparseResult, WID: 2, TensorID: 5,
			Keys:    []uint32{1, 2, 3, 4},
			Values:  []float32{4, 3, 2, 1},
			NextKey: InfKey - 1, // MoreComing marker
		},
	}
	for name, p := range cases {
		enc := AppendSparsePacket(nil, p)
		if got, want := EncodedSparsePacketSize(p), len(enc); got != want {
			t.Errorf("%s: EncodedSparsePacketSize = %d, encoder wrote %d bytes", name, got, want)
		}
	}
}
