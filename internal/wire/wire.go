// Package wire defines the binary message formats exchanged between
// OmniReduce workers and aggregators.
//
// The layout follows the paper's implementation (§5): a small fixed header
// carrying the metadata the RDMA implementation packs into a 32-bit
// immediate value (message type, opcode, slot id, block count), followed by
// the per-column next-offsets of the Block Fusion scheme (§3.2) and the
// fused block payloads. All integers are little-endian.
//
// A packet addresses one aggregation slot and carries up to Cols fused
// blocks, one per column of the two-dimensional block layout. Column i of
// a tensor with fusion width w holds the blocks {b : b mod w == i}. The
// "no more blocks" sentinel is column-specific (the paper's per-column
// infinity values): any next offset >= InfBase encodes infinity for column
// (offset - InfBase).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Message types.
const (
	// TypeData is a worker->aggregator packet carrying zero or more fused
	// blocks plus per-column next-offsets. A TypeData packet with no
	// blocks is the loss-recovery ack of Algorithm 2 (empty payload).
	TypeData uint8 = iota + 1
	// TypeResult is an aggregator->worker packet carrying aggregated
	// blocks and the global per-column next-offsets.
	TypeResult
	// TypeSparseData is a worker->aggregator key-value packet (Algorithm 3).
	TypeSparseData
	// TypeSparseResult is the aggregator->worker key-value result.
	TypeSparseResult
)

// InfBase is the smallest "infinity" next-offset. InfBase+i is the
// infinity sentinel for column i, preserving column identity as required
// by Block Fusion (§3.2, footnote 3).
const InfBase uint32 = 0xFFFFFF00

// Inf returns the infinity sentinel for column col.
func Inf(col int) uint32 { return InfBase + uint32(col) }

// IsInf reports whether a next-offset is an infinity sentinel.
func IsInf(v uint32) bool { return v >= InfBase }

// MaxCols is the largest supported fusion width (limited by the presence
// bitmask and the InfBase encoding).
const MaxCols = 64

// Block is one fused block: its global block index and its values.
type Block struct {
	Index uint32
	Data  []float32
}

// Packet is a decoded dense-format OmniReduce message (TypeData or
// TypeResult).
type Packet struct {
	Type      uint8
	Version   uint8  // round number mod 256 (Algorithm 2 extended)
	DType     uint8  // element encoding: DTypeF32 or DTypeF16
	Slot      uint16 // stream / slot-pool index
	WID       uint16 // sending worker, or aggregator shard for results
	TensorID  uint32 // identifies the collective operation
	BlockSize uint32 // elements per block
	Nexts     []uint32
	Blocks    []Block
}

// Cols reports the fusion width.
func (p *Packet) Cols() int { return len(p.Nexts) }

// Done reports whether every column's next offset is infinity, i.e. the
// sender has no further non-zero blocks (end of reduction for this slot).
func (p *Packet) Done() bool {
	for _, n := range p.Nexts {
		if !IsInf(n) {
			return false
		}
	}
	return len(p.Nexts) > 0
}

const headerLen = 24

// MaxPacketLen returns the encoded size of a packet with the given fusion
// width and block size when all columns carry data.
func MaxPacketLen(cols, blockSize int) int {
	return headerLen + 4*cols + cols*(4+4*blockSize)
}

// EncodedPacketSize returns the exact byte length AppendPacket would
// produce for p, without encoding. The protocol machines attach this size
// to every emitted packet so the discrete-event simulator charges the
// fabric for the real wire format rather than a hand-written approximation.
func EncodedPacketSize(p *Packet) int {
	n := headerLen + 4*len(p.Nexts)
	elemBytes := 4
	if p.DType == DTypeF16 {
		elemBytes = 2
	}
	for _, b := range p.Blocks {
		n += 8 + elemBytes*len(b.Data)
	}
	return n
}

// EncodedSparsePacketSize returns the exact byte length
// AppendSparsePacket would produce for p.
func EncodedSparsePacketSize(p *SparsePacket) int {
	return sparseHeaderLen + 8*len(p.Keys)
}

// ErrTruncated is returned when a buffer is too short for its declared
// contents.
var ErrTruncated = fmt.Errorf("wire: truncated packet")

// AppendPacket encodes p, appending to dst and returning the extended
// slice. The layout is:
//
//	[0]  type, [1] version, [2] cols, [3] dtype
//	[4]  slot uint16, [6] wid uint16
//	[8]  tensorID uint32, [12] blockSize uint32
//	[16] presentMask uint64
//	[24] nexts [cols]uint32
//	...  per present block, ascending column order:
//	     index uint32, length-in-elements uint32, data [length]float32
//
// The per-block length field covers the tensor's final block, which may be
// shorter than blockSize. Blocks must be supplied in strictly ascending
// column order (at most one block per column); AppendPacket panics
// otherwise, since the decoder recovers block boundaries from the presence
// mask in ascending bit order.
func AppendPacket(dst []byte, p *Packet) []byte {
	if len(p.Nexts) == 0 || len(p.Nexts) > MaxCols {
		panic(fmt.Sprintf("wire: invalid fusion width %d", len(p.Nexts)))
	}
	var mask uint64
	prevCol := -1
	for _, b := range p.Blocks {
		col := int(b.Index) % len(p.Nexts)
		if col <= prevCol {
			panic(fmt.Sprintf("wire: blocks must be in ascending column order (col %d after %d)", col, prevCol))
		}
		prevCol = col
		mask |= 1 << uint(col)
	}
	dst = append(dst, p.Type, p.Version, uint8(len(p.Nexts)), p.DType)
	dst = binary.LittleEndian.AppendUint16(dst, p.Slot)
	dst = binary.LittleEndian.AppendUint16(dst, p.WID)
	dst = binary.LittleEndian.AppendUint32(dst, p.TensorID)
	dst = binary.LittleEndian.AppendUint32(dst, p.BlockSize)
	dst = binary.LittleEndian.AppendUint64(dst, mask)
	for _, n := range p.Nexts {
		dst = binary.LittleEndian.AppendUint32(dst, n)
	}
	for _, b := range p.Blocks {
		dst = binary.LittleEndian.AppendUint32(dst, b.Index)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Data)))
		if p.DType == DTypeF16 {
			for _, v := range b.Data {
				dst = binary.LittleEndian.AppendUint16(dst, F16FromF32(v))
			}
		} else {
			for _, v := range b.Data {
				dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
			}
		}
	}
	return dst
}

// DecodePacket parses an encoded dense packet. Block data slices are
// copied out of buf, so buf may be reused by the caller afterwards.
func DecodePacket(buf []byte) (*Packet, error) {
	if len(buf) < headerLen {
		return nil, ErrTruncated
	}
	p := &Packet{
		Type:      buf[0],
		Version:   buf[1],
		DType:     buf[3],
		Slot:      binary.LittleEndian.Uint16(buf[4:]),
		WID:       binary.LittleEndian.Uint16(buf[6:]),
		TensorID:  binary.LittleEndian.Uint32(buf[8:]),
		BlockSize: binary.LittleEndian.Uint32(buf[12:]),
	}
	if p.DType > DTypeF16 {
		return nil, fmt.Errorf("wire: unknown dtype %d", p.DType)
	}
	cols := int(buf[2])
	if cols == 0 || cols > MaxCols {
		return nil, fmt.Errorf("wire: invalid fusion width %d", cols)
	}
	mask := binary.LittleEndian.Uint64(buf[16:])
	off := headerLen
	if len(buf) < off+4*cols {
		return nil, ErrTruncated
	}
	p.Nexts = make([]uint32, cols)
	for i := range p.Nexts {
		p.Nexts[i] = binary.LittleEndian.Uint32(buf[off:])
		off += 4
	}
	elemBytes := 4
	if p.DType == DTypeF16 {
		elemBytes = 2
	}
	for mask != 0 {
		mask &= mask - 1 // one block per set bit
		if len(buf) < off+8 {
			return nil, ErrTruncated
		}
		idx := binary.LittleEndian.Uint32(buf[off:])
		n := int(binary.LittleEndian.Uint32(buf[off+4:]))
		off += 8
		if n < 0 || len(buf) < off+elemBytes*n {
			return nil, ErrTruncated
		}
		data := make([]float32, n)
		if p.DType == DTypeF16 {
			for i := range data {
				data[i] = F16ToF32(binary.LittleEndian.Uint16(buf[off:]))
				off += 2
			}
		} else {
			for i := range data {
				data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
		}
		p.Blocks = append(p.Blocks, Block{Index: idx, Data: data})
	}
	return p, nil
}

// SparsePacket is a decoded key-value message (Algorithm 3).
type SparsePacket struct {
	Type     uint8
	WID      uint16
	TensorID uint32
	NextKey  uint32 // key of the sender's next non-zero value; InfKey if none
	Keys     []uint32
	Values   []float32
}

// InfKey is the "no more keys" sentinel for sparse packets.
const InfKey uint32 = 0xFFFFFFFF

const sparseHeaderLen = 16

// AppendSparsePacket encodes p, appending to dst.
func AppendSparsePacket(dst []byte, p *SparsePacket) []byte {
	if len(p.Keys) != len(p.Values) {
		panic("wire: keys/values length mismatch")
	}
	dst = append(dst, p.Type, 0)
	dst = binary.LittleEndian.AppendUint16(dst, p.WID)
	dst = binary.LittleEndian.AppendUint32(dst, p.TensorID)
	dst = binary.LittleEndian.AppendUint32(dst, p.NextKey)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Keys)))
	for _, k := range p.Keys {
		dst = binary.LittleEndian.AppendUint32(dst, k)
	}
	for _, v := range p.Values {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// DecodeSparsePacket parses an encoded sparse packet.
func DecodeSparsePacket(buf []byte) (*SparsePacket, error) {
	if len(buf) < sparseHeaderLen {
		return nil, ErrTruncated
	}
	p := &SparsePacket{
		Type:     buf[0],
		WID:      binary.LittleEndian.Uint16(buf[2:]),
		TensorID: binary.LittleEndian.Uint32(buf[4:]),
		NextKey:  binary.LittleEndian.Uint32(buf[8:]),
	}
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	off := sparseHeaderLen
	if len(buf) < off+8*n {
		return nil, ErrTruncated
	}
	p.Keys = make([]uint32, n)
	p.Values = make([]float32, n)
	for i := 0; i < n; i++ {
		p.Keys[i] = binary.LittleEndian.Uint32(buf[off:])
		off += 4
	}
	for i := 0; i < n; i++ {
		p.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return p, nil
}

// PeekType returns the message type of an encoded packet without decoding
// it, or 0 for an empty buffer.
func PeekType(buf []byte) uint8 {
	if len(buf) == 0 {
		return 0
	}
	return buf[0]
}

// Immediate packs OmniReduce metadata into the 32-bit RDMA immediate
// layout described in §5: data type (2 bits), AllReduce opcode (2 bits),
// slot id (12 bits), and number of blocks (16 bits).
func Immediate(dtype, opcode uint8, slot uint16, numBlocks uint16) uint32 {
	return uint32(dtype&0x3)<<30 | uint32(opcode&0x3)<<28 |
		uint32(slot&0xFFF)<<16 | uint32(numBlocks)
}

// SplitImmediate is the inverse of Immediate.
func SplitImmediate(imm uint32) (dtype, opcode uint8, slot uint16, numBlocks uint16) {
	return uint8(imm >> 30), uint8(imm>>28) & 0x3, uint16(imm>>16) & 0xFFF, uint16(imm)
}
