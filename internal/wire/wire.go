// Package wire defines the binary message formats exchanged between
// OmniReduce workers and aggregators.
//
// The layout follows the paper's implementation (§5): a small fixed header
// carrying the metadata the RDMA implementation packs into a 32-bit
// immediate value (message type, opcode, slot id, block count), followed by
// the per-column next-offsets of the Block Fusion scheme (§3.2) and the
// fused block payloads. All integers are little-endian.
//
// A packet addresses one aggregation slot and carries up to Cols fused
// blocks, one per column of the two-dimensional block layout. Column i of
// a tensor with fusion width w holds the blocks {b : b mod w == i}. The
// "no more blocks" sentinel is column-specific (the paper's per-column
// infinity values): any next offset >= InfBase encodes infinity for column
// (offset - InfBase).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Message types.
const (
	// TypeData is a worker->aggregator packet carrying zero or more fused
	// blocks plus per-column next-offsets. A TypeData packet with no
	// blocks is the loss-recovery ack of Algorithm 2 (empty payload).
	TypeData uint8 = iota + 1
	// TypeResult is an aggregator->worker packet carrying aggregated
	// blocks and the global per-column next-offsets.
	TypeResult
	// TypeSparseData is a worker->aggregator key-value packet (Algorithm 3).
	TypeSparseData
	// TypeSparseResult is the aggregator->worker key-value result.
	TypeSparseResult
)

// InfBase is the smallest "infinity" next-offset. InfBase+i is the
// infinity sentinel for column i, preserving column identity as required
// by Block Fusion (§3.2, footnote 3).
const InfBase uint32 = 0xFFFFFF00

// Inf returns the infinity sentinel for column col.
func Inf(col int) uint32 { return InfBase + uint32(col) }

// IsInf reports whether a next-offset is an infinity sentinel.
func IsInf(v uint32) bool { return v >= InfBase }

// MaxCols is the largest supported fusion width (limited by the presence
// bitmask and the InfBase encoding).
const MaxCols = 64

// Block is one fused block: its global block index and its values.
type Block struct {
	Index uint32
	Data  []float32
}

// Packet is a decoded dense-format OmniReduce message (TypeData or
// TypeResult).
type Packet struct {
	Type      uint8
	Version   uint8  // round number mod 256 (Algorithm 2 extended)
	DType     uint8  // element encoding: DTypeF32 or DTypeF16
	Slot      uint16 // stream / slot-pool index
	WID       uint16 // sending worker, or aggregator shard for results
	TensorID  uint32 // identifies the collective operation
	BlockSize uint32 // elements per block
	Nexts     []uint32
	Blocks    []Block
}

// Cols reports the fusion width.
func (p *Packet) Cols() int { return len(p.Nexts) }

// Done reports whether every column's next offset is infinity, i.e. the
// sender has no further non-zero blocks (end of reduction for this slot).
func (p *Packet) Done() bool {
	for _, n := range p.Nexts {
		if !IsInf(n) {
			return false
		}
	}
	return len(p.Nexts) > 0
}

const headerLen = 24

// MaxPacketLen returns the encoded size of a packet with the given fusion
// width and block size when all columns carry data.
func MaxPacketLen(cols, blockSize int) int {
	return headerLen + 4*cols + cols*(4+4*blockSize)
}

// EncodedPacketSize returns the exact byte length AppendPacket would
// produce for p, without encoding. The protocol machines attach this size
// to every emitted packet so the discrete-event simulator charges the
// fabric for the real wire format rather than a hand-written approximation.
func EncodedPacketSize(p *Packet) int {
	n := headerLen + 4*len(p.Nexts)
	elemBytes := 4
	if p.DType == DTypeF16 {
		elemBytes = 2
	}
	for _, b := range p.Blocks {
		n += 8 + elemBytes*len(b.Data)
	}
	return n
}

// EncodedSparsePacketSize returns the exact byte length
// AppendSparsePacket would produce for p.
func EncodedSparsePacketSize(p *SparsePacket) int {
	return sparseHeaderLen + 8*len(p.Keys)
}

// ErrTruncated is returned when a buffer is too short for its declared
// contents.
var ErrTruncated = fmt.Errorf("wire: truncated packet")

// grow extends dst by n bytes, reallocating only when capacity is
// exhausted, and returns the extended slice plus the writable tail. With a
// caller-reused dst of sufficient capacity this is allocation-free, which
// is what keeps the steady-state encode path off the garbage collector.
func grow(dst []byte, n int) (ext, tail []byte) {
	if cap(dst)-len(dst) < n {
		nd := make([]byte, len(dst), 2*cap(dst)+n)
		copy(nd, dst)
		dst = nd
	}
	ext = dst[:len(dst)+n]
	return ext, ext[len(dst):]
}

// putF32Slice writes src as little-endian float32 bits into dst, which
// must hold at least 4*len(src) bytes. The 8-element unrolling replaces
// the former per-element append loop: one bounds check per 32 bytes and
// no slice-header churn.
func putF32Slice(dst []byte, src []float32) {
	for len(src) >= 8 {
		d := dst[:32]
		binary.LittleEndian.PutUint32(d[0:], math.Float32bits(src[0]))
		binary.LittleEndian.PutUint32(d[4:], math.Float32bits(src[1]))
		binary.LittleEndian.PutUint32(d[8:], math.Float32bits(src[2]))
		binary.LittleEndian.PutUint32(d[12:], math.Float32bits(src[3]))
		binary.LittleEndian.PutUint32(d[16:], math.Float32bits(src[4]))
		binary.LittleEndian.PutUint32(d[20:], math.Float32bits(src[5]))
		binary.LittleEndian.PutUint32(d[24:], math.Float32bits(src[6]))
		binary.LittleEndian.PutUint32(d[28:], math.Float32bits(src[7]))
		dst = dst[32:]
		src = src[8:]
	}
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}

// getF32Slice fills dst from little-endian float32 bits in src, which
// must hold at least 4*len(dst) bytes.
func getF32Slice(dst []float32, src []byte) {
	for len(dst) >= 8 {
		s := src[:32]
		dst[0] = math.Float32frombits(binary.LittleEndian.Uint32(s[0:]))
		dst[1] = math.Float32frombits(binary.LittleEndian.Uint32(s[4:]))
		dst[2] = math.Float32frombits(binary.LittleEndian.Uint32(s[8:]))
		dst[3] = math.Float32frombits(binary.LittleEndian.Uint32(s[12:]))
		dst[4] = math.Float32frombits(binary.LittleEndian.Uint32(s[16:]))
		dst[5] = math.Float32frombits(binary.LittleEndian.Uint32(s[20:]))
		dst[6] = math.Float32frombits(binary.LittleEndian.Uint32(s[24:]))
		dst[7] = math.Float32frombits(binary.LittleEndian.Uint32(s[28:]))
		dst = dst[8:]
		src = src[32:]
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// putF16Slice writes src as little-endian binary16 into dst (2*len(src)
// bytes).
func putF16Slice(dst []byte, src []float32) {
	for i, v := range src {
		binary.LittleEndian.PutUint16(dst[2*i:], F16FromF32(v))
	}
}

// getF16Slice fills dst from little-endian binary16 in src (2*len(dst)
// bytes).
func getF16Slice(dst []float32, src []byte) {
	for i := range dst {
		dst[i] = F16ToF32(binary.LittleEndian.Uint16(src[2*i:]))
	}
}

// AppendPacket encodes p, appending to dst and returning the extended
// slice. The layout is:
//
//	[0]  type, [1] version, [2] cols, [3] dtype
//	[4]  slot uint16, [6] wid uint16
//	[8]  tensorID uint32, [12] blockSize uint32
//	[16] presentMask uint64
//	[24] nexts [cols]uint32
//	...  per present block, ascending column order:
//	     index uint32, length-in-elements uint32, data [length]float32
//
// The per-block length field covers the tensor's final block, which may be
// shorter than blockSize. Blocks must be supplied in strictly ascending
// column order (at most one block per column); AppendPacket panics
// otherwise, since the decoder recovers block boundaries from the presence
// mask in ascending bit order.
func AppendPacket(dst []byte, p *Packet) []byte {
	if len(p.Nexts) == 0 || len(p.Nexts) > MaxCols {
		panic(fmt.Sprintf("wire: invalid fusion width %d", len(p.Nexts)))
	}
	var mask uint64
	prevCol := -1
	for _, b := range p.Blocks {
		col := int(b.Index) % len(p.Nexts)
		if col <= prevCol {
			panic(fmt.Sprintf("wire: blocks must be in ascending column order (col %d after %d)", col, prevCol))
		}
		prevCol = col
		mask |= 1 << uint(col)
	}
	// Reserve the whole encoding up front, then write by offset: one grow,
	// bulk payload copies, no per-element appends.
	dst, w := grow(dst, EncodedPacketSize(p))
	w[0] = p.Type
	w[1] = p.Version
	w[2] = uint8(len(p.Nexts))
	w[3] = p.DType
	binary.LittleEndian.PutUint16(w[4:], p.Slot)
	binary.LittleEndian.PutUint16(w[6:], p.WID)
	binary.LittleEndian.PutUint32(w[8:], p.TensorID)
	binary.LittleEndian.PutUint32(w[12:], p.BlockSize)
	binary.LittleEndian.PutUint64(w[16:], mask)
	off := headerLen
	for _, n := range p.Nexts {
		binary.LittleEndian.PutUint32(w[off:], n)
		off += 4
	}
	for _, b := range p.Blocks {
		binary.LittleEndian.PutUint32(w[off:], b.Index)
		binary.LittleEndian.PutUint32(w[off+4:], uint32(len(b.Data)))
		off += 8
		if p.DType == DTypeF16 {
			putF16Slice(w[off:], b.Data)
			off += 2 * len(b.Data)
		} else {
			putF32Slice(w[off:], b.Data)
			off += 4 * len(b.Data)
		}
	}
	return dst
}

// DecodePacket parses an encoded dense packet. Block data slices are
// copied out of buf, so buf may be reused by the caller afterwards.
//
// Allocation-sensitive callers should use DecodePacketInto with a
// recycled packet and scratch arena instead; DecodePacket is the
// convenience form that allocates fresh storage per call.
func DecodePacket(buf []byte) (*Packet, error) {
	p := &Packet{}
	if _, err := DecodePacketInto(p, nil, buf); err != nil {
		return nil, err
	}
	return p, nil
}

// emptyF32 backs zero-length block payloads so decoded empty blocks
// compare equal to encoder-side empty (non-nil) slices.
var emptyF32 = make([]float32, 0)

// DecodePacketInto parses an encoded dense packet into the caller-owned
// packet p, carving every block payload out of the single scratch arena
// (grown only when too small) and returning the arena for reuse. All prior
// contents of p and scratch are overwritten; nothing from a previous
// decode survives into the result.
//
// Ownership: on success, p's Nexts/Blocks slices and every Block.Data
// alias p's recycled storage and the returned arena. They remain valid
// until the next DecodePacketInto call with the same p or arena, so
// consumers must finish with (or copy out of) the packet before recycling
// it. buf itself is not retained and may be released immediately.
func DecodePacketInto(p *Packet, scratch []float32, buf []byte) ([]float32, error) {
	if len(buf) < headerLen {
		return scratch, ErrTruncated
	}
	p.Type = buf[0]
	p.Version = buf[1]
	p.DType = buf[3]
	p.Slot = binary.LittleEndian.Uint16(buf[4:])
	p.WID = binary.LittleEndian.Uint16(buf[6:])
	p.TensorID = binary.LittleEndian.Uint32(buf[8:])
	p.BlockSize = binary.LittleEndian.Uint32(buf[12:])
	p.Nexts = p.Nexts[:0]
	p.Blocks = p.Blocks[:0]
	if p.DType > DTypeF16 {
		return scratch, fmt.Errorf("wire: unknown dtype %d", p.DType)
	}
	cols := int(buf[2])
	if cols == 0 || cols > MaxCols {
		return scratch, fmt.Errorf("wire: invalid fusion width %d", cols)
	}
	mask := binary.LittleEndian.Uint64(buf[16:])
	off := headerLen
	if len(buf) < off+4*cols {
		return scratch, ErrTruncated
	}
	for i := 0; i < cols; i++ {
		p.Nexts = append(p.Nexts, binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	elemBytes := 4
	if p.DType == DTypeF16 {
		elemBytes = 2
	}

	// First pass: validate the block structure and total the element
	// counts before touching the arena. Element counts come off the wire
	// as uint32, so all comparisons stay in uint64 — a hostile length
	// cannot overflow int arithmetic on any platform, and nothing is
	// allocated for a packet that fails validation.
	total := 0
	for m, o := mask, off; m != 0; m &= m - 1 {
		if len(buf) < o+8 {
			return scratch, ErrTruncated
		}
		n := uint64(binary.LittleEndian.Uint32(buf[o+4:]))
		o += 8
		if n > uint64(len(buf)-o)/uint64(elemBytes) {
			return scratch, ErrTruncated
		}
		o += elemBytes * int(n)
		total += int(n)
	}
	if cap(scratch) < total {
		scratch = make([]float32, total)
	}
	scratch = scratch[:cap(scratch)]

	// Second pass: decode payloads into disjoint arena carvings. The
	// arena no longer moves, so earlier blocks stay valid.
	used := 0
	for ; mask != 0; mask &= mask - 1 {
		idx := binary.LittleEndian.Uint32(buf[off:])
		n := int(binary.LittleEndian.Uint32(buf[off+4:]))
		off += 8
		data := emptyF32
		if n > 0 {
			data = scratch[used : used+n : used+n]
			used += n
		}
		if p.DType == DTypeF16 {
			getF16Slice(data, buf[off:])
			off += 2 * n
		} else {
			getF32Slice(data, buf[off:])
			off += 4 * n
		}
		p.Blocks = append(p.Blocks, Block{Index: idx, Data: data})
	}
	return scratch, nil
}

// SparsePacket is a decoded key-value message (Algorithm 3).
type SparsePacket struct {
	Type     uint8
	WID      uint16
	TensorID uint32
	NextKey  uint32 // key of the sender's next non-zero value; InfKey if none
	Keys     []uint32
	Values   []float32
}

// InfKey is the "no more keys" sentinel for sparse packets.
const InfKey uint32 = 0xFFFFFFFF

const sparseHeaderLen = 16

// AppendSparsePacket encodes p, appending to dst.
func AppendSparsePacket(dst []byte, p *SparsePacket) []byte {
	if len(p.Keys) != len(p.Values) {
		panic("wire: keys/values length mismatch")
	}
	dst, w := grow(dst, EncodedSparsePacketSize(p))
	w[0] = p.Type
	w[1] = 0
	binary.LittleEndian.PutUint16(w[2:], p.WID)
	binary.LittleEndian.PutUint32(w[4:], p.TensorID)
	binary.LittleEndian.PutUint32(w[8:], p.NextKey)
	binary.LittleEndian.PutUint32(w[12:], uint32(len(p.Keys)))
	off := sparseHeaderLen
	for _, k := range p.Keys {
		binary.LittleEndian.PutUint32(w[off:], k)
		off += 4
	}
	putF32Slice(w[off:], p.Values)
	return dst
}

// DecodeSparsePacket parses an encoded sparse packet, allocating fresh
// key/value storage. Allocation-sensitive callers should reuse a packet
// via DecodeSparsePacketInto.
func DecodeSparsePacket(buf []byte) (*SparsePacket, error) {
	p := &SparsePacket{}
	if err := DecodeSparsePacketInto(p, buf); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeSparsePacketInto parses an encoded sparse packet into the
// caller-owned p, reusing its Keys/Values storage. All prior contents of p
// are overwritten. The declared pair count is validated against the
// remaining buffer length in uint64 (it arrives as a uint32, so a hostile
// value cannot overflow int arithmetic on 32-bit platforms) before any
// storage is grown. buf is not retained.
func DecodeSparsePacketInto(p *SparsePacket, buf []byte) error {
	if len(buf) < sparseHeaderLen {
		return ErrTruncated
	}
	p.Type = buf[0]
	p.WID = binary.LittleEndian.Uint16(buf[2:])
	p.TensorID = binary.LittleEndian.Uint32(buf[4:])
	p.NextKey = binary.LittleEndian.Uint32(buf[8:])
	p.Keys = p.Keys[:0]
	p.Values = p.Values[:0]
	n64 := uint64(binary.LittleEndian.Uint32(buf[12:]))
	if n64 > uint64(len(buf)-sparseHeaderLen)/8 {
		return ErrTruncated
	}
	n := int(n64)
	off := sparseHeaderLen
	if cap(p.Keys) < n {
		p.Keys = make([]uint32, n)
	}
	p.Keys = p.Keys[:n]
	for i := 0; i < n; i++ {
		p.Keys[i] = binary.LittleEndian.Uint32(buf[off:])
		off += 4
	}
	if cap(p.Values) < n {
		p.Values = make([]float32, n)
	}
	p.Values = p.Values[:n]
	getF32Slice(p.Values, buf[off:])
	return nil
}

// PeekType returns the message type of an encoded packet without decoding
// it, or 0 for an empty buffer.
func PeekType(buf []byte) uint8 {
	if len(buf) == 0 {
		return 0
	}
	return buf[0]
}

// PeekSlot returns the slot of an encoded dense packet (TypeData or
// TypeResult) without decoding it. It is the aggregator driver's shard
// router: all state the aggregator machine keeps for dense traffic is
// keyed by slot, so slot identity is all that is needed to partition
// packets across shards without breaking per-slot ordering.
func PeekSlot(buf []byte) (uint16, bool) {
	if len(buf) < 6 {
		return 0, false
	}
	if t := buf[0]; t != TypeData && t != TypeResult {
		return 0, false
	}
	return binary.LittleEndian.Uint16(buf[4:]), true
}

// Immediate packs OmniReduce metadata into the 32-bit RDMA immediate
// layout described in §5: data type (2 bits), AllReduce opcode (2 bits),
// slot id (12 bits), and number of blocks (16 bits).
func Immediate(dtype, opcode uint8, slot uint16, numBlocks uint16) uint32 {
	return uint32(dtype&0x3)<<30 | uint32(opcode&0x3)<<28 |
		uint32(slot&0xFFF)<<16 | uint32(numBlocks)
}

// SplitImmediate is the inverse of Immediate.
func SplitImmediate(imm uint32) (dtype, opcode uint8, slot uint16, numBlocks uint16) {
	return uint8(imm >> 30), uint8(imm>>28) & 0x3, uint16(imm>>16) & 0xFFF, uint16(imm)
}
