package wire

import (
	"strings"
	"testing"
)

func TestControlRoundTrip(t *testing.T) {
	cases := []ControlPacket{
		{Type: TypeJobOpen, WID: 3, TensorID: 7 << 20, Workers: 8, Tenant: "prod", Job: "ranker"},
		{Type: TypeJobAccept, TensorID: 7 << 20},
		{Type: TypeJobReject, Reason: ReasonQuota, TensorID: 7 << 20},
		{Type: TypeJobClose, WID: 1, TensorID: 9 << 20, Tenant: "t", Job: "j"},
		{Type: TypeOpReject, Reason: ReasonDraining, TensorID: 7<<20 | 42},
		{Type: TypeJobOpen, TensorID: 1 << 20, Workers: 1, Tenant: "", Job: ""},
		{Type: TypeJobOpen, WID: 65535, TensorID: 0xFFF << 20, Workers: 65535,
			Tenant: strings.Repeat("t", MaxControlName), Job: strings.Repeat("j", MaxControlName)},
	}
	for _, c := range cases {
		enc := AppendControl(nil, &c)
		if len(enc) != EncodedControlSize(&c) {
			t.Fatalf("type %d: encoded %d bytes, EncodedControlSize says %d", c.Type, len(enc), EncodedControlSize(&c))
		}
		if !IsControlType(PeekType(enc)) {
			t.Fatalf("type %d: PeekType %d not a control type", c.Type, PeekType(enc))
		}
		if wid, ok := PeekWID(enc); !ok || wid != c.WID {
			t.Fatalf("type %d: PeekWID = %d, %v; want %d", c.Type, wid, ok, c.WID)
		}
		got, err := DecodeControl(enc)
		if err != nil {
			t.Fatalf("type %d: DecodeControl: %v", c.Type, err)
		}
		if *got != c {
			t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", *got, c)
		}
	}
}

func TestControlDecodeErrors(t *testing.T) {
	full := AppendControl(nil, &ControlPacket{
		Type: TypeJobOpen, WID: 1, TensorID: 5 << 20, Workers: 4, Tenant: "prod", Job: "ranker",
	})
	// Truncation anywhere inside the packet must error, never panic.
	for n := 0; n < len(full); n++ {
		if _, err := DecodeControl(full[:n]); err == nil {
			t.Fatalf("DecodeControl accepted %d/%d bytes", n, len(full))
		}
	}
	// Non-control types are refused.
	notCtrl := append([]byte(nil), full...)
	notCtrl[0] = TypeData
	if _, err := DecodeControl(notCtrl); err == nil {
		t.Fatal("DecodeControl accepted a data packet")
	}
}

func TestAppendControlNameTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized name")
		}
	}()
	AppendControl(nil, &ControlPacket{Type: TypeJobOpen, Tenant: strings.Repeat("x", MaxControlName+1)})
}

func TestControlTypesDisjointFromData(t *testing.T) {
	for _, dt := range []uint8{TypeData, TypeResult, TypeSparseData, TypeSparseResult} {
		if IsControlType(dt) {
			t.Fatalf("data type %d classified as control", dt)
		}
	}
}
