package wire

import "testing"

// Allocation regression tests for the steady-state datapath: encoding into
// a reused buffer and decoding into a recycled packet + scratch arena must
// not allocate at all. A regression here reintroduces per-packet GC
// pressure on every live worker and aggregator.
//
// Skipped under the race detector, whose instrumentation allocates.

func benchPacket() *Packet {
	p := &Packet{Type: TypeData, Version: 3, Slot: 2, WID: 1, TensorID: 7,
		BlockSize: 256, Nexts: []uint32{8, Inf(1), 10, 11}}
	for c := 0; c < 4; c++ {
		data := make([]float32, 256)
		for i := range data {
			data[i] = float32(c*256 + i)
		}
		p.Blocks = append(p.Blocks, Block{Index: uint32(c), Data: data})
	}
	return p
}

func TestAppendPacketZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	p := benchPacket()
	buf := AppendPacket(nil, p)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendPacket(buf[:0], p)
	})
	if allocs != 0 {
		t.Fatalf("AppendPacket into reused buffer: %v allocs/op, want 0", allocs)
	}
}

func TestDecodePacketIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	buf := AppendPacket(nil, benchPacket())
	var p Packet
	var scratch []float32
	var err error
	// Warm the recycled state once so steady state is measured.
	if scratch, err = DecodePacketInto(&p, scratch, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if scratch, err = DecodePacketInto(&p, scratch, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodePacketInto with recycled state: %v allocs/op, want 0", allocs)
	}
}

func TestAppendSparsePacketZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	p := &SparsePacket{Type: TypeSparseData, WID: 1, TensorID: 2, NextKey: 9}
	for i := 0; i < 256; i++ {
		p.Keys = append(p.Keys, uint32(2*i))
		p.Values = append(p.Values, float32(i))
	}
	buf := AppendSparsePacket(nil, p)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendSparsePacket(buf[:0], p)
	})
	if allocs != 0 {
		t.Fatalf("AppendSparsePacket into reused buffer: %v allocs/op, want 0", allocs)
	}
}

func TestDecodeSparsePacketIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	src := &SparsePacket{Type: TypeSparseData, NextKey: 9}
	for i := 0; i < 256; i++ {
		src.Keys = append(src.Keys, uint32(2*i))
		src.Values = append(src.Values, float32(i))
	}
	buf := AppendSparsePacket(nil, src)
	var p SparsePacket
	if err := DecodeSparsePacketInto(&p, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeSparsePacketInto(&p, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeSparsePacketInto with recycled state: %v allocs/op, want 0", allocs)
	}
}
