package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/tensor"
)

// Tests for overlapping collectives (AllReduceAsync): the DDP
// gradient-bucket pipelining pattern, where several tensors are in flight
// per worker at once.

func runAsyncBuckets(t *testing.T, c *cluster, buckets [][][]float32) {
	t.Helper()
	workers := len(c.workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Start every bucket before waiting on any: all in flight.
			pendings := make([]*Pending, len(buckets))
			for b := range buckets {
				p, err := c.workers[w].AllReduceAsync(buckets[b][w])
				if err != nil {
					errs[w] = err
					return
				}
				pendings[b] = p
			}
			for _, p := range pendings {
				if err := p.Wait(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("async buckets timed out")
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

func TestAllReduceAsyncOverlappingBuckets(t *testing.T) {
	cfg := Config{Workers: 3, Reliable: true, Streams: 2, BlockSize: 32}
	c := startCluster(t, cfg, 0, 71)
	const nBuckets = 6
	buckets := make([][][]float32, nBuckets)
	wants := make([][]float32, nBuckets)
	for b := range buckets {
		buckets[b] = randomInputs(2_000+97*b, 3, 0.7, int64(b)*13)
		wants[b] = expectedSum(buckets[b])
	}
	runAsyncBuckets(t, c, buckets)
	for b := range buckets {
		checkResult(t, buckets[b], wants[b])
	}
}

func TestAllReduceAsyncOverlappingLossy(t *testing.T) {
	cfg := lossyConfig(2)
	c := startCluster(t, cfg, 0.03, 73)
	const nBuckets = 4
	buckets := make([][][]float32, nBuckets)
	wants := make([][]float32, nBuckets)
	for b := range buckets {
		buckets[b] = randomInputs(1_500, 2, 0.6, int64(b)*17)
		wants[b] = expectedSum(buckets[b])
	}
	runAsyncBuckets(t, c, buckets)
	for b := range buckets {
		checkResult(t, buckets[b], wants[b])
	}
}

func TestAllReduceAsyncManySmallBuckets(t *testing.T) {
	// Far more overlapping tensors than the archive depth, issued in
	// waves, to exercise archive eviction and the maxFinished guard.
	cfg := Config{Workers: 2, Reliable: true, Streams: 1, BlockSize: 8}
	c := startCluster(t, cfg, 0, 79)
	for wave := 0; wave < 3; wave++ {
		const nBuckets = 24
		buckets := make([][][]float32, nBuckets)
		wants := make([][]float32, nBuckets)
		for b := range buckets {
			buckets[b] = randomInputs(64, 2, 0.5, int64(wave*100+b))
			wants[b] = expectedSum(buckets[b])
		}
		runAsyncBuckets(t, c, buckets)
		for b := range buckets {
			checkResult(t, buckets[b], wants[b])
		}
	}
}

func TestAllReduceAsyncEmptyTensor(t *testing.T) {
	cfg := Config{Workers: 1, Reliable: true}
	c := startCluster(t, cfg, 0, 81)
	p, err := c.workers[0].AllReduceAsync(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncAfterClose(t *testing.T) {
	cfg := Config{Workers: 1, Reliable: true}
	c := startCluster(t, cfg, 0, 83)
	c.workers[0].Close()
	time.Sleep(20 * time.Millisecond) // let the pump observe the close
	if _, err := c.workers[0].AllReduceAsync(make([]float32, 8)); err == nil {
		t.Fatal("expected error starting op on closed worker")
	}
}

func TestPeekTensorID(t *testing.T) {
	if _, ok := peekTensorID(nil); ok {
		t.Fatal("empty buffer accepted")
	}
	if _, ok := peekTensorID([]byte{99, 0, 0, 0}); ok {
		t.Fatal("unknown type accepted")
	}
	if _, ok := peekTensorID([]byte{1, 0, 0}); ok {
		t.Fatal("short dense packet accepted")
	}
}

func TestAsyncMixedSparseAndDense(t *testing.T) {
	// A sparse (Algorithm 3) collective and dense collectives in flight
	// concurrently: tensor-ID routing must keep them separate.
	cfg := Config{Workers: 2, Reliable: true, BlockSize: 16}
	c := startCluster(t, cfg, 0, 91)
	dense := randomInputs(3_000, 2, 0.5, 92)
	wantDense := expectedSum(dense)
	sparseIns := []*tensor.COO{randomCOO(1_000, 80, rand.New(rand.NewSource(93))), randomCOO(1_000, 80, rand.New(rand.NewSource(94)))}
	wantSparse := expectedSparseSum(sparseIns)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	sparseOuts := make([]*tensor.COO, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Issue the dense op first, then the sparse op, then wait —
			// both are outstanding simultaneously.
			p, err := c.workers[w].AllReduceAsync(dense[w])
			if err != nil {
				errs[w] = err
				return
			}
			sparseOuts[w], err = c.workers[w].AllReduceSparse(sparseIns[w])
			if err != nil {
				errs[w] = err
				return
			}
			errs[w] = p.Wait()
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("mixed ops timed out")
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	checkResult(t, dense, wantDense)
	for w, out := range sparseOuts {
		if !out.ToDense().ApproxEqual(wantSparse, 1e-4) {
			t.Fatalf("worker %d sparse mismatch", w)
		}
	}
}
