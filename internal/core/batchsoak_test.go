package core

import (
	"os"
	"testing"
	"time"

	"omnireduce/internal/obs"
	"omnireduce/internal/transport"
)

// TestBatchedUDPSoakUnderChaos soaks the batched UDP datapath under
// sustained chaos injection: real loopback sockets (recvmmsg/sendmmsg on
// the fast path) behind a ChaosFabric dropping, duplicating, and
// reordering datagrams, with Algorithm 2's retransmission repairing the
// damage, verified collective after collective until the deadline. The
// edge cases this hammers are exactly the batch boundaries — short
// recvmmsg returns while loss thins the socket queue, partial sendmmsg
// acceptance under backpressure, duplicated and delayed copies landing
// mid-batch — plus opState reuse across hundreds of collectives on the
// same connections.
//
// Clean exit criteria: every collective sums correctly, the pool-leak
// audit settles to zero (no pooled buffer stranded in a batch ring,
// pending queue, or chaos delay timer), and no stall-watchdog postmortem
// fires. Under -race the soak runs the tier's full 30 seconds.
func TestBatchedUDPSoakUnderChaos(t *testing.T) {
	soak := 8 * time.Second
	if raceEnabled {
		soak = 30 * time.Second
	}
	if testing.Short() {
		soak = 2 * time.Second
	}

	audit := obs.StartLeakAudit()
	pmDir := t.TempDir()
	cfg := Config{
		Workers:           3,
		Aggregators:       []int{3},
		Reliable:          false,
		BlockSize:         32,
		FusionWidth:       4,
		OpQueueLen:        256,
		RetransmitTimeout: 25 * time.Millisecond,
		StallTimeout:      10 * time.Second,
		PostmortemDir:     pmDir,
	}
	cfg = cfg.withDefaults()

	// Continuous injection: a lossy storm phase alternating with a calmer
	// phase, the final (sticky) phase still injecting so chaos never goes
	// quiet for the rest of the soak.
	fabric := transport.NewChaosFabric(transport.Scenario{
		Seed: 97,
		Phases: []transport.Phase{
			{Packets: 200, Drop: 0.04, Dup: 0.03, Reorder: 0.12, ReorderSpan: 3,
				Delay: 2 * time.Millisecond, DelayP: 0.05},
			{Packets: 150, Drop: 0.01},
			{Drop: 0.02, Dup: 0.02, Reorder: 0.05, ReorderSpan: 2},
		},
	})

	// Build the UDP loopback cluster on ":0" ports, then wrap every
	// endpoint in the fabric.
	aggID := cfg.Aggregators[0]
	aggUDP, err := transport.NewUDP(aggID, map[int]string{aggID: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(fabric.Wrap(aggUDP), cfg)
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]*Worker, cfg.Workers)
	for i := range workers {
		wUDP, err := transport.NewUDP(i, map[int]string{
			i:     "127.0.0.1:0",
			aggID: aggUDP.Addr(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := aggUDP.RegisterPeer(i, wUDP.Addr()); err != nil {
			t.Fatal(err)
		}
		if workers[i], err = NewWorker(fabric.Wrap(wUDP), cfg); err != nil {
			t.Fatal(err)
		}
	}
	aggDone := make(chan error, 1)
	go func() { aggDone <- agg.Run() }()

	preRx := transport.BatchCounters().Get("udp_rx_batch_dgrams")
	deadline := time.Now().Add(soak)
	rounds := 0
	for time.Now().Before(deadline) {
		inputs := randomInputs(32*24, cfg.Workers, 0.7, int64(1000+rounds))
		want := expectedSum(inputs)
		errs := make([]error, cfg.Workers)
		done := make(chan int, cfg.Workers)
		for i, w := range workers {
			go func(i int, w *Worker) {
				errs[i] = w.AllReduce(inputs[i])
				done <- i
			}(i, w)
		}
		for range workers {
			<-done
		}
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d worker %d: %v", rounds, i, err)
			}
		}
		checkResult(t, inputs, want)
		rounds++
	}
	t.Logf("soak: %d verified collectives in %v, chaos events: %+v",
		rounds, soak, fabric.Counts())
	if rounds < 2 {
		t.Fatalf("soak completed only %d rounds", rounds)
	}
	if fabric.Counts().Total() == 0 {
		t.Fatal("chaos fabric injected nothing")
	}
	if transport.BatchingSupported() {
		if got := transport.BatchCounters().Get("udp_rx_batch_dgrams"); got == preRx {
			t.Fatal("soak moved no datagrams through the batched receive path")
		}
	}

	for _, w := range workers {
		w.Close()
	}
	aggUDP.Close()
	select {
	case err := <-aggDone:
		if err != nil {
			t.Fatalf("aggregator: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("aggregator did not shut down")
	}

	// Chaos delay timers deliver asynchronously; give the audit its
	// settlement window, then require a clean balance sheet.
	if leaks := audit.Settle(3 * time.Second); len(leaks) != 0 {
		t.Fatalf("soak leaked pooled buffers: %v", obs.LeaksErr(leaks))
	}
	// No stall-watchdog postmortem may have fired.
	entries, err := os.ReadDir(pmDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("stall watchdog captured %d postmortem(s) during the soak: %v", len(entries), entries)
	}
}
