package core

import (
	"container/heap"
	"fmt"
	"sync/atomic"

	"omnireduce/internal/tensor"
	"omnireduce/internal/wire"
)

// This file implements the sparse (key-value) block format extension of
// §3.3 / Algorithm 3. The input is a COO tensor; workers stream blocks of
// BlockSize key-value pairs in key order, each packet carrying the key of
// the sender's next non-zero value. The aggregator tracks every worker's
// next key and flushes the aggregated prefix below the global minimum to
// all workers, which assembles the full reduced tensor in key order.
//
// As in the paper, this mode targets reliable transports (the paper leaves
// a lossy realization as future work); AllReduceSparse returns an error if
// the configuration is not Reliable.
//
// Keys must be < 0xFFFFFFFE: 0xFFFFFFFF is the "no more keys" sentinel and
// 0xFFFFFFFE marks non-final chunks of the final flush.

const moreComing = wire.InfKey - 1

// AllReduceSparse sums COO tensors across workers and returns the global
// result (also in COO form, keys ascending). All workers must call it
// collectively. The result may be denser than any input.
func (w *Worker) AllReduceSparse(in *tensor.COO) (*tensor.COO, error) {
	if !w.cfg.Reliable {
		return nil, fmt.Errorf("core: sparse mode requires a reliable transport")
	}
	for _, k := range in.Keys {
		if uint32(k) >= moreComing {
			return nil, fmt.Errorf("core: sparse key %d out of range", k)
		}
	}
	tid, msgCh, err := w.beginOp()
	if err != nil {
		return nil, err
	}
	defer w.endOp(tid)
	bs := w.cfg.BlockSize
	agg := w.cfg.Aggregators[0]
	out := tensor.NewCOO(in.Dim)
	var encBuf []byte

	// Send the first block of pairs (Algorithm 3 lines 2-7).
	idx := 0
	send := func() error {
		hi := idx + bs
		if hi > in.Len() {
			hi = in.Len()
		}
		p := &wire.SparsePacket{
			Type:     wire.TypeSparseData,
			WID:      uint16(w.id),
			TensorID: tid,
			NextKey:  wire.InfKey,
		}
		for i := idx; i < hi; i++ {
			p.Keys = append(p.Keys, uint32(in.Keys[i]))
			p.Values = append(p.Values, in.Values[i])
		}
		idx = hi
		if idx < in.Len() {
			p.NextKey = uint32(in.Keys[idx])
		}
		atomic.AddInt64(&w.Stats.PacketsSent, 1)
		encBuf = wire.AppendSparsePacket(encBuf[:0], p)
		atomic.AddInt64(&w.Stats.BytesSent, int64(len(encBuf)))
		return w.conn.Send(agg, encBuf)
	}
	if err := send(); err != nil {
		return nil, err
	}

	for {
		select {
		case m := <-msgCh:
			if wire.PeekType(m.Data) != wire.TypeSparseResult {
				return nil, fmt.Errorf("core: worker %d: unexpected message type %d in sparse mode", w.id, wire.PeekType(m.Data))
			}
			p, err := wire.DecodeSparsePacket(m.Data)
			if err != nil {
				return nil, err
			}
			if p.TensorID != tid {
				continue // stale
			}
			for i, k := range p.Keys {
				out.Append(int32(k), p.Values[i])
			}
			if p.NextKey == wire.InfKey {
				return out, nil
			}
			// Send the next block when the global progress has reached
			// our next unsent key (Algorithm 3 line 10).
			if idx < in.Len() && p.NextKey != moreComing && int64(p.NextKey) >= int64(in.Keys[idx]) {
				if err := send(); err != nil {
					return nil, err
				}
			}
		case <-w.closed:
			w.mu.Lock()
			err := w.recvErr
			w.mu.Unlock()
			return nil, fmt.Errorf("core: worker %d receive: %w", w.id, err)
		}
	}
}

// sparseAgg is the aggregator-side state of Algorithm 3.
type sparseAgg struct {
	tensorID uint32
	values   map[uint32]float32
	pending  keyHeap // aggregated keys not yet flushed
	nextKey  []int64 // per-worker next key; -1 unknown, maxInt64 done
	sent     int64   // smallest unflushed key
	finished bool
}

type keyHeap []uint32

func (h keyHeap) Len() int            { return len(h) }
func (h keyHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h keyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *keyHeap) Push(x interface{}) { *h = append(*h, x.(uint32)) }
func (h *keyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (a *Aggregator) handleSparse(p *wire.SparsePacket) error {
	// Sparse operations are keyed by tensor ID, so several may be in
	// flight concurrently.
	sa := a.sparse[p.TensorID]
	if sa == nil {
		sa = &sparseAgg{
			tensorID: p.TensorID,
			values:   make(map[uint32]float32),
			nextKey:  make([]int64, a.cfg.Workers),
			sent:     0,
		}
		for i := range sa.nextKey {
			sa.nextKey[i] = -1
		}
		a.sparse[p.TensorID] = sa
	}
	if sa.finished {
		return nil
	}
	wid := int(p.WID)
	if wid >= a.cfg.Workers {
		return fmt.Errorf("core: sparse packet from unknown worker %d", p.WID)
	}
	// Merge pairs (Algorithm 3 line 25).
	for i, k := range p.Keys {
		if _, ok := sa.values[k]; !ok {
			heap.Push(&sa.pending, k)
		}
		sa.values[k] += p.Values[i]
	}
	if p.NextKey == wire.InfKey {
		sa.nextKey[wid] = nextDone
	} else {
		sa.nextKey[wid] = int64(p.NextKey)
	}
	min := minOf(sa.nextKey)
	if min == -1 {
		return nil // not all workers reported yet
	}
	if min == nextDone {
		// Final flush: everything pending, last chunk marked InfKey.
		if err := a.flushSparse(sa, nextDone); err != nil {
			return err
		}
		sa.finished = true
		delete(a.sparse, p.TensorID)
		return nil
	}
	if min > sa.sent {
		if err := a.flushSparse(sa, min); err != nil {
			return err
		}
		sa.sent = min
	}
	return nil
}

// flushSparse multicasts aggregated pairs with key < upTo, chunked into
// BlockSize-pair packets. upTo == nextDone flushes everything and marks
// the final chunk with InfKey.
func (a *Aggregator) flushSparse(sa *sparseAgg, upTo int64) error {
	bs := a.cfg.BlockSize
	var keys []uint32
	for sa.pending.Len() > 0 && int64(sa.pending[0]) < upTo {
		keys = append(keys, heap.Pop(&sa.pending).(uint32))
	}
	final := upTo == nextDone
	// Always send at least one packet: the flush is also the flow-control
	// clock for the workers (it announces the new global next key).
	for first := true; first || len(keys) > 0; first = false {
		n := len(keys)
		if n > bs {
			n = bs
		}
		p := &wire.SparsePacket{
			Type:     wire.TypeSparseResult,
			WID:      uint16(a.conn.LocalID() & 0xFFFF),
			TensorID: sa.tensorID,
			Keys:     keys[:n],
		}
		for _, k := range p.Keys {
			p.Values = append(p.Values, sa.values[k])
		}
		keys = keys[n:]
		switch {
		case len(keys) > 0:
			p.NextKey = moreComing
		case final:
			p.NextKey = wire.InfKey
		default:
			p.NextKey = uint32(upTo)
		}
		enc := wire.AppendSparsePacket(nil, p)
		for w := 0; w < a.cfg.Workers; w++ {
			if err := a.conn.Send(w, enc); err != nil {
				return err
			}
		}
	}
	return nil
}
