package core

import (
	"fmt"
	"time"

	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Sparse (key-value) mode, §3.3 / Algorithm 3. The streaming logic lives
// in protocol.SparseWorkerMachine (worker side) and
// protocol.AggregatorMachine (aggregator side, reached through the same
// Run loop as dense traffic); this file is the worker-side driver.

// AllReduceSparse sums COO tensors across workers and returns the global
// result (also in COO form, keys ascending). All workers must call it
// collectively. The result may be denser than any input.
//
// As in the paper, sparse mode targets reliable transports (the paper
// leaves a lossy realization as future work); AllReduceSparse returns an
// error if the configuration is not Reliable.
func (w *Worker) AllReduceSparse(in *tensor.COO) (*tensor.COO, error) {
	tid, st, err := w.beginOp()
	if err != nil {
		return nil, err
	}
	defer w.endOp(tid, st)
	return w.runAllReduceSparse(in, tid, st, w.cfg.proto(), w.id)
}

// runAllReduceSparse drives one sparse collective; pcfg and wid are the
// operation's job parameters (see runAllReduce).
func (w *Worker) runAllReduceSparse(in *tensor.COO, tid uint32, st *opState, pcfg protocol.Config, wid int) (*tensor.COO, error) {
	m, err := protocol.NewSparseWorkerMachine(pcfg, wid, tid, in)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	defer func() { obsOpLatency.Observe(int64(time.Since(start))) }()

	q, dec := st.q, st.dec

	var published protocol.WorkerStats
	sync := func() {
		cur := m.Stats()
		w.Stats.add(cur, published)
		if obs.Enabled() && cur.BlocksSent > published.BlocksSent {
			obs.Emit(obs.EvBlockSent, tid, cur.BlocksSent-published.BlocksSent)
		}
		published = cur
	}
	defer sync()

	dispatch := func() error {
		return st.tx.sendEmits(w.conn, st.eb.Emits())
	}

	st.eb.Reset()
	m.Start(&st.eb)
	sync()
	if err := dispatch(); err != nil {
		return nil, err
	}

	for !m.Done() {
		select {
		case msg := <-q.ch:
			if wire.PeekType(msg.Data) != wire.TypeSparseResult {
				rerr := rejectError(msg.Data)
				t := wire.PeekType(msg.Data)
				transport.PutBuf(msg.Data)
				if rerr != nil {
					return nil, fmt.Errorf("core: worker %d tensor %#x: %w", w.id, tid, rerr)
				}
				return nil, fmt.Errorf("core: worker %d: unexpected message type %d in sparse mode", w.id, t)
			}
			obs.Emit(obs.EvPacketRecvd, tid, int64(len(msg.Data)))
			p, err := dec.decodeSparse(msg.Data)
			if err != nil {
				return nil, err
			}
			transport.PutBuf(msg.Data)
			st.eb.Reset()
			err = m.HandlePacket(p, &st.eb)
			sync()
			if err != nil {
				return nil, err
			}
			if err := dispatch(); err != nil {
				return nil, err
			}
		case <-q.fail:
			return nil, fmt.Errorf("core: worker %d tensor %d: %w", w.id, tid, ErrOpBackpressure)
		case <-w.closed:
			w.mu.Lock()
			err := w.recvErr
			w.mu.Unlock()
			return nil, fmt.Errorf("core: worker %d receive: %w", w.id, err)
		}
	}
	return m.Result(), nil
}
