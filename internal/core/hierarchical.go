package core

import (
	"fmt"

	"omnireduce/internal/tensor"
)

// Hierarchical two-layer aggregation (§5, "Multi-GPU servers"): when a
// worker node hosts several GPUs, the paper reduces across local GPUs
// first (NCCL over NVLink), runs OmniReduce across nodes on the local
// sum, and broadcasts the global result back to the local GPUs. Here the
// local layer is an in-process reduction over the per-device tensors; the
// inter-node layer is the regular worker protocol.

// HierarchicalAllReduce sums every device tensor across all devices of
// all workers. locals holds this node's per-device tensors (all the same
// length); on return every tensor holds the global sum. The intra-node
// reduce and broadcast are performed in process; the inter-node exchange
// is one AllReduce on the node's combined gradient.
func (w *Worker) HierarchicalAllReduce(locals [][]float32) error {
	if len(locals) == 0 {
		return nil
	}
	n := len(locals[0])
	for d, l := range locals {
		if len(l) != n {
			return fmt.Errorf("core: device %d tensor length %d != %d", d, len(l), n)
		}
	}
	// Layer 1: intra-node reduction into device 0's buffer.
	sum := tensor.FromSlice(locals[0])
	for _, l := range locals[1:] {
		sum.Add(tensor.FromSlice(l))
	}
	// Layer 2: inter-node OmniReduce.
	if err := w.AllReduce(locals[0]); err != nil {
		return err
	}
	// Layer 1 again: intra-node broadcast of the global result.
	for _, l := range locals[1:] {
		copy(l, locals[0])
	}
	return nil
}
