package core

import (
	"errors"
	"testing"
	"time"

	"omnireduce/internal/obs"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// resultPacket encodes a minimal TypeResult packet for tensor tid, the
// kind of message the receive pump routes to a live dense operation.
func resultPacket(tid uint32) []byte {
	return wire.AppendPacket(nil, &wire.Packet{
		Type:      wire.TypeResult,
		Version:   1,
		TensorID:  tid,
		BlockSize: 16,
		Nexts:     []uint32{0},
	})
}

// TestEndOpDrainsQueuedMessages is the leak-regression test for the
// recvPump lifecycle race: messages delivered to an operation that ends
// before reading them must have their pooled buffers recycled by endOp's
// drain, not stranded in the queue. If the drain in opQueue.finish is
// removed (reintroducing the old delete-without-drain endOp), the leak
// audit below catches the unreturned buffers.
func TestEndOpDrainsQueuedMessages(t *testing.T) {
	audit := obs.StartLeakAudit()
	nw := transport.NewNetwork(1, 64)
	w, err := NewWorker(nw.Conn(0), Config{Workers: 1, Aggregators: []int{1}, Reliable: true})
	if err != nil {
		t.Fatal(err)
	}

	tid, st, err := w.beginOp()
	if err != nil {
		t.Fatal(err)
	}
	q := st.q
	// Queue messages the operation will never read. The buffers come
	// from the transport pool, as on the live receive path.
	enc := resultPacket(tid)
	for i := 0; i < 10; i++ {
		buf := transport.GetBuf(len(enc))
		copy(buf, enc)
		q.deliver(transport.Message{From: 0, Data: buf}, true, &w.pump)
	}
	if got := w.PumpSnapshot().Delivered; got != 10 {
		t.Fatalf("delivered = %d, want 10", got)
	}
	w.endOp(tid, st)

	// A message racing endOp (op already gone) must be recycled too.
	late := transport.GetBuf(len(enc))
	copy(late, enc)
	q.deliver(transport.Message{From: 0, Data: late}, true, &w.pump)
	if got := w.PumpSnapshot().StaleDrops; got != 1 {
		t.Fatalf("stale drops = %d, want 1", got)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if leaks := audit.Settle(2 * time.Second); len(leaks) != 0 {
		t.Fatalf("endOp leaked buffers: %v", obs.LeaksErr(leaks))
	}
}

// TestRecvPumpOverflowDoesNotStallOtherOps pins the head-of-line fix: in
// unreliable mode, a victim operation whose queue is full must not block
// the pump — its overflow is dropped and counted, and an unrelated
// collective sharing the worker must still complete.
func TestRecvPumpOverflowDoesNotStallOtherOps(t *testing.T) {
	cfg := Config{
		Workers:           1,
		Aggregators:       []int{1},
		Reliable:          false,
		OpQueueLen:        4,
		BlockSize:         16,
		RetransmitTimeout: 20 * time.Millisecond,
	}
	c := startCluster(t, cfg, 0, 1)
	w := c.workers[0]

	// A victim operation that never consumes its queue: register it
	// directly so no driver goroutine drains it.
	victim, victimSt, err := w.beginOp()
	if err != nil {
		t.Fatal(err)
	}
	defer w.endOp(victim, victimSt)

	// Blast results at the victim from an extra node until its 4-slot
	// queue overflows. With the old blocking pump this wedged recvPump
	// and every other collective on the worker forever.
	src := c.nw.AddNode(99)
	defer src.Close()
	enc := resultPacket(victim)
	deadline := time.Now().Add(5 * time.Second)
	for w.PumpSnapshot().OverflowDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim queue never overflowed")
		}
		if err := src.Send(0, enc); err != nil {
			t.Fatal(err)
		}
	}

	// The pump survived the overflow: a real collective still completes.
	inputs := randomInputs(256, cfg.Workers, 0.5, 42)
	want := expectedSum(inputs)
	c.allReduce(t, inputs)
	checkResult(t, inputs, want)
}

// TestReliableOverflowFailsOp verifies reliable-mode backpressure: a full
// queue fails that one operation with ErrOpBackpressure (dropping a
// reliable message would be an unrecoverable protocol violation, and
// blocking would stall every sibling collective).
func TestReliableOverflowFailsOp(t *testing.T) {
	nw := transport.NewNetwork(2, 64)
	w, err := NewWorker(nw.Conn(0), Config{
		Workers:     2,
		Aggregators: []int{5},
		Reliable:    true,
		OpQueueLen:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	nw.AddNode(5) // aggregator inbox exists but nobody serves it

	tid, st, err := w.beginOp()
	if err != nil {
		t.Fatal(err)
	}
	q := st.q
	defer w.endOp(tid, st)

	// Fill the queue past capacity straight through the pump's delivery
	// path, as a flood of results would.
	enc := resultPacket(tid)
	for i := 0; i < 3; i++ {
		buf := transport.GetBuf(len(enc))
		copy(buf, enc)
		q.deliver(transport.Message{From: 5, Data: buf}, true, &w.pump)
	}
	select {
	case <-q.fail:
	default:
		t.Fatal("reliable overflow did not trip the fail channel")
	}
	if got := w.PumpSnapshot().OverflowDrops; got != 1 {
		t.Fatalf("overflow drops = %d, want 1", got)
	}

	// A driver loop parked on this queue must surface ErrOpBackpressure.
	errCh := make(chan error, 1)
	go func() { errCh <- w.runAllReduce(make([]float32, 8), tid, st, w.cfg.proto(), w.id) }()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrOpBackpressure) {
			t.Fatalf("runAllReduce error = %v, want ErrOpBackpressure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runAllReduce did not observe the failed queue")
	}
}

// TestBadPacketsCountedAndRecycled checks that undecodable inbound
// messages are dropped with their buffers recycled and the drop counted.
func TestBadPacketsCountedAndRecycled(t *testing.T) {
	audit := obs.StartLeakAudit()
	nw := transport.NewNetwork(2, 16)
	w, err := NewWorker(nw.Conn(0), Config{Workers: 2, Aggregators: []int{5}, Reliable: true})
	if err != nil {
		t.Fatal(err)
	}
	src := nw.Conn(1)
	if err := src.Send(0, []byte{0xff, 1, 2}); err != nil { // unknown type
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.PumpSnapshot().BadPackets == 0 {
		if time.Now().After(deadline) {
			t.Fatal("bad packet never counted")
		}
		time.Sleep(time.Millisecond)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if leaks := audit.Settle(2 * time.Second); len(leaks) != 0 {
		t.Fatalf("bad packet leaked: %v", obs.LeaksErr(leaks))
	}
}

// TestAsyncCollectivesSurviveSlowSibling runs overlapping async
// collectives with a tiny queue in unreliable mode: retransmission-driven
// duplicate floods may overflow individual queues, but every operation
// must still converge to the right sums.
func TestAsyncCollectivesSurviveSlowSibling(t *testing.T) {
	cfg := Config{
		Workers:           2,
		Aggregators:       []int{2},
		Reliable:          false,
		OpQueueLen:        8,
		BlockSize:         32,
		RetransmitTimeout: 10 * time.Millisecond,
	}
	c := startCluster(t, cfg, 0.05, 7)
	const buckets = 4
	inputs := make([][][]float32, buckets)
	wants := make([][]float32, buckets)
	for b := range inputs {
		inputs[b] = randomInputs(512, cfg.Workers, 0.7, int64(100+b))
		wants[b] = expectedSum(inputs[b])
	}
	pendings := make([][]*Pending, buckets)
	for b := range inputs {
		pendings[b] = make([]*Pending, cfg.Workers)
		for i, w := range c.workers {
			p, err := w.AllReduceAsync(inputs[b][i])
			if err != nil {
				t.Fatal(err)
			}
			pendings[b][i] = p
		}
	}
	for b := range pendings {
		for i, p := range pendings[b] {
			if err := p.Wait(); err != nil {
				t.Fatalf("bucket %d worker %d: %v", b, i, err)
			}
		}
		checkResult(t, inputs[b], wants[b])
	}
}
