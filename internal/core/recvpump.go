package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/transport"
)

// ErrOpBackpressure fails a collective whose inbound queue overflowed on
// a reliable transport. Dropping a reliable-mode message would silently
// violate the protocol's no-loss assumption (there are no retransmission
// timers to repair it), so the receive pump fails the one slow operation
// explicitly instead of either stalling every other in-flight collective
// behind it or wedging the protocol.
var ErrOpBackpressure = errors.New("core: operation receive queue overflow")

// opQueue is one in-flight collective's inbound message queue, the
// hand-off point between the worker's single receive pump and the
// per-operation driver goroutine.
//
// Its locking discipline fixes two receive-path bugs:
//
//   - Lifecycle race: the pump used to look the channel up under w.mu,
//     release the lock, then block on the send. endOp could delete the
//     operation in between, leaving the message — and its pooled buffer —
//     stranded forever in a channel nobody would read. Now delivery
//     checks `done` and enqueues under one mutex, and endOp marks done
//     under the same mutex before draining, so every message either
//     reaches a live reader or is recycled. Nothing is ever stranded.
//
//   - Head-of-line blocking: the blocking send also meant one slow
//     collective with a full queue stalled the pump, and with it every
//     other in-flight collective sharing the connection. Delivery is now
//     non-blocking: on overflow the message is dropped and counted
//     (unreliable mode — Algorithm 2's retransmission repairs it), or the
//     one offending operation is failed with ErrOpBackpressure (reliable
//     mode). The pump never blocks on any operation's queue.
// Queues outlive single collectives: a worker parks finished queues (as
// part of opState) on a free list and re-arms them with reset. The tid
// field makes reuse safe — the pump looks a queue up under w.mu but
// delivers without it, so a delivery can race the queue's reassignment to
// a new tensor; deliver rejects any message whose tensor ID is not the
// one the queue currently serves.
type opQueue struct {
	ch   chan transport.Message
	fail chan struct{} // closed on reliable-mode overflow
	// viewCh notifies the driver of membership view changes (capacity 1,
	// coalescing: only the newest view matters — see notifyView).
	viewCh chan protocol.View

	mu     sync.Mutex
	tid    uint32 // tensor this queue currently serves
	done   bool   // endOp ran; no further enqueues
	failed bool   // fail already closed
}

func newOpQueue(capacity int, tid uint32) *opQueue {
	return &opQueue{
		ch:     make(chan transport.Message, capacity),
		fail:   make(chan struct{}),
		viewCh: make(chan protocol.View, 1),
		tid:    tid,
	}
}

// notifyView hands a newly adopted view to the operation's driver without
// blocking: an unconsumed older notification is replaced (epochs are
// monotonic, so the newest view subsumes it). Safe to call from the
// receive pump.
func (q *opQueue) notifyView(v protocol.View) {
	for {
		select {
		case q.viewCh <- v:
			return
		default:
		}
		select {
		case <-q.viewCh:
		default:
		}
	}
}

// reset re-arms a finished queue for a new tensor. Only call between
// operations, after finish has run and before the queue is registered for
// the new tensor (the worker's free-list discipline guarantees no driver
// goroutine references the queue in that window). finish drained ch under
// the done flag, so the channel is empty; a tripped fail channel is
// replaced.
func (q *opQueue) reset(tid uint32) {
	q.mu.Lock()
	q.tid = tid
	q.done = false
	if q.failed {
		q.failed = false
		q.fail = make(chan struct{})
	}
	q.mu.Unlock()
}

// deliver hands one inbound message to the operation without blocking.
// It takes ownership of m.Data: the buffer is either enqueued for the
// operation's driver (which recycles it after decoding) or returned to
// the pool here.
func (q *opQueue) deliver(m transport.Message, reliable bool, pump *pumpCounters) {
	tid, _ := peekTensorID(m.Data)
	q.mu.Lock()
	if q.done || q.tid != tid {
		q.mu.Unlock()
		transport.PutBuf(m.Data)
		pump.staleDrops.Add(1)
		obsPumpStale.Inc()
		obs.Emit(obs.EvStaleDrop, tid, int64(len(m.Data)))
		return
	}
	select {
	case q.ch <- m:
		q.mu.Unlock()
		pump.delivered.Add(1)
		obsPumpDelivered.Inc()
		return
	default:
	}
	// Queue full. Never block the pump: drop, and in reliable mode fail
	// the operation (a reliable-mode drop is otherwise unrecoverable).
	if reliable && !q.failed {
		q.failed = true
		close(q.fail)
	}
	q.mu.Unlock()
	transport.PutBuf(m.Data)
	pump.overflowDrops.Add(1)
	obsPumpOverflow.Inc()
	obs.Emit(obs.EvOverflowDrop, tid, int64(len(m.Data)))
}

// finish marks the queue dead and recycles everything still enqueued.
// deliver checks done under q.mu before enqueueing, so after finish
// returns no pooled buffer remains in, or can ever enter, the queue.
func (q *opQueue) finish() {
	q.mu.Lock()
	q.done = true
	q.mu.Unlock()
	for {
		select {
		case m := <-q.ch:
			transport.PutBuf(m.Data)
		default:
			return
		}
	}
}

// pumpCounters tallies the receive pump's routing decisions.
type pumpCounters struct {
	delivered     atomic.Int64
	staleDrops    atomic.Int64
	overflowDrops atomic.Int64
	badPackets    atomic.Int64
}

// PumpStats is a point-in-time copy of the receive pump's counters.
type PumpStats struct {
	// Delivered is the number of messages routed to a live operation.
	Delivered int64
	// StaleDrops counts messages for finished or unknown tensors
	// (duplicate results replayed after an operation completed).
	StaleDrops int64
	// OverflowDrops counts messages dropped because an operation's queue
	// was full. In unreliable mode these are repaired by retransmission;
	// in reliable mode each one also failed its operation with
	// ErrOpBackpressure.
	OverflowDrops int64
	// BadPackets counts messages too short or of unknown type.
	BadPackets int64
}

func (p *pumpCounters) snapshot() PumpStats {
	return PumpStats{
		Delivered:     p.delivered.Load(),
		StaleDrops:    p.staleDrops.Load(),
		OverflowDrops: p.overflowDrops.Load(),
		BadPackets:    p.badPackets.Load(),
	}
}

// Counters exports the pump tallies as named metrics counters.
func (p PumpStats) Counters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("pump_delivered", p.Delivered)
	c.Add("pump_stale_drops", p.StaleDrops)
	c.Add("pump_overflow_drops", p.OverflowDrops)
	c.Add("pump_bad_packets", p.BadPackets)
	return c
}
