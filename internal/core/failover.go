package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Aggregator-side elastic membership: epoch enforcement on the admission
// gate, slot-state checkpoint streaming to standbys, and standby
// activation (failover takeover).
//
// The correctness backbone is the output-commit rule: a primary enqueues
// the checkpoint covering a round BEFORE the round's result emits. Any
// worker holding result r therefore implies checkpoint r is already in
// the standby's receive queue (per-pair FIFO), so an activated standby
// always knows at least as much as the most-advanced worker. If a
// checkpoint is nevertheless lost (UDP-linked standby, crash between
// frames), the machines' fast-forward resync recovers the one-round gap
// from the workers' own packets — see protocol.AggregatorMachine.

// ckKey identifies one stored checkpoint: the primary that produced it
// (a standby may receive streams from every primary), the shard within
// it, and the tensor-ID namespace it covers. Keying on the source is
// load-bearing — two primaries both legitimately checkpoint (shard 0,
// ns 0), and an activated standby must resume from the state of the
// node it replaces, not whichever primary wrote last.
type ckKey struct {
	from  int
	shard uint16
	ns    uint32
}

// encodeAggCheckpoint serializes a machine snapshot with gob (the DTOs
// are gob-friendly by construction: exported fields, no cycles).
func encodeAggCheckpoint(ck *protocol.AggCheckpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeAggCheckpoint is encodeAggCheckpoint's inverse.
func decodeAggCheckpoint(p []byte) (*protocol.AggCheckpoint, error) {
	ck := &protocol.AggCheckpoint{}
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(ck); err != nil {
		return nil, err
	}
	return ck, nil
}

// View returns the aggregator's current membership view (Epoch 0 =
// static legacy membership).
func (a *Aggregator) View() protocol.View {
	a.viewMu.Lock()
	defer a.viewMu.Unlock()
	return a.view.Clone()
}

func (a *Aggregator) curEpoch() uint32 {
	a.viewMu.Lock()
	defer a.viewMu.Unlock()
	return a.view.Epoch
}

// Standby reports whether the aggregator is still passive (not yet
// activated into a view that lists it).
func (a *Aggregator) Standby() bool {
	a.viewMu.Lock()
	defer a.viewMu.Unlock()
	return a.standby
}

// Activate installs a newer view on this aggregator and announces it to
// every member: the failover takeover step. On a standby it flips the
// node active — its stored checkpoints restore lazily as each
// namespace's first data packet arrives (every checkpoint from the dead
// primary is FIFO-ahead of any post-rebind worker data, so the store is
// complete by then). On an already-active aggregator it just adopts the
// new membership. Views not newer than the current one are refused.
//
// The announcement fans out to the view's workers and its other
// aggregators (survivors must adopt the epoch too, or they would refuse
// the workers' re-bound connections forever). Send errors are reported
// but non-fatal: any member that missed the announcement learns the view
// from the first stale-epoch refusal instead.
func (a *Aggregator) Activate(v protocol.View) error {
	if err := v.Validate(); err != nil {
		return err
	}
	a.viewMu.Lock()
	if v.Epoch <= a.view.Epoch {
		cur := a.view.Epoch
		a.viewMu.Unlock()
		return fmt.Errorf("core: activate: view epoch %d not newer than current %d", v.Epoch, cur)
	}
	// Record which primary this node replaces: the node the outgoing view
	// listed at the position the new view gives us. Its checkpoints are
	// the ones our machines must restore from.
	if a.standby {
		self := a.conn.LocalID()
		for i, agg := range v.Aggregators {
			if agg == self && i < len(a.view.Aggregators) {
				a.restoreFrom = a.view.Aggregators[i]
			}
		}
	}
	a.view = v.Clone()
	a.standby = false
	a.viewMu.Unlock()
	a.enforce.Store(true)
	obsAggViewChanges.Inc()
	obs.Emit(obs.EvViewChange, 0, int64(v.Epoch))

	vp := packetFromView(wire.TypeView, v)
	buf := wire.AppendView(transport.GetBuf(wire.EncodedViewSize(vp))[:0], vp)
	var err error
	self := a.conn.LocalID()
	for _, wk := range v.Workers {
		if e := a.conn.Send(wk, buf); e != nil && err == nil {
			err = e
		}
	}
	for _, agg := range v.Aggregators {
		if agg == self {
			continue
		}
		if e := a.conn.Send(agg, buf); e != nil && err == nil {
			err = e
		}
	}
	transport.PutBuf(buf)
	return err
}

// storeCheckpoint retains the latest checkpoint per (source, shard,
// namespace). Only the newest per key matters: each frame is a complete
// snapshot, and per-pair FIFO delivery makes arrival order match
// production order.
func (a *Aggregator) storeCheckpoint(from int, f *wire.CheckpointFrame) {
	a.viewMu.Lock()
	if a.ckStore == nil {
		a.ckStore = make(map[ckKey][]byte)
	}
	a.ckStore[ckKey{from: from, shard: f.Shard, ns: f.NS}] = f.Payload
	a.viewMu.Unlock()
	obsAggCkStored.Inc()
}

// CheckpointsFrom reports how many checkpoint frames from primary node
// `from` this aggregator currently holds. Chaos harnesses use it to kill
// a primary only once its standby provably has state to take over from;
// orchestrators can use it to gate activation the same way.
func (a *Aggregator) CheckpointsFrom(from int) int {
	a.viewMu.Lock()
	defer a.viewMu.Unlock()
	n := 0
	for k := range a.ckStore {
		if k.from == from {
			n++
		}
	}
	return n
}

// takeCheckpoint consumes the stored checkpoint for (shard, ns) from the
// primary this node replaced at activation (restoreFrom). Consume-once:
// after the machine restores, later lookups must build fresh state, not
// resurrect the dead node's past. With no recorded predecessor (manual
// activation against an unknown prior view) any single matching source
// is accepted.
func (a *Aggregator) takeCheckpoint(shard int, ns uint32) []byte {
	a.viewMu.Lock()
	defer a.viewMu.Unlock()
	k := ckKey{from: a.restoreFrom, shard: uint16(shard), ns: ns}
	if p, ok := a.ckStore[k]; ok {
		delete(a.ckStore, k)
		return p
	}
	if a.restoreFrom < 0 {
		for kk, p := range a.ckStore {
			if kk.shard == uint16(shard) && kk.ns == ns {
				delete(a.ckStore, kk)
				return p
			}
		}
	}
	return nil
}

// sendCheckpoint snapshots ns's machine in ms and streams it to every
// checkpoint peer. Called after a machine call that produced emits and
// BEFORE those emits are transmitted (the output-commit rule). Best
// effort per peer: a dead standby must not take down the primary, and a
// lost frame is recovered by fast-forward resync.
func (a *Aggregator) sendCheckpoint(ms *machineSet, shard int, ns uint32) {
	m := ms.ms[ns]
	if m == nil {
		return
	}
	payload, err := encodeAggCheckpoint(m.Checkpoint())
	if err != nil {
		return
	}
	f := &wire.CheckpointFrame{Shard: uint16(shard), NS: ns, Epoch: a.curEpoch(), Payload: payload}
	buf := wire.AppendCheckpoint(transport.GetBuf(wire.EncodedCheckpointSize(f))[:0], f)
	for _, peer := range a.cfg.CheckpointPeers {
		_ = a.conn.Send(peer, buf)
	}
	transport.PutBuf(buf)
	obsAggCkSent.Inc()
	obs.Emit(obs.EvCheckpoint, ns, int64(len(payload)))
}

// restoreInto loads a stored checkpoint into a freshly built machine at
// first contact with its namespace (see machineSet.machineFor). A
// checkpoint that fails to decode or mismatches the namespace's worker
// count is discarded — the fresh machine then resyncs via fast-forward,
// which is the same path as a lost frame.
func (a *Aggregator) restoreInto(m *protocol.AggregatorMachine, shard int, ns uint32) {
	payload := a.takeCheckpoint(shard, ns)
	if payload == nil {
		return
	}
	ck, err := decodeAggCheckpoint(payload)
	if err != nil {
		return
	}
	if err := m.Restore(ck); err != nil {
		return
	}
	obsAggCkRestored.Inc()
}

// viewMsg consumes one view-plane message on the gate (the single Recv-
// consumer thread, which owns the epoch bindings). Always takes
// ownership of m.Data. Malformed view traffic is dropped — it is off the
// datapath and carries no buffer-pool obligations beyond the recycle.
func (g *admitGate) viewMsg(t uint8, m transport.Message) error {
	from := m.From
	switch t {
	case wire.TypeViewAck:
		vp, err := wire.DecodeView(m.Data)
		transport.PutBuf(m.Data)
		if err == nil {
			g.bound[from] = vp.Epoch
		}
		return nil
	case wire.TypeView:
		vp, err := wire.DecodeView(m.Data)
		transport.PutBuf(m.Data)
		if err != nil {
			return nil
		}
		v := viewFromPacket(vp)
		if v.Validate() != nil || v.Epoch <= g.a.curEpoch() {
			return nil
		}
		// Adopting a newer view re-announces it (Activate): harmless
		// fan-out amplification bounded by the aggregator count, and it
		// doubles as gossip for members the activator could not reach.
		err = g.a.Activate(v)
		if err != nil {
			return nil // lost announcements self-heal via refusals
		}
		return nil
	case wire.TypeCheckpoint:
		f, err := wire.DecodeCheckpoint(m.Data)
		transport.PutBuf(m.Data)
		if err == nil {
			g.a.storeCheckpoint(from, f)
		}
		return nil
	default:
		// TypeStaleEpoch at an aggregator is a stray reflection.
		transport.PutBuf(m.Data)
		return nil
	}
}

// refuseStaleEpoch answers a data packet from a connection bound to the
// wrong epoch with a typed TypeStaleEpoch refusal carrying the current
// view (never a silent drop: the refusal is also how the sender learns
// the view it missed).
func (g *admitGate) refuseStaleEpoch(to int, tid uint32) error {
	obsAggStaleRefusals.Inc()
	vp := packetFromView(wire.TypeStaleEpoch, g.a.View())
	vp.Reason = wire.ReasonStaleEpoch
	vp.TensorID = tid
	g.ctrlBuf = wire.AppendView(g.ctrlBuf[:0], vp)
	return g.a.conn.Send(to, g.ctrlBuf)
}
