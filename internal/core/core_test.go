package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"omnireduce/internal/sparsity"
	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
)

// cluster is an in-process OmniReduce deployment for tests.
type cluster struct {
	cfg      Config
	nw       *transport.Network
	workers  []*Worker
	aggs     []*Aggregator
	aggConns []transport.Conn
	aggWG    sync.WaitGroup
	aggErr   chan error
}

// startCluster builds N workers (node IDs 0..N-1) and the configured
// aggregators (node IDs N, N+1, ...) on a channel network.
func startCluster(t testing.TB, cfg Config, lossRate float64, seed int64) *cluster {
	t.Helper()
	cfg = cfg.withDefaults()
	if len(cfg.Aggregators) == 0 {
		cfg.Aggregators = []int{cfg.Workers}
	}
	c := &cluster{cfg: cfg, nw: transport.NewNetwork(cfg.Workers, 4096), aggErr: make(chan error, len(cfg.Aggregators))}
	for i, aggID := range cfg.Aggregators {
		var conn transport.Conn = c.nw.AddNode(aggID)
		if lossRate > 0 {
			conn = transport.NewLossy(conn, lossRate, lossRate/4, seed+int64(i)*7919)
		}
		agg, err := NewAggregator(conn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.aggs = append(c.aggs, agg)
		c.aggConns = append(c.aggConns, conn)
		c.aggWG.Add(1)
		go func(a *Aggregator) {
			defer c.aggWG.Done()
			if err := a.Run(); err != nil {
				c.aggErr <- err
			}
		}(agg)
	}
	for i := 0; i < cfg.Workers; i++ {
		var conn transport.Conn = c.nw.Conn(i)
		if lossRate > 0 {
			conn = transport.NewLossy(conn, lossRate, lossRate/4, seed+1000+int64(i)*104729)
		}
		w, err := NewWorker(conn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.workers = append(c.workers, w)
	}
	t.Cleanup(func() {
		for _, w := range c.workers {
			w.Close()
		}
		for _, conn := range c.aggConns {
			conn.Close()
		}
		c.aggWG.Wait()
		select {
		case err := <-c.aggErr:
			t.Errorf("aggregator error: %v", err)
		default:
		}
	})
	return c
}

// allReduce runs one collective across all workers and fails the test on
// error or timeout.
func (c *cluster) allReduce(t testing.TB, inputs [][]float32) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(c.workers))
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.AllReduce(inputs[i])
		}(i, w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("AllReduce timed out")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// expectedSum computes the reference reduction.
func expectedSum(inputs [][]float32) []float32 {
	out := make([]float32, len(inputs[0]))
	for _, in := range inputs {
		for i, v := range in {
			out[i] += v
		}
	}
	return out
}

func randomInputs(n, workers int, sparsity float64, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, workers)
	for w := range out {
		out[w] = make([]float32, n)
		for i := range out[w] {
			if rng.Float64() >= sparsity {
				out[w][i] = float32(rng.NormFloat64())
			}
		}
	}
	return out
}

func checkResult(t testing.TB, inputs [][]float32, want []float32) {
	t.Helper()
	for wid, got := range inputs {
		if len(got) != len(want) {
			t.Fatalf("worker %d: length %d != %d", wid, len(got), len(want))
		}
		for i := range want {
			d := float64(got[i]) - float64(want[i])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("worker %d element %d: got %v want %v", wid, i, got[i], want[i])
			}
		}
	}
}

func TestAllReduceBasic(t *testing.T) {
	cfg := Config{Workers: 2, Reliable: true, BlockSize: 4, FusionWidth: 2, Streams: 1}
	c := startCluster(t, cfg, 0, 1)
	inputs := [][]float32{
		{1, 0, 0, 0, 2, 2, 0, 0, 0, 0, 0, 0, 3, 0, 0, 1},
		{1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0},
	}
	want := expectedSum(inputs)
	c.allReduce(t, inputs)
	checkResult(t, inputs, want)
}

func TestAllReduceConfigurations(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		n        int
		sparsity float64
	}{
		{"2w-dense", Config{Workers: 2, Reliable: true}, 10_000, 0},
		{"2w-sparse90", Config{Workers: 2, Reliable: true}, 10_000, 0.9},
		{"4w-sparse99", Config{Workers: 4, Reliable: true}, 20_000, 0.99},
		{"8w-sparse50", Config{Workers: 8, Reliable: true}, 8_192, 0.5},
		{"3w-bs1", Config{Workers: 3, Reliable: true, BlockSize: 1}, 700, 0.8},
		{"3w-width1", Config{Workers: 3, Reliable: true, FusionWidth: 1}, 5_000, 0.7},
		{"3w-width64", Config{Workers: 3, Reliable: true, FusionWidth: 64, BlockSize: 16}, 9_000, 0.7},
		{"4w-manystreams", Config{Workers: 4, Reliable: true, Streams: 16}, 50_000, 0.9},
		{"2w-multiagg", Config{Workers: 2, Reliable: true, Streams: 8, Aggregators: []int{2, 3, 4}}, 30_000, 0.8},
		{"5w-allzero", Config{Workers: 5, Reliable: true}, 4_096, 1.0},
		{"2w-tinytensor", Config{Workers: 2, Reliable: true, BlockSize: 256}, 7, 0},
		{"2w-oddlen", Config{Workers: 2, Reliable: true, BlockSize: 8}, 1_001, 0.6},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := startCluster(t, tc.cfg, 0, int64(i))
			inputs := randomInputs(tc.n, tc.cfg.Workers, tc.sparsity, int64(i)*31)
			want := expectedSum(inputs)
			c.allReduce(t, inputs)
			checkResult(t, inputs, want)
		})
	}
}

func TestAllReduceSequentialTensors(t *testing.T) {
	cfg := Config{Workers: 3, Reliable: true, Streams: 2}
	c := startCluster(t, cfg, 0, 5)
	for round := 0; round < 5; round++ {
		inputs := randomInputs(5_000, 3, 0.8, int64(round))
		want := expectedSum(inputs)
		c.allReduce(t, inputs)
		checkResult(t, inputs, want)
	}
}

func TestAllReduceEmptyInput(t *testing.T) {
	cfg := Config{Workers: 2, Reliable: true}
	c := startCluster(t, cfg, 0, 1)
	if err := c.workers[0].AllReduce(nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSingleWorker(t *testing.T) {
	cfg := Config{Workers: 1, Reliable: true}
	c := startCluster(t, cfg, 0, 1)
	inputs := randomInputs(3_000, 1, 0.5, 9)
	orig := make([]float32, len(inputs[0]))
	copy(orig, inputs[0])
	c.allReduce(t, inputs)
	checkResult(t, inputs, orig)
}

func TestAllReduceZeroBlocksNotSent(t *testing.T) {
	// With very sparse data, the number of transmitted data blocks must be
	// near the number of non-zero blocks, not the total.
	cfg := Config{Workers: 2, Reliable: true, BlockSize: 64, Streams: 2, FusionWidth: 4}
	c := startCluster(t, cfg, 0, 2)
	inputs := randomInputs(64*1000, 2, 0.99, 3)
	var nonZeroBlocks int64
	for _, in := range inputs {
		bm := tensor.ComputeBitmap(tensor.FromSlice(in), 64)
		nonZeroBlocks += int64(bm.Count())
	}
	c.allReduce(t, inputs)
	var sent int64
	for _, w := range c.workers {
		sent += w.Stats.BlocksSent
	}
	// Bootstrap sends Streams*FusionWidth blocks per worker in addition to
	// the non-zero blocks (minus non-zero first blocks, counted once).
	bootstrap := int64(2 * 2 * 4)
	if sent > nonZeroBlocks+bootstrap {
		t.Fatalf("sent %d data blocks for %d non-zero blocks (bootstrap %d)", sent, nonZeroBlocks, bootstrap)
	}
	if sent < nonZeroBlocks-bootstrap {
		t.Fatalf("sent %d blocks, fewer than non-zero %d", sent, nonZeroBlocks)
	}
}

func TestAllReduceDeterministicOrder(t *testing.T) {
	cfg := Config{Workers: 4, Reliable: true, DeterministicOrder: true}
	c := startCluster(t, cfg, 0, 3)
	inputs := randomInputs(10_000, 4, 0.5, 11)
	// Deterministic mode must produce bit-identical results across runs.
	in1 := make([][]float32, 4)
	in2 := make([][]float32, 4)
	for i := range inputs {
		in1[i] = append([]float32(nil), inputs[i]...)
		in2[i] = append([]float32(nil), inputs[i]...)
	}
	c.allReduce(t, in1)
	c.allReduce(t, in2)
	for w := range in1 {
		for i := range in1[w] {
			if in1[w][i] != in2[w][i] {
				t.Fatalf("non-deterministic result at worker %d elem %d", w, i)
			}
		}
	}
	// And workers must agree exactly with the wid-ordered reference.
	want := make([]float32, len(inputs[0]))
	for wid := 0; wid < 4; wid++ {
		for i, v := range inputs[wid] {
			want[i] += v
		}
	}
	for w := range in1 {
		for i := range want {
			if in1[w][i] != want[i] {
				t.Fatalf("worker %d differs from ordered reference at %d", w, i)
			}
		}
	}
}

func TestAllReduceQuantizedSwitchMode(t *testing.T) {
	// Switch mode (Fig 18): fixed-point aggregation. Results match within
	// quantization error 1/scale per worker.
	cfg := Config{Workers: 4, Reliable: true, QuantizeScale: 1 << 16}
	c := startCluster(t, cfg, 0, 4)
	inputs := randomInputs(5_000, 4, 0.7, 13)
	want := expectedSum(inputs)
	c.allReduce(t, inputs)
	for wid, got := range inputs {
		for i := range want {
			d := float64(got[i]) - float64(want[i])
			if d > 4.0/65536 || d < -4.0/65536 {
				t.Fatalf("worker %d elem %d: quantized %v vs %v", wid, i, got[i], want[i])
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	cfg := Config{Workers: 3, Reliable: true}
	c := startCluster(t, cfg, 0, 6)
	n := 4_000
	rng := rand.New(rand.NewSource(21))
	rootData := make([]float32, n)
	for i := range rootData {
		rootData[i] = float32(rng.NormFloat64())
	}
	inputs := make([][]float32, 3)
	for w := range inputs {
		inputs[w] = make([]float32, n)
		if w == 1 {
			copy(inputs[w], rootData)
		} else {
			// Garbage that Broadcast must overwrite.
			for i := range inputs[w] {
				inputs[w][i] = -999
			}
		}
	}
	var wg sync.WaitGroup
	for w := range c.workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := c.workers[w].Broadcast(inputs[w], 1); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	checkResult(t, inputs, rootData)
}

func TestAllGather(t *testing.T) {
	cfg := Config{Workers: 4, Reliable: true}
	c := startCluster(t, cfg, 0, 7)
	seg := 1_000
	segments := randomInputs(seg, 4, 0, 23)
	outs := make([][]float32, 4)
	var wg sync.WaitGroup
	for w := range c.workers {
		outs[w] = make([]float32, seg*4)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := c.workers[w].AllGather(segments[w], outs[w]); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	var want []float32
	for w := 0; w < 4; w++ {
		want = append(want, segments[w]...)
	}
	checkResult(t, outs, want)
}

func TestAllGatherBadLength(t *testing.T) {
	cfg := Config{Workers: 2, Reliable: true}
	c := startCluster(t, cfg, 0, 8)
	if err := c.workers[0].AllGather(make([]float32, 10), make([]float32, 5)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestWorkerProfileWorkloads(t *testing.T) {
	// Run AllReduce over gradients with realistic DNN sparsity structure.
	for _, name := range []string{"DeepLight", "VGG19"} {
		t.Run(name, func(t *testing.T) {
			p := sparsity.ByName(name)
			cfg := Config{Workers: 4, Reliable: true, Streams: 4}
			c := startCluster(t, cfg, 0, 9)
			rng := rand.New(rand.NewSource(33))
			inputs := make([][]float32, 4)
			for w := range inputs {
				inputs[w] = p.SynthesizeGradient(20_000, rng).Data
			}
			// Equalize lengths (scale rounding can differ by a few elems).
			min := len(inputs[0])
			for _, in := range inputs {
				if len(in) < min {
					min = len(in)
				}
			}
			for w := range inputs {
				inputs[w] = inputs[w][:min]
			}
			want := expectedSum(inputs)
			c.allReduce(t, inputs)
			checkResult(t, inputs, want)
		})
	}
}

// Property test: AllReduce equals the element-wise sum for arbitrary
// worker counts, block sizes, fusion widths, stream counts, and sparsity.
func TestAllReduceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{
			Workers:     1 + r.Intn(6),
			BlockSize:   1 + r.Intn(100),
			FusionWidth: 1 + r.Intn(16),
			Streams:     1 + r.Intn(8),
			Reliable:    true,
		}
		if r.Float64() < 0.3 {
			cfg.Aggregators = []int{cfg.Workers, cfg.Workers + 1}
		}
		n := 1 + r.Intn(5_000)
		inputs := randomInputs(n, cfg.Workers, r.Float64(), seed*17)
		want := expectedSum(inputs)
		c := startCluster(t, cfg, 0, seed)
		c.allReduce(t, inputs)
		for _, got := range inputs {
			for i := range want {
				d := float64(got[i]) - float64(want[i])
				if d > 1e-4 || d < -1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Workers: 0, Aggregators: []int{1}},
		{Workers: 2},
		{Workers: 2, Aggregators: []int{2}, FusionWidth: 65},
		{Workers: 2, Aggregators: []int{2}, QuantizeScale: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := Config{Workers: 2, Aggregators: []int{2}}.withDefaults()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if good.BlockSize != 256 || good.FusionWidth != 8 || good.Streams != 4 {
		t.Errorf("defaults wrong: %+v", good)
	}
}

func TestNewWorkerBadID(t *testing.T) {
	nw := transport.NewNetwork(5, 4)
	cfg := Config{Workers: 2, Aggregators: []int{4}, Reliable: true}
	if _, err := NewWorker(nw.Conn(3), cfg); err == nil {
		t.Fatal("expected out-of-range worker ID error")
	}
}

func TestShardMath(t *testing.T) {
	// Shards must partition [0, nb) exactly.
	for _, tc := range []struct{ streams, nb int }{{1, 10}, {4, 10}, {4, 3}, {7, 100}, {16, 16}} {
		eff := effectiveStreams(tc.streams, tc.nb)
		covered := 0
		prevHi := 0
		for s := 0; s < eff; s++ {
			lo, hi := shard(s, eff, tc.nb)
			if lo != prevHi {
				t.Fatalf("streams=%d nb=%d: shard %d starts at %d, want %d", tc.streams, tc.nb, s, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("negative shard")
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.nb || prevHi != tc.nb {
			t.Fatalf("streams=%d nb=%d: covered %d", tc.streams, tc.nb, covered)
		}
	}
	if effectiveStreams(4, 0) != 1 {
		t.Fatal("effectiveStreams(4,0) != 1")
	}
}

func TestColumnHelpers(t *testing.T) {
	// firstInColumn over [10, 18) width 4: columns hold 10..17 by residue.
	cases := []struct{ c, want int }{{0, 12}, {1, 13}, {2, 10}, {3, 11}}
	for _, tc := range cases {
		if got := firstInColumn(10, 18, tc.c, 4); got != tc.want {
			t.Errorf("firstInColumn(10,18,%d,4) = %d, want %d", tc.c, got, tc.want)
		}
	}
	if got := firstInColumn(10, 11, 2, 4); got != 10 {
		t.Errorf("firstInColumn single = %d", got)
	}
	if got := firstInColumn(10, 11, 0, 4); got != -1 {
		t.Errorf("firstInColumn empty column = %d, want -1", got)
	}

	bm := tensor.NewBitmap(20)
	bm.Set(14) // column 2 of width 4
	bm.Set(18) // column 2
	if got := nextNonZeroInColumn(bm, 10, 10, 20, 2, 4); got != 14 {
		t.Errorf("nextNonZero after 10 = %d, want 14", got)
	}
	if got := nextNonZeroInColumn(bm, 14, 10, 20, 2, 4); got != 18 {
		t.Errorf("nextNonZero after 14 = %d, want 18", got)
	}
	if got := nextNonZeroInColumn(bm, 18, 10, 20, 2, 4); got != -1 {
		t.Errorf("nextNonZero after 18 = %d, want -1", got)
	}
	if got := nextNonZeroInColumn(bm, -1, 10, 20, 2, 4); got != 14 {
		t.Errorf("nextNonZero from start = %d, want 14", got)
	}
}

func TestBlockLen(t *testing.T) {
	if blockLen(0, 256, 1000) != 256 {
		t.Fatal("full block")
	}
	if blockLen(3, 256, 1000) != 1000-768 {
		t.Fatal("tail block")
	}
	if blockLen(4, 256, 1000) != 0 {
		t.Fatal("past-end block")
	}
}

func BenchmarkAllReduceInProcess(b *testing.B) {
	for _, s := range []float64{0, 0.9, 0.99} {
		b.Run(fmt.Sprintf("sparsity=%v", s), func(b *testing.B) {
			cfg := Config{Workers: 4, Reliable: true, Streams: 4}
			c := startCluster(b, cfg, 0, 1)
			inputs := randomInputs(1<<20, 4, s, 7)
			b.SetBytes(int64(4 * (1 << 20)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.allReduce(b, inputs)
			}
		})
	}
}

func TestAllGatherTransmitsOnlyOwnSegment(t *testing.T) {
	// §7: AllGather is sparse AllReduce with no block overlap, so each
	// worker transmits only (about) its own segment's blocks.
	cfg := Config{Workers: 4, Reliable: true, BlockSize: 64, Streams: 2, FusionWidth: 4}
	c := startCluster(t, cfg, 0, 51)
	seg := 64 * 40 // 40 blocks per worker
	segments := randomInputs(seg, 4, 0, 53)
	outs := make([][]float32, 4)
	var wg sync.WaitGroup
	for w := range c.workers {
		outs[w] = make([]float32, seg*4)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := c.workers[w].AllGather(segments[w], outs[w]); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	for w, wk := range c.workers {
		// Own segment is 40 blocks; bootstrap adds at most
		// Streams*FusionWidth extra.
		limit := int64(40 + 2*4)
		if wk.Stats.BlocksSent > limit {
			t.Errorf("worker %d sent %d blocks, want <= %d", w, wk.Stats.BlocksSent, limit)
		}
	}
}

func TestAllReduceHalfPrecision(t *testing.T) {
	cfg := Config{Workers: 4, Reliable: true, HalfPrecision: true}
	c := startCluster(t, cfg, 0, 61)
	inputs := randomInputs(10_000, 4, 0.7, 63)
	want := expectedSum(inputs)
	c.allReduce(t, inputs)
	// fp16 wire precision: relative error ~2^-11 per hop (worker->agg and
	// agg->worker), values are unit normals summed over 4 workers.
	for wid, got := range inputs {
		for i := range want {
			d := float64(got[i]) - float64(want[i])
			tol := 0.01 * (1 + float64(abs32(want[i])))
			if d > tol || d < -tol {
				t.Fatalf("worker %d elem %d: %v vs %v", wid, i, got[i], want[i])
			}
		}
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestHalfPrecisionHalvesBytes(t *testing.T) {
	run := func(half bool) int64 {
		cfg := Config{Workers: 2, Reliable: true, HalfPrecision: half, BlockSize: 256}
		c := startCluster(t, cfg, 0, 67)
		inputs := randomInputs(1<<18, 2, 0, 69) // dense
		c.allReduce(t, inputs)
		var bytes int64
		for _, w := range c.workers {
			bytes += w.Stats.Snapshot().BytesSent
		}
		return bytes
	}
	full := run(false)
	half := run(true)
	ratio := float64(half) / float64(full)
	if ratio > 0.6 || ratio < 0.4 {
		t.Fatalf("fp16 bytes ratio = %v (full %d, half %d), want ~0.5", ratio, full, half)
	}
}
