package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/obs"
	"omnireduce/internal/transport"
)

// startUDPPair builds a real UDP loopback cluster: every endpoint binds
// 127.0.0.1:0 and addresses are exchanged after binding (aggregators
// learn worker ports through RegisterPeer), so parallel tests never fight
// over fixed ports. Batching is toggled on every socket before any
// traffic flows.
type udpCluster struct {
	cfg      Config
	workers  []*Worker
	aggConns []*transport.UDP
	aggs     []*Aggregator
	aggWG    sync.WaitGroup
	aggErr   chan error
}

func startUDPCluster(t testing.TB, cfg Config, batched bool) *udpCluster {
	t.Helper()
	cfg = cfg.withDefaults()
	if len(cfg.Aggregators) == 0 {
		cfg.Aggregators = []int{cfg.Workers}
	}
	c := &udpCluster{cfg: cfg, aggErr: make(chan error, len(cfg.Aggregators))}
	for _, aggID := range cfg.Aggregators {
		conn, err := transport.NewUDP(aggID, map[int]string{aggID: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		conn.SetBatching(batched)
		c.aggConns = append(c.aggConns, conn)
		agg, err := NewAggregator(conn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.aggs = append(c.aggs, agg)
	}
	for i := 0; i < cfg.Workers; i++ {
		addrs := map[int]string{i: "127.0.0.1:0"}
		for j, aggID := range cfg.Aggregators {
			addrs[aggID] = c.aggConns[j].Addr()
		}
		conn, err := transport.NewUDP(i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetBatching(batched)
		for _, ac := range c.aggConns {
			if err := ac.RegisterPeer(i, conn.Addr()); err != nil {
				t.Fatal(err)
			}
		}
		w, err := NewWorker(conn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.workers = append(c.workers, w)
	}
	for _, agg := range c.aggs {
		c.aggWG.Add(1)
		go func(a *Aggregator) {
			defer c.aggWG.Done()
			if err := a.Run(); err != nil {
				c.aggErr <- err
			}
		}(agg)
	}
	return c
}

// shutdown tears the cluster down and returns the aggregator stats (only
// readable once Run has returned).
func (c *udpCluster) shutdown(t testing.TB) []AggStats {
	t.Helper()
	for _, w := range c.workers {
		w.Close()
	}
	for _, conn := range c.aggConns {
		conn.Close()
	}
	c.aggWG.Wait()
	select {
	case err := <-c.aggErr:
		t.Fatalf("aggregator error: %v", err)
	default:
	}
	var as []AggStats
	for _, a := range c.aggs {
		as = append(as, a.Stats)
	}
	return as
}

// runUDPOnce runs one AllReduce per worker over a fresh UDP loopback
// cluster and returns the reduced tensors plus both sides' protocol
// counters after full teardown.
func runUDPOnce(t testing.TB, cfg Config, batched bool, inputs [][]float32) ([][]float32, []Stats, []AggStats) {
	t.Helper()
	c := startUDPCluster(t, cfg, batched)
	work := make([][]float32, len(inputs))
	for i := range inputs {
		work[i] = append([]float32(nil), inputs[i]...)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.workers))
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.AllReduce(work[i])
		}(i, w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("UDP AllReduce timed out")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	var ws []Stats
	for _, w := range c.workers {
		ws = append(ws, w.Stats.Snapshot())
	}
	as := c.shutdown(t)
	return work, ws, as
}

// TestBatchedScalarEquivalence drives the same seeded workload grid
// through the batched (recvmmsg/sendmmsg) and scalar UDP paths and
// asserts they are indistinguishable above the syscall layer: identical
// worker Stats (packets, blocks, bytes, retransmits — every counter),
// identical aggregator stats, and bit-identical results. Together with
// the drift tier's live ≡ sim equivalence this closes the chain
// live-batched ≡ live-scalar ≡ sim.
//
// On builds without the fast path (non-Linux, or -tags portable_net) both
// legs run the scalar path and the test degenerates to a determinism
// check — which is exactly what `make drift` runs under both build
// flavors to keep the fallback exercised.
func TestBatchedScalarEquivalence(t *testing.T) {
	audit := obs.StartLeakAudit()
	if !transport.BatchingSupported() {
		t.Log("batched I/O unavailable in this build; comparing scalar vs scalar")
	}
	cases := []struct {
		workers  int
		sparsity float64
		fusion   int
	}{
		{workers: 2, sparsity: 0, fusion: 1},
		{workers: 2, sparsity: 0.5, fusion: 4},
		{workers: 3, sparsity: 0.9, fusion: 4},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("w%d_s%v_f%d", tc.workers, tc.sparsity, tc.fusion)
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Workers:     tc.workers,
				Aggregators: []int{tc.workers},
				BlockSize:   16,
				FusionWidth: tc.fusion,
				Reliable:    false,
				// Loopback with 8MB socket buffers does not drop these tiny
				// workloads; a generous timeout keeps the retransmit timer
				// from firing, so both paths see the exact same packets.
				RetransmitTimeout:  2 * time.Second,
				DeterministicOrder: true,
			}
			inputs := randomInputs(48*16, tc.workers, tc.sparsity, int64(61+tc.workers))
			want := expectedSum(inputs)

			scalarRes, scalarWS, scalarAS := runUDPOnce(t, cfg, false, inputs)
			preBatches := transport.BatchCounters().Get("udp_rx_batches")
			batchRes, batchWS, batchAS := runUDPOnce(t, cfg, true, inputs)
			if transport.BatchingSupported() {
				if got := transport.BatchCounters().Get("udp_rx_batches"); got == preBatches {
					t.Fatal("batched leg moved no batches through recvmmsg")
				}
			}

			checkResult(t, scalarRes, want)
			for w := range batchRes {
				for i := range batchRes[w] {
					if batchRes[w][i] != scalarRes[w][i] {
						t.Fatalf("worker %d element %d: batched %v != scalar %v",
							w, i, batchRes[w][i], scalarRes[w][i])
					}
				}
			}
			for w := range batchWS {
				if batchWS[w] != scalarWS[w] {
					t.Errorf("worker %d stats diverge:\nbatched: %+v\nscalar:  %+v",
						w, batchWS[w], scalarWS[w])
				}
			}
			for a := range batchAS {
				if batchAS[a] != scalarAS[a] {
					t.Errorf("aggregator %d stats diverge:\nbatched: %+v\nscalar:  %+v",
						a, batchAS[a], scalarAS[a])
				}
			}
		})
	}
	if leaks := audit.Settle(2 * time.Second); len(leaks) != 0 {
		t.Fatalf("equivalence grid leaked pooled buffers: %v", obs.LeaksErr(leaks))
	}
}
