package core

import (
	"omnireduce/internal/protocol"
	"omnireduce/internal/tensor"
)

// Column layout (§3.2): within a stream's shard [lo, hi) of global block
// indices, column c holds the blocks b with b % width == c. The shared
// shard/column arithmetic lives in internal/protocol, where both the
// worker and aggregator machines consume it; these wrappers keep the
// package-local names used by core's unit tests.

// firstInColumn returns the first global block index in [lo, hi) congruent
// to c mod w, or -1 if the column is empty.
func firstInColumn(lo, hi, c, w int) int {
	return protocol.FirstInColumn(lo, hi, c, w)
}

// nextNonZeroInColumn scans the bitmap for the next set block strictly
// after `after` within [lo, hi) staying in column c (stride w). A negative
// `after` starts the scan at the column's first block.
func nextNonZeroInColumn(bm *tensor.Bitmap, after, lo, hi, c, w int) int {
	return protocol.NextNonZeroInColumn(bm.Get, after, lo, hi, c, w)
}

// blockLen returns the element count of global block b for a tensor of n
// elements and block size bs (the final block may be short).
func blockLen(b, bs, n int) int {
	return protocol.BlockLen(b, bs, n)
}
