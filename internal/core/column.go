package core

import (
	"omnireduce/internal/tensor"
	"omnireduce/internal/wire"
)

// Column layout (§3.2): within a stream's shard [lo, hi) of global block
// indices, column c holds the blocks b with b % width == c. The per-column
// "rows" are those blocks in ascending order. This file holds the shared
// shard/column arithmetic used by both worker and aggregator.

// colOf returns the column of global block index b under fusion width w.
func colOf(b uint32, w int) int { return int(b) % w }

// firstInColumn returns the first global block index in [lo, hi) congruent
// to c mod w, or -1 if the column is empty.
func firstInColumn(lo, hi, c, w int) int {
	// Smallest b >= lo with b % w == c.
	r := lo % w
	b := lo + ((c-r)%w+w)%w
	if b >= hi {
		return -1
	}
	return b
}

// nextNonZeroInColumn scans the bitmap for the next set block strictly
// after `after` within [lo, hi) staying in column c (stride w). A negative
// `after` starts the scan at the column's first block.
func nextNonZeroInColumn(bm *tensor.Bitmap, after, lo, hi, c, w int) int {
	start := firstInColumn(lo, hi, c, w)
	if start < 0 {
		return -1
	}
	b := start
	if after >= start {
		// Advance to the first column slot strictly after `after`.
		b = after + w
	}
	for ; b < hi; b += w {
		if bm.Get(b) {
			return b
		}
	}
	return -1
}

// nextOffsetWire converts a block index (or -1 for none) to the wire
// next-offset encoding for column c.
func nextOffsetWire(b, c int) uint32 {
	if b < 0 {
		return wire.Inf(c)
	}
	return uint32(b)
}

// blockLen returns the element count of global block b for a tensor of n
// elements and block size bs (the final block may be short).
func blockLen(b, bs, n int) int {
	lo := b * bs
	hi := lo + bs
	if hi > n {
		hi = n
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
