package core

import (
	"fmt"
	"time"

	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
	"omnireduce/internal/transport"
)

// Chaos scenario runner: builds an in-process cluster whose every endpoint
// routes through a transport.ChaosFabric, runs one AllReduce per worker,
// and verifies the result against the dense reference sum. The runner is
// what the chaos end-to-end suite and the lossynet example drive; because
// both the channel fabric and the chaos decisions are deterministic,
// re-running a ChaosRun with the same scenario replays the exact injection
// decisions of a failure.

// ChaosReport summarizes one chaos scenario run.
type ChaosReport struct {
	// MaxAbsErr is the largest |result - reference| over all workers and
	// elements, where the reference is the worker-ID-ordered float32 sum.
	MaxAbsErr float64
	// Exact reports whether every worker's result is bit-identical to the
	// reference (guaranteed when cfg.DeterministicOrder is set).
	Exact bool
	// Events are the fabric's injection tallies.
	Events transport.EventCounts
	// WindowEvents is the deterministic replay fingerprint: injection
	// events within the scenario's per-link window.
	WindowEvents int64
	// WorkerStats are per-worker protocol counters.
	WorkerStats []Stats
	// AggStats are per-aggregator protocol counters.
	AggStats []AggStats
	// Pump are per-worker receive-pump routing counters.
	Pump []PumpStats
	// PoolLeaks lists pools whose get/put balance did not return to the
	// run's starting point within the settlement window (empty on a clean
	// run). A non-empty list means some receive path dropped a pooled
	// buffer on the floor.
	PoolLeaks []obs.PoolBalance
	// Elapsed is the wall-clock duration of the collective.
	Elapsed time.Duration
}

// Retransmits sums worker retransmissions.
func (r *ChaosReport) Retransmits() int64 {
	var n int64
	for _, s := range r.WorkerStats {
		n += s.Retransmits
	}
	return n
}

// RecoveryCounters merges every participant's recovery counters.
func (r *ChaosReport) RecoveryCounters() *metrics.Counters {
	c := metrics.NewCounters()
	for i := range r.WorkerStats {
		c.Merge(r.WorkerStats[i].RecoveryCounters())
	}
	for i := range r.AggStats {
		c.Merge(r.AggStats[i].RecoveryCounters())
	}
	return c
}

// ObsReport renders the run's observability summary: merged pump
// counters, the pool-balance audit verdict, and current pool balances.
func (r *ChaosReport) ObsReport() *metrics.Table {
	t := metrics.NewTable("chaos observability", "metric", "value")
	var pump PumpStats
	for _, p := range r.Pump {
		pump.Delivered += p.Delivered
		pump.StaleDrops += p.StaleDrops
		pump.OverflowDrops += p.OverflowDrops
		pump.BadPackets += p.BadPackets
	}
	t.AddRow("pump_delivered", pump.Delivered)
	t.AddRow("pump_stale_drops", pump.StaleDrops)
	t.AddRow("pump_overflow_drops", pump.OverflowDrops)
	t.AddRow("pump_bad_packets", pump.BadPackets)
	t.AddRow("pool_leaks", int64(len(r.PoolLeaks)))
	for _, l := range r.PoolLeaks {
		t.AddRow("leak:"+l.Name, l.Outstanding())
	}
	return t
}

// RunChaosScenario runs one AllReduce for each worker of cfg over a
// channel fabric wrapped in the given chaos scenario, using copies of
// inputs (the caller's slices are not mutated). cfg.Reliable is forced
// off: chaos injection requires Algorithm 2's loss recovery. The deadline
// bounds the whole collective (0 means 60s).
func RunChaosScenario(cfg Config, sc transport.Scenario, inputs [][]float32, deadline time.Duration) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	cfg.Reliable = false
	if len(cfg.Aggregators) == 0 {
		cfg.Aggregators = []int{cfg.Workers}
	}
	if len(inputs) != cfg.Workers {
		return nil, fmt.Errorf("core: %d inputs for %d workers", len(inputs), cfg.Workers)
	}
	if deadline == 0 {
		deadline = 60 * time.Second
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Reference: worker-ID-ordered float32 sum — exactly what
	// DeterministicOrder reproduces.
	ref := make([]float32, len(inputs[0]))
	work := make([][]float32, len(inputs))
	for w, in := range inputs {
		if len(in) != len(ref) {
			return nil, fmt.Errorf("core: worker %d input length %d != %d", w, len(in), len(ref))
		}
		work[w] = append([]float32(nil), in...)
		for i, v := range in {
			ref[i] += v
		}
	}

	// Bracket the run with a pool-leak audit: after teardown every
	// GetBuf must be matched by a PutBuf (chaos delay timers deliver
	// asynchronously, hence the settlement window below).
	audit := obs.StartLeakAudit()

	fabric := transport.NewChaosFabric(sc)
	nw := transport.NewNetwork(cfg.Workers, 4096)
	var aggs []*Aggregator
	var conns []transport.Conn
	aggErr := make(chan error, len(cfg.Aggregators))
	for _, id := range cfg.Aggregators {
		conn := fabric.Wrap(nw.AddNode(id))
		agg, err := NewAggregator(conn, cfg)
		if err != nil {
			return nil, err
		}
		aggs = append(aggs, agg)
		conns = append(conns, conn)
		go func(a *Aggregator) { aggErr <- a.Run() }(agg)
	}
	workers := make([]*Worker, cfg.Workers)
	for i := range workers {
		conn := fabric.Wrap(nw.Conn(i))
		w, err := NewWorker(conn, cfg)
		if err != nil {
			return nil, err
		}
		workers[i] = w
		conns = append(conns, conn)
	}

	start := time.Now()
	errs := make(chan error, cfg.Workers)
	for i, w := range workers {
		go func(i int, w *Worker) { errs <- w.AllReduce(work[i]) }(i, w)
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	var firstErr error
	for i := 0; i < cfg.Workers; i++ {
		select {
		case err := <-errs:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-timer.C:
			for _, w := range workers {
				w.Close()
			}
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("core: chaos scenario deadline (%v) exceeded", deadline)
		}
	}
	elapsed := time.Since(start)
	// Worker.Close (not just the conn) releases the persistent per-op
	// driver states, returning their decode states to the pool so the
	// audit below balances.
	for _, w := range workers {
		w.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Aggregator stats are written by the Run goroutines; wait for them.
	for range aggs {
		if err := <-aggErr; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	rep := &ChaosReport{
		Exact:        true,
		Events:       fabric.Counts(),
		WindowEvents: fabric.WindowEvents(),
		Elapsed:      elapsed,
	}
	for w := range work {
		for i := range ref {
			if work[w][i] != ref[i] {
				rep.Exact = false
			}
			d := float64(work[w][i]) - float64(ref[i])
			if d < 0 {
				d = -d
			}
			if d > rep.MaxAbsErr {
				rep.MaxAbsErr = d
			}
		}
	}
	for _, w := range workers {
		rep.WorkerStats = append(rep.WorkerStats, w.Stats.Snapshot())
		rep.Pump = append(rep.Pump, w.PumpSnapshot())
	}
	for _, a := range aggs {
		rep.AggStats = append(rep.AggStats, a.Stats)
	}
	rep.PoolLeaks = audit.Settle(2 * time.Second)
	return rep, nil
}
