package core

import (
	"fmt"
	"time"

	"omnireduce/internal/metrics"
	"omnireduce/internal/transport"
)

// Chaos scenario runner: builds an in-process cluster whose every endpoint
// routes through a transport.ChaosFabric, runs one AllReduce per worker,
// and verifies the result against the dense reference sum. The runner is
// what the chaos end-to-end suite and the lossynet example drive; because
// both the channel fabric and the chaos decisions are deterministic,
// re-running a ChaosRun with the same scenario replays the exact injection
// decisions of a failure.

// ChaosReport summarizes one chaos scenario run.
type ChaosReport struct {
	// MaxAbsErr is the largest |result - reference| over all workers and
	// elements, where the reference is the worker-ID-ordered float32 sum.
	MaxAbsErr float64
	// Exact reports whether every worker's result is bit-identical to the
	// reference (guaranteed when cfg.DeterministicOrder is set).
	Exact bool
	// Events are the fabric's injection tallies.
	Events transport.EventCounts
	// WindowEvents is the deterministic replay fingerprint: injection
	// events within the scenario's per-link window.
	WindowEvents int64
	// WorkerStats are per-worker protocol counters.
	WorkerStats []Stats
	// AggStats are per-aggregator protocol counters.
	AggStats []AggStats
	// Elapsed is the wall-clock duration of the collective.
	Elapsed time.Duration
}

// Retransmits sums worker retransmissions.
func (r *ChaosReport) Retransmits() int64 {
	var n int64
	for _, s := range r.WorkerStats {
		n += s.Retransmits
	}
	return n
}

// RecoveryCounters merges every participant's recovery counters.
func (r *ChaosReport) RecoveryCounters() *metrics.Counters {
	c := metrics.NewCounters()
	for i := range r.WorkerStats {
		c.Merge(r.WorkerStats[i].RecoveryCounters())
	}
	for i := range r.AggStats {
		c.Merge(r.AggStats[i].RecoveryCounters())
	}
	return c
}

// RunChaosScenario runs one AllReduce for each worker of cfg over a
// channel fabric wrapped in the given chaos scenario, using copies of
// inputs (the caller's slices are not mutated). cfg.Reliable is forced
// off: chaos injection requires Algorithm 2's loss recovery. The deadline
// bounds the whole collective (0 means 60s).
func RunChaosScenario(cfg Config, sc transport.Scenario, inputs [][]float32, deadline time.Duration) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	cfg.Reliable = false
	if len(cfg.Aggregators) == 0 {
		cfg.Aggregators = []int{cfg.Workers}
	}
	if len(inputs) != cfg.Workers {
		return nil, fmt.Errorf("core: %d inputs for %d workers", len(inputs), cfg.Workers)
	}
	if deadline == 0 {
		deadline = 60 * time.Second
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Reference: worker-ID-ordered float32 sum — exactly what
	// DeterministicOrder reproduces.
	ref := make([]float32, len(inputs[0]))
	work := make([][]float32, len(inputs))
	for w, in := range inputs {
		if len(in) != len(ref) {
			return nil, fmt.Errorf("core: worker %d input length %d != %d", w, len(in), len(ref))
		}
		work[w] = append([]float32(nil), in...)
		for i, v := range in {
			ref[i] += v
		}
	}

	fabric := transport.NewChaosFabric(sc)
	nw := transport.NewNetwork(cfg.Workers, 4096)
	var aggs []*Aggregator
	var conns []transport.Conn
	aggErr := make(chan error, len(cfg.Aggregators))
	for _, id := range cfg.Aggregators {
		conn := fabric.Wrap(nw.AddNode(id))
		agg, err := NewAggregator(conn, cfg)
		if err != nil {
			return nil, err
		}
		aggs = append(aggs, agg)
		conns = append(conns, conn)
		go func(a *Aggregator) { aggErr <- a.Run() }(agg)
	}
	workers := make([]*Worker, cfg.Workers)
	for i := range workers {
		conn := fabric.Wrap(nw.Conn(i))
		w, err := NewWorker(conn, cfg)
		if err != nil {
			return nil, err
		}
		workers[i] = w
		conns = append(conns, conn)
	}

	start := time.Now()
	errs := make(chan error, cfg.Workers)
	for i, w := range workers {
		go func(i int, w *Worker) { errs <- w.AllReduce(work[i]) }(i, w)
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	var firstErr error
	for i := 0; i < cfg.Workers; i++ {
		select {
		case err := <-errs:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-timer.C:
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("core: chaos scenario deadline (%v) exceeded", deadline)
		}
	}
	elapsed := time.Since(start)
	for _, c := range conns {
		c.Close()
	}
	// Aggregator stats are written by the Run goroutines; wait for them.
	for range aggs {
		if err := <-aggErr; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	rep := &ChaosReport{
		Exact:        true,
		Events:       fabric.Counts(),
		WindowEvents: fabric.WindowEvents(),
		Elapsed:      elapsed,
	}
	for w := range work {
		for i := range ref {
			if work[w][i] != ref[i] {
				rep.Exact = false
			}
			d := float64(work[w][i]) - float64(ref[i])
			if d < 0 {
				d = -d
			}
			if d > rep.MaxAbsErr {
				rep.MaxAbsErr = d
			}
		}
	}
	for _, w := range workers {
		rep.WorkerStats = append(rep.WorkerStats, w.Stats.Snapshot())
	}
	for _, a := range aggs {
		rep.AggStats = append(rep.AggStats, a.Stats)
	}
	return rep, nil
}
