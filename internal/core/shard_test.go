package core

import (
	"sync"
	"testing"

	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Sharded-aggregator driver tests: the bounded shard pool must produce
// results and statistics identical to the serial loop while packets for
// many slots land concurrently. Run under -race (make race) this also
// proves the shards share no protocol state.

// runShardedCluster drives overlapped AllReduces through a cluster whose
// aggregator uses the given shard count, shuts the cluster down, and
// returns the aggregator's folded stats.
func runShardedCluster(t *testing.T, shards, workers, nOps, n int) AggStats {
	t.Helper()
	cfg := Config{
		Workers:   workers,
		Reliable:  true,
		Streams:   8, // many slots so every shard sees traffic
		AggShards: shards,
	}
	c := startCluster(t, cfg, 0, 404)
	inputs := make([][][]float32, nOps)
	for op := range inputs {
		inputs[op] = randomInputs(n, workers, 0.5, int64(500+op))
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Overlapped async ops: many tensors in flight at once, so
			// packets for different slots and tensors interleave freely.
			var pending []*Pending
			for op := 0; op < nOps; op++ {
				p, err := c.workers[w].AllReduceAsync(inputs[op][w])
				if err != nil {
					errs[w] = err
					return
				}
				pending = append(pending, p)
			}
			for _, p := range pending {
				if err := p.Wait(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Shut down so the Run goroutines fold their shard stats (Stats is
	// only defined after Run returns). The t.Cleanup shutdown re-running
	// these closes is harmless.
	for _, w := range c.workers {
		w.Close()
	}
	for _, conn := range c.aggConns {
		conn.Close()
	}
	c.aggWG.Wait()
	select {
	case err := <-c.aggErr:
		t.Fatalf("aggregator error: %v", err)
	default:
	}
	return c.aggs[0].Stats
}

func TestShardedAggregatorMatchesSerial(t *testing.T) {
	const workers, nOps, n = 4, 6, 4096
	serial := runShardedCluster(t, 1, workers, nOps, n)
	sharded := runShardedCluster(t, 4, workers, nOps, n)
	if serial != sharded {
		t.Errorf("stats drifted between serial and sharded aggregation:\n serial  %+v\n sharded %+v", serial, sharded)
	}
	if sharded.PacketsRecvd == 0 || sharded.RoundsCompleted == 0 {
		t.Fatalf("sharded aggregator saw no traffic: %+v", sharded)
	}
}

func TestShardedAggregatorCorrectSums(t *testing.T) {
	const workers, nOps, n = 3, 4, 3000
	cfg := Config{Workers: workers, Reliable: true, Streams: 8, AggShards: 4}
	c := startCluster(t, cfg, 0, 405)
	for op := 0; op < nOps; op++ {
		inputs := randomInputs(n, workers, 0.6, int64(900+op))
		want := expectedSum(inputs)
		c.allReduce(t, inputs)
		checkResult(t, inputs, want)
	}
}

func TestShardedAggregatorSurfacesProtocolErrors(t *testing.T) {
	nw := transport.NewNetwork(1, 16)
	aggConn := nw.AddNode(1)
	defer aggConn.Close()
	cfg := Config{Workers: 1, Aggregators: []int{1}, Reliable: true, AggShards: 4}
	a, err := NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Run() }()
	// An unknown worker ID is a protocol error; the owning shard must
	// surface it through Run.
	bad := wire.AppendPacket(nil, &wire.Packet{
		Type: wire.TypeData, WID: 9, TensorID: 1, BlockSize: 4,
		Nexts: []uint32{wire.Inf(0)},
	})
	sender := nw.Conn(0)
	if err := sender.Send(1, bad); err != nil {
		t.Fatal(err)
	}
	// Nudge the router out of Recv so it notices the shard failure even if
	// the first packet raced past the failure check.
	if err := sender.Send(1, bad); err != nil {
		t.Fatal(err)
	}
	err = <-done
	if err == nil {
		t.Fatal("Run returned nil; want protocol error from shard")
	}
}
