// Package core is the live-substrate driver of the OmniReduce protocol:
// streaming sparse AllReduce via coordinated block aggregation
// (SIGCOMM '21, §3).
//
// The protocol itself — Algorithm 1 streaming, §3.1.1 slot/stream
// scheduling, §3.2 Block Fusion, Algorithm 2 loss recovery, and
// Algorithm 3 sparse key-value mode — lives in internal/protocol as pure
// event-driven state machines. This package owns only the I/O: it pumps
// real transport.Conn messages and wall-clock retransmission ticks through
// the machines, encodes their emitted packets, and mirrors their counters
// into the public Stats surfaces. The discrete-event simulator
// (internal/netsim/simproto) drives the same machines in virtual time, so
// the two substrates cannot diverge.
//
// The tensor is split into blocks of Config.BlockSize elements. Workers
// transmit only non-zero blocks; one or more aggregators coordinate, each
// telling the workers which block it needs next based on "next non-zero
// block" metadata the workers piggyback on every packet (Algorithm 1).
//
// Parallelism follows §3.1.1: the tensor is sharded into Config.Streams
// contiguous shards, each served by an independent aggregation stream that
// owns one aggregator slot; streams are distributed round-robin across the
// aggregator nodes. Within a stream, Block Fusion (§3.2) packs up to
// Config.FusionWidth blocks per packet, column-aligned in the stream's
// two-dimensional block layout.
//
// With Config.Reliable set (channel or TCP transports — the RDMA RC
// stand-in), the protocol of Algorithm 1 runs without timers. With
// Reliable unset (UDP), Algorithm 2's loss recovery runs: versioned slots,
// per-version seen/count state, empty ack packets for zero blocks, and
// worker retransmission timers.
package core

import (
	"fmt"
	"runtime"
	"time"

	"omnireduce/internal/protocol"
	"omnireduce/internal/tenant"
)

// Config parameterizes workers and aggregators. Every participant in a
// job must use an identical Config.
type Config struct {
	// Workers is the number of worker nodes, with IDs 0..Workers-1.
	Workers int
	// Aggregators lists the aggregator node IDs. Stream s is served by
	// Aggregators[s % len(Aggregators)].
	Aggregators []int
	// BlockSize is the number of float32 elements per block (default 256,
	// the paper's default, §6).
	BlockSize int
	// FusionWidth is the number of blocks fused per packet, i.e. the
	// number of columns in each stream's block layout (§3.2). Default 8.
	FusionWidth int
	// Streams is the number of parallel aggregation streams (the slot
	// pool size, §3.1.1). Default 4.
	Streams int
	// Reliable indicates the transport delivers every message in order
	// (channel/TCP). When false, Algorithm 2 loss recovery is active.
	Reliable bool
	// RetransmitTimeout is the worker's initial per-packet loss-detection
	// timer (unreliable mode only). Default 20ms.
	RetransmitTimeout time.Duration
	// RetransmitBackoff multiplies a stream's timeout after every
	// retransmission (exponential backoff), so a worker facing a long
	// outage — a partition, a dead aggregator — backs off instead of
	// flooding the fabric at a fixed rate. The timeout resets to
	// RetransmitTimeout as soon as a result arrives. Default 2; must be
	// >= 1 when set.
	RetransmitBackoff float64
	// RetransmitCeiling caps the backed-off timeout. Default
	// 16*RetransmitTimeout.
	RetransmitCeiling time.Duration
	// RetransmitJitter is the fractional random jitter applied to every
	// backed-off timeout, in [0, 1): each retransmission waits
	// timeout*(1 ± jitter) to de-synchronize workers that lost the same
	// multicast. Drawn from a per-worker deterministic source, so runs
	// remain reproducible. Default 0.1.
	RetransmitJitter float64
	// MaxRetries bounds per-packet retransmissions in unreliable mode;
	// exceeding it fails the collective with an error (e.g. the
	// aggregator is gone). Zero means retry forever.
	MaxRetries int
	// DeterministicOrder makes aggregation numerically reproducible by
	// reducing worker contributions in worker-ID order (§7). It requires
	// buffering one contribution per worker per slot.
	DeterministicOrder bool
	// HalfPrecision transmits block data as IEEE 754 binary16 on the
	// wire, halving communication volume; the aggregator still
	// accumulates in float32. Results are quantized to fp16 on the way
	// back (the usual mixed-precision trade-off).
	HalfPrecision bool
	// ForceDense disables zero-block elision on the worker: every block
	// is treated as non-zero and transmitted. This turns the protocol into
	// a SwitchML-style dense streaming aggregation (§6.2.2's SwitchML*
	// baseline) while keeping the slot pipeline identical.
	ForceDense bool
	// QuantizeScale, when non-zero, makes aggregators accumulate in
	// fixed-point int64 arithmetic with this scale factor, emulating the
	// integer ALUs of a programmable switch (§7, Fig 18). Workers are
	// unaffected; results are de-quantized before multicast.
	QuantizeScale float64
	// AggShards is the number of goroutines an aggregator's Run loop
	// spreads slot processing across (dense traffic partitions by slot,
	// sparse by tensor ID; per-slot packet order is preserved). It is a
	// driver-level knob only — the protocol machines and the simulator
	// never see it, and aggregate statistics are identical for any value.
	// Default min(4, GOMAXPROCS); 1 disables sharding.
	AggShards int
	// OpQueueLen is the capacity of each in-flight collective's inbound
	// message queue on the worker (a driver-level knob, like AggShards).
	// The receive pump never blocks on a full queue: in unreliable mode
	// the overflowing message is dropped and repaired by Algorithm 2's
	// retransmission; in reliable mode the operation is failed with
	// ErrOpBackpressure. Default 1024.
	OpQueueLen int
	// StallTimeout arms the stall watchdog: an in-flight collective that
	// receives no aggregator result for this long is failed with a
	// *StallError (errors.Is ErrOpStalled) instead of hanging silently,
	// after snapshotting the flight recorder, metrics registry, pool
	// balances, and pump counters into a postmortem bundle. The watchdog
	// checks progress once per period, so detection takes at most
	// 2*StallTimeout after the last result. Zero disables the watchdog.
	StallTimeout time.Duration
	// PostmortemDir is where stall postmortem bundles are written, one
	// JSON file per stalled operation. Empty keeps the bundle in the
	// returned *StallError without touching the filesystem.
	PostmortemDir string
	// Tenancy is the aggregator's multi-tenant policy: per-tenant quotas
	// (max jobs, max in-flight collectives) and deficit-round-robin
	// weights for jobs sharing the merge shards. Nil applies the zero
	// policy — one implicit default tenant, unlimited, weight 1 — which
	// reproduces the pre-registry single-job behavior for the legacy API.
	// Workers ignore it.
	Tenancy *tenant.Config
	// OpenTimeout bounds a worker's OpenJob handshake with the
	// aggregators (on unreliable transports the request is retried every
	// RetransmitTimeout until accepted, rejected, or this deadline).
	// Default 5s.
	OpenTimeout time.Duration
	// View, when non-nil (and Epoch > 0), enables epoch-numbered group
	// membership: workers bind their connections to the view's epoch via
	// TypeViewAck, aggregators refuse traffic from connections bound to a
	// stale epoch with a typed TypeStaleEpoch refusal carrying the current
	// view, and both sides adopt newer views announced with TypeView. Nil
	// keeps the legacy static-membership behavior, bit for bit.
	View *protocol.View
	// CheckpointPeers lists standby aggregator node IDs this aggregator
	// streams slot-state checkpoints to, one frame per tensor-ID
	// namespace after every batch of result emits (the checkpoint is
	// enqueued BEFORE the results it covers, so a standby always knows at
	// least as much as any worker — the output-commit rule failover
	// correctness rests on). Empty disables checkpointing; workers ignore
	// it. Checkpoint frames can exceed a UDP datagram, so primaries and
	// standbys must be linked by a framed reliable transport.
	CheckpointPeers []int
	// Standby starts an aggregator passive: it stores inbound checkpoints
	// and refuses data traffic with stale-epoch refusals until Activate
	// installs a view that lists it (or a TypeView announcement arrives).
	// Workers ignore it.
	Standby bool
}

// proto converts to the protocol-machine configuration, field for field.
func (c Config) proto() protocol.Config {
	return protocol.Config{
		Workers:            c.Workers,
		Aggregators:        c.Aggregators,
		BlockSize:          c.BlockSize,
		FusionWidth:        c.FusionWidth,
		Streams:            c.Streams,
		Reliable:           c.Reliable,
		RetransmitTimeout:  c.RetransmitTimeout,
		RetransmitBackoff:  c.RetransmitBackoff,
		RetransmitCeiling:  c.RetransmitCeiling,
		RetransmitJitter:   c.RetransmitJitter,
		MaxRetries:         c.MaxRetries,
		DeterministicOrder: c.DeterministicOrder,
		HalfPrecision:      c.HalfPrecision,
		ForceDense:         c.ForceDense,
		QuantizeScale:      c.QuantizeScale,
	}
}

// withDefaults fills zero fields from protocol.Defaults, the single
// source of paper-default parameters shared with the simulator.
func (c Config) withDefaults() Config {
	p := c.proto().WithDefaults()
	c.BlockSize = p.BlockSize
	c.FusionWidth = p.FusionWidth
	c.Streams = p.Streams
	c.RetransmitTimeout = p.RetransmitTimeout
	c.RetransmitBackoff = p.RetransmitBackoff
	c.RetransmitCeiling = p.RetransmitCeiling
	c.RetransmitJitter = p.RetransmitJitter
	if c.AggShards == 0 {
		c.AggShards = runtime.GOMAXPROCS(0)
		if c.AggShards > 4 {
			c.AggShards = 4
		}
	}
	if c.OpQueueLen == 0 {
		c.OpQueueLen = 1024
	}
	if c.OpenTimeout == 0 {
		c.OpenTimeout = 5 * time.Second
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.AggShards < 0 {
		return fmt.Errorf("core: AggShards must be >= 0, got %d", c.AggShards)
	}
	if c.OpQueueLen < 0 {
		return fmt.Errorf("core: OpQueueLen must be >= 0, got %d", c.OpQueueLen)
	}
	if c.StallTimeout < 0 {
		return fmt.Errorf("core: StallTimeout must be >= 0, got %v", c.StallTimeout)
	}
	if c.OpenTimeout < 0 {
		return fmt.Errorf("core: OpenTimeout must be >= 0, got %v", c.OpenTimeout)
	}
	if c.View != nil {
		if err := c.View.Validate(); err != nil {
			return err
		}
	}
	if c.Standby && c.View == nil {
		return fmt.Errorf("core: Standby requires a View (the refusals it answers data with must carry one)")
	}
	return c.proto().Validate()
}

// shard returns the global block range [lo, hi) owned by stream s when the
// tensor has nb blocks total and eff streams are active.
func shard(s, eff, nb int) (lo, hi int) {
	return protocol.Shard(s, eff, nb)
}

// effectiveStreams caps the stream count so every stream owns at least one
// block.
func effectiveStreams(streams, nb int) int {
	return protocol.EffectiveStreams(streams, nb)
}
