package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
)

// ErrOpStalled is the sentinel wrapped by every *StallError, so callers
// can errors.Is a watchdog failure without caring about the details.
var ErrOpStalled = errors.New("core: collective stalled")

// StallError fails a collective the stall watchdog gave up on. It wraps
// ErrOpStalled and carries the postmortem so callers (and tests) can
// inspect what the datapath looked like at the moment of the wedge.
type StallError struct {
	WorkerID int
	TensorID uint32
	// Idle is how long the operation went without an aggregator result
	// before the watchdog fired.
	Idle time.Duration
	// BundlePath is the postmortem JSON written under
	// Config.PostmortemDir ("" when no directory is configured or the
	// write failed; the in-memory bundle is authoritative either way).
	BundlePath string
	// Bundle is the captured postmortem.
	Bundle *Postmortem
}

func (e *StallError) Error() string {
	msg := fmt.Sprintf("core: worker %d tensor %d: no progress for %v", e.WorkerID, e.TensorID, e.Idle)
	if e.BundlePath != "" {
		msg += " (postmortem: " + e.BundlePath + ")"
	}
	return msg
}

func (e *StallError) Unwrap() error { return ErrOpStalled }

// Postmortem is the JSON bundle the stall watchdog captures: everything
// the observability layer knows at the moment a collective wedged, so
// the failure is debuggable offline. tracetool accepts the Flight dump
// inside it like any other flight-recorder dump.
type Postmortem struct {
	// CapturedAt is the wall-clock capture time (RFC3339Nano).
	CapturedAt string `json:"captured_at"`
	// WorkerID / TensorID identify the stalled operation.
	WorkerID int    `json:"worker_id"`
	TensorID uint32 `json:"tensor_id"`
	// IdleNs is how long the operation had made no progress.
	IdleNs int64 `json:"idle_ns"`
	// Quiesced reports whether the worker was quiesced (drain or view
	// change in progress) at capture time. The watchdog suppresses
	// capture while quiesced, so a true here means the quiesce began in
	// the narrow window between the suppression check and the snapshot —
	// the stall is almost certainly the handoff, not a wedge.
	Quiesced bool `json:"quiesced,omitempty"`
	// Machine is the stalled operation's protocol-machine counters: how
	// far the collective got before wedging.
	Machine protocol.WorkerStats `json:"machine"`
	// Worker is the worker's cross-operation traffic counters.
	Worker Stats `json:"worker"`
	// Pump is the receive pump's routing decisions — a wedge upstream of
	// the machine (drops, bad packets) shows up here.
	Pump PumpStats `json:"pump"`
	// Metrics is the process-wide registry snapshot.
	Metrics obs.RegistrySnapshot `json:"metrics"`
	// Pools is the buffer-pool balance sheet (the leak audit's raw data:
	// a stuck packet shows as a get/put imbalance).
	Pools []obs.PoolBalance `json:"pools"`
	// Flight is the flight-recorder dump, when a recorder is installed.
	Flight *obs.FlightDump `json:"flight,omitempty"`
}

// capturePostmortem snapshots the observability surfaces for a stalled
// operation and, when dir is non-empty, writes the bundle to
// <dir>/postmortem-w<id>-t<tid>.json.
func (w *Worker) capturePostmortem(tid uint32, m *protocol.WorkerMachine, idle time.Duration) *StallError {
	pm := &Postmortem{
		CapturedAt: time.Now().Format(time.RFC3339Nano),
		WorkerID:   w.id,
		TensorID:   tid,
		IdleNs:     int64(idle),
		Quiesced:   w.quiesced(),
		Machine:    m.Stats(),
		Worker:     w.Stats.Snapshot(),
		Pump:       w.pump.snapshot(),
		Metrics:    obs.Default.Snapshot(),
		Pools:      obs.PoolBalances(),
	}
	if fr := obs.ActiveFlightRecorder(); fr != nil {
		d := fr.Dump()
		pm.Flight = &d
	}
	serr := &StallError{WorkerID: w.id, TensorID: tid, Idle: idle, Bundle: pm}
	if w.cfg.PostmortemDir == "" {
		return serr
	}
	path := filepath.Join(w.cfg.PostmortemDir, fmt.Sprintf("postmortem-w%d-t%d.json", w.id, tid))
	enc, err := json.MarshalIndent(pm, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(enc, '\n'), 0o644)
	}
	if err == nil {
		serr.BundlePath = path
	}
	// A failed write never masks the stall itself; the bundle stays
	// available on the error.
	return serr
}
