package core

import (
	"testing"
	"time"

	"omnireduce/internal/obs"
	"omnireduce/internal/transport"
)

// End-to-end chaos suite: full AllReduce runs through the seeded chaos
// fabric, verifying exact results and deterministic replay.

// assertNoPoolLeaks fails the test when a chaos run's end-of-run pool
// audit reports unreturned buffers: every GetBuf on the run's receive
// paths must have been matched by a PutBuf once the cluster quiesced.
func assertNoPoolLeaks(t *testing.T, rep *ChaosReport) {
	t.Helper()
	if len(rep.PoolLeaks) != 0 {
		t.Fatalf("pool balance not restored after run: %v", obs.LeaksErr(rep.PoolLeaks))
	}
}

// denseInputs builds fully dense inputs so the number of protocol rounds
// (and hence per-link packets) has a known floor: with bs-sized blocks,
// s streams, and fusion width f, every stream runs about
// n/(bs*s*f) rounds, and every (worker, aggregator) link carries at least
// one packet per stream per round in each direction.
func denseInputs(n, workers int, seed int64) [][]float32 {
	return randomInputs(n, workers, 0, seed)
}

// chaosE2ECfg is the common configuration of the e2e scenarios:
// DeterministicOrder makes the expected result bit-exact.
func chaosE2ECfg(workers int) Config {
	return Config{
		Workers:            workers,
		Reliable:           false,
		DeterministicOrder: true,
		BlockSize:          32,
		FusionWidth:        4,
		Streams:            2,
		RetransmitTimeout:  3 * time.Millisecond,
	}
}

// TestChaosScenarioDeterministicReplay is the acceptance scenario: a
// schedule that drops, reorders, delays, and duplicates packets completes
// AllReduce with the exact dense-sum result, and re-running with the same
// seed reproduces identical injection decisions, verified by the
// deterministic windowed injection-event count.
func TestChaosScenarioDeterministicReplay(t *testing.T) {
	cfg := chaosE2ECfg(3)
	// 512 blocks over 2 streams and 4 columns => ~64 rounds per stream,
	// so every link carries >= ~128 packets: comfortably above Window.
	inputs := denseInputs(32*512, 3, 99)
	sc := transport.Scenario{
		Seed:   2021,
		Window: 100,
		Phases: []transport.Phase{
			{Packets: 40, Drop: 0.05, Dup: 0.05},
			{Packets: 30, Reorder: 0.15, ReorderSpan: 2},
			{Packets: 30, Drop: 0.02, Delay: 2 * time.Millisecond, DelayP: 0.3},
			{Drop: 0.01},
		},
	}

	run := func() *ChaosReport {
		rep, err := RunChaosScenario(cfg, sc, inputs, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a := run()
	b := run()

	for name, rep := range map[string]*ChaosReport{"first": a, "replay": b} {
		if !rep.Exact {
			t.Fatalf("%s run: result not exactly the dense sum (max err %g)", name, rep.MaxAbsErr)
		}
		ev := rep.Events
		if ev.Dropped == 0 || ev.Duplicated == 0 || ev.Reordered == 0 || ev.Delayed == 0 {
			t.Fatalf("%s run: scenario must drop, dup, reorder, and delay; got %+v", name, ev)
		}
		assertNoPoolLeaks(t, rep)
	}
	if a.WindowEvents == 0 {
		t.Fatal("no injection events inside the deterministic window")
	}
	if a.WindowEvents != b.WindowEvents {
		t.Fatalf("same seed, different injection decisions: window events %d vs %d",
			a.WindowEvents, b.WindowEvents)
	}
	// A different seed virtually always lands on a different fingerprint;
	// log rather than assert to keep the test non-flaky.
	sc2 := sc
	sc2.Seed = 2022
	c, err := RunChaosScenario(cfg, sc2, inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.WindowEvents == a.WindowEvents {
		t.Logf("note: seeds 2021 and 2022 coincided on window fingerprint %d", a.WindowEvents)
	}
	if !c.Exact {
		t.Fatalf("different seed must still converge exactly; max err %g", c.MaxAbsErr)
	}
}

// TestChaosRecoveryCountersSurface checks the per-event recovery metrics:
// a lossy run must show retransmissions on the workers and replay /
// duplicate-filter activity on the aggregator, all visible through the
// metrics counter set.
func TestChaosRecoveryCountersSurface(t *testing.T) {
	cfg := chaosE2ECfg(2)
	sc := transport.Scenario{
		Seed:   7,
		Phases: []transport.Phase{{Drop: 0.10, Dup: 0.05}},
	}
	rep, err := RunChaosScenario(cfg, sc, denseInputs(32*256, 2, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact {
		t.Fatalf("max err %g", rep.MaxAbsErr)
	}
	assertNoPoolLeaks(t, rep)
	if rep.Retransmits() == 0 {
		t.Fatal("10% loss with no retransmissions")
	}
	rc := rep.RecoveryCounters()
	if rc.Get("retransmits") != rep.Retransmits() {
		t.Fatalf("counter set retransmits %d != stats %d", rc.Get("retransmits"), rep.Retransmits())
	}
	// Duplicated packets and retransmissions crossing a round boundary
	// both surface on the aggregator.
	var aggRecovery int64
	for _, s := range rep.AggStats {
		aggRecovery += s.DupsFiltered + s.StaleRounds + s.Replays
	}
	if aggRecovery == 0 {
		t.Fatal("aggregator saw no duplicate/stale traffic at 10% loss + 5% dup")
	}
	if rc.Get("dups_filtered")+rc.Get("stale_rounds")+rc.Get("result_replays") != aggRecovery {
		t.Fatal("recovery counter set does not match aggregator stats")
	}
}

// TestChaosBackoffEngages verifies the exponential-backoff path: under a
// long worker->aggregator partition the worker's retransmission timer must
// grow (Backoffs counter) instead of hammering at the base rate.
func TestChaosBackoffEngages(t *testing.T) {
	cfg := chaosE2ECfg(2)
	cfg.RetransmitCeiling = 12 * time.Millisecond
	sc := transport.Scenario{
		Seed: 13,
		Phases: []transport.Phase{
			// Blackhole both workers toward the aggregator (node 2) long
			// enough for several timer expiries.
			{Packets: 8, Partitions: []transport.Partition{{From: -1, To: 2}}},
			{},
		},
	}
	rep, err := RunChaosScenario(cfg, sc, denseInputs(32*64, 2, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact {
		t.Fatalf("max err %g", rep.MaxAbsErr)
	}
	assertNoPoolLeaks(t, rep)
	var backoffs, retrans int64
	for _, s := range rep.WorkerStats {
		backoffs += s.Backoffs
		retrans += s.Retransmits
	}
	if retrans == 0 {
		t.Fatal("partition with no retransmissions")
	}
	if backoffs == 0 {
		t.Fatal("sustained partition did not trigger exponential backoff")
	}
}

// TestChaosE2ESuite runs the heavier combined scenarios; skipped in -short
// so tier-1 stays fast.
func TestChaosE2ESuite(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		name    string
		workers int
		aggs    []int
		n       int
		sc      transport.Scenario
	}{
		{
			name: "everything-at-once", workers: 4, n: 32 * 512,
			sc: transport.Scenario{Seed: 31, Window: 80, Phases: []transport.Phase{
				{Packets: 60, Drop: 0.04, Dup: 0.04, Reorder: 0.1, ReorderSpan: 2,
					Delay: time.Millisecond, DelayP: 0.2},
				{Drop: 0.01},
			}},
		},
		{
			name: "multi-aggregator-chaos", workers: 3, aggs: []int{3, 4}, n: 32 * 384,
			sc: transport.Scenario{Seed: 37, Phases: []transport.Phase{
				{Packets: 50, Drop: 0.05, Burst: &transport.Burst{PEnter: 0.02, PExit: 0.3, DropBad: 0.8}},
				{},
			}},
		},
		{
			name: "alternating-storms", workers: 3, n: 32 * 512,
			sc: transport.Scenario{Seed: 41, Phases: []transport.Phase{
				{Packets: 25, Drop: 0.15},
				{Packets: 25},
				{Packets: 25, Reorder: 0.3, ReorderSpan: 3},
				{Packets: 25},
				{Packets: 25, Dup: 0.2},
				{},
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := chaosE2ECfg(tc.workers)
			cfg.Aggregators = tc.aggs
			rep, err := RunChaosScenario(cfg, tc.sc, denseInputs(tc.n, tc.workers, 17), 0)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Exact {
				t.Fatalf("result drifted from dense sum: max err %g", rep.MaxAbsErr)
			}
			assertNoPoolLeaks(t, rep)
			if rep.Events.Total() == 0 {
				t.Fatal("scenario injected nothing")
			}
			// Replay check on every scenario, not just the acceptance one.
			rep2, err := RunChaosScenario(cfg, tc.sc, denseInputs(tc.n, tc.workers, 17), 0)
			if err != nil {
				t.Fatal(err)
			}
			if tc.sc.Window > 0 && rep.WindowEvents != rep2.WindowEvents {
				t.Fatalf("replay fingerprint mismatch: %d vs %d", rep.WindowEvents, rep2.WindowEvents)
			}
		})
	}
}
