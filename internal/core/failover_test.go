package core

import (
	"errors"
	"math"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/protocol"
	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// liveCluster is a hand-assembled deployment for failover tests: unlike
// startCluster it allows per-aggregator configs (checkpoint peers,
// standbys), mid-test kills, and an explicit shutdown so aggregator
// stats can be asserted inside the test body.
type liveCluster struct {
	nw      *transport.Network
	conns   map[int]transport.Conn
	aggs    map[int]*Aggregator
	workers []*Worker
	wg      sync.WaitGroup
	errc    chan error
	downed  map[int]bool
}

func newLiveCluster(workers int) *liveCluster {
	return &liveCluster{
		nw:     transport.NewNetwork(workers, 4096),
		conns:  make(map[int]transport.Conn),
		aggs:   make(map[int]*Aggregator),
		errc:   make(chan error, 8),
		downed: make(map[int]bool),
	}
}

func (c *liveCluster) addAgg(t *testing.T, id int, cfg Config) *Aggregator {
	t.Helper()
	conn := c.nw.AddNode(id)
	agg, err := NewAggregator(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.conns[id] = conn
	c.aggs[id] = agg
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		if err := agg.Run(); err != nil {
			c.errc <- err
		}
	}()
	return agg
}

func (c *liveCluster) addWorkers(t *testing.T, cfg Config) {
	t.Helper()
	for i := 0; i < cfg.Workers; i++ {
		w, err := NewWorker(c.nw.Conn(i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.workers = append(c.workers, w)
	}
}

// kill closes an aggregator's connection: its Run loop exits and every
// datagram sent to it from now on is silently dropped, exactly like a
// crashed node on a lossy network.
func (c *liveCluster) kill(id int) {
	c.downed[id] = true
	c.conns[id].Close()
}

func (c *liveCluster) shutdown(t *testing.T) {
	t.Helper()
	for _, w := range c.workers {
		w.Close()
	}
	for id, conn := range c.conns {
		if !c.downed[id] {
			conn.Close()
		}
	}
	c.wg.Wait()
	select {
	case err := <-c.errc:
		t.Fatalf("aggregator error: %v", err)
	default:
	}
}

// TestCheckpointGobRoundTrip: the gob framing the live service streams
// between primary and standby must reproduce a representative machine
// snapshot exactly — including nil-ness of LastRes and of absent-worker
// Per entries, which Restore uses to distinguish "worker absent this
// round" from "worker contributed".
func TestCheckpointGobRoundTrip(t *testing.T) {
	ck := &protocol.AggCheckpoint{
		Workers: 3,
		Slots: []protocol.SlotCheckpoint{
			{
				Slot: 0, TensorID: 1, BlockSize: 32, Cols: 2, DType: wire.DTypeF32,
				Cur:     []int64{1, 2},
				Nexts:   [][]int64{{3, 4}, {5, 6}, {7, 8}},
				MinNext: []int64{3, 4},
				Seen:    []bool{true, false, true},
				Count:   2, Round: 9,
				Acc: []protocol.AccumCheckpoint{
					{F: []float32{1.5, -2.25}},
					{Per: [][]float32{{1, 2}, nil, {3, 4}}},
				},
				LastRes: &wire.Packet{
					Type: wire.TypeResult, Version: 8, DType: wire.DTypeF32,
					Slot: 0, TensorID: 1, BlockSize: 32,
					Nexts:  []uint32{3, 4},
					Blocks: []wire.Block{{Index: 7, Data: []float32{0.5, -0.5}}},
				},
				LastResSize: 64,
			},
			// A slot mid-bootstrap: no result yet, LastRes nil.
			{Slot: 1, TensorID: 2, BlockSize: 32, Cols: 1, DType: wire.DTypeF32,
				Cur: []int64{11}, Nexts: [][]int64{{12}}, MinNext: []int64{12},
				Seen: []bool{true, true, true}, Count: 3, Round: 1},
		},
		Sparse: []protocol.SparseCheckpoint{
			{TensorID: 5, Sorted: true, Keys: []uint32{1, 9}, Vals: []float32{2, 3},
				Flushed: 1, Values: map[uint32]float32{4: 2.5},
				Pending: []uint32{4}, NextKey: []int64{4, math.MaxInt64}, Sent: 7},
		},
		Archive: []protocol.ArchiveCheckpoint{
			{Slot: 1, TensorID: 1, Size: 48, Packet: wire.Packet{
				Type: wire.TypeResult, Version: 3, Slot: 1, TensorID: 1,
				BlockSize: 32, Nexts: []uint32{wire.Inf(0)},
			}},
		},
		Finished: []protocol.FinishedCheckpoint{
			{Slot: 0, NS: 0, UpTo: 3, Except: []uint32{2}},
		},
		Stats: protocol.AggStats{PacketsRecvd: 10, RoundsCompleted: 4},
	}

	payload, err := encodeAggCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeAggCheckpoint(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("gob round trip mutated the snapshot:\n got %+v\nwant %+v", got, ck)
	}
	if got.Slots[0].Acc[1].Per[1] != nil {
		t.Fatal("absent-worker Per entry came back non-nil: Restore would mark the worker present")
	}
	if got.Slots[1].LastRes != nil {
		t.Fatal("nil LastRes came back non-nil")
	}
	if _, err := decodeAggCheckpoint(payload[:len(payload)/2]); err == nil {
		t.Fatal("truncated checkpoint decoded")
	}
}

// TestDrainSuppressesPostmortem is the regression test for the stall
// watchdog firing spurious postmortems during a planned drain: while the
// worker is quiesced, stalled periods are expected and must produce
// neither a StallError nor an on-disk bundle. The watchdog re-arms on
// EndQuiesce and then reports the (still wedged) operation normally.
func TestDrainSuppressesPostmortem(t *testing.T) {
	dir := t.TempDir()
	conn := transport.NewWedgedConn(0)
	defer conn.Close()
	const stall = 50 * time.Millisecond
	w, err := NewWorker(conn, Config{
		Workers:       1,
		Aggregators:   []int{1},
		Reliable:      true,
		StallTimeout:  stall,
		PostmortemDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}

	suppressedBefore := obsWatchdogSuppressed.Load()
	w.BeginQuiesce()
	data := make([]float32, 4096)
	for i := range data {
		data[i] = float32(i%5) + 1
	}
	p, err := w.AllReduceAsync(data)
	if err != nil {
		t.Fatal(err)
	}

	// Sit through many watchdog periods while quiesced: the op must stay
	// pending and the postmortem directory must stay empty.
	time.Sleep(8 * stall)
	select {
	case <-p.done:
		t.Fatalf("drained op completed with err=%v while transport is wedged", p.err)
	default:
	}
	if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
		t.Fatalf("postmortem bundle written during drain: %v entries (err %v)", len(ents), err)
	}
	if obsWatchdogSuppressed.Load() == suppressedBefore {
		t.Fatal("watchdog never ticked while quiesced: the suppression path was not exercised")
	}

	// Re-armed, the wedge is a real stall again: typed error + bundle.
	w.EndQuiesce()
	done := make(chan error, 1)
	go func() { done <- p.Wait() }()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired after EndQuiesce")
	}
	if !errors.Is(err, ErrOpStalled) {
		t.Fatalf("post-drain error %v is not ErrOpStalled", err)
	}
	var se *StallError
	if !errors.As(err, &se) || se.BundlePath == "" {
		t.Fatalf("post-drain stall carries no bundle path: %v", err)
	}
	if _, err := os.Stat(se.BundlePath); err != nil {
		t.Fatalf("bundle path not on disk: %v", err)
	}
}

// TestFailoverLiveChaosKill is the tentpole end-to-end: an aggregator
// serving live collectives is killed mid-flight, a standby that has been
// receiving its checkpoint stream is activated into the next view, the
// workers adopt the view in-band, rebind, replay, and every collective
// completes with the exact deterministic dense sum.
func TestFailoverLiveChaosKill(t *testing.T) {
	const (
		W       = 3
		aggA    = 3
		aggB    = 4
		standby = 5
		rounds  = 3
	)
	view1 := protocol.View{Epoch: 1, Workers: []int{0, 1, 2}, Aggregators: []int{aggA, aggB}}
	base := Config{
		Workers:            W,
		Aggregators:        []int{aggA, aggB},
		Reliable:           false,
		DeterministicOrder: true,
		BlockSize:          32,
		FusionWidth:        4,
		Streams:            2,
		RetransmitTimeout:  3 * time.Millisecond,
		View:               &view1,
	}

	c := newLiveCluster(W)
	primCfg := base
	primCfg.CheckpointPeers = []int{standby}
	c.addAgg(t, aggA, primCfg)
	c.addAgg(t, aggB, primCfg)
	sbCfg := base
	sbCfg.Standby = true
	sb := c.addAgg(t, standby, sbCfg)
	c.addWorkers(t, base)

	restoredBefore := obsAggCkRestored.Load()
	viewsBefore := obsWorkerViewChanges.Load()

	inputs := make([][][]float32, rounds)
	wants := make([][]float32, rounds)
	for r := range inputs {
		inputs[r] = randomInputs(32*256, W, 0, int64(1000+r))
		wants[r] = expectedSum(inputs[r])
	}

	var wg sync.WaitGroup
	errs := make([]error, W)
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if errs[i] = w.AllReduce(inputs[r][i]); errs[i] != nil {
					return
				}
			}
		}(i, w)
	}

	// Kill aggB only once the standby provably holds one of its
	// checkpoints — that is the state the takeover will restore from.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if sb.CheckpointsFrom(aggB) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never received a checkpoint from the doomed primary")
		}
		time.Sleep(time.Millisecond)
	}
	c.kill(aggB)
	if err := sb.Activate(protocol.View{Epoch: 2, Workers: []int{0, 1, 2}, Aggregators: []int{aggA, standby}}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("collectives never completed after failover")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	// DeterministicOrder makes the result the exact worker-ordered sum on
	// every worker, failover or not.
	for r := 0; r < rounds; r++ {
		for i := 0; i < W; i++ {
			for j, v := range inputs[r][i] {
				if v != wants[r][j] {
					t.Fatalf("round %d worker %d elem %d: %g != %g (result drifted across failover)", r, i, j, v, wants[r][j])
				}
			}
		}
	}

	if got := obsWorkerViewChanges.Load() - viewsBefore; got < W {
		t.Fatalf("only %d worker view adoptions, want >= %d", got, W)
	}
	if obsAggCkRestored.Load() == restoredBefore {
		t.Fatal("standby never restored a checkpoint")
	}
	if sb.Standby() {
		t.Fatal("standby still passive after Activate")
	}
	if got := sb.View().Epoch; got != 2 {
		t.Fatalf("standby epoch %d after activation", got)
	}

	c.shutdown(t)
	if sb.Stats.RoundsCompleted == 0 {
		t.Fatal("promoted standby completed no rounds: traffic never failed over")
	}
	if surv := c.aggs[aggA].Stats.RoundsCompleted; surv == 0 {
		t.Fatal("surviving primary completed no rounds")
	}
}

// TestSparseLiveMultiAggregator is the live half of the sparse routing
// regression (the machine-level emit destinations are asserted in
// internal/protocol): with two aggregators, consecutive sparse tensors
// must spread across the set — under the old hardcoded Aggregators[0]
// routing the second node never saw a packet.
func TestSparseLiveMultiAggregator(t *testing.T) {
	const (
		W    = 2
		aggA = 2
		aggB = 3
	)
	cfg := Config{Workers: W, Aggregators: []int{aggA, aggB}, Reliable: true, BlockSize: 8}
	c := newLiveCluster(W)
	c.addAgg(t, aggA, cfg)
	c.addAgg(t, aggB, cfg)
	c.addWorkers(t, cfg)

	// Two sequential collectives: tensor IDs 1 then 2, which AggregatorFor
	// round-robins to aggB then aggA.
	for op := 0; op < 2; op++ {
		ins := make([]*tensor.COO, W)
		for i := range ins {
			s := tensor.NewCOO(200)
			for k := i * 60; k < i*60+40; k += 2 {
				s.Append(int32(k), float32(k+op)+0.5)
			}
			ins[i] = s
		}
		want := expectedSparseSum(ins)
		outs := make([]*tensor.COO, W)
		errs := make([]error, W)
		var wg sync.WaitGroup
		for i, w := range c.workers {
			wg.Add(1)
			go func(i int, w *Worker) {
				defer wg.Done()
				outs[i], errs[i] = w.AllReduceSparse(ins[i])
			}(i, w)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("op %d worker %d: %v", op, i, err)
			}
		}
		for i, out := range outs {
			if !out.ToDense().ApproxEqual(want, 1e-5) {
				t.Fatalf("op %d worker %d: wrong sparse sum", op, i)
			}
		}
	}

	c.shutdown(t)
	for _, id := range []int{aggA, aggB} {
		if c.aggs[id].Stats.PacketsRecvd == 0 {
			t.Fatalf("aggregator %d saw no sparse traffic: routing is not spreading by tensor ID", id)
		}
	}
}
