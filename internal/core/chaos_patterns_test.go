package core

import (
	"testing"
	"time"

	"omnireduce/internal/transport"
)

// Table-driven chaos-pattern tests: each failure pattern from the paper's
// unreliable-transport evaluation (burst loss, reordering, delay,
// asymmetric partitions) gets a seeded scenario, and each run must both
// converge to the exact dense sum and keep retransmissions bounded — loss
// recovery must not degenerate into a retransmit storm.

func TestChaosFailurePatterns(t *testing.T) {
	type pattern struct {
		name string
		// cluster shape
		workers int
		aggs    []int
		blocks  int
		// scenario
		sc transport.Scenario
		// retransmission bounds over all workers: minRetrans proves the
		// pattern actually exercised recovery, maxRetrans proves recovery
		// stayed proportionate to the injected damage.
		minRetrans int64
		maxRetrans int64
		// extra per-pattern assertions on the report
		check func(t *testing.T, rep *ChaosReport)
	}

	patterns := []pattern{
		{
			name:    "burst-loss",
			workers: 3,
			blocks:  256,
			sc: transport.Scenario{
				Seed: 101,
				Phases: []transport.Phase{
					// Gilbert–Elliott: rare entry into a bad state that
					// drops most packets, so losses cluster in runs.
					{Packets: 120, Burst: &transport.Burst{
						PEnter: 0.03, PExit: 0.25, DropGood: 0.0, DropBad: 0.9,
					}},
					{},
				},
			},
			minRetrans: 1,
			maxRetrans: 2000,
			check: func(t *testing.T, rep *ChaosReport) {
				if rep.Events.BurstDrops == 0 {
					t.Fatal("burst pattern produced no burst drops")
				}
			},
		},
		{
			name:    "reorder-heavy",
			workers: 3,
			blocks:  256,
			sc: transport.Scenario{
				Seed: 103,
				Phases: []transport.Phase{
					{Packets: 150, Reorder: 0.35, ReorderSpan: 4},
					{},
				},
			},
			minRetrans: 0, // reordering alone may be absorbed by versioning
			maxRetrans: 500,
			check: func(t *testing.T, rep *ChaosReport) {
				if rep.Events.Reordered == 0 {
					t.Fatal("reorder pattern reordered nothing")
				}
			},
		},
		{
			name:    "delay-heavy",
			workers: 3,
			blocks:  256,
			sc: transport.Scenario{
				Seed: 107,
				Phases: []transport.Phase{
					// Delays beyond the retransmit timeout force spurious
					// retransmissions that the aggregator must filter.
					{Packets: 80, Delay: 5 * time.Millisecond, DelayP: 0.4},
					{},
				},
			},
			minRetrans: 1,
			maxRetrans: 3000,
			check: func(t *testing.T, rep *ChaosReport) {
				if rep.Events.Delayed == 0 {
					t.Fatal("delay pattern delayed nothing")
				}
				var filtered int64
				for _, s := range rep.AggStats {
					filtered += s.DupsFiltered + s.StaleRounds + s.StaleFinished
				}
				if filtered == 0 {
					t.Fatal("late originals after retransmission were never filtered")
				}
			},
		},
		{
			name:    "asymmetric-partition",
			workers: 2,
			blocks:  64,
			sc: transport.Scenario{
				Seed: 109,
				Phases: []transport.Phase{
					// Worker 0 -> aggregator (node 2) only; the reverse
					// path and worker 1 stay healthy, so the aggregator
					// keeps answering a worker it cannot hear.
					{Packets: 15, Partitions: []transport.Partition{{From: 0, To: 2}}},
					{},
				},
			},
			minRetrans: 1,
			maxRetrans: 600,
			check: func(t *testing.T, rep *ChaosReport) {
				if rep.Events.Partitioned == 0 {
					t.Fatal("partition pattern blackholed nothing")
				}
			},
		},
	}

	for _, p := range patterns {
		t.Run(p.name, func(t *testing.T) {
			cfg := Config{
				Workers:            p.workers,
				Aggregators:        p.aggs,
				Reliable:           false,
				DeterministicOrder: true,
				BlockSize:          32,
				FusionWidth:        4,
				Streams:            2,
				RetransmitTimeout:  2 * time.Millisecond,
				RetransmitCeiling:  10 * time.Millisecond,
			}
			inputs := randomInputs(32*p.blocks, p.workers, 0, int64(p.sc.Seed))
			rep, err := RunChaosScenario(cfg, p.sc, inputs, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Exact {
				t.Fatalf("pattern broke correctness: max err %g", rep.MaxAbsErr)
			}
			got := rep.Retransmits()
			if got < p.minRetrans {
				t.Fatalf("retransmits %d below floor %d: pattern did not exercise recovery", got, p.minRetrans)
			}
			if got > p.maxRetrans {
				t.Fatalf("retransmits %d above bound %d: recovery degenerated into a storm", got, p.maxRetrans)
			}
			if p.check != nil {
				p.check(t, rep)
			}
			// Every pattern must be replayable: same scenario, same
			// windowed decisions (full-run counts can differ only through
			// traffic volume, which the window excludes).
			sc := p.sc
			sc.Window = 30
			r1, err := RunChaosScenario(cfg, sc, inputs, 0)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := RunChaosScenario(cfg, sc, inputs, 0)
			if err != nil {
				t.Fatal(err)
			}
			if r1.WindowEvents != r2.WindowEvents {
				t.Fatalf("pattern not replayable: window events %d vs %d", r1.WindowEvents, r2.WindowEvents)
			}
		})
	}
}
