package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Driver-level aggregator tests: protocol error surfacing through the
// transport handler and lifecycle behavior. The aggregation internals
// (accumulator modes, archive, finished tracking, machine traces) are
// tested in internal/protocol.

func TestAggregatorRejectsUnknownWorker(t *testing.T) {
	nw := transport.NewNetwork(1, 16)
	aggConn := nw.AddNode(1)
	defer aggConn.Close()
	cfg := Config{Workers: 1, Aggregators: []int{1}, Reliable: true}.withDefaults()
	a, err := NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &wire.Packet{
		Type: wire.TypeData, WID: 9, TensorID: 1, BlockSize: 4,
		Nexts: []uint32{wire.Inf(0)},
	}
	err = a.handle(transport.Message{From: 9, Data: wire.AppendPacket(nil, p)})
	if err == nil || !strings.Contains(err.Error(), "unknown worker") {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregatorRejectsGeometryChange(t *testing.T) {
	nw := transport.NewNetwork(2, 16)
	aggConn := nw.AddNode(2)
	defer aggConn.Close()
	cfg := Config{Workers: 2, Aggregators: []int{2}, Reliable: true}.withDefaults()
	a, err := NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := &wire.Packet{
		Type: wire.TypeData, WID: 0, TensorID: 1, BlockSize: 4,
		Nexts:  []uint32{wire.Inf(0), wire.Inf(1)},
		Blocks: []wire.Block{{Index: 0, Data: []float32{1, 2, 3, 4}}},
	}
	if err := a.handle(transport.Message{From: 0, Data: wire.AppendPacket(nil, first)}); err != nil {
		t.Fatal(err)
	}
	// Same tensor, different fusion width from the other worker.
	bad := &wire.Packet{
		Type: wire.TypeData, WID: 1, TensorID: 1, BlockSize: 4,
		Nexts: []uint32{wire.Inf(0)},
	}
	err = a.handle(transport.Message{From: 1, Data: wire.AppendPacket(nil, bad)})
	if err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregatorRejectsWrongBlockIndex(t *testing.T) {
	nw := transport.NewNetwork(2, 16)
	aggConn := nw.AddNode(2)
	defer aggConn.Close()
	cfg := Config{Workers: 2, Aggregators: []int{2}, Reliable: true}.withDefaults()
	a, err := NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(wid uint16, idx uint32) []byte {
		return wire.AppendPacket(nil, &wire.Packet{
			Type: wire.TypeData, WID: wid, TensorID: 1, BlockSize: 2,
			Nexts:  []uint32{4},
			Blocks: []wire.Block{{Index: idx, Data: []float32{1, 2}}},
		})
	}
	if err := a.handle(transport.Message{From: 0, Data: mk(0, 0)}); err != nil {
		t.Fatal(err)
	}
	// Worker 1 claims a different block for the same column position.
	err = a.handle(transport.Message{From: 1, Data: mk(1, 3)})
	if err == nil {
		t.Fatal("expected block index mismatch error")
	}
}

func TestAggregatorRejectsGarbage(t *testing.T) {
	nw := transport.NewNetwork(1, 16)
	aggConn := nw.AddNode(1)
	defer aggConn.Close()
	cfg := Config{Workers: 1, Aggregators: []int{1}, Reliable: true}.withDefaults()
	a, err := NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.handle(transport.Message{From: 0, Data: []byte{99, 1, 2}}); err == nil {
		t.Fatal("expected error for unknown message type")
	}
	if err := a.handle(transport.Message{From: 0, Data: []byte{wire.TypeData, 0}}); err == nil {
		t.Fatal("expected decode error for truncated packet")
	}
}

func TestHierarchicalAllReduce(t *testing.T) {
	cfg := Config{Workers: 2, Reliable: true}
	c := startCluster(t, cfg, 0, 31)
	const devices, n = 4, 3_000
	locals := make([][][]float32, 2) // [node][device][elem]
	want := make([]float32, n)
	inputs := randomInputs(n, 2*devices, 0.6, 17)
	for node := 0; node < 2; node++ {
		locals[node] = make([][]float32, devices)
		for d := 0; d < devices; d++ {
			locals[node][d] = inputs[node*devices+d]
			for i, v := range locals[node][d] {
				want[i] += v
			}
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			errs[node] = c.workers[node].HierarchicalAllReduce(locals[node])
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}
	for node := 0; node < 2; node++ {
		for d := 0; d < devices; d++ {
			for i := range want {
				diff := float64(locals[node][d][i]) - float64(want[i])
				if diff > 1e-3 || diff < -1e-3 {
					t.Fatalf("node %d dev %d elem %d: %v vs %v", node, d, i, locals[node][d][i], want[i])
				}
			}
		}
	}
}

func TestHierarchicalAllReduceValidation(t *testing.T) {
	cfg := Config{Workers: 1, Reliable: true}
	c := startCluster(t, cfg, 0, 32)
	if err := c.workers[0].HierarchicalAllReduce(nil); err != nil {
		t.Fatalf("empty locals: %v", err)
	}
	err := c.workers[0].HierarchicalAllReduce([][]float32{{1, 2}, {1}})
	if err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestAggregatorRunStopsOnClose(t *testing.T) {
	nw := transport.NewNetwork(1, 4)
	conn := nw.AddNode(1)
	a, err := NewAggregator(conn, Config{Workers: 1, Aggregators: []int{1}, Reliable: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Run() }()
	time.Sleep(5 * time.Millisecond)
	conn.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v on orderly close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop")
	}
}
