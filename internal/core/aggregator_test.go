package core

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Unit tests for aggregator internals: the accumulator modes, the result
// archive, and protocol error paths.

func TestAccumFloat(t *testing.T) {
	a := newAccum(Config{})
	a.add(1, []float32{1, 2})
	a.add(0, []float32{10, 20, 30}) // longer contribution grows the slot
	got := a.result()
	if len(got) != 3 || got[0] != 11 || got[1] != 22 || got[2] != 30 {
		t.Fatalf("result = %v", got)
	}
	a.reset()
	a.add(0, []float32{5})
	if got := a.result(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("after reset: %v", got)
	}
}

func TestAccumQuantized(t *testing.T) {
	a := newAccum(Config{QuantizeScale: 4}) // quarter resolution
	a.add(0, []float32{0.1})                // rounds to 0.4*... 0.1*4=0.4 -> 0
	a.add(1, []float32{0.5})                // 0.5*4=2
	got := a.result()
	if len(got) != 1 {
		t.Fatalf("result = %v", got)
	}
	if got[0] != 0.5 { // (0 + 2)/4
		t.Fatalf("quantized sum = %v, want 0.5", got[0])
	}
}

func TestAccumDeterministicOrder(t *testing.T) {
	// Floating-point addition is not associative; the deterministic
	// accumulator must reduce in ascending worker-ID order regardless of
	// arrival order.
	mk := func(order []int) []float32 {
		a := newAccum(Config{DeterministicOrder: true})
		vals := map[int][]float32{
			0: {1e8}, 1: {-1e8}, 2: {1}, 3: {0.5},
		}
		for _, w := range order {
			a.add(w, vals[w])
		}
		return a.result()
	}
	r1 := mk([]int{0, 1, 2, 3})
	r2 := mk([]int{3, 2, 1, 0})
	r3 := mk([]int{2, 0, 3, 1})
	if r1[0] != r2[0] || r2[0] != r3[0] {
		t.Fatalf("order-dependent results: %v %v %v", r1, r2, r3)
	}
}

func TestAccumDeterministicQuantized(t *testing.T) {
	a := newAccum(Config{DeterministicOrder: true, QuantizeScale: 1 << 10})
	a.add(1, []float32{0.25})
	a.add(0, []float32{0.5})
	got := a.result()
	if math.Abs(float64(got[0])-0.75) > 1e-3 {
		t.Fatalf("det+quant = %v", got)
	}
}

func TestArchiveEviction(t *testing.T) {
	nw := transport.NewNetwork(1, 4)
	conn := nw.AddNode(1)
	defer conn.Close()
	a, err := NewAggregator(conn, Config{Workers: 1, Aggregators: []int{1}, Reliable: true})
	if err != nil {
		t.Fatal(err)
	}
	for tid := uint32(1); tid <= 40; tid++ {
		a.archiveResult(0, tid, []byte{byte(tid)})
	}
	m := a.archive[0]
	if len(m) != archiveDepth {
		t.Fatalf("archive holds %d entries, want %d", len(m), archiveDepth)
	}
	if _, ok := m[40]; !ok {
		t.Fatal("archive lost the newest tensor")
	}
	if _, ok := m[40-archiveDepth]; ok {
		t.Fatal("archive kept an evicted tensor")
	}
	if !a.isFinished(0, 3) {
		t.Fatal("isFinished should report evicted tensor 3")
	}
	if a.isFinished(0, 41) {
		t.Fatal("isFinished must not report future tensor")
	}
}

func TestFinishedTrackerOutOfOrder(t *testing.T) {
	f := &finishedTracker{}
	f.add(3)
	if f.has(1) || f.has(2) || !f.has(3) {
		t.Fatal("out-of-order add wrong")
	}
	f.add(1)
	if !f.has(1) || f.has(2) {
		t.Fatal("prefix tracking wrong")
	}
	f.add(2)
	if f.upTo != 3 {
		t.Fatalf("prefix did not collapse: upTo=%d except=%v", f.upTo, f.except)
	}
	if len(f.except) != 0 {
		t.Fatalf("exceptions not drained: %v", f.except)
	}
	f.add(2) // re-add below prefix: no-op
	if f.upTo != 3 {
		t.Fatal("re-add changed prefix")
	}
}

func TestAggregatorRejectsUnknownWorker(t *testing.T) {
	nw := transport.NewNetwork(1, 16)
	aggConn := nw.AddNode(1)
	defer aggConn.Close()
	cfg := Config{Workers: 1, Aggregators: []int{1}, Reliable: true}.withDefaults()
	a, err := NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &wire.Packet{
		Type: wire.TypeData, WID: 9, TensorID: 1, BlockSize: 4,
		Nexts: []uint32{wire.Inf(0)},
	}
	err = a.handle(transport.Message{From: 9, Data: wire.AppendPacket(nil, p)})
	if err == nil || !strings.Contains(err.Error(), "unknown worker") {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregatorRejectsGeometryChange(t *testing.T) {
	nw := transport.NewNetwork(2, 16)
	aggConn := nw.AddNode(2)
	defer aggConn.Close()
	cfg := Config{Workers: 2, Aggregators: []int{2}, Reliable: true}.withDefaults()
	a, err := NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := &wire.Packet{
		Type: wire.TypeData, WID: 0, TensorID: 1, BlockSize: 4,
		Nexts:  []uint32{wire.Inf(0), wire.Inf(1)},
		Blocks: []wire.Block{{Index: 0, Data: []float32{1, 2, 3, 4}}},
	}
	if err := a.handle(transport.Message{From: 0, Data: wire.AppendPacket(nil, first)}); err != nil {
		t.Fatal(err)
	}
	// Same tensor, different fusion width from the other worker.
	bad := &wire.Packet{
		Type: wire.TypeData, WID: 1, TensorID: 1, BlockSize: 4,
		Nexts: []uint32{wire.Inf(0)},
	}
	err = a.handle(transport.Message{From: 1, Data: wire.AppendPacket(nil, bad)})
	if err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregatorRejectsWrongBlockIndex(t *testing.T) {
	nw := transport.NewNetwork(2, 16)
	aggConn := nw.AddNode(2)
	defer aggConn.Close()
	cfg := Config{Workers: 2, Aggregators: []int{2}, Reliable: true}.withDefaults()
	a, err := NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(wid uint16, idx uint32) []byte {
		return wire.AppendPacket(nil, &wire.Packet{
			Type: wire.TypeData, WID: wid, TensorID: 1, BlockSize: 2,
			Nexts:  []uint32{4},
			Blocks: []wire.Block{{Index: idx, Data: []float32{1, 2}}},
		})
	}
	if err := a.handle(transport.Message{From: 0, Data: mk(0, 0)}); err != nil {
		t.Fatal(err)
	}
	// Worker 1 claims a different block for the same column position.
	err = a.handle(transport.Message{From: 1, Data: mk(1, 3)})
	if err == nil {
		t.Fatal("expected block index mismatch error")
	}
}

func TestAggregatorRejectsGarbage(t *testing.T) {
	nw := transport.NewNetwork(1, 16)
	aggConn := nw.AddNode(1)
	defer aggConn.Close()
	cfg := Config{Workers: 1, Aggregators: []int{1}, Reliable: true}.withDefaults()
	a, err := NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.handle(transport.Message{From: 0, Data: []byte{99, 1, 2}}); err == nil {
		t.Fatal("expected error for unknown message type")
	}
	if err := a.handle(transport.Message{From: 0, Data: []byte{wire.TypeData, 0}}); err == nil {
		t.Fatal("expected decode error for truncated packet")
	}
}

func TestHierarchicalAllReduce(t *testing.T) {
	cfg := Config{Workers: 2, Reliable: true}
	c := startCluster(t, cfg, 0, 31)
	const devices, n = 4, 3_000
	locals := make([][][]float32, 2) // [node][device][elem]
	want := make([]float32, n)
	inputs := randomInputs(n, 2*devices, 0.6, 17)
	for node := 0; node < 2; node++ {
		locals[node] = make([][]float32, devices)
		for d := 0; d < devices; d++ {
			locals[node][d] = inputs[node*devices+d]
			for i, v := range locals[node][d] {
				want[i] += v
			}
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			errs[node] = c.workers[node].HierarchicalAllReduce(locals[node])
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}
	for node := 0; node < 2; node++ {
		for d := 0; d < devices; d++ {
			for i := range want {
				diff := float64(locals[node][d][i]) - float64(want[i])
				if diff > 1e-3 || diff < -1e-3 {
					t.Fatalf("node %d dev %d elem %d: %v vs %v", node, d, i, locals[node][d][i], want[i])
				}
			}
		}
	}
}

func TestHierarchicalAllReduceValidation(t *testing.T) {
	cfg := Config{Workers: 1, Reliable: true}
	c := startCluster(t, cfg, 0, 32)
	if err := c.workers[0].HierarchicalAllReduce(nil); err != nil {
		t.Fatalf("empty locals: %v", err)
	}
	err := c.workers[0].HierarchicalAllReduce([][]float32{{1, 2}, {1}})
	if err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestWorkerDecodeResultErrors(t *testing.T) {
	// A worker must reject results for streams it does not know.
	nw := transport.NewNetwork(2, 16)
	cfg := Config{Workers: 1, Aggregators: []int{1}, Reliable: true}.withDefaults()
	w, err := NewWorker(nw.Conn(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	streams := []*wStream{{idx: 0, cols: 1}}
	res := wire.AppendPacket(nil, &wire.Packet{
		Type: wire.TypeResult, Slot: 5, TensorID: 1, BlockSize: 4, Nexts: []uint32{wire.Inf(0)},
	})
	if _, _, err := w.decodeResult(transport.Message{From: 1, Data: res}, streams, 1); err == nil {
		t.Fatal("expected unknown stream error")
	}
	// Wrong message type.
	bad := wire.AppendPacket(nil, &wire.Packet{
		Type: wire.TypeData, Slot: 0, TensorID: 1, BlockSize: 4, Nexts: []uint32{wire.Inf(0)},
	})
	if _, _, err := w.decodeResult(transport.Message{From: 1, Data: bad}, streams, 1); err == nil {
		t.Fatal("expected type error")
	}
	// Stale tensor IDs are silently dropped.
	stale := wire.AppendPacket(nil, &wire.Packet{
		Type: wire.TypeResult, Slot: 0, TensorID: 7, BlockSize: 4, Nexts: []uint32{wire.Inf(0)},
	})
	st, p, err := w.decodeResult(transport.Message{From: 1, Data: stale}, streams, 1)
	if err != nil || st != nil || p != nil {
		t.Fatalf("stale result not dropped: %v %v %v", st, p, err)
	}
}

func TestAggregatorRunStopsOnClose(t *testing.T) {
	nw := transport.NewNetwork(1, 4)
	conn := nw.AddNode(1)
	a, err := NewAggregator(conn, Config{Workers: 1, Aggregators: []int{1}, Reliable: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Run() }()
	time.Sleep(5 * time.Millisecond)
	conn.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v on orderly close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop")
	}
}
