package core

import (
	"fmt"
	"sync"
	"time"

	"omnireduce/internal/protocol"
	"omnireduce/internal/tenant"
	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Typed admission errors, re-exported from internal/tenant so callers
// can errors.Is against the core API surface alongside
// ErrOpBackpressure. A rejection raised on the aggregator crosses the
// wire as a control reason code and resurfaces as the same value here.
var (
	// ErrTenantQuota reports a per-tenant limit (MaxJobs or
	// MaxInFlightOps) was exceeded on the aggregator.
	ErrTenantQuota = tenant.ErrTenantQuota
	// ErrAdmissionRejected is the aggregator's generic admission refusal.
	ErrAdmissionRejected = tenant.ErrAdmissionRejected
	// ErrAggregatorDraining reports the aggregator is draining for a
	// rolling restart; callers should retry against a replacement.
	ErrAggregatorDraining = tenant.ErrDraining
	// ErrTidCollision reports a tensor-ID namespace collision detected by
	// the aggregator's registry.
	ErrTidCollision = tenant.ErrTidCollision
	// ErrUnknownJob reports an operation for a job never opened on the
	// aggregator.
	ErrUnknownJob = tenant.ErrUnknownJob
)

// Job is an open session for one (tenant, job) identity on a worker's
// connection: a handle that mints the job's tensor IDs inside its own
// namespace and runs collectives against the shared aggregator fleet.
// Operations of different jobs on one connection share the worker's
// receive pump, free-listed driver states, and transport batching; only
// the protocol identity (namespace, job-relative worker ID, worker
// count) differs per job.
//
// Jobs are SPMD like workers: every member must open the same job with
// the same worker count and issue the same operations in the same order.
type Job struct {
	w   *Worker
	key tenant.JobKey
	ns  uint32
	wid int
	// pcfg is the job's protocol configuration: the worker's own with the
	// job's worker count substituted.
	pcfg protocol.Config

	mu     sync.Mutex
	seq    uint32
	closed bool
}

// Key returns the job's (tenant, job) identity.
func (j *Job) Key() tenant.JobKey { return j.key }

// Namespace returns the job's tensor-ID namespace.
func (j *Job) Namespace() uint32 { return j.ns }

// OpenJob opens a session for key (tenant, job) using the worker's own
// ID and worker count as the job-relative ones — the common case where
// the fabric is the job. See OpenJobAs for multiplexing differently
// shaped jobs over one fabric.
func (w *Worker) OpenJob(tenantName, jobName string) (*Job, error) {
	return w.OpenJobAs(tenantName, jobName, w.id, w.cfg.Workers)
}

// OpenJobAs opens a session for (tenant, job) in which this connection
// acts as job-relative worker wid of workers total. It performs the
// registration handshake with every aggregator: each must accept before
// any collective runs, so quota violations, namespace collisions, and
// draining aggregators surface here as typed errors (ErrTenantQuota,
// ErrTidCollision, ErrAggregatorDraining) rather than as mid-collective
// failures.
func (w *Worker) OpenJobAs(tenantName, jobName string, wid, workers int) (*Job, error) {
	key := tenant.JobKey{Tenant: tenantName, Job: jobName}
	if err := key.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 || wid < 0 || wid >= workers {
		return nil, fmt.Errorf("core: job %s: invalid wid %d of %d workers", key, wid, workers)
	}
	pcfg := w.cfg.proto()
	pcfg.Workers = workers
	j := &Job{
		w:    w,
		key:  key,
		ns:   protocol.NamespaceOf(tenantName, jobName),
		wid:  wid,
		pcfg: pcfg,
	}
	if err := j.open(); err != nil {
		return nil, err
	}
	return j, nil
}

// ctrlTid is the job's control-channel tensor ID: sequence 0 of its
// namespace, which operation minting never uses.
func (j *Job) ctrlTid() uint32 { return protocol.TidFor(j.ns, 0) }

// open runs the JobOpen handshake: the request goes to every aggregator
// and each must answer Accept. On unreliable transports unacknowledged
// aggregators are re-asked every RetransmitTimeout (the request and its
// reply are idempotent); the whole handshake is bounded by
// Config.OpenTimeout.
func (j *Job) open() error {
	w := j.w
	q, err := w.registerCtrl(j.ctrlTid())
	if err != nil {
		return fmt.Errorf("core: open job %s: %w", j.key, err)
	}
	defer w.unregisterCtrl(j.ctrlTid(), q)

	req := wire.ControlPacket{
		Type:     wire.TypeJobOpen,
		WID:      uint16(j.wid),
		TensorID: j.ctrlTid(),
		Workers:  uint16(j.pcfg.Workers),
		Tenant:   j.key.Tenant,
		Job:      j.key.Job,
	}
	buf := wire.AppendControl(nil, &req)
	accepted := make(map[int]bool, len(w.cfg.Aggregators))
	send := func() error {
		for _, agg := range w.cfg.Aggregators {
			if accepted[agg] {
				continue
			}
			if err := w.conn.Send(agg, buf); err != nil {
				return fmt.Errorf("core: open job %s: send to aggregator %d: %w", j.key, agg, err)
			}
		}
		return nil
	}
	if err := send(); err != nil {
		return err
	}

	var resendCh <-chan time.Time
	if !w.cfg.Reliable {
		t := time.NewTicker(w.cfg.RetransmitTimeout)
		defer t.Stop()
		resendCh = t.C
	}
	deadline := time.NewTimer(w.cfg.OpenTimeout)
	defer deadline.Stop()

	for {
		select {
		case msg := <-q.ch:
			cp, derr := wire.DecodeControl(msg.Data)
			transport.PutBuf(msg.Data)
			if derr != nil {
				continue // stale or malformed; the resend loop re-asks
			}
			switch cp.Type {
			case wire.TypeJobAccept:
				accepted[msg.From] = true
				if len(accepted) == len(w.cfg.Aggregators) {
					return nil
				}
			case wire.TypeJobReject:
				rerr := tenant.ErrorForReason(cp.Reason)
				if rerr == nil {
					rerr = tenant.ErrAdmissionRejected
				}
				return fmt.Errorf("core: open job %s: aggregator %d: %w", j.key, msg.From, rerr)
			}
		case <-q.fail:
			return fmt.Errorf("core: open job %s: %w", j.key, ErrOpBackpressure)
		case <-w.closed:
			w.mu.Lock()
			err := w.recvErr
			w.mu.Unlock()
			return fmt.Errorf("core: open job %s: receive: %w", j.key, err)
		case <-resendCh:
			if err := send(); err != nil {
				return err
			}
		case <-deadline.C:
			return fmt.Errorf("core: open job %s: no answer from %d/%d aggregators within %v",
				j.key, len(w.cfg.Aggregators)-len(accepted), len(w.cfg.Aggregators), w.cfg.OpenTimeout)
		}
	}
}

// registerCtrl installs a control-channel queue for tid in the receive
// pump's routing table. Control channels bypass the opState free list —
// they carry a handful of packets per job lifetime and need no decode or
// encode state.
func (w *Worker) registerCtrl(tid uint32) (*opQueue, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case <-w.closed:
		return nil, fmt.Errorf("worker %d receive: %w", w.id, w.recvErr)
	default:
	}
	if w.ops[tid] != nil {
		return nil, fmt.Errorf("worker %d: job control channel %#x busy (job already opening or open)", w.id, tid)
	}
	q := newOpQueue(16, tid)
	w.ops[tid] = q
	return q, nil
}

// unregisterCtrl removes a control queue and recycles anything queued.
func (w *Worker) unregisterCtrl(tid uint32, q *opQueue) {
	w.mu.Lock()
	if w.ops[tid] == q {
		delete(w.ops, tid)
	}
	w.mu.Unlock()
	q.finish()
}

// beginOp mints the job's next tensor ID and checks out a driver state.
func (j *Job) beginOp() (uint32, *opState, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, nil, fmt.Errorf("core: job %s: session closed", j.key)
	}
	if j.seq >= protocol.MaxTidSeq {
		j.mu.Unlock()
		return 0, nil, fmt.Errorf("core: job %s exhausted its tensor-ID space; reopen the session", j.key)
	}
	j.seq++
	tid := protocol.TidFor(j.ns, j.seq)
	j.mu.Unlock()
	st, err := j.w.beginOpAt(tid)
	if err != nil {
		return 0, nil, err
	}
	return tid, st, nil
}

// AllReduce sums data element-wise across the job's workers; on return,
// data holds the job-global sum. Typed admission errors (ErrTenantQuota,
// ErrAggregatorDraining, ...) surface when the aggregator refuses the
// operation.
func (j *Job) AllReduce(data []float32) error {
	p, err := j.AllReduceAsync(data)
	if err != nil {
		return err
	}
	return p.Wait()
}

// AllReduceAsync starts an AllReduce on the job and returns immediately;
// see Worker.AllReduceAsync for the overlap contract.
func (j *Job) AllReduceAsync(data []float32) (*Pending, error) {
	p := &Pending{done: make(chan struct{})}
	if len(data) == 0 {
		close(p.done)
		return p, nil
	}
	tid, st, err := j.beginOp()
	if err != nil {
		return nil, err
	}
	go func() {
		defer close(p.done)
		defer j.w.endOp(tid, st)
		p.err = j.w.runAllReduce(data, tid, st, j.pcfg, j.wid)
	}()
	return p, nil
}

// AllReduceSparse sums COO tensors across the job's workers (Algorithm
// 3); see Worker.AllReduceSparse.
func (j *Job) AllReduceSparse(in *tensor.COO) (*tensor.COO, error) {
	tid, st, err := j.beginOp()
	if err != nil {
		return nil, err
	}
	defer j.w.endOp(tid, st)
	return j.w.runAllReduceSparse(in, tid, st, j.pcfg, j.wid)
}

// Close ends the session: a best-effort JobClose notice goes to every
// aggregator (the registry also reaps via drain), and further operations
// on the handle fail. In-flight operations are unaffected.
func (j *Job) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	req := wire.ControlPacket{
		Type:     wire.TypeJobClose,
		WID:      uint16(j.wid),
		TensorID: j.ctrlTid(),
		Tenant:   j.key.Tenant,
		Job:      j.key.Job,
	}
	buf := wire.AppendControl(nil, &req)
	for _, agg := range j.w.cfg.Aggregators {
		// Best effort: a closed transport or unreachable aggregator must
		// not fail session teardown.
		_ = j.w.conn.Send(agg, buf)
	}
	return nil
}
