package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/tenant"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Worker is one OmniReduce worker endpoint.
//
// Collectives are SPMD: every worker must issue the same operations in
// the same order. Operations may overlap: AllReduceAsync starts a
// collective and returns a Pending handle, allowing several tensors
// (e.g. DDP gradient buckets) in flight at once, exactly as the paper's
// PyTorch integration overlaps bucket aggregation with backpropagation.
// The blocking AllReduce is AllReduceAsync + Wait.
//
// The protocol logic lives in protocol.WorkerMachine; the Worker is its
// I/O driver: one goroutine per operation pumps transport messages and
// retransmission ticks through the machine and transmits its emits.
type Worker struct {
	conn transport.Conn
	cfg  Config
	id   int

	mu        sync.Mutex
	tensorSeq uint32
	ops       map[uint32]*opQueue
	closed    chan struct{}
	recvErr   error
	shutdown  bool // Close ran; released states are freed, not recycled

	// view is the current membership view (Epoch 0 = static legacy
	// membership, no epoch enforcement); guarded by mu. quiesce, when
	// positive, suppresses the stall watchdog (graceful drain / failover
	// handoff in progress — see BeginQuiesce).
	view    protocol.View
	quiesce atomic.Int32

	// free parks finished opStates for reuse; stateNew/stateReused tally
	// how often beginOp allocated fresh state vs recycled (see
	// OpStateStats). Steady state on a long-lived connection is one state
	// per concurrently in-flight collective, reused forever after.
	free        []*opState
	stateNew    int64
	stateReused int64

	// pump tallies the receive pump's routing decisions; see PumpSnapshot.
	pump pumpCounters

	// Stats accumulates per-worker traffic counters across operations.
	// Fields are updated atomically (operations may overlap); use
	// Snapshot for a consistent-enough view while operations run.
	Stats Stats
}

// Stats counts protocol traffic for analysis and tests. It mirrors
// protocol.WorkerStats field for field; the driver folds machine counters
// in atomically as events are processed.
type Stats struct {
	BlocksSent    int64 // non-bootstrap data blocks transmitted
	BlocksSkipped int64 // zero blocks elided by the next-non-zero look-ahead
	PacketsSent   int64
	BytesSent     int64 // encoded packet bytes, including retransmissions
	Retransmits   int64 // timer-driven resends, distinct from PacketsSent
	AcksSent      int64 // empty payload packets (unreliable mode)
	ResultsRecvd  int64
	StaleResults  int64 // duplicate or out-of-round results filtered out
	Backoffs      int64 // retransmissions sent at a backed-off (>base) timeout
}

// Snapshot returns an atomic-read copy of the counters.
func (s *Stats) Snapshot() Stats {
	return Stats{
		BlocksSent:    atomic.LoadInt64(&s.BlocksSent),
		BlocksSkipped: atomic.LoadInt64(&s.BlocksSkipped),
		PacketsSent:   atomic.LoadInt64(&s.PacketsSent),
		BytesSent:     atomic.LoadInt64(&s.BytesSent),
		Retransmits:   atomic.LoadInt64(&s.Retransmits),
		AcksSent:      atomic.LoadInt64(&s.AcksSent),
		ResultsRecvd:  atomic.LoadInt64(&s.ResultsRecvd),
		StaleResults:  atomic.LoadInt64(&s.StaleResults),
		Backoffs:      atomic.LoadInt64(&s.Backoffs),
	}
}

// RecoveryCounters exports the loss-recovery subset of the counters as a
// metrics counter set (one named counter per recovery event kind), ready
// for rendering or merging across workers.
func (s *Stats) RecoveryCounters() *metrics.Counters {
	snap := s.Snapshot()
	c := metrics.NewCounters()
	c.Add("retransmits", snap.Retransmits)
	c.Add("backoffs", snap.Backoffs)
	c.Add("acks_sent", snap.AcksSent)
	c.Add("stale_results_filtered", snap.StaleResults)
	return c
}

// add folds the delta between two machine-counter snapshots into the
// shared atomic counters, keeping Stats live while operations run.
func (s *Stats) add(cur, prev protocol.WorkerStats) {
	atomic.AddInt64(&s.BlocksSent, cur.BlocksSent-prev.BlocksSent)
	atomic.AddInt64(&s.BlocksSkipped, cur.BlocksSkipped-prev.BlocksSkipped)
	atomic.AddInt64(&s.PacketsSent, cur.PacketsSent-prev.PacketsSent)
	atomic.AddInt64(&s.BytesSent, cur.BytesSent-prev.BytesSent)
	atomic.AddInt64(&s.Retransmits, cur.Retransmits-prev.Retransmits)
	atomic.AddInt64(&s.AcksSent, cur.AcksSent-prev.AcksSent)
	atomic.AddInt64(&s.ResultsRecvd, cur.ResultsRecvd-prev.ResultsRecvd)
	atomic.AddInt64(&s.StaleResults, cur.StaleResults-prev.StaleResults)
	atomic.AddInt64(&s.Backoffs, cur.Backoffs-prev.Backoffs)
}

// NewWorker creates a worker bound to conn; conn.LocalID() must be in
// [0, cfg.Workers).
func NewWorker(conn transport.Conn, cfg Config) (*Worker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	id := conn.LocalID()
	if id < 0 || id >= cfg.Workers {
		return nil, fmt.Errorf("core: worker id %d out of range [0,%d)", id, cfg.Workers)
	}
	w := &Worker{
		conn:   conn,
		cfg:    cfg,
		id:     id,
		ops:    make(map[uint32]*opQueue),
		closed: make(chan struct{}),
	}
	if cfg.View != nil {
		w.view = cfg.View.Clone()
		// cfg.Aggregators is the authoritative routing table; keep it in
		// lockstep with the view from the start.
		w.cfg.Aggregators = append([]int(nil), w.view.Aggregators...)
	}
	go w.recvPump()
	if cfg.View != nil {
		// Bind the connection to the initial epoch on every aggregator.
		w.sendViewAck(w.view)
	}
	return w, nil
}

// recvPump routes inbound messages to the operation owning their tensor
// ID. Routing never blocks: delivery to an operation's queue is the
// non-blocking opQueue.deliver protocol, so a slow collective cannot
// stall the pump (and with it every other in-flight collective), and a
// message racing the operation's completion is recycled rather than
// stranded. Messages for unknown tensors (stale replays for finished
// operations) and malformed packets are dropped with their buffers
// returned to the pool.
func (w *Worker) recvPump() {
	for {
		m, err := w.conn.Recv()
		if err != nil {
			w.mu.Lock()
			w.recvErr = err
			close(w.closed)
			w.mu.Unlock()
			return
		}
		if t := wire.PeekType(m.Data); wire.IsViewType(t) {
			// View-plane traffic (announcements, stale-epoch refusals) is
			// connection-scoped, not operation-scoped: handle it on the
			// pump and notify in-flight operations through their queues.
			w.handleViewMsg(t, m)
			continue
		}
		tid, ok := peekTensorID(m.Data)
		if !ok {
			transport.PutBuf(m.Data)
			w.pump.badPackets.Add(1)
			obsPumpBad.Inc()
			continue
		}
		w.mu.Lock()
		q := w.ops[tid]
		w.mu.Unlock()
		if q == nil {
			// Operation finished; stale duplicate.
			transport.PutBuf(m.Data)
			w.pump.staleDrops.Add(1)
			obsPumpStale.Inc()
			obs.Emit(obs.EvStaleDrop, tid, int64(len(m.Data)))
			continue
		}
		q.deliver(m, w.cfg.Reliable, &w.pump)
	}
}

// PumpSnapshot returns the receive pump's routing counters.
func (w *Worker) PumpSnapshot() PumpStats { return w.pump.snapshot() }

// peekTensorID extracts the tensor ID without a full decode. Control
// packets carry their tensor ID at the sparse offset by design, so one
// rule routes the whole control plane: job lifecycle replies route to the
// job's control queue (namespace<<TidSeqBits, sequence 0) and per-op
// rejects route to the rejected operation itself.
func peekTensorID(buf []byte) (uint32, bool) {
	switch t := wire.PeekType(buf); {
	case t == wire.TypeData || t == wire.TypeResult:
		if len(buf) < 12 {
			return 0, false
		}
		return uint32(buf[8]) | uint32(buf[9])<<8 | uint32(buf[10])<<16 | uint32(buf[11])<<24, true
	case t == wire.TypeSparseData || t == wire.TypeSparseResult || wire.IsControlType(t):
		if len(buf) < 8 {
			return 0, false
		}
		return uint32(buf[4]) | uint32(buf[5])<<8 | uint32(buf[6])<<16 | uint32(buf[7])<<24, true
	default:
		return 0, false
	}
}

// rejectError translates an aggregator TypeOpReject control packet into
// its typed admission error; any other message yields nil.
func rejectError(data []byte) error {
	if wire.PeekType(data) != wire.TypeOpReject {
		return nil
	}
	cp, err := wire.DecodeControl(data)
	if err != nil {
		return nil
	}
	if e := tenant.ErrorForReason(cp.Reason); e != nil {
		return e
	}
	return tenant.ErrAdmissionRejected
}

// beginOp allocates a default-namespace tensor ID and checks out a
// driver state for the operation. Named-job operations mint their tensor
// IDs in the job's namespace and go through beginOpAt directly; the
// legacy path is namespace 0, where TidFor(0, seq) == seq keeps the
// pre-namespace wire IDs byte-identical.
func (w *Worker) beginOp() (uint32, *opState, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.tensorSeq >= protocol.MaxTidSeq {
		return 0, nil, fmt.Errorf("core: worker %d exhausted the default job's tensor-ID space", w.id)
	}
	w.tensorSeq++
	tid := protocol.TidFor(0, w.tensorSeq)
	st, err := w.beginOpAtLocked(tid)
	if err != nil {
		return 0, nil, err
	}
	return tid, st, nil
}

// beginOpAt checks out a driver state for an operation on a caller-minted
// tensor ID (a job session's namespace) — recycled from the free list
// when one is parked there, freshly allocated only when every state is
// busy (more concurrent collectives in flight than the connection has
// ever seen). The free list is shared across all jobs on the connection:
// driver states carry no job identity beyond the queue's re-stamped
// tensor ID.
func (w *Worker) beginOpAt(tid uint32) (*opState, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.beginOpAtLocked(tid)
}

func (w *Worker) beginOpAtLocked(tid uint32) (*opState, error) {
	select {
	case <-w.closed:
		return nil, fmt.Errorf("core: worker %d receive: %w", w.id, w.recvErr)
	default:
	}
	if w.ops[tid] != nil {
		return nil, fmt.Errorf("core: worker %d: tensor %#x already in flight", w.id, tid)
	}
	var st *opState
	if n := len(w.free); n > 0 {
		st = w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
		st.q.reset(tid)
		w.stateReused++
		obsOpStateReused.Inc()
	} else {
		st = w.newOpState(tid)
		w.stateNew++
		obsOpStateNew.Inc()
	}
	w.ops[tid] = st.q
	obsOpsStarted.Inc()
	obs.Emit(obs.EvOpBegin, tid, 0)
	return st, nil
}

// endOp unregisters the operation, recycles any message still queued (or
// concurrently being delivered) for it, and parks the driver state for
// reuse — or releases it if the worker has shut down meanwhile.
func (w *Worker) endOp(tid uint32, st *opState) {
	w.mu.Lock()
	delete(w.ops, tid)
	w.mu.Unlock()
	// Quiesce the queue before the state becomes claimable again: after
	// finish, no pooled buffer remains in (or can enter) the channel.
	st.q.finish()
	w.mu.Lock()
	if w.shutdown {
		w.mu.Unlock()
		st.release()
	} else {
		w.free = append(w.free, st)
		w.mu.Unlock()
	}
	obsOpsDone.Inc()
	obs.Emit(obs.EvOpEnd, tid, 0)
}

// LocalAddr returns the transport's bound address when it has one
// (":0"-style setups discover real ports through it), or "".
func (w *Worker) LocalAddr() string {
	type addresser interface{ Addr() string }
	if ad, ok := w.conn.(addresser); ok {
		return ad.Addr()
	}
	return ""
}

// OpStateStats reports how many per-operation driver states were freshly
// allocated vs recycled from the free list. On a long-lived connection
// created should stop growing after the first few collectives.
func (w *Worker) OpStateStats() (created, reused int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stateNew, w.stateReused
}

// Pending is an in-flight collective started by AllReduceAsync.
type Pending struct {
	done chan struct{}
	err  error
}

// Wait blocks until the collective completes and returns its error.
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// AllReduce sums data element-wise across all workers; on return, data
// holds the global sum on every worker. Every worker must call AllReduce
// with equal-length inputs.
func (w *Worker) AllReduce(data []float32) error {
	p, err := w.AllReduceAsync(data)
	if err != nil {
		return err
	}
	return p.Wait()
}

// AllReduceAsync starts an AllReduce and returns immediately; data must
// not be touched until the returned handle's Wait returns, at which point
// it holds the global sum. Multiple operations may be in flight at once
// (gradient-bucket pipelining); all workers must start the same
// operations in the same order.
func (w *Worker) AllReduceAsync(data []float32) (*Pending, error) {
	p := &Pending{done: make(chan struct{})}
	if len(data) == 0 {
		close(p.done)
		return p, nil
	}
	tid, st, err := w.beginOp()
	if err != nil {
		return nil, err
	}
	go func() {
		defer close(p.done)
		defer w.endOp(tid, st)
		p.err = w.runAllReduce(data, tid, st, w.cfg.proto(), w.id)
	}()
	return p, nil
}

// runAllReduce drives one collective to completion: it pumps transport
// messages and retransmission ticks through a protocol.WorkerMachine and
// transmits the machine's emits. pcfg and wid are the operation's job
// parameters — the default job's are the worker's own, a named job
// session substitutes its job-relative worker ID and worker count.
func (w *Worker) runAllReduce(data []float32, tid uint32, st *opState, pcfg protocol.Config, wid int) error {
	m := protocol.GetWorkerMachine(pcfg, wid, tid)
	defer m.Recycle()
	view := protocol.NewDenseView(data, w.cfg.BlockSize, w.cfg.ForceDense)
	start := time.Now()
	defer func() { obsOpLatency.Observe(int64(time.Since(start))) }()

	// The persistent opState carries the decode state, encode arena, and
	// inbound queue across collectives: every inbound result decodes into
	// the same packet shell and scratch arena (the machine copies what it
	// keeps during HandlePacket), and every emit encodes into the same
	// arena, so the steady-state datapath stops allocating once the state
	// is warm.
	q, dec := st.q, st.dec

	// Mirror machine counters into the shared atomic Stats after every
	// machine interaction (including error exits) so concurrent Snapshot
	// readers stay current.
	var published protocol.WorkerStats
	sync := func() {
		cur := m.Stats()
		w.Stats.add(cur, published)
		if obs.Enabled() && cur.BlocksSent > published.BlocksSent {
			obs.Emit(obs.EvBlockSent, tid, cur.BlocksSent-published.BlocksSent)
		}
		published = cur
	}
	defer sync()

	// The machine appends its emits to the opState's reusable EmitBuf; the
	// Emit contract requires consuming them before the next machine call,
	// which dispatch satisfies (sendEmits encodes everything before
	// returning).
	dispatch := func() error {
		return st.tx.sendEmits(w.conn, st.eb.Emits())
	}

	st.eb.Reset()
	m.Start(view, 0, &st.eb)
	sync()
	if err := dispatch(); err != nil {
		return err
	}

	var ticker *time.Ticker
	var tickCh <-chan time.Time
	if !w.cfg.Reliable {
		ticker = time.NewTicker(w.cfg.RetransmitTimeout / 2)
		defer ticker.Stop()
		tickCh = ticker.C
	}

	// Stall watchdog: progress means aggregator results arriving. The
	// timer fires once per StallTimeout; a period with no new results
	// wedges the operation into a postmortem instead of a silent hang —
	// unless the worker is quiesced (graceful drain) or a view change
	// just rebound the operation (failover handoff), both of which make
	// a silent period expected rather than pathological.
	var watchdogCh <-chan time.Time
	var lastResults int64
	graceArmed := false // one watchdog period of grace after a rebind
	if w.cfg.StallTimeout > 0 {
		watchdog := time.NewTicker(w.cfg.StallTimeout)
		defer watchdog.Stop()
		watchdogCh = watchdog.C
	}

	for !m.Done() {
		select {
		case v := <-q.viewCh:
			// Membership changed mid-collective: re-resolve every
			// stream's aggregator and (unreliable mode) replay the
			// outstanding packets to the new owners.
			st.eb.Reset()
			m.Rebind(v.Aggregators, time.Since(start), &st.eb)
			sync()
			if err := dispatch(); err != nil {
				return err
			}
			graceArmed = true
		case msg := <-q.ch:
			if wire.PeekType(msg.Data) != wire.TypeResult {
				rerr := rejectError(msg.Data)
				t := wire.PeekType(msg.Data)
				transport.PutBuf(msg.Data)
				if rerr != nil {
					return fmt.Errorf("core: worker %d tensor %#x: %w", w.id, tid, rerr)
				}
				return fmt.Errorf("core: worker %d: unexpected message type %d", w.id, t)
			}
			obs.Emit(obs.EvPacketRecvd, tid, int64(len(msg.Data)))
			p, err := dec.decodeDense(msg.Data)
			if err != nil {
				return fmt.Errorf("core: worker decode: %w", err)
			}
			transport.PutBuf(msg.Data)
			st.eb.Reset()
			err = m.HandlePacket(p, time.Since(start), &st.eb)
			sync()
			if err != nil {
				return err
			}
			if err := dispatch(); err != nil {
				return err
			}
		case <-q.fail:
			return fmt.Errorf("core: worker %d tensor %d: %w", w.id, tid, ErrOpBackpressure)
		case <-w.closed:
			w.mu.Lock()
			err := w.recvErr
			w.mu.Unlock()
			return fmt.Errorf("core: worker %d receive: %w", w.id, err)
		case <-tickCh:
			st.eb.Reset()
			err := m.HandleTimeout(time.Since(start), &st.eb)
			sync()
			// Transmit the resends accumulated before any MaxRetries
			// failure, then surface the error.
			if derr := dispatch(); derr != nil {
				return derr
			}
			if err != nil {
				return err
			}
		case <-watchdogCh:
			if got := m.Stats().ResultsRecvd; got > lastResults {
				lastResults = got
				continue
			}
			if w.quiesced() || graceArmed {
				graceArmed = false
				obsWatchdogSuppressed.Inc()
				continue
			}
			return w.capturePostmortem(tid, m, w.cfg.StallTimeout)
		}
	}
	return nil
}

// Broadcast distributes root's data to every worker: non-root inputs are
// cleared and the AllReduce sum reproduces root's tensor everywhere (§7).
func (w *Worker) Broadcast(data []float32, root int) error {
	if w.id != root {
		clear(data)
	}
	return w.AllReduce(data)
}

// AllGather concatenates each worker's segment into out on every worker.
// out must have len(segment)*Workers elements; the local segment is placed
// at offset id*len(segment). AllGather is AllReduce with disjoint non-zero
// ranges (§7), so only each worker's own segment is transmitted.
func (w *Worker) AllGather(segment, out []float32) error {
	n := len(segment)
	if len(out) != n*w.cfg.Workers {
		return fmt.Errorf("core: AllGather output length %d != %d", len(out), n*w.cfg.Workers)
	}
	clear(out)
	copy(out[w.id*n:], segment)
	return w.AllReduce(out)
}

// Close shuts down the worker's transport endpoint; in-flight operations
// fail with a receive error. Parked driver states are released (their
// decode states go back to the pool, balancing the leak audit); states
// still owned by in-flight operations are released by their endOp.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.shutdown = true
	free := w.free
	w.free = nil
	w.mu.Unlock()
	for _, st := range free {
		st.release()
	}
	return w.conn.Close()
}
