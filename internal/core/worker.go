package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"omnireduce/internal/metrics"
	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Worker is one OmniReduce worker endpoint.
//
// Collectives are SPMD: every worker must issue the same operations in
// the same order. Operations may overlap: AllReduceAsync starts a
// collective and returns a Pending handle, allowing several tensors
// (e.g. DDP gradient buckets) in flight at once, exactly as the paper's
// PyTorch integration overlaps bucket aggregation with backpropagation.
// The blocking AllReduce is AllReduceAsync + Wait.
type Worker struct {
	conn transport.Conn
	cfg  Config
	id   int

	mu        sync.Mutex
	tensorSeq uint32
	ops       map[uint32]chan transport.Message
	closed    chan struct{}
	recvErr   error

	// Stats accumulates per-worker traffic counters across operations.
	// Fields are updated atomically (operations may overlap); use
	// Snapshot for a consistent-enough view while operations run.
	Stats Stats
}

// Stats counts protocol traffic for analysis and tests.
type Stats struct {
	BlocksSent   int64 // non-bootstrap data blocks transmitted
	PacketsSent  int64
	BytesSent    int64 // encoded packet bytes, including retransmissions
	Retransmits  int64 // timer-driven resends, distinct from PacketsSent
	AcksSent     int64 // empty payload packets (unreliable mode)
	ResultsRecvd int64
	StaleResults int64 // duplicate or out-of-round results filtered out
	Backoffs     int64 // retransmissions sent at a backed-off (>base) timeout
}

// Snapshot returns an atomic-read copy of the counters.
func (s *Stats) Snapshot() Stats {
	return Stats{
		BlocksSent:   atomic.LoadInt64(&s.BlocksSent),
		PacketsSent:  atomic.LoadInt64(&s.PacketsSent),
		BytesSent:    atomic.LoadInt64(&s.BytesSent),
		Retransmits:  atomic.LoadInt64(&s.Retransmits),
		AcksSent:     atomic.LoadInt64(&s.AcksSent),
		ResultsRecvd: atomic.LoadInt64(&s.ResultsRecvd),
		StaleResults: atomic.LoadInt64(&s.StaleResults),
		Backoffs:     atomic.LoadInt64(&s.Backoffs),
	}
}

// RecoveryCounters exports the loss-recovery subset of the counters as a
// metrics counter set (one named counter per recovery event kind), ready
// for rendering or merging across workers.
func (s *Stats) RecoveryCounters() *metrics.Counters {
	snap := s.Snapshot()
	c := metrics.NewCounters()
	c.Add("retransmits", snap.Retransmits)
	c.Add("backoffs", snap.Backoffs)
	c.Add("acks_sent", snap.AcksSent)
	c.Add("stale_results_filtered", snap.StaleResults)
	return c
}

// NewWorker creates a worker bound to conn; conn.LocalID() must be in
// [0, cfg.Workers).
func NewWorker(conn transport.Conn, cfg Config) (*Worker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	id := conn.LocalID()
	if id < 0 || id >= cfg.Workers {
		return nil, fmt.Errorf("core: worker id %d out of range [0,%d)", id, cfg.Workers)
	}
	w := &Worker{
		conn:   conn,
		cfg:    cfg,
		id:     id,
		ops:    make(map[uint32]chan transport.Message),
		closed: make(chan struct{}),
	}
	go w.recvPump()
	return w, nil
}

// recvPump routes inbound messages to the operation owning their tensor
// ID. Messages for unknown tensors (stale replays for finished
// operations) are dropped.
func (w *Worker) recvPump() {
	for {
		m, err := w.conn.Recv()
		if err != nil {
			w.mu.Lock()
			w.recvErr = err
			close(w.closed)
			w.mu.Unlock()
			return
		}
		tid, ok := peekTensorID(m.Data)
		if !ok {
			continue
		}
		w.mu.Lock()
		ch := w.ops[tid]
		w.mu.Unlock()
		if ch == nil {
			continue // operation finished; stale duplicate
		}
		select {
		case ch <- m:
		case <-w.closed:
			return
		}
	}
}

// peekTensorID extracts the tensor ID without a full decode.
func peekTensorID(buf []byte) (uint32, bool) {
	switch wire.PeekType(buf) {
	case wire.TypeData, wire.TypeResult:
		if len(buf) < 12 {
			return 0, false
		}
		return uint32(buf[8]) | uint32(buf[9])<<8 | uint32(buf[10])<<16 | uint32(buf[11])<<24, true
	case wire.TypeSparseData, wire.TypeSparseResult:
		if len(buf) < 8 {
			return 0, false
		}
		return uint32(buf[4]) | uint32(buf[5])<<8 | uint32(buf[6])<<16 | uint32(buf[7])<<24, true
	default:
		return 0, false
	}
}

// beginOp allocates a tensor ID and registers its message channel.
func (w *Worker) beginOp() (uint32, chan transport.Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case <-w.closed:
		return 0, nil, fmt.Errorf("core: worker %d receive: %w", w.id, w.recvErr)
	default:
	}
	w.tensorSeq++
	tid := w.tensorSeq
	ch := make(chan transport.Message, 1024)
	w.ops[tid] = ch
	return tid, ch, nil
}

func (w *Worker) endOp(tid uint32) {
	w.mu.Lock()
	delete(w.ops, tid)
	w.mu.Unlock()
}

// Pending is an in-flight collective started by AllReduceAsync.
type Pending struct {
	done chan struct{}
	err  error
}

// Wait blocks until the collective completes and returns its error.
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// wStream is the per-stream worker state for one AllReduce.
type wStream struct {
	idx     int
	lo, hi  int // global block range (shard)
	cols    int
	next    []int // per-column next unsent non-zero global block (-1 none)
	ver     uint8 // round number mod 256 of the last sent packet
	done    bool
	last    []byte // last transmitted packet, for retransmission
	sentAt  time.Time
	retries int           // retransmissions of the current packet
	timeout time.Duration // current loss-detection timer (backs off)
}

// AllReduce sums data element-wise across all workers; on return, data
// holds the global sum on every worker. Every worker must call AllReduce
// with equal-length inputs.
func (w *Worker) AllReduce(data []float32) error {
	p, err := w.AllReduceAsync(data)
	if err != nil {
		return err
	}
	return p.Wait()
}

// AllReduceAsync starts an AllReduce and returns immediately; data must
// not be touched until the returned handle's Wait returns, at which point
// it holds the global sum. Multiple operations may be in flight at once
// (gradient-bucket pipelining); all workers must start the same
// operations in the same order.
func (w *Worker) AllReduceAsync(data []float32) (*Pending, error) {
	p := &Pending{done: make(chan struct{})}
	if len(data) == 0 {
		close(p.done)
		return p, nil
	}
	tid, msgCh, err := w.beginOp()
	if err != nil {
		return nil, err
	}
	go func() {
		defer close(p.done)
		defer w.endOp(tid)
		p.err = w.runAllReduce(data, tid, msgCh)
	}()
	return p, nil
}

// runAllReduce drives one collective to completion.
func (w *Worker) runAllReduce(data []float32, tid uint32, msgCh chan transport.Message) error {
	bs := w.cfg.BlockSize
	t := tensor.FromSlice(data)
	nb := t.NumBlocks(bs)
	var bm *tensor.Bitmap
	if w.cfg.ForceDense {
		bm = tensor.NewBitmap(nb)
		for b := 0; b < nb; b++ {
			bm.Set(b)
		}
	} else {
		bm = tensor.ComputeBitmap(t, bs)
	}
	eff := effectiveStreams(w.cfg.Streams, nb)

	streams := make([]*wStream, eff)
	active := 0
	for s := 0; s < eff; s++ {
		lo, hi := shard(s, eff, nb)
		cols := w.cfg.FusionWidth
		if hi-lo < cols {
			cols = hi - lo
		}
		if cols == 0 {
			continue // empty shard (cannot happen after effectiveStreams)
		}
		st := &wStream{idx: s, lo: lo, hi: hi, cols: cols, next: make([]int, cols)}
		streams[s] = st
		active++

		// Bootstrap packet: the first block of every column is sent
		// unconditionally (Algorithm 1 line 5 generalized to fusion), with
		// the per-column next non-zero offsets.
		p := &wire.Packet{
			Type:      wire.TypeData,
			DType:     w.dtype(),
			Slot:      uint16(s),
			WID:       uint16(w.id),
			TensorID:  tid,
			BlockSize: uint32(bs),
			Nexts:     make([]uint32, cols),
		}
		for c := 0; c < cols; c++ {
			first := firstInColumn(lo, hi, c, cols)
			if first < 0 {
				st.next[c] = -1
				p.Nexts[c] = wire.Inf(c)
				continue
			}
			p.Blocks = append(p.Blocks, wire.Block{
				Index: uint32(first),
				Data:  t.Block(first, bs),
			})
			st.next[c] = nextNonZeroInColumn(bm, first, lo, hi, c, cols)
			p.Nexts[c] = nextOffsetWire(st.next[c], c)
		}
		if err := w.sendStream(st, p); err != nil {
			return err
		}
	}
	if active == 0 {
		return nil
	}

	var ticker *time.Ticker
	var tickCh <-chan time.Time
	var jitterRng *rand.Rand
	if !w.cfg.Reliable {
		ticker = time.NewTicker(w.cfg.RetransmitTimeout / 2)
		defer ticker.Stop()
		tickCh = ticker.C
		// Jitter is deterministic per (worker, tensor): reruns of the same
		// job schedule the same retransmission pattern.
		jitterRng = rand.New(rand.NewSource(int64(w.id)<<32 ^ int64(tid)))
	}

	for active > 0 {
		select {
		case m := <-msgCh:
			st, p, err := w.decodeResult(m, streams, tid)
			if err != nil {
				return err
			}
			if st == nil {
				continue // stale or duplicate
			}
			nowDone, err := w.processResult(st, p, t, bm, bs, tid)
			if err != nil {
				return err
			}
			if nowDone {
				active--
			}
		case <-w.closed:
			w.mu.Lock()
			err := w.recvErr
			w.mu.Unlock()
			return fmt.Errorf("core: worker %d receive: %w", w.id, err)
		case <-tickCh:
			now := time.Now()
			for _, st := range streams {
				if st == nil || st.done || st.last == nil {
					continue
				}
				if now.Sub(st.sentAt) >= st.timeout {
					if w.cfg.MaxRetries > 0 && st.retries >= w.cfg.MaxRetries {
						return fmt.Errorf("core: worker %d stream %d: no response after %d retransmissions",
							w.id, st.idx, st.retries)
					}
					st.retries++
					if err := w.resend(st); err != nil {
						return err
					}
					w.backoff(st, jitterRng)
				}
			}
		}
	}
	return nil
}

// backoff grows a stream's retransmission timeout exponentially with
// jitter, up to the configured ceiling, after a timer expiry. A fixed
// timer under sustained loss retransmits into the same congested or
// partitioned link at full rate; backing off (and jittering, so workers
// that lost the same multicast do not resynchronize) is the standard
// hardening the paper's fixed-timer description leaves out.
func (w *Worker) backoff(st *wStream, rng *rand.Rand) {
	next := time.Duration(float64(st.timeout) * w.cfg.RetransmitBackoff)
	if next > w.cfg.RetransmitCeiling {
		next = w.cfg.RetransmitCeiling
	}
	if j := w.cfg.RetransmitJitter; j > 0 && rng != nil {
		f := 1 + j*(2*rng.Float64()-1)
		next = time.Duration(float64(next) * f)
	}
	if next < w.cfg.RetransmitTimeout {
		next = w.cfg.RetransmitTimeout
	}
	if next > st.timeout {
		atomic.AddInt64(&w.Stats.Backoffs, 1)
	}
	st.timeout = next
}

func (w *Worker) decodeResult(m transport.Message, streams []*wStream, tid uint32) (*wStream, *wire.Packet, error) {
	if wire.PeekType(m.Data) != wire.TypeResult {
		return nil, nil, fmt.Errorf("core: worker %d: unexpected message type %d", w.id, wire.PeekType(m.Data))
	}
	p, err := wire.DecodePacket(m.Data)
	if err != nil {
		return nil, nil, fmt.Errorf("core: worker decode: %w", err)
	}
	if p.TensorID != tid {
		atomic.AddInt64(&w.Stats.StaleResults, 1)
		return nil, nil, nil // stale result from a previous tensor
	}
	if int(p.Slot) >= len(streams) || streams[p.Slot] == nil {
		return nil, nil, fmt.Errorf("core: worker %d: result for unknown stream %d", w.id, p.Slot)
	}
	st := streams[p.Slot]
	if st.done {
		atomic.AddInt64(&w.Stats.StaleResults, 1)
		return nil, nil, nil // duplicate final result
	}
	if !w.cfg.Reliable && p.Version != st.ver {
		atomic.AddInt64(&w.Stats.StaleResults, 1)
		return nil, nil, nil // duplicate of an already-processed round
	}
	return st, p, nil
}

// processResult applies an aggregator result to the local tensor and sends
// the next request's blocks. It reports whether the stream finished.
func (w *Worker) processResult(st *wStream, p *wire.Packet, t *tensor.Dense, bm *tensor.Bitmap, bs int, tid uint32) (bool, error) {
	atomic.AddInt64(&w.Stats.ResultsRecvd, 1)
	for _, b := range p.Blocks {
		t.SetBlock(int(b.Index)*bs, b.Data)
	}
	if p.Done() {
		st.done = true
		st.last = nil
		return true, nil
	}

	// Build the response round: contribute every column whose requested
	// next block equals our local next non-zero block.
	resp := &wire.Packet{
		Type:      wire.TypeData,
		Version:   st.ver + 1, // round counter, wraps mod 256
		DType:     w.dtype(),
		Slot:      p.Slot,
		WID:       uint16(w.id),
		TensorID:  tid,
		BlockSize: uint32(bs),
		Nexts:     make([]uint32, st.cols),
	}
	st.ver = resp.Version
	contributes := false
	for c := 0; c < st.cols; c++ {
		req := p.Nexts[c]
		if wire.IsInf(req) {
			resp.Nexts[c] = wire.Inf(c)
			continue
		}
		if st.next[c] >= 0 && int(req) == st.next[c] {
			blk := st.next[c]
			resp.Blocks = append(resp.Blocks, wire.Block{
				Index: uint32(blk),
				Data:  t.Block(blk, bs),
			})
			st.next[c] = nextNonZeroInColumn(bm, blk, st.lo, st.hi, c, st.cols)
			contributes = true
			atomic.AddInt64(&w.Stats.BlocksSent, 1)
		} else if st.next[c] >= 0 && int(req) > st.next[c] {
			return false, fmt.Errorf("core: worker %d stream %d col %d: aggregator requested %d past local next %d",
				w.id, st.idx, c, req, st.next[c])
		}
		resp.Nexts[c] = nextOffsetWire(st.next[c], c)
	}
	if w.cfg.Reliable {
		if contributes {
			return false, w.sendStream(st, resp)
		}
		// Silent round: the aggregator advances without us (Algorithm 1's
		// "otherwise the worker awaits a further packet").
		st.last = nil
		return false, nil
	}
	// Unreliable mode: always respond, with an empty ack if we have no
	// block to contribute (Algorithm 2 lines 18-21).
	if !contributes {
		atomic.AddInt64(&w.Stats.AcksSent, 1)
	}
	return false, w.sendStream(st, resp)
}

func (w *Worker) sendStream(st *wStream, p *wire.Packet) error {
	st.last = wire.AppendPacket(st.last[:0], p)
	st.sentAt = time.Now()
	st.retries = 0
	st.timeout = w.cfg.RetransmitTimeout // fresh packet: reset backoff
	atomic.AddInt64(&w.Stats.PacketsSent, 1)
	atomic.AddInt64(&w.Stats.BytesSent, int64(len(st.last)))
	return w.conn.Send(w.cfg.aggregatorFor(st.idx), st.last)
}

// resend retransmits the stream's last packet. It counts toward both
// PacketsSent (wire traffic) and the dedicated Retransmits recovery
// metric, so loss analyses can separate first transmissions from repairs.
func (w *Worker) resend(st *wStream) error {
	st.sentAt = time.Now()
	atomic.AddInt64(&w.Stats.PacketsSent, 1)
	atomic.AddInt64(&w.Stats.Retransmits, 1)
	atomic.AddInt64(&w.Stats.BytesSent, int64(len(st.last)))
	return w.conn.Send(w.cfg.aggregatorFor(st.idx), st.last)
}

// dtype returns the configured wire element encoding.
func (w *Worker) dtype() uint8 {
	if w.cfg.HalfPrecision {
		return wire.DTypeF16
	}
	return wire.DTypeF32
}

// Broadcast distributes root's data to every worker: non-root inputs are
// cleared and the AllReduce sum reproduces root's tensor everywhere (§7).
func (w *Worker) Broadcast(data []float32, root int) error {
	if w.id != root {
		clear(data)
	}
	return w.AllReduce(data)
}

// AllGather concatenates each worker's segment into out on every worker.
// out must have len(segment)*Workers elements; the local segment is placed
// at offset id*len(segment). AllGather is AllReduce with disjoint non-zero
// ranges (§7), so only each worker's own segment is transmitted.
func (w *Worker) AllGather(segment, out []float32) error {
	n := len(segment)
	if len(out) != n*w.cfg.Workers {
		return fmt.Errorf("core: AllGather output length %d != %d", len(out), n*w.cfg.Workers)
	}
	clear(out)
	copy(out[w.id*n:], segment)
	return w.AllReduce(out)
}

// Close shuts down the worker's transport endpoint; in-flight operations
// fail with a receive error.
func (w *Worker) Close() error { return w.conn.Close() }
